# ulpdream_add_module(<name> SOURCES <src...> [DEPS <ulpdream::dep...>])
#
# Declares the static library `ulpdream_<name>` with alias
# `ulpdream::<name>`, exporting its `include/` directory and linking the
# shared warning interface plus the listed module dependencies.
function(ulpdream_add_module name)
  cmake_parse_arguments(ARG "" "" "SOURCES;DEPS" ${ARGN})
  set(target ulpdream_${name})
  add_library(${target} STATIC ${ARG_SOURCES})
  add_library(ulpdream::${name} ALIAS ${target})
  target_include_directories(${target} PUBLIC
    $<BUILD_INTERFACE:${CMAKE_CURRENT_SOURCE_DIR}/include>)
  target_link_libraries(${target} PRIVATE ulpdream_warnings)
  if(ARG_DEPS)
    target_link_libraries(${target} PUBLIC ${ARG_DEPS})
  endif()
endfunction()

# ulpdream_resolve_gtest()
#
# Makes GTest::gtest_main available, preferring (in order):
#   1. an installed GTest CMake package,
#   2. the Debian/Ubuntu source tree at /usr/src/googletest,
#   3. FetchContent from GitHub (online builds only).
macro(ulpdream_resolve_gtest)
  if(NOT TARGET GTest::gtest_main)
    find_package(GTest CONFIG QUIET)
  endif()
  if(NOT TARGET GTest::gtest_main AND EXISTS /usr/src/googletest/CMakeLists.txt)
    set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
    add_subdirectory(/usr/src/googletest
      ${CMAKE_BINARY_DIR}/_deps/system-googletest EXCLUDE_FROM_ALL)
    if(TARGET gtest_main AND NOT TARGET GTest::gtest_main)
      add_library(GTest::gtest_main ALIAS gtest_main)
      add_library(GTest::gtest ALIAS gtest)
    endif()
  endif()
  if(NOT TARGET GTest::gtest_main)
    include(FetchContent)
    FetchContent_Declare(googletest
      URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
      DOWNLOAD_EXTRACT_TIMESTAMP ON)
    set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
    FetchContent_MakeAvailable(googletest)
  endif()
endmacro()
