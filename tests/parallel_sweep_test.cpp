#include <gtest/gtest.h>

#include <vector>

#include "ulpdream/apps/dwt_app.hpp"
#include "ulpdream/apps/morph_filter_app.hpp"
#include "ulpdream/ecg/database.hpp"
#include "ulpdream/sim/parallel_sweep.hpp"
#include "ulpdream/sim/runner.hpp"
#include "ulpdream/sim/voltage_sweep.hpp"

namespace ulpdream::sim {
namespace {

const ecg::Record& test_record() {
  static const ecg::Record rec = ecg::make_default_record(29);
  return rec;
}

SweepConfig tiny_sweep() {
  SweepConfig cfg;
  cfg.voltages = {0.5, 0.6, 0.7, 0.8, 0.9};
  cfg.runs = 6;
  cfg.emts = core::paper_emt_names();
  return cfg;
}

// Bit-identical comparison: every statistic of every point must match the
// serial sweep exactly (EXPECT_EQ on doubles, no tolerance).
void expect_bit_identical(const SweepResult& a, const SweepResult& b) {
  EXPECT_EQ(a.max_snr_db, b.max_snr_db);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    const SweepPoint& pa = a.points[i];
    const SweepPoint& pb = b.points[i];
    EXPECT_EQ(pa.app, pb.app);
    EXPECT_EQ(pa.emt, pb.emt);
    EXPECT_EQ(pa.voltage, pb.voltage);
    EXPECT_EQ(pa.ber, pb.ber);
    EXPECT_EQ(pa.snr_mean_db, pb.snr_mean_db) << "point " << i;
    EXPECT_EQ(pa.snr_stddev_db, pb.snr_stddev_db) << "point " << i;
    EXPECT_EQ(pa.snr_min_db, pb.snr_min_db) << "point " << i;
    EXPECT_EQ(pa.snr_p10_db, pb.snr_p10_db) << "point " << i;
    EXPECT_EQ(pa.energy_mean_j, pb.energy_mean_j) << "point " << i;
    EXPECT_EQ(pa.energy_mean.data_dynamic_j, pb.energy_mean.data_dynamic_j);
    EXPECT_EQ(pa.energy_mean.side_dynamic_j, pb.energy_mean.side_dynamic_j);
    EXPECT_EQ(pa.energy_mean.codec_j, pb.energy_mean.codec_j);
    EXPECT_EQ(pa.energy_mean.data_leak_j, pb.energy_mean.data_leak_j);
    EXPECT_EQ(pa.energy_mean.side_leak_j, pb.energy_mean.side_leak_j);
    EXPECT_EQ(pa.corrected_words_mean, pb.corrected_words_mean) << "pt " << i;
    EXPECT_EQ(pa.detected_uncorrectable_mean, pb.detected_uncorrectable_mean);
  }
}

TEST(ParallelSweep, BitIdenticalToSerialAcrossThreadCounts) {
  ExperimentRunner serial_runner;
  const apps::DwtApp app;
  const SweepResult serial =
      run_voltage_sweep(serial_runner, app, test_record(), tiny_sweep());

  for (const unsigned threads : {1u, 2u, 8u}) {
    ParallelSweepRunner parallel(energy::SystemEnergyModel(), threads);
    EXPECT_EQ(parallel.threads(), threads);
    const SweepResult result = parallel.run(app, test_record(), tiny_sweep());
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    expect_bit_identical(serial, result);
  }
}

TEST(ParallelSweep, MultiAppBitIdenticalToSerial) {
  ExperimentRunner serial_runner;
  const apps::DwtApp dwt;
  const apps::MorphFilterApp morph;
  const std::vector<const apps::BioApp*> list = {&dwt, &morph};
  const auto serial = run_voltage_sweep_multi(serial_runner, list,
                                              test_record(), tiny_sweep());

  const ParallelSweepRunner parallel(energy::SystemEnergyModel(), 4);
  const auto result = parallel.run_multi(list, test_record(), tiny_sweep());
  ASSERT_EQ(result.size(), serial.size());
  for (std::size_t ai = 0; ai < serial.size(); ++ai) {
    SCOPED_TRACE(testing::Message() << "app " << ai);
    expect_bit_identical(serial[ai], result[ai]);
  }
}

TEST(ParallelSweep, RepeatedParallelRunsAreIdentical) {
  const apps::DwtApp app;
  const ParallelSweepRunner parallel(energy::SystemEnergyModel(), 8);
  const SweepResult first = parallel.run(app, test_record(), tiny_sweep());
  const SweepResult second = parallel.run(app, test_record(), tiny_sweep());
  expect_bit_identical(first, second);
}

TEST(ParallelSweep, MoreThreadsThanVoltagePointsIsSafe) {
  const apps::DwtApp app;
  SweepConfig cfg = tiny_sweep();
  cfg.voltages = {0.7};
  cfg.runs = 3;
  ExperimentRunner serial_runner;
  const SweepResult serial =
      run_voltage_sweep(serial_runner, app, test_record(), cfg);
  const ParallelSweepRunner parallel(energy::SystemEnergyModel(), 16);
  expect_bit_identical(serial, parallel.run(app, test_record(), cfg));
}

TEST(ParallelSweep, DefaultThreadCountIsPositive) {
  const ParallelSweepRunner parallel;
  EXPECT_GE(parallel.threads(), 1u);
}

TEST(ParallelSweep, FillsInDefaultVoltagesAndEmts) {
  const apps::DwtApp app;
  SweepConfig cfg;  // empty voltage/EMT lists
  cfg.runs = 1;
  const ParallelSweepRunner parallel(energy::SystemEnergyModel(), 2);
  const SweepResult result = parallel.run(app, test_record(), cfg);
  const SweepConfig defaults = SweepConfig::defaults();
  EXPECT_EQ(result.points.size(),
            defaults.voltages.size() * defaults.emts.size());
}

}  // namespace
}  // namespace ulpdream::sim
