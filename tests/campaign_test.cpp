#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include "ulpdream/campaign/engine.hpp"
#include "ulpdream/campaign/result_store.hpp"
#include "ulpdream/campaign/spec.hpp"
#include "ulpdream/sim/policy_explorer.hpp"
#include "ulpdream/util/rng.hpp"

namespace ulpdream::campaign {
namespace {

/// Small 5-axis grid: 2 apps x 3 EMTs x 2 voltages x 2 records (different
/// pathology and noise level) x 2 repetitions.
CampaignSpec tiny_spec() {
  CampaignSpec spec;
  spec.apps = {"dwt", "morph_filter"};
  spec.emts = core::paper_emt_names();
  spec.voltages = {0.6, 0.8};
  spec.records = {RecordAxis{ecg::Pathology::kNormalSinus, 1.0, 7},
                  RecordAxis{ecg::Pathology::kAtrialFib, 1.25, 11}};
  spec.repetitions = 2;
  spec.seed = 2016;
  return spec.normalized();
}

// Bit-identical row comparison: EXPECT_EQ on every double, no tolerance.
void expect_rows_identical(const std::vector<AggregateRow>& a,
                           const std::vector<AggregateRow>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "row " << i);
    EXPECT_EQ(a[i].record, b[i].record);
    EXPECT_EQ(a[i].app, b[i].app);
    EXPECT_EQ(a[i].emt, b[i].emt);
    EXPECT_EQ(a[i].voltage, b[i].voltage);
    EXPECT_EQ(a[i].n, b[i].n);
    EXPECT_EQ(a[i].snr_mean_db, b[i].snr_mean_db);
    EXPECT_EQ(a[i].snr_stddev_db, b[i].snr_stddev_db);
    EXPECT_EQ(a[i].snr_min_db, b[i].snr_min_db);
    EXPECT_EQ(a[i].snr_max_db, b[i].snr_max_db);
    EXPECT_EQ(a[i].snr_p10_db, b[i].snr_p10_db);
    EXPECT_EQ(a[i].energy_mean_j, b[i].energy_mean_j);
    EXPECT_EQ(a[i].data_dynamic_j, b[i].data_dynamic_j);
    EXPECT_EQ(a[i].side_dynamic_j, b[i].side_dynamic_j);
    EXPECT_EQ(a[i].codec_j, b[i].codec_j);
    EXPECT_EQ(a[i].data_leak_j, b[i].data_leak_j);
    EXPECT_EQ(a[i].side_leak_j, b[i].side_leak_j);
    EXPECT_EQ(a[i].corrected_mean, b[i].corrected_mean);
    EXPECT_EQ(a[i].detected_mean, b[i].detected_mean);
  }
}

TEST(CampaignSpec, ExpansionIsCanonical) {
  const CampaignSpec spec = tiny_spec();
  EXPECT_EQ(spec.item_count(), 2u * 2u * 2u);
  EXPECT_EQ(spec.cell_count(), 2u * 2u * 3u * 2u);
  const auto items = expand(spec);
  ASSERT_EQ(items.size(), spec.item_count());
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(items[i].index, i);
    EXPECT_EQ(items[i].index,
              (items[i].record_index * spec.voltages.size() +
               items[i].voltage_index) *
                      spec.repetitions +
                  items[i].rep_index);
    // Seeds depend only on (spec.seed, index) — never on shard/thread.
    EXPECT_EQ(items[i].seed, util::mix64(spec.seed, i));
  }
}

TEST(CampaignSpec, ShardsPartitionTheExpansion) {
  const CampaignSpec spec = tiny_spec();
  std::vector<char> seen(spec.item_count(), 0);
  for (std::size_t shard = 0; shard < 3; ++shard) {
    for (const WorkItem& item : expand_shard(spec, shard, 3)) {
      EXPECT_FALSE(seen[item.index]);
      seen[item.index] = 1;
    }
  }
  for (char s : seen) EXPECT_TRUE(s);
  EXPECT_THROW((void)expand_shard(spec, 3, 3), std::invalid_argument);
  EXPECT_THROW((void)expand_shard(spec, 0, 0), std::invalid_argument);
}

TEST(CampaignSpec, NormalizeFillsDefaults) {
  const CampaignSpec spec = CampaignSpec{}.normalized();
  EXPECT_EQ(spec.apps, apps::paper_app_names());
  EXPECT_EQ(spec.emts, core::paper_emt_names());
  EXPECT_EQ(spec.voltages.size(), 9u);
  EXPECT_EQ(spec.records.size(), 1u);
  EXPECT_GE(spec.repetitions, 1u);
}

TEST(CampaignSpec, VoltageRangeSnapsGridPoints) {
  const auto v = CampaignSpec::voltage_range(0.5, 0.9, 0.05);
  ASSERT_EQ(v.size(), 9u);
  EXPECT_EQ(v.front(), 0.5);
  EXPECT_EQ(v[6], 0.8);  // no accumulated +=step drift
  EXPECT_EQ(v.back(), 0.9);
}

TEST(CampaignSpec, ParsesAxisLists) {
  const auto apps = parse_app_list("dwt,cs");
  ASSERT_EQ(apps.size(), 2u);
  EXPECT_EQ(apps[0], "dwt");
  EXPECT_EQ(apps[1], "cs");
  EXPECT_EQ(parse_emt_list("paper"), core::paper_emt_names());
  EXPECT_EQ(parse_pathology_list("afib").front(),
            ecg::Pathology::kAtrialFib);
  EXPECT_THROW((void)parse_app_list("fft"), std::invalid_argument);
  EXPECT_THROW((void)parse_emt_list("raid5"), std::invalid_argument);
  EXPECT_THROW((void)parse_pathology_list("flu"), std::invalid_argument);
}

TEST(CampaignEngine, BitIdenticalAcrossThreadCounts) {
  const CampaignSpec spec = tiny_spec();
  const CampaignEngine serial(energy::SystemEnergyModel(), 1);
  const auto baseline = serial.run(spec).aggregate();
  for (const unsigned threads : {4u, 8u}) {
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    const CampaignEngine engine(energy::SystemEnergyModel(), threads);
    expect_rows_identical(baseline, engine.run(spec).aggregate());
  }
}

// Regression: generate_record names records <pathology>_s<seed>, which
// collides for axes differing only in noise level; the engine must rename
// records to their (unique) axis label, or the runner's name-keyed
// reference cache scores one record against the other's golden reference.
TEST(CampaignEngine, RecordsDifferingOnlyInNoiseKeepTheirOwnReferences) {
  CampaignSpec spec;
  spec.apps = {"dwt"};
  spec.emts = {"none"};
  spec.voltages = {0.9};  // nominal: essentially error-free
  spec.records = {RecordAxis{ecg::Pathology::kNormalSinus, 1.0, 7},
                  RecordAxis{ecg::Pathology::kNormalSinus, 2.0, 7}};
  spec.repetitions = 1;
  spec = spec.normalized();

  const CampaignEngine engine(energy::SystemEnergyModel(), 1);
  const ResultStore store = engine.run(spec);
  const auto rows = store.aggregate();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_NE(rows[0].record, rows[1].record);
  // A clean run scored against its *own* reference sits near the
  // quantization ceiling for both records; against the other record's
  // reference it collapses to the noise-difference floor.
  EXPECT_GT(rows[0].snr_mean_db, 40.0);
  EXPECT_GT(rows[1].snr_mean_db, 40.0);
  // The clean-run ceilings come from distinct references too.
  EXPECT_NE(store.max_snr_db(0, 0), store.max_snr_db(1, 0));
}

TEST(CampaignEngine, ShardSplitsMergeToTheFullStore) {
  const CampaignSpec spec = tiny_spec();
  const CampaignEngine engine(energy::SystemEnergyModel(), 4);
  const auto full = engine.run(spec).aggregate();

  for (const std::size_t splits : {2u, 3u}) {
    SCOPED_TRACE(testing::Message() << "splits=" << splits);
    std::vector<ResultStore> shards;
    for (std::size_t i = 0; i < splits; ++i) {
      shards.push_back(engine.run(spec, Shard{i, splits}));
      EXPECT_FALSE(shards.back().complete());
    }
    // Merge in reverse order to show order-independence.
    ResultStore merged(spec);
    for (std::size_t i = splits; i-- > 0;) merged.merge(shards[i]);
    ASSERT_TRUE(merged.complete());
    expect_rows_identical(full, merged.aggregate());
  }
}

TEST(CampaignEngine, RawStoreSaveLoadRoundTripsAcrossProcessesShape) {
  const CampaignSpec spec = tiny_spec();
  const CampaignEngine engine(energy::SystemEnergyModel(), 4);
  // Simulate the CLI's cross-process shard workflow: each shard saves its
  // raw store to a stream; a fresh merge "process" reloads and merges.
  std::vector<std::string> blobs;
  for (std::size_t i = 0; i < 2; ++i) {
    std::ostringstream os;
    engine.run(spec, Shard{i, 2}).save(os);
    blobs.push_back(os.str());
  }
  ResultStore merged(spec);
  for (const std::string& blob : blobs) {
    std::istringstream is(blob);
    merged.merge(ResultStore::load(is, spec));
  }
  ASSERT_TRUE(merged.complete());
  expect_rows_identical(engine.run(spec).aggregate(), merged.aggregate());
}

TEST(ResultStore, ShardStoresAreSparseAndScaleWithTheirSlice) {
  const CampaignSpec spec = tiny_spec();
  const CampaignEngine engine(energy::SystemEnergyModel(), 2);
  const std::size_t total = spec.item_count();

  const ResultStore shard = engine.run(spec, Shard{0, 3});
  // Memory is keyed by the shard's items, not the whole grid.
  EXPECT_LT(shard.stored_items(), total);
  EXPECT_EQ(shard.stored_items(), shard.items_done());
  EXPECT_FALSE(shard.complete());

  // Loading a shard's save materializes only that shard's items.
  std::ostringstream os;
  shard.save(os);
  std::istringstream is(os.str());
  const ResultStore loaded = ResultStore::load(is, spec);
  EXPECT_EQ(loaded.stored_items(), shard.stored_items());
  EXPECT_EQ(loaded.items_done(), shard.items_done());

  // An empty merge target starts with no slots at all and grows only as
  // shards fold in.
  ResultStore merged(spec);
  EXPECT_EQ(merged.stored_items(), 0u);
  merged.merge(shard);
  EXPECT_EQ(merged.stored_items(), shard.stored_items());
}

TEST(ResultStore, RecordItemRejectsOutOfRangeIndex) {
  const CampaignSpec spec = tiny_spec();
  ResultStore store(spec);
  WorkItem bogus;
  bogus.index = spec.item_count();
  const std::vector<Sample> samples(spec.apps.size() * spec.emts.size());
  EXPECT_THROW(store.record_item(bogus, samples), std::invalid_argument);
  WorkItem first;
  first.index = 0;
  EXPECT_THROW(store.record_item(first, {}), std::invalid_argument);
  EXPECT_NO_THROW(store.record_item(first, samples));
  EXPECT_EQ(store.items_done(), 1u);
}

TEST(ResultStore, MergeAndLoadRejectSpecMismatch) {
  const CampaignSpec spec = tiny_spec();
  CampaignSpec other = spec;
  other.seed += 1;
  EXPECT_THROW(ResultStore(spec).merge(ResultStore(other.normalized())),
               std::invalid_argument);

  std::ostringstream os;
  ResultStore(spec).save(os);
  std::istringstream is(os.str());
  EXPECT_THROW((void)ResultStore::load(is, other), std::invalid_argument);
}

TEST(ResultStore, AggregateRequiresCompleteStore) {
  const CampaignSpec spec = tiny_spec();
  const CampaignEngine engine(energy::SystemEnergyModel(), 2);
  const ResultStore partial = engine.run(spec, Shard{0, 2});
  EXPECT_THROW((void)partial.aggregate(), std::logic_error);
  EXPECT_THROW((void)partial.to_sweep_result(0, 0), std::logic_error);
}

TEST(ResultStore, GroupByMarginalizesUngroupedAxes) {
  const CampaignSpec spec = tiny_spec();
  const CampaignEngine engine(energy::SystemEnergyModel(), 4);
  const ResultStore store = engine.run(spec);

  GroupBy by_app;
  by_app.record = by_app.emt = by_app.voltage = false;
  const auto rows = store.aggregate(by_app);
  ASSERT_EQ(rows.size(), spec.apps.size());
  for (const AggregateRow& row : rows) {
    EXPECT_EQ(row.record, "*");
    EXPECT_EQ(row.emt, "*");
    EXPECT_TRUE(std::isnan(row.voltage));
    // Every sample of the app: items x emts.
    EXPECT_EQ(row.n, spec.item_count() * spec.emts.size());
  }
  EXPECT_EQ(rows[0].app, "dwt");
  EXPECT_EQ(rows[1].app, "morph_filter");
}

TEST(ResultStore, CsvRoundTripIsLossless) {
  const CampaignSpec spec = tiny_spec();
  const CampaignEngine engine(energy::SystemEnergyModel(), 4);
  const auto rows = engine.run(spec).aggregate();

  std::stringstream ss;
  write_rows_csv(ss, rows);
  expect_rows_identical(rows, read_rows_csv(ss));
}

TEST(ResultStore, JsonRoundTripIsLossless) {
  const CampaignSpec spec = tiny_spec();
  const CampaignEngine engine(energy::SystemEnergyModel(), 4);
  const auto rows = engine.run(spec).aggregate();

  std::stringstream ss;
  write_rows_json(ss, rows);
  expect_rows_identical(rows, read_rows_json(ss));
}

TEST(ResultStore, NonFiniteDoublesRoundTripThroughCsvAndJson) {
  // A perfectly reconstructed window has +Inf SNR (zero error power) and a
  // marginalized voltage is NaN, so non-finite values are reachable in real
  // exports. They must survive write -> read in both machine formats: CSV
  // carries the to_chars tokens (inf/-inf/nan) verbatim, while JSON — which
  // has no non-finite literals — encodes NaN as null and the infinities as
  // the quoted strings "inf"/"-inf".
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  AggregateRow row;
  row.record = "nsr_7";
  row.app = "dwt";
  row.emt = "none";
  row.voltage = nan;  // marginalized
  row.n = 3;
  row.snr_mean_db = inf;
  row.snr_stddev_db = nan;
  row.snr_min_db = -inf;
  row.snr_max_db = inf;
  row.snr_p10_db = inf;
  row.energy_mean_j = 1.25e-6;
  const std::vector<AggregateRow> rows = {row};

  auto check = [&](const std::vector<AggregateRow>& back) {
    ASSERT_EQ(back.size(), 1u);
    EXPECT_TRUE(std::isnan(back[0].voltage));
    EXPECT_EQ(back[0].n, 3u);
    EXPECT_EQ(back[0].snr_mean_db, inf);
    EXPECT_TRUE(std::isnan(back[0].snr_stddev_db));
    EXPECT_EQ(back[0].snr_min_db, -inf);
    EXPECT_EQ(back[0].snr_max_db, inf);
    EXPECT_EQ(back[0].snr_p10_db, inf);
    EXPECT_EQ(back[0].energy_mean_j, 1.25e-6);
  };

  std::stringstream csv;
  write_rows_csv(csv, rows);
  check(read_rows_csv(csv));

  std::stringstream json;
  write_rows_json(json, rows);
  const std::string text = json.str();
  // The document must be real JSON: every inf token is quoted, NaN is null.
  for (std::size_t at = text.find("inf"); at != std::string::npos;
       at = text.find("inf", at + 1)) {
    const char before = text[at - 1];
    EXPECT_TRUE(before == '"' || before == '-') << "bare inf at " << at;
    if (before == '-') {
      EXPECT_EQ(text[at - 2], '"') << "bare -inf at " << at;
    }
    EXPECT_EQ(text[at + 3], '"') << "unterminated inf token at " << at;
  }
  EXPECT_NE(text.find("\"voltage\":null"), std::string::npos);
  check(read_rows_json(json));

  // Unknown quoted tokens in a numeric field are rejected, not zeroed.
  std::istringstream bogus(
      R"({"rows":[{"record":"r","app":"a","emt":"e","voltage":"fast"}]})");
  EXPECT_THROW((void)read_rows_json(bogus), std::invalid_argument);
}

TEST(ResultStore, BridgesToThePolicyExplorer) {
  CampaignSpec spec = tiny_spec();
  spec.apps = {"dwt"};
  spec.voltages = {0.6, 0.7, 0.8, 0.9};  // policy needs the nominal point
  spec = spec.normalized();
  const CampaignEngine engine(energy::SystemEnergyModel(), 4);
  const ResultStore store = engine.run(spec);

  const sim::SweepResult sweep = store.to_sweep_result(0, 0);
  EXPECT_EQ(sweep.points.size(), spec.voltages.size() * spec.emts.size());
  EXPECT_EQ(sweep.max_snr_db, store.max_snr_db(0, 0));
  ASSERT_NE(sweep.find("dream", 0.8), nullptr);
  EXPECT_EQ(sweep.find("dream", 0.8)->app, "dwt");

  const sim::PolicyResult policy = sim::explore_policy(sweep, 1.0);
  EXPECT_EQ(policy.points.size(), spec.emts.size());
  EXPECT_GT(policy.nominal_energy_j, 0.0);
}

}  // namespace
}  // namespace ulpdream::campaign
