#include <gtest/gtest.h>
#include <pthread.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "ulpdream/util/cli.hpp"
#include "ulpdream/util/socket.hpp"
#include "ulpdream/util/parallel.hpp"
#include "ulpdream/util/rng.hpp"
#include "ulpdream/util/stats.hpp"
#include "ulpdream/util/table.hpp"
#include "ulpdream/util/telemetry.hpp"
#include "ulpdream/util/work_pool.hpp"

namespace ulpdream::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BoundedStaysInRange) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.bounded(17), 17u);
  }
}

TEST(Rng, BoundedZeroReturnsZero) {
  Xoshiro256 rng(5);
  EXPECT_EQ(rng.bounded(0), 0u);
}

TEST(Rng, BoundedCoversAllResidues) {
  Xoshiro256 rng(9);
  std::array<int, 8> seen{};
  for (int i = 0; i < 10000; ++i) ++seen[rng.bounded(8)];
  for (int count : seen) EXPECT_GT(count, 0);
}

TEST(Rng, GaussianMoments) {
  Xoshiro256 rng(13);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, BinomialZeroProbability) {
  Xoshiro256 rng(1);
  EXPECT_EQ(rng.binomial(1000, 0.0), 0u);
}

TEST(Rng, BinomialCertainty) {
  Xoshiro256 rng(1);
  EXPECT_EQ(rng.binomial(1000, 1.0), 1000u);
}

TEST(Rng, BinomialSmallNpMean) {
  Xoshiro256 rng(3);
  const std::uint64_t n = 100000;
  const double p = 1e-4;  // np = 10, inversion path
  double sum = 0.0;
  const int reps = 2000;
  for (int i = 0; i < reps; ++i) {
    sum += static_cast<double>(rng.binomial(n, p));
  }
  EXPECT_NEAR(sum / reps, 10.0, 0.5);
}

TEST(Rng, BinomialLargeNpMean) {
  Xoshiro256 rng(3);
  const std::uint64_t n = 1000000;
  const double p = 0.01;  // np = 10000, normal-approximation path
  double sum = 0.0;
  const int reps = 500;
  for (int i = 0; i < reps; ++i) {
    sum += static_cast<double>(rng.binomial(n, p));
  }
  EXPECT_NEAR(sum / reps / 10000.0, 1.0, 0.01);
}

TEST(Rng, BinomialNeverExceedsN) {
  Xoshiro256 rng(17);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LE(rng.binomial(50, 0.9), 50u);
  }
}

TEST(Rng, Mix64IndependentStreams) {
  EXPECT_NE(mix64(1, 0), mix64(1, 1));
  EXPECT_NE(mix64(1, 0), mix64(2, 0));
}

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleSampleVarianceZero) {
  RunningStats s;
  s.add(42.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sem(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 10.0;
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(QuantileSketch, MedianOfKnownData) {
  QuantileSketch q;
  for (int i = 1; i <= 101; ++i) q.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(q.median(), 51.0);
  EXPECT_DOUBLE_EQ(q.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(q.quantile(1.0), 101.0);
}

TEST(Histogram, BinningAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);
  h.add(0.0);
  h.add(5.5);
  h.add(9.999);
  h.add(10.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, RejectsBadRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Table, AlignedOutputContainsCells) {
  Table t("demo");
  t.set_header({"a", "long_header", "c"});
  t.add_row({"1", "2", "3"});
  t.add_row_numeric({4.5, 6.25, -1.0}, 2);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("long_header"), std::string::npos);
  EXPECT_NE(s.find("6.25"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t("demo");
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only_one"}), std::invalid_argument);
}

TEST(Table, HeaderAfterRowsThrows) {
  Table t("demo");
  t.set_header({"a"});
  t.add_row({"1"});
  EXPECT_THROW(t.set_header({"x"}), std::logic_error);
}

TEST(Csv, EscapesOnlyWhenNeeded) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("two\nlines"), "\"two\nlines\"");
}

TEST(Csv, WriteParseRoundTripsQuotedCells) {
  const std::vector<std::vector<std::string>> rows = {
      {"a", "b,comma", "c\"quote"},
      {"line\nbreak", "", "plain"},
      {""}};  // lone empty cell must survive the round trip
  std::stringstream ss;
  CsvWriter csv(ss);
  for (const auto& row : rows) csv.write_row(row);
  EXPECT_EQ(parse_csv(ss), rows);
}

TEST(Csv, ParseRejectsUnterminatedQuote) {
  std::istringstream is("\"never closed");
  EXPECT_THROW((void)parse_csv(is), std::invalid_argument);
}

TEST(Csv, TableCsvStreamsThroughWriter) {
  Table t("demo");
  t.set_header({"k", "v"});
  t.add_row({"with,comma", "1"});
  std::stringstream ss;
  t.write_csv(ss);
  EXPECT_EQ(ss.str(), "k,v\n\"with,comma\",1\n");
}

TEST(FmtExact, RoundTripsDoublesBitExactly) {
  for (double v : {0.1, 1.0 / 3.0, -2.5e-13, 12345.678901234567, 0.0}) {
    EXPECT_EQ(parse_double_exact(fmt_exact(v)), v);
  }
  EXPECT_THROW((void)parse_double_exact("12x"), std::invalid_argument);
  EXPECT_THROW((void)parse_double_exact(""), std::invalid_argument);
}

TEST(FmtExact, RoundTripsNonFiniteDoubles) {
  // to_chars writes inf/-inf/nan and from_chars reads them back, so the
  // exact text formats (raw store, CSV) carry non-finite values loss-free.
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(fmt_exact(inf), "inf");
  EXPECT_EQ(fmt_exact(-inf), "-inf");
  EXPECT_EQ(parse_double_exact("inf"), inf);
  EXPECT_EQ(parse_double_exact("-inf"), -inf);
  EXPECT_EQ(fmt_exact(std::numeric_limits<double>::quiet_NaN()), "nan");
  EXPECT_TRUE(std::isnan(parse_double_exact("nan")));
}

TEST(Cli, ParsesKeyValueForms) {
  // Note: a bare --key greedily consumes a following non-flag token, so
  // boolean flags must come last or use --flag=true.
  const char* argv[] = {"prog", "--alpha=3", "--beta", "7", "pos1",
                        "--flag"};
  Cli cli(6, argv);
  EXPECT_EQ(cli.get_int("alpha", 0), 3);
  EXPECT_EQ(cli.get_int("beta", 0), 7);
  EXPECT_TRUE(cli.get_bool("flag", false));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
}

TEST(Cli, DefaultsWhenMissing) {
  const char* argv[] = {"prog"};
  Cli cli(1, argv);
  EXPECT_EQ(cli.get("missing", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(cli.get_double("missing", 2.5), 2.5);
  EXPECT_FALSE(cli.get_bool("missing", false));
}

TEST(WorkPool, RunsEveryIndexExactlyOnceAcrossConcurrentJobs) {
  WorkPool pool(4);
  EXPECT_EQ(pool.threads(), 4u);

  constexpr std::size_t kCount = 64;
  std::vector<std::atomic<int>> hits_a(kCount);
  std::vector<std::atomic<int>> hits_b(kCount);
  auto job_a = pool.submit(kCount, [&] {
    return [&](std::size_t i) { ++hits_a[i]; };
  });
  auto job_b = pool.submit(kCount, [&] {
    return [&](std::size_t i) { ++hits_b[i]; };
  });
  job_b->wait();
  job_a->wait();
  EXPECT_TRUE(job_a->finished());
  EXPECT_EQ(job_a->done(), kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits_a[i].load(), 1);
    EXPECT_EQ(hits_b[i].load(), 1);
  }
  // Per-worker counts decompose the total.
  std::size_t sum = 0;
  for (std::size_t n : job_a->done_per_worker()) sum += n;
  EXPECT_EQ(sum, kCount);
}

TEST(WorkPool, CancelDropsUnclaimedIndicesButDrainsInFlightOnes) {
  WorkPool pool(2);
  std::atomic<std::size_t> started{0};
  std::atomic<std::size_t> completed{0};
  auto job = pool.submit(1000, [&] {
    return [&](std::size_t) {
      ++started;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      ++completed;
    };
  });
  while (started.load() == 0) std::this_thread::yield();
  job->cancel();
  job->wait();
  EXPECT_TRUE(job->cancelled());
  EXPECT_TRUE(job->finished());
  // Everything claimed before the cancel completed; nothing else ran.
  EXPECT_EQ(job->done(), completed.load());
  EXPECT_LT(job->done(), 1000u);
}

TEST(WorkPool, WaitRethrowsTheFirstWorkerError) {
  WorkPool pool(3);
  auto job = pool.submit(100, [&] {
    return [&](std::size_t i) {
      if (i == 7) throw std::runtime_error("boom at 7");
    };
  });
  EXPECT_THROW(job->wait(), std::runtime_error);
  EXPECT_TRUE(job->finished());
  EXPECT_LT(job->done(), 100u);  // claims stop at the error
}

TEST(WorkPool, DeferredJobsRunOnlyAfterStart) {
  WorkPool pool(2);
  std::atomic<int> ran{0};
  auto job = pool.submit_deferred(4, [&] {
    return [&](std::size_t) { ++ran; };
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(ran.load(), 0);  // workers must not touch an unstarted job
  EXPECT_FALSE(job->finished());
  job->start();
  job->wait();
  EXPECT_EQ(ran.load(), 4);
}

TEST(WorkPool, EmptyJobFinishesImmediately) {
  WorkPool pool(2);
  auto job = pool.submit(0, [] { return [](std::size_t) {}; });
  EXPECT_TRUE(job->finished());
  job->wait();
  EXPECT_EQ(job->done(), 0u);
}

TEST(WorkPool, HandlesStayValidAfterThePoolIsDestroyed) {
  std::shared_ptr<WorkPool::Job> job;
  {
    WorkPool pool(2);
    job = pool.submit(8, [] { return [](std::size_t) {}; });
    // The pool's destructor drains whatever it accepted.
  }
  job->wait();
  EXPECT_TRUE(job->finished());
}

TEST(WorkPool, IdleWorkersParkWithoutBurningCpu) {
  constexpr unsigned kThreads = 4;
  WorkPool pool(kThreads);
  // Exercise the pool once so every worker has claimed work and settled
  // back into the idle path before we start measuring.
  pool.run(2 * kThreads, [] { return [](std::size_t) {}; });

  const auto parked = [] {
    const auto gauges = telemetry::snapshot().gauges;
    const auto it = gauges.find("workpool.parked_workers");
    return it == gauges.end() ? 0.0 : it->second;
  };
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (parked() < kThreads && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(parked(), static_cast<double>(kThreads));

  // Over an idle window, workers must block in the kernel — no busy time
  // accrues and the whole process burns far less CPU than wall clock (a
  // single spinning worker alone would burn ~1x wall).
  const std::uint64_t busy_before =
      telemetry::snapshot().counters["workpool.busy_ns"];
  rusage usage_before{};
  ASSERT_EQ(getrusage(RUSAGE_SELF, &usage_before), 0);
  constexpr auto kWindow = std::chrono::milliseconds(300);
  std::this_thread::sleep_for(kWindow);
  rusage usage_after{};
  ASSERT_EQ(getrusage(RUSAGE_SELF, &usage_after), 0);
  const std::uint64_t busy_after =
      telemetry::snapshot().counters["workpool.busy_ns"];

  EXPECT_EQ(busy_after, busy_before) << "workers ran work while pool idle";
  const auto cpu_us = [](const timeval& tv) {
    return static_cast<std::int64_t>(tv.tv_sec) * 1'000'000 + tv.tv_usec;
  };
  const std::int64_t cpu_delta_us =
      (cpu_us(usage_after.ru_utime) + cpu_us(usage_after.ru_stime)) -
      (cpu_us(usage_before.ru_utime) + cpu_us(usage_before.ru_stime));
  const std::int64_t wall_us =
      std::chrono::duration_cast<std::chrono::microseconds>(kWindow).count();
  EXPECT_LT(cpu_delta_us, wall_us / 2)
      << "idle pool burned " << cpu_delta_us << "us CPU over a " << wall_us
      << "us window — workers are spinning, not parked";

  // Parked workers must still wake for fresh work.
  std::atomic<int> ran{0};
  pool.run(kThreads, [&] {
    return [&](std::size_t) { ++ran; };
  });
  EXPECT_EQ(ran.load(), static_cast<int>(kThreads));
}

TEST(WorkPool, ParallelForIndexWrapperMatchesInlineExecution) {
  constexpr std::size_t kCount = 40;
  for (const unsigned threads : {1u, 4u}) {
    std::vector<std::atomic<int>> hits(kCount);
    parallel_for_index(kCount, threads, [&] {
      return [&](std::size_t i) { ++hits[i]; };
    });
    for (std::size_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads;
    }
  }
  EXPECT_THROW(
      parallel_for_index(4, 4,
                         [] {
                           return [](std::size_t) {
                             throw std::runtime_error("fail");
                           };
                         }),
      std::runtime_error);
}

// ---------------------------------------------------------------------------
// Socket robustness — the daemon-lifetime guarantees: a dying peer is an
// exception rather than a SIGPIPE death, EINTR never surfaces from
// blocking calls, and a stale Unix socket file never blocks a restart.

TEST(Socket, WriteToDeadPeerThrowsSocketErrorInsteadOfSigpipeDeath) {
  auto [a, b] = Socket::socketpair();
  b.close();
  // The first writes may land in the kernel buffer; keep pushing until
  // the EPIPE surfaces. Without SIGPIPE suppression this test does not
  // fail — the whole process dies.
  const std::vector<std::uint8_t> chunk(std::size_t(64) << 10, 0xab);
  EXPECT_THROW(
      {
        for (int i = 0; i < 256; ++i) a.write_all(chunk.data(), chunk.size());
      },
      SocketError);
}

TEST(Listener, BindsOverAStaleUnixSocketFile) {
  namespace fs = std::filesystem;
  const std::string path =
      (fs::temp_directory_path() / "ulpd_util_stale.sock").string();
  fs::remove(path);
  // Fabricate the crash leftover: a bound socket whose owner is gone —
  // the file stays behind and a naive bind() would fail EADDRINUSE.
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ::close(fd);
  ASSERT_TRUE(fs::exists(path));

  Listener listener = Listener::open("unix:" + path);
  EXPECT_EQ(listener.endpoint(), "unix:" + path);
  auto connected = Socket::connect("unix:" + path);
  Socket accepted = listener.accept();
  const char byte = 'x';
  connected.write_all(&byte, 1);
  char got = 0;
  EXPECT_TRUE(accepted.read_all_or_eof(&got, 1));
  EXPECT_EQ(got, 'x');
  listener.close();
  EXPECT_FALSE(fs::exists(path)) << "close() must remove the socket file";
}

namespace {

/// Installs a no-op SIGUSR1 handler *without* SA_RESTART, so a blocking
/// syscall in the target thread really returns EINTR — the raw material
/// of the retry tests below.
class InterruptingHandler {
 public:
  InterruptingHandler() {
    struct sigaction action {};
    action.sa_handler = [](int) {};
    action.sa_flags = 0;  // deliberately not SA_RESTART
    sigemptyset(&action.sa_mask);
    sigaction(SIGUSR1, &action, &previous_);
  }
  ~InterruptingHandler() { sigaction(SIGUSR1, &previous_, nullptr); }

  /// Pelts `thread` with signals until `done` flips (the blocked call
  /// has to survive at least one EINTR) or a bounded patience runs out.
  void pelt(std::thread& thread, const std::atomic<bool>& done) const {
    for (int i = 0; i < 200 && !done.load(); ++i) {
      pthread_kill(thread.native_handle(), SIGUSR1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

 private:
  struct sigaction previous_ {};
};

}  // namespace

TEST(Socket, BlockingReadSurvivesEintr) {
  InterruptingHandler handler;
  auto [a, b] = Socket::socketpair();
  std::atomic<bool> done{false};
  char got = 0;
  bool ok = false;
  std::thread reader([&] {
    ok = b.read_all_or_eof(&got, 1);
    done.store(true);
  });
  // Interrupt the blocked read a few times, then satisfy it.
  for (int i = 0; i < 20; ++i) {
    pthread_kill(reader.native_handle(), SIGUSR1);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const char byte = 'y';
  a.write_all(&byte, 1);
  handler.pelt(reader, done);
  reader.join();
  EXPECT_TRUE(ok);
  EXPECT_EQ(got, 'y');
}

TEST(Listener, BlockingAcceptSurvivesEintr) {
  InterruptingHandler handler;
  Listener listener = Listener::open("127.0.0.1:0");
  std::atomic<bool> done{false};
  Socket accepted;
  std::thread acceptor([&] {
    accepted = listener.accept();
    done.store(true);
  });
  for (int i = 0; i < 20; ++i) {
    pthread_kill(acceptor.native_handle(), SIGUSR1);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto client = Socket::connect(listener.endpoint());
  handler.pelt(acceptor, done);
  acceptor.join();
  EXPECT_TRUE(accepted.valid());
}

}  // namespace
}  // namespace ulpdream::util
