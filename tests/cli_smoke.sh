#!/usr/bin/env sh
# Exit-code discipline of the campaign CLI, pinned for scripts and CI:
#   0  success (--help, --list, a completed run)
#   2  usage error naming the offender (unknown flag/verb, missing
#      required flag, unparseable value) — "fix your invocation"
#   1  runtime failure (bad input file, socket error) — "fix your world"
# Usage: cli_smoke.sh /path/to/campaign
set -u

bin=${1:?usage: cli_smoke.sh /path/to/campaign}
fails=0

# expect <exit-code> <stderr-substring|-> <args...>
expect() {
    want=$1
    needle=$2
    shift 2
    err=$("$bin" "$@" 2>&1 >/dev/null)
    got=$?
    if [ "$got" -ne "$want" ]; then
        echo "FAIL: campaign $* -> exit $got, want $want" >&2
        echo "      stderr: $err" >&2
        fails=$((fails + 1))
    elif [ "$needle" != "-" ] && ! printf '%s' "$err" | grep -qF -e "$needle"; then
        echo "FAIL: campaign $* stderr lacks '$needle'" >&2
        echo "      stderr: $err" >&2
        fails=$((fails + 1))
    else
        echo "ok: campaign $* -> exit $got"
    fi
}

# Success paths.
expect 0 - --help
expect 0 - --list

# Usage errors (exit 2) must name the offender.
expect 2 '--bogus-flag' --bogus-flag=1
expect 2 'frobnicate' frobnicate
expect 2 '--listen' serve
expect 2 '--connect' work
expect 2 '--shard' work --connect=unix:/tmp/nowhere.sock --shard=0/2
expect 2 '--progress' serve --progress=1 --listen=unix:/tmp/nowhere.sock \
    --spool-dir=/tmp --store-out=/tmp/x.ulpdcol
expect 2 'step' --step=0 --max-items=1
expect 2 '--checkpoint-every' --checkpoint-every=4 --max-items=1
expect 2 '--listen' daemon
expect 2 '--cache-dir' daemon --listen=unix:/tmp/nowhere.sock
expect 2 '--connect' query
expect 2 '--shard' query --connect=unix:/tmp/nowhere.sock --shard=0/2

# Runtime failures (exit 1): a well-formed invocation against a broken
# world.
expect 1 - --resume=/nonexistent/resume.bin --max-items=1
expect 1 - work --connect=unix:/nonexistent/coordinator.sock
expect 1 - query --connect=unix:/nonexistent/daemon.sock

if [ "$fails" -ne 0 ]; then
    echo "$fails CLI smoke check(s) failed" >&2
    exit 1
fi
echo "all CLI smoke checks passed"
