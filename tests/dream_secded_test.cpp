#include <gtest/gtest.h>

#include "ulpdream/core/dream_secded.hpp"
#include "ulpdream/core/factory.hpp"
#include "ulpdream/util/rng.hpp"

namespace ulpdream::core {
namespace {

TEST(DreamSecDed, OverheadElevenBits) {
  const DreamSecDed hybrid;
  EXPECT_EQ(hybrid.payload_bits(), 22);
  EXPECT_EQ(hybrid.safe_bits(), 5);
  EXPECT_EQ(hybrid.extra_bits(), 11);  // 6 (ECC) + 5 (DREAM)
}

TEST(DreamSecDed, RoundTripWithoutFaults) {
  const DreamSecDed hybrid;
  for (int v = -32768; v <= 32767; v += 41) {
    const auto s = static_cast<fixed::Sample>(v);
    EXPECT_EQ(hybrid.decode(hybrid.encode_payload(s), hybrid.encode_safe(s)),
              s);
  }
}

TEST(DreamSecDed, CorrectsAnySingleBitErrorLikeEcc) {
  const DreamSecDed hybrid;
  for (int v = -32768; v <= 32767; v += 1553) {
    const auto s = static_cast<fixed::Sample>(v);
    const std::uint32_t code = hybrid.encode_payload(s);
    const std::uint16_t safe = hybrid.encode_safe(s);
    for (int bit = 0; bit < 22; ++bit) {
      EXPECT_EQ(hybrid.decode(code ^ (1u << bit), safe), s)
          << "v=" << v << " bit=" << bit;
    }
  }
}

TEST(DreamSecDed, FactoryAndNaming) {
  const auto emt = make_emt("dream_secded");
  EXPECT_EQ(emt->name(), "dream_secded");
  EXPECT_EQ(emt_kind_name(EmtKind::kDreamSecDed), "dream_secded");
  EXPECT_EQ(extended_emt_kinds().size(), 4u);
  EXPECT_EQ(all_emt_kinds().size(), 3u);  // the paper's set is unchanged
  // The extension is outside the paper tier by capability.
  EXPECT_TRUE(emt_registry().descriptor("dream_secded")
                  .has_capability(kCapExtendedTier));
}

TEST(DreamSecDed, SurvivesMultiBitMsbBurstThatDefeatsEcc) {
  // A 3-bit burst in the data MSB region of a small sample: SEC/DED alone
  // miscorrects or merely detects; the hybrid's mask pass repairs it.
  const DreamSecDed hybrid;
  const EccSecDed ecc;
  const Dream dream;
  util::Xoshiro256 rng(99);
  int hybrid_wins = 0;
  int trials = 0;
  for (int t = 0; t < 500; ++t) {
    const auto s = static_cast<fixed::Sample>(
        static_cast<int>(rng.bounded(512)) - 256);  // small value: long run
    const int run = fixed::sign_run_length(s);
    if (run < 6) continue;
    ++trials;
    // Corrupt three distinct bits within the protected data-MSB region.
    // Data bit i of the hybrid's payload sits at a Hamming position; we
    // flip payload bits corresponding to data bits run-region via
    // re-encoding the corrupted sample.
    std::uint16_t corruption = 0;
    while (__builtin_popcount(corruption) < 3) {
      corruption |= static_cast<std::uint16_t>(
          1u << (15 - rng.bounded(static_cast<std::uint64_t>(run))));
    }
    const auto corrupted_sample =
        static_cast<fixed::Sample>(static_cast<std::uint16_t>(s) ^ corruption);
    // Simulate the stored codeword of the corrupted data: flip exactly the
    // payload bits that differ between the two encodings.
    const std::uint32_t stored = hybrid.encode_payload(s) ^
                                 (hybrid.encode_payload(corrupted_sample) ^
                                  hybrid.encode_payload(s));
    const fixed::Sample hybrid_out =
        hybrid.decode(stored, hybrid.encode_safe(s));
    if (hybrid_out == s) ++hybrid_wins;
    (void)ecc;
    (void)dream;
  }
  ASSERT_GT(trials, 50);
  // The hybrid must repair every burst confined to the sign run.
  EXPECT_EQ(hybrid_wins, trials);
}

TEST(DreamSecDed, DoubleErrorSplitAcrossRegionsCorrected) {
  // One error inside the mask region + one anywhere: ECC alone only
  // detects the double; the hybrid first fixes nothing via ECC (double),
  // then the mask pass repairs the in-region bit... leaving a single
  // residual error in the extracted data. Verify the common benign case:
  // both errors inside the region -> fully repaired.
  const DreamSecDed hybrid;
  const auto s = static_cast<fixed::Sample>(-3);  // run 14
  const std::uint16_t safe = hybrid.encode_safe(s);
  const std::uint32_t clean = hybrid.encode_payload(s);
  // Flip two data bits in the MSB region (positions 15 and 13 of the data
  // word; translate by re-encoding).
  const auto corrupted = static_cast<fixed::Sample>(
      static_cast<std::uint16_t>(s) ^ 0xA000u);
  const std::uint32_t stored =
      clean ^ (hybrid.encode_payload(corrupted) ^ clean);
  EXPECT_EQ(hybrid.decode(stored, safe), s);
}

TEST(DreamSecDed, CountersReportCorrections) {
  const DreamSecDed hybrid;
  CodecCounters counters;
  const auto s = static_cast<fixed::Sample>(100);
  const std::uint32_t code = hybrid.encode_payload(s);
  const std::uint16_t safe = hybrid.encode_safe(s);
  (void)hybrid.decode(code, safe, &counters);
  (void)hybrid.decode(code ^ 0x2u, safe, &counters);
  EXPECT_EQ(counters.decodes, 2u);
  EXPECT_EQ(counters.corrected_words, 1u);
}

TEST(DreamSecDed, StrictlyStrongerThanBothParentsUnderRandomFaults) {
  // Monte-Carlo: random 1-3 bit fault patterns on random small samples —
  // the realistic deep-voltage mix, where single-bit faults dominate and
  // the hybrid corrects all of them (ECC stage) plus every multi-bit
  // burst inside the sign run (DREAM stage). Count exact-recovery rates;
  // the hybrid must dominate both parents.
  const DreamSecDed hybrid;
  const EccSecDed ecc;
  const Dream dream;
  util::Xoshiro256 rng(123);
  int hybrid_ok = 0;
  int ecc_ok = 0;
  int dream_ok = 0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    const auto s = static_cast<fixed::Sample>(
        static_cast<int>(rng.bounded(4096)) - 2048);
    const int nbits = 1 + static_cast<int>(rng.bounded(3));
    std::uint32_t payload_corruption = 0;
    while (__builtin_popcount(payload_corruption) < nbits) {
      payload_corruption |= 1u << rng.bounded(22);
    }
    // Hybrid / ECC share the 22-bit codeword; DREAM stores raw 16 bits —
    // restrict its corruption to the low 16 bits of the same pattern.
    const fixed::Sample h = hybrid.decode(
        hybrid.encode_payload(s) ^ payload_corruption, hybrid.encode_safe(s));
    const fixed::Sample e =
        ecc.decode(ecc.encode_payload(s) ^ payload_corruption, 0);
    const fixed::Sample d =
        dream.decode(dream.encode_payload(s) ^
                         (payload_corruption & 0xFFFFu),
                     dream.encode_safe(s));
    hybrid_ok += (h == s);
    ecc_ok += (e == s);
    dream_ok += (d == s);
  }
  EXPECT_GT(hybrid_ok, ecc_ok);
  EXPECT_GT(hybrid_ok, dream_ok);
  // Meaningful recovery on 1-3 bit faults (all singles plus multi-bit
  // errors landing on check bits or inside the sign run are repaired).
  EXPECT_GT(hybrid_ok, trials * 2 / 5);
}

}  // namespace
}  // namespace ulpdream::core
