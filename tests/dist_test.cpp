// The distributed campaign runtime's contract, pinned deterministically:
// a coordinator fed by socket workers — including workers that lie in
// the handshake, die mid-lease, or die between leases — must publish a
// merged columnar store byte-identical to a single-process
// save_columnar of the same spec. FakeWorker speaks the real wire
// protocol over a socketpair, so every test here exercises the same
// bytes a TCP worker would send, without listeners, child processes or
// timing-dependent sleeps. The malformed-frame matrix pins the error
// taxonomy: transport-level garbage is a util::FrameError of the exact
// kind, payload-level garbage is a dist::ProtocolError, and both name
// the peer.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ulpdream/campaign/session.hpp"
#include "ulpdream/campaign/spec.hpp"
#include "ulpdream/dist/coordinator.hpp"
#include "ulpdream/dist/fake_worker.hpp"
#include "ulpdream/dist/lease_table.hpp"
#include "ulpdream/dist/protocol.hpp"
#include "ulpdream/ecg/database.hpp"
#include "ulpdream/energy/energy_model.hpp"
#include "ulpdream/util/socket.hpp"

namespace ulpdream::dist {
namespace {

namespace fs = std::filesystem;
using campaign::CampaignSpec;
using campaign::RecordAxis;
using util::Frame;
using util::FrameError;
using util::Socket;

/// Small, fast grid; reps scales the item count for re-lease tests.
CampaignSpec small_spec(std::uint64_t seed, std::size_t reps = 3) {
  CampaignSpec spec;
  spec.apps = {"dwt"};
  spec.emts = {"none", "dream"};
  spec.voltages = {0.7, 0.8};
  spec.records = {RecordAxis{ecg::Pathology::kNormalSinus, 1.0, 7}};
  spec.repetitions = reps;
  spec.seed = seed;
  return spec.normalized();
}

std::string slurp(const fs::path& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is) << "cannot open " << path;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

/// Fresh scratch directory per test (spool + outputs).
fs::path scratch(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("ulpd_dist_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// The single-process reference: one Session, whole grid, save_columnar.
std::string reference_columnar_bytes(const CampaignSpec& spec,
                                     const fs::path& dir) {
  campaign::Session session(energy::SystemEnergyModel(), 2);
  const campaign::ResultStore store = session.submit(spec).take();
  const fs::path path = dir / "reference.ulpdcol";
  store.save_columnar(path.string());
  return slurp(path);
}

FakeWorker::Options named(const std::string& name) {
  FakeWorker::Options options;
  options.name = name;
  return options;
}

Coordinator::Options coordinator_options(const fs::path& dir) {
  Coordinator::Options options;
  options.spool_dir = (dir / "spool").string();
  options.store_out = (dir / "merged.ulpdcol").string();
  options.lease_items = 3;
  options.lease_ttl_ms = 60'000;  // generous: tests kill sockets, not time
  options.heartbeat_ms = 100;
  return options;
}

// ---------------------------------------------------------------------------
// LeaseTable

using Clock = LeaseTable::Clock;

TEST(LeaseTable, GrantsChunksUntilPoolDrainsThenRefusesUntilCompletion) {
  LeaseTable table(10, 4, std::chrono::seconds(60));
  const auto now = Clock::now();
  LeaseTable::Lease a;
  LeaseTable::Lease b;
  LeaseTable::Lease c;
  ASSERT_TRUE(table.grant("w1", now, a));
  EXPECT_EQ(a.begin, 0u);
  EXPECT_EQ(a.end, 4u);
  ASSERT_TRUE(table.grant("w2", now, b));
  EXPECT_EQ(b.begin, 4u);
  EXPECT_EQ(b.end, 8u);
  ASSERT_TRUE(table.grant("w1", now, c));
  EXPECT_EQ(c.begin, 8u);
  EXPECT_EQ(c.end, 10u);  // last grant clipped to the pool
  LeaseTable::Lease d;
  EXPECT_FALSE(table.grant("w2", now, d));  // everything leased out
  EXPECT_EQ(table.active_leases(), 3u);

  EXPECT_TRUE(table.complete(a.id));
  EXPECT_TRUE(table.complete(b.id));
  EXPECT_FALSE(table.all_done());
  EXPECT_TRUE(table.complete(c.id));
  EXPECT_TRUE(table.all_done());
  EXPECT_EQ(table.items_done(), 10u);
  EXPECT_EQ(table.active_leases(), 0u);
}

TEST(LeaseTable, ExpiredLeaseReturnsToFrontAndStaleCompleteIsFlagged) {
  LeaseTable table(8, 8, std::chrono::milliseconds(100));
  const auto t0 = Clock::now();
  LeaseTable::Lease original;
  ASSERT_TRUE(table.grant("w1", t0, original));

  // Renew keeps it alive past the first deadline...
  ASSERT_TRUE(table.renew(original.id, t0 + std::chrono::milliseconds(90)));
  EXPECT_TRUE(table.expire_due(t0 + std::chrono::milliseconds(150)).empty());

  // ...but silence expires it, and the range is grantable again.
  const auto expired = table.expire_due(t0 + std::chrono::seconds(1));
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].id, original.id);
  LeaseTable::Lease release;
  ASSERT_TRUE(table.grant("w2", t0 + std::chrono::seconds(1), release));
  EXPECT_EQ(release.begin, original.begin);
  EXPECT_EQ(release.end, original.end);

  // The original worker finishing anyway is stale — complete() says so,
  // complete_range() still credits the items exactly once.
  EXPECT_FALSE(table.complete(original.id));
  table.complete_range(original.begin, original.end);
  EXPECT_TRUE(table.all_done());
  table.complete_range(original.begin, original.end);  // idempotent
  EXPECT_EQ(table.items_done(), 8u);
}

TEST(LeaseTable, RevokedRangesStayContiguousAndSkipFinishedWork) {
  LeaseTable table(12, 4, std::chrono::seconds(60));
  const auto now = Clock::now();
  LeaseTable::Lease a;
  LeaseTable::Lease b;
  ASSERT_TRUE(table.grant("dead", now, a));   // [0, 4)
  ASSERT_TRUE(table.grant("live", now, b));   // [4, 8)
  ASSERT_TRUE(table.complete(b.id));

  const auto revoked = table.revoke_owner("dead");
  ASSERT_EQ(revoked.size(), 1u);
  EXPECT_EQ(revoked[0].begin, 0u);

  // Revoked [0, 4) comes back FIRST (front of the pool), then [8, 12).
  LeaseTable::Lease next;
  ASSERT_TRUE(table.grant("live", now, next));
  EXPECT_EQ(next.begin, 0u);
  EXPECT_EQ(next.end, 4u);
  ASSERT_TRUE(table.grant("live", now, next));
  EXPECT_EQ(next.begin, 8u);
  EXPECT_EQ(next.end, 12u);

  // A re-leased range whose middle finished under another lease is
  // clipped around the done interval, never re-granted.
  table.complete_range(1, 3);
  const auto relisted = table.revoke_owner("live");
  EXPECT_EQ(relisted.size(), 2u);
  ASSERT_TRUE(table.grant("w3", now, next));
  EXPECT_EQ(next.begin, 0u);
  EXPECT_EQ(next.end, 1u);  // clipped at the done interval [1, 3)
  ASSERT_TRUE(table.grant("w3", now, next));
  EXPECT_EQ(next.begin, 3u);
  EXPECT_EQ(next.end, 4u);
}

// ---------------------------------------------------------------------------
// Malformed-frame matrix: every way a peer can fail to speak the
// protocol maps to a distinct, typed, peer-naming error.

TEST(Protocol, CleanEofBetweenFramesIsNotAnError) {
  auto [near, far] = Socket::socketpair("eof-test");
  far.close();
  Frame frame;
  EXPECT_FALSE(util::read_frame(near, frame, kMaxFrameBytes));
}

TEST(Protocol, BadMagicThrowsNamingThePeer) {
  auto [near, far] = Socket::socketpair("magic-test");
  const char junk[24] = "this is not a frame....";
  far.write_all(junk, sizeof junk);
  Frame frame;
  try {
    (void)util::read_frame(near, frame, kMaxFrameBytes);
    FAIL() << "garbage magic must throw";
  } catch (const FrameError& e) {
    EXPECT_EQ(e.kind(), FrameError::Kind::kBadMagic);
    EXPECT_NE(std::string(e.what()).find("magic-test"), std::string::npos)
        << e.what();
  }
}

TEST(Protocol, OversizedLengthPrefixThrowsBeforeAllocating) {
  auto [near, far] = Socket::socketpair("oversize-test");
  std::uint8_t header[util::kFrameHeaderBytes] = {};
  std::memcpy(header, util::kFrameMagic, 8);
  const std::uint32_t type = 1;
  std::memcpy(header + 8, &type, 4);
  const std::uint64_t huge = std::uint64_t(1) << 40;  // 1 TiB claim
  std::memcpy(header + 16, &huge, 8);
  far.write_all(header, sizeof header);
  Frame frame;
  try {
    (void)util::read_frame(near, frame, kMaxFrameBytes);
    FAIL() << "oversized length prefix must throw";
  } catch (const FrameError& e) {
    EXPECT_EQ(e.kind(), FrameError::Kind::kOversized);
    EXPECT_NE(std::string(e.what()).find("oversize-test"), std::string::npos);
  }
}

TEST(Protocol, TruncatedHeaderThrowsTruncated) {
  auto [near, far] = Socket::socketpair("trunc-header");
  const char partial[10] = {'U', 'L', 'P', 'D', 'F', 'R', 'M', '1', 0, 0};
  far.write_all(partial, sizeof partial);
  far.close();  // died 10 bytes into a 24-byte header
  Frame frame;
  try {
    (void)util::read_frame(near, frame, kMaxFrameBytes);
    FAIL() << "mid-header EOF must throw";
  } catch (const FrameError& e) {
    EXPECT_EQ(e.kind(), FrameError::Kind::kTruncated);
    EXPECT_NE(std::string(e.what()).find("trunc-header"), std::string::npos);
  }
}

TEST(Protocol, MidFramePayloadDisconnectThrowsTruncated) {
  auto [near, far] = Socket::socketpair("trunc-payload");
  std::uint8_t header[util::kFrameHeaderBytes] = {};
  std::memcpy(header, util::kFrameMagic, 8);
  const std::uint32_t type = 7;
  std::memcpy(header + 8, &type, 4);
  const std::uint64_t claimed = 100;
  std::memcpy(header + 16, &claimed, 8);
  far.write_all(header, sizeof header);
  far.write_all("only ten b", 10);  // 10 of the claimed 100 bytes
  far.close();
  Frame frame;
  try {
    (void)util::read_frame(near, frame, kMaxFrameBytes);
    FAIL() << "mid-payload EOF must throw";
  } catch (const FrameError& e) {
    EXPECT_EQ(e.kind(), FrameError::Kind::kTruncated);
    EXPECT_NE(std::string(e.what()).find("trunc-payload"), std::string::npos);
  }
}

TEST(Protocol, GarbagePayloadThrowsProtocolErrorNamingTheField) {
  auto [near, far] = Socket::socketpair("garbage-payload");
  // A LeaseGrant claims three u64s; three junk bytes cannot satisfy the
  // first field, and the decoder must say which one.
  const std::vector<std::uint8_t> junk = {0xde, 0xad, 0xbf};
  util::write_frame(far, static_cast<std::uint32_t>(MsgType::kLeaseGrant),
                    junk);
  Frame frame;
  ASSERT_TRUE(util::read_frame(near, frame, kMaxFrameBytes));
  try {
    (void)decode_lease_grant(frame, near.peer());
    FAIL() << "truncated field must throw";
  } catch (const ProtocolError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("garbage-payload"), std::string::npos) << what;
    EXPECT_NE(what.find("truncated field 'lease_id'"), std::string::npos)
        << what;
  }
}

TEST(Protocol, TrailingBytesAfterValidPayloadAreRejected) {
  auto [near, far] = Socket::socketpair("trailing-bytes");
  // A valid HelloOk (three u64s) plus one smuggled byte.
  std::vector<std::uint8_t> payload(25, 0);
  util::write_frame(far, static_cast<std::uint32_t>(MsgType::kHelloOk),
                    payload);
  Frame frame;
  ASSERT_TRUE(util::read_frame(near, frame, kMaxFrameBytes));
  try {
    (void)decode_hello_ok(frame, near.peer());
    FAIL() << "trailing bytes must throw";
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("trailing bytes"),
              std::string::npos)
        << e.what();
  }
}

TEST(Protocol, DecodingTheWrongTypeNamesBothTypes) {
  auto [near, far] = Socket::socketpair("wrong-type");
  send(far, Goodbye{});
  Frame frame;
  ASSERT_TRUE(receive(near, frame));
  try {
    (void)decode_hello(frame, near.peer());
    FAIL() << "type mismatch must throw";
  } catch (const ProtocolError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("expected Hello frame, got Goodbye"),
              std::string::npos)
        << what;
  }
}

TEST(Protocol, MessagesRoundTripThroughTheWire) {
  auto [near, far] = Socket::socketpair("round-trip");
  send(far, Hello{kProtocolVersion, "fp-abc", "w0"});
  send(far, LeaseGrant{7, 12, 24});
  send(far, LeaseResult{7, {1, 2, 3, 4, 5}});
  send(far, NoWork{true, 250});
  Frame frame;
  ASSERT_TRUE(receive(near, frame));
  const Hello hello = decode_hello(frame, near.peer());
  EXPECT_EQ(hello.version, kProtocolVersion);
  EXPECT_EQ(hello.fingerprint, "fp-abc");
  EXPECT_EQ(hello.worker_name, "w0");
  ASSERT_TRUE(receive(near, frame));
  const LeaseGrant grant = decode_lease_grant(frame, near.peer());
  EXPECT_EQ(grant.lease_id, 7u);
  EXPECT_EQ(grant.begin, 12u);
  EXPECT_EQ(grant.end, 24u);
  ASSERT_TRUE(receive(near, frame));
  const LeaseResult result = decode_lease_result(frame, near.peer());
  EXPECT_EQ(result.lease_id, 7u);
  EXPECT_EQ(result.store_bytes, (std::vector<std::uint8_t>{1, 2, 3, 4, 5}));
  ASSERT_TRUE(receive(near, frame));
  const NoWork nowork = decode_no_work(frame, near.peer());
  EXPECT_TRUE(nowork.campaign_done);
  EXPECT_EQ(nowork.retry_ms, 250u);
}

// ---------------------------------------------------------------------------
// Coordinator + FakeWorker end-to-end.

TEST(Coordinator, ThreeWorkersMergeByteIdenticalToSingleProcessRun) {
  const fs::path dir = scratch("three_workers");
  const CampaignSpec spec = small_spec(2016, 6);  // 24 items, 8 leases
  const std::string reference = reference_columnar_bytes(spec, dir);

  const auto options = coordinator_options(dir);
  Coordinator coordinator(spec, options);
  FakeWorker w0(spec, coordinator, named("fw0"));
  FakeWorker w1(spec, coordinator, named("fw1"));
  FakeWorker w2(spec, coordinator, named("fw2"));
  const Coordinator::Report report = coordinator.serve();
  w0.join();
  w1.join();
  w2.join();

  EXPECT_EQ(w0.error(), "");
  EXPECT_EQ(w1.error(), "");
  EXPECT_EQ(w2.error(), "");
  EXPECT_EQ(report.workers_seen, 3u);
  EXPECT_EQ(report.workers_rejected, 0u);
  EXPECT_GE(report.shards_ingested, spec.item_count() / options.lease_items);
  EXPECT_EQ(w0.report().leases_completed + w1.report().leases_completed +
                w2.report().leases_completed,
            report.shards_ingested);
  // Every worker contributed (3 workers, 8 leases, blocking grants).
  EXPECT_GT(w0.report().items_executed, 0u);

  EXPECT_EQ(slurp(options.store_out), reference)
      << "merged store differs from the single-process reference";
  // The fold of worker metrics saw real execution.
  const auto& counters = report.worker_metrics.counters;
  const auto items = counters.find("campaign.items_completed");
  if (items != counters.end()) {
    EXPECT_GE(items->second, spec.item_count());
  }
}

TEST(Coordinator, WorkerDeathMidLeaseIsReleasedAndMergeStaysByteIdentical) {
  const fs::path dir = scratch("mid_lease_death");
  const CampaignSpec spec = small_spec(99, 4);  // 16 items
  const std::string reference = reference_columnar_bytes(spec, dir);

  const auto options = coordinator_options(dir);
  Coordinator coordinator(spec, options);
  // The victim accepts one grant and vanishes without executing it; its
  // disconnect must revoke the lease so the survivor finishes the grid.
  FakeWorker::Options victim_options = named("victim");
  victim_options.die_mid_lease = true;
  FakeWorker victim(spec, coordinator, victim_options);
  FakeWorker survivor(spec, coordinator, named("survivor"));
  const Coordinator::Report report = coordinator.serve();
  victim.join();
  survivor.join();

  EXPECT_EQ(survivor.error(), "");
  EXPECT_GE(report.leases_revoked + report.leases_expired, 1u)
      << "the victim's lease was never taken back";
  EXPECT_EQ(slurp(options.store_out), reference)
      << "merged store differs after mid-lease worker death";
}

TEST(Coordinator, WorkerDeathBetweenLeasesIsAbsorbed) {
  const fs::path dir = scratch("between_lease_death");
  const CampaignSpec spec = small_spec(7, 6);  // 24 items, 8 leases
  const std::string reference = reference_columnar_bytes(spec, dir);

  const auto options = coordinator_options(dir);
  Coordinator coordinator(spec, options);
  FakeWorker::Options mortal_options = named("mortal");
  mortal_options.die_after_leases = 1;
  FakeWorker mortal(spec, coordinator, mortal_options);
  FakeWorker survivor(spec, coordinator, named("survivor"));
  const Coordinator::Report report = coordinator.serve();
  mortal.join();
  survivor.join();

  EXPECT_EQ(mortal.report().leases_completed, 1u);
  EXPECT_EQ(survivor.error(), "");
  EXPECT_GE(report.shards_ingested,
            spec.item_count() / options.lease_items);
  EXPECT_EQ(slurp(options.store_out), reference);
}

TEST(Coordinator, FingerprintMismatchIsRejectedQuotingBothFingerprints) {
  const fs::path dir = scratch("fingerprint_reject");
  const CampaignSpec spec = small_spec(11, 2);

  const auto options = coordinator_options(dir);
  Coordinator coordinator(spec, options);
  FakeWorker::Options imposter_options = named("imposter");
  imposter_options.fingerprint_override = "bogus-fingerprint";
  FakeWorker imposter(spec, coordinator, imposter_options);
  FakeWorker honest(spec, coordinator, named("honest"));
  const Coordinator::Report report = coordinator.serve();
  imposter.join();
  honest.join();

  EXPECT_EQ(report.workers_rejected, 1u);
  EXPECT_EQ(honest.error(), "");
  const std::string& error = imposter.error();
  EXPECT_NE(error.find("bogus-fingerprint"), std::string::npos) << error;
  EXPECT_NE(error.find(spec.fingerprint()), std::string::npos)
      << "rejection must quote the coordinator's fingerprint too: " << error;
}

TEST(Coordinator, ProtocolVersionMismatchIsRejectedQuotingBothVersions) {
  const fs::path dir = scratch("version_reject");
  const CampaignSpec spec = small_spec(12, 2);

  const auto options = coordinator_options(dir);
  Coordinator coordinator(spec, options);
  FakeWorker::Options relic_options = named("relic");
  relic_options.version = 999;
  FakeWorker relic(spec, coordinator, relic_options);
  FakeWorker honest(spec, coordinator, named("honest"));
  const Coordinator::Report report = coordinator.serve();
  relic.join();
  honest.join();

  EXPECT_EQ(report.workers_rejected, 1u);
  const std::string& error = relic.error();
  EXPECT_NE(error.find("999"), std::string::npos) << error;
  EXPECT_NE(error.find(std::to_string(kProtocolVersion)),
            std::string::npos)
      << error;
  EXPECT_EQ(slurp(options.store_out),
            reference_columnar_bytes(spec, dir));
}

TEST(Coordinator, RequiresSpoolDirAndStoreOut) {
  const CampaignSpec spec = small_spec(1, 1);
  Coordinator::Options no_spool;
  no_spool.store_out = "/tmp/x.ulpdcol";
  EXPECT_THROW(Coordinator(spec, no_spool), std::invalid_argument);
  Coordinator::Options no_store;
  no_store.spool_dir = "/tmp";
  EXPECT_THROW(Coordinator(spec, no_store), std::invalid_argument);
}

}  // namespace
}  // namespace ulpdream::dist
