#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "ulpdream/ecg/database.hpp"
#include "ulpdream/ecg/generator.hpp"
#include "ulpdream/ecg/noise.hpp"
#include "ulpdream/ecg/pqrst_model.hpp"
#include "ulpdream/ecg/rhythm.hpp"

namespace ulpdream::ecg {
namespace {

TEST(Pqrst, RWaveDominates) {
  const BeatMorphology m = normal_morphology();
  const std::vector<double> beat = render_beat(m, 250);
  const auto max_it = std::max_element(beat.begin(), beat.end());
  const double r_pos = static_cast<double>(max_it - beat.begin()) / 250.0;
  EXPECT_NEAR(r_pos, m.waves[2].center_frac, 0.02);
  EXPECT_GT(*max_it, 1.0);  // > 1 mV
}

TEST(Pqrst, PvcHasNoPWave) {
  const BeatMorphology m = pvc_morphology();
  EXPECT_DOUBLE_EQ(m.waves[0].amplitude_mv, 0.0);
  // PVC T wave is inverted (discordant).
  EXPECT_LT(m.waves[4].amplitude_mv, 0.0);
}

TEST(Pqrst, ValueAtSumsWaves) {
  const BeatMorphology m = normal_morphology();
  // At the R center the value is dominated by the R amplitude.
  EXPECT_NEAR(m.value_at(m.waves[2].center_frac), m.waves[2].amplitude_mv,
              0.25);
}

TEST(Rhythm, MeanRateRespected) {
  util::Xoshiro256 rng(1);
  RhythmParams p;
  p.mean_hr_bpm = 60.0;
  const auto beats = generate_rhythm(p, 120.0, rng);
  ASSERT_GT(beats.size(), 100u);
  double sum_rr = 0.0;
  for (const auto& b : beats) sum_rr += b.rr_s;
  EXPECT_NEAR(sum_rr / static_cast<double>(beats.size()), 1.0, 0.05);
}

TEST(Rhythm, BeatsAreContiguous) {
  util::Xoshiro256 rng(2);
  const auto beats = generate_rhythm(RhythmParams{}, 30.0, rng);
  for (std::size_t i = 1; i < beats.size(); ++i) {
    EXPECT_NEAR(beats[i].onset_s, beats[i - 1].onset_s + beats[i - 1].rr_s,
                1e-9);
  }
}

TEST(Rhythm, RrWithinPhysiologicBounds) {
  util::Xoshiro256 rng(3);
  RhythmParams p;
  p.afib_irregularity = 0.25;
  const auto beats = generate_rhythm(p, 60.0, rng);
  for (const auto& b : beats) {
    EXPECT_GE(b.rr_s, 0.3);
    EXPECT_LE(b.rr_s, 2.5);
  }
}

TEST(Rhythm, PvcProbabilityProducesPvcs) {
  util::Xoshiro256 rng(4);
  RhythmParams p;
  p.pvc_probability = 0.3;
  const auto beats = generate_rhythm(p, 120.0, rng);
  const auto pvc_count = std::count_if(beats.begin(), beats.end(),
                                       [](const auto& b) { return b.is_pvc; });
  EXPECT_GT(pvc_count, 10);
}

TEST(Noise, AddsBoundedPerturbation) {
  util::Xoshiro256 rng(5);
  std::vector<double> sig(1000, 0.0);
  NoiseParams p;
  add_noise(sig, 250.0, p, rng);
  double max_abs = 0.0;
  double sum = 0.0;
  for (double v : sig) {
    max_abs = std::max(max_abs, std::fabs(v));
    sum += v;
  }
  EXPECT_GT(max_abs, 0.01);  // noise was actually added
  EXPECT_LT(max_abs, 1.0);   // but bounded well below QRS amplitude
  EXPECT_NEAR(sum / 1000.0, 0.0, 0.1);
}

TEST(Generator, ProducesRequestedLength) {
  GeneratorConfig cfg;
  cfg.duration_s = 4.0;
  cfg.fs_hz = 250.0;
  const Record rec = generate_record(cfg);
  EXPECT_EQ(rec.samples.size(), 1000u);
  EXPECT_EQ(rec.samples.size(), rec.waveform_mv.size());
}

TEST(Generator, DeterministicForSeed) {
  GeneratorConfig cfg;
  cfg.seed = 99;
  const Record a = generate_record(cfg);
  const Record b = generate_record(cfg);
  EXPECT_EQ(a.samples, b.samples);
}

TEST(Generator, DifferentSeedsDiffer) {
  GeneratorConfig cfg;
  cfg.seed = 1;
  const Record a = generate_record(cfg);
  cfg.seed = 2;
  const Record b = generate_record(cfg);
  EXPECT_NE(a.samples, b.samples);
}

TEST(Generator, MostSamplesNegative) {
  // The paper's Sec. III observation: most biosignal samples are negative
  // (front-end DC offset) — our generator must reproduce it since it
  // drives the Fig. 2 stuck-at-1 asymmetry.
  const Record rec = make_default_record();
  std::size_t negative = 0;
  for (const auto s : rec.samples) {
    if (s < 0) ++negative;
  }
  EXPECT_GT(static_cast<double>(negative) /
                static_cast<double>(rec.samples.size()),
            0.6);
}

TEST(Generator, SamplesDoNotUseFullRange) {
  // DREAM's premise: ADC samples have long constant-MSB runs (values well
  // below full scale). Verify mean sign-run length is substantial.
  const Record rec = make_default_record();
  double run_sum = 0.0;
  for (const auto s : rec.samples) {
    run_sum += fixed::sign_run_length(s);
  }
  EXPECT_GT(run_sum / static_cast<double>(rec.samples.size()), 3.0);
}

TEST(Generator, GroundTruthContainsRPeaks) {
  const Record rec = make_default_record();
  EXPECT_FALSE(rec.r_locations.empty());
  // Expect roughly heart-rate many R peaks: 8.2 s at 72 bpm ~ 9-10 beats.
  EXPECT_GE(rec.r_locations.size(), 6u);
  EXPECT_LE(rec.r_locations.size(), 14u);
  // Each R location must carry a matching truth annotation.
  std::size_t r_truth = 0;
  for (const auto& f : rec.truth) {
    if (f.type == metrics::FiducialType::kR) ++r_truth;
  }
  EXPECT_EQ(r_truth, rec.r_locations.size());
}

TEST(Generator, RPeaksAreLocalMaxima) {
  const Record rec = make_default_record();
  for (const std::size_t r : rec.r_locations) {
    if (r < 6 || r + 6 >= rec.samples.size()) continue;
    // The true signal maximum in a +/-6 sample window must lie within a
    // few samples of the annotated R position (the R Gaussian is ~2
    // samples wide, so amplitude at +/-1 sample already drops steeply —
    // compare positions, not amplitudes).
    std::size_t argmax = r - 6;
    for (std::size_t i = r - 6; i <= r + 6; ++i) {
      if (rec.samples[i] > rec.samples[argmax]) argmax = i;
    }
    EXPECT_LE(argmax > r ? argmax - r : r - argmax, 3u);
  }
}

TEST(Generator, AfibHasNoPWaves) {
  GeneratorConfig cfg;
  cfg.pathology = Pathology::kAtrialFib;
  const Record rec = generate_record(cfg);
  for (const auto& f : rec.truth) {
    EXPECT_NE(f.type, metrics::FiducialType::kP);
  }
}

TEST(Generator, BradycardiaSlowerThanTachycardia) {
  GeneratorConfig cfg;
  cfg.pathology = Pathology::kBradycardia;
  cfg.duration_s = 30.0;
  const Record brady = generate_record(cfg);
  cfg.pathology = Pathology::kTachycardia;
  const Record tachy = generate_record(cfg);
  EXPECT_LT(brady.r_locations.size(), tachy.r_locations.size());
}

TEST(Database, CoversAllPathologies) {
  DatabaseConfig cfg;
  cfg.records_per_pathology = 1;
  const auto db = make_database(cfg);
  EXPECT_EQ(db.size(), 6u);
  // Names must be distinct.
  for (std::size_t i = 0; i < db.size(); ++i) {
    for (std::size_t j = i + 1; j < db.size(); ++j) {
      EXPECT_NE(db[i].name, db[j].name);
    }
  }
}

TEST(Database, RecordsLongEnoughForApps) {
  const auto db = make_database(DatabaseConfig{});
  for (const auto& rec : db) {
    EXPECT_GE(rec.samples.size(), 2048u) << rec.name;
  }
}

class PathologySweep : public ::testing::TestWithParam<Pathology> {};

TEST_P(PathologySweep, GeneratesValidBoundedSignal) {
  GeneratorConfig cfg;
  cfg.pathology = GetParam();
  cfg.seed = 31;
  const Record rec = generate_record(cfg);
  ASSERT_FALSE(rec.samples.empty());
  // Signal must not rail the ADC.
  for (const auto s : rec.samples) {
    EXPECT_GT(s, fixed::kSampleMin + 100);
    EXPECT_LT(s, fixed::kSampleMax - 100);
  }
  EXPECT_FALSE(rec.r_locations.empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllPathologies, PathologySweep,
    ::testing::Values(Pathology::kNormalSinus, Pathology::kBradycardia,
                      Pathology::kTachycardia, Pathology::kPvcBigeminy,
                      Pathology::kAtrialFib, Pathology::kStElevation));

}  // namespace
}  // namespace ulpdream::ecg
