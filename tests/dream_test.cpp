#include <gtest/gtest.h>

#include <cstdint>

#include "ulpdream/core/dream.hpp"
#include "ulpdream/util/rng.hpp"

namespace ulpdream::core {
namespace {

TEST(Dream, PaperOverheadFiveBits) {
  const Dream dream;
  EXPECT_EQ(dream.payload_bits(), 16);
  EXPECT_EQ(dream.safe_bits(), 5);  // 1 sign + log2(16) mask ID
  EXPECT_EQ(dream.extra_bits(), 5); // paper Formula 2
}

TEST(Dream, RoundTripWithoutFaultsIsIdentity) {
  const Dream dream;
  for (int v = -32768; v <= 32767; v += 13) {
    const auto s = static_cast<fixed::Sample>(v);
    const std::uint32_t payload = dream.encode_payload(s);
    const std::uint16_t safe = dream.encode_safe(s);
    EXPECT_EQ(dream.decode(payload, safe), s) << "v=" << v;
  }
}

TEST(Dream, RoundTripExhaustiveBoundaryValues) {
  const Dream dream;
  for (const fixed::Sample s :
       {fixed::Sample(0), fixed::Sample(-1), fixed::Sample(1),
        fixed::Sample(32767), fixed::Sample(-32768), fixed::Sample(255),
        fixed::Sample(-256), fixed::Sample(0x4000), fixed::Sample(-0x4001)}) {
    EXPECT_EQ(dream.decode(dream.encode_payload(s), dream.encode_safe(s)), s);
  }
}

TEST(Dream, SafeWordLayoutSignAndMaskId) {
  const Dream dream;
  // -1 = 0xFFFF: sign 1, run 16 -> mask ID 15.
  EXPECT_EQ(dream.encode_safe(-1), ((15u << 1) | 1u));
  // 1 = 0x0001: sign 0, run 15 -> mask ID 14.
  EXPECT_EQ(dream.encode_safe(1), (14u << 1));
  // 0x7FFF: sign 0, run 1 -> mask ID 0.
  EXPECT_EQ(dream.encode_safe(0x7FFF), 0u);
}

TEST(Dream, CorrectsAllErrorsInsideMaskedRun) {
  const Dream dream;
  // Sample 0x0001 (positive, run 15): any corruption of bits 15..1 must be
  // fully repaired (mask covers 15 MSBs, bit 0 is the inverted-sign bit).
  const fixed::Sample s = 1;
  const std::uint16_t safe = dream.encode_safe(s);
  for (std::uint32_t corruption = 1; corruption < 0x10000; corruption <<= 1) {
    const std::uint32_t corrupted = dream.encode_payload(s) ^ corruption;
    EXPECT_EQ(dream.decode(corrupted, safe), s)
        << "flip bit pattern " << corruption;
  }
}

TEST(Dream, CorrectsMultiBitBurstInMsbs) {
  const Dream dream;
  const fixed::Sample s = -100;  // 0xFF9C: run of 9 sign bits
  const std::uint16_t safe = dream.encode_safe(s);
  // Flip all top 9 bits plus the inverted-sign bit (bit 6).
  const std::uint32_t corrupted = dream.encode_payload(s) ^ 0xFFC0u;
  EXPECT_EQ(dream.decode(corrupted, safe), s);
}

TEST(Dream, DoesNotCorrectLsbErrors) {
  const Dream dream;
  const fixed::Sample s = -100;  // run 9: bits 6..0 unprotected except bit 6
  const std::uint16_t safe = dream.encode_safe(s);
  const std::uint32_t corrupted = dream.encode_payload(s) ^ 0x1u;  // bit 0
  EXPECT_NE(dream.decode(corrupted, safe), s);
  // And the damage equals exactly the LSB flip.
  EXPECT_EQ(dream.decode(corrupted, safe), static_cast<fixed::Sample>(s ^ 1));
}

TEST(Dream, ProtectedRegionIsRunPlusOne) {
  const Dream dream;
  for (int v = -5000; v <= 5000; v += 97) {
    const auto s = static_cast<fixed::Sample>(v);
    const int run = fixed::sign_run_length(s);
    if (run >= 16) continue;
    const std::uint16_t safe = dream.encode_safe(s);
    // Bit (15 - run) is the inverted sign bit: protected.
    const std::uint32_t flip = 1u << (15 - run);
    EXPECT_EQ(dream.decode(dream.encode_payload(s) ^ flip, safe), s)
        << "v=" << v;
    // Bit (14 - run) is NOT protected (if it exists).
    if (15 - run >= 1) {
      const std::uint32_t flip2 = 1u << (14 - run);
      EXPECT_NE(dream.decode(dream.encode_payload(s) ^ flip2, safe), s)
          << "v=" << v;
    }
  }
}

TEST(Dream, RecordedRunMatchesSignRun) {
  const Dream dream;
  for (int v = -32768; v <= 32767; v += 101) {
    const auto s = static_cast<fixed::Sample>(v);
    EXPECT_EQ(dream.recorded_run(s), fixed::sign_run_length(s));
  }
}

TEST(Dream, CountersTrackCorrections) {
  const Dream dream;
  CodecCounters counters;
  const fixed::Sample s = 1;
  const std::uint16_t safe = dream.encode_safe(s);
  (void)dream.decode(dream.encode_payload(s), safe, &counters);       // clean
  (void)dream.decode(dream.encode_payload(s) ^ 0x8000u, safe, &counters);
  EXPECT_EQ(counters.decodes, 2u);
  EXPECT_EQ(counters.corrected_words, 1u);
  EXPECT_EQ(counters.detected_uncorrectable, 0u);
}

TEST(Dream, RejectsBadMaskIdWidth) {
  EXPECT_THROW(Dream(0), std::invalid_argument);
  EXPECT_THROW(Dream(5), std::invalid_argument);
}

class DreamAblationSweep : public ::testing::TestWithParam<int> {};

TEST_P(DreamAblationSweep, QuantizedRunNeverExceedsTrueRun) {
  // D1 ablation soundness: a coarser mask ID must quantize the run DOWN —
  // forcing a bit that was not constant would corrupt clean data.
  const Dream dream(GetParam());
  for (int v = -32768; v <= 32767; v += 53) {
    const auto s = static_cast<fixed::Sample>(v);
    EXPECT_LE(dream.recorded_run(s), fixed::sign_run_length(s));
    EXPECT_GE(dream.recorded_run(s), 1);
  }
}

TEST_P(DreamAblationSweep, RoundTripIdentityAtAllWidths) {
  const Dream dream(GetParam());
  for (int v = -32768; v <= 32767; v += 53) {
    const auto s = static_cast<fixed::Sample>(v);
    EXPECT_EQ(dream.decode(dream.encode_payload(s), dream.encode_safe(s)), s);
  }
}

TEST_P(DreamAblationSweep, SafeBitsShrinkWithMaskId) {
  const Dream dream(GetParam());
  EXPECT_EQ(dream.safe_bits(), 1 + GetParam());
}

INSTANTIATE_TEST_SUITE_P(MaskIdWidths, DreamAblationSweep,
                         ::testing::Values(1, 2, 3, 4));

TEST(Dream, RandomizedCorrectionProperty) {
  // Property over random samples and random MSB-run corruptions: any error
  // pattern confined to the top recorded_run+1 bits is fully corrected.
  const Dream dream;
  util::Xoshiro256 rng(2016);
  for (int trial = 0; trial < 5000; ++trial) {
    const auto s = static_cast<fixed::Sample>(
        static_cast<std::int32_t>(rng.bounded(65536)) - 32768);
    const int run = fixed::sign_run_length(s);
    const int protected_bits = run == 16 ? 16 : run + 1;
    // Random corruption within the protected region.
    std::uint32_t corruption = 0;
    for (int b = 16 - protected_bits; b < 16; ++b) {
      if (rng.bernoulli(0.5)) corruption |= 1u << b;
    }
    const std::uint16_t safe = dream.encode_safe(s);
    EXPECT_EQ(dream.decode(dream.encode_payload(s) ^ corruption, safe), s)
        << "s=" << s << " corruption=" << corruption;
  }
}

}  // namespace
}  // namespace ulpdream::core
