#include <gtest/gtest.h>

#include <cmath>

#include "ulpdream/metrics/delineation_score.hpp"
#include "ulpdream/metrics/quality.hpp"

namespace ulpdream::metrics {
namespace {

TEST(Quality, MseZeroForIdentical) {
  const std::vector<double> x = {1.0, -2.0, 3.0};
  EXPECT_DOUBLE_EQ(mse(x, x), 0.0);
}

TEST(Quality, MseKnownValue) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {2.0, 2.0, 5.0};
  EXPECT_DOUBLE_EQ(mse(a, b), (1.0 + 0.0 + 4.0) / 3.0);
}

TEST(Quality, MseRejectsMismatch) {
  const std::vector<double> a = {1.0};
  const std::vector<double> b = {1.0, 2.0};
  EXPECT_THROW((void)mse(a, b), std::invalid_argument);
  EXPECT_THROW((void)mse(std::vector<double>{}, std::vector<double>{}),
               std::invalid_argument);
}

TEST(Quality, SnrCeilingWhenIdentical) {
  const std::vector<double> x = {5.0, -3.0, 2.0};
  EXPECT_DOUBLE_EQ(snr_db(x, x), kSnrCeilingDb);
}

TEST(Quality, SnrFormulaMatchesPaperFormula1) {
  // Hand-computed: theo = [3,4], exp = [3,2] -> signal RMS = sqrt(12.5),
  // MSE = 2 -> SNR = 20*log10(sqrt(12.5)/sqrt(2)).
  const std::vector<double> theo = {3.0, 4.0};
  const std::vector<double> exp = {3.0, 2.0};
  const double expected = 20.0 * std::log10(std::sqrt(12.5) / std::sqrt(2.0));
  EXPECT_NEAR(snr_db(theo, exp), expected, 1e-12);
}

TEST(Quality, SnrDropsByFactorOfTenErrorIsMinus20Db) {
  std::vector<double> theo(100, 1.0);
  std::vector<double> small = theo;
  std::vector<double> big = theo;
  for (auto& v : small) v += 0.01;
  for (auto& v : big) v += 0.1;
  EXPECT_NEAR(snr_db(theo, small) - snr_db(theo, big), 20.0, 1e-9);
}

TEST(Quality, SnrDegenerateZeroReference) {
  const std::vector<double> theo = {0.0, 0.0};
  const std::vector<double> exp = {1.0, 1.0};
  EXPECT_DOUBLE_EQ(snr_db(theo, exp), -kSnrCeilingDb);
}

TEST(Quality, SampleOverloadAgrees) {
  const fixed::SampleVec a = {100, -200, 300};
  const fixed::SampleVec b = {110, -200, 290};
  EXPECT_NEAR(snr_db(a, b),
              snr_db(fixed::to_doubles(a), fixed::to_doubles(b)), 1e-12);
}

TEST(Quality, PrdZeroForIdentical) {
  const std::vector<double> x = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(prd_percent(x, x), 0.0);
}

TEST(Quality, PrdKnownValue) {
  const std::vector<double> theo = {3.0, 4.0};   // norm 5
  const std::vector<double> exp = {3.0, 3.0};    // error norm 1
  EXPECT_NEAR(prd_percent(theo, exp), 20.0, 1e-12);
}

TEST(Quality, RmsKnown) {
  EXPECT_DOUBLE_EQ(rms({3.0, 4.0}), std::sqrt(12.5));
  EXPECT_DOUBLE_EQ(rms({}), 0.0);
}

TEST(Quality, PsnrUsesPeak) {
  std::vector<double> theo(10, 0.0);
  std::vector<double> exp(10, 1.0);
  EXPECT_NEAR(psnr_db(theo, exp), 20.0 * std::log10(32767.0), 1e-9);
}

TEST(DelineationScore, PerfectMatch) {
  FiducialList ref = {{FiducialType::kR, 100, 500},
                      {FiducialType::kR, 300, 480}};
  const MatchScore s = match_fiducials(ref, ref, 5);
  EXPECT_EQ(s.true_positive, 2u);
  EXPECT_EQ(s.false_positive, 0u);
  EXPECT_EQ(s.false_negative, 0u);
  EXPECT_DOUBLE_EQ(s.sensitivity(), 1.0);
  EXPECT_DOUBLE_EQ(s.ppv(), 1.0);
  EXPECT_DOUBLE_EQ(s.f1(), 1.0);
}

TEST(DelineationScore, ToleranceWindow) {
  const FiducialList ref = {{FiducialType::kR, 100, 0}};
  const FiducialList near_hit = {{FiducialType::kR, 104, 0}};
  const FiducialList miss = {{FiducialType::kR, 110, 0}};
  EXPECT_EQ(match_fiducials(ref, near_hit, 5).true_positive, 1u);
  EXPECT_EQ(match_fiducials(ref, miss, 5).true_positive, 0u);
  EXPECT_EQ(match_fiducials(ref, miss, 5).false_positive, 1u);
}

TEST(DelineationScore, TypeMustMatch) {
  const FiducialList ref = {{FiducialType::kR, 100, 0}};
  const FiducialList wrong_type = {{FiducialType::kT, 100, 0}};
  const MatchScore s = match_fiducials(ref, wrong_type, 5);
  EXPECT_EQ(s.true_positive, 0u);
  EXPECT_EQ(s.false_negative, 1u);
  EXPECT_EQ(s.false_positive, 1u);
}

TEST(DelineationScore, OneToOneMatching) {
  // Two detections near one reference: only one may match.
  const FiducialList ref = {{FiducialType::kR, 100, 0}};
  const FiducialList det = {{FiducialType::kR, 99, 0},
                            {FiducialType::kR, 101, 0}};
  const MatchScore s = match_fiducials(ref, det, 5);
  EXPECT_EQ(s.true_positive, 1u);
  EXPECT_EQ(s.false_positive, 1u);
}

TEST(DelineationScore, FlattenNormalizesOrder) {
  const FiducialList a = {{FiducialType::kR, 300, 5},
                          {FiducialType::kP, 100, 2}};
  const FiducialList b = {{FiducialType::kP, 100, 2},
                          {FiducialType::kR, 300, 5}};
  EXPECT_EQ(flatten_fiducials(a, 4), flatten_fiducials(b, 4));
}

TEST(DelineationScore, FlattenPadsAndTruncates) {
  const FiducialList one = {{FiducialType::kR, 10, 1}};
  const std::vector<double> v = flatten_fiducials(one, 3);
  ASSERT_EQ(v.size(), 6u);
  EXPECT_DOUBLE_EQ(v[0], 10.0);
  EXPECT_DOUBLE_EQ(v[1], 1.0);
  EXPECT_DOUBLE_EQ(v[2], 0.0);

  FiducialList many;
  for (int i = 0; i < 10; ++i) {
    many.push_back({FiducialType::kR, i, static_cast<fixed::Sample>(i)});
  }
  EXPECT_EQ(flatten_fiducials(many, 3).size(), 6u);
}

TEST(DelineationScore, EmptyListsScorePerfect) {
  const MatchScore s = match_fiducials({}, {}, 5);
  EXPECT_DOUBLE_EQ(s.sensitivity(), 1.0);
  EXPECT_DOUBLE_EQ(s.ppv(), 1.0);
}

}  // namespace
}  // namespace ulpdream::metrics
