// The out-of-core columnar persistence contract: a columnar store must
// reproduce the text format's aggregates bit-identically through every
// access mode (mmap, buffered fallback, bounded streaming), every merge
// strategy (in-memory vs append, any shard order) and a checkpoint round
// trip — and every malformed, truncated or mismatched file must fail
// with a typed StoreError naming the path, never an out-of-bounds read.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ulpdream/campaign/columnar.hpp"
#include "ulpdream/campaign/result_store.hpp"
#include "ulpdream/campaign/spec.hpp"
#include "ulpdream/campaign/store_reader.hpp"
#include "ulpdream/util/file_view.hpp"

namespace ulpdream::campaign {
namespace {

namespace fs = std::filesystem;

/// Grid with every axis > 1 so grouping is exercised: 2 apps x 2 EMTs x
/// 2 voltages x 2 records x 2 reps = 8 items, 4 samples per item. Names
/// never resolve against the registries (nothing executes here).
CampaignSpec test_spec(std::uint64_t seed = 99) {
  CampaignSpec spec;
  spec.apps = {"a0", "a1"};
  spec.emts = {"e0", "e1"};
  spec.voltages = {0.6, 0.8};
  spec.records = {RecordAxis{ecg::Pathology::kNormalSinus, 1.0, 7},
                  RecordAxis{ecg::Pathology::kAtrialFib, 1.25, 11}};
  spec.repetitions = 2;
  spec.seed = seed;
  return spec.normalized();
}

Sample synthetic_sample(std::size_t item, std::size_t k) {
  const auto mix = [](std::uint64_t x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return x;
  };
  const std::uint64_t h = mix(item * 11400714819323198485ULL + k + 1);
  Sample s;
  s.snr_db = static_cast<double>(h & 0xFFFF) / 256.0 - 100.0;
  s.energy.data_dynamic_j = static_cast<double>((h >> 8) & 0xFFFF) * 1e-9;
  s.energy.side_dynamic_j = static_cast<double>((h >> 16) & 0xFFFF) * 1e-9;
  s.energy.codec_j = static_cast<double>((h >> 24) & 0xFFFF) * 1e-10;
  s.energy.data_leak_j = static_cast<double>((h >> 32) & 0xFFFF) * 1e-10;
  s.energy.side_leak_j = static_cast<double>((h >> 40) & 0xFFFF) * 1e-10;
  s.corrected_words = static_cast<double>((h >> 48) & 0xFF);
  s.detected_uncorrectable = static_cast<double>((h >> 56) & 0x3);
  return s;
}

/// Fills items i of [0, item_count) with i % stride == phase. `salt`
/// perturbs the synthetic values — overlapping shards filled with
/// different salts hold *different* bytes for the shared items, which is
/// what makes merge-dedup order observable.
void fill(ResultStore& store, std::size_t stride = 1, std::size_t phase = 0,
          std::size_t salt = 0) {
  const CampaignSpec& spec = store.spec();
  const std::size_t per_item = spec.apps.size() * spec.emts.size();
  std::vector<Sample> samples(per_item);
  for (std::size_t i = phase; i < spec.item_count(); i += stride) {
    for (std::size_t k = 0; k < per_item; ++k) {
      samples[k] = synthetic_sample(i, k + salt * 1000);
    }
    WorkItem item;
    item.index = i;
    store.record_item(item, samples);
  }
  for (std::size_t r = 0; r < spec.records.size(); ++r) {
    for (std::size_t a = 0; a < spec.apps.size(); ++a) {
      store.set_max_snr(r, a, 30.0 + static_cast<double>(r * 10 + a));
    }
  }
}

ResultStore full_store(const CampaignSpec& spec) {
  ResultStore store(spec);
  fill(store);
  return store;
}

void expect_rows_identical(const std::vector<AggregateRow>& a,
                           const std::vector<AggregateRow>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "row " << i);
    EXPECT_EQ(a[i].record, b[i].record);
    EXPECT_EQ(a[i].app, b[i].app);
    EXPECT_EQ(a[i].emt, b[i].emt);
    // Voltage is NaN when marginalized; NaN == NaN is false, so compare
    // NaN-ness first.
    if (std::isnan(a[i].voltage) || std::isnan(b[i].voltage)) {
      EXPECT_TRUE(std::isnan(a[i].voltage) && std::isnan(b[i].voltage));
    } else {
      EXPECT_EQ(a[i].voltage, b[i].voltage);
    }
    EXPECT_EQ(a[i].n, b[i].n);
    EXPECT_EQ(a[i].snr_mean_db, b[i].snr_mean_db);
    EXPECT_EQ(a[i].snr_stddev_db, b[i].snr_stddev_db);
    EXPECT_EQ(a[i].snr_min_db, b[i].snr_min_db);
    EXPECT_EQ(a[i].snr_max_db, b[i].snr_max_db);
    EXPECT_EQ(a[i].snr_p10_db, b[i].snr_p10_db);
    EXPECT_EQ(a[i].energy_mean_j, b[i].energy_mean_j);
    EXPECT_EQ(a[i].data_dynamic_j, b[i].data_dynamic_j);
    EXPECT_EQ(a[i].side_dynamic_j, b[i].side_dynamic_j);
    EXPECT_EQ(a[i].codec_j, b[i].codec_j);
    EXPECT_EQ(a[i].data_leak_j, b[i].data_leak_j);
    EXPECT_EQ(a[i].side_leak_j, b[i].side_leak_j);
    EXPECT_EQ(a[i].corrected_mean, b[i].corrected_mean);
    EXPECT_EQ(a[i].detected_mean, b[i].detected_mean);
  }
}

/// RAII temp dir for store files.
struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("ulpdream_columnar_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" +
            ::testing::UnitTest::GetInstance()
                ->current_test_info()
                ->name());
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (path / name).string();
  }
};

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::stringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ---------------------------------------------------------------------------
// Round trip and cross-format identity.

TEST(Columnar, RoundTripPreservesEveryItemSampleAndCeiling) {
  const CampaignSpec spec = test_spec();
  const ResultStore store = full_store(spec);
  TempDir dir;
  const std::string path = dir.file("full.col");
  store.save_columnar(path);

  const ColumnarStore col = ColumnarStore::open(path, spec);
  EXPECT_EQ(col.stored_items(), spec.item_count());
  EXPECT_EQ(col.items_done(), spec.item_count());
  EXPECT_TRUE(col.complete());
  for (std::size_t i = 0; i < spec.item_count(); ++i) {
    EXPECT_TRUE(col.item_done(i)) << "item " << i;
  }
  EXPECT_FALSE(col.item_done(spec.item_count() + 5));
  for (std::size_t r = 0; r < spec.records.size(); ++r) {
    for (std::size_t a = 0; a < spec.apps.size(); ++a) {
      EXPECT_EQ(col.max_snr_db(r, a), store.max_snr_db(r, a));
    }
  }

  // Materialize reproduces the exact text serialization: sample-level
  // bit equality, not just aggregate equality.
  std::ostringstream expected;
  store.save(expected);
  std::ostringstream actual;
  col.materialize().save(actual);
  EXPECT_EQ(actual.str(), expected.str());
}

TEST(Columnar, AggregateIsBitIdenticalToTheInMemoryPathForEveryGrouping) {
  const CampaignSpec spec = test_spec();
  const ResultStore store = full_store(spec);
  TempDir dir;
  const std::string path = dir.file("full.col");
  store.save_columnar(path);
  const ColumnarStore col = ColumnarStore::open(path, spec);

  const std::vector<GroupBy> groupings = {
      GroupBy{},                           // full grid
      GroupBy{false, true, true, true},    // record marginalized
      GroupBy{true, false, false, true},   // app+emt marginalized
      GroupBy{false, false, false, false}  // grand total
  };
  for (std::size_t g = 0; g < groupings.size(); ++g) {
    SCOPED_TRACE(testing::Message() << "grouping " << g);
    expect_rows_identical(col.aggregate(groupings[g]),
                          store.aggregate(groupings[g]));
  }
}

TEST(Columnar, SaveIsByteDeterministic) {
  const CampaignSpec spec = test_spec();
  const ResultStore store = full_store(spec);
  TempDir dir;
  store.save_columnar(dir.file("a.col"));
  store.save_columnar(dir.file("b.col"));
  const std::string a = read_file(dir.file("a.col"));
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, read_file(dir.file("b.col")));
  // No staging file survives a successful publish.
  for (const auto& entry : fs::directory_iterator(dir.path)) {
    EXPECT_EQ(entry.path().filename().string().find(".tmp"),
              std::string::npos)
        << entry.path();
  }
}

TEST(Columnar, FailedSaveLeavesNoPartialOrStagingFile) {
  const CampaignSpec spec = test_spec();
  const ResultStore store = full_store(spec);
  TempDir dir;
  const std::string bad = dir.file("missing_subdir/out.col");
  EXPECT_THROW(store.save_columnar(bad), std::runtime_error);
  EXPECT_FALSE(fs::exists(bad));
  for (const auto& entry : fs::directory_iterator(dir.path)) {
    EXPECT_EQ(entry.path().filename().string().find(".tmp"),
              std::string::npos)
        << entry.path();
  }
}

// ---------------------------------------------------------------------------
// Access modes: mmap, forced fallback, bounded streaming.

TEST(Columnar, BufferedFallbackAndBoundedModeMatchTheMappedPath) {
  const CampaignSpec spec = test_spec();
  const ResultStore store = full_store(spec);
  TempDir dir;
  const std::string path = dir.file("full.col");
  store.save_columnar(path);
  const auto reference = store.aggregate();

  ColumnarStore::OpenOptions no_mmap;
  no_mmap.allow_mmap = false;
  const ColumnarStore buffered = ColumnarStore::open(path, spec, no_mmap);
  EXPECT_FALSE(buffered.mapped());
  EXPECT_FALSE(buffered.bounded());
  expect_rows_identical(buffered.aggregate(), reference);

  // Bounded mode with a deliberately tiny cache: every access pattern
  // (header, index walk, column strides) must survive constant eviction.
  ColumnarStore::OpenOptions bounded;
  bounded.bounded_memory = true;
  bounded.cache_chunk_bytes = 64;
  bounded.cache_chunks = 4;
  const ColumnarStore streaming = ColumnarStore::open(path, spec, bounded);
  EXPECT_TRUE(streaming.bounded());
  EXPECT_FALSE(streaming.mapped());
  expect_rows_identical(streaming.aggregate(), reference);
  std::ostringstream bytes;
  streaming.materialize().save(bytes);
  std::ostringstream expected;
  store.save(expected);
  EXPECT_EQ(bytes.str(), expected.str());
}

TEST(Columnar, EnvKillSwitchForcesTheBufferedFallback) {
  const CampaignSpec spec = test_spec();
  TempDir dir;
  const std::string path = dir.file("full.col");
  full_store(spec).save_columnar(path);

  ::setenv("ULPDREAM_DISABLE_MMAP", "1", 1);
  EXPECT_TRUE(util::mmap_disabled_by_env());
  const ColumnarStore col = ColumnarStore::open(path, spec);
  ::unsetenv("ULPDREAM_DISABLE_MMAP");
  EXPECT_FALSE(util::mmap_disabled_by_env());

  EXPECT_FALSE(col.mapped());
  expect_rows_identical(col.aggregate(),
                        full_store(spec).aggregate());
}

// ---------------------------------------------------------------------------
// Merge strategies and orders.

TEST(Columnar, AppendMergeMatchesInMemoryMergeInEveryShardOrder) {
  const CampaignSpec spec = test_spec();
  const ResultStore reference = full_store(spec);
  const auto reference_rows = reference.aggregate();
  TempDir dir;

  // Four strided shards, saved columnar.
  constexpr std::size_t kShards = 4;
  std::vector<std::string> paths;
  for (std::size_t s = 0; s < kShards; ++s) {
    ResultStore shard(spec);
    fill(shard, kShards, s);
    paths.push_back(dir.file("shard" + std::to_string(s) + ".col"));
    shard.save_columnar(paths.back());
  }

  const std::vector<std::vector<std::size_t>> orders = {
      {0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}};
  for (std::size_t o = 0; o < orders.size(); ++o) {
    SCOPED_TRACE(testing::Message() << "order " << o);
    std::vector<std::string> ordered;
    for (const std::size_t s : orders[o]) ordered.push_back(paths[s]);
    const std::string merged_path =
        dir.file("merged" + std::to_string(o) + ".col");
    ColumnarStore::append_merge(ordered, merged_path, spec);
    const ColumnarStore merged = ColumnarStore::open(merged_path, spec);
    EXPECT_TRUE(merged.complete());
    expect_rows_identical(merged.aggregate(), reference_rows);
    // Sample-level equality too, via the text serialization.
    std::ostringstream expected;
    reference.save(expected);
    std::ostringstream actual;
    merged.materialize().save(actual);
    EXPECT_EQ(actual.str(), expected.str());
  }
}

TEST(Columnar, MixedFormatMergeThroughStoreReaderMatchesTheReference) {
  const CampaignSpec spec = test_spec();
  const ResultStore reference = full_store(spec);
  TempDir dir;

  // Shard 0+2 text, shard 1+3 columnar — the StoreReader seam folds them
  // without the caller caring which is which.
  std::vector<std::string> paths;
  for (std::size_t s = 0; s < 4; ++s) {
    ResultStore shard(spec);
    fill(shard, 4, s);
    const bool text = (s % 2) == 0;
    paths.push_back(
        dir.file("shard" + std::to_string(s) + (text ? ".store" : ".col")));
    save_store(shard, paths.back(),
               text ? StoreFormat::kText : StoreFormat::kColumnar);
  }
  ResultStore merged(spec);
  for (const std::string& path : paths) {
    merged.merge(StoreReader::open(path, spec).materialize());
  }
  std::ostringstream expected;
  reference.save(expected);
  std::ostringstream actual;
  merged.save(actual);
  EXPECT_EQ(actual.str(), expected.str());
}

TEST(Columnar, AppendMergeDeduplicatesOverlapsFirstDoneWins) {
  const CampaignSpec spec = test_spec();
  TempDir dir;

  // Shards overlap on every even item and hold *different* bytes for
  // them (different salt), so which duplicate survives is observable;
  // in-memory merge semantics (first done occurrence wins) are the
  // contract append must match.
  ResultStore a(spec);
  fill(a, 2, 0);  // even items
  ResultStore b(spec);
  fill(b, 1, 0, /*salt=*/7);  // all items, different values
  a.save_columnar(dir.file("a.col"));
  b.save_columnar(dir.file("b.col"));

  ResultStore in_memory(spec);
  in_memory.merge(a);
  in_memory.merge(b);

  ColumnarStore::append_merge({dir.file("a.col"), dir.file("b.col")},
                              dir.file("merged.col"), spec);
  const ColumnarStore merged =
      ColumnarStore::open(dir.file("merged.col"), spec);
  EXPECT_EQ(merged.items_done(), spec.item_count());
  std::ostringstream expected;
  in_memory.save(expected);
  std::ostringstream actual;
  merged.materialize().save(actual);
  EXPECT_EQ(actual.str(), expected.str());
}

// ---------------------------------------------------------------------------
// Format seam.

TEST(StoreReaderSeam, DetectsBothFormatsAndRejectsForeignFiles) {
  const CampaignSpec spec = test_spec();
  const ResultStore store = full_store(spec);
  TempDir dir;
  store.save_atomic(dir.file("run.store"));
  store.save_columnar(dir.file("run.col"));

  EXPECT_EQ(detect_store_format(dir.file("run.store")), StoreFormat::kText);
  EXPECT_EQ(detect_store_format(dir.file("run.col")), StoreFormat::kColumnar);

  write_file(dir.file("junk.bin"), "PNG\x89 definitely not a store");
  EXPECT_THROW((void)detect_store_format(dir.file("junk.bin")), StoreError);
  write_file(dir.file("short.bin"), "abc");
  EXPECT_THROW((void)detect_store_format(dir.file("short.bin")), StoreError);
  EXPECT_THROW((void)detect_store_format(dir.file("absent.bin")), StoreError);

  // Both formats answer the same queries identically through the seam.
  const StoreReader text = StoreReader::open(dir.file("run.store"), spec);
  const StoreReader col = StoreReader::open(dir.file("run.col"), spec);
  EXPECT_EQ(text.format(), StoreFormat::kText);
  EXPECT_EQ(col.format(), StoreFormat::kColumnar);
  EXPECT_EQ(text.items_done(), col.items_done());
  EXPECT_EQ(text.complete(), col.complete());
  EXPECT_TRUE(text.item_done(0));
  EXPECT_TRUE(col.item_done(0));
  expect_rows_identical(col.aggregate(), text.aggregate());
  std::ostringstream ta;
  text.materialize().save(ta);
  std::ostringstream ca;
  col.materialize().save(ca);
  EXPECT_EQ(ca.str(), ta.str());
}

TEST(StoreReaderSeam, ParseStoreFormatNamesTheValidValues) {
  EXPECT_EQ(parse_store_format("text"), StoreFormat::kText);
  EXPECT_EQ(parse_store_format("columnar"), StoreFormat::kColumnar);
  EXPECT_THROW((void)parse_store_format("parquet"), std::invalid_argument);
  EXPECT_STREQ(to_string(StoreFormat::kText), "text");
  EXPECT_STREQ(to_string(StoreFormat::kColumnar), "columnar");
}

// ---------------------------------------------------------------------------
// Malformed-file hardening. Every case must throw StoreError naming the
// path — never crash, never read past the mapping.

/// Expects ColumnarStore::open (all backings) to throw StoreError whose
/// message names the file.
void expect_open_fails(const std::string& path, const CampaignSpec& spec) {
  for (const bool bounded : {false, true}) {
    SCOPED_TRACE(testing::Message() << (bounded ? "bounded" : "mapped"));
    ColumnarStore::OpenOptions options;
    options.bounded_memory = bounded;
    try {
      (void)ColumnarStore::open(path, spec, options);
      FAIL() << "expected StoreError for " << path;
    } catch (const StoreError& e) {
      EXPECT_EQ(e.path(), path);
      EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
          << e.what();
    }
  }
}

TEST(ColumnarHardening, TruncationAtEveryRegionFailsTyped) {
  const CampaignSpec spec = test_spec();
  TempDir dir;
  const std::string good_path = dir.file("good.col");
  full_store(spec).save_columnar(good_path);
  const std::string good = read_file(good_path);
  ASSERT_GT(good.size(), 64u);

  // Cut in the fixed header, in the index, mid-column and one byte short.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{10}, std::size_t{63}, std::size_t{64},
        good.size() / 2, good.size() - 1}) {
    SCOPED_TRACE(testing::Message() << "truncated to " << keep << " bytes");
    const std::string path = dir.file("trunc.col");
    write_file(path, good.substr(0, keep));
    expect_open_fails(path, spec);
  }
}

TEST(ColumnarHardening, BadMagicVersionAndEndiannessFailTyped) {
  const CampaignSpec spec = test_spec();
  TempDir dir;
  const std::string good = [&] {
    const std::string path = dir.file("good.col");
    full_store(spec).save_columnar(path);
    return read_file(path);
  }();

  std::string bad = good;
  bad[0] = 'X';  // magic
  write_file(dir.file("magic.col"), bad);
  expect_open_fails(dir.file("magic.col"), spec);

  bad = good;
  bad[8] = 99;  // version
  write_file(dir.file("version.col"), bad);
  expect_open_fails(dir.file("version.col"), spec);

  bad = good;
  std::swap(bad[12], bad[15]);  // endianness tag byte-reversed
  write_file(dir.file("endian.col"), bad);
  expect_open_fails(dir.file("endian.col"), spec);
}

TEST(ColumnarHardening, FingerprintMismatchNamesBothFingerprints) {
  const CampaignSpec spec = test_spec(99);
  TempDir dir;
  const std::string path = dir.file("store.col");
  full_store(spec).save_columnar(path);

  const CampaignSpec other = test_spec(100);  // different seed
  try {
    (void)ColumnarStore::open(path, other);
    FAIL() << "expected StoreError";
  } catch (const StoreError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("fingerprint"), std::string::npos) << what;
    EXPECT_NE(what.find(spec.fingerprint()), std::string::npos) << what;
    EXPECT_NE(what.find(other.fingerprint()), std::string::npos) << what;
  }
}

TEST(ColumnarHardening, CorruptDirectoryAndIndexFailTyped) {
  const CampaignSpec spec = test_spec();
  TempDir dir;
  const std::string good = [&] {
    const std::string path = dir.file("good.col");
    full_store(spec).save_columnar(path);
    return read_file(path);
  }();

  // Header size lied up: index/column layout no longer fits the file.
  std::string bad = good;
  bad[16] = static_cast<char>(static_cast<unsigned char>(bad[16]) ^ 0x40);
  write_file(dir.file("size.col"), bad);
  expect_open_fails(dir.file("size.col"), spec);

  // Appending junk makes the real size disagree with the header.
  write_file(dir.file("padded.col"), good + "garbage");
  expect_open_fails(dir.file("padded.col"), spec);

  // n_index inflated: the directory lengths disagree with the counts.
  bad = good;
  bad[24] = static_cast<char>(static_cast<unsigned char>(bad[24]) + 1);
  write_file(dir.file("count.col"), bad);
  expect_open_fails(dir.file("count.col"), spec);

  // Locate the index column (fingerprint + max_snr after the 64-byte
  // header, then n_columns + directory) and break its sort order.
  const CampaignSpec norm = spec.normalized();
  const std::size_t fp_pad = (norm.fingerprint().size() + 7) & ~7ull;
  const std::size_t msnr = norm.records.size() * norm.apps.size();
  const std::size_t index_off = 64 + fp_pad + 8 * msnr + 8 + 16 * 11;
  bad = good;
  // items are 0..15 as u64; swapping the first two bytes-of-8 swaps the
  // first two item entries' low bytes (0 <-> 1), breaking ascending order.
  std::swap(bad[index_off], bad[index_off + 8]);
  write_file(dir.file("unsorted.col"), bad);
  expect_open_fails(dir.file("unsorted.col"), spec);

  // An index entry pointing at an out-of-range physical slot.
  bad = good;
  const std::size_t slot_off = index_off + 8 * spec.item_count();
  bad[slot_off] = static_cast<char>(0xEE);
  write_file(dir.file("slot.col"), bad);
  expect_open_fails(dir.file("slot.col"), spec);
}

TEST(ColumnarHardening, TextShortReadsFailTypedThroughTheSeam) {
  const CampaignSpec spec = test_spec();
  TempDir dir;
  const std::string good_path = dir.file("run.store");
  full_store(spec).save_atomic(good_path);
  const std::string good = read_file(good_path);

  // Cut the text stream mid-line and before the trailing "end" marker;
  // the seam must surface a StoreError naming the file.
  for (const std::size_t keep : {good.size() / 2, good.size() - 4}) {
    SCOPED_TRACE(testing::Message() << "truncated to " << keep << " bytes");
    const std::string path = dir.file("trunc.store");
    write_file(path, good.substr(0, keep));
    try {
      (void)StoreReader::open(path, spec);
      FAIL() << "expected StoreError";
    } catch (const StoreError& e) {
      EXPECT_EQ(e.path(), path);
      EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
    }
  }
}

TEST(ColumnarHardening, AppendMergeRejectsEmptyInputsAndForeignStores) {
  const CampaignSpec spec = test_spec();
  TempDir dir;
  EXPECT_THROW(ColumnarStore::append_merge({}, dir.file("out.col"), spec),
               std::invalid_argument);

  // A fingerprint-mismatched shard poisons the whole merge, typed.
  full_store(spec).save_columnar(dir.file("good.col"));
  full_store(test_spec(1234)).save_columnar(dir.file("foreign.col"));
  EXPECT_THROW(
      ColumnarStore::append_merge(
          {dir.file("good.col"), dir.file("foreign.col")},
          dir.file("out.col"), spec),
      StoreError);
  EXPECT_FALSE(fs::exists(dir.file("out.col")));
}

}  // namespace
}  // namespace ulpdream::campaign
