#include <gtest/gtest.h>

#include <cstdint>

#include "ulpdream/core/ecc_secded.hpp"
#include "ulpdream/util/rng.hpp"

namespace ulpdream::core {
namespace {

TEST(EccSecDed, PaperOverheadSixBits) {
  const EccSecDed ecc;
  EXPECT_EQ(ecc.payload_bits(), 22);
  EXPECT_EQ(ecc.safe_bits(), 0);
  EXPECT_EQ(ecc.extra_bits(), 6);  // 2 + log2(16), paper Sec. V
}

TEST(EccSecDed, RoundTripWithoutErrors) {
  const EccSecDed ecc;
  for (int v = -32768; v <= 32767; v += 7) {
    const auto s = static_cast<fixed::Sample>(v);
    EccSecDed::Outcome outcome{};
    EXPECT_EQ(ecc.decode_ex(ecc.encode_payload(s), outcome), s);
    EXPECT_EQ(outcome, EccSecDed::Outcome::kClean);
  }
}

TEST(EccSecDed, CorrectsEverySingleBitError) {
  const EccSecDed ecc;
  for (int v = -32768; v <= 32767; v += 257) {
    const auto s = static_cast<fixed::Sample>(v);
    const std::uint32_t code = ecc.encode_payload(s);
    for (int bit = 0; bit < EccSecDed::kPayloadBits; ++bit) {
      EccSecDed::Outcome outcome{};
      const fixed::Sample decoded =
          ecc.decode_ex(code ^ (1u << bit), outcome);
      EXPECT_EQ(decoded, s) << "v=" << v << " bit=" << bit;
      EXPECT_EQ(outcome, EccSecDed::Outcome::kCorrected);
    }
  }
}

TEST(EccSecDed, DetectsEveryDoubleBitError) {
  const EccSecDed ecc;
  const auto s = static_cast<fixed::Sample>(-12345);
  const std::uint32_t code = ecc.encode_payload(s);
  for (int b1 = 0; b1 < EccSecDed::kPayloadBits; ++b1) {
    for (int b2 = b1 + 1; b2 < EccSecDed::kPayloadBits; ++b2) {
      EccSecDed::Outcome outcome{};
      (void)ecc.decode_ex(code ^ (1u << b1) ^ (1u << b2), outcome);
      EXPECT_EQ(outcome, EccSecDed::Outcome::kDetectedUncorrectable)
          << "bits " << b1 << "," << b2;
    }
  }
}

TEST(EccSecDed, DoubleErrorIsNotMiscorrected) {
  // SEC/DED guarantee: a double error must never be "corrected" into a
  // wrong codeword silently. Our decoder returns best-effort data but
  // flags it; verify the flag fires for all pairs on several samples.
  const EccSecDed ecc;
  util::Xoshiro256 rng(4);
  for (int trial = 0; trial < 200; ++trial) {
    const auto s = static_cast<fixed::Sample>(
        static_cast<std::int32_t>(rng.bounded(65536)) - 32768);
    const std::uint32_t code = ecc.encode_payload(s);
    const int b1 = static_cast<int>(rng.bounded(22));
    int b2 = static_cast<int>(rng.bounded(22));
    while (b2 == b1) b2 = static_cast<int>(rng.bounded(22));
    EccSecDed::Outcome outcome{};
    (void)ecc.decode_ex(code ^ (1u << b1) ^ (1u << b2), outcome);
    EXPECT_EQ(outcome, EccSecDed::Outcome::kDetectedUncorrectable);
  }
}

TEST(EccSecDed, TripleErrorsMayEscape) {
  // Diagnostic documentation test: with >= 3 errors SEC/DED can miscorrect
  // (this is exactly why it underperforms DREAM below 0.55 V in Fig. 4).
  // We assert that at least one triple-error pattern decodes to the WRONG
  // sample without being flagged as uncorrectable.
  const EccSecDed ecc;
  const auto s = static_cast<fixed::Sample>(0x1234);
  const std::uint32_t code = ecc.encode_payload(s);
  bool found_silent_corruption = false;
  for (int b1 = 0; b1 < 22 && !found_silent_corruption; ++b1) {
    for (int b2 = b1 + 1; b2 < 22 && !found_silent_corruption; ++b2) {
      for (int b3 = b2 + 1; b3 < 22 && !found_silent_corruption; ++b3) {
        EccSecDed::Outcome outcome{};
        const fixed::Sample decoded = ecc.decode_ex(
            code ^ (1u << b1) ^ (1u << b2) ^ (1u << b3), outcome);
        if (outcome == EccSecDed::Outcome::kCorrected && decoded != s) {
          found_silent_corruption = true;
        }
      }
    }
  }
  EXPECT_TRUE(found_silent_corruption);
}

TEST(EccSecDed, CountersClassifyOutcomes) {
  const EccSecDed ecc;
  CodecCounters counters;
  const auto s = static_cast<fixed::Sample>(77);
  const std::uint32_t code = ecc.encode_payload(s);
  (void)ecc.decode(code, 0, &counters);                     // clean
  (void)ecc.decode(code ^ 0x1u, 0, &counters);              // single
  (void)ecc.decode(code ^ 0x3u, 0, &counters);              // double
  EXPECT_EQ(counters.decodes, 3u);
  EXPECT_EQ(counters.corrected_words, 1u);
  EXPECT_EQ(counters.detected_uncorrectable, 1u);
}

TEST(EccSecDed, ParityBitErrorAloneIsCorrected) {
  const EccSecDed ecc;
  const auto s = static_cast<fixed::Sample>(-1);
  const std::uint32_t code = ecc.encode_payload(s);
  // Flip only the overall parity bit (payload bit 21).
  EccSecDed::Outcome outcome{};
  EXPECT_EQ(ecc.decode_ex(code ^ (1u << 21), outcome), s);
  EXPECT_EQ(outcome, EccSecDed::Outcome::kCorrected);
}

TEST(EccSecDed, CodewordsDifferInAtLeastFourBits) {
  // Extended Hamming has minimum distance 4: sample a set of codeword
  // pairs and verify the Hamming distance floor.
  const EccSecDed ecc;
  util::Xoshiro256 rng(8);
  for (int trial = 0; trial < 300; ++trial) {
    const auto a = static_cast<fixed::Sample>(
        static_cast<std::int32_t>(rng.bounded(65536)) - 32768);
    auto b = static_cast<fixed::Sample>(
        static_cast<std::int32_t>(rng.bounded(65536)) - 32768);
    if (a == b) b = static_cast<fixed::Sample>(b ^ 1);
    const std::uint32_t diff =
        ecc.encode_payload(a) ^ ecc.encode_payload(b);
    EXPECT_GE(__builtin_popcount(diff), 4) << "a=" << a << " b=" << b;
  }
}

class EccExhaustiveByteSweep : public ::testing::TestWithParam<int> {};

TEST_P(EccExhaustiveByteSweep, SingleErrorCorrectionExhaustive) {
  // Exhaustive over one byte-plane of sample space x all 22 error bits.
  const EccSecDed ecc;
  const int base = GetParam() * 256 - 32768;
  for (int off = 0; off < 256; off += 17) {
    const auto s = static_cast<fixed::Sample>(base + off);
    const std::uint32_t code = ecc.encode_payload(s);
    for (int bit = 0; bit < 22; ++bit) {
      EccSecDed::Outcome outcome{};
      EXPECT_EQ(ecc.decode_ex(code ^ (1u << bit), outcome), s);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BytePlanes, EccExhaustiveByteSweep,
                         ::testing::Values(0, 31, 63, 127, 128, 192, 255));

// ---------------------------------------------------------------------------
// Reference (definition-level) decoder: the straight XOR-of-positions form
// of extended-Hamming decoding, kept here to pin the table-driven
// implementation (syndrome planes + 64-entry LUT + extraction tables)
// against the textbook algorithm on *arbitrary* payloads, not just valid
// codewords with few flips.

struct ReferenceDecode {
  fixed::Sample data = 0;
  EccSecDed::Outcome outcome{};
};

ReferenceDecode reference_decode(std::uint32_t payload) {
  constexpr int kOverallBit = 21;
  const auto extract = [](std::uint32_t codeword) {
    std::uint16_t data = 0;
    int next = 0;
    for (int pos = 1; pos <= EccSecDed::kHammingBits; ++pos) {
      if (pos == 1 || pos == 2 || pos == 4 || pos == 8 || pos == 16) continue;
      if ((codeword >> (pos - 1)) & 1u) {
        data |= static_cast<std::uint16_t>(1u << next);
      }
      ++next;
    }
    return static_cast<fixed::Sample>(data);
  };
  int syndrome = 0;
  for (int pos = 1; pos <= EccSecDed::kHammingBits; ++pos) {
    if ((payload >> (pos - 1)) & 1u) syndrome ^= pos;
  }
  int overall = 0;
  for (int bit = 0; bit <= kOverallBit; ++bit) {
    overall ^= static_cast<int>((payload >> bit) & 1u);
  }
  ReferenceDecode out;
  if (syndrome == 0 && overall == 0) {
    out.outcome = EccSecDed::Outcome::kClean;
    out.data = extract(payload);
  } else if (overall != 0) {
    if (syndrome >= 1 && syndrome <= EccSecDed::kHammingBits) {
      out.outcome = EccSecDed::Outcome::kCorrected;
      out.data = extract(payload ^ (1u << (syndrome - 1)));
    } else if (syndrome == 0) {
      out.outcome = EccSecDed::Outcome::kCorrected;
      out.data = extract(payload);
    } else {
      out.outcome = EccSecDed::Outcome::kDetectedUncorrectable;
      out.data = extract(payload);
    }
  } else {
    out.outcome = EccSecDed::Outcome::kDetectedUncorrectable;
    out.data = extract(payload);
  }
  return out;
}

TEST(EccSecDed, TableDrivenDecoderMatchesReferenceOnRandomPayloads) {
  const EccSecDed ecc;
  util::Xoshiro256 rng(20160314);
  for (int i = 0; i < 200000; ++i) {
    const auto payload = static_cast<std::uint32_t>(rng() & ((1u << 22) - 1u));
    const ReferenceDecode ref = reference_decode(payload);
    EccSecDed::Outcome outcome{};
    const fixed::Sample decoded = ecc.decode_ex(payload, outcome);
    ASSERT_EQ(decoded, ref.data) << "payload=" << payload;
    ASSERT_EQ(outcome, ref.outcome) << "payload=" << payload;
  }
}

TEST(EccSecDed, TableDrivenEncoderMatchesReferenceParityDefinition) {
  const EccSecDed ecc;
  // Every encoded word must be a valid codeword (clean decode round trip)
  // and satisfy the parity-check definition: zero syndrome, even overall
  // parity over all 22 bits.
  for (int v = -32768; v <= 32767; v += 13) {
    const auto s = static_cast<fixed::Sample>(v);
    const std::uint32_t code = ecc.encode_payload(s);
    const ReferenceDecode ref = reference_decode(code);
    ASSERT_EQ(ref.outcome, EccSecDed::Outcome::kClean) << "v=" << v;
    ASSERT_EQ(ref.data, s) << "v=" << v;
  }
}

}  // namespace
}  // namespace ulpdream::core
