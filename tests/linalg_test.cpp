#include <gtest/gtest.h>

#include <cmath>

#include "ulpdream/linalg/matrix.hpp"
#include "ulpdream/linalg/solve.hpp"
#include "ulpdream/util/rng.hpp"

namespace ulpdream::linalg {
namespace {

TEST(Matrix, IdentityMultiplication) {
  const Matrix id = Matrix::identity(4);
  Matrix a(4, 4);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      a.at(r, c) = static_cast<double>(r * 4 + c);
    }
  }
  const Matrix prod = id.multiply(a);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_DOUBLE_EQ(prod.at(r, c), a.at(r, c));
    }
  }
}

TEST(Matrix, MultiplyKnownValues) {
  Matrix a(2, 3);
  a.at(0, 0) = 1; a.at(0, 1) = 2; a.at(0, 2) = 3;
  a.at(1, 0) = 4; a.at(1, 1) = 5; a.at(1, 2) = 6;
  const std::vector<double> v = {1.0, 0.0, -1.0};
  const std::vector<double> out = a.multiply(v);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], -2.0);
  EXPECT_DOUBLE_EQ(out[1], -2.0);
}

TEST(Matrix, MultiplyDimensionMismatchThrows) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(a.multiply(b), std::invalid_argument);
  EXPECT_THROW(a.multiply(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(Matrix, TransposeRoundTrip) {
  Matrix a(3, 2);
  a.at(0, 0) = 1; a.at(2, 1) = 7;
  const Matrix t = a.transpose();
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_DOUBLE_EQ(t.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(t.at(1, 2), 7.0);
}

TEST(Matrix, MultiplyTransposedMatchesExplicit) {
  util::Xoshiro256 rng(3);
  Matrix a(5, 7);
  for (auto& v : a.data()) v = rng.gaussian();
  std::vector<double> y(5);
  for (auto& v : y) v = rng.gaussian();
  const std::vector<double> fast = a.multiply_transposed(y);
  const std::vector<double> slow = a.transpose().multiply(y);
  ASSERT_EQ(fast.size(), slow.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast[i], slow[i], 1e-12);
  }
}

TEST(Matrix, ColumnExtraction) {
  Matrix a(3, 2);
  a.at(0, 1) = 5; a.at(1, 1) = 6; a.at(2, 1) = 7;
  const std::vector<double> col = a.column(1);
  EXPECT_EQ(col, (std::vector<double>{5.0, 6.0, 7.0}));
  EXPECT_THROW(a.column(2), std::out_of_range);
}

TEST(VectorOps, DotNormAxpy) {
  const std::vector<double> a = {1.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(dot(a, a), 9.0);
  EXPECT_DOUBLE_EQ(norm2(a), 3.0);
  std::vector<double> acc = {1.0, 1.0, 1.0};
  axpy(2.0, a, acc);
  EXPECT_EQ(acc, (std::vector<double>{3.0, 5.0, 5.0}));
}

TEST(Cholesky, FactorizesKnownSpd) {
  Matrix a(2, 2);
  a.at(0, 0) = 4; a.at(0, 1) = 2;
  a.at(1, 0) = 2; a.at(1, 1) = 3;
  ASSERT_TRUE(cholesky(a));
  EXPECT_DOUBLE_EQ(a.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 1.0);
  EXPECT_NEAR(a.at(1, 1), std::sqrt(2.0), 1e-12);
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix a(2, 2);
  a.at(0, 0) = 1; a.at(0, 1) = 2;
  a.at(1, 0) = 2; a.at(1, 1) = 1;  // eigenvalues 3, -1
  EXPECT_FALSE(cholesky(a));
}

TEST(Solve, SpdSolveMatchesKnownSolution) {
  Matrix a(3, 3);
  // A = M^T M + I for a random M: guaranteed SPD.
  util::Xoshiro256 rng(11);
  Matrix m(3, 3);
  for (auto& v : m.data()) v = rng.gaussian();
  const Matrix mt = m.transpose();
  a = mt.multiply(m);
  for (std::size_t i = 0; i < 3; ++i) a.at(i, i) += 1.0;

  const std::vector<double> x_true = {1.0, -2.0, 0.5};
  const std::vector<double> b = a.multiply(x_true);
  const std::vector<double> x = solve_spd(a, b);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(Solve, LeastSquaresExactForSquareSystem) {
  Matrix a(2, 2);
  a.at(0, 0) = 2; a.at(0, 1) = 1;
  a.at(1, 0) = 1; a.at(1, 1) = 3;
  const std::vector<double> x_true = {1.5, -0.5};
  const std::vector<double> y = a.multiply(x_true);
  const std::vector<double> x = least_squares(a, y);
  EXPECT_NEAR(x[0], x_true[0], 1e-6);
  EXPECT_NEAR(x[1], x_true[1], 1e-6);
}

TEST(Solve, LeastSquaresOverdetermined) {
  // Fit y = 2t + 1 from noisy-free overdetermined samples.
  const std::size_t n = 10;
  Matrix a(n, 2);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i);
    a.at(i, 0) = t;
    a.at(i, 1) = 1.0;
    y[i] = 2.0 * t + 1.0;
  }
  const std::vector<double> x = least_squares(a, y);
  EXPECT_NEAR(x[0], 2.0, 1e-8);
  EXPECT_NEAR(x[1], 1.0, 1e-7);
}

class CholeskySizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(CholeskySizeSweep, SolveRecoversRandomSolution) {
  const auto n = static_cast<std::size_t>(GetParam());
  util::Xoshiro256 rng(100 + static_cast<std::uint64_t>(GetParam()));
  Matrix m(n, n);
  for (auto& v : m.data()) v = rng.gaussian();
  Matrix a = m.transpose().multiply(m);
  for (std::size_t i = 0; i < n; ++i) a.at(i, i) += static_cast<double>(n);
  std::vector<double> x_true(n);
  for (auto& v : x_true) v = rng.gaussian();
  const std::vector<double> x = solve_spd(a, a.multiply(x_true));
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskySizeSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 32, 64));

}  // namespace
}  // namespace ulpdream::linalg
