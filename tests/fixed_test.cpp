#include <gtest/gtest.h>

#include <cmath>

#include "ulpdream/fixed/fixed_point.hpp"
#include "ulpdream/fixed/sample.hpp"

namespace ulpdream::fixed {
namespace {

TEST(FixedPoint, RoundTripDouble) {
  const Q15 x = Q15::from_double(0.5);
  EXPECT_NEAR(x.to_double(), 0.5, 1.0 / 32768.0);
}

TEST(FixedPoint, SaturatesOnOverflow) {
  const Q15 x = Q15::from_double(2.0);
  EXPECT_EQ(x.raw(), Q15::kRawMax);
  const Q15 y = Q15::from_double(-2.0);
  EXPECT_EQ(y.raw(), Q15::kRawMin);
}

TEST(FixedPoint, AdditionSaturates) {
  const Q15 a = Q15::from_double(0.9);
  const Q15 b = Q15::from_double(0.9);
  EXPECT_EQ((a + b).raw(), Q15::kRawMax);
}

TEST(FixedPoint, MultiplicationIdentityLike) {
  const Q15 almost_one = Q15::from_raw(Q15::kRawMax);
  const Q15 half = Q15::from_double(0.5);
  EXPECT_NEAR((almost_one * half).to_double(), 0.5, 2.0 / 32768.0);
}

TEST(FixedPoint, MultiplicationSigns) {
  const Q15 a = Q15::from_double(-0.5);
  const Q15 b = Q15::from_double(0.5);
  EXPECT_NEAR((a * b).to_double(), -0.25, 2.0 / 32768.0);
  EXPECT_NEAR((a * a).to_double(), 0.25, 2.0 / 32768.0);
}

TEST(FixedPoint, DivisionByZeroSaturates) {
  const Q15 a = Q15::from_double(0.5);
  EXPECT_EQ((a / Q15{}).raw(), Q15::kRawMax);
  const Q15 neg = Q15::from_double(-0.5);
  EXPECT_EQ((neg / Q15{}).raw(), Q15::kRawMin);
}

TEST(FixedPoint, ComparisonOperators) {
  const Q15 a = Q15::from_double(0.25);
  const Q15 b = Q15::from_double(0.75);
  EXPECT_LT(a, b);
  EXPECT_EQ(a, Q15::from_double(0.25));
  EXPECT_GE(b, a);
}

TEST(FixedPoint, AbsOfNegative) {
  const Q15 a = Q15::from_double(-0.3);
  EXPECT_NEAR(a.abs().to_double(), 0.3, 1.0 / 32768.0);
}

TEST(FixedPoint, IntegerFormatRoundTrip) {
  const Q16_16 v = Q16_16::from_int(1234);
  EXPECT_EQ(v.to_int(), 1234);
  EXPECT_DOUBLE_EQ(v.to_double(), 1234.0);
}

TEST(RoundedShift, RoundsHalfAwayFromZero) {
  EXPECT_EQ(rounded_shift_right<std::int64_t>(3, 1), 2);   // 1.5 -> 2
  EXPECT_EQ(rounded_shift_right<std::int64_t>(-3, 1), -2); // -1.5 -> -2
  EXPECT_EQ(rounded_shift_right<std::int64_t>(5, 2), 1);   // 1.25 -> 1
  EXPECT_EQ(rounded_shift_right<std::int64_t>(0, 5), 0);
  EXPECT_EQ(rounded_shift_right<std::int64_t>(100, 0), 100);
}

TEST(Sample, SaturateSample) {
  EXPECT_EQ(saturate_sample(40000), kSampleMax);
  EXPECT_EQ(saturate_sample(-40000), kSampleMin);
  EXPECT_EQ(saturate_sample(123), 123);
}

TEST(Sample, AddSubSaturate) {
  EXPECT_EQ(add_sat(30000, 10000), kSampleMax);
  EXPECT_EQ(sub_sat(-30000, 10000), kSampleMin);
  EXPECT_EQ(add_sat(100, -50), 50);
}

TEST(Sample, MulQ15MatchesDouble) {
  const Q15 c = Q15::from_double(0.5);
  const Sample s = 20000;
  EXPECT_EQ(narrow_q15(mul_q15(s, c)), 10000);
}

TEST(Sample, SignRunLengthKnownValues) {
  EXPECT_EQ(sign_run_length(0), 16);       // all zeros
  EXPECT_EQ(sign_run_length(-1), 16);      // all ones
  EXPECT_EQ(sign_run_length(1), 15);       // 0...01
  EXPECT_EQ(sign_run_length(-2), 15);      // 1...10
  EXPECT_EQ(sign_run_length(0x7FFF), 1);   // 0111... -> only the sign bit
  EXPECT_EQ(sign_run_length(kSampleMin), 1);  // 1000...0
  EXPECT_EQ(sign_run_length(0x0100), 7);   // 0000000100000000
}

TEST(Sample, SignRunLengthBounds) {
  for (int v = -32768; v <= 32767; v += 257) {
    const int run = sign_run_length(static_cast<Sample>(v));
    EXPECT_GE(run, 1);
    EXPECT_LE(run, 16);
  }
}

TEST(Adc, QuantizeFullScale) {
  const AdcModel adc{5.0, 0.0};
  EXPECT_EQ(adc.quantize(5.0), kSampleMax);
  EXPECT_EQ(adc.quantize(-5.0), -kSampleMax);
  EXPECT_EQ(adc.quantize(0.0), 0);
}

TEST(Adc, QuantizeClampsBeyondRange) {
  const AdcModel adc{5.0, 0.0};
  EXPECT_EQ(adc.quantize(50.0), kSampleMax);
  EXPECT_EQ(adc.quantize(-50.0), kSampleMin);
}

TEST(Adc, RoundTripWithinLsb) {
  const AdcModel adc{5.0, 0.0};
  for (double mv = -4.9; mv < 4.9; mv += 0.37) {
    const Sample s = adc.quantize(mv);
    EXPECT_NEAR(adc.to_mv(s), mv, 5.0 / 32767.0 + 1e-9);
  }
}

TEST(Adc, QuantizeWaveformMatchesScalar) {
  const AdcModel adc{5.0, 0.0};
  const std::vector<double> mv = {0.0, 1.0, -1.0, 2.5};
  const SampleVec v = quantize_waveform(mv, adc);
  ASSERT_EQ(v.size(), 4u);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(v[i], adc.quantize(mv[i]));
  }
}

class SaturationSweep : public ::testing::TestWithParam<int> {};

TEST_P(SaturationSweep, NarrowingNeverWraps) {
  // Property: narrow_q15 of any accumulator value keeps sign or saturates;
  // it must never alias across the sign boundary.
  const std::int64_t acc = static_cast<std::int64_t>(GetParam()) * 100003LL;
  const Sample s = narrow_q15(acc);
  if (acc > 0) {
    EXPECT_GE(s, 0);
  }
  if (acc < 0) {
    EXPECT_LE(s, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(AccumulatorRange, SaturationSweep,
                         ::testing::Range(-20000, 20001, 1000));

}  // namespace
}  // namespace ulpdream::fixed
