#include <gtest/gtest.h>

#include <cmath>

#include "ulpdream/cs/omp.hpp"
#include "ulpdream/cs/reconstruct.hpp"
#include "ulpdream/cs/sensing_matrix.hpp"
#include "ulpdream/ecg/database.hpp"
#include "ulpdream/metrics/quality.hpp"
#include "ulpdream/util/rng.hpp"

namespace ulpdream::cs {
namespace {

TEST(SensingMatrix, SparseBinaryColumnStructure) {
  const linalg::Matrix phi = sparse_binary_matrix(32, 64, 4, 7);
  const double expected = 1.0 / 2.0;  // 1/sqrt(4)
  for (std::size_t c = 0; c < 64; ++c) {
    int nonzero = 0;
    for (std::size_t r = 0; r < 32; ++r) {
      if (phi.at(r, c) != 0.0) {
        ++nonzero;
        EXPECT_DOUBLE_EQ(phi.at(r, c), expected);
      }
    }
    EXPECT_EQ(nonzero, 4);
  }
}

TEST(SensingMatrix, SparseBinaryRejectsBadDensity) {
  EXPECT_THROW(sparse_binary_matrix(4, 8, 5, 1), std::invalid_argument);
  EXPECT_THROW(sparse_binary_matrix(4, 8, 0, 1), std::invalid_argument);
}

TEST(SensingMatrix, BernoulliEntriesHaveCorrectMagnitude) {
  const linalg::Matrix phi = bernoulli_matrix(16, 32, 3);
  const double mag = 1.0 / 4.0;
  for (std::size_t r = 0; r < 16; ++r) {
    for (std::size_t c = 0; c < 32; ++c) {
      EXPECT_DOUBLE_EQ(std::fabs(phi.at(r, c)), mag);
    }
  }
}

TEST(SensingMatrix, SparsePhiDenseEquivalence) {
  const SparsePhi phi = make_sparse_phi(32, 64, 4, 11);
  const linalg::Matrix dense = phi.to_dense();
  // Column sums: d entries of 1/d each -> 1.
  for (std::size_t c = 0; c < 64; ++c) {
    double sum = 0.0;
    for (std::size_t r = 0; r < 32; ++r) sum += dense.at(r, c);
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(SensingMatrix, SparsePhiRowsDistinctPerColumn) {
  const SparsePhi phi = make_sparse_phi(16, 32, 4, 13);
  for (std::size_t c = 0; c < 32; ++c) {
    for (int a = 0; a < 4; ++a) {
      for (int b = a + 1; b < 4; ++b) {
        EXPECT_NE(phi.rows[c * 4 + static_cast<std::size_t>(a)],
                  phi.rows[c * 4 + static_cast<std::size_t>(b)]);
      }
    }
  }
}

TEST(SensingMatrix, SparsePhiRejectsNonPowerOfTwo) {
  EXPECT_THROW(make_sparse_phi(16, 32, 3, 1), std::invalid_argument);
}

TEST(Omp, RecoversExactlySparseSignal) {
  // Classic CS sanity: K-sparse alpha, enough Bernoulli measurements ->
  // OMP recovers support and values almost exactly.
  const std::size_t n = 64;
  const std::size_t m = 32;
  const std::size_t k = 5;
  const linalg::Matrix a = bernoulli_matrix(m, n, 21);
  util::Xoshiro256 rng(22);
  std::vector<double> alpha(n, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    alpha[rng.bounded(n)] = rng.gaussian(0.0, 10.0) + 5.0;
  }
  const std::vector<double> y = a.multiply(alpha);

  OmpConfig cfg;
  cfg.max_atoms = 10;
  const OmpResult res = omp_solve(a, y, cfg);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(res.solution[i], alpha[i], 1e-6);
  }
  EXPECT_LT(res.residual_norm, 1e-6 * linalg::norm2(y));
}

TEST(Omp, ZeroMeasurementGivesZeroSolution) {
  const linalg::Matrix a = bernoulli_matrix(8, 16, 1);
  const std::vector<double> y(8, 0.0);
  const OmpResult res = omp_solve(a, y, OmpConfig{});
  for (double v : res.solution) EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_TRUE(res.support.empty());
}

TEST(Omp, RespectsAtomBudget) {
  const linalg::Matrix a = bernoulli_matrix(32, 64, 5);
  util::Xoshiro256 rng(6);
  std::vector<double> y(32);
  for (auto& v : y) v = rng.gaussian();
  OmpConfig cfg;
  cfg.max_atoms = 7;
  const OmpResult res = omp_solve(a, y, cfg);
  EXPECT_LE(res.support.size(), 7u);
}

TEST(Omp, SizeMismatchThrows) {
  const linalg::Matrix a = bernoulli_matrix(8, 16, 1);
  EXPECT_THROW(omp_solve(a, std::vector<double>(7, 0.0), OmpConfig{}),
               std::invalid_argument);
}

TEST(Reconstructor, RejectsBadGeometry) {
  CsConfig cfg;
  cfg.block_n = 64;
  cfg.block_m = 128;  // m > n
  EXPECT_THROW(CsReconstructor{cfg}, std::invalid_argument);
}

TEST(Reconstructor, RecoversEcgBlockAboveRequirement) {
  // End-to-end float pipeline: compress a real synthetic ECG block and
  // reconstruct. Quality should clear the paper's 35 dB multi-lead
  // requirement on typical blocks... at 50% compression our single-lead
  // OMP ceiling is lower; we require a solid 15 dB here and track the
  // exact ceiling in EXPERIMENTS.md.
  const ecg::Record rec = ecg::make_default_record(3);
  CsConfig cfg;
  cfg.block_n = 256;
  cfg.block_m = 128;
  cfg.omp.max_atoms = 64;
  const CsReconstructor recon(cfg);

  std::vector<double> x(cfg.block_n);
  for (std::size_t i = 0; i < cfg.block_n; ++i) {
    x[i] = static_cast<double>(rec.samples[i]);
  }
  const std::vector<double> y = recon.phi().to_dense().multiply(x);
  const std::vector<double> xhat = recon.reconstruct(y);
  EXPECT_GT(metrics::snr_db(x, xhat), 15.0);
}

TEST(Reconstructor, WrongMeasurementSizeThrows) {
  CsConfig cfg;
  cfg.block_n = 64;
  cfg.block_m = 32;
  const CsReconstructor recon(cfg);
  EXPECT_THROW(recon.reconstruct(std::vector<double>(31, 0.0)),
               std::invalid_argument);
}

TEST(Reconstructor, CorruptedMeasurementsDegradeQuality) {
  const ecg::Record rec = ecg::make_default_record(4);
  CsConfig cfg;
  cfg.block_n = 256;
  cfg.block_m = 128;
  cfg.omp.max_atoms = 48;
  const CsReconstructor recon(cfg);

  std::vector<double> x(cfg.block_n);
  for (std::size_t i = 0; i < cfg.block_n; ++i) {
    x[i] = static_cast<double>(rec.samples[i]);
  }
  std::vector<double> y = recon.phi().to_dense().multiply(x);
  const std::vector<double> clean = recon.reconstruct(y);

  // Corrupt a few measurements as a stuck-at MSB would.
  y[3] += 8000.0;
  y[77] -= 8000.0;
  const std::vector<double> dirty = recon.reconstruct(y);

  EXPECT_GT(metrics::snr_db(x, clean), metrics::snr_db(x, dirty));
}

class OmpSparsitySweep : public ::testing::TestWithParam<int> {};

TEST_P(OmpSparsitySweep, RecoveryDegradesGracefullyWithK) {
  const std::size_t n = 128;
  const std::size_t m = 64;
  const auto k = static_cast<std::size_t>(GetParam());
  const linalg::Matrix a = bernoulli_matrix(m, n, 31);
  util::Xoshiro256 rng(100 + static_cast<std::uint64_t>(GetParam()));
  std::vector<double> alpha(n, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t pos = rng.bounded(n);
    while (alpha[pos] != 0.0) pos = (pos + 1) % n;
    alpha[pos] = rng.gaussian(0.0, 5.0) + 2.0;
  }
  const std::vector<double> y = a.multiply(alpha);
  OmpConfig cfg;
  cfg.max_atoms = 2 * k;
  const OmpResult res = omp_solve(a, y, cfg);
  // Well below the m/2 phase-transition, recovery is essentially exact.
  if (k <= 12) {
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(res.solution[i], alpha[i], 1e-5);
    }
  } else {
    // Near/over the limit we only require the residual to shrink.
    EXPECT_LT(res.residual_norm, linalg::norm2(y));
  }
}

INSTANTIATE_TEST_SUITE_P(Sparsity, OmpSparsitySweep,
                         ::testing::Values(1, 2, 4, 8, 12, 20, 28));

}  // namespace
}  // namespace ulpdream::cs
