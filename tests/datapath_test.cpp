// Differential suite for the batched data path: the block APIs
// (Emt::encode_block/decode_block, FaultyMemory::read_block/write_block,
// ProtectedBuffer::load/store) must be bit-identical to the scalar
// word-at-a-time path — same decoded samples, same CodecCounters, same
// per-bank AccessStats — for every EMT kind x voltage x scrambler
// setting. Also pins the sparse FaultMap representation against an
// independently-built dense map.

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "ulpdream/core/ecc_secded.hpp"
#include "ulpdream/core/factory.hpp"
#include "ulpdream/core/no_protection.hpp"
#include "ulpdream/core/protected_buffer.hpp"
#include "ulpdream/ecg/database.hpp"
#include "ulpdream/mem/ber_model.hpp"
#include "ulpdream/mem/fault_map.hpp"
#include "ulpdream/mem/memory.hpp"
#include "ulpdream/util/rng.hpp"
#include "ulpdream/util/simd.hpp"

namespace ulpdream {
namespace {

constexpr std::size_t kWords = 2048;

fixed::SampleVec test_samples(std::size_t n) {
  const ecg::Record record = ecg::make_default_record(3);
  fixed::SampleVec src(n);
  for (std::size_t i = 0; i < n; ++i) {
    src[i] = record.samples[i % record.samples.size()];
  }
  return src;
}

void expect_stats_eq(const mem::AccessStats& a, const mem::AccessStats& b) {
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.bank_reads, b.bank_reads);
  EXPECT_EQ(a.bank_writes, b.bank_writes);
}

void expect_counters_eq(const core::CodecCounters& a,
                        const core::CodecCounters& b) {
  EXPECT_EQ(a.decodes, b.decodes);
  EXPECT_EQ(a.corrected_words, b.corrected_words);
  EXPECT_EQ(a.detected_uncorrectable, b.detected_uncorrectable);
}

struct DatapathCase {
  core::EmtKind kind;
  double voltage;
  std::uint64_t scrambler;
};

class BlockScalarIdentity : public ::testing::TestWithParam<DatapathCase> {};

TEST_P(BlockScalarIdentity, FullSweepMatchesScalarPath) {
  const DatapathCase param = GetParam();
  const auto emt = core::make_emt(param.kind);
  const fixed::SampleVec src = test_samples(kWords);

  util::Xoshiro256 rng(99);
  const double ber = mem::LogLinearBerModel().ber(param.voltage);
  const mem::FaultMap map =
      mem::FaultMap::random(kWords, core::EccSecDed::kPayloadBits, ber, rng);

  // Scalar reference: word-at-a-time write then read.
  core::MemorySystem scalar_sys(*emt, kWords);
  scalar_sys.attach_faults(&map);
  scalar_sys.set_scrambler(param.scrambler);
  auto scalar_buf = core::ProtectedBuffer::allocate(scalar_sys, kWords);
  fixed::SampleVec scalar_out(kWords);
  for (std::size_t i = 0; i < kWords; ++i) scalar_buf.set(i, src[i]);
  for (std::size_t i = 0; i < kWords; ++i) scalar_out[i] = scalar_buf.get(i);

  // Block path: one load, one store.
  core::MemorySystem block_sys(*emt, kWords);
  block_sys.attach_faults(&map);
  block_sys.set_scrambler(param.scrambler);
  auto block_buf = core::ProtectedBuffer::allocate(block_sys, kWords);
  fixed::SampleVec block_out(kWords);
  block_buf.load(0, std::span<const fixed::Sample>(src.data(), kWords));
  block_buf.store(0, std::span<fixed::Sample>(block_out.data(), kWords));

  EXPECT_EQ(scalar_out, block_out);
  expect_counters_eq(scalar_sys.counters(), block_sys.counters());
  expect_stats_eq(scalar_sys.data().stats(), block_sys.data().stats());
  ASSERT_EQ(scalar_sys.safe() != nullptr, block_sys.safe() != nullptr);
  if (scalar_sys.safe() != nullptr) {
    expect_stats_eq(scalar_sys.safe()->stats(), block_sys.safe()->stats());
  }
}

TEST_P(BlockScalarIdentity, OverrideMatchesBaseBlockLoop) {
  // The devirtualized encode_block/decode_block overrides must agree with
  // the Emt base implementation (a plain loop over the scalar virtuals),
  // including counter updates — qualified calls reach the base directly.
  const DatapathCase param = GetParam();
  const auto emt = core::make_emt(param.kind);
  const fixed::SampleVec src = test_samples(512);
  const std::size_t n = src.size();
  const bool has_safe = emt->safe_bits() > 0;

  std::vector<std::uint32_t> payload_base(n);
  std::vector<std::uint32_t> payload_override(n);
  std::vector<std::uint16_t> safe_base(has_safe ? n : 0);
  std::vector<std::uint16_t> safe_override(has_safe ? n : 0);
  emt->Emt::encode_block(std::span<const fixed::Sample>(src),
                         std::span<std::uint32_t>(payload_base),
                         std::span<std::uint16_t>(safe_base));
  emt->encode_block(std::span<const fixed::Sample>(src),
                    std::span<std::uint32_t>(payload_override),
                    std::span<std::uint16_t>(safe_override));
  EXPECT_EQ(payload_base, payload_override);
  EXPECT_EQ(safe_base, safe_override);

  // Corrupt a deterministic sprinkle of payload bits so the decode loops
  // exercise correction and detection.
  util::Xoshiro256 rng(7);
  for (std::size_t i = 0; i < n; i += 3) {
    payload_base[i] ^= 1u << rng.bounded(
        static_cast<std::uint64_t>(emt->payload_bits()));
    if (i % 9 == 0) {
      payload_base[i] ^= 1u << rng.bounded(
          static_cast<std::uint64_t>(emt->payload_bits()));
    }
  }
  payload_override = payload_base;

  fixed::SampleVec out_base(n);
  fixed::SampleVec out_override(n);
  core::CodecCounters counters_base;
  core::CodecCounters counters_override;
  emt->Emt::decode_block(std::span<const std::uint32_t>(payload_base),
                         std::span<const std::uint16_t>(safe_base),
                         std::span<fixed::Sample>(out_base), &counters_base);
  emt->decode_block(std::span<const std::uint32_t>(payload_override),
                    std::span<const std::uint16_t>(safe_override),
                    std::span<fixed::Sample>(out_override),
                    &counters_override);
  EXPECT_EQ(out_base, out_override);
  expect_counters_eq(counters_base, counters_override);
}

std::vector<DatapathCase> all_cases() {
  std::vector<DatapathCase> cases;
  for (const core::EmtKind kind : core::extended_emt_kinds()) {
    for (const double v : {0.9, 0.8, 0.7, 0.6, 0.5}) {
      for (const std::uint64_t scrambler : {std::uint64_t{0},
                                            std::uint64_t{0xC0FFEE}}) {
        cases.push_back({kind, v, scrambler});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllEmtsVoltagesScramblers, BlockScalarIdentity,
    ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<DatapathCase>& info) {
      return std::string(core::emt_kind_name(info.param.kind)) + "_v" +
             std::to_string(static_cast<int>(info.param.voltage * 100)) +
             (info.param.scrambler == 0 ? "_plain" : "_scrambled");
    });

/// Every tier the build AND this CPU can run (active_tier() is already
/// clamped by both), lowest first. kScalar is always present.
std::vector<util::simd::Tier> runnable_tiers() {
  std::vector<util::simd::Tier> tiers{util::simd::Tier::kScalar};
  if (util::simd::active_tier() >= util::simd::Tier::kSse2) {
    tiers.push_back(util::simd::Tier::kSse2);
  }
  if (util::simd::active_tier() >= util::simd::Tier::kAvx2) {
    tiers.push_back(util::simd::Tier::kAvx2);
  }
  return tiers;
}

TEST(SimdTiers, BlockSweepBitIdenticalAcrossTiersOffsetsAndTails) {
  // The SIMD kernels' full dispatch matrix: every compiled tier x EMT x
  // scrambler setting x unaligned window base x window length around the
  // vector widths (1..3x the 8/16-lane kernels, plus scalar-tail sizes).
  // The word-at-a-time accessors are the tier-independent reference; every
  // tier's block sweep must reproduce them bit-exactly — decoded samples,
  // CodecCounters and per-bank AccessStats alike. 0.5 V gives a dense
  // fault map, so the gather kernel's fault lanes run too.
  constexpr std::size_t kBuf = 256;  // power of two: the gather-kernel path
  const fixed::SampleVec src = test_samples(kBuf);
  util::Xoshiro256 rng(13);
  const mem::FaultMap map = mem::FaultMap::random(
      kBuf, core::EccSecDed::kPayloadBits,
      mem::LogLinearBerModel().ber(0.5), rng);
  ASSERT_GT(map.entry_count(), 0u);

  const std::vector<util::simd::Tier> tiers = runnable_tiers();
  for (const core::EmtKind kind : core::extended_emt_kinds()) {
    const auto emt = core::make_emt(kind);
    for (const std::uint64_t scrambler :
         {std::uint64_t{0}, std::uint64_t{0xC0FFEE}}) {
      for (const std::size_t offset : {std::size_t{0}, std::size_t{1},
                                       std::size_t{3}, std::size_t{7},
                                       std::size_t{13}}) {
        for (const std::size_t len :
             {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{7},
              std::size_t{8}, std::size_t{9}, std::size_t{15},
              std::size_t{16}, std::size_t{17}, std::size_t{31},
              std::size_t{33}, std::size_t{48}}) {
          ASSERT_LE(offset + len, kBuf);
          SCOPED_TRACE(testing::Message()
                       << core::emt_kind_name(kind) << " scrambler="
                       << scrambler << " offset=" << offset
                       << " len=" << len);

          // Tier-independent reference: scalar word accessors.
          core::MemorySystem ref_sys(*emt, kBuf);
          ref_sys.attach_faults(&map);
          ref_sys.set_scrambler(scrambler);
          auto ref_buf = core::ProtectedBuffer::allocate(ref_sys, kBuf);
          fixed::SampleVec ref_out(len);
          for (std::size_t i = 0; i < len; ++i) {
            ref_buf.set(offset + i, src[offset + i]);
          }
          for (std::size_t i = 0; i < len; ++i) {
            ref_out[i] = ref_buf.get(offset + i);
          }

          for (const util::simd::Tier tier : tiers) {
            SCOPED_TRACE(testing::Message()
                         << "tier=" << util::simd::tier_name(tier));
            util::simd::force_tier(tier);
            core::MemorySystem sys(*emt, kBuf);
            sys.attach_faults(&map);
            sys.set_scrambler(scrambler);
            auto buf = core::ProtectedBuffer::allocate(sys, kBuf);
            fixed::SampleVec out(len);
            buf.load(offset,
                     std::span<const fixed::Sample>(src.data() + offset, len));
            buf.store(offset, std::span<fixed::Sample>(out.data(), len));
            util::simd::clear_forced_tier();

            EXPECT_EQ(ref_out, out);
            expect_counters_eq(ref_sys.counters(), sys.counters());
            expect_stats_eq(ref_sys.data().stats(), sys.data().stats());
            if (ref_sys.safe() != nullptr) {
              expect_stats_eq(ref_sys.safe()->stats(), sys.safe()->stats());
            }
          }
        }
      }
    }
  }
}

TEST(SparseFaultMap, PresenceBitmapChunkBoundaries) {
  // chunk_clean() drives the block read path's wide-copy-vs-lookup
  // decision, so its chunk edges must be exact: words 0 and 63 share
  // chunk 0, word 64 opens chunk 1, and a map whose word count is not a
  // multiple of 64 ends in a partial chunk.
  static_assert(mem::FaultMap::kChunkWords == 64);
  constexpr std::size_t kMapWords = 130;  // chunks 0, 1 and partial 2
  mem::FaultMap map(kMapWords, 16);
  for (const std::size_t word : {std::size_t{0}, std::size_t{63},
                                 std::size_t{64}, std::size_t{127},
                                 std::size_t{129}}) {
    map.edit(word) = {0x1, 0x1};
  }
  EXPECT_FALSE(map.chunk_clean(0));
  EXPECT_FALSE(map.chunk_clean(1));
  EXPECT_FALSE(map.chunk_clean(2));
  // The bitmap view the gather kernel reads agrees bit-for-bit: one bit
  // per chunk, chunks 0..2 dirty, nothing beyond.
  EXPECT_EQ(map.presence_data()[0], 0b111u);

  mem::FaultMap middle(kMapWords, 16);
  middle.edit(64) = {0x2, 0x0};
  middle.edit(127) = {0x2, 0x2};
  EXPECT_TRUE(middle.chunk_clean(0));
  EXPECT_FALSE(middle.chunk_clean(1));
  EXPECT_TRUE(middle.chunk_clean(2));

  // The unscrambled block read crosses every boundary: wide-copy runs for
  // clean chunks, per-word lookups for dirty ones, same answer as the
  // scalar accessor either way.
  mem::FaultyMemory block_mem(kMapWords, 16, 2);
  mem::FaultyMemory scalar_mem(kMapWords, 16, 2);
  for (auto* m : {&block_mem, &scalar_mem}) m->attach_faults(&middle);
  std::vector<std::uint32_t> pattern(kMapWords);
  for (std::size_t i = 0; i < kMapWords; ++i) {
    pattern[i] = static_cast<std::uint32_t>((i * 0x9E37u + 5) & 0xFFFFu);
  }
  block_mem.write_block(0, pattern);
  std::vector<std::uint32_t> block_out(kMapWords);
  block_mem.read_block(0, block_out);
  std::vector<std::uint32_t> scalar_out(kMapWords);
  for (std::size_t i = 0; i < kMapWords; ++i) {
    scalar_mem.write(i, pattern[i]);
    scalar_out[i] = scalar_mem.read(i);
  }
  EXPECT_EQ(block_out, scalar_out);
}

TEST(BlockMemory, SixteenBitOverloadsMatchTheWideOnes) {
  // The staging-free raw-sample path: the u16 read/write_block overloads
  // must agree with the u32 ones word-for-word (the word fits 16 bits, so
  // truncation after the width mask is lossless), and the u16 read must
  // refuse wider geometries instead of silently dropping bits.
  constexpr std::size_t kMemWords = 128;
  util::Xoshiro256 rng(21);
  const mem::FaultMap map = mem::FaultMap::random(kMemWords, 16, 5e-3, rng);
  for (const std::uint64_t scrambler :
       {std::uint64_t{0}, std::uint64_t{0xC0FFEE}}) {
    SCOPED_TRACE(testing::Message() << "scrambler=" << scrambler);
    mem::FaultyMemory wide(kMemWords, 16);
    mem::FaultyMemory narrow(kMemWords, 16);
    for (auto* m : {&wide, &narrow}) {
      m->attach_faults(&map);
      m->set_scrambler(scrambler);
    }
    std::vector<std::uint32_t> src32(kMemWords);
    std::vector<std::uint16_t> src16(kMemWords);
    for (std::size_t i = 0; i < kMemWords; ++i) {
      src16[i] = static_cast<std::uint16_t>(i * 40503u + 7);
      src32[i] = src16[i];
    }
    wide.write_block(0, src32);
    narrow.write_block(0, std::span<const std::uint16_t>(src16));

    std::vector<std::uint32_t> out32(kMemWords);
    std::vector<std::uint16_t> out16(kMemWords);
    wide.read_block(0, out32);
    narrow.read_block(0, std::span<std::uint16_t>(out16));
    for (std::size_t i = 0; i < kMemWords; ++i) {
      EXPECT_EQ(out32[i], static_cast<std::uint32_t>(out16[i])) << i;
    }
    expect_stats_eq(wide.stats(), narrow.stats());
  }

  mem::FaultyMemory too_wide(16, 22);
  std::vector<std::uint16_t> buf(16);
  EXPECT_THROW(too_wide.read_block(0, std::span<std::uint16_t>(buf)),
               std::logic_error);
  // Writes zero-extend, so any width accepts the narrow source.
  EXPECT_NO_THROW(
      too_wide.write_block(0, std::span<const std::uint16_t>(buf)));
}

TEST(BlockMemory, ReadWriteBlockMatchScalarAccessors) {
  mem::FaultyMemory scalar_mem(300, 22, 6);  // non-power-of-two geometry
  mem::FaultyMemory block_mem(300, 22, 6);
  mem::FaultMap map(300, 22);
  map.edit(7) = {0x3, 0x1};
  map.edit(131) = {1u << 21, 1u << 21};
  for (auto* m : {&scalar_mem, &block_mem}) {
    m->attach_faults(&map);
    m->set_scrambler(1234);
  }

  std::vector<std::uint32_t> src(300);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::uint32_t>(0x5A5A5A5Au + i * 2654435761u);
  }
  for (std::size_t i = 0; i < src.size(); ++i) scalar_mem.write(i, src[i]);
  block_mem.write_block(0, src);

  std::vector<std::uint32_t> scalar_out(src.size());
  std::vector<std::uint32_t> block_out(src.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    scalar_out[i] = scalar_mem.read(i);
  }
  block_mem.read_block(0, block_out);

  EXPECT_EQ(scalar_out, block_out);
  expect_stats_eq(scalar_mem.stats(), block_mem.stats());
}

TEST(BlockMemory, BlockRangeChecks) {
  mem::FaultyMemory memory(64, 16);
  std::vector<std::uint32_t> buf(16);
  EXPECT_THROW(memory.read_block(60, buf), std::out_of_range);
  EXPECT_THROW(memory.write_block(
                   49, std::span<const std::uint32_t>(buf.data(), 16)),
               std::out_of_range);
  EXPECT_NO_THROW(memory.read_block(48, buf));

  mem::SafeMemory side(32, 5);
  std::vector<std::uint16_t> sbuf(8);
  EXPECT_THROW(side.read_block(25, sbuf), std::out_of_range);
  EXPECT_NO_THROW(side.read_block(24, sbuf));
}

TEST(BlockMemory, ProtectedBufferBlockRangeChecks) {
  core::NoProtection none;
  core::MemorySystem system(none, 128);
  auto buf = core::ProtectedBuffer::allocate(system, 64);
  fixed::SampleVec window(32);
  EXPECT_THROW(buf.load(40, std::span<const fixed::Sample>(window.data(), 32)),
               std::out_of_range);
  EXPECT_THROW(buf.store(64, std::span<fixed::Sample>(window.data(), 1)),
               std::out_of_range);
  EXPECT_NO_THROW(
      buf.load(32, std::span<const fixed::Sample>(window.data(), 32)));
  EXPECT_NO_THROW(buf.store(0, std::span<fixed::Sample>(window.data(), 32)));
}

TEST(SparseFaultMap, MatchesDenseReferenceOnRandomMaps) {
  // Build the same map twice: sparsely via FaultMap and densely in a plain
  // word-indexed array, from one shared random cell list. at() (plain
  // binary search) and lookup() (coarse bitmap + chunk scan) must both
  // agree with the dense reference for every word.
  constexpr std::size_t kMapWords = 4096;
  constexpr int kBits = 22;
  util::Xoshiro256 rng(42);

  mem::FaultMap sparse(kMapWords, kBits);
  std::vector<mem::WordFaults> dense(kMapWords);
  for (int fault = 0; fault < 500; ++fault) {
    const auto word = static_cast<std::size_t>(rng.bounded(kMapWords));
    const auto bit = static_cast<int>(rng.bounded(kBits));
    const bool value = rng.bernoulli(0.5);
    const std::uint32_t bitmask = 1u << bit;
    for (auto* wf : {&sparse.edit(word), &dense[word]}) {
      wf->mask |= bitmask;
      if (value) {
        wf->value |= bitmask;
      } else {
        wf->value &= ~bitmask;
      }
    }
  }

  std::size_t dense_faulty_words = 0;
  std::size_t dense_fault_count = 0;
  for (std::size_t w = 0; w < kMapWords; ++w) {
    EXPECT_EQ(sparse.at(w).mask, dense[w].mask) << "word " << w;
    EXPECT_EQ(sparse.at(w).value, dense[w].value) << "word " << w;
    const mem::WordFaults* hot = sparse.lookup(w);
    if (dense[w].mask == 0 && hot != nullptr) {
      // An inserted-then-clean entry is allowed; it must act clean.
      EXPECT_EQ(hot->mask, 0u);
    }
    if (dense[w].mask != 0) {
      ASSERT_NE(hot, nullptr) << "word " << w;
      EXPECT_EQ(hot->mask, dense[w].mask);
      EXPECT_EQ(hot->value, dense[w].value);
      ++dense_faulty_words;
    }
    dense_fault_count +=
        static_cast<std::size_t>(__builtin_popcount(dense[w].mask));
  }
  EXPECT_EQ(sparse.fault_count(), dense_fault_count);
  EXPECT_GE(sparse.entry_count(), dense_faulty_words);
}

TEST(SparseFaultMap, RandomMapLookupAgreesWithAt) {
  util::Xoshiro256 rng(11);
  const mem::FaultMap map = mem::FaultMap::random(8192, 22, 2e-3, rng);
  std::size_t faulty = 0;
  for (std::size_t w = 0; w < map.words(); ++w) {
    const mem::WordFaults* hot = map.lookup(w);
    const mem::WordFaults& ref = map.at(w);
    if (ref.mask == 0) {
      EXPECT_TRUE(hot == nullptr || hot->mask == 0);
    } else {
      ASSERT_NE(hot, nullptr);
      EXPECT_EQ(hot->mask, ref.mask);
      EXPECT_EQ(hot->value, ref.value);
      ++faulty;
    }
  }
  EXPECT_GT(faulty, 0u);
  // Sparse storage: entries track faulty words, not the geometry.
  EXPECT_EQ(map.entry_count(), faulty);
  EXPECT_EQ(map.lookup(map.words()), nullptr);  // out of range -> clean
}

TEST(SparseFaultMap, MemoryScalesWithFaultCountNotGeometry) {
  util::Xoshiro256 rng(5);
  // 0.8 V-class BER on the full 32 kB geometry: a handful of faults.
  const mem::FaultMap map = mem::FaultMap::random(
      mem::MemoryGeometry::kWords16, 22, 1e-4, rng);
  EXPECT_LT(map.entry_count(), mem::MemoryGeometry::kWords16 / 100);
  EXPECT_EQ(map.words(), mem::MemoryGeometry::kWords16);
}

TEST(AttachFaults, ValidatesGeometryAndKeepsPreviousMapOnMismatch) {
  mem::FaultyMemory memory(128, 22);
  const mem::FaultMap good(128, 22);
  EXPECT_NO_THROW(memory.attach_faults(&good));

  const mem::FaultMap short_map(127, 22);
  EXPECT_THROW(memory.attach_faults(&short_map), std::invalid_argument);
  const mem::FaultMap narrow_map(128, 21);
  EXPECT_THROW(memory.attach_faults(&narrow_map), std::invalid_argument);

  // Covering (larger) maps are fine, and nullptr clears.
  const mem::FaultMap big(256, 32);
  EXPECT_NO_THROW(memory.attach_faults(&big));
  EXPECT_NO_THROW(memory.attach_faults(nullptr));
}

}  // namespace
}  // namespace ulpdream
