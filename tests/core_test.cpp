#include <gtest/gtest.h>

#include "ulpdream/core/adaptive.hpp"
#include "ulpdream/core/factory.hpp"
#include "ulpdream/core/no_protection.hpp"
#include "ulpdream/core/protected_buffer.hpp"

namespace ulpdream::core {
namespace {

TEST(NoProtection, IdentityCodec) {
  const NoProtection none;
  EXPECT_EQ(none.extra_bits(), 0);
  for (int v = -32768; v <= 32767; v += 111) {
    const auto s = static_cast<fixed::Sample>(v);
    EXPECT_EQ(none.decode(none.encode_payload(s), 0), s);
  }
}

TEST(Factory, ProducesAllKinds) {
  for (const std::string& name : paper_emt_names()) {
    const auto emt = make_emt(name);
    ASSERT_NE(emt, nullptr);
    EXPECT_EQ(emt->name(), name);
  }
  // The enum shims resolve through the same registry.
  for (const EmtKind kind : all_emt_kinds()) {
    EXPECT_EQ(make_emt(kind)->name(), emt_kind_name(kind));
  }
}

TEST(Factory, PaperExtraBitsTable) {
  EXPECT_EQ(make_emt("none")->extra_bits(), 0);
  EXPECT_EQ(make_emt("dream")->extra_bits(), 5);
  EXPECT_EQ(make_emt("ecc_secded")->extra_bits(), 6);
}

TEST(AdaptivePolicy, SelectsByRange) {
  const AdaptivePolicy policy = AdaptivePolicy::paper_dwt_policy();
  EXPECT_EQ(policy.select(0.88), "none");
  EXPECT_EQ(policy.select(0.75), "dream");
  EXPECT_EQ(policy.select(0.60), "ecc_secded");
}

TEST(AdaptivePolicy, AboveAllRangesIsNone) {
  const AdaptivePolicy policy = AdaptivePolicy::paper_dwt_policy();
  EXPECT_EQ(policy.select(1.0), "none");
}

TEST(AdaptivePolicy, BelowAllRangesUsesStrongest) {
  const AdaptivePolicy policy = AdaptivePolicy::paper_dwt_policy();
  EXPECT_EQ(policy.select(0.50), "ecc_secded");
}

TEST(AdaptivePolicy, RejectsOverlapsAndEmptyRanges) {
  AdaptivePolicy policy;
  policy.add_range(0.6, 0.8, "dream");
  EXPECT_THROW(policy.add_range(0.7, 0.9, "none"), std::invalid_argument);
  EXPECT_THROW(policy.add_range(0.5, 0.5, "none"), std::invalid_argument);
}

TEST(AdaptivePolicy, EmptyPolicyDefaultsToNone) {
  const AdaptivePolicy policy;
  EXPECT_EQ(policy.select(0.5), "none");
}

TEST(MemorySystem, SizesArraysForEmt) {
  const auto dream = make_emt(EmtKind::kDream);
  MemorySystem system(*dream, 1024);
  EXPECT_EQ(system.data().words(), 1024u);
  EXPECT_EQ(system.data().width_bits(), 16);
  ASSERT_NE(system.safe(), nullptr);
  EXPECT_EQ(system.safe()->width_bits(), 5);

  const auto ecc = make_emt(EmtKind::kEccSecDed);
  MemorySystem ecc_system(*ecc, 1024);
  EXPECT_EQ(ecc_system.data().width_bits(), 22);
  EXPECT_EQ(ecc_system.safe(), nullptr);
}

TEST(MemorySystem, AllocatorBumpsAndOverflows) {
  const NoProtection none;
  MemorySystem system(none, 100);
  EXPECT_EQ(system.allocate(60), 0u);
  EXPECT_EQ(system.allocate(40), 60u);
  EXPECT_THROW((void)system.allocate(1), std::bad_alloc);
  system.reset_allocator();
  EXPECT_EQ(system.allocate(100), 0u);
}

TEST(ProtectedBuffer, RoundTripThroughEachEmt) {
  for (const EmtKind kind : all_emt_kinds()) {
    const auto emt = make_emt(kind);
    MemorySystem system(*emt, 256);
    auto buf = ProtectedBuffer::allocate(system, 128);
    for (std::size_t i = 0; i < 128; ++i) {
      buf.set(i, static_cast<fixed::Sample>(
                     static_cast<int>(i) * 257 - 16384));
    }
    for (std::size_t i = 0; i < 128; ++i) {
      EXPECT_EQ(buf.get(i), static_cast<fixed::Sample>(
                                static_cast<int>(i) * 257 - 16384))
          << emt->name();
    }
  }
}

TEST(ProtectedBuffer, BoundsChecked) {
  const NoProtection none;
  MemorySystem system(none, 64);
  auto buf = ProtectedBuffer::allocate(system, 16);
  EXPECT_THROW((void)buf.get(16), std::out_of_range);
  EXPECT_THROW(buf.set(16, 0), std::out_of_range);
}

TEST(ProtectedBuffer, DreamSurvivesMsbFaultsEccDoesNot) {
  // The paper's core qualitative claim at very low voltage: multi-bit MSB
  // stuck faults defeat SEC/DED but not DREAM (for near-zero samples).
  mem::FaultMap map(256, 22);
  // Words 0..: three stuck bits in the MSB region of the data field.
  for (std::size_t w = 0; w < 256; ++w) {
    map.edit(w).mask = (1u << 15) | (1u << 14) | (1u << 13);
    map.edit(w).value = (1u << 15) | (1u << 13);
  }

  const auto dream = make_emt(EmtKind::kDream);
  MemorySystem dream_sys(*dream, 256);
  dream_sys.attach_faults(&map);
  auto dream_buf = ProtectedBuffer::allocate(dream_sys, 64);
  // ECC's payload bit k holds Hamming position k+1, so the same physical
  // stuck cells corrupt different logical content — attach the same map.
  const auto ecc = make_emt(EmtKind::kEccSecDed);
  MemorySystem ecc_sys(*ecc, 256);
  ecc_sys.attach_faults(&map);
  auto ecc_buf = ProtectedBuffer::allocate(ecc_sys, 64);

  int dream_errors = 0;
  int ecc_errors = 0;
  for (int i = 0; i < 64; ++i) {
    const auto s = static_cast<fixed::Sample>(i * 7 - 224);  // small values
    dream_buf.set(static_cast<std::size_t>(i), s);
    ecc_buf.set(static_cast<std::size_t>(i), s);
    if (dream_buf.get(static_cast<std::size_t>(i)) != s) ++dream_errors;
    if (ecc_buf.get(static_cast<std::size_t>(i)) != s) ++ecc_errors;
  }
  EXPECT_EQ(dream_errors, 0);
  EXPECT_GT(ecc_errors, 0);
}

TEST(ProtectedBuffer, CodecCountersAccumulateInSystem) {
  const auto ecc = make_emt(EmtKind::kEccSecDed);
  MemorySystem system(*ecc, 64);
  mem::FaultMap map(64, 22);
  // Codeword bit 0 of encode(-1) is a parity bit that evaluates to 0;
  // stuck-at-1 guarantees an actual corruption for the counter to see.
  map.edit(0).mask = 0x1;
  map.edit(0).value = 0x1;
  system.attach_faults(&map);
  auto buf = ProtectedBuffer::allocate(system, 4);
  buf.set(0, -1);
  (void)buf.get(0);
  EXPECT_EQ(system.counters().decodes, 1u);
  EXPECT_EQ(system.counters().corrected_words, 1u);
}

TEST(MemorySystem, StatsResetClearsEverything) {
  const auto dream = make_emt(EmtKind::kDream);
  MemorySystem system(*dream, 64);
  auto buf = ProtectedBuffer::allocate(system, 8);
  buf.set(0, 5);
  (void)buf.get(0);
  system.reset_stats();
  EXPECT_EQ(system.data().stats().total(), 0u);
  EXPECT_EQ(system.safe()->stats().total(), 0u);
  EXPECT_EQ(system.counters().decodes, 0u);
}

}  // namespace
}  // namespace ulpdream::core
