#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "ulpdream/signal/buffer.hpp"
#include "ulpdream/signal/fir.hpp"
#include "ulpdream/signal/morphology.hpp"
#include "ulpdream/signal/wavelet.hpp"
#include "ulpdream/util/rng.hpp"

namespace ulpdream::signal {
namespace {

fixed::SampleVec sine_wave(std::size_t n, double cycles, double amp) {
  fixed::SampleVec v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<fixed::Sample>(
        amp * std::sin(2.0 * std::numbers::pi * cycles *
                       static_cast<double>(i) / static_cast<double>(n)));
  }
  return v;
}

TEST(Buffer, VecBufferRoundTrip) {
  VecBuffer b(8);
  b.set(3, 42);
  EXPECT_EQ(b.get(3), 42);
  EXPECT_EQ(b.size(), 8u);
}

TEST(Buffer, LoadStoreHelpers) {
  VecBuffer b(4);
  load(b, {1, 2, 3, 4});
  EXPECT_EQ(store(b, 4), (fixed::SampleVec{1, 2, 3, 4}));
}

TEST(ReflectIndex, MirrorsAtBothEnds) {
  EXPECT_EQ(reflect_index(0, 10), 0u);
  EXPECT_EQ(reflect_index(-1, 10), 1u);
  EXPECT_EQ(reflect_index(-3, 10), 3u);
  EXPECT_EQ(reflect_index(10, 10), 8u);
  EXPECT_EQ(reflect_index(12, 10), 6u);
  EXPECT_EQ(reflect_index(5, 1), 0u);
}

TEST(FirDesign, LowpassDcGainNearUnity) {
  const TapVec taps = design_lowpass(0.1, 31);
  double sum = 0.0;
  for (const auto& t : taps) sum += t.to_double();
  EXPECT_NEAR(sum, 1.0, 0.01);
}

TEST(FirDesign, HighpassDcGainNearZero) {
  const TapVec taps = design_highpass(0.1, 31);
  double sum = 0.0;
  for (const auto& t : taps) sum += t.to_double();
  EXPECT_NEAR(sum, 0.0, 0.01);
}

TEST(FirDesign, RejectsBadParameters) {
  EXPECT_THROW(design_lowpass(0.0, 31), std::invalid_argument);
  EXPECT_THROW(design_lowpass(0.6, 31), std::invalid_argument);
  EXPECT_THROW(design_lowpass(0.1, 30), std::invalid_argument);  // even
  EXPECT_THROW(design_lowpass(0.1, 1), std::invalid_argument);
}

TEST(Fir, LowpassPassesDcBlocksHighFrequency) {
  const std::size_t n = 256;
  const TapVec lp = design_lowpass(0.05, 51);

  // DC input passes nearly unchanged.
  VecBuffer dc(fixed::SampleVec(n, 10000));
  VecBuffer out(n);
  fir_apply(dc, out, lp, n);
  for (std::size_t i = 60; i < n - 60; ++i) {
    EXPECT_NEAR(out.get(i), 10000, 200);
  }

  // A high-frequency tone (0.4 cycles/sample) is strongly attenuated.
  VecBuffer tone(sine_wave(n, 0.4 * static_cast<double>(n), 10000.0));
  VecBuffer out2(n);
  fir_apply(tone, out2, lp, n);
  for (std::size_t i = 60; i < n - 60; ++i) {
    EXPECT_LT(std::abs(static_cast<int>(out2.get(i))), 800);
  }
}

TEST(Fir, MovingAverageSmoothsImpulse) {
  const std::size_t n = 64;
  fixed::SampleVec x(n, 0);
  x[32] = 9000;
  VecBuffer in(x);
  VecBuffer out(n);
  moving_average(in, out, 9, n);
  EXPECT_NEAR(out.get(32), 1000, 10);  // 9000 / 9
  EXPECT_EQ(out.get(0), 0);
}

TEST(WaveletBank, OrthogonalityConditions) {
  for (const WaveletFamily family :
       {WaveletFamily::kHaar, WaveletFamily::kDb2, WaveletFamily::kDb4}) {
    const WaveletBank& bank = wavelet_bank(family);
    // Sum of lo = sqrt(2); sum of hi = 0; unit energy.
    double sum_lo = 0.0;
    double sum_hi = 0.0;
    double energy = 0.0;
    for (double v : bank.lo_d) sum_lo += v;
    for (double v : bank.hi_d) sum_hi += v;
    for (double v : bank.lo_d) energy += v * v;
    EXPECT_NEAR(sum_lo, std::numbers::sqrt2, 1e-9) << bank.name;
    EXPECT_NEAR(sum_hi, 0.0, 1e-9) << bank.name;
    EXPECT_NEAR(energy, 1.0, 1e-9) << bank.name;
  }
}

TEST(WaveletF64, PerfectReconstructionAllFamilies) {
  util::Xoshiro256 rng(42);
  std::vector<double> x(128);
  for (auto& v : x) v = rng.gaussian(0.0, 100.0);
  for (const WaveletFamily family :
       {WaveletFamily::kHaar, WaveletFamily::kDb2, WaveletFamily::kDb4}) {
    const std::vector<double> coeffs = dwt_multi_f64(x, family, 3);
    const std::vector<double> back = idwt_multi_f64(coeffs, family, 3);
    ASSERT_EQ(back.size(), x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      EXPECT_NEAR(back[i], x[i], 1e-9) << wavelet_bank(family).name;
    }
  }
}

TEST(WaveletF64, EnergyPreservation) {
  util::Xoshiro256 rng(7);
  std::vector<double> x(256);
  for (auto& v : x) v = rng.gaussian();
  const std::vector<double> c = dwt_multi_f64(x, WaveletFamily::kDb4, 4);
  double ex = 0.0;
  double ec = 0.0;
  for (double v : x) ex += v * v;
  for (double v : c) ec += v * v;
  EXPECT_NEAR(ec / ex, 1.0, 1e-9);  // orthonormal transform
}

TEST(WaveletFixed, HaarLevelMatchesAnalytic) {
  // Haar: approx = (x0+x1)/2 * (2/sqrt2 * q15 scaling): with the Q15 bank
  // embedding 1/sqrt2 per tap, approx ~= (x0 + x1)/sqrt2.
  const std::size_t n = 8;
  VecBuffer in(fixed::SampleVec{1000, 1000, 2000, 2000, -500, -500, 0, 0});
  VecBuffer approx(n / 2);
  VecBuffer detail(n / 2);
  const FixedBank bank = fixed_bank(WaveletFamily::kHaar);
  dwt_level(in, n, bank, approx, detail);
  EXPECT_NEAR(approx.get(0), static_cast<int>(2000.0 / std::numbers::sqrt2),
              3);
  EXPECT_NEAR(detail.get(0), 0, 3);
  EXPECT_NEAR(approx.get(2), static_cast<int>(-1000.0 / std::numbers::sqrt2),
              3);
}

TEST(WaveletFixed, MultiLevelTracksFloatReference) {
  const std::size_t n = 256;
  const fixed::SampleVec x = sine_wave(n, 3.0, 8000.0);
  VecBuffer in(x);
  VecBuffer out(n);
  VecBuffer scratch(n);
  const FixedBank bank = fixed_bank(WaveletFamily::kDb4);
  const auto layout = dwt_multi(in, n, bank, 4, out, scratch);
  ASSERT_EQ(layout.size(), 5u);  // approx + 4 details
  EXPECT_EQ(layout[0].length, n / 16);

  const std::vector<double> ref =
      dwt_multi_f64(fixed::to_doubles(x), WaveletFamily::kDb4, 4);
  // Fixed-point coefficients should track the float reference within a
  // small relative tolerance (quantization of taps + rounding).
  double err = 0.0;
  double mag = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    err += std::pow(ref[i] - static_cast<double>(out.get(i)), 2);
    mag += ref[i] * ref[i];
  }
  EXPECT_LT(std::sqrt(err / mag), 0.02);
}

TEST(WaveletFixed, SwtDetailFlatSignalIsZero) {
  const std::size_t n = 64;
  VecBuffer in(fixed::SampleVec(n, 5000));
  VecBuffer out(n);
  const FixedBank bank = fixed_bank(WaveletFamily::kDb2);
  swt_detail(in, n, bank, 2, out);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(out.get(i), 0, 8);
  }
}

TEST(WaveletFixed, SwtDetailRespondsToStep) {
  const std::size_t n = 64;
  fixed::SampleVec x(n, 0);
  for (std::size_t i = n / 2; i < n; ++i) x[i] = 8000;
  VecBuffer in(x);
  VecBuffer out(n);
  const FixedBank bank = fixed_bank(WaveletFamily::kDb2);
  swt_detail(in, n, bank, 2, out);
  int peak = 0;
  for (std::size_t i = 0; i < n; ++i) {
    peak = std::max(peak, std::abs(static_cast<int>(out.get(i))));
  }
  EXPECT_GT(peak, 2000);
  // Far from the step the detail is ~0.
  EXPECT_NEAR(out.get(5), 0, 8);
  EXPECT_NEAR(out.get(n - 5), 0, 8);
}

TEST(Morphology, ErodeDilateKnownValues) {
  VecBuffer in(fixed::SampleVec{5, 1, 4, 9, 2});
  VecBuffer out(5);
  erode(in, out, 1, 5);
  EXPECT_EQ(store(out, 5), (fixed::SampleVec{1, 1, 1, 2, 2}));
  dilate(in, out, 1, 5);
  EXPECT_EQ(store(out, 5), (fixed::SampleVec{5, 5, 9, 9, 9}));
}

TEST(Morphology, OpeningRemovesPositiveImpulse) {
  const std::size_t n = 32;
  fixed::SampleVec x(n, 100);
  x[16] = 10000;  // narrow positive spike
  VecBuffer in(x);
  VecBuffer tmp(n);
  VecBuffer out(n);
  open(in, tmp, out, 2, n);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(out.get(i), 100);
}

TEST(Morphology, ClosingRemovesNegativeImpulse) {
  const std::size_t n = 32;
  fixed::SampleVec x(n, 100);
  x[16] = -10000;
  VecBuffer in(x);
  VecBuffer tmp(n);
  VecBuffer out(n);
  close(in, tmp, out, 2, n);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(out.get(i), 100);
}

TEST(Morphology, IdempotenceOfOpening) {
  // Property: opening is idempotent — open(open(x)) == open(x).
  util::Xoshiro256 rng(5);
  const std::size_t n = 128;
  fixed::SampleVec x(n);
  for (auto& v : x) v = static_cast<fixed::Sample>(rng.gaussian(0, 3000));
  VecBuffer in(x);
  VecBuffer tmp(n);
  VecBuffer once(n);
  open(in, tmp, once, 3, n);
  VecBuffer twice(n);
  open(once, tmp, twice, 3, n);
  EXPECT_EQ(store(once, n), store(twice, n));
}

TEST(Morphology, ErosionAntiExtensivity) {
  // erode(x) <= x <= dilate(x) pointwise.
  util::Xoshiro256 rng(6);
  const std::size_t n = 100;
  fixed::SampleVec x(n);
  for (auto& v : x) v = static_cast<fixed::Sample>(rng.gaussian(0, 5000));
  VecBuffer in(x);
  VecBuffer lo(n);
  VecBuffer hi(n);
  erode(in, lo, 4, n);
  dilate(in, hi, 4, n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_LE(lo.get(i), x[i]);
    EXPECT_GE(hi.get(i), x[i]);
  }
}

class DwtLevelSweep : public ::testing::TestWithParam<
                          std::tuple<WaveletFamily, int>> {};

TEST_P(DwtLevelSweep, FixedTransformPreservesEnergyApproximately) {
  const auto [family, levels] = GetParam();
  const std::size_t n = 512;
  const fixed::SampleVec x = sine_wave(n, 5.0, 6000.0);
  VecBuffer in(x);
  VecBuffer out(n);
  VecBuffer scratch(n);
  const FixedBank bank = fixed_bank(family);
  dwt_multi(in, n, bank, static_cast<std::size_t>(levels), out, scratch);
  double ein = 0.0;
  double eout = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    ein += std::pow(static_cast<double>(x[i]), 2);
    eout += std::pow(static_cast<double>(out.get(i)), 2);
  }
  // Orthonormal-ish in fixed point: energy ratio within 5%.
  EXPECT_NEAR(eout / ein, 1.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndLevels, DwtLevelSweep,
    ::testing::Combine(::testing::Values(WaveletFamily::kHaar,
                                         WaveletFamily::kDb2,
                                         WaveletFamily::kDb4),
                       ::testing::Values(1, 2, 3, 4, 5)));

}  // namespace
}  // namespace ulpdream::signal
