#include <gtest/gtest.h>

#include "ulpdream/apps/classifier_app.hpp"
#include "ulpdream/core/factory.hpp"
#include "ulpdream/core/no_protection.hpp"
#include "ulpdream/ecg/database.hpp"
#include "ulpdream/mem/ber_model.hpp"

namespace ulpdream::apps {
namespace {

core::MemorySystem clean_system() {
  static const core::NoProtection none;
  return core::MemorySystem(none);
}

TEST(ClassifierApp, FactoryIntegration) {
  const auto app = make_app(AppKind::kHeartbeatClassifier);
  EXPECT_EQ(app->name(), "heartbeat_classifier");
  EXPECT_EQ(extended_app_kinds().size(), 6u);
  EXPECT_EQ(all_app_kinds().size(), 5u);  // the paper's set is unchanged
}

TEST(ClassifierApp, NormalSinusMostlyNormalBeats) {
  const ClassifierApp app;
  auto sys = clean_system();
  const ecg::Record rec = ecg::make_default_record(11);
  const auto beats = app.classify(sys, rec);
  ASSERT_GE(beats.size(), 5u);
  std::size_t normal = 0;
  for (const auto& b : beats) {
    if (b.label == BeatClass::kNormal) ++normal;
  }
  EXPECT_GE(static_cast<double>(normal) / static_cast<double>(beats.size()),
            0.8);
}

TEST(ClassifierApp, PvcRecordYieldsPvcDetections) {
  ecg::GeneratorConfig cfg;
  cfg.pathology = ecg::Pathology::kPvcBigeminy;
  cfg.seed = 13;
  cfg.duration_s = 8.2;
  const ecg::Record rec = ecg::generate_record(cfg);

  const ClassifierApp app;
  auto sys = clean_system();
  const auto beats = app.classify(sys, rec);
  std::size_t pvc = 0;
  for (const auto& b : beats) {
    if (b.label == BeatClass::kPvc) ++pvc;
  }
  EXPECT_GT(pvc, 0u);
}

TEST(ClassifierApp, OutputVectorIsStatistical) {
  const ClassifierApp app;
  auto sys = clean_system();
  const ecg::Record rec = ecg::make_default_record(11);
  const auto out = app.run(sys, rec);
  ASSERT_GE(out.size(), 3u);
  // Class counts must sum to the number of labelled beats.
  const double total = out[0] + out[1] + out[2];
  EXPECT_GT(total, 0.0);
  // Labels are small integers.
  for (std::size_t i = 3; i < out.size(); ++i) {
    EXPECT_GE(out[i], 0.0);
    EXPECT_LE(out[i], 2.0);
  }
}

TEST(ClassifierApp, QualitativeOutputToleratesModerateFaults) {
  // The paper's Sec. III point: classification output relaxes reliability
  // requirements. At 0.70 V (where waveform SNR already dips) the class
  // counts should barely move under DREAM.
  const ClassifierApp app;
  const ecg::Record rec = ecg::make_default_record(11);

  auto clean_sys = clean_system();
  const auto clean = app.run(clean_sys, rec);

  const auto ber = mem::make_ber_model(mem::BerModelKind::kLogLinear);
  util::Xoshiro256 rng(5);
  std::size_t agree = 0;
  const std::size_t trials = 10;
  const auto dream = core::make_emt(core::EmtKind::kDream);
  for (std::size_t t = 0; t < trials; ++t) {
    const mem::FaultMap map = mem::FaultMap::random(
        mem::MemoryGeometry::kWords16, 22, ber->ber(0.70), rng);
    core::MemorySystem sys(*dream);
    sys.attach_faults(&map);
    const auto noisy = app.run(sys, rec);
    if (noisy[0] == clean[0] && noisy[1] == clean[1]) ++agree;
  }
  EXPECT_GE(agree, trials * 7 / 10);
}

TEST(ClassifierApp, FitsDeviceMemory) {
  const ClassifierApp app;
  EXPECT_LE(app.footprint_words(), mem::MemoryGeometry::kWords16);
}

class ClassifierPathologySweep
    : public ::testing::TestWithParam<ecg::Pathology> {};

TEST_P(ClassifierPathologySweep, ProducesLabelsForEveryPathology) {
  ecg::GeneratorConfig cfg;
  cfg.pathology = GetParam();
  cfg.seed = 77;
  const ecg::Record rec = ecg::generate_record(cfg);
  const ClassifierApp app;
  auto sys = clean_system();
  const auto beats = app.classify(sys, rec);
  EXPECT_FALSE(beats.empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllPathologies, ClassifierPathologySweep,
    ::testing::Values(ecg::Pathology::kNormalSinus,
                      ecg::Pathology::kBradycardia,
                      ecg::Pathology::kTachycardia,
                      ecg::Pathology::kPvcBigeminy,
                      ecg::Pathology::kAtrialFib,
                      ecg::Pathology::kStElevation));

}  // namespace
}  // namespace ulpdream::apps
