// Registry-based extension API: the Registry<T> template, the built-in
// component registrations, the legacy enum shims, the Scenario facade,
// and — the acceptance test of the redesign — a user-defined EMT
// registered *in this test binary* (outside src/) running through the
// campaign engine by name with the engine's determinism guarantees intact.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include <ulpdream/ulpdream.hpp>

namespace ulpdream {
namespace {

// ---------------------------------------------------------------------------
// Registry<T> mechanics on a local registry (no global state involved).

struct Widget {
  virtual ~Widget() = default;
  [[nodiscard]] virtual int value() const = 0;
};

struct FortyTwo final : Widget {
  [[nodiscard]] int value() const override { return 42; }
};

TEST(Registry, CreateAndNamesFollowRegistrationOrder) {
  Registry<Widget> reg("widget");
  reg.register_factory("a", [] { return std::make_unique<FortyTwo>(); });
  reg.register_factory("b", [] { return std::make_unique<FortyTwo>(); });
  EXPECT_EQ(reg.names(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_TRUE(reg.contains("a"));
  EXPECT_FALSE(reg.contains("c"));
  EXPECT_EQ(reg.create("a")->value(), 42);
}

TEST(Registry, DuplicateRegistrationThrows) {
  Registry<Widget> reg("widget");
  reg.register_factory("a", [] { return std::make_unique<FortyTwo>(); });
  try {
    reg.register_factory("a", [] { return std::make_unique<FortyTwo>(); });
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()), "duplicate widget registration: 'a'");
  }
}

TEST(Registry, UnknownNameErrorListsValidNames) {
  Registry<Widget> reg("widget");
  reg.register_factory("a", [] { return std::make_unique<FortyTwo>(); });
  reg.register_factory("b", [] { return std::make_unique<FortyTwo>(); });
  try {
    (void)reg.create("nope");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()), "unknown widget: nope (valid: a b)");
  }
  EXPECT_THROW((void)reg.descriptor("nope"), std::invalid_argument);
}

TEST(Registry, DuplicateTagThrows) {
  Registry<Widget> reg("widget");
  reg.register_factory(
      "a", [] { return std::make_unique<FortyTwo>(); }, {"A", "", {}, 0});
  EXPECT_THROW(reg.register_factory(
                   "b", [] { return std::make_unique<FortyTwo>(); },
                   {"B", "", {}, 0}),
               std::invalid_argument);
  // Untagged entries never collide.
  reg.register_factory("c", [] { return std::make_unique<FortyTwo>(); });
  reg.register_factory("d", [] { return std::make_unique<FortyTwo>(); });
}

TEST(Registry, OutOfRangeUserTagsStayOutOfEnumShimLists) {
  // A user registration carrying a tag beyond the legacy enum range must
  // never surface in the enum-typed kind lists (which feed enum switches
  // like codec_area), however early it registers.
  static const bool registered = [] {
    core::emt_registry().register_factory(
        "tagged_custom",
        [] { return core::make_emt("none"); },
        {"Tagged custom", "user EMT with an out-of-range tag", {}, 99});
    return true;
  }();
  ASSERT_TRUE(registered);
  for (const core::EmtKind kind : core::extended_emt_kinds()) {
    EXPECT_LE(static_cast<int>(kind),
              static_cast<int>(core::EmtKind::kDreamSecDed));
  }
  EXPECT_EQ(core::extended_emt_kinds().size(), 4u);
  // Reusing a built-in's tag is rejected outright.
  EXPECT_THROW(core::emt_registry().register_factory(
                   "fake_dream", [] { return core::make_emt("none"); },
                   {"Fake", "", {}, static_cast<int>(core::EmtKind::kDream)}),
               std::invalid_argument);
}

TEST(Registry, RejectsEmptyNameAndNullFactory) {
  Registry<Widget> reg("widget");
  EXPECT_THROW(
      reg.register_factory("", [] { return std::make_unique<FortyTwo>(); }),
      std::invalid_argument);
  EXPECT_THROW(reg.register_factory("a", nullptr), std::invalid_argument);
}

TEST(Registry, DescriptorCarriesMetadataAndCapabilities) {
  Registry<Widget> reg("widget");
  reg.register_factory(
      "a", [] { return std::make_unique<FortyTwo>(); },
      {"The Answer", "answers everything", {"deep-thought", "paper"}, 7});
  const Descriptor d = reg.descriptor("a");
  EXPECT_EQ(d.display_name, "The Answer");
  EXPECT_EQ(d.doc, "answers everything");
  EXPECT_TRUE(d.has_capability("deep-thought"));
  EXPECT_FALSE(d.has_capability("babel-fish"));
  EXPECT_EQ(d.tag, 7);
  EXPECT_EQ(reg.names_with("paper"), (std::vector<std::string>{"a"}));
  EXPECT_EQ(reg.find_by_tag(7), "a");
  EXPECT_EQ(reg.find_by_tag(8), "");
}

// ---------------------------------------------------------------------------
// Built-in registrations and the enum shims.

TEST(ComponentRegistries, BuiltInsEnumerateInPresentationOrder) {
  // >= because other tests in this binary may register extra components.
  EXPECT_GE(core::emt_names().size(), 4u);
  EXPECT_EQ(core::paper_emt_names(),
            (std::vector<std::string>{"none", "dream", "ecc_secded"}));
  EXPECT_EQ(apps::paper_app_names(),
            (std::vector<std::string>{"dwt", "matrix_filter", "cs",
                                      "morph_filter", "delineation"}));
  EXPECT_GE(apps::app_names().size(), 6u);
  EXPECT_EQ(mem::ber_model_names().front(), "log-linear");
  EXPECT_TRUE(mem::ber_model_registry().contains("probit"));
}

TEST(ComponentRegistries, CapabilitiesClassifyTiers) {
  EXPECT_TRUE(core::emt_registry().descriptor("dream").has_capability(
      core::kCapCorrectsErrors));
  EXPECT_FALSE(core::emt_registry().descriptor("none").has_capability(
      core::kCapCorrectsErrors));
  EXPECT_TRUE(core::emt_registry().descriptor("dream_secded").has_capability(
      core::kCapExtendedTier));
  EXPECT_TRUE(apps::app_registry()
                  .descriptor("heartbeat_classifier")
                  .has_capability(core::kCapExtendedTier));
}

TEST(ComponentRegistries, EnumShimsResolveThroughDescriptorTags) {
  EXPECT_EQ(core::emt_kind_name(core::EmtKind::kDream), "dream");
  EXPECT_EQ(core::make_emt(core::EmtKind::kEccSecDed)->name(), "ecc_secded");
  EXPECT_EQ(apps::app_kind_name(apps::AppKind::kCompressedSensing), "cs");
  EXPECT_EQ(mem::ber_model_kind_name(mem::BerModelKind::kProbit), "probit");
  EXPECT_EQ(mem::make_ber_model(mem::BerModelKind::kLogLinear)->name(),
            "log-linear");
}

TEST(ComponentRegistries, MakeEmtUnknownNameListsRegisteredNames) {
  try {
    (void)core::make_emt("raid5");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown EMT: raid5"), std::string::npos) << what;
    EXPECT_NE(what.find("none"), std::string::npos) << what;
    EXPECT_NE(what.find("dream_secded"), std::string::npos) << what;
  }
}

// ---------------------------------------------------------------------------
// A user-defined EMT registered outside src/ — through the whole stack.

/// Inverts every bit of the payload (stored complemented). Corrects
/// nothing, but its decode differs from "none" whenever a stuck-at fault
/// lands, which makes mix-ups with built-ins detectable in results.
class InvertedStore final : public core::Emt {
 public:
  [[nodiscard]] std::string name() const override { return "inverted"; }
  [[nodiscard]] int payload_bits() const override {
    return fixed::kSampleBits;
  }
  [[nodiscard]] int safe_bits() const override { return 0; }
  [[nodiscard]] std::uint32_t encode_payload(
      fixed::Sample s) const override {
    return static_cast<std::uint16_t>(~static_cast<std::uint16_t>(s));
  }
  [[nodiscard]] std::uint16_t encode_safe(fixed::Sample) const override {
    return 0;
  }
  [[nodiscard]] fixed::Sample decode(
      std::uint32_t payload, std::uint16_t,
      core::CodecCounters* counters = nullptr) const override {
    if (counters != nullptr) ++counters->decodes;
    return static_cast<fixed::Sample>(
        static_cast<std::uint16_t>(~static_cast<std::uint16_t>(payload)));
  }
};

bool register_inverted_once() {
  static const bool done = [] {
    core::emt_registry().register_factory(
        "inverted", [] { return std::make_unique<InvertedStore>(); },
        {"Inverted store", "stores samples complemented (test technique)",
         {"custom"}});
    return true;
  }();
  return done;
}

TEST(CustomEmt, RegistersAndParsesLikeABuiltIn) {
  ASSERT_TRUE(register_inverted_once());
  EXPECT_TRUE(core::emt_registry().contains("inverted"));
  EXPECT_EQ(core::make_emt("inverted")->name(), "inverted");
  // Axis parsers accept it by name, and "all" includes it.
  const auto parsed = campaign::parse_emt_list("none,inverted");
  EXPECT_EQ(parsed, (std::vector<std::string>{"none", "inverted"}));
  bool in_all = false;
  for (const std::string& name : campaign::parse_emt_list("all")) {
    in_all = in_all || name == "inverted";
  }
  EXPECT_TRUE(in_all);
  // The paper tier is untouched.
  EXPECT_EQ(core::paper_emt_names().size(), 3u);
  EXPECT_EQ(core::extended_emt_kinds().size(), 4u);
}

TEST(CustomEmt, RunsThroughCampaignEngineDeterministically) {
  ASSERT_TRUE(register_inverted_once());
  campaign::CampaignSpec spec;
  spec.apps = {"dwt"};
  spec.emts = {"none", "inverted"};
  spec.voltages = {0.6, 0.9};
  spec.records = {campaign::RecordAxis{ecg::Pathology::kNormalSinus, 1.0, 7}};
  spec.repetitions = 2;
  spec = spec.normalized();

  const campaign::CampaignEngine serial(energy::SystemEnergyModel(), 1);
  const auto baseline = serial.run(spec).aggregate();
  ASSERT_EQ(baseline.size(), 2u * 2u);
  for (const unsigned threads : {3u, 8u}) {
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    const campaign::CampaignEngine engine(energy::SystemEnergyModel(),
                                          threads);
    const auto rows = engine.run(spec).aggregate();
    ASSERT_EQ(rows.size(), baseline.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(rows[i].emt, baseline[i].emt);
      EXPECT_EQ(rows[i].snr_mean_db, baseline[i].snr_mean_db);
      EXPECT_EQ(rows[i].energy_mean_j, baseline[i].energy_mean_j);
      EXPECT_EQ(rows[i].corrected_mean, baseline[i].corrected_mean);
    }
  }

  // At nominal voltage (error-free) the inverted store round-trips
  // exactly, so it matches the unprotected SNR; the aggregation keyed it
  // under its own name.
  double none_09 = 0.0;
  double inverted_09 = 1.0;
  for (const auto& row : baseline) {
    if (row.voltage != 0.9) continue;
    if (row.emt == "none") none_09 = row.snr_mean_db;
    if (row.emt == "inverted") inverted_09 = row.snr_mean_db;
  }
  EXPECT_EQ(none_09, inverted_09);
}

/// 24-bit payload (wider than ECC's 22): the data word plus the top byte
/// duplicated in bits 16..23. Decode ignores the copy — the point is the
/// payload *width*, which the fault-map generation must accommodate.
class WidePayload final : public core::Emt {
 public:
  [[nodiscard]] std::string name() const override { return "wide24"; }
  [[nodiscard]] int payload_bits() const override { return 24; }
  [[nodiscard]] int safe_bits() const override { return 0; }
  [[nodiscard]] std::uint32_t encode_payload(
      fixed::Sample s) const override {
    const auto u = static_cast<std::uint16_t>(s);
    return u | (static_cast<std::uint32_t>(u >> 8) << 16);
  }
  [[nodiscard]] std::uint16_t encode_safe(fixed::Sample) const override {
    return 0;
  }
  [[nodiscard]] fixed::Sample decode(
      std::uint32_t payload, std::uint16_t,
      core::CodecCounters* counters = nullptr) const override {
    if (counters != nullptr) ++counters->decodes;
    return static_cast<fixed::Sample>(static_cast<std::uint16_t>(payload));
  }
};

TEST(CustomEmt, WiderThanEccPayloadWidensTheFaultMap) {
  static const bool registered = [] {
    core::emt_registry().register_factory(
        "wide24", [] { return std::make_unique<WidePayload>(); },
        {"Wide payload", "24-bit payload (test technique)", {"custom"}});
    return true;
  }();
  ASSERT_TRUE(registered);
  // Regression: the engine/sweeps used to hardcode the map width to ECC's
  // 22 bits, so any registered EMT with a wider payload threw mid-run.
  const auto rows = Scenario()
                        .app("dwt")
                        .emt("none")
                        .emt("wide24")
                        .voltage(0.8)
                        .repetitions(2)
                        .threads(2)
                        .run_rows();
  ASSERT_EQ(rows.size(), 2u);
  for (const AggregateRow& row : rows) {
    EXPECT_TRUE(std::isfinite(row.snr_mean_db));
  }
}

// ---------------------------------------------------------------------------
// Scenario facade.

TEST(Scenario, HappyPathRunsATinyGrid) {
  const auto rows = Scenario()
                        .app("dwt")
                        .emt("none")
                        .emt("dream")
                        .voltage(0.7)
                        .voltage(0.9)
                        .record(ecg::Pathology::kNormalSinus, 1.0, 7)
                        .repetitions(2)
                        .threads(2)
                        .run_rows();
  ASSERT_EQ(rows.size(), 2u * 2u);  // emts x voltages
  for (const AggregateRow& row : rows) {
    EXPECT_EQ(row.app, "dwt");
    EXPECT_EQ(row.n, 2u);
    EXPECT_TRUE(std::isfinite(row.snr_mean_db));
    EXPECT_GT(row.energy_mean_j, 0.0);
  }
}

TEST(Scenario, DefaultsToThePaperGrid) {
  const campaign::CampaignSpec spec = Scenario().build_spec();
  EXPECT_EQ(spec.apps, apps::paper_app_names());
  EXPECT_EQ(spec.emts, core::paper_emt_names());
  EXPECT_EQ(spec.voltages.size(), 9u);
  EXPECT_EQ(spec.ber_model, "log-linear");
}

TEST(Scenario, UnknownNamesFailAtBuildTimeListingValidNames) {
  EXPECT_THROW((void)Scenario().app("fft").build_spec(),
               std::invalid_argument);
  EXPECT_THROW((void)Scenario().ber_model("weibull").build_spec(),
               std::invalid_argument);
  try {
    (void)Scenario().emt("raid5").build_spec();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("valid:"), std::string::npos);
  }
}

TEST(Scenario, PolicyRangesAreIndependentOfEmtListOrder) {
  // The triggering-range ladder is derived from the voltage floors, not
  // from the order the config happened to list the EMTs.
  const auto sweep_for = [](std::vector<std::string> emts) {
    campaign::CampaignSpec spec;
    spec.apps = {"dwt"};
    spec.emts = std::move(emts);
    spec.voltages = {0.6, 0.7, 0.8, 0.9};
    spec.records = {
        campaign::RecordAxis{ecg::Pathology::kNormalSinus, 1.0, 7}};
    spec.repetitions = 4;
    const campaign::CampaignEngine engine(energy::SystemEnergyModel(), 2);
    return engine.run(spec.normalized()).to_sweep_result(0, 0);
  };
  const sim::PolicyResult forward =
      sim::explore_policy(sweep_for({"none", "dream", "ecc_secded"}), 1.0);
  const sim::PolicyResult reversed =
      sim::explore_policy(sweep_for({"ecc_secded", "dream", "none"}), 1.0);
  ASSERT_EQ(forward.policy.ranges().size(), reversed.policy.ranges().size());
  for (std::size_t i = 0; i < forward.policy.ranges().size(); ++i) {
    EXPECT_EQ(forward.policy.ranges()[i].emt,
              reversed.policy.ranges()[i].emt);
    EXPECT_EQ(forward.policy.ranges()[i].v_low,
              reversed.policy.ranges()[i].v_low);
    EXPECT_EQ(forward.policy.ranges()[i].v_high,
              reversed.policy.ranges()[i].v_high);
  }
}

TEST(Scenario, PolicyTopBandBelongsToNoneEvenAgainstHigherFloors) {
  // A technique feasible only near nominal voltage must not own the top
  // band when unprotected operation suffices there.
  sim::SweepResult sweep;
  sweep.config.voltages = {0.85, 0.9};
  sweep.config.emts = {"none", "lossy"};
  sweep.max_snr_db = 60.0;
  const auto point = [](const char* emt, double v, double snr, double e) {
    sim::SweepPoint p;
    p.emt = emt;
    p.voltage = v;
    p.snr_mean_db = snr;
    p.energy_mean_j = e;
    return p;
  };
  sweep.points = {point("none", 0.9, 60.0, 1.0),
                  point("none", 0.85, 59.5, 0.9),
                  point("lossy", 0.9, 59.2, 2.0),
                  point("lossy", 0.85, 50.0, 1.8)};
  const sim::PolicyResult policy = sim::explore_policy(sweep, 1.0);
  ASSERT_FALSE(policy.policy.ranges().empty());
  EXPECT_EQ(policy.policy.ranges().back().emt, "none");
  EXPECT_EQ(policy.policy.select(0.95), "none");
}

TEST(Scenario, BridgesToSweepAndPolicyExplorer) {
  const campaign::ResultStore store = Scenario()
                                          .app("dwt")
                                          .voltages(0.6, 0.9, 0.1)
                                          .repetitions(3)
                                          .threads(2)
                                          .run();
  const sim::SweepResult sweep = store.to_sweep_result(0, 0);
  EXPECT_EQ(sweep.points.size(), 4u * 3u);
  const sim::PolicyResult policy = sim::explore_policy(sweep, 1.0);
  EXPECT_EQ(policy.points.size(), 3u);
  EXPECT_GT(policy.nominal_energy_j, 0.0);
}

}  // namespace
}  // namespace ulpdream
