#include <gtest/gtest.h>

#include "ulpdream/core/factory.hpp"
#include "ulpdream/energy/area_model.hpp"
#include "ulpdream/energy/energy_model.hpp"

namespace ulpdream::energy {
namespace {

mem::AccessStats make_stats(std::uint64_t reads, std::uint64_t writes) {
  mem::AccessStats s;
  s.reset(1);
  s.reads = reads;
  s.writes = writes;
  return s;
}

TEST(MemoryEnergyParams, DynamicScalesQuadratically) {
  const MemoryEnergyParams p;
  const double e_nom = p.dynamic_j(0.9, 16, 1000, false);
  const double e_half = p.dynamic_j(0.45, 16, 1000, false);
  EXPECT_NEAR(e_half / e_nom, 0.25, 1e-12);
}

TEST(MemoryEnergyParams, DynamicScalesLinearlyWithWidthAndAccesses) {
  const MemoryEnergyParams p;
  EXPECT_NEAR(p.dynamic_j(0.9, 22, 1000, false) /
                  p.dynamic_j(0.9, 16, 1000, false),
              22.0 / 16.0, 1e-12);
  EXPECT_NEAR(p.dynamic_j(0.9, 16, 2000, false) /
                  p.dynamic_j(0.9, 16, 1000, false),
              2.0, 1e-12);
}

TEST(MemoryEnergyParams, SmallArrayFactorApplied) {
  const MemoryEnergyParams p;
  EXPECT_NEAR(p.dynamic_j(0.9, 16, 1000, true) /
                  p.dynamic_j(0.9, 16, 1000, false),
              p.small_array_factor, 1e-12);
}

TEST(MemoryEnergyParams, LeakageDropsSteeplyWithVoltage) {
  const MemoryEnergyParams p;
  const double leak_nom = p.leak_power_w(0.9, 16, 16384, false);
  const double leak_low = p.leak_power_w(0.5, 16, 16384, false);
  EXPECT_GT(leak_nom / leak_low, 10.0);
  EXPECT_LT(leak_nom / leak_low, 100.0);
}

TEST(MemoryEnergyParams, NominalLeakageMatchesCalibration) {
  const MemoryEnergyParams p;
  // 45 uW for the full 32 kB / 16-bit array at nominal.
  EXPECT_NEAR(p.leak_power_w(0.9, 16, 16384, false), 45e-6, 1e-9);
}

TEST(CodecEnergy, OrderingNoneDreamEcc) {
  const auto none = codec_energy(core::EmtKind::kNone);
  const auto dream = codec_energy(core::EmtKind::kDream);
  const auto ecc = codec_energy(core::EmtKind::kEccSecDed);
  EXPECT_EQ(none.encode_pj, 0.0);
  EXPECT_EQ(none.decode_pj, 0.0);
  EXPECT_GT(dream.decode_pj, 0.0);
  EXPECT_GT(ecc.encode_pj, dream.encode_pj);
  EXPECT_GT(ecc.decode_pj, dream.decode_pj);
}

TEST(SystemEnergyModel, BreakdownComponentsPopulated) {
  const SystemEnergyModel model;
  const auto dream = core::make_emt(core::EmtKind::kDream);
  const mem::AccessStats data = make_stats(1000, 1000);
  const mem::AccessStats side = make_stats(1000, 1000);
  const EnergyBreakdown e =
      model.compute(*dream, 0.7, data, &side, 16384, 4000);
  EXPECT_GT(e.data_dynamic_j, 0.0);
  EXPECT_GT(e.side_dynamic_j, 0.0);
  EXPECT_GT(e.codec_j, 0.0);
  EXPECT_GT(e.data_leak_j, 0.0);
  EXPECT_GT(e.side_leak_j, 0.0);
  EXPECT_NEAR(e.total_j(),
              e.data_dynamic_j + e.side_dynamic_j + e.codec_j +
                  e.data_leak_j + e.side_leak_j,
              1e-18);
}

TEST(SystemEnergyModel, NoProtectionHasNoOverheadComponents) {
  const SystemEnergyModel model;
  const auto none = core::make_emt(core::EmtKind::kNone);
  const mem::AccessStats data = make_stats(500, 500);
  const EnergyBreakdown e =
      model.compute(*none, 0.7, data, nullptr, 16384, 2000);
  EXPECT_EQ(e.side_dynamic_j, 0.0);
  EXPECT_EQ(e.codec_j, 0.0);
  EXPECT_EQ(e.side_leak_j, 0.0);
}

TEST(SystemEnergyModel, TotalEnergyDecreasesWithVoltage) {
  const SystemEnergyModel model;
  const auto none = core::make_emt(core::EmtKind::kNone);
  const mem::AccessStats data = make_stats(1000, 1000);
  double prev = 1e9;
  for (double v = 0.9; v >= 0.5 - 1e-9; v -= 0.05) {
    const double e = model.compute(*none, v, data, nullptr, 16384, 4000)
                         .total_j();
    EXPECT_LT(e, prev);
    prev = e;
  }
}

TEST(SystemEnergyModel, PaperOverheadCalibration) {
  // Sec. VI-B reproduction at model level: averaged across the sweep, the
  // protection overhead vs no protection is ~34% (DREAM) and ~55% (ECC),
  // i.e. DREAM saves ~21 points of overhead.
  const SystemEnergyModel model;
  const auto none = core::make_emt(core::EmtKind::kNone);
  const auto dream = core::make_emt(core::EmtKind::kDream);
  const auto ecc = core::make_emt(core::EmtKind::kEccSecDed);
  const mem::AccessStats data = make_stats(100000, 100000);
  const mem::AccessStats side = make_stats(100000, 100000);

  double sum_none = 0.0;
  double sum_dream = 0.0;
  double sum_ecc = 0.0;
  int n = 0;
  for (double v = 0.5; v <= 0.9 + 1e-9; v += 0.05) {
    const std::uint64_t cycles = 400000;
    sum_none +=
        model.compute(*none, v, data, nullptr, 16384, cycles).total_j();
    sum_dream +=
        model.compute(*dream, v, data, &side, 16384, cycles).total_j();
    sum_ecc +=
        model.compute(*ecc, v, data, nullptr, 16384, cycles).total_j();
    ++n;
  }
  const double dream_overhead = sum_dream / sum_none - 1.0;
  const double ecc_overhead = sum_ecc / sum_none - 1.0;
  EXPECT_NEAR(dream_overhead, 0.34, 0.06);
  EXPECT_NEAR(ecc_overhead, 0.55, 0.08);
  EXPECT_NEAR(ecc_overhead - dream_overhead, 0.21, 0.06);
}

TEST(AreaModel, PaperRatios) {
  const CodecArea dream = codec_area(core::EmtKind::kDream);
  const CodecArea ecc = codec_area(core::EmtKind::kEccSecDed);
  EXPECT_NEAR(ecc.encoder_ge / dream.encoder_ge, 1.28, 1e-9);
  EXPECT_NEAR(ecc.decoder_ge / dream.decoder_ge, 2.20, 1e-9);
  EXPECT_EQ(codec_area(core::EmtKind::kNone).total_ge(), 0.0);
}

TEST(AreaModel, ExtraBitsFormula2) {
  EXPECT_EQ(extra_bits_per_word(core::EmtKind::kNone), 0);
  EXPECT_EQ(extra_bits_per_word(core::EmtKind::kDream), 5);
  EXPECT_EQ(extra_bits_per_word(core::EmtKind::kEccSecDed), 6);
  EXPECT_NEAR(memory_area_overhead(core::EmtKind::kDream), 5.0 / 16.0,
              1e-12);
  EXPECT_NEAR(memory_area_overhead(core::EmtKind::kEccSecDed), 6.0 / 16.0,
              1e-12);
}

class VoltageSweepEnergy : public ::testing::TestWithParam<double> {};

TEST_P(VoltageSweepEnergy, DreamCheaperThanEccAtEveryVoltage) {
  const double v = GetParam();
  const SystemEnergyModel model;
  const auto dream = core::make_emt(core::EmtKind::kDream);
  const auto ecc = core::make_emt(core::EmtKind::kEccSecDed);
  const mem::AccessStats data = make_stats(50000, 50000);
  const mem::AccessStats side = make_stats(50000, 50000);
  const double e_dream =
      model.compute(*dream, v, data, &side, 16384, 200000).total_j();
  const double e_ecc =
      model.compute(*ecc, v, data, nullptr, 16384, 200000).total_j();
  EXPECT_LT(e_dream, e_ecc);
}

INSTANTIATE_TEST_SUITE_P(Voltages, VoltageSweepEnergy,
                         ::testing::Values(0.5, 0.55, 0.6, 0.65, 0.7, 0.75,
                                           0.8, 0.85, 0.9));

}  // namespace
}  // namespace ulpdream::energy
