#include <gtest/gtest.h>

#include <cmath>

#include "ulpdream/apps/app.hpp"
#include "ulpdream/apps/cs_app.hpp"
#include "ulpdream/apps/delineation_app.hpp"
#include "ulpdream/apps/dwt_app.hpp"
#include "ulpdream/apps/matrix_filter_app.hpp"
#include "ulpdream/apps/morph_filter_app.hpp"
#include "ulpdream/core/factory.hpp"
#include "ulpdream/core/no_protection.hpp"
#include "ulpdream/ecg/database.hpp"
#include "ulpdream/metrics/quality.hpp"

namespace ulpdream::apps {
namespace {

const ecg::Record& test_record() {
  static const ecg::Record rec = ecg::make_default_record(17);
  return rec;
}

core::MemorySystem make_clean_system() {
  static const core::NoProtection none;
  return core::MemorySystem(none);
}

TEST(AppFactory, ProducesAllFivePaperApps) {
  EXPECT_EQ(all_app_kinds().size(), 5u);
  EXPECT_EQ(paper_app_names().size(), 5u);
  for (const std::string& name : paper_app_names()) {
    const auto app = make_app(name);
    ASSERT_NE(app, nullptr);
    EXPECT_EQ(app->name(), name);
  }
  // The enum shims resolve through the same registry.
  for (const AppKind kind : all_app_kinds()) {
    EXPECT_EQ(make_app(kind)->name(), app_kind_name(kind));
  }
}

TEST(AppFactory, FootprintsFitDeviceMemory) {
  // Every app must fit the 32 kB (16384-word) device data memory.
  for (const AppKind kind : all_app_kinds()) {
    const auto app = make_app(kind);
    EXPECT_LE(app->footprint_words(), mem::MemoryGeometry::kWords16)
        << app->name();
  }
}

TEST(AppRuns, DeterministicWithoutFaults) {
  for (const AppKind kind : all_app_kinds()) {
    const auto app = make_app(kind);
    auto sys1 = make_clean_system();
    auto sys2 = make_clean_system();
    const auto out1 = app->run(sys1, test_record());
    const auto out2 = app->run(sys2, test_record());
    EXPECT_EQ(out1, out2) << app->name();
    EXPECT_FALSE(out1.empty()) << app->name();
  }
}

TEST(AppRuns, CleanRunTracksIdealOutput) {
  // Fixed-point vs double-precision golden model: SNR must be high (only
  // quantization noise) for every app that has a float model.
  for (const AppKind kind : all_app_kinds()) {
    const auto app = make_app(kind);
    const auto ideal = app->ideal_output(test_record());
    if (!ideal.has_value()) continue;  // delineation
    auto sys = make_clean_system();
    const auto out = app->run(sys, test_record());
    ASSERT_EQ(out.size(), ideal->size()) << app->name();
    const double snr = metrics::snr_db(*ideal, out);
    if (kind == AppKind::kCompressedSensing) {
      // CS ideal is the float pipeline; the fixed-point compressor's
      // 2-LSB truncation on 11-bit-density codes plus OMP support
      // sensitivity put the clean-run tracking in the teens of dB.
      EXPECT_GT(snr, 12.0) << app->name();
    } else {
      EXPECT_GT(snr, 40.0) << app->name();
    }
  }
}

TEST(AppRuns, RecordTooShortThrows) {
  ecg::GeneratorConfig cfg;
  cfg.duration_s = 1.0;  // 250 samples, far below the 2048 window
  const ecg::Record tiny = ecg::generate_record(cfg);
  for (const AppKind kind : all_app_kinds()) {
    const auto app = make_app(kind);
    auto sys = make_clean_system();
    EXPECT_THROW((void)app->run(sys, tiny), std::invalid_argument)
        << app->name();
  }
}

TEST(AppRuns, MemoryAccessesAreCounted) {
  for (const AppKind kind : all_app_kinds()) {
    const auto app = make_app(kind);
    auto sys = make_clean_system();
    (void)app->run(sys, test_record());
    // Every app must at least write its input window and read it back.
    EXPECT_GE(sys.data().stats().writes, app->input_length()) << app->name();
    EXPECT_GE(sys.data().stats().reads, app->input_length()) << app->name();
  }
}

TEST(DwtApp, OutputLayoutHasEnergyInApproxBand) {
  DwtApp app;
  auto sys = make_clean_system();
  const auto out = app.run(sys, test_record());
  ASSERT_EQ(out.size(), 2048u);
  // Approx band (first n/16) should carry most of the signal energy for a
  // baseline-dominated ECG.
  double approx_e = 0.0;
  double total_e = 0.0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    total_e += out[i] * out[i];
    if (i < 128) approx_e += out[i] * out[i];
  }
  EXPECT_GT(approx_e / total_e, 0.5);
}

TEST(MatrixFilterApp, EnhancesHighFrequencyContent) {
  MatrixFilterApp app;
  auto sys = make_clean_system();
  const auto out = app.run(sys, test_record());
  const auto& in = test_record().samples;
  // The unsharp-mask operator boosts high-frequency content: total
  // variation must increase while the DC level is preserved (row sums 1).
  double tv_in = 0.0;
  double tv_out = 0.0;
  double mean_in = 0.0;
  double mean_out = 0.0;
  for (std::size_t i = 1; i < out.size(); ++i) {
    tv_in += std::fabs(static_cast<double>(in[i]) - in[i - 1]);
    tv_out += std::fabs(out[i] - out[i - 1]);
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    mean_in += static_cast<double>(in[i]);
    mean_out += out[i];
  }
  EXPECT_GT(tv_out, tv_in);
  EXPECT_NEAR(mean_out / static_cast<double>(out.size()),
              mean_in / static_cast<double>(out.size()), 30.0);
}

TEST(MatrixFilterApp, ErrorsAmplifyAcrossIterations) {
  // The paper's Fig. 2 mechanism: a single injected error in the input
  // block costs matrix filtering more SNR than it costs a point-wise app,
  // because every output depends on a full row+column and the iterated
  // enhancement amplifies the perturbation.
  const MatrixFilterApp app;
  auto clean_sys = make_clean_system();
  const auto clean = app.run(clean_sys, test_record());

  mem::FaultMap map(mem::MemoryGeometry::kWords16, 16);
  // One stuck-at-0 MSB-region cell inside the B buffer (after A's k*k
  // words). Stuck-at-0 guarantees corruption: baseline samples are
  // negative, so bit 12 is normally 1.
  const std::size_t addr = 32 * 32 + 100;
  map.edit(addr).mask = 1u << 12;
  map.edit(addr).value = 0;
  auto dirty_sys = make_clean_system();
  dirty_sys.attach_faults(&map);
  const auto dirty = app.run(dirty_sys, test_record());

  // The single cell fault must corrupt many outputs (fan-out): the banded
  // operator spreads the error further every iteration, although far-off
  // perturbations fall below one LSB and round away.
  std::size_t affected = 0;
  for (std::size_t i = 0; i < clean.size(); ++i) {
    if (clean[i] != dirty[i]) ++affected;
  }
  EXPECT_GT(affected, 8u);
}

TEST(MatrixFilterApp, RejectsBadBlocking) {
  MatrixFilterConfig cfg;
  cfg.k = 31;  // does not divide 2048
  EXPECT_THROW(MatrixFilterApp{cfg}, std::invalid_argument);
}

TEST(CsApp, CompressionRatioIsFiftyPercent) {
  const CsApp app;
  EXPECT_EQ(app.footprint_words(),
            app.input_length() + app.input_length() / 2);
}

TEST(CsApp, ReconstructionBeatsRequirementOnCleanRun) {
  const CsApp app;
  auto sys = make_clean_system();
  const auto out = app.run(sys, test_record());
  std::vector<double> original(app.input_length());
  for (std::size_t i = 0; i < original.size(); ++i) {
    original[i] = static_cast<double>(test_record().samples[i]);
  }
  // Lossy ceiling vs original: must be clinically meaningful (>15 dB).
  EXPECT_GT(metrics::snr_db(original, out), 15.0);
}

TEST(MorphFilterApp, RemovesBaselineWander) {
  // Feed a record with strong baseline wander; after morphological
  // correction the output mean must be near zero and drift suppressed.
  ecg::GeneratorConfig cfg;
  cfg.seed = 23;
  cfg.noise.baseline_wander_mv = 0.4;
  const ecg::Record rec = ecg::generate_record(cfg);

  MorphFilterApp app;
  auto sys = make_clean_system();
  const auto out = app.run(sys, rec);

  double mean_out = 0.0;
  for (const double v : out) mean_out += v;
  mean_out /= static_cast<double>(out.size());
  double mean_in = 0.0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    mean_in += static_cast<double>(rec.samples[i]);
  }
  mean_in /= static_cast<double>(out.size());
  EXPECT_LT(std::fabs(mean_out), std::fabs(mean_in) * 0.2 + 50.0);
}

TEST(DelineationApp, DetectsRPeaksOnCleanSignal) {
  DelineationApp app;
  auto sys = make_clean_system();
  const metrics::FiducialList detected = app.delineate(sys, test_record());

  metrics::FiducialList truth_r;
  for (const auto& f : test_record().truth) {
    if (f.type == metrics::FiducialType::kR &&
        f.position < static_cast<std::int32_t>(app.input_length())) {
      truth_r.push_back(f);
    }
  }
  metrics::FiducialList detected_r;
  for (const auto& f : detected) {
    if (f.type == metrics::FiducialType::kR) detected_r.push_back(f);
  }
  const metrics::MatchScore score =
      metrics::match_fiducials(truth_r, detected_r, 12);
  EXPECT_GE(score.sensitivity(), 0.85);
  EXPECT_GE(score.ppv(), 0.85);
}

TEST(DelineationApp, FindsAllFiveWaveTypes) {
  DelineationApp app;
  auto sys = make_clean_system();
  const metrics::FiducialList detected = app.delineate(sys, test_record());
  std::array<int, 5> counts{};
  for (const auto& f : detected) {
    ++counts[static_cast<std::size_t>(f.type)];
  }
  for (int c : counts) EXPECT_GT(c, 0);
}

class AppEmtMatrix
    : public ::testing::TestWithParam<std::tuple<AppKind, core::EmtKind>> {};

TEST_P(AppEmtMatrix, CleanRunIdenticalUnderEveryEmt) {
  // Without faults, every EMT must be transparent: the output under DREAM
  // or ECC must match the unprotected output bit for bit.
  const auto [app_kind, emt_kind] = GetParam();
  const auto app = make_app(app_kind);

  auto baseline_sys = make_clean_system();
  const auto baseline = app->run(baseline_sys, test_record());

  const auto emt = core::make_emt(emt_kind);
  core::MemorySystem sys(*emt);
  const auto out = app->run(sys, test_record());
  EXPECT_EQ(out, baseline);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, AppEmtMatrix,
    ::testing::Combine(
        ::testing::Values(AppKind::kDwt, AppKind::kMatrixFilter,
                          AppKind::kCompressedSensing, AppKind::kMorphFilter,
                          AppKind::kDelineation),
        ::testing::Values(core::EmtKind::kNone, core::EmtKind::kDream,
                          core::EmtKind::kEccSecDed)));

}  // namespace
}  // namespace ulpdream::apps
