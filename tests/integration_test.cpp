// End-to-end integration tests: cross-module behaviour that mirrors the
// paper's headline claims, run at reduced Monte-Carlo depth so the suite
// stays fast while still exercising the full pipeline.

#include <gtest/gtest.h>

#include "ulpdream/apps/app.hpp"
#include "ulpdream/apps/dwt_app.hpp"
#include "ulpdream/ecg/database.hpp"
#include "ulpdream/sim/policy_explorer.hpp"
#include "ulpdream/sim/runner.hpp"
#include "ulpdream/sim/voltage_sweep.hpp"

namespace ulpdream {
namespace {

const ecg::Record& record() {
  static const ecg::Record rec = ecg::make_default_record(2016);
  return rec;
}

sim::SweepConfig fast_cfg() {
  sim::SweepConfig cfg;
  cfg.voltages = {0.5, 0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9};
  cfg.runs = 8;
  cfg.seed = 7;
  return cfg;
}

TEST(Integration, ProtectionHelpsAtMidVoltages) {
  // Fig. 4 headline: in the 0.6-0.7 V band both EMTs massively outperform
  // no protection.
  sim::ExperimentRunner runner;
  const apps::DwtApp app;
  const sim::SweepResult res =
      sim::run_voltage_sweep(runner, app, record(), fast_cfg());
  for (const double v : {0.6, 0.65, 0.7}) {
    const double none = res.find("none", v)->snr_mean_db;
    const double dream = res.find("dream", v)->snr_mean_db;
    const double ecc = res.find("ecc_secded", v)->snr_mean_db;
    EXPECT_GT(dream, none + 3.0) << "v=" << v;
    EXPECT_GT(ecc, none + 3.0) << "v=" << v;
  }
}

TEST(Integration, EccWinsMidRangeDreamWinsDeep) {
  // Paper Sec. VI-A: ECC slightly better in 0.55-0.65 V; below 0.55 V it
  // detects-but-not-corrects multi-bit words while DREAM keeps fixing
  // MSB runs. At the deepest point DREAM must not lose to ECC.
  sim::ExperimentRunner runner;
  const apps::DwtApp app;
  sim::SweepConfig cfg = fast_cfg();
  cfg.runs = 16;
  const sim::SweepResult res =
      sim::run_voltage_sweep(runner, app, record(), cfg);
  const double dream_050 = res.find("dream", 0.5)->snr_mean_db;
  const double ecc_050 =
      res.find("ecc_secded", 0.5)->snr_mean_db;
  EXPECT_GE(dream_050, ecc_050 - 1.0);

  const double dream_065 = res.find("dream", 0.65)->snr_mean_db;
  const double ecc_065 =
      res.find("ecc_secded", 0.65)->snr_mean_db;
  // Mid-range: ECC at least competitive (corrects any single-bit error,
  // DREAM only sign-run errors).
  EXPECT_GE(ecc_065, dream_065 - 3.0);
}

TEST(Integration, EnergyOverheadHeadline) {
  // Sec. VI-B: ~55% (ECC) vs ~34% (DREAM) average energy overhead — the
  // 21% headline saving. Reproduced on a real application access trace.
  sim::ExperimentRunner runner;
  const apps::DwtApp app;
  sim::SweepConfig cfg = fast_cfg();
  cfg.runs = 2;
  const sim::SweepResult res =
      sim::run_voltage_sweep(runner, app, record(), cfg);
  double sum_none = 0.0;
  double sum_dream = 0.0;
  double sum_ecc = 0.0;
  for (const double v : cfg.voltages) {
    sum_none += res.find("none", v)->energy_mean_j;
    sum_dream += res.find("dream", v)->energy_mean_j;
    sum_ecc += res.find("ecc_secded", v)->energy_mean_j;
  }
  const double dream_overhead = sum_dream / sum_none - 1.0;
  const double ecc_overhead = sum_ecc / sum_none - 1.0;
  EXPECT_NEAR(dream_overhead, 0.34, 0.08);
  EXPECT_NEAR(ecc_overhead, 0.55, 0.10);
  EXPECT_GT(ecc_overhead - dream_overhead, 0.10);
}

TEST(Integration, PolicySavingsOrdering) {
  // Sec. VI-C: under the clinical quality requirement, protection unlocks
  // deeper voltages whose net savings beat unprotected operation even
  // after paying the EMT overhead.
  sim::ExperimentRunner runner;
  const apps::DwtApp app;
  sim::SweepConfig cfg = fast_cfg();
  cfg.runs = 12;
  const sim::SweepResult sweep =
      sim::run_voltage_sweep(runner, app, record(), cfg);
  const sim::PolicyResult policy =
      sim::explore_policy(sweep, 40.0, sim::QualityCriterion::kAbsoluteSnr,
                          sim::QualityStatistic::kP10);

  double s_none = -1.0;
  double s_dream = -1.0;
  double s_ecc = -1.0;
  double v_none = 1.0;
  double v_dream = 1.0;
  double v_ecc = 1.0;
  for (const auto& p : policy.points) {
    if (!p.feasible) continue;
    if (p.emt == "none") {
      s_none = p.savings_vs_nominal_frac;
      v_none = p.min_safe_voltage;
    }
    if (p.emt == "dream") {
      s_dream = p.savings_vs_nominal_frac;
      v_dream = p.min_safe_voltage;
    }
    if (p.emt == "ecc_secded") {
      s_ecc = p.savings_vs_nominal_frac;
      v_ecc = p.min_safe_voltage;
    }
  }
  // All EMTs feasible with positive savings; protected techniques reach
  // strictly deeper voltages (the paper's triggering-range structure).
  EXPECT_GT(s_none, 0.0);
  EXPECT_GT(s_dream, 0.0);
  EXPECT_GT(s_ecc, 0.0);
  EXPECT_LT(v_dream, v_none);
  EXPECT_LE(v_ecc, v_dream);
}

TEST(Integration, SameFaultMapFairness) {
  // Sec. V protocol: the same fault map must be reusable across EMTs; the
  // run under "none" and under "dream" with an empty map are identical.
  sim::ExperimentRunner runner;
  const apps::DwtApp app;
  util::Xoshiro256 rng(55);
  const mem::FaultMap map = mem::FaultMap::random(
      mem::MemoryGeometry::kWords16, 22, 1e-4, rng);
  const sim::RunResult a =
      runner.run_once(app, record(), "none", &map, 0.7);
  const sim::RunResult b =
      runner.run_once(app, record(), "none", &map, 0.7);
  EXPECT_DOUBLE_EQ(a.snr_db, b.snr_db);  // deterministic replay
}

TEST(Integration, AdaptivePolicySelectsConfiguredEmt) {
  // The derived policy must reproduce the paper's triggering scheme on a
  // voltage trajectory sweeping 0.9 -> 0.55 V.
  const core::AdaptivePolicy policy = core::AdaptivePolicy::paper_dwt_policy();
  int none_count = 0;
  int dream_count = 0;
  int ecc_count = 0;
  for (double v = 0.9; v >= 0.55; v -= 0.01) {
    const std::string& emt = policy.select(v);
    if (emt == "none") ++none_count;
    if (emt == "dream") ++dream_count;
    if (emt == "ecc_secded") ++ecc_count;
  }
  EXPECT_GT(none_count, 0);
  EXPECT_GT(dream_count, 0);
  EXPECT_GT(ecc_count, 0);
  EXPECT_GT(dream_count, none_count);  // DREAM covers the widest band
}

TEST(Integration, AllAppsSurviveDeepVoltageWithDream) {
  // Robustness: every application completes and yields a finite SNR under
  // heavy fault injection (0.5 V) with DREAM.
  sim::ExperimentRunner runner;
  util::Xoshiro256 rng(66);
  const mem::FaultMap map = mem::FaultMap::random(
      mem::MemoryGeometry::kWords16, 22, 2e-2, rng);
  for (const std::string& name : apps::paper_app_names()) {
    const auto app = apps::make_app(name);
    const sim::RunResult r =
        runner.run_once(*app, record(), "dream", &map, 0.5);
    EXPECT_TRUE(std::isfinite(r.snr_db)) << app->name();
    EXPECT_GT(r.energy.total_j(), 0.0) << app->name();
  }
}

}  // namespace
}  // namespace ulpdream
