#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "ulpdream/ecg/database.hpp"
#include "ulpdream/ecg/record_io.hpp"

namespace ulpdream::ecg {
namespace {

class RecordIoTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const auto& p : paths_) std::remove(p.c_str());
  }
  std::string temp_path(const std::string& stem) {
    const std::string p = testing::TempDir() + stem;
    paths_.push_back(p);
    return p;
  }
  std::vector<std::string> paths_;
};

TEST_F(RecordIoTest, SaveLoadRoundTrip) {
  const Record rec = make_default_record(3);
  const std::string path = temp_path("roundtrip.csv");
  ASSERT_TRUE(save_record_csv(rec, path));
  const Record back = load_record_csv(path, rec.fs_hz, "back");
  ASSERT_EQ(back.samples.size(), rec.samples.size());
  EXPECT_EQ(back.samples, rec.samples);
  EXPECT_EQ(back.name, "back");
  EXPECT_DOUBLE_EQ(back.fs_hz, rec.fs_hz);
}

TEST_F(RecordIoTest, LoadsBareValueFormat) {
  const std::string path = temp_path("bare.csv");
  {
    std::ofstream f(path);
    f << "# comment line\n100\n-200\n300\n";
  }
  const Record rec = load_record_csv(path);
  ASSERT_EQ(rec.samples.size(), 3u);
  EXPECT_EQ(rec.samples[0], 100);
  EXPECT_EQ(rec.samples[1], -200);
  EXPECT_EQ(rec.samples[2], 300);
}

TEST_F(RecordIoTest, SkipsHeaderRow) {
  const std::string path = temp_path("hdr.csv");
  {
    std::ofstream f(path);
    f << "index,value\n0,42\n1,-7\n";
  }
  const Record rec = load_record_csv(path);
  ASSERT_EQ(rec.samples.size(), 2u);
  EXPECT_EQ(rec.samples[0], 42);
  EXPECT_EQ(rec.samples[1], -7);
}

TEST_F(RecordIoTest, ClampsOutOfRangeValues) {
  const std::string path = temp_path("clamp.csv");
  {
    std::ofstream f(path);
    f << "99999\n-99999\n";
  }
  const Record rec = load_record_csv(path);
  EXPECT_EQ(rec.samples[0], fixed::kSampleMax);
  EXPECT_EQ(rec.samples[1], fixed::kSampleMin);
}

TEST_F(RecordIoTest, MissingFileThrows) {
  EXPECT_THROW((void)load_record_csv("/nonexistent/nope.csv"),
               std::runtime_error);
}

TEST_F(RecordIoTest, EmptyFileThrows) {
  const std::string path = temp_path("empty.csv");
  { std::ofstream f(path); }
  EXPECT_THROW((void)load_record_csv(path), std::runtime_error);
}

TEST_F(RecordIoTest, WaveformMvPopulatedOnLoad) {
  const std::string path = temp_path("mv.csv");
  {
    std::ofstream f(path);
    f << "16384\n";
  }
  const Record rec = load_record_csv(path);
  ASSERT_EQ(rec.waveform_mv.size(), 1u);
  EXPECT_GT(rec.waveform_mv[0], 0.0);
}

}  // namespace
}  // namespace ulpdream::ecg
