#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "ulpdream/mem/ber_model.hpp"
#include "ulpdream/mem/fault_map.hpp"
#include "ulpdream/mem/memory.hpp"
#include "ulpdream/util/rng.hpp"

namespace ulpdream::mem {
namespace {

TEST(BerModel, LogLinearCalibrationPoints) {
  const LogLinearBerModel model;
  EXPECT_NEAR(model.ber(0.9), 5e-8, 5e-9);
  EXPECT_NEAR(model.ber(0.5), 2e-2, 1e-3);
}

TEST(BerModel, LogLinearMonotoneDecreasing) {
  const LogLinearBerModel model;
  double prev = 1.0;
  for (double v = 0.5; v <= 0.9 + 1e-9; v += 0.05) {
    const double b = model.ber(v);
    EXPECT_LT(b, prev);
    prev = b;
  }
}

TEST(BerModel, ProbitMonotoneAndBounded) {
  const ProbitBerModel model;
  double prev = 1.0;
  for (double v = 0.4; v <= 1.0; v += 0.05) {
    const double b = model.ber(v);
    EXPECT_GE(b, 0.0);
    EXPECT_LE(b, 1.0);
    EXPECT_LE(b, prev + 1e-15);
    prev = b;
  }
}

TEST(BerModel, ProbitHalfAtV50) {
  const ProbitBerModel model(0.42, 0.04);
  EXPECT_NEAR(model.ber(0.42), 0.5, 1e-12);
}

TEST(BerModel, FactoryProducesBothKinds) {
  EXPECT_EQ(make_ber_model(BerModelKind::kLogLinear)->name(), "log-linear");
  EXPECT_EQ(make_ber_model(BerModelKind::kProbit)->name(), "probit");
}

TEST(BerModel, RejectsBadParameters) {
  EXPECT_THROW(LogLinearBerModel(0.0, 0.1), std::invalid_argument);
  EXPECT_THROW(LogLinearBerModel(1e-9, 2e-2, 0.5, 0.9),
               std::invalid_argument);
  EXPECT_THROW(ProbitBerModel(0.4, 0.0), std::invalid_argument);
}

TEST(FaultMap, ApplyForcesStuckBits) {
  WordFaults wf;
  wf.mask = 0b1010;
  wf.value = 0b1000;  // bit3 stuck at 1, bit1 stuck at 0
  EXPECT_EQ(wf.apply(0b0000), 0b1000u);
  EXPECT_EQ(wf.apply(0b1111), 0b1101u);
  EXPECT_EQ(wf.apply(0b0101), 0b1101u);
}

TEST(FaultMap, RandomFaultCountTracksBer) {
  util::Xoshiro256 rng(9);
  const std::size_t words = 4096;
  const int bits = 22;
  const double ber = 1e-3;
  util::Xoshiro256 gen_rng(10);
  double total = 0.0;
  const int reps = 20;
  for (int i = 0; i < reps; ++i) {
    const FaultMap map = FaultMap::random(words, bits, ber, gen_rng);
    total += static_cast<double>(map.fault_count());
  }
  const double expected = static_cast<double>(words) * bits * ber;
  EXPECT_NEAR(total / reps / expected, 1.0, 0.15);
  (void)rng;
}

TEST(FaultMap, RandomZeroBerIsClean) {
  util::Xoshiro256 rng(1);
  const FaultMap map = FaultMap::random(100, 16, 0.0, rng);
  EXPECT_EQ(map.fault_count(), 0u);
}

TEST(FaultMap, StuckBitCoversEveryWord) {
  const FaultMap map = FaultMap::stuck_bit(64, 16, 7, true);
  EXPECT_EQ(map.fault_count(), 64u);
  for (std::size_t w = 0; w < 64; ++w) {
    EXPECT_EQ(map.at(w).mask, 1u << 7);
    EXPECT_EQ(map.at(w).value, 1u << 7);
  }
}

TEST(FaultMap, StuckBitRejectsOutOfRange) {
  EXPECT_THROW(FaultMap::stuck_bit(8, 16, 16, false), std::invalid_argument);
  EXPECT_THROW(FaultMap::stuck_bit(8, 16, -1, false), std::invalid_argument);
}

TEST(FaultMap, WordsWithAtLeastCountsMultiBit) {
  FaultMap map(4, 16);
  map.edit(0).mask = 0b11;
  map.edit(1).mask = 0b1;
  EXPECT_EQ(map.words_with_at_least(1), 2u);
  EXPECT_EQ(map.words_with_at_least(2), 1u);
  EXPECT_EQ(map.words_with_at_least(3), 0u);
}

TEST(FaultMap, ConcurrentReadersNeverGrowTheMap) {
  // The const read path (lookup/chunk_clean) must be insertion-free: with
  // the mutable accessor split off as edit(), concurrent block readers
  // share one map with no synchronization. Hammer the full read surface
  // from several threads — the same calls FaultyMemory::read_block makes —
  // and pin that every reader sees the exact pre-snapshot answers and the
  // map's shape is untouched afterwards. The const path touches only
  // immutable state, so the sanitizer preset stays clean.
  constexpr std::size_t kWords = 2048;
  util::Xoshiro256 rng(2016);
  const FaultMap map = FaultMap::random(kWords, 16, 1e-3, rng);
  const std::size_t entries_before = map.entry_count();
  const std::size_t faults_before = map.fault_count();
  ASSERT_GT(entries_before, 0u);

  // Serial snapshot of everything a reader can observe.
  std::vector<WordFaults> reference(kWords);
  for (std::size_t w = 0; w < kWords; ++w) {
    if (const WordFaults* f = map.lookup(w)) reference[w] = *f;
  }

  constexpr int kThreads = 4;
  std::atomic<int> mismatches{0};
  {
    std::vector<std::thread> readers;
    readers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      readers.emplace_back([&map, &reference, &mismatches, t] {
        // Stride per thread so the access interleavings differ.
        const std::size_t stride = 1 + static_cast<std::size_t>(t);
        for (int rep = 0; rep < 50; ++rep) {
          for (std::size_t w = 0; w < kWords; ++w) {
            const std::size_t word = (w * stride) % kWords;
            WordFaults seen;
            if (const WordFaults* f = map.lookup(word)) seen = *f;
            const bool clean =
                map.chunk_clean(word / FaultMap::kChunkWords);
            if (seen.mask != reference[word].mask ||
                seen.value != reference[word].value ||
                (clean && seen.mask != 0)) {
              mismatches.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      });
    }
    for (auto& th : readers) th.join();
  }
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(map.entry_count(), entries_before);
  EXPECT_EQ(map.fault_count(), faults_before);
}

TEST(FaultyMemory, CleanReadBackAfterWrite) {
  FaultyMemory mem(128, 16);
  mem.write(5, 0xBEEF);
  EXPECT_EQ(mem.read(5), 0xBEEFu);
}

TEST(FaultyMemory, WidthMaskApplied) {
  FaultyMemory mem(16, 16);
  mem.write(0, 0xFFFFFFFF);
  EXPECT_EQ(mem.read(0), 0xFFFFu);
}

TEST(FaultyMemory, StuckBitsCorruptReads) {
  FaultyMemory mem(16, 16);
  const FaultMap map = FaultMap::stuck_bit(16, 16, 3, true);
  mem.attach_faults(&map);
  mem.write(2, 0x0000);
  EXPECT_EQ(mem.read(2), 0x0008u);
  mem.write(2, 0xFFF7);
  EXPECT_EQ(mem.read(2), 0xFFFFu);
}

TEST(FaultyMemory, FaultMapMustCoverMemory) {
  FaultyMemory mem(128, 22);
  const FaultMap small_map(64, 22);
  EXPECT_THROW(mem.attach_faults(&small_map), std::invalid_argument);
  const FaultMap narrow_map(128, 16);
  EXPECT_THROW(mem.attach_faults(&narrow_map), std::invalid_argument);
}

TEST(FaultyMemory, AccessCountersTrackReadsWrites) {
  FaultyMemory mem(64, 16, 4);
  mem.write(0, 1);
  mem.write(1, 2);
  (void)mem.read(0);
  EXPECT_EQ(mem.stats().writes, 2u);
  EXPECT_EQ(mem.stats().reads, 1u);
  EXPECT_EQ(mem.stats().total(), 3u);
  mem.reset_stats();
  EXPECT_EQ(mem.stats().total(), 0u);
}

TEST(FaultyMemory, BankCountersPartitionAccesses) {
  FaultyMemory mem(64, 16, 4);
  for (std::size_t i = 0; i < 16; ++i) mem.write(i, 0);
  std::uint64_t total = 0;
  for (int b = 0; b < 4; ++b) {
    total += mem.stats().bank_writes[static_cast<std::size_t>(b)];
    EXPECT_EQ(mem.stats().bank_writes[static_cast<std::size_t>(b)], 4u);
  }
  EXPECT_EQ(total, 16u);
}

TEST(FaultyMemory, ScramblerPreservesReadWriteConsistency) {
  FaultyMemory mem(256, 16);
  mem.set_scrambler(77);
  for (std::size_t i = 0; i < 256; ++i) {
    mem.write(i, static_cast<std::uint32_t>(i * 3));
  }
  for (std::size_t i = 0; i < 256; ++i) {
    EXPECT_EQ(mem.read(i), static_cast<std::uint32_t>(i * 3) & 0xFFFFu);
  }
}

TEST(FaultyMemory, ScramblerMovesFaultExposure) {
  // With scrambling, a fault pinned to physical word 0 hits a different
  // logical address than without scrambling.
  FaultMap map(64, 16);
  map.edit(0).mask = 0xFFFF;
  map.edit(0).value = 0xAAAA;

  FaultyMemory plain(64, 16);
  plain.attach_faults(&map);
  plain.write(0, 0x1111);
  EXPECT_EQ(plain.read(0), 0xAAAAu);

  FaultyMemory scrambled(64, 16);
  scrambled.set_scrambler(123);
  scrambled.attach_faults(&map);
  scrambled.write(0, 0x1111);
  // Logical 0 now maps elsewhere; find which logical address is corrupted.
  std::size_t corrupted = 64;
  for (std::size_t i = 0; i < 64; ++i) {
    scrambled.write(i, 0x1111);
    if (scrambled.read(i) == 0xAAAAu) corrupted = i;
  }
  EXPECT_NE(corrupted, 0u);
  EXPECT_LT(corrupted, 64u);
}

TEST(FaultyMemory, RejectsBadGeometry) {
  EXPECT_THROW(FaultyMemory(16, 0), std::invalid_argument);
  EXPECT_THROW(FaultyMemory(16, 33), std::invalid_argument);
  EXPECT_THROW(FaultyMemory(16, 16, 0), std::invalid_argument);
}

TEST(SafeMemory, RoundTripAndMask) {
  SafeMemory mem(32, 5);
  mem.write(3, 0b11111111);
  EXPECT_EQ(mem.read(3), 0b11111u);  // masked to 5 bits
  EXPECT_EQ(mem.stats().writes, 1u);
  EXPECT_EQ(mem.stats().reads, 1u);
}

TEST(SafeMemory, RejectsWideWords) {
  EXPECT_THROW(SafeMemory(16, 17), std::invalid_argument);
}

TEST(Geometry, PaperConstants) {
  EXPECT_EQ(MemoryGeometry::kBytes, 32u * 1024u);
  EXPECT_EQ(MemoryGeometry::kWords16, 16384u);
  EXPECT_EQ(MemoryGeometry::kBanks, 16);
  EXPECT_DOUBLE_EQ(MemoryGeometry::kClockHz, 200e6);
}

class BerSweep : public ::testing::TestWithParam<double> {};

TEST_P(BerSweep, FaultDensityMatchesRequestedBer) {
  const double ber = GetParam();
  util::Xoshiro256 rng(static_cast<std::uint64_t>(ber * 1e9) + 1);
  const std::size_t words = 16384;
  const int bits = 22;
  const FaultMap map = FaultMap::random(words, bits, ber, rng);
  const double cells = static_cast<double>(words) * bits;
  const double measured = static_cast<double>(map.fault_count()) / cells;
  // Single map: allow generous statistical tolerance at low BER.
  if (ber >= 1e-4) {
    EXPECT_NEAR(measured / ber, 1.0, 0.25);
  } else {
    EXPECT_LE(measured, ber * 10 + 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(BerRange, BerSweep,
                         ::testing::Values(1e-6, 1e-5, 1e-4, 1e-3, 1e-2,
                                           2e-2));

}  // namespace
}  // namespace ulpdream::mem
