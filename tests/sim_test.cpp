#include <gtest/gtest.h>

#include "ulpdream/apps/dwt_app.hpp"
#include "ulpdream/metrics/quality.hpp"
#include "ulpdream/ecg/database.hpp"
#include "ulpdream/sim/bit_significance.hpp"
#include "ulpdream/sim/policy_explorer.hpp"
#include "ulpdream/sim/runner.hpp"
#include "ulpdream/sim/voltage_sweep.hpp"

namespace ulpdream::sim {
namespace {

const ecg::Record& test_record() {
  static const ecg::Record rec = ecg::make_default_record(29);
  return rec;
}

TEST(Runner, CleanRunHitsMaxSnr) {
  ExperimentRunner runner;
  const apps::DwtApp app;
  const RunResult clean = runner.run_once(
      app, test_record(), core::EmtKind::kNone, nullptr, 0.9);
  EXPECT_NEAR(clean.snr_db, runner.max_snr_db(app, test_record()), 1e-9);
  EXPECT_GT(clean.snr_db, 40.0);  // quantization-limited, finite
  EXPECT_LT(clean.snr_db, metrics::kSnrCeilingDb);
}

TEST(Runner, FaultsReduceSnr) {
  ExperimentRunner runner;
  const apps::DwtApp app;
  const mem::FaultMap map = mem::FaultMap::stuck_bit(
      mem::MemoryGeometry::kWords16, 16, 14, true);
  const RunResult dirty =
      runner.run_once(app, test_record(), core::EmtKind::kNone, &map, 0.9);
  EXPECT_LT(dirty.snr_db, runner.max_snr_db(app, test_record()) - 10.0);
}

TEST(Runner, EnergyAndAccessesPopulated) {
  ExperimentRunner runner;
  const apps::DwtApp app;
  const RunResult r = runner.run_once(app, test_record(),
                                      core::EmtKind::kDream, nullptr, 0.7);
  EXPECT_GT(r.data_accesses, 0u);
  EXPECT_GT(r.side_accesses, 0u);
  EXPECT_EQ(r.cycles, 2 * r.data_accesses);
  EXPECT_GT(r.energy.total_j(), 0.0);
}

TEST(Runner, DreamCorrectsStuckMsbFault) {
  ExperimentRunner runner;
  const apps::DwtApp app;
  const mem::FaultMap map = mem::FaultMap::stuck_bit(
      mem::MemoryGeometry::kWords16, 16, 14, true);
  const RunResult none_r =
      runner.run_once(app, test_record(), core::EmtKind::kNone, &map, 0.9);
  const RunResult dream_r =
      runner.run_once(app, test_record(), core::EmtKind::kDream, &map, 0.9);
  EXPECT_GT(dream_r.snr_db, none_r.snr_db + 20.0);
  EXPECT_GT(dream_r.counters.corrected_words, 0u);
}

TEST(BitSignificance, MsbErrorsHurtMore) {
  ExperimentRunner runner;
  const apps::DwtApp app;
  const std::vector<ecg::Record> records = {test_record()};
  const BitSignificanceResult res =
      run_bit_significance(runner, app, records);
  // Paper Fig. 2: SNR decreases continuously toward the MSBs. Check the
  // broad ordering LSB >> mid >> MSB for both polarities.
  for (int pol = 0; pol < 2; ++pol) {
    const auto& snr = res.snr_db[static_cast<std::size_t>(pol)];
    EXPECT_GT(snr[0], snr[8]);
    EXPECT_GT(snr[8], snr[14]);
    EXPECT_GT(snr[0], 30.0);
  }
  EXPECT_GT(res.max_snr_db, 40.0);
}

TEST(BitSignificance, StuckAtOneMilderOnMsbs) {
  // Negative-dominated samples hide stuck-at-1 MSB faults (paper Sec. III).
  ExperimentRunner runner;
  const apps::DwtApp app;
  const std::vector<ecg::Record> records = {test_record()};
  const BitSignificanceResult res =
      run_bit_significance(runner, app, records);
  EXPECT_GT(res.snr_db[1][14], res.snr_db[0][14]);
}

SweepConfig tiny_sweep() {
  SweepConfig cfg;
  cfg.voltages = {0.5, 0.7, 0.9};
  cfg.runs = 4;
  cfg.emts = core::paper_emt_names();
  return cfg;
}

TEST(VoltageSweep, ProducesAllPoints) {
  ExperimentRunner runner;
  const apps::DwtApp app;
  const SweepResult res =
      run_voltage_sweep(runner, app, test_record(), tiny_sweep());
  EXPECT_EQ(res.points.size(), 3u * 3u);
  EXPECT_NE(res.find("dream", 0.7), nullptr);
  EXPECT_EQ(res.find("dream", 0.62), nullptr);
}

TEST(VoltageSweep, SnrDegradesAsVoltageDrops) {
  ExperimentRunner runner;
  const apps::DwtApp app;
  const SweepResult res =
      run_voltage_sweep(runner, app, test_record(), tiny_sweep());
  for (const std::string& emt : core::paper_emt_names()) {
    const SweepPoint* hi = res.find(emt, 0.9);
    const SweepPoint* lo = res.find(emt, 0.5);
    ASSERT_NE(hi, nullptr);
    ASSERT_NE(lo, nullptr);
    EXPECT_GT(hi->snr_mean_db, lo->snr_mean_db);
  }
}

TEST(VoltageSweep, NominalVoltageIsErrorFree) {
  ExperimentRunner runner;
  const apps::DwtApp app;
  const SweepResult res =
      run_voltage_sweep(runner, app, test_record(), tiny_sweep());
  const SweepPoint* p = res.find("none", 0.9);
  ASSERT_NE(p, nullptr);
  // BER(0.9) = 1e-9 on ~360k cells: fault-free with overwhelming
  // probability, so mean SNR equals the max-SNR dashed line.
  EXPECT_NEAR(p->snr_mean_db, res.max_snr_db, 0.5);
}

TEST(VoltageSweep, EnergyOrderingNoneDreamEcc) {
  ExperimentRunner runner;
  const apps::DwtApp app;
  const SweepResult res =
      run_voltage_sweep(runner, app, test_record(), tiny_sweep());
  for (const double v : {0.5, 0.7, 0.9}) {
    const double e_none = res.find("none", v)->energy_mean_j;
    const double e_dream = res.find("dream", v)->energy_mean_j;
    const double e_ecc = res.find("ecc_secded", v)->energy_mean_j;
    EXPECT_LT(e_none, e_dream);
    EXPECT_LT(e_dream, e_ecc);
  }
}

TEST(VoltageSweep, MultiAppSharesConfig) {
  ExperimentRunner runner;
  const apps::DwtApp dwt;
  const auto morph = apps::make_app("morph_filter");
  const std::vector<const apps::BioApp*> list = {&dwt, morph.get()};
  const auto results =
      run_voltage_sweep_multi(runner, list, test_record(), tiny_sweep());
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].points.front().app, "dwt");
  EXPECT_EQ(results[1].points.front().app, "morph_filter");
}

TEST(PolicyExplorer, DerivesFeasiblePolicy) {
  ExperimentRunner runner;
  const apps::DwtApp app;
  SweepConfig cfg;
  cfg.voltages = {0.5, 0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9};
  cfg.runs = 12;
  const SweepResult sweep =
      run_voltage_sweep(runner, app, test_record(), cfg);

  // Relative criterion (the paper's -1 dB form): sanity of the structure.
  const PolicyResult relative = explore_policy(sweep, 1.0);
  EXPECT_GT(relative.nominal_energy_j, 0.0);
  ASSERT_EQ(relative.points.size(), 3u);
  for (const auto& p : relative.points) {
    EXPECT_TRUE(p.feasible) << p.emt;
    EXPECT_LE(p.min_safe_voltage, 0.9);
  }
  const auto find = [](const PolicyResult& res, const std::string& k) {
    for (const auto& p : res.points) {
      if (p.emt == k) return p;
    }
    return EmtOperatingPoint{};
  };
  // Protected techniques reach at least as deep as no protection.
  EXPECT_LE(find(relative, "dream").min_safe_voltage,
            find(relative, "none").min_safe_voltage);

  // Absolute clinical criterion (40 dB on the P10 reliability statistic):
  // protection must unlock deeper floors AND larger net savings despite
  // its energy overhead.
  const PolicyResult absolute =
      explore_policy(sweep, 40.0, QualityCriterion::kAbsoluteSnr,
                     QualityStatistic::kP10);
  EXPECT_DOUBLE_EQ(absolute.required_snr_db, 40.0);
  // Protection unlocks deeper voltage floors than unprotected operation
  // (paper Sec. VI-C range structure), with positive net savings.
  EXPECT_LT(find(absolute, "dream").min_safe_voltage,
            find(absolute, "none").min_safe_voltage);
  EXPECT_LE(find(absolute, "ecc_secded").min_safe_voltage,
            find(absolute, "dream").min_safe_voltage);
  EXPECT_GT(find(absolute, "dream").savings_vs_nominal_frac, 0.0);
  EXPECT_GT(find(absolute, "ecc_secded").savings_vs_nominal_frac, 0.0);
}

TEST(PolicyExplorer, RequiresNominalPoint) {
  SweepResult empty;
  empty.config.voltages = {0.5};
  empty.config.emts = core::paper_emt_names();
  EXPECT_THROW(explore_policy(empty, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace ulpdream::sim
