// The query daemon's contract, pinned deterministically: a daemon
// answering over its real socket protocol must hand every client bytes
// identical to a single-process save_columnar of the queried grid —
// whether it computed them cold, gap-filled them from an overlapping
// cached store, served them straight from the cache, or rehydrated that
// cache after a restart. The cache tests pin the LRU byte budget, the
// restart rehydration and the quarantine discipline (a corrupt or
// foreign cache file is renamed aside with a typed error naming the
// path — never a crash). Daemon tests run over Unix sockets in a
// scratch directory: real frames, real threads, no sleeps for
// correctness (only the progress cadence, which is what's under test
// where it appears).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ulpdream/campaign/columnar.hpp"
#include "ulpdream/campaign/session.hpp"
#include "ulpdream/campaign/spec.hpp"
#include "ulpdream/energy/energy_model.hpp"
#include "ulpdream/serve/cache.hpp"
#include "ulpdream/serve/client.hpp"
#include "ulpdream/serve/daemon.hpp"
#include "ulpdream/serve/protocol.hpp"
#include "ulpdream/util/socket.hpp"

namespace ulpdream::serve {
namespace {

namespace fs = std::filesystem;
using campaign::CampaignSpec;
using campaign::RecordAxis;
using util::Frame;
using util::Socket;

/// Small, fast grid. `records` scales the outermost axis — the one the
/// gap-fill overlap rides on.
CampaignSpec small_spec(std::uint64_t seed, std::size_t records = 1) {
  CampaignSpec spec;
  spec.apps = {"dwt"};
  spec.emts = {"none", "dream"};
  spec.voltages = {0.7, 0.8};
  for (std::size_t i = 0; i < records; ++i) {
    spec.records.push_back(
        RecordAxis{ecg::Pathology::kNormalSinus, 1.0 + double(i), 7});
  }
  spec.repetitions = 2;
  spec.seed = seed;
  return spec.normalized();
}

std::string slurp(const fs::path& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is) << "cannot open " << path;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

std::string as_text(const std::vector<std::uint8_t>& bytes) {
  return std::string(bytes.begin(), bytes.end());
}

/// Fresh scratch directory per test (cache dir + socket + outputs).
fs::path scratch(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("ulpd_serve_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// The single-process reference: one Session, whole grid, save_columnar.
std::string reference_columnar_bytes(const CampaignSpec& spec,
                                     const fs::path& dir) {
  campaign::Session session(energy::SystemEnergyModel(), 2);
  const campaign::ResultStore store = session.submit(spec).take();
  const fs::path path = dir / "reference.ulpdcol";
  store.save_columnar(path.string());
  return slurp(path);
}

/// Executes a grid on a private session — the cache tests' store maker.
campaign::ResultStore run_grid(const CampaignSpec& spec) {
  campaign::Session session(energy::SystemEnergyModel(), 2);
  return session.submit(spec).take();
}

/// A live daemon on a Unix socket, with run() on a background thread and
/// a joining stop in the destructor — every daemon test's harness.
class DaemonFixture {
 public:
  explicit DaemonFixture(const fs::path& dir, std::size_t progress_ms = 250) {
    Daemon::Options options;
    options.listen = "unix:" + (dir / "daemon.sock").string();
    options.cache_dir = (dir / "cache").string();
    options.progress_every_ms = progress_ms;
    options.threads = 2;
    daemon_ = std::make_unique<Daemon>(options);
    thread_ = std::thread([this] { report_ = daemon_->run(); });
  }

  ~DaemonFixture() { stop(); }

  Daemon& daemon() { return *daemon_; }

  [[nodiscard]] Client connect() {
    return Client::connect(daemon_->endpoint());
  }

  /// Stops the daemon and returns its drain report (idempotent).
  const Daemon::Report& stop() {
    if (thread_.joinable()) {
      daemon_->request_stop();
      thread_.join();
    }
    return report_;
  }

 private:
  std::unique_ptr<Daemon> daemon_;
  std::thread thread_;
  Daemon::Report report_;
};

// ---------------------------------------------------------------------------
// Protocol: round trips and the malformed-frame taxonomy.

TEST(ServeProtocol, QueryRoundTripsEveryField) {
  auto [a, b] = Socket::socketpair();
  Query sent;
  sent.spec = small_spec(42, 2);
  sent.want_store = false;
  sent.want_rows = true;
  sent.group = campaign::GroupBy{false, true, false, true};
  send(a, sent);

  Frame frame;
  ASSERT_TRUE(receive(b, frame));
  const Query got = decode_query(frame, "test-peer");
  EXPECT_EQ(got.version, kProtocolVersion);
  EXPECT_EQ(got.spec.fingerprint(), sent.spec.fingerprint());
  EXPECT_EQ(got.spec.records.size(), 2u);
  EXPECT_FALSE(got.want_store);
  EXPECT_TRUE(got.want_rows);
  EXPECT_FALSE(got.group.record);
  EXPECT_TRUE(got.group.app);
  EXPECT_FALSE(got.group.emt);
  EXPECT_TRUE(got.group.voltage);
}

TEST(ServeProtocol, ResultProgressErrorRoundTrip) {
  auto [a, b] = Socket::socketpair();
  Result result;
  result.status = CacheStatus::kGapFill;
  result.items_total = 12;
  result.items_executed = 6;
  result.store_bytes = {1, 2, 3, 255};
  result.rows_csv = "header\n1,2\n";
  send(a, result);
  send(a, Progress{5, 12});
  send(a, Error{"boom"});

  Frame frame;
  ASSERT_TRUE(receive(b, frame));
  const Result r = decode_result(frame, "p");
  EXPECT_EQ(r.status, CacheStatus::kGapFill);
  EXPECT_EQ(r.items_total, 12u);
  EXPECT_EQ(r.items_executed, 6u);
  EXPECT_EQ(r.store_bytes, result.store_bytes);
  EXPECT_EQ(r.rows_csv, result.rows_csv);
  ASSERT_TRUE(receive(b, frame));
  const Progress p = decode_progress(frame, "p");
  EXPECT_EQ(p.items_done, 5u);
  EXPECT_EQ(p.items_total, 12u);
  ASSERT_TRUE(receive(b, frame));
  EXPECT_EQ(decode_error(frame, "p").message, "boom");
}

TEST(ServeProtocol, TruncatedPayloadThrowsNamingPeerAndField) {
  auto [a, b] = Socket::socketpair();
  util::write_frame(a, static_cast<std::uint32_t>(MsgType::kQuery),
                    {1, 0, 0});  // not even a whole version field
  Frame frame;
  ASSERT_TRUE(receive(b, frame));
  try {
    (void)decode_query(frame, "the-peer");
    FAIL() << "decode of a truncated Query must throw";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.peer(), "the-peer");
    EXPECT_NE(std::string(e.what()).find("truncated field 'version'"),
              std::string::npos)
        << e.what();
  }
}

TEST(ServeProtocol, WrongFrameTypeFailsByName) {
  auto [a, b] = Socket::socketpair();
  send(a, Progress{1, 2});
  Frame frame;
  ASSERT_TRUE(receive(b, frame));
  try {
    (void)decode_result(frame, "p");
    FAIL() << "a Progress frame must not decode as Result";
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("expected Result frame, got "
                                         "Progress"),
              std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------------
// Overlap semantics: which cached grids may seed which queries.

TEST(ServeCache, ResumablePrefixRequiresStrictRecordPrefixAndEqualAxes) {
  const CampaignSpec one = small_spec(9, 1);
  const CampaignSpec two = small_spec(9, 2);
  EXPECT_TRUE(is_resumable_prefix(one, two));
  EXPECT_FALSE(is_resumable_prefix(two, one));   // shrink, not grow
  EXPECT_FALSE(is_resumable_prefix(one, one));   // strict prefix only
  EXPECT_FALSE(is_resumable_prefix(one, small_spec(10, 2)));  // seed differs

  // Same record count, different front record: not a prefix.
  CampaignSpec other = small_spec(9, 2);
  other.records[0].noise_scale = 99.0;
  EXPECT_FALSE(is_resumable_prefix(one, other.normalized()));

  // Axes differ (extra voltage): indices shift, nothing is adoptable.
  CampaignSpec wider = small_spec(9, 2);
  wider.voltages.push_back(0.9);
  EXPECT_FALSE(is_resumable_prefix(one, wider.normalized()));
}

TEST(ServeCache, AdoptedPrefixPlusGapRunMatchesColdRunByteForByte) {
  const fs::path dir = scratch("adopt");
  const CampaignSpec prefix = small_spec(3, 1);
  const CampaignSpec superset = small_spec(3, 3);

  const campaign::ResultStore cached = run_grid(prefix);
  const fs::path cached_path = dir / "prefix.ulpdcol";
  cached.save_columnar(cached_path.string());

  campaign::ResultStore adopted = adopt_prefix(
      campaign::ColumnarStore::open(cached_path.string(), prefix), superset);
  EXPECT_EQ(adopted.items_done(), prefix.item_count());

  campaign::Session session(energy::SystemEnergyModel(), 2);
  campaign::SubmitOptions options;
  options.resume_from = &adopted;
  const auto handle = session.submit(superset, options);
  const campaign::ResultStore merged = handle.take();
  const campaign::Progress progress = handle.progress();
  EXPECT_EQ(progress.items_resumed, prefix.item_count());
  EXPECT_EQ(progress.items_done - progress.items_resumed,
            superset.item_count() - prefix.item_count());

  const fs::path merged_path = dir / "merged.ulpdcol";
  merged.save_columnar(merged_path.string());
  EXPECT_EQ(slurp(merged_path), reference_columnar_bytes(superset, dir));
}

// ---------------------------------------------------------------------------
// ResultCache: LRU byte budget, restart rehydration, quarantine.

TEST(ServeCache, EvictsLeastRecentlyUsedWhenOverByteBudget) {
  const fs::path dir = scratch("lru");
  ResultCache cache({(dir / "cache").string(), std::uint64_t(1) << 40});
  const CampaignSpec a = small_spec(1);
  const CampaignSpec b = small_spec(2);
  const CampaignSpec c = small_spec(3);
  const auto entry_a = cache.insert(a, run_grid(a));
  cache.insert(b, run_grid(b));
  EXPECT_EQ(cache.entries(), 2u);

  // Touch a: it becomes most-recent, so b is now the LRU victim.
  EXPECT_TRUE(cache.find(a.fingerprint()).has_value());

  // Shrink the budget by rebuilding the cache over the same dir with a
  // budget two entries cannot fit; the insert of c must evict b then a,
  // keeping only the newest.
  ResultCache tight({(dir / "cache").string(), entry_a.bytes + 1});
  EXPECT_EQ(tight.entries(), 1u);  // rehydration already evicted to budget
  const auto entry_c = tight.insert(c, run_grid(c));
  EXPECT_EQ(tight.entries(), 1u);
  EXPECT_TRUE(tight.find(c.fingerprint()).has_value());
  EXPECT_FALSE(tight.find(a.fingerprint()).has_value());
  EXPECT_FALSE(tight.find(b.fingerprint()).has_value());
  EXPECT_TRUE(fs::exists(entry_c.store_path));
  EXPECT_FALSE(fs::exists(entry_a.store_path));
}

TEST(ServeCache, NewestEntryIsKeptEvenAloneOverBudget) {
  const fs::path dir = scratch("keep_newest");
  ResultCache cache({(dir / "cache").string(), 1});  // absurd budget
  const CampaignSpec spec = small_spec(7);
  const auto entry = cache.insert(spec, run_grid(spec));
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_GT(cache.bytes(), 1u);
  EXPECT_TRUE(fs::exists(entry.store_path));
}

TEST(ServeCache, RehydratesEntriesByteIdenticalAfterRestart) {
  const fs::path dir = scratch("rehydrate");
  const CampaignSpec a = small_spec(11);
  const CampaignSpec b = small_spec(12);
  std::string store_a;
  {
    ResultCache cache({(dir / "cache").string(), std::uint64_t(1) << 40});
    store_a = slurp(cache.insert(a, run_grid(a)).store_path);
    cache.insert(b, run_grid(b));
  }
  ResultCache reborn({(dir / "cache").string(), std::uint64_t(1) << 40});
  EXPECT_EQ(reborn.entries(), 2u);
  EXPECT_TRUE(reborn.quarantined().empty());
  const auto hit = reborn.find(a.fingerprint());
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->spec.fingerprint(), a.fingerprint());
  EXPECT_EQ(slurp(hit->store_path), store_a);
  EXPECT_EQ(slurp(hit->store_path),
            reference_columnar_bytes(a, dir));
}

TEST(ServeCache, CorruptCacheFileIsQuarantinedWithTypedErrorNamingPath) {
  const fs::path dir = scratch("quarantine");
  const fs::path cache_dir = dir / "cache";
  fs::create_directories(cache_dir);
  const fs::path bogus = cache_dir / "00deadbeef00dead.ulpdcol";
  std::ofstream(bogus) << "this is not a columnar store";

  ResultCache cache({cache_dir.string(), std::uint64_t(1) << 40});
  EXPECT_EQ(cache.entries(), 0u);
  ASSERT_EQ(cache.quarantined().size(), 1u);
  const auto& event = cache.quarantined().front();
  EXPECT_EQ(event.path, bogus.string());
  EXPECT_NE(event.reason.find(bogus.string()), std::string::npos)
      << "quarantine reason must name the offending path: " << event.reason;
  EXPECT_FALSE(fs::exists(bogus));
  EXPECT_TRUE(fs::exists(bogus.string() + ".quarantined"));

  // The cache stays serviceable after the casualty.
  const CampaignSpec spec = small_spec(5);
  cache.insert(spec, run_grid(spec));
  EXPECT_TRUE(cache.find(spec.fingerprint()).has_value());
}

TEST(ServeCache, RenamedForeignStoreIsQuarantinedByFingerprintMismatch) {
  const fs::path dir = scratch("foreign");
  const fs::path cache_dir = dir / "cache";
  const CampaignSpec spec = small_spec(21);
  {
    ResultCache cache({cache_dir.string(), std::uint64_t(1) << 40});
    cache.insert(spec, run_grid(spec));
  }
  // An admin "helpfully" renames the pair: the stem no longer matches
  // the sidecar's fingerprint hash.
  const std::string hash = spec.fingerprint_hash();
  fs::rename(cache_dir / (hash + ".ulpdcol"),
             cache_dir / "aaaaaaaaaaaaaaaa.ulpdcol");
  fs::rename(cache_dir / (hash + ".spec"),
             cache_dir / "aaaaaaaaaaaaaaaa.spec");

  ResultCache reborn({cache_dir.string(), std::uint64_t(1) << 40});
  EXPECT_EQ(reborn.entries(), 0u);
  ASSERT_EQ(reborn.quarantined().size(), 1u);
  EXPECT_NE(reborn.quarantined().front().reason.find("fingerprint hash"),
            std::string::npos)
      << reborn.quarantined().front().reason;
}

// ---------------------------------------------------------------------------
// Daemon end to end, over real Unix sockets.

TEST(ServeDaemon, ColdThenExactHitAnswerByteIdenticalStores) {
  const fs::path dir = scratch("daemon_hit");
  const CampaignSpec spec = small_spec(31);
  const std::string reference = reference_columnar_bytes(spec, dir);

  DaemonFixture fixture(dir);
  Client client = fixture.connect();
  Client::QueryOptions options;
  options.want_rows = true;
  const Result cold = client.query(spec, options);
  EXPECT_EQ(cold.status, CacheStatus::kCold);
  EXPECT_EQ(cold.items_total, spec.item_count());
  EXPECT_EQ(cold.items_executed, spec.item_count());
  EXPECT_EQ(as_text(cold.store_bytes), reference);
  EXPECT_FALSE(cold.rows_csv.empty());

  const Result warm = client.query(spec, options);
  EXPECT_EQ(warm.status, CacheStatus::kHit);
  EXPECT_EQ(warm.items_executed, 0u);
  EXPECT_EQ(warm.store_bytes, cold.store_bytes);
  EXPECT_EQ(warm.rows_csv, cold.rows_csv);

  const Daemon::Report& report = fixture.stop();
  EXPECT_EQ(report.queries, 2u);
  EXPECT_EQ(report.cache_hits, 1u);
  EXPECT_EQ(report.cold_runs, 1u);
  EXPECT_EQ(report.items_executed, spec.item_count());
  EXPECT_EQ(report.items_reused, spec.item_count());
}

TEST(ServeDaemon, SupersetQueryGapFillsExecutingOnlyTheGap) {
  const fs::path dir = scratch("daemon_gap");
  const CampaignSpec prefix = small_spec(32, 1);
  const CampaignSpec superset = small_spec(32, 3);

  DaemonFixture fixture(dir);
  Client client = fixture.connect();
  (void)client.query(prefix);
  const Result filled = client.query(superset);
  EXPECT_EQ(filled.status, CacheStatus::kGapFill);
  EXPECT_EQ(filled.items_total, superset.item_count());
  EXPECT_EQ(filled.items_executed,
            superset.item_count() - prefix.item_count());
  EXPECT_EQ(as_text(filled.store_bytes),
            reference_columnar_bytes(superset, dir));

  const Daemon::Report& report = fixture.stop();
  EXPECT_EQ(report.gap_fills, 1u);
  EXPECT_EQ(report.items_reused, prefix.item_count());
}

TEST(ServeDaemon, RestartAnswersWarmFromRehydratedCache) {
  const fs::path dir = scratch("daemon_restart");
  const CampaignSpec spec = small_spec(33);
  std::vector<std::uint8_t> cold_bytes;
  {
    DaemonFixture fixture(dir);
    Client client = fixture.connect();
    cold_bytes = client.query(spec).store_bytes;
  }
  DaemonFixture reborn(dir);
  Client client = reborn.connect();
  const Result warm = client.query(spec);
  EXPECT_EQ(warm.status, CacheStatus::kHit);
  EXPECT_EQ(warm.items_executed, 0u);
  EXPECT_EQ(warm.store_bytes, cold_bytes);
}

TEST(ServeDaemon, BadSpecAnswersErrorAndTheConnectionSurvives) {
  const fs::path dir = scratch("daemon_badspec");
  DaemonFixture fixture(dir);
  Client client = fixture.connect();

  CampaignSpec bad = small_spec(34);
  bad.apps = {"no_such_app"};
  try {
    (void)client.query(bad);
    FAIL() << "unknown app must be answered with an Error frame";
  } catch (const QueryError& e) {
    EXPECT_NE(std::string(e.what()).find("no_such_app"), std::string::npos)
        << e.what();
  }

  // Same connection, valid spec: still served.
  const Result ok = client.query(small_spec(34));
  EXPECT_EQ(ok.status, CacheStatus::kCold);

  const Daemon::Report& report = fixture.stop();
  EXPECT_EQ(report.errors, 1u);
  EXPECT_EQ(report.queries, 2u);
}

TEST(ServeDaemon, VersionMismatchIsRejectedQuotingBothNumbers) {
  const fs::path dir = scratch("daemon_version");
  DaemonFixture fixture(dir);
  Socket socket = Socket::connect(fixture.daemon().endpoint());
  Query query;
  query.version = 99;
  query.spec = small_spec(35);
  send(socket, query);
  Frame frame;
  ASSERT_TRUE(receive(socket, frame));
  const Error error = decode_error(frame, "daemon");
  EXPECT_NE(error.message.find("version mismatch"), std::string::npos);
  EXPECT_NE(error.message.find("99"), std::string::npos);
  EXPECT_NE(error.message.find(std::to_string(kProtocolVersion)),
            std::string::npos);
}

TEST(ServeDaemon, GarbageFrameGetsAnErrorFrameNotACrash) {
  const fs::path dir = scratch("daemon_garbage");
  DaemonFixture fixture(dir);
  Socket socket = Socket::connect(fixture.daemon().endpoint());
  util::write_frame(socket, static_cast<std::uint32_t>(MsgType::kQuery),
                    {0xde, 0xad});
  Frame frame;
  ASSERT_TRUE(receive(socket, frame));
  EXPECT_NE(decode_error(frame, "daemon").message.find("truncated field"),
            std::string::npos);
  // The daemon hung up on the unframeable client but keeps serving
  // everyone else.
  Client client = fixture.connect();
  EXPECT_EQ(client.query(small_spec(36)).status, CacheStatus::kCold);
}

TEST(ServeDaemon, ConcurrentClientsAllGetCorrectAnswers) {
  const fs::path dir = scratch("daemon_concurrent");
  DaemonFixture fixture(dir);
  constexpr int kClients = 4;
  std::vector<std::string> bytes(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&fixture, &bytes, i] {
      Client client = fixture.connect();
      bytes[static_cast<std::size_t>(i)] =
          as_text(client.query(small_spec(100 + std::uint64_t(i))).store_bytes);
    });
  }
  for (std::thread& t : threads) t.join();
  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(bytes[static_cast<std::size_t>(i)],
              reference_columnar_bytes(small_spec(100 + std::uint64_t(i)),
                                       scratch("daemon_concurrent_ref")))
        << "client " << i;
  }
  const Daemon::Report& report = fixture.stop();
  EXPECT_EQ(report.queries, std::size_t(kClients));
  EXPECT_EQ(report.clients, std::size_t(kClients));
}

TEST(ServeDaemon, ExecutingQueriesStreamProgressAndHitsStreamNone) {
  const fs::path dir = scratch("daemon_progress");
  const CampaignSpec spec = small_spec(37);
  DaemonFixture fixture(dir, /*progress_ms=*/1);
  Client client = fixture.connect();

  std::size_t cold_frames = 0;
  Progress last{};
  Client::QueryOptions options;
  options.on_progress = [&cold_frames, &last](const Progress& p) {
    cold_frames += 1;
    last = p;
  };
  (void)client.query(spec, options);
  EXPECT_GE(cold_frames, 1u);
  EXPECT_EQ(last.items_total, spec.item_count());
  EXPECT_EQ(last.items_done, spec.item_count());

  std::size_t hit_frames = 0;
  options.on_progress = [&hit_frames](const Progress&) { hit_frames += 1; };
  (void)client.query(spec, options);
  EXPECT_EQ(hit_frames, 0u) << "an exact hit must not stream Progress";
}

TEST(ServeDaemon, TelemetryCountsQueriesHitsAndCacheGauges) {
  const fs::path dir = scratch("daemon_telemetry");
  const CampaignSpec spec = small_spec(38);
  DaemonFixture fixture(dir);
  Client client = fixture.connect();
  (void)client.query(spec);
  (void)client.query(spec);

  const auto metrics = fixture.daemon().telemetry();
  const auto counter = [&metrics](const char* name) -> std::uint64_t {
    const auto it = metrics.counters.find(name);
    return it == metrics.counters.end() ? 0 : it->second;
  };
  EXPECT_EQ(counter("serve.queries"), 2u);
  EXPECT_EQ(counter("serve.cache.hits"), 1u);
  EXPECT_EQ(counter("serve.cache.misses"), 1u);
  EXPECT_GE(counter("serve.frames_sent"), 2u);
  EXPECT_GE(counter("serve.frames_received"), 2u);
  const auto gauge = metrics.gauges.find("serve.cache.entries");
  ASSERT_NE(gauge, metrics.gauges.end());
  EXPECT_EQ(gauge->second, 1.0);
}

}  // namespace
}  // namespace ulpdream::serve
