// Randomized cross-EMT torture tests: strong invariants that must hold for
// ANY fault pattern, verified over thousands of random (sample, fault)
// draws. These are the properties that make the Fig. 4 comparisons sound.

#include <gtest/gtest.h>

#include "ulpdream/core/dream.hpp"
#include "ulpdream/core/dream_secded.hpp"
#include "ulpdream/core/ecc_secded.hpp"
#include "ulpdream/core/factory.hpp"
#include "ulpdream/core/protected_buffer.hpp"
#include "ulpdream/util/rng.hpp"

namespace ulpdream::core {
namespace {

fixed::Sample random_sample(util::Xoshiro256& rng) {
  return static_cast<fixed::Sample>(
      static_cast<std::int32_t>(rng.bounded(65536)) - 32768);
}

TEST(Torture, DreamNeverIntroducesNewErrors) {
  // Invariant: the bit positions where DREAM's decode differs from the
  // original are a SUBSET of the positions where the corrupted word
  // differs — the mask only forces bits back to their provably-correct
  // values, so DREAM can never make a word worse.
  const Dream dream;
  util::Xoshiro256 rng(1);
  for (int t = 0; t < 20000; ++t) {
    const fixed::Sample s = random_sample(rng);
    const auto corruption = static_cast<std::uint16_t>(rng.bounded(65536));
    const auto raw = static_cast<std::uint16_t>(
        static_cast<std::uint16_t>(s) ^ corruption);
    const fixed::Sample decoded =
        dream.decode(raw, dream.encode_safe(s));
    const auto residual = static_cast<std::uint16_t>(
        static_cast<std::uint16_t>(decoded) ^ static_cast<std::uint16_t>(s));
    EXPECT_EQ(residual & static_cast<std::uint16_t>(~corruption), 0)
        << "s=" << s << " corruption=" << corruption;
  }
}

TEST(Torture, DreamResidualAlwaysBelowProtectedRegion) {
  // Any surviving error bit must lie strictly below the recorded run+1
  // protected region.
  const Dream dream;
  util::Xoshiro256 rng(2);
  for (int t = 0; t < 20000; ++t) {
    const fixed::Sample s = random_sample(rng);
    const int run = fixed::sign_run_length(s);
    const int protected_bits = run == 16 ? 16 : run + 1;
    const auto corruption = static_cast<std::uint16_t>(rng.bounded(65536));
    const fixed::Sample decoded = dream.decode(
        static_cast<std::uint16_t>(static_cast<std::uint16_t>(s) ^
                                   corruption),
        dream.encode_safe(s));
    const auto residual = static_cast<std::uint16_t>(
        static_cast<std::uint16_t>(decoded) ^ static_cast<std::uint16_t>(s));
    if (protected_bits >= 16) {
      EXPECT_EQ(residual, 0);
    } else {
      const auto protected_mask = static_cast<std::uint16_t>(
          ~((1u << (16 - protected_bits)) - 1u) & 0xFFFFu);
      EXPECT_EQ(residual & protected_mask, 0) << "s=" << s;
    }
  }
}

TEST(Torture, EccExactOnAnySingleFaultAnyWord) {
  const EccSecDed ecc;
  util::Xoshiro256 rng(3);
  for (int t = 0; t < 20000; ++t) {
    const fixed::Sample s = random_sample(rng);
    const int bit = static_cast<int>(rng.bounded(22));
    EXPECT_EQ(ecc.decode(ecc.encode_payload(s) ^ (1u << bit), 0), s);
  }
}

TEST(Torture, HybridRecoversWheneverEitherParentMechanismApplies) {
  // If the fault pattern is a single bit OR lies entirely within the sign
  // run of the data field, the hybrid must recover exactly.
  const DreamSecDed hybrid;
  util::Xoshiro256 rng(4);
  int single_cases = 0;
  int run_cases = 0;
  for (int t = 0; t < 30000; ++t) {
    const fixed::Sample s = random_sample(rng);
    const int run = fixed::sign_run_length(s);
    const std::uint16_t safe = hybrid.encode_safe(s);
    if (rng.bernoulli(0.5)) {
      // Single payload bit.
      const int bit = static_cast<int>(rng.bounded(22));
      EXPECT_EQ(hybrid.decode(hybrid.encode_payload(s) ^ (1u << bit), safe),
                s);
      ++single_cases;
    } else {
      // Data-bit burst inside the run (realized as a valid codeword of the
      // corrupted data: the worst case for pure ECC, which sees nothing).
      std::uint16_t corruption = 0;
      const int nbits = 1 + static_cast<int>(rng.bounded(4));
      for (int k = 0; k < nbits; ++k) {
        corruption |= static_cast<std::uint16_t>(
            1u << (15 - rng.bounded(static_cast<std::uint64_t>(run))));
      }
      const auto corrupted = static_cast<fixed::Sample>(
          static_cast<std::uint16_t>(s) ^ corruption);
      EXPECT_EQ(hybrid.decode(hybrid.encode_payload(corrupted), safe), s)
          << "s=" << s << " corruption=" << corruption;
      ++run_cases;
    }
  }
  EXPECT_GT(single_cases, 1000);
  EXPECT_GT(run_cases, 1000);
}

TEST(Torture, ProtectedBufferRandomMapsNeverCrashAndStayDeterministic) {
  // Heavy random maps across every EMT: reads must be total functions
  // (no crash, in-range) and repeatable.
  util::Xoshiro256 rng(5);
  for (const EmtKind kind : extended_emt_kinds()) {
    const auto emt = make_emt(kind);
    for (double ber : {1e-3, 1e-2, 0.1}) {
      const mem::FaultMap map = mem::FaultMap::random(512, 22, ber, rng);
      MemorySystem system(*emt, 512);
      system.attach_faults(&map);
      auto buf = ProtectedBuffer::allocate(system, 512);
      for (std::size_t i = 0; i < 512; ++i) {
        buf.set(i, random_sample(rng));
      }
      for (std::size_t i = 0; i < 512; ++i) {
        const fixed::Sample a = buf.get(i);
        const fixed::Sample b = buf.get(i);
        EXPECT_EQ(a, b);
      }
    }
  }
}

TEST(Torture, EmtTransparencyOnFaultFreeMemoryExhaustive) {
  // Every EMT must be the identity channel on clean memory, for every
  // possible sample value (full 16-bit exhaustive sweep).
  for (const EmtKind kind : extended_emt_kinds()) {
    const auto emt = make_emt(kind);
    for (int v = -32768; v <= 32767; ++v) {
      const auto s = static_cast<fixed::Sample>(v);
      if (emt->decode(emt->encode_payload(s), emt->encode_safe(s)) != s) {
        FAIL() << emt->name() << " not transparent for " << v;
      }
    }
  }
}

class TortureBerSweep : public ::testing::TestWithParam<double> {};

TEST_P(TortureBerSweep, HybridWordErrorRateNeverAboveEcc) {
  // Monte-Carlo at a given cell BER: the hybrid's exact-recovery rate must
  // dominate plain ECC's (it decodes the same codeword, then repairs
  // more).
  const double ber = GetParam();
  const DreamSecDed hybrid;
  const EccSecDed ecc;
  util::Xoshiro256 rng(777);
  int hybrid_bad = 0;
  int ecc_bad = 0;
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    const fixed::Sample s = random_sample(rng);
    std::uint32_t corruption = 0;
    for (int bit = 0; bit < 22; ++bit) {
      if (rng.bernoulli(ber)) corruption |= 1u << bit;
    }
    if (hybrid.decode(hybrid.encode_payload(s) ^ corruption,
                      hybrid.encode_safe(s)) != s) {
      ++hybrid_bad;
    }
    if (ecc.decode(ecc.encode_payload(s) ^ corruption, 0) != s) {
      ++ecc_bad;
    }
  }
  EXPECT_LE(hybrid_bad, ecc_bad);
}

INSTANTIATE_TEST_SUITE_P(BerLevels, TortureBerSweep,
                         ::testing::Values(1e-3, 5e-3, 2e-2, 5e-2, 0.1));

}  // namespace
}  // namespace ulpdream::core
