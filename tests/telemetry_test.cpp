// util::telemetry contract tests: mergeable metrics (associative merge,
// byte-stable JSON round trip, since() diffs), the lock-free trace
// recorder under concurrent producers, and — the one that matters most —
// that telemetry never changes simulation results: a traced, metered run
// must produce a byte-identical ResultStore to a dark one, and two
// half-grid sessions' snapshots must merge to the full-grid session's
// snapshot on every deterministic work counter.

#include "ulpdream/util/telemetry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "ulpdream/campaign/session.hpp"
#include "ulpdream/ecg/database.hpp"

namespace ulpdream::util::telemetry {
namespace {

// ---------------------------------------------------------------------------
// Metrics registry.

TEST(Metrics, CountersAccumulateAcrossThreadsAndSurviveThreadExit) {
  reset_metrics();
  const Counter counter("test.counter.threads");
  counter.add(5);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < 1000; ++i) counter.add();
    });
  }
  for (auto& t : threads) t.join();  // shards retire into the accumulator
  EXPECT_EQ(snapshot().counters.at("test.counter.threads"), 4005u);
}

TEST(Metrics, HistogramBucketsAreLog2WithExactZeroBucket) {
  reset_metrics();
  const Histogram h("test.histo.buckets");
  h.record(0);  // bucket 0: exactly zero
  h.record(1);  // bucket 1: [1, 2)
  h.record(2);  // bucket 2: [2, 4)
  h.record(3);  // bucket 2
  h.record(1023);  // bucket 10: [512, 1024)
  const HistogramSnapshot s = snapshot().histograms.at("test.histo.buckets");
  EXPECT_EQ(s.count(), 5u);
  EXPECT_EQ(s.sum, 0u + 1 + 2 + 3 + 1023);
  const std::map<int, std::uint64_t> want = {{0, 1}, {1, 1}, {2, 2}, {10, 1}};
  EXPECT_EQ(s.buckets, want);
  EXPECT_DOUBLE_EQ(s.mean(), 1029.0 / 5.0);
  // Quantiles report the geometric bucket midpoint 2^(k - 0.5).
  EXPECT_DOUBLE_EQ(s.quantile(0.5), std::exp2(1.5));
  EXPECT_DOUBLE_EQ(s.quantile(1.0), std::exp2(9.5));
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 0.0);
}

MetricsSnapshot make_snapshot(std::uint64_t a, std::uint64_t b, double g,
                              std::vector<std::uint64_t> latencies) {
  MetricsSnapshot m;
  m.counters["x.a"] = a;
  m.counters["x.b"] = b;
  m.gauges["x.g"] = g;
  HistogramSnapshot h;
  for (const std::uint64_t v : latencies) {
    h.sum += v;
    h.buckets[std::min<int>(static_cast<int>(std::bit_width(v)), 63)] += 1;
  }
  m.histograms["x.h"] = h;
  return m;
}

TEST(Metrics, MergeIsAssociativeAndGaugesAreRightBiased) {
  const MetricsSnapshot a = make_snapshot(1, 10, 0.25, {1, 2});
  const MetricsSnapshot b = make_snapshot(2, 20, 0.5, {4, 8, 9});
  const MetricsSnapshot c = make_snapshot(3, 30, 0.75, {100});

  MetricsSnapshot left = a;   // (a + b) + c
  left.merge(b);
  left.merge(c);
  MetricsSnapshot bc = b;     // a + (b + c)
  bc.merge(c);
  MetricsSnapshot right = a;
  right.merge(bc);

  EXPECT_EQ(left, right);
  EXPECT_EQ(left.counters.at("x.a"), 6u);
  EXPECT_EQ(left.counters.at("x.b"), 60u);
  EXPECT_DOUBLE_EQ(left.gauges.at("x.g"), 0.75);  // last statement wins
  EXPECT_EQ(left.histograms.at("x.h").count(), 6u);
  EXPECT_EQ(left.histograms.at("x.h").sum, 124u);
}

TEST(Metrics, SinceSubtractsCountersAndKeepsCurrentGauges) {
  const MetricsSnapshot before = make_snapshot(1, 10, 0.25, {1});
  const MetricsSnapshot after = make_snapshot(5, 10, 0.75, {1, 4, 9});
  const MetricsSnapshot d = after.since(before);
  EXPECT_EQ(d.counters.at("x.a"), 4u);
  EXPECT_EQ(d.counters.at("x.b"), 0u);
  EXPECT_DOUBLE_EQ(d.gauges.at("x.g"), 0.75);
  EXPECT_EQ(d.histograms.at("x.h").count(), 2u);
  EXPECT_EQ(d.histograms.at("x.h").sum, 13u);
}

TEST(Metrics, JsonRoundTripIsLossFreeAndByteStable) {
  MetricsSnapshot m = make_snapshot(123456789012345ull, 0, 3.141592653589793,
                                    {0, 1, 7, 4096});
  m.gauges["tiny"] = 1e-12;
  m.gauges["neg"] = -42.5;
  m.counters["empty.histo.partner"] = 7;
  m.histograms["empty.histo"] = HistogramSnapshot{};  // no samples

  std::ostringstream first;
  m.write_json(first);
  std::istringstream back(first.str());
  const MetricsSnapshot reread = MetricsSnapshot::read_json(back);
  EXPECT_EQ(reread, m);  // loss-free

  std::ostringstream second;
  reread.write_json(second);
  EXPECT_EQ(first.str(), second.str());  // byte-stable
}

TEST(Metrics, ReadJsonRejectsMalformedInput) {
  const auto parse = [](const std::string& text) {
    std::istringstream is(text);
    return MetricsSnapshot::read_json(is);
  };
  EXPECT_THROW(parse(""), std::invalid_argument);
  EXPECT_THROW(parse("{\"counters\": {}}"), std::invalid_argument);
  EXPECT_THROW(parse("not json at all"), std::invalid_argument);
}

TEST(Metrics, SnapshotInjectsSimdTierGauge) {
  EXPECT_TRUE(snapshot().gauges.contains("simd.active_tier"));
}

// ---------------------------------------------------------------------------
// Trace recorder.

/// Minimal structural JSON check: brace/bracket balance outside strings.
bool balanced_json(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char ch = text[i];
    if (in_string) {
      if (ch == '\\') {
        ++i;
      } else if (ch == '"') {
        in_string = false;
      }
      continue;
    }
    if (ch == '"') {
      in_string = true;
    } else if (ch == '{' || ch == '[') {
      ++depth;
    } else if (ch == '}' || ch == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(Trace, DisabledByDefaultAndSpansCostNothing) {
  trace::reset();
  ASSERT_FALSE(trace::enabled());
  {
    ULPDREAM_TRACE_SPAN("never.recorded");
    trace_instant("also.never");
  }
  EXPECT_EQ(trace::event_count(), 0u);
}

TEST(Trace, ConcurrentSpansFromEightThreadsExportWellFormedChromeJson) {
  trace::reset();
  trace::start();
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        ULPDREAM_TRACE_SPAN("worker.span");
        trace_instant("worker.tick");
      }
    });
  }
  for (auto& t : threads) t.join();
  trace::stop();

  EXPECT_EQ(trace::event_count(),
            std::size_t{kThreads} * kSpansPerThread * 2);
  std::ostringstream os;
  trace::write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_TRUE(balanced_json(json));
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ns\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"X\""),
            std::size_t{kThreads} * kSpansPerThread);
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"i\""),
            std::size_t{kThreads} * kSpansPerThread);
  // Per-thread metadata rows, one per ring that recorded.
  EXPECT_GE(count_occurrences(json, "\"thread_name\""),
            std::size_t{kThreads});
  trace::reset();
  EXPECT_EQ(trace::event_count(), 0u);
}

TEST(Trace, InternedNamesAreStableAndDeduplicated) {
  const char* a = intern("some.span.name");
  const char* b = intern("some.span.name");
  EXPECT_EQ(a, b);
  EXPECT_STREQ(a, "some.span.name");
}

// ---------------------------------------------------------------------------
// The overhead / non-interference guard: telemetry must never change
// simulation results.

campaign::CampaignSpec tiny_spec(std::uint64_t seed) {
  campaign::CampaignSpec spec;
  spec.apps = {"dwt"};
  spec.emts = {"none", "dream", "ecc_secded"};
  spec.voltages = {0.8};
  spec.records = {
      campaign::RecordAxis{ecg::Pathology::kNormalSinus, 1.0, 7}};
  spec.repetitions = 2;
  spec.seed = seed;
  return spec.normalized();
}

std::string run_store_bytes(const campaign::CampaignSpec& spec,
                            campaign::Shard shard = {}) {
  campaign::Session session(energy::SystemEnergyModel(), 2);
  campaign::SubmitOptions options;
  options.shard = shard;
  const campaign::ResultStore store =
      session.submit(spec, options).wait();
  std::ostringstream os;
  store.save(os);
  return os.str();
}

TEST(NonInterference, TracedAndMeteredRunStoreIsByteIdenticalToDarkRun) {
  const campaign::CampaignSpec spec = tiny_spec(2016);
  const std::string dark = run_store_bytes(spec);

  trace::reset();
  trace::start();
  set_hot_timing(true);
  const std::string traced = run_store_bytes(spec);
  set_hot_timing(false);
  trace::stop();
  trace::reset();

  EXPECT_GT(traced.size(), 0u);
  EXPECT_EQ(traced, dark);
}

/// Deterministic-work counters: exact under any shard split. Excluded:
/// codec.none.* — submit() runs a clean-reference pass (SNR ceilings)
/// through the "none" codec once per submission, so that setup work is
/// duplicated across shards by design. Wall-clock histograms merge
/// bucket-wise but land in timing-dependent buckets, so the cross-shard
/// contract for them is count preservation, not bucket equality (README
/// "Observability" documents both caveats).
bool deterministic_counter(const std::string& name) {
  if (name.rfind("codec.none.", 0) == 0) return false;
  return name.rfind("codec.", 0) == 0 || name.rfind("mem.", 0) == 0 ||
         name == "session.items_executed";
}

std::map<std::string, std::uint64_t> deterministic_counters(
    const util::telemetry::MetricsSnapshot& m) {
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, v] : m.counters) {
    if (deterministic_counter(name)) out[name] = v;
  }
  return out;
}

TEST(NonInterference, HalfRunSnapshotsMergeToTheFullRunSnapshot) {
  const campaign::CampaignSpec spec = tiny_spec(909);
  set_hot_timing(true);

  MetricsSnapshot full, half0, half1;
  {
    campaign::Session session(energy::SystemEnergyModel(), 2);
    (void)session.submit(spec).wait();
    full = session.telemetry();
  }
  {
    campaign::Session session(energy::SystemEnergyModel(), 2);
    campaign::SubmitOptions options;
    options.shard = campaign::Shard{0, 2};
    (void)session.submit(spec, options).wait();
    half0 = session.telemetry();
  }
  {
    campaign::Session session(energy::SystemEnergyModel(), 2);
    campaign::SubmitOptions options;
    options.shard = campaign::Shard{1, 2};
    (void)session.submit(spec, options).wait();
    half1 = session.telemetry();
  }
  set_hot_timing(false);

  MetricsSnapshot merged = half0;
  merged.merge(half1);

  // Every deterministic work counter merges exactly across the split.
  EXPECT_EQ(deterministic_counters(merged), deterministic_counters(full));
  EXPECT_GT(deterministic_counters(full).size(), 0u);
  EXPECT_EQ(merged.counters.at("session.items_executed"),
            full.counters.at("session.items_executed"));
  // Latency histograms: the merged halves measured every item exactly
  // once, same as the full run — counts match even though buckets may
  // differ.
  EXPECT_EQ(merged.histograms.at("session.item_ns").count(),
            full.histograms.at("session.item_ns").count());
}

}  // namespace
}  // namespace ulpdream::util::telemetry
