// The asynchronous execution runtime's determinism contract: campaigns
// submitted concurrently to one Session, cancelled at arbitrary points,
// or split across checkpoint/resume boundaries must reproduce the
// uninterrupted single-campaign run bit-identically — pinned here by
// byte-comparing the saved raw stores (save() writes exact
// shortest-round-trip doubles in canonical item order, so byte equality
// is sample-level bit equality).

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "ulpdream/campaign/engine.hpp"
#include "ulpdream/campaign/scenario.hpp"
#include "ulpdream/campaign/session.hpp"
#include "ulpdream/campaign/store_reader.hpp"
#include "ulpdream/ecg/database.hpp"
#include "ulpdream/sim/parallel_sweep.hpp"
#include "ulpdream/sim/runner.hpp"
#include "ulpdream/sim/voltage_sweep.hpp"

namespace ulpdream::campaign {
namespace {

/// Small, fast grid (1 app x 2 EMTs x 2 voltages x 1 record x reps).
CampaignSpec small_spec(std::uint64_t seed, std::size_t reps = 4) {
  CampaignSpec spec;
  spec.apps = {"dwt"};
  spec.emts = {"none", "dream"};
  spec.voltages = {0.7, 0.8};
  spec.records = {RecordAxis{ecg::Pathology::kNormalSinus, 1.0, 7}};
  spec.repetitions = reps;
  spec.seed = seed;
  return spec.normalized();
}

std::string save_bytes(const ResultStore& store) {
  std::ostringstream os;
  store.save(os);
  return os.str();
}

ResultStore load_bytes(const std::string& bytes, const CampaignSpec& spec) {
  std::istringstream is(bytes);
  return ResultStore::load(is, spec);
}

/// The uninterrupted single-campaign reference: blocking engine, one
/// thread — the baseline every interleaving must reproduce.
std::string reference_bytes(const CampaignSpec& spec) {
  const CampaignEngine engine(energy::SystemEnergyModel(), 1);
  return save_bytes(engine.run(spec));
}

TEST(Session, ConcurrentSubmitsMatchSerialRunsBitIdentically) {
  // Three different campaigns interleaved item-by-item on one pool; each
  // store must equal its isolated serial run byte-for-byte.
  const std::vector<CampaignSpec> specs = {
      small_spec(2016), small_spec(77, 3), small_spec(424242, 5)};

  Session session(energy::SystemEnergyModel(), 4);
  std::vector<CampaignHandle> handles;
  handles.reserve(specs.size());
  for (const CampaignSpec& spec : specs) {
    handles.push_back(session.submit(spec));
  }
  for (std::size_t i = 0; i < specs.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "campaign " << i);
    const ResultStore store = handles[i].wait();
    EXPECT_TRUE(store.complete());
    EXPECT_EQ(save_bytes(store), reference_bytes(specs[i]));
  }
}

TEST(Session, ThreadCountNeverChangesTheStore) {
  const CampaignSpec spec = small_spec(2016);
  const std::string reference = reference_bytes(spec);
  for (const unsigned threads : {1u, 4u, 8u}) {
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    Session session(energy::SystemEnergyModel(), threads);
    EXPECT_EQ(save_bytes(session.submit(spec).wait()), reference);
  }
}

TEST(Session, ShardsSubmittedConcurrentlyMergeToTheFullStore) {
  const CampaignSpec spec = small_spec(2016);
  Session session(energy::SystemEnergyModel(), 4);
  SubmitOptions shard0;
  shard0.shard = Shard{0, 2};
  SubmitOptions shard1;
  shard1.shard = Shard{1, 2};
  CampaignHandle h0 = session.submit(spec, shard0);
  CampaignHandle h1 = session.submit(spec, shard1);

  ResultStore merged(spec);
  merged.merge(h0.wait());
  merged.merge(h1.wait());
  ASSERT_TRUE(merged.complete());
  EXPECT_EQ(save_bytes(merged), reference_bytes(spec));
}

TEST(Session, CancelIsItemGranularAndResumableToTheIdenticalStore) {
  const CampaignSpec spec = small_spec(2016, 6);  // 12 items
  const std::string reference = reference_bytes(spec);

  Session session(energy::SystemEnergyModel(), 2);
  SubmitOptions options;
  // Cancel from the observer after the first completed item — the
  // sanctioned "stop after N" idiom; the callback receives the job's
  // own handle, so no caller-side handle plumbing (or racing) needed.
  std::atomic<std::size_t> streamed{0};
  options.on_item = [&](const CampaignHandle& h, const WorkItem&,
                        std::span<const Sample>) {
    if (++streamed == 1) h.cancel();
  };
  const CampaignHandle handle = session.submit(spec, options);
  const ResultStore partial = handle.wait();

  EXPECT_TRUE(handle.progress().cancelled);
  EXPECT_GE(partial.items_done(), 1u);
  ASSERT_FALSE(partial.complete());  // 12 items, cancel at 1, <=2 in flight

  // Every recorded item must already be bit-identical to the reference
  // (no torn or partially-recorded items)...
  // ...and resubmitting with resume_from in a fresh session completes
  // the grid to the exact uninterrupted bytes.
  Session fresh(energy::SystemEnergyModel(), 4);
  SubmitOptions resume;
  resume.resume_from = &partial;
  const ResultStore completed = fresh.submit(spec, resume).wait();
  ASSERT_TRUE(completed.complete());
  EXPECT_EQ(save_bytes(completed), reference);
}

TEST(Session, EveryCheckpointResumesToTheIdenticalStore) {
  const CampaignSpec spec = small_spec(2016, 5);  // 10 items
  const std::string reference = reference_bytes(spec);

  // Checkpoint after every item, capturing each snapshot's bytes — i.e.
  // every possible interruption point of this run.
  std::vector<std::string> checkpoints;
  {
    Session session(energy::SystemEnergyModel(), 4);
    SubmitOptions options;
    options.checkpoint_every = 1;
    options.on_checkpoint = [&](const ResultStore& snapshot) {
      checkpoints.push_back(save_bytes(snapshot));
    };
    const ResultStore store = session.submit(spec, options).wait();
    EXPECT_EQ(save_bytes(store), reference);
  }
  ASSERT_EQ(checkpoints.size(), spec.item_count());

  // Resume from the first, a middle and the last checkpoint, each loaded
  // from bytes as a fresh process would.
  for (const std::size_t at : {std::size_t{0}, checkpoints.size() / 2,
                               checkpoints.size() - 1}) {
    SCOPED_TRACE(testing::Message() << "interrupted after checkpoint " << at);
    const ResultStore snapshot = load_bytes(checkpoints[at], spec);
    EXPECT_EQ(snapshot.items_done(), at + 1);

    Session session(energy::SystemEnergyModel(), 4);
    SubmitOptions resume;
    resume.resume_from = &snapshot;
    const CampaignHandle handle = session.submit(spec, resume);
    const ResultStore completed = handle.wait();
    ASSERT_TRUE(completed.complete());
    EXPECT_EQ(save_bytes(completed), reference);
    // The resumed run executed only the missing items.
    EXPECT_EQ(handle.progress().items_resumed, at + 1);
  }
}

TEST(Session, ColumnarCheckpointResumesToTheIdenticalStore) {
  // The out-of-core sibling of EveryCheckpointResumesToTheIdenticalStore:
  // checkpoints persisted with save_columnar, reopened through the
  // auto-detecting StoreReader as a fresh process would, must complete to
  // the uninterrupted run bit-identically.
  const CampaignSpec spec = small_spec(2016, 5);  // 10 items
  const std::string reference = reference_bytes(spec);

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "ulpdream_columnar_ckpt";
  std::filesystem::create_directories(dir);
  std::vector<std::string> checkpoint_paths;
  {
    Session session(energy::SystemEnergyModel(), 4);
    SubmitOptions options;
    options.checkpoint_every = 1;
    options.on_checkpoint = [&](const ResultStore& snapshot) {
      const std::string path =
          (dir / ("ckpt" + std::to_string(checkpoint_paths.size()) + ".col"))
              .string();
      snapshot.save_columnar(path);
      checkpoint_paths.push_back(path);
    };
    const ResultStore store = session.submit(spec, options).wait();
    EXPECT_EQ(save_bytes(store), reference);
  }
  ASSERT_EQ(checkpoint_paths.size(), spec.item_count());

  for (const std::size_t at : {std::size_t{0}, checkpoint_paths.size() / 2,
                               checkpoint_paths.size() - 1}) {
    SCOPED_TRACE(testing::Message() << "interrupted after checkpoint " << at);
    const StoreReader reader = StoreReader::open(checkpoint_paths[at], spec);
    EXPECT_EQ(reader.format(), StoreFormat::kColumnar);
    const ResultStore snapshot = reader.materialize();
    EXPECT_EQ(snapshot.items_done(), at + 1);

    Session session(energy::SystemEnergyModel(), 4);
    SubmitOptions resume;
    resume.resume_from = &snapshot;
    const CampaignHandle handle = session.submit(spec, resume);
    const ResultStore completed = handle.wait();
    ASSERT_TRUE(completed.complete());
    EXPECT_EQ(save_bytes(completed), reference);
    EXPECT_EQ(handle.progress().items_resumed, at + 1);
  }
  std::filesystem::remove_all(dir);
}

TEST(Session, SaveAtomicPublishesTheExactByteStreamAndCleansItsStaging) {
  const CampaignSpec spec = small_spec(2016);
  const CampaignEngine engine(energy::SystemEnergyModel(), 1);
  const ResultStore store = engine.run(spec);
  const std::string reference = save_bytes(store);

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "ulpdream_session_test";
  std::filesystem::create_directories(dir);
  const std::filesystem::path path = dir / "run.store";

  // Fresh publish and an overwrite of an existing checkpoint both go
  // through the staged rename.
  for (int round = 0; round < 2; ++round) {
    SCOPED_TRACE(testing::Message() << "round " << round);
    store.save_atomic(path.string());
    std::ifstream f(path, std::ios::binary);
    std::stringstream bytes;
    bytes << f.rdbuf();
    EXPECT_EQ(bytes.str(), reference);
    EXPECT_EQ(save_bytes(load_bytes(bytes.str(), spec)), reference);
  }
  // No staging file survives a successful publish (pid-suffixed or not).
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    EXPECT_EQ(entry.path().filename().string().find(".tmp"),
              std::string::npos)
        << entry.path();
  }
  // A failed publish (unwritable target directory) throws and leaves no
  // partial file behind at the destination name.
  const std::filesystem::path bad =
      dir / "missing_subdir" / "run.store";
  EXPECT_THROW(store.save_atomic(bad.string()), std::runtime_error);
  EXPECT_FALSE(std::filesystem::exists(bad));
  std::filesystem::remove_all(dir);
}

TEST(Session, ObserverStreamsEveryItemExactlyOnceWithItsExactSamples) {
  const CampaignSpec spec = small_spec(2016);
  Session session(energy::SystemEnergyModel(), 4);

  // Callbacks are serialized by the job lock, so a plain map is safe.
  std::map<std::size_t, std::vector<Sample>> streamed;
  SubmitOptions options;
  options.on_item = [&](const CampaignHandle&, const WorkItem& item,
                        std::span<const Sample> s) {
    const bool fresh =
        streamed.emplace(item.index, std::vector<Sample>(s.begin(), s.end()))
            .second;
    EXPECT_TRUE(fresh) << "item " << item.index << " streamed twice";
  };
  const ResultStore store = session.submit(spec, options).wait();

  // Complete: every item streamed exactly once...
  ASSERT_EQ(streamed.size(), spec.item_count());
  // ...with samples identical to the recorded store: a store rebuilt
  // purely from the stream is byte-identical.
  ResultStore rebuilt(spec);
  for (const WorkItem& item : expand(spec)) {
    rebuilt.record_item(item, streamed.at(item.index));
  }
  for (std::size_t ri = 0; ri < spec.records.size(); ++ri) {
    for (std::size_t ai = 0; ai < spec.apps.size(); ++ai) {
      rebuilt.set_max_snr(ri, ai, store.max_snr_db(ri, ai));
    }
  }
  EXPECT_EQ(save_bytes(rebuilt), save_bytes(store));
}

TEST(Session, SerialObserverSeesCanonicalItemOrder) {
  const CampaignSpec spec = small_spec(2016);
  Session session(energy::SystemEnergyModel(), 1);
  std::vector<std::size_t> order;
  SubmitOptions options;
  options.on_item = [&](const CampaignHandle&, const WorkItem& item,
                        std::span<const Sample>) {
    order.push_back(item.index);
  };
  (void)session.submit(spec, options).wait();
  ASSERT_EQ(order.size(), spec.item_count());
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(Session, ResumeRejectsAStoreFromADifferentGrid) {
  const CampaignSpec spec = small_spec(2016);
  CampaignSpec other = spec;
  other.seed = 1;
  const ResultStore wrong(other.normalized());

  Session session(energy::SystemEnergyModel(), 2);
  SubmitOptions resume;
  resume.resume_from = &wrong;
  try {
    (void)session.submit(spec, resume);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("different campaign grid"),
              std::string::npos)
        << e.what();
  }
}

TEST(Session, ProgressReportsCompletionAndPerWorkerThroughput) {
  const CampaignSpec spec = small_spec(2016);
  Session session(energy::SystemEnergyModel(), 3);
  CampaignHandle handle = session.submit(spec);
  (void)handle.wait();

  const Progress p = handle.progress();
  EXPECT_TRUE(p.finished);
  EXPECT_FALSE(p.cancelled);
  EXPECT_EQ(p.items_total, spec.item_count());
  EXPECT_EQ(p.items_done, spec.item_count());
  EXPECT_EQ(p.items_remaining(), 0u);
  EXPECT_EQ(p.items_resumed, 0u);
  EXPECT_GT(p.items_per_second, 0.0);
  EXPECT_GT(p.elapsed_s, 0.0);
  ASSERT_EQ(p.per_worker_items.size(), 3u);
  std::size_t executed = 0;
  for (std::size_t n : p.per_worker_items) executed += n;
  EXPECT_EQ(executed, spec.item_count());
}

TEST(Session, TryResultIsEmptyUntilFinished) {
  const CampaignSpec spec = small_spec(2016, 2);
  Session session(energy::SystemEnergyModel(), 2);
  CampaignHandle handle = session.submit(spec);
  // May or may not be ready yet; once wait() returns it must be.
  (void)handle.wait();
  const auto result = handle.try_result();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->complete());

  // take() moves the store out of the runtime exactly once.
  const ResultStore taken = handle.take();
  EXPECT_TRUE(taken.complete());
  EXPECT_EQ(handle.wait().items_done(), 0u);
}

TEST(Session, ScenarioSubmitsOntoAnAttachedSession) {
  Session session(energy::SystemEnergyModel(), 2);
  Scenario scenario;
  scenario.app("dwt").emt("none").voltage(0.8).repetitions(2).seed(5)
      .session(session);
  const CampaignHandle handle = scenario.submit();
  const ResultStore store = handle.wait();
  EXPECT_TRUE(store.complete());
  // The blocking facade paths agree with the async one.
  EXPECT_EQ(save_bytes(scenario.run()), save_bytes(store));
  EXPECT_EQ(save_bytes(store), reference_bytes(scenario.build_spec()));

  EXPECT_THROW((void)Scenario().app("dwt").submit(), std::logic_error);
}

TEST(Session, ScenarioRunToPersistsInEitherFormatAndReopensIdentically) {
  Scenario scenario;
  scenario.app("dwt").emt("none").voltage(0.8).repetitions(2).seed(5);
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "ulpdream_scenario_run_to";
  std::filesystem::create_directories(dir);

  const ResultStore text_store =
      scenario.run_to((dir / "run.store").string(), StoreFormat::kText);
  const ResultStore col_store = scenario.run_to((dir / "run.col").string(),
                                                StoreFormat::kColumnar);
  EXPECT_EQ(save_bytes(text_store), save_bytes(col_store));

  const CampaignSpec spec = scenario.build_spec();
  const StoreReader text = StoreReader::open((dir / "run.store").string(), spec);
  const StoreReader col = StoreReader::open((dir / "run.col").string(), spec);
  EXPECT_EQ(text.format(), StoreFormat::kText);
  EXPECT_EQ(col.format(), StoreFormat::kColumnar);
  EXPECT_EQ(save_bytes(text.materialize()), save_bytes(text_store));
  EXPECT_EQ(save_bytes(col.materialize()), save_bytes(text_store));
  std::filesystem::remove_all(dir);
}

TEST(Session, SweepsShareTheSessionPoolWithRunningCampaigns) {
  // A voltage sweep scheduled onto the session's pool while a campaign
  // is in flight: both must match their isolated serial baselines.
  const ecg::Record record = ecg::make_default_record(29);
  sim::SweepConfig cfg;
  cfg.voltages = {0.6, 0.7, 0.8};
  cfg.runs = 4;
  cfg.emts = {"none", "dream"};
  const auto app = apps::make_app("dwt");

  sim::ExperimentRunner serial_runner;
  const sim::SweepResult serial =
      sim::run_voltage_sweep(serial_runner, *app, record, cfg);
  const CampaignSpec spec = small_spec(2016);
  const std::string reference = reference_bytes(spec);

  Session session(energy::SystemEnergyModel(), 4);
  const CampaignHandle in_flight = session.submit(spec);
  const sim::ParallelSweepRunner runner(energy::SystemEnergyModel(), 4);
  const sim::SweepResult shared = runner.run(session.pool(), *app, record, cfg);
  const ResultStore store = in_flight.wait();

  EXPECT_EQ(save_bytes(store), reference);
  EXPECT_EQ(shared.max_snr_db, serial.max_snr_db);
  ASSERT_EQ(shared.points.size(), serial.points.size());
  for (std::size_t i = 0; i < serial.points.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "point " << i);
    EXPECT_EQ(shared.points[i].emt, serial.points[i].emt);
    EXPECT_EQ(shared.points[i].voltage, serial.points[i].voltage);
    EXPECT_EQ(shared.points[i].snr_mean_db, serial.points[i].snr_mean_db);
    EXPECT_EQ(shared.points[i].snr_stddev_db, serial.points[i].snr_stddev_db);
    EXPECT_EQ(shared.points[i].snr_p10_db, serial.points[i].snr_p10_db);
    EXPECT_EQ(shared.points[i].energy_mean_j, serial.points[i].energy_mean_j);
    EXPECT_EQ(shared.points[i].corrected_words_mean,
              serial.points[i].corrected_words_mean);
  }
}

}  // namespace
}  // namespace ulpdream::campaign
