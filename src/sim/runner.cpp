#include "ulpdream/sim/runner.hpp"

#include "ulpdream/core/no_protection.hpp"
#include "ulpdream/metrics/quality.hpp"

namespace ulpdream::sim {

ExperimentRunner::ExperimentRunner(energy::SystemEnergyModel energy_model)
    : energy_model_(energy_model) {}

const std::vector<double>& ExperimentRunner::reference(
    const apps::BioApp& app, const ecg::Record& record) {
  // Key by value-identity, not object address: apps are routinely created
  // and destroyed per experiment, and a recycled heap address must not hit
  // a stale cache entry.
  const std::string key = app.name() + "#" +
                          std::to_string(app.input_length()) + "#" +
                          std::to_string(app.footprint_words()) + "|" +
                          record.name + "#" +
                          std::to_string(record.samples.size());
  if (const auto it = cache_.find(key); it != cache_.end()) {
    return it->second;
  }
  std::vector<double> reference;
  if (auto ideal = app.ideal_output(record)) {
    reference = std::move(*ideal);
  } else {
    // Error-free fixed-point run as the reference.
    core::NoProtection none;
    core::MemorySystem system(none);
    reference = app.run(system, record);
  }
  return cache_.emplace(key, std::move(reference)).first->second;
}

RunResult ExperimentRunner::run_once(const apps::BioApp& app,
                                     const ecg::Record& record,
                                     const core::Emt& emt,
                                     const mem::FaultMap* faults, double v) {
  core::MemorySystem system(emt);
  system.attach_faults(faults);

  const std::vector<double> output = app.run(system, record);
  const std::vector<double>& ref = reference(app, record);

  RunResult result;
  result.snr_db = metrics::snr_db(ref, output);
  result.counters = system.counters();
  result.data_accesses = system.data().stats().total();
  if (const auto* safe = system.safe()) {
    result.side_accesses = safe->stats().total();
  }
  result.cycles = 2 * result.data_accesses;
  result.energy = energy_model_.compute(
      emt, v, system.data().stats(),
      system.safe() ? &system.safe()->stats() : nullptr,
      system.data().words(), result.cycles);
  return result;
}

RunResult ExperimentRunner::run_once(const apps::BioApp& app,
                                     const ecg::Record& record,
                                     const std::string& emt_name,
                                     const mem::FaultMap* faults, double v) {
  const auto emt = core::make_emt(emt_name);
  return run_once(app, record, *emt, faults, v);
}

RunResult ExperimentRunner::run_once(const apps::BioApp& app,
                                     const ecg::Record& record,
                                     core::EmtKind kind,
                                     const mem::FaultMap* faults, double v) {
  return run_once(app, record, core::emt_kind_name(kind), faults, v);
}

double ExperimentRunner::max_snr_db(const apps::BioApp& app,
                                    const ecg::Record& record) {
  const core::NoProtection none;
  const RunResult clean = run_once(app, record, none, /*faults=*/nullptr,
                                   mem::VoltageWindow::kNominal);
  return clean.snr_db;
}

}  // namespace ulpdream::sim
