#pragma once
// Shared implementation core for the serial and parallel voltage sweeps.
// Both drivers call the exact same per-voltage accumulation routine with
// the exact same per-voltage RNG seeding, so the parallel sweep is
// bit-identical to the serial one by construction: every voltage index
// owns an independent RNG stream (mix64(seed, vi)) and a disjoint slice
// of the accumulator grid.

#include <cstddef>
#include <vector>

#include "ulpdream/mem/ber_model.hpp"
#include "ulpdream/sim/runner.hpp"
#include "ulpdream/sim/voltage_sweep.hpp"
#include "ulpdream/util/stats.hpp"

namespace ulpdream::sim::internal {

/// Accumulators for one (app, emt, voltage) cell.
struct CellAccum {
  util::RunningStats snr;
  util::QuantileSketch snr_quantiles;
  util::RunningStats energy;
  energy::EnergyBreakdown energy_sum{};
  util::RunningStats corrected;
  util::RunningStats detected;
};

/// Grid of accumulators: grid[ai][vi * emts + ei].
using AccumGrid = std::vector<std::vector<CellAccum>>;

/// Copy of `cfg` with empty voltage/EMT lists replaced by the defaults.
[[nodiscard]] SweepConfig normalize_config(const SweepConfig& cfg);

/// Materializes the config's EMT names through the registry, once per
/// sweep (EMTs are stateless; sharing objects across runs is exact).
[[nodiscard]] std::vector<std::unique_ptr<core::Emt>> make_emts(
    const SweepConfig& cfg);

/// Allocates the accumulator grid for a normalized config.
[[nodiscard]] AccumGrid make_accum_grid(std::size_t apps,
                                        const SweepConfig& cfg);

/// Runs every Monte-Carlo repetition of voltage point `vi` for every
/// (app, EMT) pair, accumulating into `grid[ai][vi * emts + ei]`. The RNG
/// stream depends only on (cfg.seed, vi), and only cells of this `vi` are
/// written — callers may invoke this for distinct `vi` concurrently as
/// long as each call gets its own `runner`.
void accumulate_voltage_point(
    ExperimentRunner& runner,
    const std::vector<const apps::BioApp*>& app_list,
    const ecg::Record& record, const SweepConfig& cfg,
    const std::vector<std::unique_ptr<core::Emt>>& emts,
    const mem::BerModel& ber_model, std::size_t vi, AccumGrid& grid);

/// Reduces a fully-populated grid to per-app SweepResults.
[[nodiscard]] std::vector<SweepResult> finalize_sweep(
    ExperimentRunner& runner,
    const std::vector<const apps::BioApp*>& app_list,
    const ecg::Record& record, const SweepConfig& cfg,
    const mem::BerModel& ber_model, const AccumGrid& grid);

}  // namespace ulpdream::sim::internal
