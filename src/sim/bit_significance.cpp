#include "ulpdream/sim/bit_significance.hpp"

#include <algorithm>

#include "ulpdream/util/stats.hpp"

namespace ulpdream::sim {

BitSignificanceResult run_bit_significance(
    ExperimentRunner& runner, const apps::BioApp& app,
    const std::vector<ecg::Record>& records,
    const BitSignificanceConfig& cfg) {
  BitSignificanceResult result;
  result.app = app.name();

  util::RunningStats max_stats;
  for (const auto& record : records) {
    max_stats.add(runner.max_snr_db(app, record));
  }
  result.max_snr_db = max_stats.mean();

  for (int polarity = 0; polarity < 2; ++polarity) {
    for (int bit = 0; bit < 16; ++bit) {
      const mem::FaultMap map = mem::FaultMap::stuck_bit(
          mem::MemoryGeometry::kWords16, fixed::kSampleBits, bit,
          polarity == 1);
      util::RunningStats stats;
      for (const auto& record : records) {
        const RunResult run = runner.run_once(
            app, record, "none", &map, mem::VoltageWindow::kNominal);
        stats.add(run.snr_db);
      }
      result.snr_db[static_cast<std::size_t>(polarity)]
                   [static_cast<std::size_t>(bit)] = stats.mean();
    }
  }

  for (int polarity = 0; polarity < 2; ++polarity) {
    int up_to = -1;
    // Quality requirement: an absolute 40 dB clinical floor, tightened to
    // ceiling - drop for apps whose own error-free ceiling is below it
    // (e.g. lossy CS) so the summary stays meaningful on their scale.
    const double required =
        std::min(40.0, result.max_snr_db - cfg.tolerance_drop_db);
    for (int bit = 0; bit < 16; ++bit) {
      if (result.snr_db[static_cast<std::size_t>(polarity)]
                       [static_cast<std::size_t>(bit)] >= required) {
        up_to = bit;
      } else {
        break;
      }
    }
    result.tolerated_up_to[static_cast<std::size_t>(polarity)] = up_to;
  }
  return result;
}

}  // namespace ulpdream::sim
