#include "ulpdream/sim/policy_explorer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ulpdream::sim {

PolicyResult explore_policy(const SweepResult& sweep, double threshold_db,
                            QualityCriterion criterion,
                            QualityStatistic statistic) {
  PolicyResult result;
  result.tolerance_db = threshold_db;
  result.required_snr_db = criterion == QualityCriterion::kRelativeDrop
                               ? sweep.max_snr_db - threshold_db
                               : threshold_db;
  const auto quality = [statistic](const SweepPoint& p) {
    return statistic == QualityStatistic::kMean ? p.snr_mean_db
                                                : p.snr_p10_db;
  };

  const SweepPoint* nominal =
      sweep.find("none", mem::VoltageWindow::kNominal);
  if (nominal == nullptr) {
    throw std::invalid_argument(
        "explore_policy: sweep lacks the nominal unprotected point");
  }
  result.nominal_energy_j = nominal->energy_mean_j;

  // Sorted voltage grid (ascending).
  std::vector<double> voltages = sweep.config.voltages;
  std::sort(voltages.begin(), voltages.end());

  for (const std::string& emt : sweep.config.emts) {
    EmtOperatingPoint op;
    op.emt = emt;
    // Deepest voltage such that SNR stays within tolerance at that point
    // and at every shallower point (monotone safety: the policy sweeps the
    // voltage through the range).
    bool all_above = true;
    for (auto it = voltages.rbegin(); it != voltages.rend(); ++it) {
      const SweepPoint* p = sweep.find(emt, *it);
      if (p == nullptr) continue;
      all_above = all_above && (quality(*p) >= result.required_snr_db);
      if (all_above) {
        op.min_safe_voltage = *it;
        op.snr_at_floor_db = quality(*p);
        op.energy_at_floor_j = p->energy_mean_j;
        op.feasible = true;
      } else {
        break;
      }
    }
    if (op.feasible && result.nominal_energy_j > 0.0) {
      op.savings_vs_nominal_frac =
          1.0 - op.energy_at_floor_j / result.nominal_energy_j;
    }
    result.points.push_back(op);
  }

  // Derive the triggering ranges: each EMT covers from its floor up to
  // the floor of the next-weaker technique. "Weaker" is defined by the
  // data — shallower voltage floor (none → dream → ecc on the paper's
  // grids) — so the ladder is independent of the order the sweep config
  // happened to list the EMTs. When two techniques reach the same floor,
  // the cheaper one at that floor owns the band (the policy minimizes
  // protection overhead); the name is the last-resort determinism tie.
  std::vector<const EmtOperatingPoint*> ladder;
  for (const auto& p : result.points) {
    if (p.feasible) ladder.push_back(&p);
  }
  std::sort(ladder.begin(), ladder.end(),
            [](const EmtOperatingPoint* a, const EmtOperatingPoint* b) {
              if (a->min_safe_voltage != b->min_safe_voltage) {
                return a->min_safe_voltage > b->min_safe_voltage;
              }
              if (a->energy_at_floor_j != b->energy_at_floor_j) {
                return a->energy_at_floor_j < b->energy_at_floor_j;
              }
              return a->emt < b->emt;
            });
  // Feasible "none" always heads the ladder: nominal operation needs no
  // protection, so no codec may claim the top band above the unprotected
  // floor — even one whose own floor sits higher (a technique feasible
  // only near nominal must not be triggered where "none" suffices).
  const auto none_it =
      std::find_if(ladder.begin(), ladder.end(),
                   [](const EmtOperatingPoint* p) { return p->emt == "none"; });
  if (none_it != ladder.end()) {
    std::rotate(ladder.begin(), none_it, none_it + 1);
  }

  double upper = mem::VoltageWindow::kNominal + 1e-9;
  for (const EmtOperatingPoint* p : ladder) {
    if (p->min_safe_voltage >= upper) continue;
    result.policy.add_range(p->min_safe_voltage, upper, p->emt);
    upper = p->min_safe_voltage;
  }
  return result;
}

}  // namespace ulpdream::sim
