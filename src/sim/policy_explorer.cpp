#include "ulpdream/sim/policy_explorer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ulpdream::sim {

PolicyResult explore_policy(const SweepResult& sweep, double threshold_db,
                            QualityCriterion criterion,
                            QualityStatistic statistic) {
  PolicyResult result;
  result.tolerance_db = threshold_db;
  result.required_snr_db = criterion == QualityCriterion::kRelativeDrop
                               ? sweep.max_snr_db - threshold_db
                               : threshold_db;
  const auto quality = [statistic](const SweepPoint& p) {
    return statistic == QualityStatistic::kMean ? p.snr_mean_db
                                                : p.snr_p10_db;
  };

  const SweepPoint* nominal =
      sweep.find(core::EmtKind::kNone, mem::VoltageWindow::kNominal);
  if (nominal == nullptr) {
    throw std::invalid_argument(
        "explore_policy: sweep lacks the nominal unprotected point");
  }
  result.nominal_energy_j = nominal->energy_mean_j;

  // Sorted voltage grid (ascending).
  std::vector<double> voltages = sweep.config.voltages;
  std::sort(voltages.begin(), voltages.end());

  for (core::EmtKind emt : sweep.config.emts) {
    EmtOperatingPoint op;
    op.emt = emt;
    // Deepest voltage such that SNR stays within tolerance at that point
    // and at every shallower point (monotone safety: the policy sweeps the
    // voltage through the range).
    bool all_above = true;
    for (auto it = voltages.rbegin(); it != voltages.rend(); ++it) {
      const SweepPoint* p = sweep.find(emt, *it);
      if (p == nullptr) continue;
      all_above = all_above && (quality(*p) >= result.required_snr_db);
      if (all_above) {
        op.min_safe_voltage = *it;
        op.snr_at_floor_db = quality(*p);
        op.energy_at_floor_j = p->energy_mean_j;
        op.feasible = true;
      } else {
        break;
      }
    }
    if (op.feasible && result.nominal_energy_j > 0.0) {
      op.savings_vs_nominal_frac =
          1.0 - op.energy_at_floor_j / result.nominal_energy_j;
    }
    result.points.push_back(op);
  }

  // Derive the triggering ranges: each EMT covers from its floor up to the
  // floor of the next-weaker technique (paper's three-range scheme).
  const auto find_point = [&](core::EmtKind k) -> const EmtOperatingPoint* {
    for (const auto& p : result.points) {
      if (p.emt == k && p.feasible) return &p;
    }
    return nullptr;
  };
  const EmtOperatingPoint* none = find_point(core::EmtKind::kNone);
  const EmtOperatingPoint* dream = find_point(core::EmtKind::kDream);
  const EmtOperatingPoint* ecc = find_point(core::EmtKind::kEccSecDed);

  double upper = mem::VoltageWindow::kNominal + 1e-9;
  if (none != nullptr) {
    result.policy.add_range(none->min_safe_voltage, upper,
                            core::EmtKind::kNone);
    upper = none->min_safe_voltage;
  }
  if (dream != nullptr && dream->min_safe_voltage < upper) {
    result.policy.add_range(dream->min_safe_voltage, upper,
                            core::EmtKind::kDream);
    upper = dream->min_safe_voltage;
  }
  if (ecc != nullptr && ecc->min_safe_voltage < upper) {
    result.policy.add_range(ecc->min_safe_voltage, upper,
                            core::EmtKind::kEccSecDed);
  }
  return result;
}

}  // namespace ulpdream::sim
