#pragma once
// Sec. VI-C experiment: quality-constrained voltage/EMT policy search.
// Given an application's sweep results and an output-degradation tolerance
// (the paper uses -1 dB for DWT), find for each EMT the deepest voltage
// whose mean SNR still meets the requirement, derive the triggering ranges
// and the energy saved at each range's floor relative to nominal-voltage
// unprotected operation.

#include <string>
#include <vector>

#include "ulpdream/core/adaptive.hpp"
#include "ulpdream/sim/voltage_sweep.hpp"

namespace ulpdream::sim {

struct EmtOperatingPoint {
  std::string emt;  ///< registry name
  double min_safe_voltage = 0.0;  ///< deepest V meeting the requirement
  double snr_at_floor_db = 0.0;
  double energy_at_floor_j = 0.0;
  double savings_vs_nominal_frac = 0.0;  ///< 1 - E(floor)/E(0.9, none)
  bool feasible = false;
};

struct PolicyResult {
  double tolerance_db = 1.0;
  double required_snr_db = 0.0;
  double nominal_energy_j = 0.0;  ///< E(0.9 V, no protection)
  std::vector<EmtOperatingPoint> points;
  core::AdaptivePolicy policy;  ///< derived voltage-range policy
};

/// Quality criterion for the voltage floor search.
///  - kRelativeDrop: mean SNR must stay within `threshold_db` of the
///    error-free maximum (the paper's "-1 dB" DWT example). Strict when
///    the implementation's quantization ceiling is high.
///  - kAbsoluteSnr: mean SNR must stay above `threshold_db` outright (the
///    clinical-requirement form; the paper uses 35/40 dB for CS quality).
enum class QualityCriterion { kRelativeDrop, kAbsoluteSnr };

/// Which SNR statistic the requirement is evaluated on:
///  - kMean: the paper's plotted statistic (average of the Monte-Carlo
///    runs). Forgiving: a few catastrophic runs barely move it.
///  - kP10: 10th percentile — 90% of runs must meet the requirement. The
///    "reliable medical output" reading of Sec. VI-C; this is the
///    statistic that reproduces the paper's range ordering robustly.
enum class QualityStatistic { kMean, kP10 };

/// Derives the policy from a completed sweep. The sweep must contain the
/// kNone EMT at nominal voltage (used as the savings baseline).
[[nodiscard]] PolicyResult explore_policy(
    const SweepResult& sweep, double threshold_db,
    QualityCriterion criterion = QualityCriterion::kRelativeDrop,
    QualityStatistic statistic = QualityStatistic::kMean);

}  // namespace ulpdream::sim
