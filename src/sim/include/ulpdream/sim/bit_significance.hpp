#pragma once
// Fig. 2 experiment: bit-significance characterization. For each data-bit
// position 0..15 and each stuck value (0, 1), every word of the
// application's data memory has that bit stuck; output SNR is averaged
// over a corpus of records with different pathologies. No EMT is applied —
// this is the pre-DREAM characterization of Sec. III.

#include <array>
#include <string>
#include <vector>

#include "ulpdream/apps/app.hpp"
#include "ulpdream/sim/runner.hpp"

namespace ulpdream::sim {

struct BitSignificanceResult {
  std::string app;  ///< registry name
  /// snr_db[polarity][bit]: polarity 0 = stuck-at-0, 1 = stuck-at-1.
  std::array<std::array<double, 16>, 2> snr_db{};
  /// Highest bit position (scanning LSB up) still meeting `tolerance_db`
  /// below the app's max SNR, per polarity; -1 if none.
  std::array<int, 2> tolerated_up_to{};
  double max_snr_db = 0.0;
};

struct BitSignificanceConfig {
  /// Quality requirement for the "tolerated up to bit k" summary. The
  /// paper uses CS's 35 dB requirement; for cross-app comparability we
  /// evaluate a drop of `tolerance_drop_db` below each app's ceiling.
  double tolerance_drop_db = 3.0;
};

[[nodiscard]] BitSignificanceResult run_bit_significance(
    ExperimentRunner& runner, const apps::BioApp& app,
    const std::vector<ecg::Record>& records,
    const BitSignificanceConfig& cfg = {});

}  // namespace ulpdream::sim
