#pragma once
// Fig. 4 + Sec. VI-B experiment: Monte-Carlo voltage sweep. For every
// supply point, `runs` random fault maps are drawn at BER(V); each map is
// reused across all EMTs and applications at that point ("all the EMTs are
// tested reusing the same set of error locations/mappings", Sec. V).
// Outputs per (app, EMT, V): mean SNR with spread, mean energy breakdown,
// and codec correction statistics.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ulpdream/apps/app.hpp"
#include "ulpdream/mem/ber_model.hpp"
#include "ulpdream/sim/runner.hpp"
#include "ulpdream/util/stats.hpp"

namespace ulpdream::sim {

struct SweepConfig {
  std::vector<double> voltages;      ///< default: 0.50 .. 0.90 step 0.05
  std::size_t runs = 200;            ///< Monte-Carlo maps per point (paper)
  std::uint64_t seed = 2016;
  /// Registry names resolved through mem::ber_model_registry() and
  /// core::emt_registry() — user-registered components are addressable
  /// here exactly like the built-ins.
  std::string ber_model = "log-linear";
  std::vector<std::string> emts;     ///< default: none, dream, ecc_secded
  bool scramble_addresses = false;   ///< D3 ablation knob

  [[nodiscard]] static SweepConfig defaults();
};

struct SweepPoint {
  std::string app;  ///< registry names
  std::string emt;
  double voltage = 0.0;
  double ber = 0.0;
  double snr_mean_db = 0.0;
  double snr_stddev_db = 0.0;
  double snr_min_db = 0.0;
  /// 10th-percentile SNR across the Monte-Carlo runs: the "reliable
  /// medical output" statistic (90% of runs do at least this well).
  double snr_p10_db = 0.0;
  double energy_mean_j = 0.0;
  energy::EnergyBreakdown energy_mean{};
  double corrected_words_mean = 0.0;
  double detected_uncorrectable_mean = 0.0;
};

struct SweepResult {
  SweepConfig config;
  double max_snr_db = 0.0;  ///< per-app dashed line (clean fixed vs golden)
  std::vector<SweepPoint> points;

  [[nodiscard]] const SweepPoint* find(std::string_view emt, double v) const;
};

/// Runs the sweep for one application over one record.
[[nodiscard]] SweepResult run_voltage_sweep(ExperimentRunner& runner,
                                            const apps::BioApp& app,
                                            const ecg::Record& record,
                                            const SweepConfig& cfg);

/// Multi-app variant sharing fault maps across apps and EMTs per
/// (voltage, run) — the exact fairness protocol of Sec. V. Returns one
/// SweepResult per app, in the order given.
[[nodiscard]] std::vector<SweepResult> run_voltage_sweep_multi(
    ExperimentRunner& runner,
    const std::vector<const apps::BioApp*>& app_list,
    const ecg::Record& record, const SweepConfig& cfg);

}  // namespace ulpdream::sim
