#pragma once
// Multi-threaded Monte-Carlo voltage sweep. Every voltage point of the
// sweep owns an independent, deterministically-seeded RNG stream
// (util::mix64(cfg.seed, voltage_index)) and a disjoint slice of the
// result grid, so voltage points can be fanned across a std::thread pool
// with no synchronisation on the hot path. Results are bit-identical to
// the serial run_voltage_sweep* loop for any thread count — the parallel
// and serial drivers execute the same per-voltage routine in the same
// per-cell accumulation order.
//
// Each worker thread runs its own ExperimentRunner (the runner's golden
// reference cache is not thread-safe); references are recomputed per
// thread but are deterministic, so this does not affect results.

#include <cstddef>
#include <vector>

#include "ulpdream/sim/voltage_sweep.hpp"
#include "ulpdream/util/cli.hpp"

namespace ulpdream::sim {

class ParallelSweepRunner {
 public:
  /// `threads` == 0 picks std::thread::hardware_concurrency().
  explicit ParallelSweepRunner(
      energy::SystemEnergyModel energy_model = energy::SystemEnergyModel(),
      unsigned threads = 0);

  /// Builds a runner from a driver's `--threads N` flag (0 or a negative
  /// value selects all hardware threads) — the shared CLI convention of
  /// the bench/example sweep drivers.
  [[nodiscard]] static ParallelSweepRunner from_cli(
      const util::Cli& cli,
      energy::SystemEnergyModel energy_model = energy::SystemEnergyModel());

  /// Parallel equivalent of run_voltage_sweep_multi: shares fault maps
  /// across apps and EMTs per (voltage, run), fans voltage points across
  /// the pool. Bit-identical to the serial loop for any thread count.
  [[nodiscard]] std::vector<SweepResult> run_multi(
      const std::vector<const apps::BioApp*>& app_list,
      const ecg::Record& record, const SweepConfig& cfg) const;

  /// Parallel equivalent of run_voltage_sweep (single app).
  [[nodiscard]] SweepResult run(const apps::BioApp& app,
                                const ecg::Record& record,
                                const SweepConfig& cfg) const;

  [[nodiscard]] unsigned threads() const { return threads_; }
  [[nodiscard]] const energy::SystemEnergyModel& energy_model() const {
    return energy_model_;
  }

 private:
  energy::SystemEnergyModel energy_model_;
  unsigned threads_ = 1;
};

}  // namespace ulpdream::sim
