#pragma once
// Multi-threaded Monte-Carlo voltage sweep. Every voltage point of the
// sweep owns an independent, deterministically-seeded RNG stream
// (util::mix64(cfg.seed, voltage_index)) and a disjoint slice of the
// result grid, so voltage points fan across a util::WorkPool with no
// synchronisation on the hot path. Results are bit-identical to the
// serial run_voltage_sweep* loop for any thread count — the parallel and
// serial drivers execute the same per-voltage routine in the same
// per-cell accumulation order.
//
// The blocking run()/run_multi() entry points are synchronous shims that
// stand up a transient pool; the pool-taking overloads schedule the
// sweep onto a shared pool instead — pass campaign::Session::pool() to
// interleave sweeps with running campaigns on one runtime.
//
// Each worker thread runs its own ExperimentRunner (the runner's golden
// reference cache is not thread-safe); references are recomputed per
// thread but are deterministic, so this does not affect results.

#include <cstddef>
#include <vector>

#include "ulpdream/sim/voltage_sweep.hpp"
#include "ulpdream/util/cli.hpp"
#include "ulpdream/util/work_pool.hpp"

namespace ulpdream::sim {

class ParallelSweepRunner {
 public:
  /// `threads` == 0 picks std::thread::hardware_concurrency().
  explicit ParallelSweepRunner(
      energy::SystemEnergyModel energy_model = energy::SystemEnergyModel(),
      unsigned threads = 0);

  /// Builds a runner from a driver's `--threads N` flag (0 or a negative
  /// value selects all hardware threads) — the shared CLI convention of
  /// the bench/example sweep drivers.
  [[nodiscard]] static ParallelSweepRunner from_cli(
      const util::Cli& cli,
      energy::SystemEnergyModel energy_model = energy::SystemEnergyModel());

  /// Parallel equivalent of run_voltage_sweep_multi: shares fault maps
  /// across apps and EMTs per (voltage, run), fans voltage points across
  /// a transient pool of up to threads() workers. Bit-identical to the
  /// serial loop for any thread count.
  [[nodiscard]] std::vector<SweepResult> run_multi(
      const std::vector<const apps::BioApp*>& app_list,
      const ecg::Record& record, const SweepConfig& cfg) const;

  /// Parallel equivalent of run_voltage_sweep (single app).
  [[nodiscard]] SweepResult run(const apps::BioApp& app,
                                const ecg::Record& record,
                                const SweepConfig& cfg) const;

  /// Same sweep, scheduled onto a shared pool (e.g. a campaign
  /// Session's): voltage points interleave with whatever else the pool
  /// is running, results identical to the transient-pool overloads.
  /// Blocks until the sweep's own points are done.
  [[nodiscard]] std::vector<SweepResult> run_multi(
      util::WorkPool& pool, const std::vector<const apps::BioApp*>& app_list,
      const ecg::Record& record, const SweepConfig& cfg) const;
  [[nodiscard]] SweepResult run(util::WorkPool& pool, const apps::BioApp& app,
                                const ecg::Record& record,
                                const SweepConfig& cfg) const;

  [[nodiscard]] unsigned threads() const { return threads_; }
  [[nodiscard]] const energy::SystemEnergyModel& energy_model() const {
    return energy_model_;
  }

 private:
  energy::SystemEnergyModel energy_model_;
  unsigned threads_ = 1;
};

}  // namespace ulpdream::sim
