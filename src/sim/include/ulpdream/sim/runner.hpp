#pragma once
// ExperimentRunner: executes one application run on the simulated device —
// EMT-encoded buffers in the faulty memory, SNR against the application's
// golden reference, access-trace energy integration. This is the
// reproduction of the paper's instrumented VirtualSOC flow (Sec. V).
//
// Cycle model: the node issues one memory transaction per cycle plus one
// compute cycle per access (load-op-store style inner loops), i.e.
// cycles = 2 * data-memory accesses. The side memory is read in parallel
// with the data array (as in the DREAM hardware of Fig. 3) and adds no
// cycles. Leakage is integrated over this run time at 200 MHz.

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ulpdream/apps/app.hpp"
#include "ulpdream/core/factory.hpp"
#include "ulpdream/core/protected_buffer.hpp"
#include "ulpdream/energy/energy_model.hpp"
#include "ulpdream/mem/ber_model.hpp"
#include "ulpdream/mem/fault_map.hpp"

namespace ulpdream::sim {

struct RunResult {
  double snr_db = 0.0;
  energy::EnergyBreakdown energy{};
  core::CodecCounters counters{};
  std::uint64_t data_accesses = 0;
  std::uint64_t side_accesses = 0;
  std::uint64_t cycles = 0;
};

class ExperimentRunner {
 public:
  explicit ExperimentRunner(
      energy::SystemEnergyModel energy_model = energy::SystemEnergyModel());

  /// The SNR reference for (app, record): the app's double-precision
  /// golden model when it has one, otherwise the error-free fixed-point
  /// run. Cached per (app kind, record name).
  [[nodiscard]] const std::vector<double>& reference(
      const apps::BioApp& app, const ecg::Record& record);

  /// One run of `app` under `emt` with `faults` attached (may be null for
  /// an error-free run). `v` is the data-array supply for the energy
  /// model; fault content must already be consistent with it.
  [[nodiscard]] RunResult run_once(const apps::BioApp& app,
                                   const ecg::Record& record,
                                   const core::Emt& emt,
                                   const mem::FaultMap* faults, double v);

  /// Convenience: resolve the EMT by registry name and run.
  [[nodiscard]] RunResult run_once(const apps::BioApp& app,
                                   const ecg::Record& record,
                                   const std::string& emt_name,
                                   const mem::FaultMap* faults, double v);

  /// Legacy convenience: run with a kind (instantiates the built-in EMT
  /// tagged with it).
  [[nodiscard]] RunResult run_once(const apps::BioApp& app,
                                   const ecg::Record& record,
                                   core::EmtKind kind,
                                   const mem::FaultMap* faults, double v);

  /// Maximum SNR ("dashed line" of Fig. 4): error-free fixed-point run
  /// against the golden reference.
  [[nodiscard]] double max_snr_db(const apps::BioApp& app,
                                  const ecg::Record& record);

  [[nodiscard]] const energy::SystemEnergyModel& energy_model() const {
    return energy_model_;
  }

 private:
  energy::SystemEnergyModel energy_model_;
  // Keyed on (app identity, record identity); node-based map so returned
  // references stay valid across inserts. Campaigns look the reference up
  // once per run over grids of thousands of cells — a linear scan here
  // made large campaigns quadratic in distinct (app, record) pairs.
  std::unordered_map<std::string, std::vector<double>> cache_;
};

}  // namespace ulpdream::sim
