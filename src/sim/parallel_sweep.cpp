#include "ulpdream/sim/parallel_sweep.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "sweep_internal.hpp"

namespace ulpdream::sim {

ParallelSweepRunner::ParallelSweepRunner(energy::SystemEnergyModel energy_model,
                                         unsigned threads)
    : energy_model_(energy_model), threads_(threads) {
  if (threads_ == 0) {
    threads_ = std::max(1u, std::thread::hardware_concurrency());
  }
}

ParallelSweepRunner ParallelSweepRunner::from_cli(
    const util::Cli& cli, energy::SystemEnergyModel energy_model) {
  const std::int64_t threads = std::max<std::int64_t>(
      0, cli.get_int("threads", 0));
  return ParallelSweepRunner(energy_model, static_cast<unsigned>(threads));
}

std::vector<SweepResult> ParallelSweepRunner::run_multi(
    const std::vector<const apps::BioApp*>& app_list,
    const ecg::Record& record, const SweepConfig& base_cfg) const {
  const SweepConfig cfg = internal::normalize_config(base_cfg);
  const auto ber_model = mem::make_ber_model(cfg.ber_model);

  internal::AccumGrid grid = internal::make_accum_grid(app_list.size(), cfg);

  const unsigned workers = static_cast<unsigned>(std::min<std::size_t>(
      threads_, std::max<std::size_t>(1, cfg.voltages.size())));

  // Work-stealing over voltage indices: each index owns an independent
  // RNG stream and a disjoint slice of `grid`, so claiming indices via an
  // atomic counter is the only synchronisation the hot path needs.
  std::atomic<std::size_t> next_vi{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  auto worker = [&]() {
    ExperimentRunner runner(energy_model_);
    try {
      for (;;) {
        const std::size_t vi = next_vi.fetch_add(1, std::memory_order_relaxed);
        if (vi >= cfg.voltages.size()) break;
        internal::accumulate_voltage_point(runner, app_list, record, cfg,
                                           *ber_model, vi, grid);
      }
    } catch (...) {
      // Park the claim counter past the end so the other workers stop at
      // their next claim instead of draining the remaining points.
      next_vi.store(cfg.voltages.size(), std::memory_order_relaxed);
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
  };

  if (workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);

  ExperimentRunner finalize_runner(energy_model_);
  return internal::finalize_sweep(finalize_runner, app_list, record, cfg,
                                  *ber_model, grid);
}

SweepResult ParallelSweepRunner::run(const apps::BioApp& app,
                                     const ecg::Record& record,
                                     const SweepConfig& cfg) const {
  const std::vector<const apps::BioApp*> one = {&app};
  return run_multi(one, record, cfg).front();
}

}  // namespace ulpdream::sim
