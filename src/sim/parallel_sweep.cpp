#include "ulpdream/sim/parallel_sweep.hpp"

#include <algorithm>
#include <thread>

#include "sweep_internal.hpp"
#include "ulpdream/util/parallel.hpp"

namespace ulpdream::sim {

ParallelSweepRunner::ParallelSweepRunner(energy::SystemEnergyModel energy_model,
                                         unsigned threads)
    : energy_model_(energy_model), threads_(threads) {
  if (threads_ == 0) {
    threads_ = std::max(1u, std::thread::hardware_concurrency());
  }
}

ParallelSweepRunner ParallelSweepRunner::from_cli(
    const util::Cli& cli, energy::SystemEnergyModel energy_model) {
  const std::int64_t threads = std::max<std::int64_t>(
      0, cli.get_int("threads", 0));
  return ParallelSweepRunner(energy_model, static_cast<unsigned>(threads));
}

namespace {

/// Shared sweep body: one per-voltage index job, executed by whatever
/// loop the caller supplies (transient pool, shared pool, inline). Each
/// voltage index owns an independent RNG stream and a disjoint slice of
/// `grid`, so the loop's scheduling never affects results. EMT objects
/// are stateless and shared read-only across workers.
template <typename RunLoop>
std::vector<SweepResult> sweep_with(
    const energy::SystemEnergyModel& energy_model,
    const std::vector<const apps::BioApp*>& app_list,
    const ecg::Record& record, const SweepConfig& base_cfg,
    RunLoop&& run_loop) {
  const SweepConfig cfg = internal::normalize_config(base_cfg);
  const auto ber_model = mem::make_ber_model(cfg.ber_model);
  const auto emts = internal::make_emts(cfg);

  internal::AccumGrid grid = internal::make_accum_grid(app_list.size(), cfg);

  run_loop(cfg.voltages.size(), [&] {
    return [&, runner = ExperimentRunner(energy_model)](
               std::size_t vi) mutable {
      internal::accumulate_voltage_point(runner, app_list, record, cfg, emts,
                                         *ber_model, vi, grid);
    };
  });

  ExperimentRunner finalize_runner(energy_model);
  return internal::finalize_sweep(finalize_runner, app_list, record, cfg,
                                  *ber_model, grid);
}

}  // namespace

std::vector<SweepResult> ParallelSweepRunner::run_multi(
    const std::vector<const apps::BioApp*>& app_list,
    const ecg::Record& record, const SweepConfig& cfg) const {
  return sweep_with(energy_model_, app_list, record, cfg,
                    [this](std::size_t count, auto&& factory) {
                      util::parallel_for_index(count, threads_, factory);
                    });
}

std::vector<SweepResult> ParallelSweepRunner::run_multi(
    util::WorkPool& pool, const std::vector<const apps::BioApp*>& app_list,
    const ecg::Record& record, const SweepConfig& cfg) const {
  return sweep_with(energy_model_, app_list, record, cfg,
                    [&pool](std::size_t count, auto&& factory) {
                      pool.run(count, factory);
                    });
}

SweepResult ParallelSweepRunner::run(const apps::BioApp& app,
                                     const ecg::Record& record,
                                     const SweepConfig& cfg) const {
  const std::vector<const apps::BioApp*> one = {&app};
  return run_multi(one, record, cfg).front();
}

SweepResult ParallelSweepRunner::run(util::WorkPool& pool,
                                     const apps::BioApp& app,
                                     const ecg::Record& record,
                                     const SweepConfig& cfg) const {
  const std::vector<const apps::BioApp*> one = {&app};
  return run_multi(pool, one, record, cfg).front();
}

}  // namespace ulpdream::sim
