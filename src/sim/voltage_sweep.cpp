#include "ulpdream/sim/voltage_sweep.hpp"

#include <algorithm>
#include <cmath>

#include "sweep_internal.hpp"
#include "ulpdream/core/ecc_secded.hpp"

namespace ulpdream::sim {

namespace internal {

SweepConfig normalize_config(const SweepConfig& cfg) {
  SweepConfig out = cfg;
  if (out.voltages.empty()) out.voltages = SweepConfig::defaults().voltages;
  if (out.emts.empty()) out.emts = core::paper_emt_names();
  return out;
}

std::vector<std::unique_ptr<core::Emt>> make_emts(const SweepConfig& cfg) {
  std::vector<std::unique_ptr<core::Emt>> out;
  out.reserve(cfg.emts.size());
  for (const std::string& name : cfg.emts) out.push_back(core::make_emt(name));
  return out;
}

AccumGrid make_accum_grid(std::size_t apps, const SweepConfig& cfg) {
  AccumGrid grid(apps);
  for (auto& a : grid) {
    a.resize(cfg.voltages.size() * cfg.emts.size());
  }
  return grid;
}

void accumulate_voltage_point(
    ExperimentRunner& runner,
    const std::vector<const apps::BioApp*>& app_list,
    const ecg::Record& record, const SweepConfig& cfg,
    const std::vector<std::unique_ptr<core::Emt>>& emts,
    const mem::BerModel& ber_model, std::size_t vi, AccumGrid& grid) {
  // Maps are generated at the sweep's widest payload so the same cell
  // fault locations apply to every EMT (narrower payloads simply never
  // touch the high columns) — at least ECC's 22 bits, so built-in sweeps
  // keep their historical maps, and wider for user EMTs that need more.
  int map_bits = core::EccSecDed::kPayloadBits;
  for (const auto& emt : emts) {
    map_bits = std::max(map_bits, emt->payload_bits());
  }

  const double v = cfg.voltages[vi];
  const double ber = ber_model.ber(v);
  util::Xoshiro256 rng(util::mix64(cfg.seed, vi));
  for (std::size_t run = 0; run < cfg.runs; ++run) {
    const mem::FaultMap map = mem::FaultMap::random(
        mem::MemoryGeometry::kWords16, map_bits, ber, rng);
    for (std::size_t ai = 0; ai < app_list.size(); ++ai) {
      for (std::size_t ei = 0; ei < cfg.emts.size(); ++ei) {
        const RunResult r =
            runner.run_once(*app_list[ai], record, *emts[ei], &map, v);
        CellAccum& cell = grid[ai][vi * cfg.emts.size() + ei];
        cell.snr.add(r.snr_db);
        cell.snr_quantiles.add(r.snr_db);
        cell.energy.add(r.energy.total_j());
        cell.energy_sum.data_dynamic_j += r.energy.data_dynamic_j;
        cell.energy_sum.side_dynamic_j += r.energy.side_dynamic_j;
        cell.energy_sum.codec_j += r.energy.codec_j;
        cell.energy_sum.data_leak_j += r.energy.data_leak_j;
        cell.energy_sum.side_leak_j += r.energy.side_leak_j;
        cell.corrected.add(static_cast<double>(r.counters.corrected_words));
        cell.detected.add(
            static_cast<double>(r.counters.detected_uncorrectable));
      }
    }
  }
}

std::vector<SweepResult> finalize_sweep(
    ExperimentRunner& runner,
    const std::vector<const apps::BioApp*>& app_list,
    const ecg::Record& record, const SweepConfig& cfg,
    const mem::BerModel& ber_model, const AccumGrid& grid) {
  std::vector<SweepResult> results;
  results.reserve(app_list.size());
  for (std::size_t ai = 0; ai < app_list.size(); ++ai) {
    SweepResult result;
    result.config = cfg;
    result.max_snr_db = runner.max_snr_db(*app_list[ai], record);
    for (std::size_t vi = 0; vi < cfg.voltages.size(); ++vi) {
      for (std::size_t ei = 0; ei < cfg.emts.size(); ++ei) {
        const CellAccum& cell = grid[ai][vi * cfg.emts.size() + ei];
        SweepPoint p;
        p.app = app_list[ai]->name();
        p.emt = cfg.emts[ei];
        p.voltage = cfg.voltages[vi];
        p.ber = ber_model.ber(p.voltage);
        p.snr_mean_db = cell.snr.mean();
        p.snr_stddev_db = cell.snr.stddev();
        p.snr_min_db = cell.snr.min();
        p.snr_p10_db = cell.snr_quantiles.quantile(0.10);
        p.energy_mean_j = cell.energy.mean();
        const double n = static_cast<double>(cell.snr.count());
        p.energy_mean.data_dynamic_j = cell.energy_sum.data_dynamic_j / n;
        p.energy_mean.side_dynamic_j = cell.energy_sum.side_dynamic_j / n;
        p.energy_mean.codec_j = cell.energy_sum.codec_j / n;
        p.energy_mean.data_leak_j = cell.energy_sum.data_leak_j / n;
        p.energy_mean.side_leak_j = cell.energy_sum.side_leak_j / n;
        p.corrected_words_mean = cell.corrected.mean();
        p.detected_uncorrectable_mean = cell.detected.mean();
        result.points.push_back(p);
      }
    }
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace internal

SweepConfig SweepConfig::defaults() {
  SweepConfig cfg;
  for (double v = mem::VoltageWindow::kMin;
       v <= mem::VoltageWindow::kNominal + 1e-9;
       v += mem::VoltageWindow::kStep) {
    cfg.voltages.push_back(v);
  }
  cfg.emts = core::paper_emt_names();
  return cfg;
}

const SweepPoint* SweepResult::find(std::string_view emt, double v) const {
  for (const auto& p : points) {
    if (p.emt == emt && std::fabs(p.voltage - v) < 1e-6) return &p;
  }
  return nullptr;
}

std::vector<SweepResult> run_voltage_sweep_multi(
    ExperimentRunner& runner,
    const std::vector<const apps::BioApp*>& app_list,
    const ecg::Record& record, const SweepConfig& base_cfg) {
  const SweepConfig cfg = internal::normalize_config(base_cfg);
  const auto ber_model = mem::make_ber_model(cfg.ber_model);
  const auto emts = internal::make_emts(cfg);

  internal::AccumGrid grid = internal::make_accum_grid(app_list.size(), cfg);
  for (std::size_t vi = 0; vi < cfg.voltages.size(); ++vi) {
    internal::accumulate_voltage_point(runner, app_list, record, cfg, emts,
                                       *ber_model, vi, grid);
  }
  return internal::finalize_sweep(runner, app_list, record, cfg, *ber_model,
                                  grid);
}

SweepResult run_voltage_sweep(ExperimentRunner& runner,
                              const apps::BioApp& app,
                              const ecg::Record& record,
                              const SweepConfig& cfg) {
  const std::vector<const apps::BioApp*> one = {&app};
  return run_voltage_sweep_multi(runner, one, record, cfg).front();
}

}  // namespace ulpdream::sim
