#include "ulpdream/dist/lease_table.hpp"

#include <algorithm>
#include <stdexcept>

namespace ulpdream::dist {

LeaseTable::LeaseTable(std::size_t item_count, std::size_t lease_items,
                       Clock::duration ttl)
    : item_count_(item_count), lease_items_(lease_items), ttl_(ttl) {
  if (item_count == 0) {
    throw std::invalid_argument("LeaseTable: item_count must be > 0");
  }
  if (lease_items == 0) {
    throw std::invalid_argument("LeaseTable: lease_items must be > 0");
  }
  pending_.push_back(Range{0, item_count});
}

bool LeaseTable::grant(const std::string& owner, Clock::time_point now,
                       Lease& out) {
  while (!pending_.empty()) {
    Range range = pending_.front();
    pending_.pop_front();
    // Work completed under another lease while this range sat in the
    // pool must not be re-run.
    range.begin = skip_done(range.begin, range.end);
    if (range.begin >= range.end) continue;

    std::size_t end = std::min(range.end, range.begin + lease_items_);
    // Never grant across a done interval sitting mid-range: clip there
    // and let the next grant's skip step hop over it.
    const auto next_done = done_.upper_bound(range.begin);
    if (next_done != done_.end() && next_done->first < end) {
      end = next_done->first;
    }
    if (end < range.end) {
      // Remainder goes back to the FRONT so the next grant continues
      // contiguously instead of jumping across the pool.
      pending_.push_front(Range{end, range.end});
    }
    out = Lease{next_id_++, range.begin, end, owner, now + ttl_};
    active_.emplace(out.id, out);
    return true;
  }
  return false;
}

bool LeaseTable::complete(std::uint64_t lease_id) {
  const auto it = active_.find(lease_id);
  if (it == active_.end()) return false;
  mark_done(it->second.begin, it->second.end);
  active_.erase(it);
  return true;
}

void LeaseTable::complete_range(std::size_t begin, std::size_t end) {
  if (begin >= end || end > item_count_) {
    throw std::invalid_argument(
        "LeaseTable::complete_range: bad range [" + std::to_string(begin) +
        ", " + std::to_string(end) + ") of " + std::to_string(item_count_) +
        " items");
  }
  mark_done(begin, end);
}

bool LeaseTable::renew(std::uint64_t lease_id, Clock::time_point now) {
  const auto it = active_.find(lease_id);
  if (it == active_.end()) return false;
  it->second.deadline = now + ttl_;
  return true;
}

std::vector<LeaseTable::Lease> LeaseTable::expire_due(Clock::time_point now) {
  std::vector<Lease> expired;
  for (auto it = active_.begin(); it != active_.end();) {
    if (it->second.deadline <= now) {
      expired.push_back(it->second);
      pending_.push_front(Range{it->second.begin, it->second.end});
      it = active_.erase(it);
    } else {
      ++it;
    }
  }
  return expired;
}

std::vector<LeaseTable::Lease> LeaseTable::revoke_owner(
    const std::string& owner) {
  std::vector<Lease> revoked;
  for (auto it = active_.begin(); it != active_.end();) {
    if (it->second.owner == owner) {
      revoked.push_back(it->second);
      pending_.push_front(Range{it->second.begin, it->second.end});
      it = active_.erase(it);
    } else {
      ++it;
    }
  }
  return revoked;
}

void LeaseTable::mark_done(std::size_t begin, std::size_t end) {
  // Absorb every done interval that touches [begin, end), widening the
  // range and subtracting already-counted coverage so overlaps (stale
  // duplicate results) are counted once.
  std::size_t covered = 0;
  auto it = done_.upper_bound(begin);
  if (it != done_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= begin) it = prev;
  }
  while (it != done_.end() && it->first <= end) {
    begin = std::min(begin, it->first);
    end = std::max(end, it->second);
    covered += it->second - it->first;
    it = done_.erase(it);
  }
  done_.emplace(begin, end);
  items_done_ += (end - begin) - covered;
}

std::size_t LeaseTable::skip_done(std::size_t begin, std::size_t end) const {
  auto it = done_.upper_bound(begin);
  if (it != done_.begin()) {
    auto prev = std::prev(it);
    if (prev->second > begin) begin = std::min(prev->second, end);
  }
  return begin;
}

}  // namespace ulpdream::dist
