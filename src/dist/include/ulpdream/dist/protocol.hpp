#pragma once
// Wire protocol of the distributed campaign runtime — the typed message
// layer over util::Frame. One connection = one worker; the conversation
// is strictly worker-initiated request/response after a versioned HELLO:
//
//   worker                          coordinator
//   ------                          -----------
//   Hello{version, fingerprint} ->
//                                <- HelloOk{item_count, lease_items,
//                                           heartbeat_ms}
//                                   (or HelloReject{reason} quoting both
//                                    fingerprints, then close)
//   LeaseRequest{}              ->
//                                <- LeaseGrant{id, [begin, end)}
//                                   or NoWork{done | retry_ms}
//   Heartbeat{id}               ->  (while executing; renews the lease)
//                                <- HeartbeatAck{id}
//   LeaseResult{id, columnar}   ->
//                                <- ResultAck{id}
//   ... more LeaseRequests ...
//   Metrics{snapshot json}      ->  (once, when told the campaign is done)
//   Goodbye{}                   ->  close
//
// Exactly-once is NOT promised by the transport: a lease can expire and
// be re-granted while the original worker still finishes it, so the same
// item range may be ingested twice. The store layer dedups (sorted-index
// first-done-wins in ColumnarStore::append_merge), which is what lets
// the protocol stay this simple.
//
// Every decode failure throws ProtocolError naming the peer and the
// field that was short or trailing — distinct from util::FrameError
// (transport-level) so tests and logs can tell "peer sent a truncated
// LeaseGrant" from "peer is not speaking frames at all".

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "ulpdream/util/socket.hpp"
#include "ulpdream/util/wire.hpp"

namespace ulpdream::dist {

/// Bump on any wire-visible change; HELLO carries it and the coordinator
/// rejects mismatches by number (both quoted).
inline constexpr std::uint32_t kProtocolVersion = 1;

/// Default cap on a frame payload. Lease results carry whole columnar
/// shards, so this bounds lease size x sample width, not chat traffic.
inline constexpr std::size_t kMaxFrameBytes = std::size_t(256) << 20;

/// Typed payload-decode failure naming the peer (transport failures are
/// util::FrameError; this layer means the frame arrived but lied). The
/// codec itself lives in util/wire.hpp and is shared with serve.
using ProtocolError = util::WireError;

enum class MsgType : std::uint32_t {
  kHello = 1,
  kHelloOk = 2,
  kHelloReject = 3,
  kLeaseRequest = 4,
  kLeaseGrant = 5,
  kNoWork = 6,
  kLeaseResult = 7,
  kResultAck = 8,
  kHeartbeat = 9,
  kHeartbeatAck = 10,
  kMetrics = 11,
  kGoodbye = 12,
};

[[nodiscard]] const char* to_string(MsgType type) noexcept;

struct Hello {
  std::uint32_t version = kProtocolVersion;
  std::string fingerprint;  ///< CampaignSpec::fingerprint() of the grid
  std::string worker_name;  ///< human label for logs/telemetry
};

struct HelloOk {
  std::uint64_t item_count = 0;    ///< grid size (sanity echo)
  std::uint64_t lease_items = 0;   ///< coordinator's grant size
  std::uint64_t heartbeat_ms = 0;  ///< renew at least this often
};

struct HelloReject {
  std::string reason;  ///< quotes both fingerprints / both versions
};

struct LeaseRequest {};

struct LeaseGrant {
  std::uint64_t lease_id = 0;
  std::uint64_t begin = 0;  ///< canonical item range [begin, end)
  std::uint64_t end = 0;
};

struct NoWork {
  /// True: the campaign is complete — drain and say Goodbye. False:
  /// everything is leased out right now; ask again in retry_ms (a lease
  /// may expire back into the pool).
  bool campaign_done = false;
  std::uint64_t retry_ms = 0;
};

struct LeaseResult {
  std::uint64_t lease_id = 0;
  /// A complete columnar store file (ULPDCOL1 bytes) holding exactly the
  /// lease's items — the coordinator spools and append-merges it.
  std::vector<std::uint8_t> store_bytes;
};

struct ResultAck {
  std::uint64_t lease_id = 0;
};

struct Heartbeat {
  std::uint64_t lease_id = 0;
};

struct HeartbeatAck {
  std::uint64_t lease_id = 0;
};

struct Metrics {
  std::string json;  ///< util::telemetry::MetricsSnapshot::write_json
};

struct Goodbye {};

// ---------------------------------------------------------------------------
// Send / receive. send() encodes and writes one frame; expect<T>()
// reads the next frame and decodes it as T, throwing ProtocolError when
// the peer sent a different type. receive() returns the raw frame for
// dispatch loops.

void send(util::Socket& socket, const Hello& m);
void send(util::Socket& socket, const HelloOk& m);
void send(util::Socket& socket, const HelloReject& m);
void send(util::Socket& socket, const LeaseRequest& m);
void send(util::Socket& socket, const LeaseGrant& m);
void send(util::Socket& socket, const NoWork& m);
void send(util::Socket& socket, const LeaseResult& m);
void send(util::Socket& socket, const ResultAck& m);
void send(util::Socket& socket, const Heartbeat& m);
void send(util::Socket& socket, const HeartbeatAck& m);
void send(util::Socket& socket, const Metrics& m);
void send(util::Socket& socket, const Goodbye& m);

/// Decodes `frame`'s payload as the message its type names. Each decoder
/// bounds-checks every field and rejects trailing bytes, so a garbage or
/// truncated payload throws ProtocolError naming the peer, the message
/// and the field — never reads past the buffer.
[[nodiscard]] Hello decode_hello(const util::Frame& frame,
                                 const std::string& peer);
[[nodiscard]] HelloOk decode_hello_ok(const util::Frame& frame,
                                      const std::string& peer);
[[nodiscard]] HelloReject decode_hello_reject(const util::Frame& frame,
                                              const std::string& peer);
[[nodiscard]] LeaseGrant decode_lease_grant(const util::Frame& frame,
                                            const std::string& peer);
[[nodiscard]] NoWork decode_no_work(const util::Frame& frame,
                                    const std::string& peer);
[[nodiscard]] LeaseResult decode_lease_result(const util::Frame& frame,
                                              const std::string& peer);
[[nodiscard]] ResultAck decode_result_ack(const util::Frame& frame,
                                          const std::string& peer);
[[nodiscard]] Heartbeat decode_heartbeat(const util::Frame& frame,
                                         const std::string& peer);
[[nodiscard]] HeartbeatAck decode_heartbeat_ack(const util::Frame& frame,
                                                const std::string& peer);
[[nodiscard]] Metrics decode_metrics(const util::Frame& frame,
                                     const std::string& peer);

/// Reads the next frame (false on clean EOF between frames). Wire-level
/// failures surface as util::FrameError.
[[nodiscard]] bool receive(util::Socket& socket, util::Frame& out,
                           std::size_t max_payload = kMaxFrameBytes);

}  // namespace ulpdream::dist
