#pragma once
// Campaign worker: connects to a coordinator, validates the campaign
// fingerprint in its HELLO, then loops — lease a range, execute it
// through campaign::Session::submit (item_range), ship the completed
// range back as a columnar store file's bytes, repeat — until the
// coordinator says the campaign is done. While a lease executes, the
// worker heartbeats from its main thread (the Session's pool does the
// computing), renewing the lease so a healthy-but-slow worker is never
// mistaken for a dead one.
//
// Crash insurance is local and optional: with checkpoint_dir set, the
// in-progress lease store is checkpointed to disk every
// checkpoint_every items; a relaunched worker does not resume those
// (the coordinator simply re-leases), but the bytes survive for
// forensic or manual-merge use.
//
// Determinism: every item's RNG stream is keyed on (spec.seed,
// item.index) only, so the union of any lease split is bit-identical to
// the single-process run — the property the coordinator's canonical
// merge turns into byte-equal store files.

#include <cstddef>
#include <cstdint>
#include <string>

#include "ulpdream/campaign/session.hpp"
#include "ulpdream/campaign/spec.hpp"
#include "ulpdream/util/socket.hpp"

namespace ulpdream::dist {

class Worker {
 public:
  struct Options {
    /// Coordinator endpoint ("host:port" or "unix:/path").
    std::string connect;
    /// Human label for logs and coordinator-side telemetry.
    std::string name = "worker";
    /// Session threads (0 = hardware concurrency).
    unsigned threads = 0;
    /// Periodic local checkpoints of the in-progress lease store (empty =
    /// off). Files land as <dir>/<name>_lease_<id>.ulpdcol.
    std::string checkpoint_dir;
    /// Checkpoint cadence in items (only with checkpoint_dir).
    std::size_t checkpoint_every = 0;
  };

  struct Report {
    std::size_t leases_completed = 0;
    std::size_t items_executed = 0;
  };

  Worker(campaign::CampaignSpec spec, Options options);

  /// Connects, handshakes and works until the coordinator reports the
  /// campaign done (then ships this session's metrics snapshot and says
  /// Goodbye). Throws SocketError/ProtocolError on transport failure and
  /// std::runtime_error quoting the coordinator's reason on HelloReject.
  Report run();

  /// Same loop over an already-connected socket — the socketpair /
  /// FakeWorker path (no Options::connect needed).
  Report run_on(util::Socket socket);

 private:
  campaign::CampaignSpec spec_;
  Options options_;
};

}  // namespace ulpdream::dist
