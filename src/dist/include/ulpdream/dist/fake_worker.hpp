#pragma once
// In-process worker for deterministic dist tests: speaks the exact wire
// protocol over one end of a socketpair the Coordinator adopt()s — same
// bytes as a TCP worker, no listener, no child process — and executes
// leases for real through a campaign::Session, so a test's merged store
// carries true sample data. Fault injection is the point: a FakeWorker
// can present a wrong fingerprint or protocol version (handshake-reject
// paths), vanish mid-lease without executing (revocation/re-lease), or
// vanish after N completed leases (death between leases), all without
// sleeping on real timeouts.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>

#include "ulpdream/campaign/spec.hpp"
#include "ulpdream/dist/coordinator.hpp"
#include "ulpdream/dist/worker.hpp"

namespace ulpdream::dist {

class FakeWorker {
 public:
  struct Options {
    std::string name = "fake";
    unsigned threads = 2;
    /// Complete this many leases, then drop the socket without a
    /// Goodbye (death between leases). Default: run to completion.
    std::size_t die_after_leases = std::numeric_limits<std::size_t>::max();
    /// Accept one grant, then drop the socket without executing it
    /// (death mid-lease; the coordinator must revoke and re-lease).
    bool die_mid_lease = false;
    /// Non-empty: HELLO carries this instead of the spec's fingerprint
    /// (the handshake must reject, quoting both).
    std::string fingerprint_override;
    /// HELLO protocol version (the default is the real one).
    std::uint32_t version = 0;
  };

  /// Builds the socketpair, hands the far end to `coordinator` and
  /// starts the worker loop on its own thread.
  FakeWorker(campaign::CampaignSpec spec, Coordinator& coordinator,
             Options options);
  FakeWorker(campaign::CampaignSpec spec, Coordinator& coordinator)
      : FakeWorker(std::move(spec), coordinator, Options{}) {}
  ~FakeWorker();

  FakeWorker(const FakeWorker&) = delete;
  FakeWorker& operator=(const FakeWorker&) = delete;

  /// Waits for the loop to finish (idempotent).
  void join();

  /// Valid after join(). error() is empty for a clean run, otherwise the
  /// exception text (a HelloReject surfaces its quoted reason here).
  [[nodiscard]] const Worker::Report& report() const noexcept {
    return report_;
  }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

 private:
  void loop(util::Socket socket);

  campaign::CampaignSpec spec_;
  Options options_;
  Worker::Report report_;
  std::string error_;
  std::thread thread_;
};

}  // namespace ulpdream::dist
