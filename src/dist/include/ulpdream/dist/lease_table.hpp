#pragma once
// Lease bookkeeping for the distributed coordinator: which item ranges
// are still pending, which are out on lease (to whom, until when), and
// which are done. Memory is O(ranges), never O(items) — done coverage is
// a coalescing interval set — which is what keeps the coordinator's
// footprint flat in the campaign's item count.
//
// Leases are dynamic, not static shards: grant() carves the next chunk
// off the pending pool, expire_due()/revoke_owner() push the ranges of
// dead or silent workers back to the FRONT of the pool (so re-leased
// work stays contiguous with its neighbours), and complete() of a lease
// the table no longer knows (expired, then finished anyway by the
// original worker) is reported as stale — the caller still ingests the
// shard; the store layer's first-done-wins dedup makes the duplicate
// harmless.
//
// The table is externally synchronized: the coordinator holds one mutex
// across every call. No member blocks.

#include <cstddef>
#include <cstdint>
#include <chrono>
#include <deque>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace ulpdream::dist {

class LeaseTable {
 public:
  using Clock = std::chrono::steady_clock;

  struct Lease {
    std::uint64_t id = 0;
    std::size_t begin = 0;
    std::size_t end = 0;
    std::string owner;
    Clock::time_point deadline{};
  };

  /// Covers [0, item_count) as one pending range. `lease_items` is the
  /// grant size (the last grant of the pool may be smaller); `ttl` the
  /// heartbeat budget before expire_due() takes a lease back.
  LeaseTable(std::size_t item_count, std::size_t lease_items,
             Clock::duration ttl);

  /// Carves the next lease off the pending pool for `owner`. Ranges that
  /// were completed under another lease in the meantime are skipped, so
  /// a re-leased worker never re-runs finished work. Returns false when
  /// nothing is pending right now (all leased out, or all done).
  [[nodiscard]] bool grant(const std::string& owner, Clock::time_point now,
                           Lease& out);

  /// Marks `lease_id`'s range done and retires the lease. Returns false
  /// for an unknown id — an expired-and-re-leased lease whose original
  /// worker finished anyway. The caller should ingest the result either
  /// way (append_merge dedups); only the bookkeeping differs.
  bool complete(std::uint64_t lease_id);

  /// Marks an arbitrary range done (results recovered outside a live
  /// lease, e.g. a stale LeaseResult that still carries valid items).
  void complete_range(std::size_t begin, std::size_t end);

  /// Extends `lease_id`'s deadline to now + ttl. False for unknown ids.
  bool renew(std::uint64_t lease_id, Clock::time_point now);

  /// Expires every lease whose deadline has passed: their ranges return
  /// to the front of the pending pool. Returns the expired leases (for
  /// logging/telemetry).
  std::vector<Lease> expire_due(Clock::time_point now);

  /// Returns every lease held by `owner` to the pending pool (worker
  /// disconnected or died). Returns the revoked leases.
  std::vector<Lease> revoke_owner(const std::string& owner);

  [[nodiscard]] std::size_t item_count() const noexcept {
    return item_count_;
  }
  [[nodiscard]] std::size_t items_done() const noexcept {
    return items_done_;
  }
  [[nodiscard]] bool all_done() const noexcept {
    return items_done_ == item_count_;
  }
  [[nodiscard]] std::size_t active_leases() const noexcept {
    return active_.size();
  }
  /// Pending ranges (not items) — a proxy for how fragmented the pool is.
  [[nodiscard]] std::size_t pending_ranges() const noexcept {
    return pending_.size();
  }

 private:
  struct Range {
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  /// Folds [begin, end) into the done interval set, coalescing with
  /// neighbours, and updates items_done_ (overlaps counted once).
  void mark_done(std::size_t begin, std::size_t end);
  /// First index in [begin, end) not yet done, or end.
  [[nodiscard]] std::size_t skip_done(std::size_t begin,
                                      std::size_t end) const;

  std::size_t item_count_;
  std::size_t lease_items_;
  Clock::duration ttl_;
  std::uint64_t next_id_ = 1;
  std::deque<Range> pending_;  ///< front = next to grant
  std::unordered_map<std::uint64_t, Lease> active_;
  std::map<std::size_t, std::size_t> done_;  ///< begin -> end, coalesced
  std::size_t items_done_ = 0;
};

}  // namespace ulpdream::dist
