#pragma once
// Campaign coordinator: the process that owns the CampaignSpec, leases
// dynamic item ranges to socket-connected workers, ingests their
// completed shards as columnar files, folds their metrics snapshots, and
// publishes the single merged store. Fault tolerance is structural, not
// bolted on:
//
//  - leases carry a TTL renewed by heartbeats; a sweeper returns expired
//    leases to the pool, so a SIGKILL'd or wedged worker merely delays
//    its range;
//  - a disconnect revokes everything the peer held (same path);
//  - a *stale* result — the original worker finishing a lease that
//    already expired and was re-granted — is still ingested; the store
//    layer's sorted-index first-done-wins dedup makes the duplicate
//    byte-invisible in the final canonical append_merge, which is what
//    lets the coordinator promise a merged store byte-identical to a
//    single-process run.
//
// Memory stays flat in the campaign's item count: lease bookkeeping is
// interval-based (LeaseTable), shard payloads are spooled straight to
// disk, and the final merge streams through bounded buffers.
//
// Threading: serve() runs an accept loop (when listening), one handler
// thread per connection, and a lease-expiry sweeper. One mutex guards
// the lease table, the spool list and the metrics fold; handlers block
// in socket reads, never while holding it.

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "ulpdream/campaign/spec.hpp"
#include "ulpdream/dist/lease_table.hpp"
#include "ulpdream/util/socket.hpp"
#include "ulpdream/util/telemetry.hpp"

namespace ulpdream::dist {

class Coordinator {
 public:
  struct Options {
    /// Endpoint to listen on ("host:port", port 0 = ephemeral;
    /// "unix:/path"). Empty: no listener — peers arrive via adopt()
    /// only (the in-process FakeWorker path).
    std::string listen;
    /// Items per lease grant (the last grant of the pool may be smaller).
    std::size_t lease_items = 256;
    /// Lease TTL; a lease not renewed within this window is re-granted.
    std::size_t lease_ttl_ms = 10'000;
    /// Heartbeat cadence advertised to workers (should be well under the
    /// TTL; grants renew implicitly too).
    std::size_t heartbeat_ms = 2'000;
    /// Directory shard payloads are spooled to (created if missing).
    std::string spool_dir;
    /// Where the merged columnar store is published.
    std::string store_out;
    /// Optional: write the folded worker metrics snapshot as JSON here.
    std::string metrics_out;
    /// Cap on a single frame payload (shard bytes bound lease size).
    std::size_t max_frame_bytes = 0;  ///< 0 = protocol default
  };

  struct Report {
    std::size_t workers_seen = 0;     ///< HELLOs accepted
    std::size_t workers_rejected = 0;
    std::size_t leases_granted = 0;
    std::size_t leases_expired = 0;   ///< TTL lapses (re-leased)
    std::size_t leases_revoked = 0;   ///< disconnect/error revocations
    std::size_t stale_results = 0;    ///< results for already-expired leases
    std::size_t protocol_errors = 0;
    std::size_t shards_ingested = 0;
    std::uint64_t ingest_bytes = 0;
    /// Fold of every worker's MetricsSnapshot (associative merge).
    util::telemetry::MetricsSnapshot worker_metrics;
  };

  /// Normalizes `spec`, opens the listener when `options.listen` is set.
  /// Throws std::invalid_argument on empty spool_dir/store_out and
  /// SocketError when the endpoint cannot be bound.
  Coordinator(campaign::CampaignSpec spec, Options options);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  [[nodiscard]] const campaign::CampaignSpec& spec() const noexcept {
    return spec_;
  }
  /// Resolved listen endpoint (ephemeral port filled in); empty when not
  /// listening.
  [[nodiscard]] const std::string& endpoint() const noexcept {
    return endpoint_;
  }

  /// Serves a pre-connected peer (socketpair / FakeWorker) exactly like
  /// an accepted connection. Callable before or during serve().
  void adopt(util::Socket socket);

  /// Runs the campaign to completion: accepts workers, leases work,
  /// ingests shards, then closes the listener, drains connections,
  /// canonically append-merges the spooled shards into store_out and
  /// returns the report. The merged store is byte-identical to a
  /// single-process run's save_columnar of the same spec.
  Report serve();

 private:
  void handle_connection(util::Socket socket);
  void accept_loop();
  void sweeper_loop();
  void ingest(std::uint64_t lease_id, const std::vector<std::uint8_t>& bytes);

  campaign::CampaignSpec spec_;
  Options options_;
  std::string fingerprint_;
  std::string endpoint_;
  util::Listener listener_;

  std::mutex mutex_;
  std::condition_variable cv_;  ///< all_done / connection-drain wakeups
  LeaseTable table_;
  /// Every grant ever made, so a stale result can still be credited to
  /// its range. O(total leases) — bounded by items/lease_items + churn.
  std::unordered_map<std::uint64_t, std::pair<std::size_t, std::size_t>>
      granted_;
  std::vector<std::string> spooled_;  ///< shard files, ingest order
  std::vector<std::thread> handlers_;
  std::size_t connections_open_ = 0;
  bool stopping_ = false;
  Report report_;
};

}  // namespace ulpdream::dist
