#include "ulpdream/dist/fake_worker.hpp"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "ulpdream/campaign/session.hpp"
#include "ulpdream/dist/protocol.hpp"

namespace ulpdream::dist {

namespace {

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  if (!is) throw std::runtime_error(path + ": cannot read lease store");
  const std::streamsize size = is.tellg();
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  is.seekg(0);
  if (!is.read(reinterpret_cast<char*>(bytes.data()), size)) {
    throw std::runtime_error(path + ": short read of lease store");
  }
  return bytes;
}

}  // namespace

FakeWorker::FakeWorker(campaign::CampaignSpec spec, Coordinator& coordinator,
                       Options options)
    : spec_(spec.normalized()), options_(std::move(options)) {
  if (options_.version == 0) options_.version = kProtocolVersion;
  auto [near, far] = util::Socket::socketpair(options_.name);
  coordinator.adopt(std::move(far));
  thread_ = std::thread(
      [this, s = std::move(near)]() mutable { loop(std::move(s)); });
}

FakeWorker::~FakeWorker() { join(); }

void FakeWorker::join() {
  if (thread_.joinable()) thread_.join();
}

void FakeWorker::loop(util::Socket socket) {
  const std::string peer = socket.peer();
  try {
    const std::string fingerprint = options_.fingerprint_override.empty()
                                        ? spec_.fingerprint()
                                        : options_.fingerprint_override;
    send(socket, Hello{options_.version, fingerprint, options_.name});
    util::Frame frame;
    if (!receive(socket, frame)) {
      throw util::SocketError(peer, "coordinator closed during handshake");
    }
    if (frame.type == static_cast<std::uint32_t>(MsgType::kHelloReject)) {
      throw std::runtime_error(peer + " rejected worker: " +
                               decode_hello_reject(frame, peer).reason);
    }
    (void)decode_hello_ok(frame, peer);

    campaign::Session session(energy::SystemEnergyModel(),
                              options_.threads);
    for (;;) {
      send(socket, LeaseRequest{});
      if (!receive(socket, frame)) {
        throw util::SocketError(peer, "coordinator closed while leasing");
      }
      if (frame.type == static_cast<std::uint32_t>(MsgType::kNoWork)) {
        const NoWork no_work = decode_no_work(frame, peer);
        if (no_work.campaign_done) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      const LeaseGrant grant = decode_lease_grant(frame, peer);
      if (options_.die_mid_lease) return;  // vanish holding the lease

      campaign::SubmitOptions submit;
      submit.item_range = campaign::ItemRange{
          static_cast<std::size_t>(grant.begin),
          static_cast<std::size_t>(grant.end)};
      const campaign::ResultStore store =
          session.submit(spec_, std::move(submit)).take();

      const std::string tmp =
          (std::filesystem::temp_directory_path() /
           ("ulpd_fake_" + options_.name + "_" +
            std::to_string(grant.lease_id) + ".ulpdcol"))
              .string();
      store.save_columnar(tmp);
      LeaseResult result{grant.lease_id, slurp(tmp)};
      std::filesystem::remove(tmp);
      send(socket, result);
      if (!receive(socket, frame)) {
        throw util::SocketError(peer, "coordinator closed before ack");
      }
      (void)decode_result_ack(frame, peer);

      ++report_.leases_completed;
      report_.items_executed +=
          static_cast<std::size_t>(grant.end - grant.begin);
      if (report_.leases_completed >= options_.die_after_leases) {
        return;  // vanish without a Goodbye (death between leases)
      }
    }

    std::ostringstream os;
    session.telemetry().write_json(os);
    send(socket, Metrics{os.str()});
    send(socket, Goodbye{});
  } catch (const std::exception& e) {
    error_ = e.what();
  }
}

}  // namespace ulpdream::dist
