#include "ulpdream/dist/coordinator.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "ulpdream/campaign/columnar.hpp"
#include "ulpdream/dist/protocol.hpp"
#include "ulpdream/util/file_view.hpp"
#include "ulpdream/util/log.hpp"

namespace ulpdream::dist {

namespace {

namespace telemetry = util::telemetry;

struct DistCounters {
  telemetry::Counter leases_granted{"dist.leases_granted"};
  telemetry::Counter leases_expired{"dist.leases_expired"};
  telemetry::Counter leases_revoked{"dist.leases_revoked"};
  telemetry::Counter stale_results{"dist.stale_results"};
  telemetry::Counter ingest_bytes{"dist.ingest_bytes"};
  telemetry::Counter shards_ingested{"dist.shards_ingested"};
  telemetry::Counter protocol_errors{"dist.protocol_errors"};
  telemetry::Gauge workers_connected{"dist.workers_connected"};
  telemetry::Gauge items_done{"dist.items_done"};
};

const DistCounters& counters() {
  static const DistCounters c;
  return c;
}

}  // namespace

Coordinator::Coordinator(campaign::CampaignSpec spec, Options options)
    : spec_(spec.normalized()),
      options_(std::move(options)),
      fingerprint_(spec_.fingerprint()),
      table_(spec_.item_count(),
             options_.lease_items == 0 ? 1 : options_.lease_items,
             std::chrono::milliseconds(options_.lease_ttl_ms)) {
  if (options_.spool_dir.empty()) {
    throw std::invalid_argument("Coordinator: spool_dir must be set");
  }
  if (options_.store_out.empty()) {
    throw std::invalid_argument("Coordinator: store_out must be set");
  }
  if (options_.max_frame_bytes == 0) {
    options_.max_frame_bytes = kMaxFrameBytes;
  }
  std::filesystem::create_directories(options_.spool_dir);
  if (!options_.listen.empty()) {
    listener_ = util::Listener::open(options_.listen);
    endpoint_ = listener_.endpoint();
  }
}

Coordinator::~Coordinator() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  listener_.close();
  cv_.notify_all();
  for (std::thread& t : handlers_) {
    if (t.joinable()) t.join();
  }
}

void Coordinator::adopt(util::Socket socket) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_) return;
  ++connections_open_;
  counters().workers_connected.set(static_cast<double>(connections_open_));
  handlers_.emplace_back([this, s = std::move(socket)]() mutable {
    handle_connection(std::move(s));
  });
}

void Coordinator::accept_loop() {
  for (;;) {
    util::Socket socket;
    try {
      socket = listener_.accept();
    } catch (const util::SocketError&) {
      return;  // listener closed — serve() is draining
    }
    adopt(std::move(socket));
  }
}

void Coordinator::sweeper_loop() {
  const auto period = std::chrono::milliseconds(
      std::max<std::size_t>(1, options_.lease_ttl_ms / 4));
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    cv_.wait_for(lock, period);
    if (stopping_) return;
    const auto expired = table_.expire_due(LeaseTable::Clock::now());
    if (!expired.empty()) {
      report_.leases_expired += expired.size();
      counters().leases_expired.add(expired.size());
      for (const auto& lease : expired) {
        util::log_warn("dist: lease ", lease.id, " [", lease.begin, ", ",
                       lease.end, ") of ", lease.owner,
                       " expired; re-leasing");
      }
    }
  }
}

void Coordinator::ingest(std::uint64_t lease_id,
                         const std::vector<std::uint8_t>& bytes) {
  // Spool to disk first (outside the lock): coordinator memory holds at
  // most one shard payload per connection at a time.
  const std::string path = options_.spool_dir + "/shard_" +
                           std::to_string(lease_id) + ".ulpdcol";
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os ||
        !os.write(reinterpret_cast<const char*>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()))) {
      throw std::runtime_error(tmp + ": failed to spool shard");
    }
  }
  util::publish_file_atomic(tmp, path);
  // Validate the shard is a well-formed store of *this* campaign before
  // crediting its range — a corrupt payload must not mark items done.
  (void)campaign::ColumnarStore::open(path, spec_);

  std::lock_guard<std::mutex> lock(mutex_);
  spooled_.push_back(path);
  ++report_.shards_ingested;
  report_.ingest_bytes += bytes.size();
  counters().shards_ingested.add();
  counters().ingest_bytes.add(bytes.size());
  if (!table_.complete(lease_id)) {
    // The lease expired (and its range was re-granted) before the
    // original worker finished. The work is valid all the same: credit
    // the range; append_merge dedups any overlap first-done-wins.
    ++report_.stale_results;
    counters().stale_results.add();
    const auto it = granted_.find(lease_id);
    if (it != granted_.end()) {
      table_.complete_range(it->second.first, it->second.second);
    }
  }
  counters().items_done.set(static_cast<double>(table_.items_done()));
  if (table_.all_done()) cv_.notify_all();
}

/// The per-connection conversation: HELLO handshake, then the worker's
/// request/response loop until Goodbye, EOF, or a transport/protocol
/// failure — every exit path revokes the peer's leases and drops the
/// connection count.
void Coordinator::handle_connection(util::Socket socket) {
  const std::string peer = socket.peer();
  std::string owner = peer;
  bool accepted = false;
  // A peer silent longer than the TTL is not heartbeating its leases;
  // time the read out so the handler can revoke and exit instead of
  // blocking forever on a wedged connection.
  socket.set_recv_timeout(options_.lease_ttl_ms * 2);
  try {
    util::Frame frame;
    bool open = receive(socket, frame, options_.max_frame_bytes);
    if (open) {
      const Hello hello = decode_hello(frame, peer);
      owner =
          hello.worker_name.empty() ? peer : hello.worker_name + "@" + peer;
      if (hello.version != kProtocolVersion) {
        {
          std::lock_guard<std::mutex> lock(mutex_);
          ++report_.workers_rejected;
        }
        send(socket,
             HelloReject{"protocol version mismatch: coordinator speaks " +
                         std::to_string(kProtocolVersion) +
                         ", worker sent " + std::to_string(hello.version)});
        open = false;
      } else if (hello.fingerprint != fingerprint_) {
        {
          std::lock_guard<std::mutex> lock(mutex_);
          ++report_.workers_rejected;
        }
        send(socket, HelloReject{
                         "campaign fingerprint mismatch: coordinator has "
                         "\"" +
                         fingerprint_ + "\", worker sent \"" +
                         hello.fingerprint + "\""});
        open = false;
      } else {
        {
          std::lock_guard<std::mutex> lock(mutex_);
          ++report_.workers_seen;
        }
        accepted = true;
        send(socket, HelloOk{spec_.item_count(), options_.lease_items,
                             options_.heartbeat_ms});
      }
    }

    while (open && receive(socket, frame, options_.max_frame_bytes)) {
      switch (static_cast<MsgType>(frame.type)) {
        case MsgType::kLeaseRequest: {
          LeaseTable::Lease lease;
          bool granted = false;
          bool done = false;
          {
            std::lock_guard<std::mutex> lock(mutex_);
            granted = table_.grant(owner, LeaseTable::Clock::now(), lease);
            if (granted) {
              granted_.emplace(lease.id,
                               std::make_pair(lease.begin, lease.end));
              ++report_.leases_granted;
            }
            done = table_.all_done();
          }
          if (granted) {
            counters().leases_granted.add();
            send(socket, LeaseGrant{lease.id, lease.begin, lease.end});
          } else {
            send(socket, NoWork{done, options_.heartbeat_ms});
          }
          break;
        }
        case MsgType::kHeartbeat: {
          const Heartbeat hb = decode_heartbeat(frame, peer);
          {
            std::lock_guard<std::mutex> lock(mutex_);
            (void)table_.renew(hb.lease_id, LeaseTable::Clock::now());
          }
          send(socket, HeartbeatAck{hb.lease_id});
          break;
        }
        case MsgType::kLeaseResult: {
          const LeaseResult result = decode_lease_result(frame, peer);
          ingest(result.lease_id, result.store_bytes);
          send(socket, ResultAck{result.lease_id});
          break;
        }
        case MsgType::kMetrics: {
          const Metrics metrics = decode_metrics(frame, peer);
          std::istringstream is(metrics.json);
          const auto snapshot = telemetry::MetricsSnapshot::read_json(is);
          std::lock_guard<std::mutex> lock(mutex_);
          report_.worker_metrics.merge(snapshot);
          break;
        }
        case MsgType::kGoodbye:
          open = false;
          break;
        default:
          throw ProtocolError(
              peer, std::string("unexpected ") +
                        to_string(static_cast<MsgType>(frame.type)) +
                        " frame (type " + std::to_string(frame.type) +
                        ") from a worker");
      }
    }
  } catch (const std::exception& e) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++report_.protocol_errors;
    }
    counters().protocol_errors.add();
    util::log_warn("dist: connection ", peer, " failed: ", e.what());
  }

  std::lock_guard<std::mutex> lock(mutex_);
  if (accepted) {
    const auto revoked = table_.revoke_owner(owner);
    if (!revoked.empty()) {
      report_.leases_revoked += revoked.size();
      counters().leases_revoked.add(revoked.size());
      for (const auto& lease : revoked) {
        util::log_warn("dist: worker ", owner, " left holding lease ",
                       lease.id, " [", lease.begin, ", ", lease.end,
                       "); re-leasing");
      }
    }
  }
  --connections_open_;
  counters().workers_connected.set(static_cast<double>(connections_open_));
  cv_.notify_all();
}

Coordinator::Report Coordinator::serve() {
  std::thread sweeper([this] { sweeper_loop(); });
  std::thread acceptor;
  if (listener_.valid()) {
    acceptor = std::thread([this] { accept_loop(); });
  }

  {
    // Campaign completion: every item credited done.
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return table_.all_done() || stopping_; });
    // Grace period for connected workers to collect their NoWork{done},
    // ship metrics and say goodbye; then cut stragglers off.
    cv_.wait_for(lock, std::chrono::milliseconds(options_.heartbeat_ms * 4),
                 [this] { return connections_open_ == 0; });
    stopping_ = true;
  }
  listener_.close();
  cv_.notify_all();
  if (acceptor.joinable()) acceptor.join();
  sweeper.join();
  std::vector<std::thread> handlers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    handlers.swap(handlers_);
  }
  for (std::thread& t : handlers) {
    if (t.joinable()) t.join();
  }

  Report report;
  std::vector<std::string> spooled;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    report = report_;
    spooled = spooled_;
  }
  // The proof obligation: canonical merge of the spooled shards is
  // byte-identical to a single-process save_columnar of this campaign.
  campaign::ColumnarStore::append_merge(
      spooled, options_.store_out, spec_,
      campaign::ColumnarStore::AppendOptions{/*canonical=*/true});
  if (!options_.metrics_out.empty()) {
    std::ofstream os(options_.metrics_out, std::ios::trunc);
    if (!os) {
      throw std::runtime_error(options_.metrics_out +
                               ": cannot write merged metrics");
    }
    report.worker_metrics.write_json(os);
    os << '\n';
  }
  return report;
}

}  // namespace ulpdream::dist
