#include "ulpdream/dist/protocol.hpp"

#include <cstring>

#include "ulpdream/util/telemetry.hpp"

namespace ulpdream::dist {

namespace {

/// Little-endian payload writer (append-only vector).
class PayloadWriter {
 public:
  void put_u8(std::uint8_t v) { bytes_.push_back(v); }
  void put_u32(std::uint32_t v) { put_pod(v); }
  void put_u64(std::uint64_t v) { put_pod(v); }
  void put_string(const std::string& s) {
    put_u32(static_cast<std::uint32_t>(s.size()));
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }
  void put_blob(const std::vector<std::uint8_t>& b) {
    put_u64(b.size());
    bytes_.insert(bytes_.end(), b.begin(), b.end());
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return bytes_;
  }

 private:
  template <typename T>
  void put_pod(T v) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    bytes_.insert(bytes_.end(), p, p + sizeof(T));
  }
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked payload reader; every failure names the peer, the
/// message and the field being decoded.
class PayloadReader {
 public:
  PayloadReader(const util::Frame& frame, std::string peer, const char* msg)
      : bytes_(frame.payload), peer_(std::move(peer)), msg_(msg) {}

  std::uint8_t get_u8(const char* field) { return get_pod<std::uint8_t>(field); }
  std::uint32_t get_u32(const char* field) {
    return get_pod<std::uint32_t>(field);
  }
  std::uint64_t get_u64(const char* field) {
    return get_pod<std::uint64_t>(field);
  }
  std::string get_string(const char* field) {
    const std::uint32_t len = get_u32(field);
    need(len, field);
    std::string out(reinterpret_cast<const char*>(bytes_.data() + pos_),
                    len);
    pos_ += len;
    return out;
  }
  std::vector<std::uint8_t> get_blob(const char* field) {
    const std::uint64_t len = get_u64(field);
    need(len, field);
    std::vector<std::uint8_t> out(bytes_.begin() + static_cast<long>(pos_),
                                  bytes_.begin() +
                                      static_cast<long>(pos_ + len));
    pos_ += static_cast<std::size_t>(len);
    return out;
  }

  /// Rejects trailing bytes — a payload longer than the message is as
  /// malformed as a short one (it will desynchronize nothing, but it
  /// means the peer and we disagree about the message shape).
  void finish() const {
    if (pos_ != bytes_.size()) {
      throw ProtocolError(peer_, std::string("malformed ") + msg_ + ": " +
                                     std::to_string(bytes_.size() - pos_) +
                                     " trailing bytes after the last field");
    }
  }

 private:
  void need(std::uint64_t len, const char* field) const {
    if (len > bytes_.size() - pos_) {
      throw ProtocolError(peer_, std::string("malformed ") + msg_ +
                                     ": truncated field '" + field + "' (" +
                                     std::to_string(len) + " bytes claimed, " +
                                     std::to_string(bytes_.size() - pos_) +
                                     " available)");
    }
  }
  template <typename T>
  T get_pod(const char* field) {
    need(sizeof(T), field);
    T v;
    std::memcpy(&v, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
  std::string peer_;
  const char* msg_;
};

void send_frame(util::Socket& socket, MsgType type,
                const PayloadWriter& payload) {
  static const util::telemetry::Counter frames("dist.frames_sent");
  static const util::telemetry::Counter bytes("dist.frames_sent_bytes");
  util::write_frame(socket, static_cast<std::uint32_t>(type),
                    payload.bytes());
  frames.add();
  bytes.add(util::kFrameHeaderBytes + payload.bytes().size());
}

/// Opens a reader after asserting the frame really is `type` — decoding
/// a LeaseGrant out of a Metrics frame must fail by name, not by field.
PayloadReader open(const util::Frame& frame, const std::string& peer,
                   MsgType type) {
  if (frame.type != static_cast<std::uint32_t>(type)) {
    throw ProtocolError(
        peer, std::string("expected ") + to_string(type) + " frame, got " +
                  to_string(static_cast<MsgType>(frame.type)) + " (type " +
                  std::to_string(frame.type) + ")");
  }
  return PayloadReader(frame, peer, to_string(type));
}

}  // namespace

const char* to_string(MsgType type) noexcept {
  switch (type) {
    case MsgType::kHello: return "Hello";
    case MsgType::kHelloOk: return "HelloOk";
    case MsgType::kHelloReject: return "HelloReject";
    case MsgType::kLeaseRequest: return "LeaseRequest";
    case MsgType::kLeaseGrant: return "LeaseGrant";
    case MsgType::kNoWork: return "NoWork";
    case MsgType::kLeaseResult: return "LeaseResult";
    case MsgType::kResultAck: return "ResultAck";
    case MsgType::kHeartbeat: return "Heartbeat";
    case MsgType::kHeartbeatAck: return "HeartbeatAck";
    case MsgType::kMetrics: return "Metrics";
    case MsgType::kGoodbye: return "Goodbye";
  }
  return "unknown";
}

void send(util::Socket& socket, const Hello& m) {
  PayloadWriter w;
  w.put_u32(m.version);
  w.put_string(m.fingerprint);
  w.put_string(m.worker_name);
  send_frame(socket, MsgType::kHello, w);
}

void send(util::Socket& socket, const HelloOk& m) {
  PayloadWriter w;
  w.put_u64(m.item_count);
  w.put_u64(m.lease_items);
  w.put_u64(m.heartbeat_ms);
  send_frame(socket, MsgType::kHelloOk, w);
}

void send(util::Socket& socket, const HelloReject& m) {
  PayloadWriter w;
  w.put_string(m.reason);
  send_frame(socket, MsgType::kHelloReject, w);
}

void send(util::Socket& socket, const LeaseRequest&) {
  send_frame(socket, MsgType::kLeaseRequest, PayloadWriter());
}

void send(util::Socket& socket, const LeaseGrant& m) {
  PayloadWriter w;
  w.put_u64(m.lease_id);
  w.put_u64(m.begin);
  w.put_u64(m.end);
  send_frame(socket, MsgType::kLeaseGrant, w);
}

void send(util::Socket& socket, const NoWork& m) {
  PayloadWriter w;
  w.put_u8(m.campaign_done ? 1 : 0);
  w.put_u64(m.retry_ms);
  send_frame(socket, MsgType::kNoWork, w);
}

void send(util::Socket& socket, const LeaseResult& m) {
  PayloadWriter w;
  w.put_u64(m.lease_id);
  w.put_blob(m.store_bytes);
  send_frame(socket, MsgType::kLeaseResult, w);
}

void send(util::Socket& socket, const ResultAck& m) {
  PayloadWriter w;
  w.put_u64(m.lease_id);
  send_frame(socket, MsgType::kResultAck, w);
}

void send(util::Socket& socket, const Heartbeat& m) {
  PayloadWriter w;
  w.put_u64(m.lease_id);
  send_frame(socket, MsgType::kHeartbeat, w);
}

void send(util::Socket& socket, const HeartbeatAck& m) {
  PayloadWriter w;
  w.put_u64(m.lease_id);
  send_frame(socket, MsgType::kHeartbeatAck, w);
}

void send(util::Socket& socket, const Metrics& m) {
  PayloadWriter w;
  w.put_string(m.json);
  send_frame(socket, MsgType::kMetrics, w);
}

void send(util::Socket& socket, const Goodbye&) {
  send_frame(socket, MsgType::kGoodbye, PayloadWriter());
}

Hello decode_hello(const util::Frame& frame, const std::string& peer) {
  PayloadReader r = open(frame, peer, MsgType::kHello);
  Hello m;
  m.version = r.get_u32("version");
  m.fingerprint = r.get_string("fingerprint");
  m.worker_name = r.get_string("worker_name");
  r.finish();
  return m;
}

HelloOk decode_hello_ok(const util::Frame& frame, const std::string& peer) {
  PayloadReader r = open(frame, peer, MsgType::kHelloOk);
  HelloOk m;
  m.item_count = r.get_u64("item_count");
  m.lease_items = r.get_u64("lease_items");
  m.heartbeat_ms = r.get_u64("heartbeat_ms");
  r.finish();
  return m;
}

HelloReject decode_hello_reject(const util::Frame& frame,
                                const std::string& peer) {
  PayloadReader r = open(frame, peer, MsgType::kHelloReject);
  HelloReject m;
  m.reason = r.get_string("reason");
  r.finish();
  return m;
}

LeaseGrant decode_lease_grant(const util::Frame& frame,
                              const std::string& peer) {
  PayloadReader r = open(frame, peer, MsgType::kLeaseGrant);
  LeaseGrant m;
  m.lease_id = r.get_u64("lease_id");
  m.begin = r.get_u64("begin");
  m.end = r.get_u64("end");
  r.finish();
  if (m.begin >= m.end) {
    throw ProtocolError(peer, "malformed LeaseGrant: empty range [" +
                                  std::to_string(m.begin) + ", " +
                                  std::to_string(m.end) + ")");
  }
  return m;
}

NoWork decode_no_work(const util::Frame& frame, const std::string& peer) {
  PayloadReader r = open(frame, peer, MsgType::kNoWork);
  NoWork m;
  m.campaign_done = r.get_u8("campaign_done") != 0;
  m.retry_ms = r.get_u64("retry_ms");
  r.finish();
  return m;
}

LeaseResult decode_lease_result(const util::Frame& frame,
                                const std::string& peer) {
  PayloadReader r = open(frame, peer, MsgType::kLeaseResult);
  LeaseResult m;
  m.lease_id = r.get_u64("lease_id");
  m.store_bytes = r.get_blob("store_bytes");
  r.finish();
  return m;
}

ResultAck decode_result_ack(const util::Frame& frame,
                            const std::string& peer) {
  PayloadReader r = open(frame, peer, MsgType::kResultAck);
  ResultAck m;
  m.lease_id = r.get_u64("lease_id");
  r.finish();
  return m;
}

Heartbeat decode_heartbeat(const util::Frame& frame,
                           const std::string& peer) {
  PayloadReader r = open(frame, peer, MsgType::kHeartbeat);
  Heartbeat m;
  m.lease_id = r.get_u64("lease_id");
  r.finish();
  return m;
}

HeartbeatAck decode_heartbeat_ack(const util::Frame& frame,
                                  const std::string& peer) {
  PayloadReader r = open(frame, peer, MsgType::kHeartbeatAck);
  HeartbeatAck m;
  m.lease_id = r.get_u64("lease_id");
  r.finish();
  return m;
}

Metrics decode_metrics(const util::Frame& frame, const std::string& peer) {
  PayloadReader r = open(frame, peer, MsgType::kMetrics);
  Metrics m;
  m.json = r.get_string("json");
  r.finish();
  return m;
}

bool receive(util::Socket& socket, util::Frame& out,
             std::size_t max_payload) {
  static const util::telemetry::Counter frames("dist.frames_received");
  static const util::telemetry::Counter bytes("dist.frames_received_bytes");
  if (!util::read_frame(socket, out, max_payload)) return false;
  frames.add();
  bytes.add(util::kFrameHeaderBytes + out.payload.size());
  return true;
}

}  // namespace ulpdream::dist
