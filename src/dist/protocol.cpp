#include "ulpdream/dist/protocol.hpp"

#include "ulpdream/util/telemetry.hpp"
#include "ulpdream/util/wire.hpp"

namespace ulpdream::dist {

namespace {

using util::PayloadReader;
using util::PayloadWriter;

void send_frame(util::Socket& socket, MsgType type,
                const PayloadWriter& payload) {
  static const util::telemetry::Counter frames("dist.frames_sent");
  static const util::telemetry::Counter bytes("dist.frames_sent_bytes");
  util::write_frame(socket, static_cast<std::uint32_t>(type),
                    payload.bytes());
  frames.add();
  bytes.add(util::kFrameHeaderBytes + payload.bytes().size());
}

/// Opens a reader after asserting the frame really is `type` — decoding
/// a LeaseGrant out of a Metrics frame must fail by name, not by field.
PayloadReader open(const util::Frame& frame, const std::string& peer,
                   MsgType type) {
  if (frame.type != static_cast<std::uint32_t>(type)) {
    throw ProtocolError(
        peer, std::string("expected ") + to_string(type) + " frame, got " +
                  to_string(static_cast<MsgType>(frame.type)) + " (type " +
                  std::to_string(frame.type) + ")");
  }
  return PayloadReader(frame.payload, peer, to_string(type));
}

}  // namespace

const char* to_string(MsgType type) noexcept {
  switch (type) {
    case MsgType::kHello: return "Hello";
    case MsgType::kHelloOk: return "HelloOk";
    case MsgType::kHelloReject: return "HelloReject";
    case MsgType::kLeaseRequest: return "LeaseRequest";
    case MsgType::kLeaseGrant: return "LeaseGrant";
    case MsgType::kNoWork: return "NoWork";
    case MsgType::kLeaseResult: return "LeaseResult";
    case MsgType::kResultAck: return "ResultAck";
    case MsgType::kHeartbeat: return "Heartbeat";
    case MsgType::kHeartbeatAck: return "HeartbeatAck";
    case MsgType::kMetrics: return "Metrics";
    case MsgType::kGoodbye: return "Goodbye";
  }
  return "unknown";
}

void send(util::Socket& socket, const Hello& m) {
  PayloadWriter w;
  w.put_u32(m.version);
  w.put_string(m.fingerprint);
  w.put_string(m.worker_name);
  send_frame(socket, MsgType::kHello, w);
}

void send(util::Socket& socket, const HelloOk& m) {
  PayloadWriter w;
  w.put_u64(m.item_count);
  w.put_u64(m.lease_items);
  w.put_u64(m.heartbeat_ms);
  send_frame(socket, MsgType::kHelloOk, w);
}

void send(util::Socket& socket, const HelloReject& m) {
  PayloadWriter w;
  w.put_string(m.reason);
  send_frame(socket, MsgType::kHelloReject, w);
}

void send(util::Socket& socket, const LeaseRequest&) {
  send_frame(socket, MsgType::kLeaseRequest, PayloadWriter());
}

void send(util::Socket& socket, const LeaseGrant& m) {
  PayloadWriter w;
  w.put_u64(m.lease_id);
  w.put_u64(m.begin);
  w.put_u64(m.end);
  send_frame(socket, MsgType::kLeaseGrant, w);
}

void send(util::Socket& socket, const NoWork& m) {
  PayloadWriter w;
  w.put_u8(m.campaign_done ? 1 : 0);
  w.put_u64(m.retry_ms);
  send_frame(socket, MsgType::kNoWork, w);
}

void send(util::Socket& socket, const LeaseResult& m) {
  PayloadWriter w;
  w.put_u64(m.lease_id);
  w.put_blob(m.store_bytes);
  send_frame(socket, MsgType::kLeaseResult, w);
}

void send(util::Socket& socket, const ResultAck& m) {
  PayloadWriter w;
  w.put_u64(m.lease_id);
  send_frame(socket, MsgType::kResultAck, w);
}

void send(util::Socket& socket, const Heartbeat& m) {
  PayloadWriter w;
  w.put_u64(m.lease_id);
  send_frame(socket, MsgType::kHeartbeat, w);
}

void send(util::Socket& socket, const HeartbeatAck& m) {
  PayloadWriter w;
  w.put_u64(m.lease_id);
  send_frame(socket, MsgType::kHeartbeatAck, w);
}

void send(util::Socket& socket, const Metrics& m) {
  PayloadWriter w;
  w.put_string(m.json);
  send_frame(socket, MsgType::kMetrics, w);
}

void send(util::Socket& socket, const Goodbye&) {
  send_frame(socket, MsgType::kGoodbye, PayloadWriter());
}

Hello decode_hello(const util::Frame& frame, const std::string& peer) {
  PayloadReader r = open(frame, peer, MsgType::kHello);
  Hello m;
  m.version = r.get_u32("version");
  m.fingerprint = r.get_string("fingerprint");
  m.worker_name = r.get_string("worker_name");
  r.finish();
  return m;
}

HelloOk decode_hello_ok(const util::Frame& frame, const std::string& peer) {
  PayloadReader r = open(frame, peer, MsgType::kHelloOk);
  HelloOk m;
  m.item_count = r.get_u64("item_count");
  m.lease_items = r.get_u64("lease_items");
  m.heartbeat_ms = r.get_u64("heartbeat_ms");
  r.finish();
  return m;
}

HelloReject decode_hello_reject(const util::Frame& frame,
                                const std::string& peer) {
  PayloadReader r = open(frame, peer, MsgType::kHelloReject);
  HelloReject m;
  m.reason = r.get_string("reason");
  r.finish();
  return m;
}

LeaseGrant decode_lease_grant(const util::Frame& frame,
                              const std::string& peer) {
  PayloadReader r = open(frame, peer, MsgType::kLeaseGrant);
  LeaseGrant m;
  m.lease_id = r.get_u64("lease_id");
  m.begin = r.get_u64("begin");
  m.end = r.get_u64("end");
  r.finish();
  if (m.begin >= m.end) {
    throw ProtocolError(peer, "malformed LeaseGrant: empty range [" +
                                  std::to_string(m.begin) + ", " +
                                  std::to_string(m.end) + ")");
  }
  return m;
}

NoWork decode_no_work(const util::Frame& frame, const std::string& peer) {
  PayloadReader r = open(frame, peer, MsgType::kNoWork);
  NoWork m;
  m.campaign_done = r.get_u8("campaign_done") != 0;
  m.retry_ms = r.get_u64("retry_ms");
  r.finish();
  return m;
}

LeaseResult decode_lease_result(const util::Frame& frame,
                                const std::string& peer) {
  PayloadReader r = open(frame, peer, MsgType::kLeaseResult);
  LeaseResult m;
  m.lease_id = r.get_u64("lease_id");
  m.store_bytes = r.get_blob("store_bytes");
  r.finish();
  return m;
}

ResultAck decode_result_ack(const util::Frame& frame,
                            const std::string& peer) {
  PayloadReader r = open(frame, peer, MsgType::kResultAck);
  ResultAck m;
  m.lease_id = r.get_u64("lease_id");
  r.finish();
  return m;
}

Heartbeat decode_heartbeat(const util::Frame& frame,
                           const std::string& peer) {
  PayloadReader r = open(frame, peer, MsgType::kHeartbeat);
  Heartbeat m;
  m.lease_id = r.get_u64("lease_id");
  r.finish();
  return m;
}

HeartbeatAck decode_heartbeat_ack(const util::Frame& frame,
                                  const std::string& peer) {
  PayloadReader r = open(frame, peer, MsgType::kHeartbeatAck);
  HeartbeatAck m;
  m.lease_id = r.get_u64("lease_id");
  r.finish();
  return m;
}

Metrics decode_metrics(const util::Frame& frame, const std::string& peer) {
  PayloadReader r = open(frame, peer, MsgType::kMetrics);
  Metrics m;
  m.json = r.get_string("json");
  r.finish();
  return m;
}

bool receive(util::Socket& socket, util::Frame& out,
             std::size_t max_payload) {
  static const util::telemetry::Counter frames("dist.frames_received");
  static const util::telemetry::Counter bytes("dist.frames_received_bytes");
  if (!util::read_frame(socket, out, max_payload)) return false;
  frames.add();
  bytes.add(util::kFrameHeaderBytes + out.payload.size());
  return true;
}

}  // namespace ulpdream::dist
