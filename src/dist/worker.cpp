#include "ulpdream/dist/worker.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "ulpdream/dist/protocol.hpp"
#include "ulpdream/util/log.hpp"
#include "ulpdream/util/telemetry.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace ulpdream::dist {

namespace {

/// Reads a whole file into a byte vector (the lease store ships as the
/// exact columnar file bytes, so the coordinator can spool them
/// verbatim and open them like any shard file).
std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  if (!is) throw std::runtime_error(path + ": cannot read lease store");
  const std::streamsize size = is.tellg();
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  is.seekg(0);
  if (!is.read(reinterpret_cast<char*>(bytes.data()), size)) {
    throw std::runtime_error(path + ": short read of lease store");
  }
  return bytes;
}

}  // namespace

Worker::Worker(campaign::CampaignSpec spec, Options options)
    : spec_(spec.normalized()), options_(std::move(options)) {}

Worker::Report Worker::run() {
  return run_on(util::Socket::connect(options_.connect));
}

Worker::Report Worker::run_on(util::Socket socket) {
  static const util::telemetry::Counter leases_done(
      "dist.worker_leases_completed");
  static const util::telemetry::Counter items_done(
      "dist.worker_items_executed");

  const std::string peer = socket.peer();
  campaign::Session session(energy::SystemEnergyModel(), options_.threads);

  send(socket, Hello{kProtocolVersion, spec_.fingerprint(), options_.name});
  util::Frame frame;
  if (!receive(socket, frame)) {
    throw util::SocketError(peer, "coordinator closed during handshake");
  }
  if (frame.type == static_cast<std::uint32_t>(MsgType::kHelloReject)) {
    throw std::runtime_error(peer + " rejected worker: " +
                             decode_hello_reject(frame, peer).reason);
  }
  const HelloOk ok = decode_hello_ok(frame, peer);
  const auto heartbeat =
      std::chrono::milliseconds(std::max<std::uint64_t>(1, ok.heartbeat_ms));

  Report report;
  for (;;) {
    send(socket, LeaseRequest{});
    if (!receive(socket, frame)) {
      throw util::SocketError(peer, "coordinator closed while leasing");
    }
    if (frame.type == static_cast<std::uint32_t>(MsgType::kNoWork)) {
      const NoWork no_work = decode_no_work(frame, peer);
      if (no_work.campaign_done) break;
      // Everything is leased out right now; an expiry may free work.
      std::this_thread::sleep_for(std::chrono::milliseconds(
          std::max<std::uint64_t>(1, no_work.retry_ms)));
      continue;
    }
    const LeaseGrant grant = decode_lease_grant(frame, peer);

    campaign::SubmitOptions submit;
    submit.item_range = campaign::ItemRange{
        static_cast<std::size_t>(grant.begin),
        static_cast<std::size_t>(grant.end)};
    std::string checkpoint_path;
    if (!options_.checkpoint_dir.empty() && options_.checkpoint_every > 0) {
      std::filesystem::create_directories(options_.checkpoint_dir);
      checkpoint_path = options_.checkpoint_dir + "/" + options_.name +
                        "_lease_" + std::to_string(grant.lease_id) +
                        ".ulpdcol";
      submit.checkpoint_every = options_.checkpoint_every;
      submit.on_checkpoint = [checkpoint_path](
                                 const campaign::ResultStore& store) {
        store.save_columnar(checkpoint_path);
      };
    }
    auto handle = session.submit(spec_, std::move(submit));

    // The pool computes; this thread keeps the lease alive. Renew at
    // half the advertised cadence so one delayed beat cannot lapse it.
    auto next_beat = std::chrono::steady_clock::now() + heartbeat / 2;
    while (!handle.progress().finished) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      if (std::chrono::steady_clock::now() >= next_beat) {
        send(socket, Heartbeat{grant.lease_id});
        if (!receive(socket, frame)) {
          handle.cancel();
          throw util::SocketError(peer, "coordinator closed mid-lease");
        }
        (void)decode_heartbeat_ack(frame, peer);
        next_beat = std::chrono::steady_clock::now() + heartbeat / 2;
      }
    }
    const campaign::ResultStore store = handle.take();

    // Ship the lease back as exact columnar file bytes: save to a
    // pid-unique temp file, slurp, remove. The coordinator spools the
    // bytes verbatim and validates them as a shard file.
#if defined(__unix__) || defined(__APPLE__)
    const unsigned long pid = static_cast<unsigned long>(::getpid());
#else
    const unsigned long pid = 0;
#endif
    const std::string tmp =
        (std::filesystem::temp_directory_path() /
         ("ulpd_" + options_.name + "_" + std::to_string(grant.lease_id) +
          "_" + std::to_string(pid) + ".ulpdcol"))
            .string();
    store.save_columnar(tmp);
    LeaseResult result{grant.lease_id, slurp(tmp)};
    std::filesystem::remove(tmp);
    send(socket, result);
    if (!receive(socket, frame)) {
      throw util::SocketError(peer, "coordinator closed before ack");
    }
    (void)decode_result_ack(frame, peer);
    if (!checkpoint_path.empty()) std::filesystem::remove(checkpoint_path);

    ++report.leases_completed;
    report.items_executed += static_cast<std::size_t>(grant.end - grant.begin);
    leases_done.add();
    items_done.add(grant.end - grant.begin);
    util::log_info("dist: worker ", options_.name, " completed lease ",
                   grant.lease_id, " [", grant.begin, ", ", grant.end, ")");
  }

  // Campaign done: ship this session's metrics for the coordinator's
  // fold, then part cleanly.
  std::ostringstream os;
  session.telemetry().write_json(os);
  send(socket, Metrics{os.str()});
  send(socket, Goodbye{});
  return report;
}

}  // namespace ulpdream::dist
