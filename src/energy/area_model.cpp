#include "ulpdream/energy/area_model.hpp"

#include <stdexcept>

#include "ulpdream/core/factory.hpp"

namespace ulpdream::energy {

CodecArea codec_area(core::EmtKind kind) {
  // DREAM: the encoder is a leading-bit counter (priority encoder) plus
  // the sign tap; the decoder is a 16-entry mask LUT, AND/OR lane, 2:1 mux
  // and the set-one-bit NOT stage. ECC(22,16): 5+1 parity trees on encode;
  // syndrome trees, a 5-to-22 corrector decode and the data extractor on
  // decode. Ratios fixed to the paper's synthesis result: encoder +28%,
  // decoder +120%.
  switch (kind) {
    case core::EmtKind::kNone:
      return {0.0, 0.0};
    case core::EmtKind::kDream:
      return {180.0, 310.0};
    case core::EmtKind::kEccSecDed:
      return {180.0 * 1.28, 310.0 * 2.20};
    case core::EmtKind::kDreamSecDed:
      // Both codecs instantiated.
      return {180.0 + 180.0 * 1.28, 310.0 + 310.0 * 2.20};
  }
  throw std::invalid_argument("codec_area: unknown EMT kind");
}

int extra_bits_per_word(core::EmtKind kind) {
  const auto emt = core::make_emt(kind);
  return emt->extra_bits();
}

double memory_area_overhead(core::EmtKind kind) {
  return static_cast<double>(extra_bits_per_word(kind)) / 16.0;
}

}  // namespace ulpdream::energy
