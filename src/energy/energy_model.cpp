#include "ulpdream/energy/energy_model.hpp"

#include <cmath>

#include "ulpdream/core/factory.hpp"

namespace ulpdream::energy {

double MemoryEnergyParams::dynamic_j(double v, int bits,
                                     std::uint64_t accesses,
                                     bool small_array) const {
  const double scale = (v / v_nominal) * (v / v_nominal);
  const double factor = small_array ? small_array_factor : 1.0;
  return static_cast<double>(accesses) * bits * e_bit_access_pj * 1e-12 *
         scale * factor;
}

double MemoryEnergyParams::leak_power_w(double v, int bits, std::size_t words,
                                        bool small_array) const {
  const double cells = static_cast<double>(words) * bits;
  const double factor = small_array ? small_array_factor : 1.0;
  const double v_scale =
      (v / v_nominal) * std::exp((v - v_nominal) / dibl_scale_v);
  return cells * leak_w_per_bit_nominal * v_scale * factor;
}

CodecEnergyParams codec_energy(const core::Emt& emt) {
  return {emt.encode_energy_pj(), emt.decode_energy_pj()};
}

CodecEnergyParams codec_energy(core::EmtKind kind) {
  return codec_energy(*core::make_emt(kind));
}

EnergyBreakdown SystemEnergyModel::compute(const core::Emt& emt, double v,
                                           const mem::AccessStats& data_stats,
                                           const mem::AccessStats* side_stats,
                                           std::size_t data_words,
                                           std::uint64_t cycles) const {
  EnergyBreakdown out;
  out.data_dynamic_j =
      params_.dynamic_j(v, emt.payload_bits(), data_stats.total(), false);

  const double t_run = static_cast<double>(cycles) / params_.clock_hz;
  out.data_leak_j =
      params_.leak_power_w(v, emt.payload_bits(), data_words, false) * t_run;

  if (emt.safe_bits() > 0 && side_stats != nullptr) {
    out.side_dynamic_j = params_.dynamic_j(
        params_.v_nominal, emt.safe_bits(), side_stats->total(), true);
    out.side_leak_j =
        params_.leak_power_w(params_.v_nominal, emt.safe_bits(), data_words,
                             true) *
        t_run;
  }

  const CodecEnergyParams codec = codec_energy(emt);
  out.codec_j = (static_cast<double>(data_stats.writes) * codec.encode_pj +
                 static_cast<double>(data_stats.reads) * codec.decode_pj) *
                1e-12;
  return out;
}

}  // namespace ulpdream::energy
