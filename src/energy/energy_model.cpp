#include "ulpdream/energy/energy_model.hpp"

#include <cmath>
#include <stdexcept>

namespace ulpdream::energy {

double MemoryEnergyParams::dynamic_j(double v, int bits,
                                     std::uint64_t accesses,
                                     bool small_array) const {
  const double scale = (v / v_nominal) * (v / v_nominal);
  const double factor = small_array ? small_array_factor : 1.0;
  return static_cast<double>(accesses) * bits * e_bit_access_pj * 1e-12 *
         scale * factor;
}

double MemoryEnergyParams::leak_power_w(double v, int bits, std::size_t words,
                                        bool small_array) const {
  const double cells = static_cast<double>(words) * bits;
  const double factor = small_array ? small_array_factor : 1.0;
  const double v_scale =
      (v / v_nominal) * std::exp((v - v_nominal) / dibl_scale_v);
  return cells * leak_w_per_bit_nominal * v_scale * factor;
}

CodecEnergyParams codec_energy(core::EmtKind kind) {
  // Calibrated against the paper's relative numbers: with these values and
  // the applications' (read-heavy) access mixes, the average protection
  // overhead across the 0.5-0.9 V sweep lands at ~34% (DREAM) and ~55%
  // (ECC SEC/DED) — Sec. VI-B. The ECC/DREAM decoder energy ratio (2.2x)
  // mirrors the synthesized area ratio; the encoder ratio (1.7x vs 1.28x
  // area) reflects the wider 22-bit codeword switching per write.
  switch (kind) {
    case core::EmtKind::kNone:
      return {0.0, 0.0};
    case core::EmtKind::kDream:
      return {0.35, 0.55};
    case core::EmtKind::kEccSecDed:
      return {0.55, 1.30};
    case core::EmtKind::kDreamSecDed:
      // Hybrid runs both codecs back to back.
      return {0.55 + 0.35, 1.30 + 0.55};
  }
  throw std::invalid_argument("codec_energy: unknown EMT kind");
}

EnergyBreakdown SystemEnergyModel::compute(const core::Emt& emt, double v,
                                           const mem::AccessStats& data_stats,
                                           const mem::AccessStats* side_stats,
                                           std::size_t data_words,
                                           std::uint64_t cycles) const {
  EnergyBreakdown out;
  out.data_dynamic_j =
      params_.dynamic_j(v, emt.payload_bits(), data_stats.total(), false);

  const double t_run = static_cast<double>(cycles) / params_.clock_hz;
  out.data_leak_j =
      params_.leak_power_w(v, emt.payload_bits(), data_words, false) * t_run;

  if (emt.safe_bits() > 0 && side_stats != nullptr) {
    out.side_dynamic_j = params_.dynamic_j(
        params_.v_nominal, emt.safe_bits(), side_stats->total(), true);
    out.side_leak_j =
        params_.leak_power_w(params_.v_nominal, emt.safe_bits(), data_words,
                             true) *
        t_run;
  }

  const CodecEnergyParams codec = codec_energy(emt.kind());
  out.codec_j = (static_cast<double>(data_stats.writes) * codec.encode_pj +
                 static_cast<double>(data_stats.reads) * codec.decode_pj) *
                1e-12;
  return out;
}

}  // namespace ulpdream::energy
