#pragma once
// Parametric memory + codec energy model. Substitutes CACTI 6.5 and the
// Synopsys synthesis power reports of the paper's Sec. V (see DESIGN.md's
// substitution table). Nominal-point constants are representative 32 nm
// low-power SRAM values at 343 K; what the paper actually consumes — and
// what we reproduce — are the *relative* overheads between EMTs.
//
// Model structure (per application run):
//   E_total = E_dyn(data) + E_dyn(side) + E_codec + E_leak(data) + E_leak(side)
//   E_dyn(data) = accesses * bits * e_bit * (V/Vnom)^2        (scaled array)
//   E_dyn(side) = accesses * bits * e_bit * small_factor      (always Vnom)
//   E_codec     = writes * E_enc + reads * E_dec              (logic at Vnom)
//   E_leak      = P_leak(width, words, V) * T_run,  T = cycles / 200 MHz
// Leakage voltage dependence: P ∝ V * exp((V - Vnom)/dibl) (subthreshold
// with DIBL), which gives the expected ~25x leakage reduction from 0.9 V
// to 0.5 V for this technology class.

#include <cstdint>

#include "ulpdream/core/emt.hpp"
#include "ulpdream/mem/memory.hpp"

namespace ulpdream::energy {

struct MemoryEnergyParams {
  double v_nominal = 0.9;             ///< volts
  double e_bit_access_pj = 0.625;     ///< pJ per bit per access at Vnom (32 kB array)
  double small_array_factor = 0.50;   ///< per-bit factor for the narrow side array
  double leak_w_per_bit_nominal = 45e-6 / (16384.0 * 16.0);  ///< 45 uW / 32 kB
  double dibl_scale_v = 0.15;         ///< exp() scale for leakage vs V
  double clock_hz = mem::MemoryGeometry::kClockHz;

  /// Dynamic energy (J) for `accesses` accesses of `bits`-wide words.
  [[nodiscard]] double dynamic_j(double v, int bits, std::uint64_t accesses,
                                 bool small_array) const;

  /// Leakage power (W) of an array of `words` x `bits` at voltage v.
  [[nodiscard]] double leak_power_w(double v, int bits, std::size_t words,
                                    bool small_array) const;
};

/// Encoder/decoder per-operation energy (logic domain, voltage-invariant in
/// this model because the codec must stay at a safe voltage to function).
/// The values live on the Emt interface (encode_energy_pj/decode_energy_pj)
/// so user-registered techniques carry their own; this struct and the kind
/// shim below survive for the overhead tables.
struct CodecEnergyParams {
  double encode_pj = 0.0;
  double decode_pj = 0.0;
};

[[nodiscard]] CodecEnergyParams codec_energy(const core::Emt& emt);
/// Legacy enum shim: instantiates the built-in tagged with `kind`.
[[nodiscard]] CodecEnergyParams codec_energy(core::EmtKind kind);

struct EnergyBreakdown {
  double data_dynamic_j = 0.0;
  double side_dynamic_j = 0.0;
  double codec_j = 0.0;
  double data_leak_j = 0.0;
  double side_leak_j = 0.0;

  [[nodiscard]] double total_j() const {
    return data_dynamic_j + side_dynamic_j + codec_j + data_leak_j +
           side_leak_j;
  }
};

class SystemEnergyModel {
 public:
  explicit SystemEnergyModel(MemoryEnergyParams params = {})
      : params_(params) {}

  /// Energy of a run: `data_stats`/`side_stats` are the access traces from
  /// the memory model (side may be null), `cycles` the run length for
  /// leakage integration, `v` the data-array supply.
  [[nodiscard]] EnergyBreakdown compute(const core::Emt& emt, double v,
                                        const mem::AccessStats& data_stats,
                                        const mem::AccessStats* side_stats,
                                        std::size_t data_words,
                                        std::uint64_t cycles) const;

  [[nodiscard]] const MemoryEnergyParams& params() const noexcept {
    return params_;
  }

 private:
  MemoryEnergyParams params_;
};

}  // namespace ulpdream::energy
