#pragma once
// Codec area model — substitute for the Synopsys Design Compiler synthesis
// reports (paper Sec. VI-B): "ECC requires 28% of area overhead for the
// encoder and 120% for the decoder, compared to those of DREAM". Areas are
// expressed in gate equivalents (GE, NAND2-equivalent) for a 32 nm
// library; the paper-relevant outputs are the ratios.

#include "ulpdream/core/emt.hpp"

namespace ulpdream::energy {

struct CodecArea {
  double encoder_ge = 0.0;
  double decoder_ge = 0.0;

  [[nodiscard]] double total_ge() const { return encoder_ge + decoder_ge; }
};

[[nodiscard]] CodecArea codec_area(core::EmtKind kind);

/// Extra memory bits per 16-bit data word (paper Formula 2 / Sec. V):
/// DREAM 1 + log2(16) = 5, ECC SEC/DED 2 + log2(16) = 6, none 0.
[[nodiscard]] int extra_bits_per_word(core::EmtKind kind);

/// Memory-array area overhead fraction relative to the unprotected 16-bit
/// array (cell area proportional to total bits stored per word).
[[nodiscard]] double memory_area_overhead(core::EmtKind kind);

}  // namespace ulpdream::energy
