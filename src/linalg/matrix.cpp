#include "ulpdream/linalg/matrix.hpp"

#include <cmath>
#include <stdexcept>

namespace ulpdream::linalg {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      t.at(c, r) = at(r, c);
    }
  }
  return t;
}

Matrix Matrix::multiply(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) {
    throw std::invalid_argument("Matrix::multiply: dimension mismatch");
  }
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = at(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) {
        out.at(r, c) += a * rhs.at(k, c);
      }
    }
  }
  return out;
}

std::vector<double> Matrix::multiply(const std::vector<double>& v) const {
  if (v.size() != cols_) {
    throw std::invalid_argument("Matrix::multiply(vec): dimension mismatch");
  }
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = &data_[r * cols_];
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * v[c];
    out[r] = acc;
  }
  return out;
}

std::vector<double> Matrix::multiply_transposed(
    const std::vector<double>& v) const {
  if (v.size() != rows_) {
    throw std::invalid_argument(
        "Matrix::multiply_transposed: dimension mismatch");
  }
  std::vector<double> out(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double s = v[r];
    if (s == 0.0) continue;
    const double* row = &data_[r * cols_];
    for (std::size_t c = 0; c < cols_; ++c) out[c] += s * row[c];
  }
  return out;
}

std::vector<double> Matrix::column(std::size_t c) const {
  if (c >= cols_) throw std::out_of_range("Matrix::column");
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = at(r, c);
  return out;
}

double Matrix::norm() const {
  double acc = 0.0;
  for (double x : data_) acc += x * x;
  return std::sqrt(acc);
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm2(const std::vector<double>& v) { return std::sqrt(dot(v, v)); }

void axpy(double s, const std::vector<double>& b, std::vector<double>& a) {
  if (a.size() != b.size()) throw std::invalid_argument("axpy: size mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += s * b[i];
}

}  // namespace ulpdream::linalg
