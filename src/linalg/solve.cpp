#include "ulpdream/linalg/solve.hpp"

#include <cmath>
#include <stdexcept>

namespace ulpdream::linalg {

bool cholesky(Matrix& a) {
  const std::size_t n = a.rows();
  if (a.cols() != n) return false;
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a.at(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= a.at(j, k) * a.at(j, k);
    if (diag <= 0.0) return false;
    const double ljj = std::sqrt(diag);
    a.at(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = a.at(i, j);
      for (std::size_t k = 0; k < j; ++k) v -= a.at(i, k) * a.at(j, k);
      a.at(i, j) = v / ljj;
    }
    for (std::size_t c = j + 1; c < n; ++c) a.at(j, c) = 0.0;
  }
  return true;
}

std::vector<double> cholesky_solve(const Matrix& l,
                                   const std::vector<double>& b) {
  const std::size_t n = l.rows();
  if (b.size() != n) {
    throw std::invalid_argument("cholesky_solve: size mismatch");
  }
  std::vector<double> y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t k = 0; k < i; ++k) acc -= l.at(i, k) * y[k];
    y[i] = acc / l.at(i, i);
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) acc -= l.at(k, ii) * x[k];
    x[ii] = acc / l.at(ii, ii);
  }
  return x;
}

std::vector<double> solve_spd(Matrix a, const std::vector<double>& b) {
  Matrix attempt = a;
  if (!cholesky(attempt)) {
    // Retry with a relative ridge before giving up.
    double trace = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i) trace += a.at(i, i);
    const double ridge =
        1e-10 * (trace > 0.0 ? trace / static_cast<double>(a.rows()) : 1.0);
    attempt = a;
    for (std::size_t i = 0; i < a.rows(); ++i) attempt.at(i, i) += ridge;
    if (!cholesky(attempt)) {
      throw std::runtime_error("solve_spd: matrix not positive definite");
    }
  }
  return cholesky_solve(attempt, b);
}

std::vector<double> least_squares(const Matrix& m,
                                  const std::vector<double>& y,
                                  double lambda) {
  // Normal equations: (M^T M + lambda I) x = M^T y.
  const std::size_t n = m.cols();
  Matrix gram(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t r = 0; r < m.rows(); ++r) {
        acc += m.at(r, i) * m.at(r, j);
      }
      gram.at(i, j) = acc;
      gram.at(j, i) = acc;
    }
    gram.at(i, i) += lambda;
  }
  const std::vector<double> rhs = m.multiply_transposed(y);
  return solve_spd(gram, rhs);
}

}  // namespace ulpdream::linalg
