#pragma once
// Small dense linear-algebra substrate. Two consumers:
//  - the CS reconstruction back-end (floating point OMP least squares),
//  - reference models for the fixed-point matrix-filtering application.
// Sizes are small (<= 512), so simple row-major storage is the right call.

#include <cstddef>
#include <vector>

namespace ulpdream::linalg {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double& at(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  double& operator()(std::size_t r, std::size_t c) { return at(r, c); }
  double operator()(std::size_t r, std::size_t c) const { return at(r, c); }

  [[nodiscard]] const std::vector<double>& data() const noexcept {
    return data_;
  }
  [[nodiscard]] std::vector<double>& data() noexcept { return data_; }

  [[nodiscard]] Matrix transpose() const;
  [[nodiscard]] Matrix multiply(const Matrix& rhs) const;
  [[nodiscard]] std::vector<double> multiply(
      const std::vector<double>& v) const;
  /// y = A^T * v without materializing the transpose.
  [[nodiscard]] std::vector<double> multiply_transposed(
      const std::vector<double>& v) const;

  /// Extracts the given column.
  [[nodiscard]] std::vector<double> column(std::size_t c) const;

  /// Frobenius norm.
  [[nodiscard]] double norm() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

[[nodiscard]] double dot(const std::vector<double>& a,
                         const std::vector<double>& b);
[[nodiscard]] double norm2(const std::vector<double>& v);
/// a += s * b
void axpy(double s, const std::vector<double>& b, std::vector<double>& a);

}  // namespace ulpdream::linalg
