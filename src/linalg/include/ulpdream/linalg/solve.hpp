#pragma once
// Solvers backing the OMP least-squares step: Cholesky on the (always SPD
// after regularization) Gram matrix, plus a general least-squares helper.

#include <vector>

#include "ulpdream/linalg/matrix.hpp"

namespace ulpdream::linalg {

/// In-place lower Cholesky factorization of an SPD matrix.
/// Returns false if the matrix is not (numerically) positive definite.
[[nodiscard]] bool cholesky(Matrix& a);

/// Solves A x = b given a lower-triangular Cholesky factor (forward +
/// backward substitution).
[[nodiscard]] std::vector<double> cholesky_solve(const Matrix& chol_lower,
                                                 const std::vector<double>& b);

/// Solves the dense SPD system A x = b. Throws std::runtime_error if A is
/// not positive definite even after a small diagonal ridge is applied.
[[nodiscard]] std::vector<double> solve_spd(Matrix a,
                                            const std::vector<double>& b);

/// Least squares: minimizes ||M x - y||_2 via normal equations with ridge
/// regularization `lambda` (suitable for the small, well-conditioned
/// subproblems inside OMP).
[[nodiscard]] std::vector<double> least_squares(const Matrix& m,
                                                const std::vector<double>& y,
                                                double lambda = 1e-9);

}  // namespace ulpdream::linalg
