#include "ulpdream/fixed/sample.hpp"

namespace ulpdream::fixed {

SampleVec quantize_waveform(const std::vector<double>& mv,
                            const AdcModel& adc) {
  SampleVec out;
  out.reserve(mv.size());
  for (double v : mv) out.push_back(adc.quantize(v));
  return out;
}

std::vector<double> to_doubles(const SampleVec& v) {
  std::vector<double> out;
  out.reserve(v.size());
  for (Sample s : v) out.push_back(static_cast<double>(s));
  return out;
}

}  // namespace ulpdream::fixed
