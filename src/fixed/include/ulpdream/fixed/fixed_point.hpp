#pragma once
// Generic signed fixed-point type. The paper's applications run on 16-bit
// integer samples (MIT-BIH style) with Q1.15 filter coefficients; this
// header provides the arithmetic substrate with explicit, saturating
// semantics so precision-scaling behaviour is deterministic and testable.

#include <cmath>
#include <compare>
#include <cstdint>
#include <limits>
#include <type_traits>

namespace ulpdream::fixed {

namespace detail {
template <int Bits>
struct StorageFor {
  static_assert(Bits > 0 && Bits <= 64, "unsupported fixed-point width");
  using type = std::conditional_t<
      (Bits <= 8), std::int8_t,
      std::conditional_t<(Bits <= 16), std::int16_t,
                         std::conditional_t<(Bits <= 32), std::int32_t,
                                            std::int64_t>>>;
};
}  // namespace detail

/// Saturates a wide intermediate to the representable range of `Narrow`.
template <typename Narrow, typename Wide>
[[nodiscard]] constexpr Narrow saturate_cast(Wide v) noexcept {
  constexpr Wide lo = static_cast<Wide>(std::numeric_limits<Narrow>::min());
  constexpr Wide hi = static_cast<Wide>(std::numeric_limits<Narrow>::max());
  if (v < lo) return std::numeric_limits<Narrow>::min();
  if (v > hi) return std::numeric_limits<Narrow>::max();
  return static_cast<Narrow>(v);
}

/// Arithmetic shift right with round-half-away-from-zero; the rounding mode
/// matters for DSP bias (plain truncation accumulates a DC error across
/// filter cascades).
template <typename T>
[[nodiscard]] constexpr T rounded_shift_right(T v, int shift) noexcept {
  if (shift <= 0) return v;
  const T half = static_cast<T>(T{1} << (shift - 1));
  if (v >= 0) return static_cast<T>((v + half) >> shift);
  return static_cast<T>(-((-v + half) >> shift));
}

/// Signed fixed-point number with `IntBits` integer bits (including sign)
/// and `FracBits` fractional bits. Total width IntBits+FracBits must fit a
/// native integer. All arithmetic saturates instead of wrapping: biomedical
/// pipelines must degrade gracefully, never alias across the sign boundary.
template <int IntBits, int FracBits>
class Fixed {
  static_assert(IntBits >= 1, "need at least a sign bit");
  static_assert(FracBits >= 0, "negative fractional width");
  static_assert(IntBits + FracBits <= 32, "use a wider accumulator type");

 public:
  static constexpr int kTotalBits = IntBits + FracBits;
  static constexpr int kFracBits = FracBits;
  using Storage = typename detail::StorageFor<kTotalBits>::type;
  using Wide = std::int64_t;

  static constexpr Storage kRawMax =
      static_cast<Storage>((Wide{1} << (kTotalBits - 1)) - 1);
  static constexpr Storage kRawMin =
      static_cast<Storage>(-(Wide{1} << (kTotalBits - 1)));
  static constexpr double kScale = static_cast<double>(Wide{1} << FracBits);

  constexpr Fixed() noexcept = default;

  /// Constructs from a raw integer representation (no scaling).
  [[nodiscard]] static constexpr Fixed from_raw(Storage raw) noexcept {
    Fixed f;
    f.raw_ = clamp_raw(static_cast<Wide>(raw));
    return f;
  }

  /// Constructs from a double, rounding to nearest and saturating.
  [[nodiscard]] static constexpr Fixed from_double(double v) noexcept {
    Fixed f;
    const double scaled = v * kScale;
    // constexpr-friendly round-half-away-from-zero
    const double r = scaled >= 0.0 ? scaled + 0.5 : scaled - 0.5;
    if (r >= static_cast<double>(kRawMax)) {
      f.raw_ = kRawMax;
    } else if (r <= static_cast<double>(kRawMin)) {
      f.raw_ = kRawMin;
    } else {
      f.raw_ = static_cast<Storage>(r);
    }
    return f;
  }

  [[nodiscard]] static constexpr Fixed from_int(Wide v) noexcept {
    Fixed f;
    f.raw_ = clamp_raw(v << FracBits);
    return f;
  }

  [[nodiscard]] constexpr Storage raw() const noexcept { return raw_; }
  [[nodiscard]] constexpr double to_double() const noexcept {
    return static_cast<double>(raw_) / kScale;
  }
  /// Integer part, truncated toward zero.
  [[nodiscard]] constexpr Wide to_int() const noexcept {
    return raw_ >= 0 ? (static_cast<Wide>(raw_) >> FracBits)
                     : -((-static_cast<Wide>(raw_)) >> FracBits);
  }

  [[nodiscard]] static constexpr Fixed max() noexcept {
    return from_raw(kRawMax);
  }
  [[nodiscard]] static constexpr Fixed min() noexcept {
    return from_raw(kRawMin);
  }
  [[nodiscard]] static constexpr Fixed epsilon() noexcept {
    return from_raw(1);
  }

  friend constexpr Fixed operator+(Fixed a, Fixed b) noexcept {
    return from_wide(static_cast<Wide>(a.raw_) + b.raw_);
  }
  friend constexpr Fixed operator-(Fixed a, Fixed b) noexcept {
    return from_wide(static_cast<Wide>(a.raw_) - b.raw_);
  }
  friend constexpr Fixed operator-(Fixed a) noexcept {
    return from_wide(-static_cast<Wide>(a.raw_));
  }
  friend constexpr Fixed operator*(Fixed a, Fixed b) noexcept {
    const Wide prod = static_cast<Wide>(a.raw_) * b.raw_;
    return from_wide(rounded_shift_right(prod, FracBits));
  }
  friend constexpr Fixed operator/(Fixed a, Fixed b) noexcept {
    if (b.raw_ == 0) return a.raw_ >= 0 ? max() : min();
    const Wide num = static_cast<Wide>(a.raw_) << FracBits;
    return from_wide(num / b.raw_);
  }

  constexpr Fixed& operator+=(Fixed o) noexcept { return *this = *this + o; }
  constexpr Fixed& operator-=(Fixed o) noexcept { return *this = *this - o; }
  constexpr Fixed& operator*=(Fixed o) noexcept { return *this = *this * o; }
  constexpr Fixed& operator/=(Fixed o) noexcept { return *this = *this / o; }

  friend constexpr auto operator<=>(Fixed a, Fixed b) noexcept {
    return a.raw_ <=> b.raw_;
  }
  friend constexpr bool operator==(Fixed a, Fixed b) noexcept {
    return a.raw_ == b.raw_;
  }

  [[nodiscard]] constexpr Fixed abs() const noexcept {
    return raw_ >= 0 ? *this : -*this;
  }

 private:
  [[nodiscard]] static constexpr Storage clamp_raw(Wide v) noexcept {
    if (v > static_cast<Wide>(kRawMax)) return kRawMax;
    if (v < static_cast<Wide>(kRawMin)) return kRawMin;
    return static_cast<Storage>(v);
  }
  [[nodiscard]] static constexpr Fixed from_wide(Wide v) noexcept {
    Fixed f;
    f.raw_ = clamp_raw(v);
    return f;
  }

  Storage raw_ = 0;
};

/// Q1.15: the coefficient format used throughout the DSP substrate.
using Q15 = Fixed<1, 15>;
/// Q16.16: intermediate format for delineation thresholds.
using Q16_16 = Fixed<16, 16>;

}  // namespace ulpdream::fixed
