#pragma once
// 16-bit sample helpers: the unit of storage in the paper's faulty data
// memory is a 16-bit integer sample (MIT-BIH style). All applications read
// and write Sample values; fixed-point multiplies use Q1.15 coefficients
// with 32-bit accumulation and saturating narrowing.

#include <cstdint>
#include <vector>

#include "ulpdream/fixed/fixed_point.hpp"

namespace ulpdream::fixed {

using Sample = std::int16_t;
using SampleVec = std::vector<Sample>;
using Accum = std::int32_t;

inline constexpr int kSampleBits = 16;
inline constexpr Sample kSampleMax = 32767;
inline constexpr Sample kSampleMin = -32768;

/// Saturating narrowing from a 32/64-bit accumulator to a 16-bit sample.
[[nodiscard]] constexpr Sample saturate_sample(std::int64_t v) noexcept {
  if (v > kSampleMax) return kSampleMax;
  if (v < kSampleMin) return kSampleMin;
  return static_cast<Sample>(v);
}

/// Multiply a sample by a Q1.15 coefficient, full-precision 32-bit result.
[[nodiscard]] constexpr Accum mul_q15(Sample s, Q15 coeff) noexcept {
  return static_cast<Accum>(s) * coeff.raw();
}

/// Finalizes a sum of mul_q15 products back to sample domain with
/// round-half-away rounding and saturation.
[[nodiscard]] constexpr Sample narrow_q15(std::int64_t acc) noexcept {
  return saturate_sample(rounded_shift_right(acc, 15));
}

/// Saturating sample addition/subtraction.
[[nodiscard]] constexpr Sample add_sat(Sample a, Sample b) noexcept {
  return saturate_sample(static_cast<std::int64_t>(a) + b);
}
[[nodiscard]] constexpr Sample sub_sat(Sample a, Sample b) noexcept {
  return saturate_sample(static_cast<std::int64_t>(a) - b);
}

/// Number of leading bits (from the MSB down) equal to the sign bit. For a
/// 16-bit word the result is in [1, 16]; e.g. 0x0001 -> 15, 0xFFFF -> 16,
/// 0x7FFF -> 1. This is the quantity DREAM's mask-ID logic computes in
/// hardware on every write.
[[nodiscard]] constexpr int sign_run_length(Sample s) noexcept {
  const auto u = static_cast<std::uint16_t>(s);
  const bool sign = (u & 0x8000u) != 0;
  int run = 0;
  for (int bit = 15; bit >= 0; --bit) {
    const bool b = (u >> bit) & 1u;
    if (b != sign) break;
    ++run;
  }
  return run;
}

/// Conversion helpers between physical units (millivolts) and ADC codes.
/// The ADC model mirrors front-ends used in WBSN nodes: a given full-scale
/// range mapped linearly onto the signed 16-bit code space.
struct AdcModel {
  double full_scale_mv = 5.0;  ///< +/- range in millivolts
  double offset_mv = 0.0;      ///< front-end DC offset applied before coding

  [[nodiscard]] Sample quantize(double mv) const noexcept {
    const double code =
        (mv + offset_mv) / full_scale_mv * static_cast<double>(kSampleMax);
    const double r = code >= 0.0 ? code + 0.5 : code - 0.5;
    return saturate_sample(static_cast<std::int64_t>(r));
  }

  [[nodiscard]] double to_mv(Sample s) const noexcept {
    return static_cast<double>(s) / static_cast<double>(kSampleMax) *
               full_scale_mv -
           offset_mv;
  }
};

/// Quantizes a waveform in millivolts to 16-bit codes.
[[nodiscard]] SampleVec quantize_waveform(const std::vector<double>& mv,
                                          const AdcModel& adc);

/// Converts a sample vector to doubles (raw code domain) for metric math.
[[nodiscard]] std::vector<double> to_doubles(const SampleVec& v);

}  // namespace ulpdream::fixed
