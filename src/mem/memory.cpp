#include "ulpdream/mem/memory.hpp"

#include <stdexcept>

#include "ulpdream/util/rng.hpp"

namespace ulpdream::mem {

void AccessStats::reset(std::size_t banks) {
  reads = 0;
  writes = 0;
  bank_reads.assign(banks, 0);
  bank_writes.assign(banks, 0);
}

FaultyMemory::FaultyMemory(std::size_t words, int width_bits, int banks)
    : width_(width_bits), banks_(banks), store_(words, 0) {
  if (width_bits <= 0 || width_bits > 32) {
    throw std::invalid_argument("FaultyMemory: width must be in [1, 32]");
  }
  if (banks <= 0) {
    throw std::invalid_argument("FaultyMemory: banks must be positive");
  }
  width_mask_ = width_bits == 32 ? 0xFFFFFFFFu : ((1u << width_bits) - 1u);
  stats_.reset(static_cast<std::size_t>(banks));
}

void FaultyMemory::attach_faults(const FaultMap* map) {
  if (map != nullptr) {
    if (map->words() < store_.size() || map->bits_per_word() < width_) {
      throw std::invalid_argument(
          "FaultyMemory: fault map does not cover this memory");
    }
  }
  faults_ = map;
}

void FaultyMemory::set_scrambler(std::uint64_t seed) {
  if (seed == 0) {
    scramble_mul_ = 1;
    scramble_add_ = 0;
    return;
  }
  // Affine permutation over the word index space. For power-of-two sizes
  // any odd multiplier is a bijection mod 2^k; we also fold in an additive
  // offset so the identity row 0 moves too.
  util::SplitMix64 sm(seed);
  scramble_mul_ = sm.next() | 1u;
  scramble_add_ = sm.next();
}

std::size_t FaultyMemory::physical(std::size_t logical) const {
  if (scramble_mul_ == 1 && scramble_add_ == 0) return logical;
  const std::uint64_t n = store_.size();
  return static_cast<std::size_t>(
      (static_cast<std::uint64_t>(logical) * scramble_mul_ + scramble_add_) %
      n);
}

void FaultyMemory::write(std::size_t addr, std::uint32_t bits) {
  const std::size_t phys = physical(addr);
  store_.at(phys) = bits & width_mask_;
  ++stats_.writes;
  ++stats_.bank_writes[static_cast<std::size_t>(bank_of(phys))];
}

std::uint32_t FaultyMemory::read(std::size_t addr) const {
  const std::size_t phys = physical(addr);
  std::uint32_t bits = store_.at(phys);
  if (faults_ != nullptr) bits = faults_->at(phys).apply(bits);
  ++stats_.reads;
  ++stats_.bank_reads[static_cast<std::size_t>(bank_of(phys))];
  return bits & width_mask_;
}

std::uint32_t FaultyMemory::peek_physical(std::size_t addr) const {
  const std::size_t phys = physical(addr);
  std::uint32_t bits = store_.at(phys);
  if (faults_ != nullptr) bits = faults_->at(phys).apply(bits);
  return bits & width_mask_;
}

void FaultyMemory::fill(std::uint32_t bits) {
  for (auto& w : store_) w = bits & width_mask_;
}

void FaultyMemory::reset_stats() {
  stats_.reset(static_cast<std::size_t>(banks_));
}

SafeMemory::SafeMemory(std::size_t words, int width_bits)
    : width_(width_bits), store_(words, 0) {
  if (width_bits <= 0 || width_bits > 16) {
    throw std::invalid_argument("SafeMemory: width must be in [1, 16]");
  }
  width_mask_ = static_cast<std::uint16_t>((1u << width_bits) - 1u);
  stats_.reset(1);
}

void SafeMemory::write(std::size_t addr, std::uint16_t bits) {
  store_.at(addr) = bits & width_mask_;
  ++stats_.writes;
  ++stats_.bank_writes[0];
}

std::uint16_t SafeMemory::read(std::size_t addr) const {
  ++stats_.reads;
  ++stats_.bank_reads[0];
  return store_.at(addr);
}

void SafeMemory::reset_stats() { stats_.reset(1); }

}  // namespace ulpdream::mem
