#include "ulpdream/mem/memory.hpp"

#include <stdexcept>

#include "ulpdream/util/rng.hpp"

namespace ulpdream::mem {

void AccessStats::reset(std::size_t banks) {
  reads = 0;
  writes = 0;
  bank_reads.assign(banks, 0);
  bank_writes.assign(banks, 0);
}

FaultyMemory::FaultyMemory(std::size_t words, int width_bits, int banks)
    : width_(width_bits), banks_(banks), store_(words, 0) {
  if (width_bits <= 0 || width_bits > 32) {
    throw std::invalid_argument("FaultyMemory: width must be in [1, 32]");
  }
  if (banks <= 0) {
    throw std::invalid_argument("FaultyMemory: banks must be positive");
  }
  width_mask_ = width_bits == 32 ? 0xFFFFFFFFu : ((1u << width_bits) - 1u);
  stats_.reset(static_cast<std::size_t>(banks));
}

void FaultyMemory::attach_faults(const FaultMap* map) {
  if (map != nullptr) {
    if (map->words() < store_.size()) {
      throw std::invalid_argument(
          "FaultyMemory: fault map covers " + std::to_string(map->words()) +
          " words, memory has " + std::to_string(store_.size()));
    }
    if (map->bits_per_word() < width_) {
      throw std::invalid_argument(
          "FaultyMemory: fault map is " +
          std::to_string(map->bits_per_word()) + " bits/word, memory needs " +
          std::to_string(width_));
    }
  }
  faults_ = map;
}

void FaultyMemory::set_scrambler(std::uint64_t seed) {
  if (seed == 0) {
    scramble_mul_ = 1;
    scramble_add_ = 0;
    return;
  }
  // Affine permutation over the word index space. For power-of-two sizes
  // any odd multiplier is a bijection mod 2^k; we also fold in an additive
  // offset so the identity row 0 moves too.
  util::SplitMix64 sm(seed);
  scramble_mul_ = sm.next() | 1u;
  scramble_add_ = sm.next();
}

std::size_t FaultyMemory::physical(std::size_t logical) const {
  if (scramble_mul_ == 1 && scramble_add_ == 0) return logical;
  const std::uint64_t n = store_.size();
  return static_cast<std::size_t>(
      (static_cast<std::uint64_t>(logical) * scramble_mul_ + scramble_add_) %
      n);
}

void FaultyMemory::write(std::size_t addr, std::uint32_t bits) {
  const std::size_t phys = physical(addr);
  store_.at(phys) = bits & width_mask_;
  ++stats_.writes;
  ++stats_.bank_writes[static_cast<std::size_t>(bank_of(phys))];
}

std::uint32_t FaultyMemory::read(std::size_t addr) const {
  const std::size_t phys = physical(addr);
  std::uint32_t bits = store_.at(phys);
  if (faults_ != nullptr) {
    if (const WordFaults* f = faults_->lookup(phys)) bits = f->apply(bits);
  }
  ++stats_.reads;
  ++stats_.bank_reads[static_cast<std::size_t>(bank_of(phys))];
  return bits & width_mask_;
}

namespace {
constexpr bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

// The block loops hoist the per-word costs of the scalar accessors — the
// cross-TU call, the at() bounds check and, for the power-of-two word and
// bank counts of the paper geometry, the 64-bit divisions behind the
// affine scrambler and the bank decode (x mod 2^k == x & (2^k - 1), and
// the affine map wraps mod 2^64 first, whose residue mod any 2^k divisor
// is unchanged). Addresses, stored bits and stats match the scalar loop
// exactly.

void FaultyMemory::write_block(std::size_t addr,
                               std::span<const std::uint32_t> src) {
  const std::size_t n = src.size();
  if (n > store_.size() || addr > store_.size() - n) {
    throw std::out_of_range("FaultyMemory::write_block: range");
  }
  const auto banks = static_cast<std::size_t>(banks_);
  const bool pow2_banks = is_pow2(banks);
  std::uint64_t* const bank_writes = stats_.bank_writes.data();
  const bool scrambled = scramble_mul_ != 1 || scramble_add_ != 0;
  const std::uint64_t words = store_.size();
  const bool pow2_words = is_pow2(words);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t phys = addr + i;
    if (scrambled) {
      const std::uint64_t mapped =
          static_cast<std::uint64_t>(phys) * scramble_mul_ + scramble_add_;
      phys = static_cast<std::size_t>(pow2_words ? mapped & (words - 1)
                                                 : mapped % words);
    }
    store_[phys] = src[i] & width_mask_;
    ++bank_writes[pow2_banks ? phys & (banks - 1) : phys % banks];
  }
  stats_.writes += n;
}

void FaultyMemory::read_block(std::size_t addr,
                              std::span<std::uint32_t> dst) const {
  const std::size_t n = dst.size();
  if (n > store_.size() || addr > store_.size() - n) {
    throw std::out_of_range("FaultyMemory::read_block: range");
  }
  const auto banks = static_cast<std::size_t>(banks_);
  const bool pow2_banks = is_pow2(banks);
  std::uint64_t* const bank_reads = stats_.bank_reads.data();
  const FaultMap* const faults = faults_;
  const bool scrambled = scramble_mul_ != 1 || scramble_add_ != 0;
  const std::uint64_t words = store_.size();
  const bool pow2_words = is_pow2(words);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t phys = addr + i;
    if (scrambled) {
      const std::uint64_t mapped =
          static_cast<std::uint64_t>(phys) * scramble_mul_ + scramble_add_;
      phys = static_cast<std::size_t>(pow2_words ? mapped & (words - 1)
                                                 : mapped % words);
    }
    std::uint32_t bits = store_[phys];
    if (faults != nullptr) {
      if (const WordFaults* f = faults->lookup(phys)) bits = f->apply(bits);
    }
    dst[i] = bits & width_mask_;
    ++bank_reads[pow2_banks ? phys & (banks - 1) : phys % banks];
  }
  stats_.reads += n;
}

std::uint32_t FaultyMemory::peek_physical(std::size_t addr) const {
  const std::size_t phys = physical(addr);
  std::uint32_t bits = store_.at(phys);
  if (faults_ != nullptr) {
    if (const WordFaults* f = faults_->lookup(phys)) bits = f->apply(bits);
  }
  return bits & width_mask_;
}

void FaultyMemory::fill(std::uint32_t bits) {
  for (auto& w : store_) w = bits & width_mask_;
}

void FaultyMemory::reset_stats() {
  stats_.reset(static_cast<std::size_t>(banks_));
}

SafeMemory::SafeMemory(std::size_t words, int width_bits)
    : width_(width_bits), store_(words, 0) {
  if (width_bits <= 0 || width_bits > 16) {
    throw std::invalid_argument("SafeMemory: width must be in [1, 16]");
  }
  width_mask_ = static_cast<std::uint16_t>((1u << width_bits) - 1u);
  stats_.reset(1);
}

void SafeMemory::write(std::size_t addr, std::uint16_t bits) {
  store_.at(addr) = bits & width_mask_;
  ++stats_.writes;
  ++stats_.bank_writes[0];
}

std::uint16_t SafeMemory::read(std::size_t addr) const {
  ++stats_.reads;
  ++stats_.bank_reads[0];
  return store_.at(addr);
}

void SafeMemory::write_block(std::size_t addr,
                             std::span<const std::uint16_t> src) {
  const std::size_t n = src.size();
  if (n > store_.size() || addr > store_.size() - n) {
    throw std::out_of_range("SafeMemory::write_block: range");
  }
  for (std::size_t i = 0; i < n; ++i) store_[addr + i] = src[i] & width_mask_;
  stats_.writes += n;
  stats_.bank_writes[0] += n;
}

void SafeMemory::read_block(std::size_t addr,
                            std::span<std::uint16_t> dst) const {
  const std::size_t n = dst.size();
  if (n > store_.size() || addr > store_.size() - n) {
    throw std::out_of_range("SafeMemory::read_block: range");
  }
  for (std::size_t i = 0; i < n; ++i) dst[i] = store_[addr + i];
  stats_.reads += n;
  stats_.bank_reads[0] += n;
}

void SafeMemory::reset_stats() { stats_.reset(1); }

}  // namespace ulpdream::mem
