#include "ulpdream/mem/memory.hpp"

#include <algorithm>
#include <stdexcept>

#include "ulpdream/util/rng.hpp"
#include "ulpdream/util/simd.hpp"
#include "ulpdream/util/telemetry.hpp"

#if ULPDREAM_SIMD_X86
#include <immintrin.h>
#endif

namespace ulpdream::mem {

namespace {
/// Words whose stored bits were rewritten by a FaultMap entry on read.
/// Block paths tally locally and flush once per call; the scalar read()
/// adds directly (it only pays when a fault actually applied).
const util::telemetry::Counter& fault_patch_counter() {
  static const util::telemetry::Counter counter("mem.fault_patch_words");
  return counter;
}
}  // namespace

void AccessStats::reset(std::size_t banks) {
  reads = 0;
  writes = 0;
  bank_reads.assign(banks, 0);
  bank_writes.assign(banks, 0);
}

FaultyMemory::FaultyMemory(std::size_t words, int width_bits, int banks)
    : width_(width_bits), banks_(banks), store_(words, 0) {
  if (width_bits <= 0 || width_bits > 32) {
    throw std::invalid_argument("FaultyMemory: width must be in [1, 32]");
  }
  if (banks <= 0) {
    throw std::invalid_argument("FaultyMemory: banks must be positive");
  }
  width_mask_ = width_bits == 32 ? 0xFFFFFFFFu : ((1u << width_bits) - 1u);
  stats_.reset(static_cast<std::size_t>(banks));
}

void FaultyMemory::attach_faults(const FaultMap* map) {
  if (map != nullptr) {
    if (map->words() < store_.size()) {
      throw std::invalid_argument(
          "FaultyMemory: fault map covers " + std::to_string(map->words()) +
          " words, memory has " + std::to_string(store_.size()));
    }
    if (map->bits_per_word() < width_) {
      throw std::invalid_argument(
          "FaultyMemory: fault map is " +
          std::to_string(map->bits_per_word()) + " bits/word, memory needs " +
          std::to_string(width_));
    }
  }
  faults_ = map;
}

void FaultyMemory::set_scrambler(std::uint64_t seed) {
  if (seed == 0) {
    scramble_mul_ = 1;
    scramble_add_ = 0;
    return;
  }
  // Affine permutation over the word index space. For power-of-two sizes
  // any odd multiplier is a bijection mod 2^k; we also fold in an additive
  // offset so the identity row 0 moves too.
  util::SplitMix64 sm(seed);
  scramble_mul_ = sm.next() | 1u;
  scramble_add_ = sm.next();
}

std::size_t FaultyMemory::physical(std::size_t logical) const {
  if (scramble_mul_ == 1 && scramble_add_ == 0) return logical;
  const std::uint64_t n = store_.size();
  return static_cast<std::size_t>(
      (static_cast<std::uint64_t>(logical) * scramble_mul_ + scramble_add_) %
      n);
}

void FaultyMemory::write(std::size_t addr, std::uint32_t bits) {
  const std::size_t phys = physical(addr);
  store_.at(phys) = bits & width_mask_;
  ++stats_.writes;
  ++stats_.bank_writes[static_cast<std::size_t>(bank_of(phys))];
}

std::uint32_t FaultyMemory::read(std::size_t addr) const {
  const std::size_t phys = physical(addr);
  std::uint32_t bits = store_.at(phys);
  if (faults_ != nullptr) {
    if (const WordFaults* f = faults_->lookup(phys)) {
      bits = f->apply(bits);
      fault_patch_counter().add();
    }
  }
  ++stats_.reads;
  ++stats_.bank_reads[static_cast<std::size_t>(bank_of(phys))];
  return bits & width_mask_;
}

namespace {

constexpr bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

// --- bank accounting, hoisted out of the word loops ----------------------
//
// Bank counts depend only on the physical address sequence, never on the
// data or the fault map, so the block loops compute them arithmetically in
// O(banks) instead of one memory-indirect increment per word.

// Contiguous run [phys, phys + n): every bank gets floor(n / banks), and
// the n % banks remainder lands on consecutive banks starting at
// phys % banks.
void add_contiguous_bank_counts(std::uint64_t* counts, std::size_t banks,
                                std::uint64_t phys, std::uint64_t n) {
  const std::uint64_t whole = n / banks;
  std::uint64_t rem = n % banks;
  if (whole != 0) {
    for (std::size_t b = 0; b < banks; ++b) counts[b] += whole;
  }
  auto b = static_cast<std::size_t>(phys % banks);
  while (rem-- > 0) {
    ++counts[b];
    if (++b == banks) b = 0;
  }
}

// Strided run phys_i = ((phys0 + i*step) mod 2^64) mod words, with words
// and banks powers of two and banks <= words: banks then divides both
// words and 2^64, so the bank residue collapses to (phys0 + i*step) mod
// banks, which depends only on i mod banks. Index class j therefore
// contributes ceil((n - j) / banks) accesses to bank (phys0 + j*step) mod
// banks.
void add_strided_bank_counts(std::uint64_t* counts, std::size_t banks,
                             std::uint64_t phys0, std::uint64_t step,
                             std::uint64_t n) {
  const std::uint64_t bmask = banks - 1;
  for (std::uint64_t j = 0; j < banks && j < n; ++j) {
    counts[(phys0 + j * step) & bmask] += (n - j + banks - 1) / banks;
  }
}

#if ULPDREAM_SIMD_X86

// Gathered read for the scrambled power-of-two geometry. Eight physical
// addresses per iteration via 32-bit lane arithmetic — (addr + i)*mul +
// add wraps mod 2^32, which agrees with the scalar mod-2^64 wrap on every
// bit the (<= 32-bit) word mask keeps — then a gathered word load, a
// gathered presence-bitmap test, and scalar patch-up only for lanes whose
// chunk actually holds faults. Returns how many words were handled; the
// caller finishes the tail with the scalar walk. The 16-bit instantiation
// packs the masked lanes down (exact: the caller guarantees the width
// mask fits 16 bits) for the staging-free raw-sample path.
template <typename Word>
__attribute__((target("avx2"))) std::size_t scrambled_gather_read_avx2(
    const std::uint32_t* store, std::uint64_t addr, std::uint64_t mul,
    std::uint64_t add, std::uint64_t wmask, std::uint32_t width_mask,
    const FaultMap* faults, Word* dst, std::size_t n,
    std::size_t* patched) {
  static_assert(FaultMap::kChunkWords == 64);
  const __m256i vmul =
      _mm256_set1_epi32(static_cast<int>(static_cast<std::uint32_t>(mul)));
  const __m256i vadd =
      _mm256_set1_epi32(static_cast<int>(static_cast<std::uint32_t>(add)));
  const __m256i vwmask =
      _mm256_set1_epi32(static_cast<int>(static_cast<std::uint32_t>(wmask)));
  const __m256i vwidth =
      _mm256_set1_epi32(static_cast<int>(width_mask));
  __m256i vi = _mm256_add_epi32(
      _mm256_set1_epi32(static_cast<int>(static_cast<std::uint32_t>(addr))),
      _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7));
  const __m256i v8 = _mm256_set1_epi32(8);
  const bool check_faults = faults != nullptr && faults->entry_count() != 0;
  // The u64 presence bitmap reinterpreted as u32 lanes (little-endian x86:
  // chunk bit c lives in u32 word c >> 5, bit c & 31).
  const auto* coarse32 =
      check_faults ? reinterpret_cast<const int*>(faults->presence_data())
                   : nullptr;
  alignas(32) std::uint32_t phys_buf[8];
  alignas(32) std::uint32_t bits_buf[8];
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8, vi = _mm256_add_epi32(vi, v8)) {
    const __m256i phys = _mm256_and_si256(
        _mm256_add_epi32(_mm256_mullo_epi32(vi, vmul), vadd), vwmask);
    __m256i bits = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(store), phys, 4);
    if (check_faults) {
      const __m256i chunk = _mm256_srli_epi32(phys, 6);
      const __m256i cword = _mm256_i32gather_epi32(
          coarse32, _mm256_srli_epi32(chunk, 5), 4);
      const __m256i hit = _mm256_and_si256(
          _mm256_srlv_epi32(cword,
                            _mm256_and_si256(chunk, _mm256_set1_epi32(31))),
          _mm256_set1_epi32(1));
      if (!_mm256_testz_si256(hit, hit)) {
        _mm256_store_si256(reinterpret_cast<__m256i*>(phys_buf), phys);
        _mm256_store_si256(reinterpret_cast<__m256i*>(bits_buf), bits);
        for (int lane = 0; lane < 8; ++lane) {
          if (const WordFaults* f = faults->lookup(phys_buf[lane])) {
            bits_buf[lane] = f->apply(bits_buf[lane]);
            ++*patched;
          }
        }
        bits = _mm256_load_si256(reinterpret_cast<const __m256i*>(bits_buf));
      }
    }
    const __m256i masked = _mm256_and_si256(bits, vwidth);
    if constexpr (sizeof(Word) == 4) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), masked);
    } else {
      static_assert(sizeof(Word) == 2);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                       _mm_packus_epi32(_mm256_castsi256_si128(masked),
                                        _mm256_extracti128_si256(masked, 1)));
    }
  }
  return i;
}

#endif  // ULPDREAM_SIMD_X86

}  // namespace

// The block loops hoist the per-word costs of the scalar accessors — the
// cross-TU call, the at() bounds check and, for the power-of-two word and
// bank counts of the paper geometry, the 64-bit divisions behind the
// affine scrambler and the bank decode (x mod 2^k == x & (2^k - 1), and
// the affine map wraps mod 2^64 first, whose residue mod any 2^k divisor
// is unchanged). On top of that, bank stats are computed arithmetically,
// unscrambled runs move data with wide copies (skipping per-word fault
// lookups for chunks the presence bitmap marks clean), and the scrambled
// power-of-two read dispatches to a gathered AVX2 kernel when available.
// Addresses, stored bits and stats match the scalar loop exactly on every
// path.

template <typename Word>
void FaultyMemory::write_block_impl(std::size_t addr, const Word* src,
                                    std::size_t n) {
  if (n > store_.size() || addr > store_.size() - n) {
    throw std::out_of_range("FaultyMemory::write_block: range");
  }
  const auto banks = static_cast<std::size_t>(banks_);
  const bool pow2_banks = is_pow2(banks);
  std::uint64_t* const bank_writes = stats_.bank_writes.data();
  const bool scrambled = scramble_mul_ != 1 || scramble_add_ != 0;
  const std::uint64_t words = store_.size();
  const std::uint32_t wm = width_mask_;
  stats_.writes += n;
  if (!scrambled) {
    std::uint32_t* const out = store_.data() + addr;
    for (std::size_t i = 0; i < n; ++i) out[i] = src[i] & wm;
    add_contiguous_bank_counts(bank_writes, banks, addr, n);
    return;
  }
  if (is_pow2(words)) {
    const std::uint64_t wmask = words - 1;
    const std::uint64_t step = scramble_mul_ & wmask;
    const std::uint64_t phys0 =
        (static_cast<std::uint64_t>(addr) * scramble_mul_ + scramble_add_) &
        wmask;
    // Four independent address chains: the scatter itself is inherently
    // scalar (no scatter op below AVX-512), but one chain's add+mask
    // recurrence would cap the loop at 2 cycles/word.
    const std::uint64_t step4 = (step * 4) & wmask;
    std::uint64_t p0 = phys0;
    std::uint64_t p1 = (p0 + step) & wmask;
    std::uint64_t p2 = (p1 + step) & wmask;
    std::uint64_t p3 = (p2 + step) & wmask;
    std::uint32_t* const mem = store_.data();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      mem[static_cast<std::size_t>(p0)] = src[i] & wm;
      mem[static_cast<std::size_t>(p1)] = src[i + 1] & wm;
      mem[static_cast<std::size_t>(p2)] = src[i + 2] & wm;
      mem[static_cast<std::size_t>(p3)] = src[i + 3] & wm;
      p0 = (p0 + step4) & wmask;
      p1 = (p1 + step4) & wmask;
      p2 = (p2 + step4) & wmask;
      p3 = (p3 + step4) & wmask;
    }
    for (; i < n; ++i) {
      mem[static_cast<std::size_t>(p0)] = src[i] & wm;
      p0 = (p0 + step) & wmask;
    }
    if (pow2_banks && banks <= words) {
      add_strided_bank_counts(bank_writes, banks, phys0, step, n);
    } else {
      std::uint64_t phys = phys0;
      for (std::size_t j = 0; j < n; ++j) {
        ++bank_writes[static_cast<std::size_t>(phys % banks)];
        phys = (phys + step) & wmask;
      }
    }
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t mapped =
        static_cast<std::uint64_t>(addr + i) * scramble_mul_ + scramble_add_;
    const auto phys = static_cast<std::size_t>(mapped % words);
    store_[phys] = src[i] & wm;
    ++bank_writes[pow2_banks ? phys & (banks - 1) : phys % banks];
  }
}

void FaultyMemory::write_block(std::size_t addr,
                               std::span<const std::uint32_t> src) {
  write_block_impl(addr, src.data(), src.size());
}

void FaultyMemory::write_block(std::size_t addr,
                               std::span<const std::uint16_t> src) {
  write_block_impl(addr, src.data(), src.size());
}

template <typename Word>
void FaultyMemory::read_block_impl(std::size_t addr, Word* dst,
                                   std::size_t n) const {
  if (n > store_.size() || addr > store_.size() - n) {
    throw std::out_of_range("FaultyMemory::read_block: range");
  }
  const auto banks = static_cast<std::size_t>(banks_);
  const bool pow2_banks = is_pow2(banks);
  std::uint64_t* const bank_reads = stats_.bank_reads.data();
  const FaultMap* const faults = faults_;
  const bool scrambled = scramble_mul_ != 1 || scramble_add_ != 0;
  const std::uint64_t words = store_.size();
  const std::uint32_t wm = width_mask_;
  // Tallied locally in the loops, flushed to telemetry once per call.
  std::size_t patched = 0;
  stats_.reads += n;
  if (!scrambled) {
    const std::uint32_t* const src = store_.data() + addr;
    Word* const out = dst;
    if (faults == nullptr || faults->entry_count() == 0) {
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = static_cast<Word>(src[i] & wm);
      }
    } else {
      // Walk chunk by chunk: one presence bit decides between a wide copy
      // and the per-word lookup loop.
      std::size_t i = 0;
      while (i < n) {
        const std::size_t phys = addr + i;
        const std::size_t chunk = phys / FaultMap::kChunkWords;
        const std::size_t run_end = std::min<std::size_t>(
            n, (chunk + 1) * FaultMap::kChunkWords - addr);
        if (faults->chunk_clean(chunk)) {
          for (; i < run_end; ++i) out[i] = static_cast<Word>(src[i] & wm);
        } else {
          for (; i < run_end; ++i) {
            std::uint32_t bits = src[i];
            if (const WordFaults* f = faults->lookup(addr + i)) {
              bits = f->apply(bits);
              ++patched;
            }
            out[i] = static_cast<Word>(bits & wm);
          }
        }
      }
    }
    add_contiguous_bank_counts(bank_reads, banks, addr, n);
    if (patched != 0) fault_patch_counter().add(patched);
    return;
  }
  if (is_pow2(words)) {
    const std::uint64_t wmask = words - 1;
    const std::uint64_t step = scramble_mul_ & wmask;
    const std::uint64_t phys0 =
        (static_cast<std::uint64_t>(addr) * scramble_mul_ + scramble_add_) &
        wmask;
    std::size_t i = 0;
#if ULPDREAM_SIMD_X86
    if (util::simd::active_tier() >= util::simd::Tier::kAvx2 &&
        wmask <= 0xFFFFFFFFu) {
      i = scrambled_gather_read_avx2(store_.data(), addr, scramble_mul_,
                                     scramble_add_, wmask, wm, faults, dst,
                                     n, &patched);
    }
#endif
    std::uint64_t phys = (phys0 + i * step) & wmask;
    for (; i < n; ++i) {
      std::uint32_t bits = store_[static_cast<std::size_t>(phys)];
      if (faults != nullptr) {
        if (const WordFaults* f =
                faults->lookup(static_cast<std::size_t>(phys))) {
          bits = f->apply(bits);
          ++patched;
        }
      }
      dst[i] = static_cast<Word>(bits & wm);
      phys = (phys + step) & wmask;
    }
    if (pow2_banks && banks <= words) {
      add_strided_bank_counts(bank_reads, banks, phys0, step, n);
    } else {
      phys = phys0;
      for (std::size_t j = 0; j < n; ++j) {
        ++bank_reads[static_cast<std::size_t>(phys % banks)];
        phys = (phys + step) & wmask;
      }
    }
    if (patched != 0) fault_patch_counter().add(patched);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t mapped =
        static_cast<std::uint64_t>(addr + i) * scramble_mul_ + scramble_add_;
    const auto phys = static_cast<std::size_t>(mapped % words);
    std::uint32_t bits = store_[phys];
    if (faults != nullptr) {
      if (const WordFaults* f = faults->lookup(phys)) {
        bits = f->apply(bits);
        ++patched;
      }
    }
    dst[i] = static_cast<Word>(bits & wm);
    ++bank_reads[pow2_banks ? phys & (banks - 1) : phys % banks];
  }
  if (patched != 0) fault_patch_counter().add(patched);
}

void FaultyMemory::read_block(std::size_t addr,
                              std::span<std::uint32_t> dst) const {
  read_block_impl(addr, dst.data(), dst.size());
}

void FaultyMemory::read_block(std::size_t addr,
                              std::span<std::uint16_t> dst) const {
  if (width_ > 16) {
    throw std::logic_error(
        "FaultyMemory::read_block: 16-bit destination for a " +
        std::to_string(width_) + "-bit word");
  }
  read_block_impl(addr, dst.data(), dst.size());
}

std::uint32_t FaultyMemory::peek_physical(std::size_t addr) const {
  const std::size_t phys = physical(addr);
  std::uint32_t bits = store_.at(phys);
  if (faults_ != nullptr) {
    if (const WordFaults* f = faults_->lookup(phys)) bits = f->apply(bits);
  }
  return bits & width_mask_;
}

void FaultyMemory::fill(std::uint32_t bits) {
  for (auto& w : store_) w = bits & width_mask_;
}

void FaultyMemory::reset_stats() {
  stats_.reset(static_cast<std::size_t>(banks_));
}

SafeMemory::SafeMemory(std::size_t words, int width_bits)
    : width_(width_bits), store_(words, 0) {
  if (width_bits <= 0 || width_bits > 16) {
    throw std::invalid_argument("SafeMemory: width must be in [1, 16]");
  }
  width_mask_ = static_cast<std::uint16_t>((1u << width_bits) - 1u);
  stats_.reset(1);
}

void SafeMemory::write(std::size_t addr, std::uint16_t bits) {
  store_.at(addr) = bits & width_mask_;
  ++stats_.writes;
  ++stats_.bank_writes[0];
}

std::uint16_t SafeMemory::read(std::size_t addr) const {
  ++stats_.reads;
  ++stats_.bank_reads[0];
  return store_.at(addr);
}

void SafeMemory::write_block(std::size_t addr,
                             std::span<const std::uint16_t> src) {
  const std::size_t n = src.size();
  if (n > store_.size() || addr > store_.size() - n) {
    throw std::out_of_range("SafeMemory::write_block: range");
  }
  for (std::size_t i = 0; i < n; ++i) store_[addr + i] = src[i] & width_mask_;
  stats_.writes += n;
  stats_.bank_writes[0] += n;
}

void SafeMemory::read_block(std::size_t addr,
                            std::span<std::uint16_t> dst) const {
  const std::size_t n = dst.size();
  if (n > store_.size() || addr > store_.size() - n) {
    throw std::out_of_range("SafeMemory::read_block: range");
  }
  for (std::size_t i = 0; i < n; ++i) dst[i] = store_[addr + i];
  stats_.reads += n;
  stats_.bank_reads[0] += n;
}

void SafeMemory::reset_stats() { stats_.reset(1); }

}  // namespace ulpdream::mem
