#include "ulpdream/mem/ber_model.hpp"

#include <cmath>
#include <stdexcept>

namespace ulpdream::mem {

LogLinearBerModel::LogLinearBerModel(double ber_nominal, double ber_min,
                                     double v_nominal, double v_min)
    : v_min_(v_min), log_ber_min_(std::log10(ber_min)) {
  if (!(ber_nominal > 0.0 && ber_min > 0.0 && ber_min <= 1.0)) {
    throw std::invalid_argument("LogLinearBerModel: BER must be in (0, 1]");
  }
  if (!(v_nominal > v_min)) {
    throw std::invalid_argument("LogLinearBerModel: v_nominal <= v_min");
  }
  slope_ = (std::log10(ber_nominal) - log_ber_min_) / (v_nominal - v_min);
}

double LogLinearBerModel::ber(double v) const {
  const double log_ber = log_ber_min_ + slope_ * (v - v_min_);
  const double b = std::pow(10.0, log_ber);
  return b > 1.0 ? 1.0 : b;
}

ProbitBerModel::ProbitBerModel(double v50, double sigma)
    : v50_(v50), sigma_(sigma) {
  if (sigma <= 0.0) {
    throw std::invalid_argument("ProbitBerModel: sigma must be positive");
  }
}

double ProbitBerModel::ber(double v) const {
  return 0.5 * std::erfc((v - v50_) / (std::sqrt(2.0) * sigma_));
}

util::Registry<BerModel>& ber_model_registry() {
  static util::Registry<BerModel> registry("BER model");
  static const bool built_ins = [] {
    registry.register_factory(
        "log-linear", [] { return std::make_unique<LogLinearBerModel>(); },
        {"Log-linear BER(V)",
         "log10(BER) linear in V, calibrated to the 0.5-0.9 V window",
         {util::kCapPaper},
         static_cast<int>(BerModelKind::kLogLinear)});
    registry.register_factory(
        "probit", [] { return std::make_unique<ProbitBerModel>(); },
        {"Probit BER(V)",
         "erfc cell-failure model from Gaussian Vth variation (D2 ablation)",
         {util::kCapExtendedTier},
         static_cast<int>(BerModelKind::kProbit)});
    return true;
  }();
  (void)built_ins;
  return registry;
}

std::unique_ptr<BerModel> make_ber_model(const std::string& name) {
  return ber_model_registry().create(name);
}

std::vector<std::string> ber_model_names() {
  return ber_model_registry().names();
}

std::string ber_model_kind_name(BerModelKind kind) {
  return ber_model_registry().name_by_tag(static_cast<int>(kind));
}

std::unique_ptr<BerModel> make_ber_model(BerModelKind kind) {
  return make_ber_model(ber_model_kind_name(kind));
}

}  // namespace ulpdream::mem
