#include "ulpdream/mem/ber_model.hpp"

#include <cmath>
#include <stdexcept>

namespace ulpdream::mem {

LogLinearBerModel::LogLinearBerModel(double ber_nominal, double ber_min,
                                     double v_nominal, double v_min)
    : v_min_(v_min), log_ber_min_(std::log10(ber_min)) {
  if (!(ber_nominal > 0.0 && ber_min > 0.0 && ber_min <= 1.0)) {
    throw std::invalid_argument("LogLinearBerModel: BER must be in (0, 1]");
  }
  if (!(v_nominal > v_min)) {
    throw std::invalid_argument("LogLinearBerModel: v_nominal <= v_min");
  }
  slope_ = (std::log10(ber_nominal) - log_ber_min_) / (v_nominal - v_min);
}

double LogLinearBerModel::ber(double v) const {
  const double log_ber = log_ber_min_ + slope_ * (v - v_min_);
  const double b = std::pow(10.0, log_ber);
  return b > 1.0 ? 1.0 : b;
}

ProbitBerModel::ProbitBerModel(double v50, double sigma)
    : v50_(v50), sigma_(sigma) {
  if (sigma <= 0.0) {
    throw std::invalid_argument("ProbitBerModel: sigma must be positive");
  }
}

double ProbitBerModel::ber(double v) const {
  return 0.5 * std::erfc((v - v50_) / (std::sqrt(2.0) * sigma_));
}

std::unique_ptr<BerModel> make_ber_model(BerModelKind kind) {
  switch (kind) {
    case BerModelKind::kLogLinear:
      return std::make_unique<LogLinearBerModel>();
    case BerModelKind::kProbit:
      return std::make_unique<ProbitBerModel>();
  }
  throw std::invalid_argument("unknown BER model kind");
}

}  // namespace ulpdream::mem
