#include "ulpdream/mem/fault_map.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace ulpdream::mem {

namespace {
const WordFaults kCleanWord{};
}  // namespace

FaultMap::FaultMap(std::size_t words, int bits_per_word)
    : bits_(bits_per_word), words_(words) {
  if (bits_per_word <= 0 || bits_per_word > 32) {
    throw std::invalid_argument("FaultMap: bits_per_word must be in [1, 32]");
  }
  if (words > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument("FaultMap: word count exceeds index range");
  }
  rebuild_accelerators();
}

void FaultMap::rebuild_accelerators() {
  const std::size_t chunks = (words_ + kChunkWords - 1) / kChunkWords;
  coarse_.assign((chunks + 63) / 64 + 1, 0);  // +1: lookup never reads OOB
  chunk_start_.assign(chunks + 1, 0);
  std::size_t slot = 0;
  for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
    chunk_start_[chunk] = static_cast<std::uint32_t>(slot);
    const std::size_t end_word = (chunk + 1) * kChunkWords;
    const std::size_t begin = slot;
    while (slot < index_.size() && index_[slot] < end_word) ++slot;
    if (slot != begin) coarse_[chunk >> 6] |= std::uint64_t{1} << (chunk & 63);
  }
  chunk_start_[chunks] = static_cast<std::uint32_t>(slot);
}

const WordFaults& FaultMap::at(std::size_t word) const {
  if (word >= words_) throw std::out_of_range("FaultMap::at: word index");
  const auto it = std::lower_bound(index_.begin(), index_.end(),
                                   static_cast<std::uint32_t>(word));
  if (it == index_.end() || *it != word) return kCleanWord;
  return faults_[static_cast<std::size_t>(it - index_.begin())];
}

WordFaults& FaultMap::edit(std::size_t word) {
  if (word >= words_) throw std::out_of_range("FaultMap::edit: word index");
  const auto it = std::lower_bound(index_.begin(), index_.end(),
                                   static_cast<std::uint32_t>(word));
  const auto slot = static_cast<std::size_t>(it - index_.begin());
  if (it == index_.end() || *it != word) {
    index_.insert(it, static_cast<std::uint32_t>(word));
    faults_.insert(faults_.begin() + static_cast<std::ptrdiff_t>(slot),
                   WordFaults{});
    const std::size_t chunk = word / kChunkWords;
    coarse_[chunk >> 6] |= std::uint64_t{1} << (chunk & 63);
    for (std::size_t c = chunk + 1; c < chunk_start_.size(); ++c) {
      ++chunk_start_[c];
    }
  }
  return faults_[slot];
}

FaultMap FaultMap::random(std::size_t words, int bits_per_word, double ber,
                          util::Xoshiro256& rng) {
  FaultMap map(words, bits_per_word);
  if (ber <= 0.0 || words == 0) return map;
  const std::uint64_t cells =
      static_cast<std::uint64_t>(words) * static_cast<std::uint64_t>(bits_per_word);
  std::uint64_t fault_target = rng.binomial(cells, ber);
  if (fault_target > cells) fault_target = cells;

  // Place faults at distinct cells. For the BER range we sweep the target
  // is a small fraction of the cell count, so rejection sampling on a hash
  // set terminates quickly. The RNG consumption order is load-bearing: it
  // must not depend on the storage layout, so placements accumulate in a
  // hash map and are sorted into the sparse arrays afterwards.
  std::unordered_set<std::uint64_t> placed;
  placed.reserve(static_cast<std::size_t>(fault_target) * 2);
  std::unordered_map<std::uint32_t, WordFaults> by_word;
  by_word.reserve(static_cast<std::size_t>(fault_target) * 2);
  while (placed.size() < fault_target) {
    const std::uint64_t cell = rng.bounded(cells);
    if (!placed.insert(cell).second) continue;
    const auto word = static_cast<std::uint32_t>(
        cell / static_cast<std::uint64_t>(bits_per_word));
    const auto bit = static_cast<int>(cell % static_cast<std::uint64_t>(bits_per_word));
    const std::uint32_t bitmask = 1u << bit;
    WordFaults& wf = by_word[word];
    wf.mask |= bitmask;
    if (rng.bernoulli(0.5)) {
      wf.value |= bitmask;
    }
  }

  map.index_.reserve(by_word.size());
  for (const auto& [word, wf] : by_word) map.index_.push_back(word);
  std::sort(map.index_.begin(), map.index_.end());
  map.faults_.reserve(by_word.size());
  for (const std::uint32_t word : map.index_) {
    map.faults_.push_back(by_word[word]);
  }
  map.rebuild_accelerators();
  return map;
}

FaultMap FaultMap::stuck_bit(std::size_t words, int bits_per_word, int bit,
                             bool value) {
  if (bit < 0 || bit >= bits_per_word) {
    throw std::invalid_argument("FaultMap::stuck_bit: bit out of range");
  }
  FaultMap map(words, bits_per_word);
  const std::uint32_t bitmask = 1u << bit;
  map.index_.resize(words);
  for (std::size_t w = 0; w < words; ++w) {
    map.index_[w] = static_cast<std::uint32_t>(w);
  }
  map.faults_.assign(words, WordFaults{bitmask, value ? bitmask : 0u});
  map.rebuild_accelerators();
  return map;
}

std::size_t FaultMap::fault_count() const noexcept {
  std::size_t count = 0;
  for (const auto& wf : faults_) {
    count += static_cast<std::size_t>(std::popcount(wf.mask));
  }
  return count;
}

std::size_t FaultMap::words_with_at_least(int k) const noexcept {
  if (k <= 0) return words_;  // clean words trivially have >= 0 faults
  std::size_t count = 0;
  for (const auto& wf : faults_) {
    if (std::popcount(wf.mask) >= k) ++count;
  }
  return count;
}

}  // namespace ulpdream::mem
