#include "ulpdream/mem/fault_map.hpp"

#include <bit>
#include <stdexcept>
#include <unordered_set>

namespace ulpdream::mem {

FaultMap::FaultMap(std::size_t words, int bits_per_word)
    : bits_(bits_per_word), faults_(words) {
  if (bits_per_word <= 0 || bits_per_word > 32) {
    throw std::invalid_argument("FaultMap: bits_per_word must be in [1, 32]");
  }
}

FaultMap FaultMap::random(std::size_t words, int bits_per_word, double ber,
                          util::Xoshiro256& rng) {
  FaultMap map(words, bits_per_word);
  if (ber <= 0.0 || words == 0) return map;
  const std::uint64_t cells =
      static_cast<std::uint64_t>(words) * static_cast<std::uint64_t>(bits_per_word);
  std::uint64_t fault_target = rng.binomial(cells, ber);
  if (fault_target > cells) fault_target = cells;

  // Place faults at distinct cells. For the BER range we sweep the target
  // is a small fraction of the cell count, so rejection sampling on a hash
  // set terminates quickly.
  std::unordered_set<std::uint64_t> placed;
  placed.reserve(static_cast<std::size_t>(fault_target) * 2);
  while (placed.size() < fault_target) {
    const std::uint64_t cell = rng.bounded(cells);
    if (!placed.insert(cell).second) continue;
    const auto word = static_cast<std::size_t>(cell / static_cast<std::uint64_t>(bits_per_word));
    const auto bit = static_cast<int>(cell % static_cast<std::uint64_t>(bits_per_word));
    const std::uint32_t bitmask = 1u << bit;
    map.faults_[word].mask |= bitmask;
    if (rng.bernoulli(0.5)) {
      map.faults_[word].value |= bitmask;
    }
  }
  return map;
}

FaultMap FaultMap::stuck_bit(std::size_t words, int bits_per_word, int bit,
                             bool value) {
  if (bit < 0 || bit >= bits_per_word) {
    throw std::invalid_argument("FaultMap::stuck_bit: bit out of range");
  }
  FaultMap map(words, bits_per_word);
  const std::uint32_t bitmask = 1u << bit;
  for (auto& wf : map.faults_) {
    wf.mask = bitmask;
    wf.value = value ? bitmask : 0u;
  }
  return map;
}

std::size_t FaultMap::fault_count() const noexcept {
  std::size_t count = 0;
  for (const auto& wf : faults_) {
    count += static_cast<std::size_t>(std::popcount(wf.mask));
  }
  return count;
}

std::size_t FaultMap::words_with_at_least(int k) const noexcept {
  std::size_t count = 0;
  for (const auto& wf : faults_) {
    if (std::popcount(wf.mask) >= k) ++count;
  }
  return count;
}

}  // namespace ulpdream::mem
