#pragma once
// The INYU-style banked data memory model (VirtualSOC substitute, see
// DESIGN.md). A 32 kB shared memory organized as 16 banks behind a
// crossbar, accessed word-at-a-time at 200 MHz. The data array can be
// voltage-scaled and therefore carries a stuck-at fault map; the small
// side array used by DREAM for mask IDs always runs at nominal voltage and
// is error-free by construction.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "ulpdream/mem/fault_map.hpp"

namespace ulpdream::mem {

/// Geometry defaults taken from the paper's experimental setup (Sec. V).
struct MemoryGeometry {
  static constexpr std::size_t kBytes = 32 * 1024;
  static constexpr std::size_t kWords16 = kBytes / 2;  ///< 16384 words
  static constexpr int kBanks = 16;
  static constexpr double kClockHz = 200e6;
};

/// Read/write counters, total and per bank — the access traces the energy
/// model integrates over.
struct AccessStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::vector<std::uint64_t> bank_reads;
  std::vector<std::uint64_t> bank_writes;

  void reset(std::size_t banks);
  [[nodiscard]] std::uint64_t total() const noexcept { return reads + writes; }
};

/// Word-addressable memory with configurable word width (16 data bits plus
/// any EMT check bits stored in the scaled array), banking, an optional
/// stuck-at fault map and an optional logical->physical address scrambler.
class FaultyMemory {
 public:
  FaultyMemory(std::size_t words, int width_bits,
               int banks = MemoryGeometry::kBanks);

  [[nodiscard]] std::size_t words() const noexcept { return store_.size(); }
  [[nodiscard]] int width_bits() const noexcept { return width_; }
  [[nodiscard]] int banks() const noexcept { return banks_; }

  /// Attaches (non-owning) a fault map; pass nullptr to clear. The map's
  /// geometry is validated: it must cover this memory (word count >= words()
  /// and bits_per_word >= width_bits()), otherwise std::invalid_argument is
  /// thrown and the previously attached map stays in effect.
  void attach_faults(const FaultMap* map);

  /// Enables logical->physical address scrambling with the given seed
  /// (0 disables). Scrambling randomizes which logical word lands on which
  /// physical (possibly faulty) row — the paper's Sec. V randomization.
  void set_scrambler(std::uint64_t seed);

  void write(std::size_t addr, std::uint32_t bits);
  [[nodiscard]] std::uint32_t read(std::size_t addr) const;

  /// Block transfers: semantically identical to a loop of word accesses
  /// over [addr, addr + span size) — same scrambling, fault application,
  /// masking and per-bank stats — but with the address math, fault lookup
  /// and bookkeeping hoisted into one tight loop and a single bounds
  /// check. The batched data path (ProtectedBuffer::load/store) is built
  /// on these. Throws std::out_of_range when the range does not fit.
  void write_block(std::size_t addr, std::span<const std::uint32_t> src);
  void read_block(std::size_t addr, std::span<std::uint32_t> dst) const;

  /// 16-bit block transfers for EMTs whose payload is the raw sample word
  /// (width_bits() <= 16): same semantics as the 32-bit overloads — writes
  /// zero-extend, reads truncate after the width mask, which loses nothing
  /// when the word fits in 16 bits — without a 32-bit staging buffer in
  /// the caller. The 16-bit read throws std::logic_error on a wider word.
  void write_block(std::size_t addr, std::span<const std::uint16_t> src);
  void read_block(std::size_t addr, std::span<std::uint16_t> dst) const;

  /// Bits as physically stored (after stuck-at application), for tests.
  [[nodiscard]] std::uint32_t peek_physical(std::size_t addr) const;

  void fill(std::uint32_t bits);

  [[nodiscard]] const AccessStats& stats() const noexcept { return stats_; }
  void reset_stats();

 private:
  /// Shared bodies of the 32/16-bit block overloads (memory.cpp).
  template <typename Word>
  void write_block_impl(std::size_t addr, const Word* src, std::size_t n);
  template <typename Word>
  void read_block_impl(std::size_t addr, Word* dst, std::size_t n) const;

  [[nodiscard]] std::size_t physical(std::size_t logical) const;
  [[nodiscard]] int bank_of(std::size_t phys) const noexcept {
    return static_cast<int>(phys % static_cast<std::size_t>(banks_));
  }

  int width_ = 16;
  int banks_ = MemoryGeometry::kBanks;
  std::uint32_t width_mask_ = 0xFFFFu;
  std::vector<std::uint32_t> store_;
  const FaultMap* faults_ = nullptr;
  std::uint64_t scramble_mul_ = 1;  ///< odd multiplier (identity when 1, add 0)
  std::uint64_t scramble_add_ = 0;
  mutable AccessStats stats_;
};

/// Error-free side memory (always at nominal voltage): DREAM's mask-ID and
/// sign-bit store. Narrow words (<= 16 bits).
class SafeMemory {
 public:
  SafeMemory(std::size_t words, int width_bits);

  [[nodiscard]] std::size_t words() const noexcept { return store_.size(); }
  [[nodiscard]] int width_bits() const noexcept { return width_; }

  void write(std::size_t addr, std::uint16_t bits);
  [[nodiscard]] std::uint16_t read(std::size_t addr) const;

  /// Block transfers, loop-equivalent to the word accessors (see
  /// FaultyMemory::write_block).
  void write_block(std::size_t addr, std::span<const std::uint16_t> src);
  void read_block(std::size_t addr, std::span<std::uint16_t> dst) const;

  [[nodiscard]] const AccessStats& stats() const noexcept { return stats_; }
  void reset_stats();

 private:
  int width_;
  std::uint16_t width_mask_;
  std::vector<std::uint16_t> store_;
  mutable AccessStats stats_;
};

}  // namespace ulpdream::mem
