#pragma once
// Permanent (stuck-at) fault maps. A fault map assigns each word a set of
// stuck bit positions and the value each is stuck at; the memory model
// applies them on every read (equivalent to cells ignoring writes).
//
// Two generators mirror the paper's two experiments:
//  - random(): i.i.d. cell faults at a given BER — one fresh map per
//    Monte-Carlo run (Sec. V: "a different random fault-location map for
//    every run", justified by logical/physical address randomization);
//  - stuck_bit(): the deterministic Fig. 2 characterization pattern — one
//    chosen data-bit position stuck at 0 or 1 in *every* word.
//
// Storage is sparse: at the BERs the paper sweeps (>= ~0.7 V) well over
// 99% of words carry no fault, so the map keeps only the faulty words — a
// sorted word-index array with a parallel WordFaults array — plus two
// coarse geometry-sized-but-tiny accelerators: a presence bitmap (one bit
// per kChunkWords-word chunk, so clean words are rejected with a single
// bit test on the memory read path) and per-chunk slot offsets (so a hit
// scans at most one chunk's entries). Map memory therefore scales with the
// fault count, not the geometry.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "ulpdream/util/rng.hpp"

namespace ulpdream::mem {

/// Per-word stuck-at description: bit i is stuck iff mask bit i is set,
/// and then reads as the corresponding bit of `value`.
struct WordFaults {
  std::uint32_t mask = 0;
  std::uint32_t value = 0;

  /// Applies the faults to stored bits.
  [[nodiscard]] constexpr std::uint32_t apply(std::uint32_t stored) const {
    return (stored & ~mask) | (value & mask);
  }
};

class FaultMap {
 public:
  /// Words covered by one presence bit of the coarse bitmap.
  static constexpr std::size_t kChunkWords = 64;

  FaultMap() = default;
  FaultMap(std::size_t words, int bits_per_word);

  /// Monte-Carlo map: each of the words*bits cells is independently stuck
  /// with probability `ber` (sampled via a binomial draw of the total
  /// fault count followed by uniform placement, which is exact and much
  /// faster than per-cell Bernoulli at our sizes). Stuck values are
  /// fair-coin 0/1.
  [[nodiscard]] static FaultMap random(std::size_t words, int bits_per_word,
                                       double ber, util::Xoshiro256& rng);

  /// Fig. 2 pattern: `bit` stuck at `value` in every word.
  [[nodiscard]] static FaultMap stuck_bit(std::size_t words,
                                          int bits_per_word, int bit,
                                          bool value);

  [[nodiscard]] std::size_t words() const noexcept { return words_; }
  [[nodiscard]] int bits_per_word() const noexcept { return bits_; }

  /// Reference lookup path: bounds-checked plain binary search over the
  /// sparse index (deliberately independent of the coarse accelerators so
  /// the two paths can be differentially tested). Clean words return a
  /// shared all-zero WordFaults. Never inserts — on a non-const map an
  /// `at()` call is still a pure read, so the block read path cannot grow
  /// the map behind the reader's back.
  [[nodiscard]] const WordFaults& at(std::size_t word) const;
  /// Mutation path, kept separate from at() so read-only lookups can never
  /// allocate: inserts a (clean) entry for `word` on demand.
  [[nodiscard]] WordFaults& edit(std::size_t word);

  /// Hot-path lookup used by the memory read loop: coarse presence bitmap
  /// first (the overwhelmingly common clean-chunk case costs one bit
  /// test), then a bounded scan of the word's chunk. Returns nullptr for
  /// clean words.
  [[nodiscard]] const WordFaults* lookup(std::size_t word) const noexcept {
    if (word >= words_) return nullptr;
    const std::size_t chunk = word / kChunkWords;
    if ((coarse_[chunk >> 6] & (std::uint64_t{1} << (chunk & 63))) == 0) {
      return nullptr;
    }
    const std::uint32_t* const lo = index_.data() + chunk_start_[chunk];
    const std::uint32_t* const hi = index_.data() + chunk_start_[chunk + 1];
    const std::uint32_t* const it =
        std::lower_bound(lo, hi, static_cast<std::uint32_t>(word));
    if (it == hi || *it != word) return nullptr;
    return &faults_[static_cast<std::size_t>(it - index_.data())];
  }

  /// Number of words holding at least one entry (faulty or inserted).
  [[nodiscard]] std::size_t entry_count() const noexcept {
    return index_.size();
  }

  /// True when the kChunkWords-word chunk holding `word`..`word+63` has no
  /// entries — the block read path wide-copies such runs without per-word
  /// lookups.
  [[nodiscard]] bool chunk_clean(std::size_t chunk) const noexcept {
    return (coarse_[chunk >> 6] & (std::uint64_t{1} << (chunk & 63))) == 0;
  }

  /// Raw presence bitmap (bit c = chunk c has entries; one padding word is
  /// always appended). Exposed for the gathered SIMD read kernel, which
  /// tests eight chunks' bits per iteration.
  [[nodiscard]] const std::uint64_t* presence_data() const noexcept {
    return coarse_.data();
  }

  /// Total number of stuck cells in the map.
  [[nodiscard]] std::size_t fault_count() const noexcept;

  /// Number of words with at least `k` stuck cells (diagnostic used to
  /// predict where ECC SEC/DED starts failing).
  [[nodiscard]] std::size_t words_with_at_least(int k) const noexcept;

 private:
  /// Recomputes coarse_ and chunk_start_ from the sorted index_.
  void rebuild_accelerators();

  int bits_ = 0;
  std::size_t words_ = 0;
  std::vector<std::uint32_t> index_;      ///< sorted faulty-word indices
  std::vector<WordFaults> faults_;        ///< parallel to index_
  std::vector<std::uint64_t> coarse_;     ///< presence bit per word chunk
  std::vector<std::uint32_t> chunk_start_;  ///< slot range per chunk, +1 end
};

}  // namespace ulpdream::mem
