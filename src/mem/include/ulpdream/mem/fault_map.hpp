#pragma once
// Permanent (stuck-at) fault maps. A fault map assigns each word a set of
// stuck bit positions and the value each is stuck at; the memory model
// applies them on every read (equivalent to cells ignoring writes).
//
// Two generators mirror the paper's two experiments:
//  - random(): i.i.d. cell faults at a given BER — one fresh map per
//    Monte-Carlo run (Sec. V: "a different random fault-location map for
//    every run", justified by logical/physical address randomization);
//  - stuck_bit(): the deterministic Fig. 2 characterization pattern — one
//    chosen data-bit position stuck at 0 or 1 in *every* word.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ulpdream/util/rng.hpp"

namespace ulpdream::mem {

/// Per-word stuck-at description: bit i is stuck iff mask bit i is set,
/// and then reads as the corresponding bit of `value`.
struct WordFaults {
  std::uint32_t mask = 0;
  std::uint32_t value = 0;

  /// Applies the faults to stored bits.
  [[nodiscard]] constexpr std::uint32_t apply(std::uint32_t stored) const {
    return (stored & ~mask) | (value & mask);
  }
};

class FaultMap {
 public:
  FaultMap() = default;
  FaultMap(std::size_t words, int bits_per_word);

  /// Monte-Carlo map: each of the words*bits cells is independently stuck
  /// with probability `ber` (sampled via a binomial draw of the total
  /// fault count followed by uniform placement, which is exact and much
  /// faster than per-cell Bernoulli at our sizes). Stuck values are
  /// fair-coin 0/1.
  [[nodiscard]] static FaultMap random(std::size_t words, int bits_per_word,
                                       double ber, util::Xoshiro256& rng);

  /// Fig. 2 pattern: `bit` stuck at `value` in every word.
  [[nodiscard]] static FaultMap stuck_bit(std::size_t words,
                                          int bits_per_word, int bit,
                                          bool value);

  [[nodiscard]] std::size_t words() const noexcept { return faults_.size(); }
  [[nodiscard]] int bits_per_word() const noexcept { return bits_; }

  [[nodiscard]] const WordFaults& at(std::size_t word) const {
    return faults_.at(word);
  }
  [[nodiscard]] WordFaults& at(std::size_t word) { return faults_.at(word); }

  /// Total number of stuck cells in the map.
  [[nodiscard]] std::size_t fault_count() const noexcept;

  /// Number of words with at least `k` stuck cells (diagnostic used to
  /// predict where ECC SEC/DED starts failing).
  [[nodiscard]] std::size_t words_with_at_least(int k) const noexcept;

 private:
  int bits_ = 0;
  std::vector<WordFaults> faults_;
};

}  // namespace ulpdream::mem
