#pragma once
// Bit-Error-Rate vs supply-voltage models for the 32 nm low-power SRAM the
// paper profiles (its ref [2], Ganapathy et al.). The paper only consumes
// the monotone BER(V) mapping; we provide two standard parameterizations —
// a log-linear fit (default, calibrated to the published voltage window
// 0.5-0.9 V) and a probit/erfc cell-failure model — selectable per
// experiment for the D2 ablation in DESIGN.md.

#include <memory>
#include <string>
#include <vector>

#include "ulpdream/util/registry.hpp"

namespace ulpdream::mem {

/// Operating window used throughout the paper's evaluation.
struct VoltageWindow {
  static constexpr double kNominal = 0.90;  ///< volts, error-free operation
  static constexpr double kMin = 0.50;      ///< deepest scaling evaluated
  static constexpr double kStep = 0.05;     ///< sweep granularity (Fig. 4)
};

/// Abstract BER(V) model. Implementations must be monotone non-increasing
/// in V over [kMin, kNominal].
class BerModel {
 public:
  virtual ~BerModel() = default;
  /// Probability that a given memory cell is a permanent (stuck-at) fault
  /// at supply voltage `v` (volts).
  [[nodiscard]] virtual double ber(double v) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// log10(BER) linear in V. Defaults: 5e-8 at 0.9 V, 2e-2 at 0.5 V.
/// Calibration rationale (matching the Fig. 4 shape on a 32 kB array =
/// ~3.6e5 cells): ~0.02 expected faults at 0.9 V (clean), a fraction of a
/// fault at 0.85 V (the unprotected curve starts to dip), tens of faults
/// by 0.65 V (protection pays off) and multi-bit words below 0.55 V
/// (SEC/DED collapses).
class LogLinearBerModel final : public BerModel {
 public:
  LogLinearBerModel(double ber_nominal = 5e-8, double ber_min = 2e-2,
                    double v_nominal = VoltageWindow::kNominal,
                    double v_min = VoltageWindow::kMin);

  [[nodiscard]] double ber(double v) const override;
  [[nodiscard]] std::string name() const override { return "log-linear"; }

 private:
  double v_min_;
  double log_ber_min_;
  double slope_;  ///< d log10(BER) / dV (negative)
};

/// Probit model: a cell fails when its threshold-voltage deviation exceeds
/// the static noise margin at the given supply; Gaussian Vth variation
/// gives BER = 0.5 * erfc((V - v50) / (sqrt(2) * sigma)).
class ProbitBerModel final : public BerModel {
 public:
  explicit ProbitBerModel(double v50 = 0.38, double sigma = 0.08);

  [[nodiscard]] double ber(double v) const override;
  [[nodiscard]] std::string name() const override { return "probit"; }

 private:
  double v50_;
  double sigma_;
};

/// The process-wide BER-model registry. Built-ins ("log-linear",
/// "probit") register on first access; register_factory() adds user
/// models, selectable by name in campaign specs and sweep configs.
[[nodiscard]] util::Registry<BerModel>& ber_model_registry();

/// Instantiates the model registered under `name`. Throws
/// std::invalid_argument listing the valid names on an unknown name.
[[nodiscard]] std::unique_ptr<BerModel> make_ber_model(
    const std::string& name);

/// All registered model names, built-ins first.
[[nodiscard]] std::vector<std::string> ber_model_names();

// --- legacy enum shims -----------------------------------------------------

/// Survives only as a descriptor tag for code that still switches on it.
enum class BerModelKind { kLogLinear, kProbit };

/// Registered name of a built-in kind (registry descriptor lookup).
[[nodiscard]] std::string ber_model_kind_name(BerModelKind kind);

[[nodiscard]] std::unique_ptr<BerModel> make_ber_model(BerModelKind kind);

}  // namespace ulpdream::mem
