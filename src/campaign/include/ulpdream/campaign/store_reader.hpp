#pragma once
// The format seam over campaign raw-store persistence. Two on-disk
// formats exist — the line-oriented text format (the small-store fast
// path: human-greppable, byte-comparable checkpoints) and the binary
// columnar format (the out-of-core path: zero-copy mmap load, streaming
// aggregation, merge-by-append). StoreReader::open() auto-detects which
// one a file is by its magic bytes and presents one query surface, so
// the CLI's --resume/--merge-stores and any other consumer accept both
// formats transparently; save_store() is the matching write-side switch.

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "ulpdream/campaign/columnar.hpp"
#include "ulpdream/campaign/result_store.hpp"
#include "ulpdream/campaign/spec.hpp"

namespace ulpdream::campaign {

enum class StoreFormat {
  kText,      ///< "ulpdream-campaign-store v1" line format
  kColumnar,  ///< "ULPDCOL1" binary columnar format
};

[[nodiscard]] const char* to_string(StoreFormat format) noexcept;
/// Parses "text" / "columnar" (the --store-format CLI values); throws
/// std::invalid_argument listing the valid names.
[[nodiscard]] StoreFormat parse_store_format(const std::string& name);

/// Sniffs the magic bytes of `path`. Throws StoreError (naming the path)
/// when the file cannot be read or matches neither format.
[[nodiscard]] StoreFormat detect_store_format(const std::string& path);

/// Crash-safe save in the chosen format (text -> ResultStore::save_atomic,
/// columnar -> ResultStore::save_columnar). Both stage, fsync, rename and
/// fsync the parent directory.
void save_store(const ResultStore& store, const std::string& path,
                StoreFormat format);

/// A raw store opened from disk in whichever format it was saved. Text
/// stores are parsed into a heap ResultStore at open (they are the small
/// ones); columnar stores stay on disk behind the mmap/bounded view and
/// aggregate without materializing.
class StoreReader {
 public:
  struct OpenOptions {
    bool allow_mmap = true;
    bool bounded_memory = false;  ///< columnar only; see ColumnarStore
  };

  /// Opens `path`, auto-detecting the format, and validates it against
  /// `spec`. Throws StoreError naming the path on unreadable, malformed
  /// or mismatched files (the text parser's errors are wrapped).
  [[nodiscard]] static StoreReader open(const std::string& path,
                                        const CampaignSpec& spec,
                                        const OpenOptions& options);
  [[nodiscard]] static StoreReader open(const std::string& path,
                                        const CampaignSpec& spec) {
    return open(path, spec, OpenOptions{});
  }

  [[nodiscard]] StoreFormat format() const noexcept { return format_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] const CampaignSpec& spec() const;

  [[nodiscard]] std::size_t items_done() const;
  [[nodiscard]] bool complete() const;
  [[nodiscard]] bool item_done(std::size_t item_index) const;

  /// Grouped aggregation — streaming (out-of-core) for columnar stores,
  /// in-memory for text stores; bit-identical rows either way.
  [[nodiscard]] std::vector<AggregateRow> aggregate(
      const GroupBy& group = GroupBy{}) const;

  /// A heap ResultStore with this store's contents — what resume_from and
  /// in-memory merging consume. For a text store this copies the already
  /// parsed store; for columnar it materializes the columns (the one
  /// deliberate full-store copy in the out-of-core path).
  [[nodiscard]] ResultStore materialize() const;

  /// The underlying columnar view, or nullptr for a text store — for
  /// consumers that want columnar-only operations (append_merge inputs,
  /// bounded re-aggregation).
  [[nodiscard]] const ColumnarStore* columnar() const noexcept {
    return columnar_ ? &*columnar_ : nullptr;
  }

 private:
  StoreReader() = default;

  StoreFormat format_ = StoreFormat::kText;
  std::string path_;
  std::optional<ResultStore> text_;  ///< parsed text store
  std::optional<ColumnarStore> columnar_;
};

}  // namespace ulpdream::campaign
