#pragma once
// Accumulation side of the campaign engine. A ResultStore holds the raw
// per-(item, app, EMT) samples of one campaign, keyed by the spec's
// canonical item order, so that:
//  - shards merge losslessly (a shard's store records exactly the items
//    that shard executed; merging the shards of any split reconstructs
//    the full store bit-for-bit);
//  - aggregation folds samples in canonical item order regardless of the
//    order threads produced them, making every derived statistic
//    bit-identical for any thread count or shard split.
// Aggregates export as machine-readable CSV/JSON (loss-free round trip
// via shortest-round-trip doubles) and bridge into sim::SweepResult so
// the Sec. VI-C policy explorer runs unchanged on campaign output.
//
// Storage is sparse and index-keyed: a store holds (item app-x-EMT
// sample slices) only for the items it has slots for — a sorted item-index
// array with parallel done flags and sample slices. A shard store is
// constructed over exactly its shard's item list (the engine path), so
// per-process memory scales with the shard's item count, not the whole
// campaign grid; slot lookup is a binary search over a read-only index,
// which keeps the concurrent record_item path synchronisation-free.
// Merge targets start empty and grow as shards fold in.

#include <cstddef>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "ulpdream/campaign/spec.hpp"
#include "ulpdream/energy/energy_model.hpp"
#include "ulpdream/sim/voltage_sweep.hpp"
#include "ulpdream/util/table.hpp"

namespace ulpdream::campaign {

/// One application run's raw outcome (the campaign-grid analogue of
/// sim::RunResult, flattened for dense storage).
struct Sample {
  double snr_db = 0.0;
  energy::EnergyBreakdown energy{};
  double corrected_words = 0.0;
  double detected_uncorrectable = 0.0;
};

/// Which axes to group by; ungrouped axes are marginalized (their label
/// exports as "*"). Default: the full (record, app, emt, voltage) grid.
struct GroupBy {
  bool record = true;
  bool app = true;
  bool emt = true;
  bool voltage = true;
};

/// One aggregated output row. `voltage` is NaN when marginalized.
struct AggregateRow {
  std::string record = "*";
  std::string app = "*";
  std::string emt = "*";
  double voltage = 0.0;
  std::size_t n = 0;
  double snr_mean_db = 0.0;
  double snr_stddev_db = 0.0;
  double snr_min_db = 0.0;
  double snr_max_db = 0.0;
  double snr_p10_db = 0.0;
  double energy_mean_j = 0.0;
  double data_dynamic_j = 0.0;  ///< mean per-run breakdown components
  double side_dynamic_j = 0.0;
  double codec_j = 0.0;
  double data_leak_j = 0.0;
  double side_leak_j = 0.0;
  double corrected_mean = 0.0;
  double detected_mean = 0.0;
};

class ResultStore {
 public:
  ResultStore() = default;
  /// Empty store over the campaign: no slots preallocated. Used as the
  /// merge target and by single-threaded producers (record_item grows it
  /// on demand). `spec` must already be normalized (the engine guarantees
  /// this).
  explicit ResultStore(CampaignSpec spec);
  /// Shard store: slots preallocated for exactly `items` (the slice this
  /// process executes), so memory scales with the shard and concurrent
  /// record_item calls never mutate the index.
  ResultStore(CampaignSpec spec, std::span<const WorkItem> items);

  [[nodiscard]] const CampaignSpec& spec() const noexcept { return spec_; }

  /// Records the samples of one executed item, in (app-major, EMT-minor)
  /// order. Thread-safe for *distinct* items whose slots are preallocated
  /// (the shard constructor): each one owns a disjoint slice behind a
  /// read-only index. Recording an item without a slot inserts one and is
  /// NOT thread-safe.
  void record_item(const WorkItem& item, const std::vector<Sample>& samples);

  /// Clean-run ceiling per (record, app) — the Fig. 4 dashed line.
  void set_max_snr(std::size_t record_index, std::size_t app_index,
                   double snr_db);
  [[nodiscard]] double max_snr_db(std::size_t record_index,
                                  std::size_t app_index) const;

  [[nodiscard]] std::size_t items_done() const noexcept;
  [[nodiscard]] bool complete() const noexcept;
  /// Whether the item at canonical index `item_index` has been recorded —
  /// how a resumed submission decides which items still need to run.
  [[nodiscard]] bool item_done(std::size_t item_index) const noexcept;
  /// Items this store holds slots for (executed or preallocated) — the
  /// quantity per-process memory scales with.
  [[nodiscard]] std::size_t stored_items() const noexcept {
    return item_index_.size();
  }

  /// Folds another shard of the *same* campaign into this store. Throws
  /// std::invalid_argument on a spec fingerprint mismatch (axes + seed),
  /// quoting both fingerprints — stores of different grids never mix
  /// silently.
  void merge(const ResultStore& other);

  /// Grouped aggregation in canonical axis order. Throws std::logic_error
  /// when the store is incomplete (a shard store must be merged with its
  /// siblings first).
  [[nodiscard]] std::vector<AggregateRow> aggregate(
      const GroupBy& group = GroupBy{}) const;

  /// Bridge to the policy explorer: the (record, app) slice of a complete
  /// store as a sim::SweepResult (same statistics the serial sweep fills).
  [[nodiscard]] sim::SweepResult to_sweep_result(std::size_t record_index,
                                                 std::size_t app_index) const;

  /// Raw-store persistence (shortest-round-trip doubles, done items only):
  /// the cross-process sharding path. Each shard process saves its store;
  /// a merge process reloads them against the same spec and aggregates.
  /// load() throws std::invalid_argument when the stream's fingerprint
  /// does not match `spec` (after normalization).
  void save(std::ostream& os) const;
  [[nodiscard]] static ResultStore load(std::istream& is,
                                        const CampaignSpec& spec);

  /// Crash-safe save to a file: serialize to a staging file whose name is
  /// unique to this process (PATH.tmp.<pid> — concurrent writers aiming
  /// at the same target never tear each other's staging bytes), flush it
  /// to stable storage (POSIX fsync), rename it over PATH, then fsync the
  /// parent directory so the rename itself survives power loss. A file at
  /// PATH is therefore always a complete, loadable checkpoint — never a
  /// torn or merely page-cached one. Throws std::runtime_error on I/O
  /// failure; the staging file is removed on every failure path.
  void save_atomic(const std::string& path) const;

  /// Binary columnar save — the out-of-core sibling of save()/save_atomic
  /// (format in columnar.hpp): done items' samples as fixed-width
  /// little-endian columns behind a header + sorted index, published with
  /// the same staged fsync+rename+directory-fsync protocol. The result
  /// reopens zero-copy via ColumnarStore::open / StoreReader::open (which
  /// auto-detects the format by magic). Byte-deterministic: equal stores
  /// save to equal files.
  void save_columnar(const std::string& path) const;

  /// Read-only slot views — the persistence seam the columnar writer and
  /// other exporters serialize from. `slot` indexes the sorted item index
  /// (slot_items()[slot] is the canonical item it holds).
  [[nodiscard]] std::span<const std::size_t> slot_items() const noexcept {
    return item_index_;
  }
  [[nodiscard]] bool slot_done(std::size_t slot) const {
    return item_done_.at(slot) != 0;
  }
  [[nodiscard]] std::span<const Sample> slot_samples(std::size_t slot) const {
    return std::span<const Sample>(samples_)
        .subspan(slot * per_item(), per_item());
  }
  [[nodiscard]] std::span<const double> max_snr_values() const noexcept {
    return max_snr_;
  }

 private:
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

  [[nodiscard]] std::size_t per_item() const noexcept {
    return spec_.apps.size() * spec_.emts.size();
  }
  /// Binary search over the sorted item index; kNoSlot when absent.
  [[nodiscard]] std::size_t find_slot(std::size_t item) const noexcept;
  /// Inserts a slot for `item` (single-threaded growth path).
  std::size_t insert_slot(std::size_t item);

  CampaignSpec spec_;
  std::vector<std::size_t> item_index_;  ///< sorted item indices with slots
  std::vector<char> item_done_;          ///< parallel to item_index_
  std::vector<Sample> samples_;  ///< slot-major, then app-major, EMT-minor
  std::vector<double> max_snr_;  ///< record-major x apps, NaN until set
};

/// Aggregate-row serialization. Column order is fixed and documented by
/// aggregate_csv_header(); doubles use shortest-round-trip formatting so
/// write -> read reproduces the exact values.
[[nodiscard]] const std::vector<std::string>& aggregate_csv_header();
void write_rows_csv(std::ostream& os, const std::vector<AggregateRow>& rows);
[[nodiscard]] std::vector<AggregateRow> read_rows_csv(std::istream& is);
void write_rows_json(std::ostream& os, const std::vector<AggregateRow>& rows);
[[nodiscard]] std::vector<AggregateRow> read_rows_json(std::istream& is);

/// Pretty-printed view of aggregate rows (human-facing counterpart of the
/// CSV export).
[[nodiscard]] util::Table rows_to_table(const std::vector<AggregateRow>& rows,
                                        const std::string& title);

}  // namespace ulpdream::campaign
