#pragma once
// Asynchronous execution runtime. A Session is a long-lived object that
// owns one shared util::WorkPool; any number of campaigns (and, through
// Session::pool(), sim sweeps) are submitted onto it concurrently and
// interleave at work-item granularity. submit() returns a CampaignHandle
// — a future-like job handle with wait()/try_result(), live progress
// (items done, per-worker throughput), cooperative item-granular
// cancellation, an observer that streams each completed WorkItem's
// samples as it lands, and periodic ResultStore checkpoint snapshots
// that a later submit(spec, resume_from=...) completes by running only
// the missing items.
//
// The determinism contract is unchanged from the blocking engine and is
// the whole point: every item's RNG stream is keyed on (spec.seed,
// item.index) and every item writes a disjoint store slice, so N
// campaigns interleaved on one session, a cancellation at any point, and
// any checkpoint/resume split all reproduce the uninterrupted
// single-campaign store bit-identically (tests/session_test.cpp pins
// this, including byte-compares of the saved raw stores).
//
//   campaign::Session session;                   // one pool, many jobs
//   auto a = session.submit(spec_a);
//   auto b = session.submit(spec_b, opts);       // runs interleaved
//   while (!a.try_result()) { report(a.progress()); ... }
//   ResultStore done = b.wait();

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "ulpdream/campaign/engine.hpp"
#include "ulpdream/campaign/result_store.hpp"
#include "ulpdream/campaign/spec.hpp"
#include "ulpdream/energy/energy_model.hpp"
#include "ulpdream/util/cli.hpp"
#include "ulpdream/util/telemetry.hpp"
#include "ulpdream/util/work_pool.hpp"

namespace ulpdream::campaign {

namespace detail {
struct CampaignJob;
}  // namespace detail

class CampaignHandle;

/// Point-in-time view of a submitted campaign.
struct Progress {
  std::size_t items_done = 0;     ///< recorded in the store (incl. resumed)
  std::size_t items_total = 0;    ///< items in this submission's shard slice
  std::size_t items_resumed = 0;  ///< satisfied by the resume store
  double elapsed_s = 0.0;         ///< wall time since submit
  /// Executed items per second of elapsed time (resumed items excluded);
  /// 0 until the first item lands.
  double items_per_second = 0.0;
  /// Exponentially weighted recent rate (~5 s time constant) — the ETA
  /// numerator that does not lie for minutes after a resume, where the
  /// lifetime average is dragged by the pre-restart gap. Falls back to
  /// items_per_second until the first smoothing window (0.5 s) closes.
  double items_per_second_ewma = 0.0;
  /// Items executed by each pool worker — the per-worker throughput view.
  std::vector<std::size_t> per_worker_items;
  bool cancelled = false;
  bool finished = false;

  /// Items still to run; the ETA numerator.
  [[nodiscard]] std::size_t items_remaining() const noexcept {
    return items_total - items_done;
  }
};

/// Per-submission options. All callbacks are invoked from pool worker
/// threads, serialized by the job's lock (never concurrently). on_item
/// receives the job's own handle — calling handle.cancel() there is the
/// idiomatic, race-free "stop after N items" — but callbacks must not
/// block on the handle (wait()/try_result()).
/// A contiguous slice [begin, end) of the canonical item expansion — the
/// unit of distributed work leasing (dist::Coordinator grants these).
struct ItemRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  [[nodiscard]] std::size_t size() const noexcept { return end - begin; }
};

struct SubmitOptions {
  /// Slice of the grid this submission executes (default: all of it).
  Shard shard{};
  /// When set, execute exactly the contiguous items [begin, end) instead
  /// of a strided shard (mutually exclusive with a non-default `shard`;
  /// submit() throws when both are given). The store is preallocated
  /// over the range, so worker memory scales with the lease, never the
  /// grid.
  std::optional<ItemRange> item_range;
  /// Completed store of a previous (interrupted) run of the *same* spec:
  /// its recorded items are adopted verbatim and only the missing ones
  /// run. A fingerprint mismatch (axes + seed) throws immediately.
  const ResultStore* resume_from = nullptr;
  /// Invoke on_checkpoint after every N executed items (0 = never).
  std::size_t checkpoint_every = 0;
  /// Streams each completed item's samples (app-major, EMT-minor) the
  /// moment it is recorded, along with the job's handle.
  std::function<void(const CampaignHandle&, const WorkItem&,
                     std::span<const Sample>)>
      on_item;
  /// Receives a consistent snapshot of the store (resumable via
  /// submit(spec, resume_from)). Workers pause while it runs — keep it
  /// to a save() and return.
  std::function<void(const ResultStore&)> on_checkpoint;
};

/// Future-like handle to a submitted campaign. Copyable (shared state);
/// outlives the Session safely.
class CampaignHandle {
 public:
  CampaignHandle() = default;

  /// Blocks until the job finishes (all items done, or cancelled with
  /// in-flight items drained) and returns a copy of the store: complete
  /// for an uncancelled single-shard run, partial otherwise — a partial
  /// store checkpoints/resumes like any other. Rethrows a worker
  /// exception.
  [[nodiscard]] ResultStore wait() const;
  /// wait(), then moves the store out of the runtime — the zero-copy
  /// path for run-to-completion callers (the blocking engine/Scenario
  /// shims and the CLI). One-shot: afterwards the handle's store is
  /// empty (progress counters remain).
  [[nodiscard]] ResultStore take() const;
  /// Non-blocking wait(): empty until the job has finished.
  [[nodiscard]] std::optional<ResultStore> try_result() const;
  [[nodiscard]] Progress progress() const;
  /// Cooperative and item-granular: items already executing finish and
  /// are recorded; unclaimed items never start. Idempotent.
  void cancel() const;
  [[nodiscard]] bool valid() const noexcept { return job_ != nullptr; }

  /// Internal: wraps a job's shared state (Session and the on_item
  /// dispatch construct these; detail::CampaignJob is not a user type).
  explicit CampaignHandle(std::shared_ptr<detail::CampaignJob> job);

 private:
  std::shared_ptr<detail::CampaignJob> job_;
};

class Session {
 public:
  /// `threads` == 0 picks std::thread::hardware_concurrency().
  explicit Session(
      energy::SystemEnergyModel energy_model = energy::SystemEnergyModel(),
      unsigned threads = 0);
  /// Cancels outstanding jobs (in-flight items drain) and joins the
  /// pool. Handles stay valid; their wait() returns the partial store.
  ~Session() = default;

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Builds a session from the shared `--threads N` CLI convention.
  [[nodiscard]] static Session from_cli(
      const util::Cli& cli,
      energy::SystemEnergyModel energy_model = energy::SystemEnergyModel());

  /// Enqueues the shard's slice of the (normalized) spec and returns
  /// immediately. Record generation, component resolution and the
  /// clean-run SNR ceilings happen here on the calling thread — all
  /// deterministic — so a resumed or interleaved run reproduces the
  /// uninterrupted store bit-identically.
  [[nodiscard]] CampaignHandle submit(const CampaignSpec& spec,
                                      SubmitOptions options = {});

  /// The shared pool, for co-scheduling non-campaign index jobs (e.g.
  /// sim::ParallelSweepRunner::run_multi(pool, ...)) with campaigns.
  [[nodiscard]] util::WorkPool& pool() noexcept { return pool_; }
  [[nodiscard]] unsigned threads() const noexcept { return pool_.threads(); }
  [[nodiscard]] const energy::SystemEnergyModel& energy_model() const {
    return energy_model_;
  }

  /// Metrics accrued since this Session was constructed: the process
  /// registry's snapshot() diffed against a baseline taken in the
  /// constructor (counters/histograms subtract; gauges report current
  /// state). Catalog: session.* (items, run latencies, checkpoints),
  /// workpool.* (claims, steals, busy/idle), codec.<emt>.*, mem.*,
  /// store.* — see README "Observability".
  [[nodiscard]] util::telemetry::MetricsSnapshot telemetry() const {
    return util::telemetry::snapshot().since(baseline_);
  }

 private:
  energy::SystemEnergyModel energy_model_;
  util::telemetry::MetricsSnapshot baseline_;
  util::WorkPool pool_;
};

}  // namespace ulpdream::campaign
