#pragma once
// Scenario — the single-entry-point facade of the library. Pick
// applications, EMTs and a BER model by registry name, set the voltage
// grid, the record corpus and its generation geometry, and run(): the
// scenario expands into a CampaignSpec, executes on the sharded
// CampaignEngine (bit-identical for any thread count) and returns the
// aggregated grid. Names are validated eagerly against the registries, so
// a typo fails at build_spec() time with the valid names listed —
// including any component the caller registered from outside src/.
//
//   auto rows = ulpdream::campaign::Scenario()
//                   .app("dwt")
//                   .emt("none").emt("dream")
//                   .voltages(0.6, 0.9, 0.1)
//                   .repetitions(8)
//                   .run_rows();

#include <cstdint>
#include <string>
#include <vector>

#include "ulpdream/campaign/engine.hpp"
#include "ulpdream/campaign/result_store.hpp"
#include "ulpdream/campaign/session.hpp"
#include "ulpdream/campaign/spec.hpp"
#include "ulpdream/campaign/store_reader.hpp"

namespace ulpdream::campaign {

class Scenario {
 public:
  Scenario() = default;

  /// Appends a component by registry name (validated in build_spec()).
  Scenario& app(const std::string& name);
  Scenario& emt(const std::string& name);
  Scenario& ber_model(const std::string& name);

  /// Appends one supply point / an inclusive [vmin, vmax] grid.
  Scenario& voltage(double v);
  Scenario& voltages(double vmin, double vmax, double step);

  /// Appends one synthetic patient trace to the record axis.
  Scenario& record(ecg::Pathology pathology, double noise_scale = 1.0,
                   std::uint64_t seed = 7);
  /// Record-generation geometry shared by every record axis entry.
  Scenario& sampling(double fs_hz, double duration_s);

  Scenario& repetitions(std::size_t n);
  Scenario& seed(std::uint64_t s);
  /// Worker threads for run(); 0 = all hardware threads. Ignored when a
  /// session is attached (the session owns the pool).
  Scenario& threads(unsigned n);

  /// Attaches a shared execution session: run()/submit() then execute on
  /// its pool, interleaved with whatever else is submitted there. The
  /// session must outlive the calls.
  Scenario& session(Session& session);

  /// The normalized CampaignSpec this scenario describes. Unset axes take
  /// the paper defaults. Throws std::invalid_argument (listing the valid
  /// names) when a component name is not registered.
  [[nodiscard]] CampaignSpec build_spec() const;

  /// Executes the scenario and returns the complete raw store — on the
  /// attached session when one is set, otherwise on a private one.
  [[nodiscard]] ResultStore run() const;

  /// Executes and aggregates in one step (the common quickstart path).
  [[nodiscard]] std::vector<AggregateRow> run_rows(
      const GroupBy& group = GroupBy{}) const;

  /// Executes and persists the raw store at `path` in the chosen format
  /// (crash-safe staged publish either way; columnar is the out-of-core
  /// format — see store_reader.hpp), returning the store. The file
  /// reopens via StoreReader::open, which auto-detects the format.
  ResultStore run_to(const std::string& path,
                     StoreFormat format = StoreFormat::kText) const;

  /// Asynchronous run(): submits onto the attached session and returns
  /// the job handle immediately. Throws std::logic_error when no session
  /// is attached.
  [[nodiscard]] CampaignHandle submit(SubmitOptions options = {}) const;

 private:
  CampaignSpec spec_{};
  unsigned threads_ = 0;
  Session* session_ = nullptr;
};

}  // namespace ulpdream::campaign
