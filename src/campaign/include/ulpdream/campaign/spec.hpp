#pragma once
// Declarative experiment grids. A CampaignSpec names the axes of one
// campaign — applications x EMTs x supply voltages x ECG records x
// Monte-Carlo repetitions — and expands into a flat, canonically-ordered
// list of WorkItems. Every item owns a mix64-derived RNG seed that depends
// only on (spec.seed, item.index), never on which shard or thread executes
// it, so a campaign's results are bit-identical for any shard split and
// any thread count. This is the generalization of the paper's Fig. 2 /
// Fig. 4 / policy grids (app x EMT x V x record x noise) into one
// first-class, resumable description.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "ulpdream/apps/app.hpp"
#include "ulpdream/core/factory.hpp"
#include "ulpdream/ecg/generator.hpp"
#include "ulpdream/mem/ber_model.hpp"

namespace ulpdream::campaign {

/// One point on the record axis: a synthetic patient trace identified by
/// pathology, an overall noise scale (multiplies every NoiseParams
/// amplitude — the "noise level" axis), and a generator seed.
struct RecordAxis {
  ecg::Pathology pathology = ecg::Pathology::kNormalSinus;
  double noise_scale = 1.0;
  std::uint64_t seed = 7;

  /// Stable identifier used in exports, e.g. "normal_sinus_n1_s7".
  [[nodiscard]] std::string label() const;
};

struct CampaignSpec {
  /// Component axes are registry *names* (core::emt_registry(),
  /// apps::app_registry(), mem::ber_model_registry()), so user-registered
  /// components run through the engine exactly like the built-ins. Names
  /// resolve at execution time; unknown names throw listing the valid set.
  std::vector<std::string> apps;        ///< default: the paper's five
  std::vector<std::string> emts;        ///< default: none, dream, ecc_secded
  std::vector<double> voltages;         ///< default: 0.50..0.90 step 0.05
  std::vector<RecordAxis> records;      ///< default: one normal-sinus trace
  std::size_t repetitions = 30;         ///< Monte-Carlo fault maps per cell
  std::uint64_t seed = 2016;
  std::string ber_model = "log-linear";
  /// Record-generation front-end shared by every RecordAxis entry.
  double fs_hz = 250.0;
  double duration_s = 8.2;

  /// Copy with empty axes replaced by the defaults above and
  /// repetitions clamped to >= 1.
  [[nodiscard]] CampaignSpec normalized() const;

  /// Inclusive voltage range helper, e.g. voltage_range(0.5, 0.9, 0.05).
  [[nodiscard]] static std::vector<double> voltage_range(double vmin,
                                                         double vmax,
                                                         double step);

  /// Work items in the full expansion: records x voltages x repetitions.
  /// (Apps and EMTs run *inside* one item so every (app, EMT) pair sees
  /// the same fault map — the paper's Sec. V fairness protocol.)
  [[nodiscard]] std::size_t item_count() const;

  /// Aggregation cells: records x apps x emts x voltages.
  [[nodiscard]] std::size_t cell_count() const;

  /// Canonical textual identity of the grid; two stores merge only when
  /// their spec fingerprints match.
  [[nodiscard]] std::string fingerprint() const;

  /// fingerprint() minus the records section — the grid's "axes family".
  /// Records are the outermost expansion axis, so two specs in the same
  /// family where one's records are a prefix of the other's assign
  /// identical indices (and therefore identical mix64 item seeds) to the
  /// common items. That invariant is what lets the query daemon adopt a
  /// cached store as resume_from for a superset grid and run only the
  /// gap items.
  [[nodiscard]] std::string axes_fingerprint() const;

  /// FNV-1a 64-bit hash of fingerprint(), as 16 lowercase hex chars — a
  /// stable filesystem-safe key for cache-directory store names.
  [[nodiscard]] std::string fingerprint_hash() const;
};

/// One schedulable unit: one Monte-Carlo fault map at one (record,
/// voltage) point, evaluated for every (app, EMT) pair of the spec.
struct WorkItem {
  std::size_t index = 0;  ///< canonical position in the full expansion
  std::size_t record_index = 0;
  std::size_t voltage_index = 0;
  std::size_t rep_index = 0;
  std::uint64_t seed = 0;  ///< mix64(spec.seed, index)
};

/// Expands a normalized spec into its full canonical item list:
/// index = (record * n_voltages + voltage) * repetitions + rep.
[[nodiscard]] std::vector<WorkItem> expand(const CampaignSpec& spec);

/// The slice of the expansion owned by shard `shard_index` of
/// `shard_count` (strided assignment: item.index % count == index).
/// Throws std::invalid_argument on an invalid shard selection.
[[nodiscard]] std::vector<WorkItem> expand_shard(const CampaignSpec& spec,
                                                 std::size_t shard_index,
                                                 std::size_t shard_count);

/// The contiguous slice [begin, end) of the expansion — the shape of a
/// distributed work lease (dist::Coordinator grants ranges, not strided
/// shards). Throws std::invalid_argument when the range falls outside
/// the grid or is empty.
[[nodiscard]] std::vector<WorkItem> expand_range(const CampaignSpec& spec,
                                                 std::size_t begin,
                                                 std::size_t end);

/// Axis-list parsers for CLI drivers. Each accepts a comma-separated list
/// of registry names, or "paper" (the paper's evaluated set) or "all"
/// (every registered name, including user registrations). Throws
/// std::invalid_argument with the valid names on unknown input.
[[nodiscard]] std::vector<std::string> parse_app_list(
    const std::string& list);
[[nodiscard]] std::vector<std::string> parse_emt_list(
    const std::string& list);
[[nodiscard]] std::vector<ecg::Pathology> parse_pathology_list(
    const std::string& list);

}  // namespace ulpdream::campaign
