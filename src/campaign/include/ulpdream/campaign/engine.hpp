#pragma once
// Sharded blocking execution of campaign grids — a thin synchronous shim
// over the asynchronous runtime (campaign/session.hpp): run() stands up
// a private campaign::Session, submits the shard's slice and waits.
// Execution semantics are the session's: work items fan across a shared
// util::WorkPool, each worker owns a private ExperimentRunner, and every
// item writes a disjoint slice of the ResultStore. Item RNG streams are
// derived purely from (spec.seed, item.index), so the populated store is
// bit-identical for any thread count; running the shards of any split
// and merging their stores reproduces the unsharded store exactly. Use
// Session directly to overlap campaigns, stream results, cancel, or
// checkpoint/resume.

#include <cstddef>

#include "ulpdream/campaign/result_store.hpp"
#include "ulpdream/campaign/spec.hpp"
#include "ulpdream/energy/energy_model.hpp"
#include "ulpdream/util/cli.hpp"

namespace ulpdream::campaign {

/// Which slice of the campaign this process executes. The default (0 of 1)
/// is the whole grid.
struct Shard {
  std::size_t index = 0;
  std::size_t count = 1;
};

class CampaignEngine {
 public:
  /// `threads` == 0 picks std::thread::hardware_concurrency().
  explicit CampaignEngine(
      energy::SystemEnergyModel energy_model = energy::SystemEnergyModel(),
      unsigned threads = 0);

  /// Builds an engine from the shared `--threads N` CLI convention
  /// (0 or negative selects all hardware threads).
  [[nodiscard]] static CampaignEngine from_cli(
      const util::Cli& cli,
      energy::SystemEnergyModel energy_model = energy::SystemEnergyModel());

  /// Executes the shard's slice of the (normalized) spec. The returned
  /// store is complete when shard.count == 1; otherwise merge the sibling
  /// shards' stores before aggregating. Every shard also computes the
  /// per-(record, app) clean-run SNR ceilings (cheap, deterministic), so
  /// any shard's store carries them.
  [[nodiscard]] ResultStore run(const CampaignSpec& spec,
                                Shard shard = Shard{}) const;

  [[nodiscard]] unsigned threads() const noexcept { return threads_; }
  [[nodiscard]] const energy::SystemEnergyModel& energy_model() const {
    return energy_model_;
  }

 private:
  energy::SystemEnergyModel energy_model_;
  unsigned threads_ = 1;
};

}  // namespace ulpdream::campaign
