#pragma once
// Out-of-core columnar persistence for campaign raw stores — the binary
// sibling of the line-oriented text format in result_store.cpp, built for
// 10^6..10^9-item grids where "parse every double again" and "hold every
// Sample on the heap" are the bottleneck.
//
// One file, three regions, all integers and doubles little-endian:
//
//   header     magic "ULPDCOL1", version, endianness tag, counts
//              (indexed items / physical slots / samples per item), the
//              spec fingerprint and the max-SNR ceilings, and a column
//              directory of (absolute offset, byte length) pairs — every
//              region is bounds-checked against the real file size before
//              any access, so a truncated or corrupt file throws a typed
//              StoreError naming the path instead of reading off the end
//              of a mapping.
//   index      two u64 columns: `item_index` (strictly ascending item
//              indices — the canonical iteration order) and `slot_of`
//              (the physical slot each item's samples live in). A fresh
//              save writes the identity permutation; append-merge keeps
//              shard sample bytes where they landed and only re-sorts
//              this (small) index.
//   columns    a u8 done-flag column plus one fixed-width f64 column per
//              Sample field, each slot-major, app-major/EMT-minor — the
//              same canonical layout the in-memory store uses.
//
// Loading is zero-copy: open_columnar() memory-maps the file (portable
// read-into-buffer fallback via util::FileView), validates the header and
// index, and serves aggregation straight from the mapping — no parse, no
// heap copy of samples. aggregate() streams the columns through the
// shared AggregateFolder in canonical item order, so its rows are
// bit-identical to ResultStore::aggregate() on the same campaign; its
// memory is one accumulator per output row. For hard RSS caps there is a
// bounded mode that replaces the mapping with an LRU chunk cache
// (util::ChunkedFileReader) — memory stays constant no matter how large
// the store grows. Shards fold by append: sample bytes are concatenated
// verbatim and only the index is re-sorted, so merging N shards costs
// O(total bytes) sequential I/O and O(index) memory.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "ulpdream/campaign/result_store.hpp"
#include "ulpdream/campaign/spec.hpp"
#include "ulpdream/util/file_view.hpp"

namespace ulpdream::campaign {

/// Typed persistence failure: malformed/truncated/mismatched store files
/// and short reads all throw this, always naming the offending path.
class StoreError : public std::runtime_error {
 public:
  StoreError(std::string path, const std::string& what)
      : std::runtime_error(path + ": " + what), path_(std::move(path)) {}
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

/// The 8-byte magic that opens every columnar store file. (The text
/// format's first bytes are "ulpdream-campaign-store v1".)
inline constexpr char kColumnarMagic[8] = {'U', 'L', 'P', 'D',
                                           'C', 'O', 'L', '1'};

/// A campaign raw store opened from its columnar file: a read-only,
/// mmap-backed (or bounded-memory) view with the same query surface as a
/// complete in-memory ResultStore, minus any per-sample heap state.
class ColumnarStore {
 public:
  struct OpenOptions {
    /// Prefer mmap (zero-copy). Off — or with ULPDREAM_DISABLE_MMAP set —
    /// the portable read-into-buffer fallback is used instead.
    bool allow_mmap = true;
    /// Bounded-memory mode: never map or buffer the whole file; stream
    /// everything (index included) through an LRU chunk cache of
    /// cache_chunk_bytes x cache_chunks. For aggregation under an RSS cap
    /// smaller than the store.
    bool bounded_memory = false;
    std::size_t cache_chunk_bytes = 1u << 18;
    std::size_t cache_chunks = 64;
  };

  /// Opens and validates `path` against `spec` (normalized; fingerprints
  /// must match). Throws StoreError on any structural problem: bad magic,
  /// unsupported version, foreign endianness, truncation, directory /
  /// count disagreement, an unsorted or out-of-range index.
  [[nodiscard]] static ColumnarStore open(const std::string& path,
                                          const CampaignSpec& spec,
                                          const OpenOptions& options);
  [[nodiscard]] static ColumnarStore open(const std::string& path,
                                          const CampaignSpec& spec) {
    return open(path, spec, OpenOptions{});
  }

  [[nodiscard]] const CampaignSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  /// True when the file is served by a real memory mapping (the zero-copy
  /// path); false for the buffered fallback and for bounded mode.
  [[nodiscard]] bool mapped() const noexcept;
  [[nodiscard]] bool bounded() const noexcept { return reader_.has_value(); }

  /// Items with an index entry (= stored items; saves write done items
  /// only, so normally all of them are done).
  [[nodiscard]] std::size_t stored_items() const noexcept {
    return n_index_;
  }
  [[nodiscard]] std::size_t items_done() const noexcept {
    return items_done_;
  }
  [[nodiscard]] bool complete() const noexcept {
    return items_done_ == spec_.item_count();
  }
  [[nodiscard]] bool item_done(std::size_t item_index) const;
  [[nodiscard]] double max_snr_db(std::size_t record_index,
                                  std::size_t app_index) const;

  /// Streaming grouped aggregation: folds column slices in canonical item
  /// order through the same folder as ResultStore::aggregate — the rows
  /// are bit-identical to the in-memory path — without materializing a
  /// single Sample on the heap. Throws std::logic_error when incomplete.
  [[nodiscard]] std::vector<AggregateRow> aggregate(
      const GroupBy& group = GroupBy{}) const;

  /// Reads one item's samples (app-major, EMT-minor) out of the columns —
  /// the random-access escape hatch (and the resume/materialize path).
  /// `sorted_pos` indexes the sorted item index, not physical slots.
  [[nodiscard]] std::size_t item_at(std::size_t sorted_pos) const;
  void samples_at(std::size_t sorted_pos, std::vector<Sample>& out) const;

  /// Copies the whole store into a heap ResultStore — the bridge back to
  /// every in-memory consumer (resume_from, to_sweep_result, in-memory
  /// merge). Deliberately the only operation that materializes samples.
  [[nodiscard]] ResultStore materialize() const;

  struct AppendOptions {
    /// Verbatim (default): sample bytes are concatenated where they
    /// landed and only the index is re-sorted — O(total bytes)
    /// sequential I/O, duplicate slots stay in the file unreferenced.
    /// Canonical: physical slots are rewritten in sorted item order and
    /// unreferenced duplicates dropped, so the output is byte-identical
    /// to a single-process ResultStore::save_columnar of the same data —
    /// the distributed coordinator's proof obligation (CI byte-compares
    /// its merged store against the single-process run). Both stream
    /// through fixed-size buffers; memory stays O(index) either way.
    bool canonical = false;
  };

  /// Folds shard files by append: validates every input against `spec`,
  /// copies their done/sample columns (verbatim or canonically reordered
  /// per `options` — sample bytes are never decoded), merges the sorted
  /// index runs (first done occurrence of a duplicated item wins,
  /// matching ResultStore::merge), and atomically publishes `out_path`.
  /// Memory scales with the merged index, never with the sample data.
  static void append_merge(const std::vector<std::string>& inputs,
                           const std::string& out_path,
                           const CampaignSpec& spec,
                           const AppendOptions& options);
  static void append_merge(const std::vector<std::string>& inputs,
                           const std::string& out_path,
                           const CampaignSpec& spec) {
    append_merge(inputs, out_path, spec, AppendOptions{});
  }

 private:
  ColumnarStore() = default;

  /// Bounds-checked scalar read through whichever backing is active.
  [[nodiscard]] std::uint64_t u64_at(std::uint64_t offset) const;
  [[nodiscard]] double f64_at(std::uint64_t offset) const;
  [[nodiscard]] std::uint8_t u8_at(std::uint64_t offset) const;

  CampaignSpec spec_;
  std::string path_;
  std::optional<util::FileView> view_;          ///< mapped / buffered
  std::optional<util::ChunkedFileReader> reader_;  ///< bounded mode
  std::uint64_t n_index_ = 0;
  std::uint64_t n_physical_ = 0;
  std::uint64_t per_item_ = 0;
  std::size_t items_done_ = 0;
  std::vector<double> max_snr_;  ///< record-major x apps (small, heap)
  /// Column directory, fixed order: item_index, slot_of, done, then the
  /// eight Sample field columns.
  struct Column {
    std::uint64_t offset = 0;
    std::uint64_t bytes = 0;
  };
  std::vector<Column> columns_;
};

}  // namespace ulpdream::campaign
