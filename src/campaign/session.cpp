#include "ulpdream/campaign/session.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "ulpdream/core/ecc_secded.hpp"
#include "ulpdream/mem/fault_map.hpp"
#include "ulpdream/mem/memory.hpp"
#include "ulpdream/sim/runner.hpp"
#include "ulpdream/util/rng.hpp"
#include "ulpdream/util/telemetry.hpp"

namespace ulpdream::campaign {

namespace detail {

using Clock = std::chrono::steady_clock;

/// Shared state of one submitted campaign: the read-only execution
/// context materialized at submit time, plus the store and progress
/// counters guarded by `mutex`. Owned jointly by the handle and (until
/// the job finishes) the pool's worker closures.
struct CampaignJob {
  // Immutable after submit().
  CampaignSpec spec;            ///< normalized
  std::vector<WorkItem> todo;   ///< items this submission executes
  std::size_t shard_total = 0;  ///< items in the shard slice
  std::size_t resumed = 0;      ///< shard items adopted from resume_from
  std::vector<ecg::Record> records;
  std::vector<std::unique_ptr<apps::BioApp>> app_objs;
  std::vector<std::unique_ptr<core::Emt>> emt_objs;
  std::unique_ptr<mem::BerModel> ber_model;
  int map_bits = 0;
  std::size_t checkpoint_every = 0;
  std::function<void(const CampaignHandle&, const WorkItem&,
                     std::span<const Sample>)>
      on_item;
  std::function<void(const ResultStore&)> on_checkpoint;
  Clock::time_point start{};
  /// Per-EMT run_once latency histograms ("session.run_ns.<emt>"), and
  /// matching interned trace-span names — resolved once at submit,
  /// parallel to emt_objs.
  std::vector<util::telemetry::Histogram> emt_run_ns;
  std::vector<const char*> emt_span_names;

  // Guarded by `mutex`: the store and everything the observer /
  // checkpoint callbacks see. One short lock per completed item — the
  // simulation itself runs outside it.
  std::mutex mutex;
  ResultStore store;
  std::size_t executed = 0;
  Clock::time_point last_item{};
  // Recent-rate EWMA over >= 0.5 s windows (tau = 5 s), folded under the
  // item lock; ewma_items/ewma_start describe the still-open window.
  double ewma_rate = 0.0;
  std::size_t ewma_items = 0;
  Clock::time_point ewma_start{};

  std::shared_ptr<util::WorkPool::Job> pool_job;
};

/// EWMA parameters: fold a window no shorter than this, decay with this
/// time constant. A 5 s tau tracks a post-resume rate change within
/// ~10 s while riding out per-item jitter.
constexpr double kEwmaMinWindowS = 0.5;
constexpr double kEwmaTauS = 5.0;

/// Folds an `items`-over-`dt` window into `ewma` (first window seeds it).
inline double ewma_fold(double ewma, std::size_t items, double dt) {
  const double inst = static_cast<double>(items) / dt;
  if (ewma == 0.0) return inst;
  const double alpha = 1.0 - std::exp(-dt / kEwmaTauS);
  return ewma + alpha * (inst - ewma);
}

namespace {

/// Executes one work item: one fault map drawn from the item's private
/// RNG stream at BER(V), reused across every (app, EMT) pair — the
/// paper's Sec. V fairness protocol, now per grid item. (Moved here from
/// CampaignEngine, which is a synchronous shim over the session.)
void run_item(sim::ExperimentRunner& runner, const CampaignJob& job,
              const WorkItem& item, std::vector<Sample>& samples) {
  const double v = job.spec.voltages[item.voltage_index];
  const ecg::Record& record = job.records[item.record_index];

  util::Xoshiro256 rng(item.seed);
  const mem::FaultMap map = mem::FaultMap::random(
      mem::MemoryGeometry::kWords16, job.map_bits, job.ber_model->ber(v),
      rng);

  samples.clear();
  for (const auto& app : job.app_objs) {
    for (std::size_t ei = 0; ei < job.emt_objs.size(); ++ei) {
      const auto& emt = job.emt_objs[ei];
      const std::uint64_t t0 = util::telemetry::now_ns();
      const util::telemetry::TraceSpan span(job.emt_span_names[ei]);
      const sim::RunResult r = runner.run_once(*app, record, *emt, &map, v);
      job.emt_run_ns[ei].record(util::telemetry::now_ns() - t0);
      Sample s;
      s.snr_db = r.snr_db;
      s.energy = r.energy;
      s.corrected_words = static_cast<double>(r.counters.corrected_words);
      s.detected_uncorrectable =
          static_cast<double>(r.counters.detected_uncorrectable);
      samples.push_back(s);
    }
  }
}

}  // namespace

}  // namespace detail

namespace {

/// Records one executed item under the job lock: store write, streaming
/// observer (handed the job's own handle, so cancel-after-N needs no
/// caller-side handle plumbing), and the periodic checkpoint snapshot —
/// serialized, so the callbacks always see a consistent store.
void record_item(const std::shared_ptr<detail::CampaignJob>& job,
                 const WorkItem& item, const std::vector<Sample>& samples,
                 std::uint64_t item_start_ns) {
  namespace tel = ulpdream::util::telemetry;
  static const tel::Counter items_executed("session.items_executed");
  static const tel::Counter checkpoints("session.checkpoints");
  static const tel::Histogram checkpoint_ns("session.checkpoint_ns");
  static const tel::Histogram item_ns("session.item_ns");
  item_ns.record(tel::now_ns() - item_start_ns);

  const std::lock_guard lock(job->mutex);
  job->store.record_item(item, samples);
  ++job->executed;
  items_executed.add();
  job->last_item = detail::Clock::now();
  ++job->ewma_items;
  const double window_s = std::chrono::duration<double>(
                              job->last_item - job->ewma_start)
                              .count();
  if (window_s >= detail::kEwmaMinWindowS) {
    job->ewma_rate = detail::ewma_fold(job->ewma_rate, job->ewma_items,
                                       window_s);
    job->ewma_items = 0;
    job->ewma_start = job->last_item;
  }
  if (job->on_item) {
    job->on_item(CampaignHandle(job), item, std::span<const Sample>(samples));
  }
  if (job->checkpoint_every != 0 && job->on_checkpoint &&
      job->executed % job->checkpoint_every == 0) {
    ULPDREAM_TRACE_SPAN("session.checkpoint");
    const std::uint64_t t0 = tel::now_ns();
    job->on_checkpoint(job->store);
    checkpoint_ns.record(tel::now_ns() - t0);
    checkpoints.add();
  }
}

}  // namespace

CampaignHandle::CampaignHandle(std::shared_ptr<detail::CampaignJob> job)
    : job_(std::move(job)) {}

namespace {

detail::CampaignJob& checked(
    const std::shared_ptr<detail::CampaignJob>& job) {
  if (!job) throw std::logic_error("CampaignHandle: empty handle");
  return *job;
}

}  // namespace

ResultStore CampaignHandle::wait() const {
  detail::CampaignJob& job = checked(job_);
  job.pool_job->wait();
  const std::lock_guard lock(job.mutex);
  return job.store;
}

ResultStore CampaignHandle::take() const {
  detail::CampaignJob& job = checked(job_);
  job.pool_job->wait();
  const std::lock_guard lock(job.mutex);
  ResultStore out = std::move(job.store);
  job.store = ResultStore();
  return out;
}

std::optional<ResultStore> CampaignHandle::try_result() const {
  detail::CampaignJob& job = checked(job_);
  if (!job.pool_job->finished()) return std::nullopt;
  return wait();
}

Progress CampaignHandle::progress() const {
  detail::CampaignJob& job = checked(job_);
  Progress p;
  p.items_total = job.shard_total;
  p.items_resumed = job.resumed;
  p.per_worker_items = job.pool_job->done_per_worker();
  p.cancelled = job.pool_job->cancelled();
  p.finished = job.pool_job->finished();
  const auto now = detail::Clock::now();
  const std::lock_guard lock(job.mutex);
  p.items_done = job.resumed + job.executed;
  p.elapsed_s = std::chrono::duration<double>(now - job.start).count();
  const double run_s =
      std::chrono::duration<double>(job.last_item - job.start).count();
  p.items_per_second =
      (job.executed > 0 && run_s > 0.0)
          ? static_cast<double>(job.executed) / run_s
          : 0.0;
  // Recent rate: the folded EWMA plus the still-open window, computed
  // without mutating the fold state (progress() is a pure observer).
  double ewma = job.ewma_rate;
  const double open_s =
      std::chrono::duration<double>(now - job.ewma_start).count();
  if (open_s >= detail::kEwmaMinWindowS) {
    // Also when the open window is empty: a stalled run decays toward 0
    // instead of freezing at its last healthy rate.
    ewma = detail::ewma_fold(ewma, job.ewma_items, open_s);
  }
  p.items_per_second_ewma = ewma != 0.0 ? ewma : p.items_per_second;
  return p;
}

void CampaignHandle::cancel() const { checked(job_).pool_job->cancel(); }

Session::Session(energy::SystemEnergyModel energy_model, unsigned threads)
    : energy_model_(energy_model),
      baseline_(util::telemetry::snapshot()),
      pool_(threads) {}

Session Session::from_cli(const util::Cli& cli,
                          energy::SystemEnergyModel energy_model) {
  const std::int64_t threads =
      std::max<std::int64_t>(0, cli.get_int("threads", 0));
  return Session(energy_model, static_cast<unsigned>(threads));
  // (Session is move-constructible through guaranteed copy elision only;
  // callers receive the prvalue directly.)
}

CampaignHandle Session::submit(const CampaignSpec& base_spec,
                               SubmitOptions options) {
  namespace tel = util::telemetry;
  ULPDREAM_TRACE_SPAN("session.submit");
  static const tel::Counter submits("session.submits");
  static const tel::Counter items_resumed("session.items_resumed");
  submits.add();
  auto job = std::make_shared<detail::CampaignJob>();
  job->spec = base_spec.normalized();
  job->checkpoint_every = options.checkpoint_every;
  job->on_item = std::move(options.on_item);
  job->on_checkpoint = std::move(options.on_checkpoint);

  std::vector<WorkItem> shard_items;
  if (options.item_range.has_value()) {
    if (options.shard.index != 0 || options.shard.count != 1) {
      throw std::invalid_argument(
          "Session::submit: item_range and a non-default shard are "
          "mutually exclusive");
    }
    shard_items = expand_range(job->spec, options.item_range->begin,
                               options.item_range->end);
  } else {
    shard_items =
        expand_shard(job->spec, options.shard.index, options.shard.count);
  }
  job->shard_total = shard_items.size();

  // Sparse shard store over exactly this slice; a resume store's recorded
  // items are adopted verbatim (merge validates the grid fingerprint) and
  // only the gaps are executed.
  job->store = ResultStore(job->spec, shard_items);
  if (options.resume_from != nullptr) {
    const std::string want = job->spec.fingerprint();
    const std::string got = options.resume_from->spec().fingerprint();
    if (want != got) {
      throw std::invalid_argument(
          "Session::submit: resume store was built for a different campaign "
          "grid (axes + seed must match)\n  campaign: " +
          want + "\n  resume:   " + got);
    }
    job->store.merge(*options.resume_from);
  }
  job->todo.reserve(shard_items.size());
  for (const WorkItem& item : shard_items) {
    if (!job->store.item_done(item.index)) job->todo.push_back(item);
  }
  job->resumed = shard_items.size() - job->todo.size();
  if (job->resumed != 0) items_resumed.add(job->resumed);

  // Deterministic shared inputs, materialized once on the submitting
  // thread: the record corpus (renamed to the unique axis label — the
  // generator's <pathology>_s<seed> name collides for axes differing
  // only in noise level, and record names key the runner's reference
  // cache) and the component objects, resolved by registry name so user
  // registrations run exactly like built-ins. All stateless or
  // read-only, hence shared across the pool.
  job->records.reserve(job->spec.records.size());
  for (const RecordAxis& axis : job->spec.records) {
    ecg::GeneratorConfig gen;
    gen.fs_hz = job->spec.fs_hz;
    gen.duration_s = job->spec.duration_s;
    gen.pathology = axis.pathology;
    gen.seed = axis.seed;
    gen.noise.baseline_wander_mv *= axis.noise_scale;
    gen.noise.powerline_mv *= axis.noise_scale;
    gen.noise.emg_std_mv *= axis.noise_scale;
    job->records.push_back(ecg::generate_record(gen));
    job->records.back().name = axis.label();
  }
  job->app_objs.reserve(job->spec.apps.size());
  for (const std::string& name : job->spec.apps) {
    job->app_objs.push_back(apps::make_app(name));
  }
  job->emt_objs.reserve(job->spec.emts.size());
  job->emt_run_ns.reserve(job->spec.emts.size());
  job->emt_span_names.reserve(job->spec.emts.size());
  for (const std::string& name : job->spec.emts) {
    job->emt_objs.push_back(core::make_emt(name));
    job->emt_run_ns.emplace_back("session.run_ns." + name);
    job->emt_span_names.push_back(tel::intern("run." + name));
  }
  job->ber_model = mem::make_ber_model(job->spec.ber_model);

  // Maps are generated at the campaign's widest payload so the same cell
  // fault locations apply to every EMT (narrower payloads simply never
  // touch the high columns) — at least ECC's 22 bits, so the built-in
  // grids keep their historical maps.
  job->map_bits = core::EccSecDed::kPayloadBits;
  for (const auto& emt : job->emt_objs) {
    job->map_bits = std::max(job->map_bits, emt->payload_bits());
  }

  // Clean-run SNR ceilings (Fig. 4 dashed lines): serial, cheap and
  // deterministic, so any shard's / any resumed run's store carries the
  // same values.
  {
    sim::ExperimentRunner runner(energy_model_);
    for (std::size_t ri = 0; ri < job->records.size(); ++ri) {
      for (std::size_t ai = 0; ai < job->app_objs.size(); ++ai) {
        job->store.set_max_snr(
            ri, ai, runner.max_snr_db(*job->app_objs[ai], job->records[ri]));
      }
    }
  }

  job->start = detail::Clock::now();
  job->last_item = job->start;
  job->ewma_start = job->start;

  // The factory closure owns a reference to the job; the pool releases
  // it (and every per-worker closure) the moment the job finishes, which
  // breaks the handle -> pool-job -> closure -> job cycle. The job is
  // submitted deferred and started only after pool_job is published, so
  // no worker (and no on_item handle) can observe it half-constructed.
  job->pool_job = pool_.submit_deferred(
      job->todo.size(), [job, model = energy_model_]() {
        return [job, runner = sim::ExperimentRunner(model),
                samples = std::vector<Sample>()](std::size_t i) mutable {
          const std::uint64_t t0 = util::telemetry::now_ns();
          const WorkItem& item = job->todo[i];
          detail::run_item(runner, *job, item, samples);
          record_item(job, item, samples, t0);
        };
      });
  job->pool_job->start();
  return CampaignHandle(job);
}

}  // namespace ulpdream::campaign
