#pragma once
// Internal (non-installed) aggregation fold shared by the in-memory
// ResultStore::aggregate and the out-of-core ColumnarStore::aggregate.
// Both walk samples in the canonical order — item index major, then app,
// then EMT — and push them through this one folder, so the two paths are
// bit-identical by construction: same accumulator types, same operation
// order, same row emission. Any change to the statistics happens here
// once and both formats inherit it.

#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "ulpdream/campaign/result_store.hpp"
#include "ulpdream/campaign/spec.hpp"
#include "ulpdream/util/stats.hpp"

namespace ulpdream::campaign::detail {

/// Per-group fold state (same shape as the sweep's CellAccum).
struct GroupAccum {
  util::RunningStats snr;
  util::QuantileSketch snr_quantiles;
  util::RunningStats energy;
  energy::EnergyBreakdown energy_sum{};
  util::RunningStats corrected;
  util::RunningStats detected;

  void add(const Sample& s) {
    snr.add(s.snr_db);
    snr_quantiles.add(s.snr_db);
    energy.add(s.energy.total_j());
    energy_sum.data_dynamic_j += s.energy.data_dynamic_j;
    energy_sum.side_dynamic_j += s.energy.side_dynamic_j;
    energy_sum.codec_j += s.energy.codec_j;
    energy_sum.data_leak_j += s.energy.data_leak_j;
    energy_sum.side_leak_j += s.energy.side_leak_j;
    corrected.add(s.corrected_words);
    detected.add(s.detected_uncorrectable);
  }
};

/// Grouped accumulator grid over a (normalized) spec. Feed every sample
/// in canonical order through add(), then emit rows() — the memory cost
/// is one GroupAccum per output row, never a function of the store size,
/// which is what makes the streaming aggregation path out-of-core.
class AggregateFolder {
 public:
  AggregateFolder(const CampaignSpec& spec, const GroupBy& group)
      : spec_(spec),
        group_(group),
        nv_(spec.voltages.size()),
        reps_(spec.repetitions),
        gr_(group.record ? spec.records.size() : 1),
        ga_(group.app ? spec.apps.size() : 1),
        ge_(group.emt ? spec.emts.size() : 1),
        gv_(group.voltage ? nv_ : 1),
        accums_(gr_ * ga_ * ge_ * gv_) {}

  /// Folds the sample of (item, app ai, EMT ei) into its group.
  void add(std::size_t item, std::size_t ai, std::size_t ei,
           const Sample& s) {
    const std::size_t ri = item / (nv_ * reps_);
    const std::size_t vi = (item / reps_) % nv_;
    const std::size_t gi =
        ((((group_.record ? ri : 0) * ga_ + (group_.app ? ai : 0)) * ge_ +
          (group_.emt ? ei : 0)) *
         gv_) +
        (group_.voltage ? vi : 0);
    accums_[gi].add(s);
  }

  /// Emits the aggregate rows in canonical group order.
  [[nodiscard]] std::vector<AggregateRow> rows() const {
    constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
    std::vector<AggregateRow> out;
    out.reserve(accums_.size());
    for (std::size_t ri = 0; ri < gr_; ++ri) {
      for (std::size_t ai = 0; ai < ga_; ++ai) {
        for (std::size_t ei = 0; ei < ge_; ++ei) {
          for (std::size_t vi = 0; vi < gv_; ++vi) {
            const GroupAccum& a =
                accums_[((ri * ga_ + ai) * ge_ + ei) * gv_ + vi];
            AggregateRow row;
            if (group_.record) row.record = spec_.records[ri].label();
            if (group_.app) row.app = spec_.apps[ai];
            if (group_.emt) row.emt = spec_.emts[ei];
            row.voltage = group_.voltage ? spec_.voltages[vi] : kNan;
            row.n = a.snr.count();
            row.snr_mean_db = a.snr.mean();
            row.snr_stddev_db = a.snr.stddev();
            row.snr_min_db = a.snr.min();
            row.snr_max_db = a.snr.max();
            row.snr_p10_db = a.snr_quantiles.quantile(0.10);
            row.energy_mean_j = a.energy.mean();
            const double n = static_cast<double>(a.snr.count());
            row.data_dynamic_j = a.energy_sum.data_dynamic_j / n;
            row.side_dynamic_j = a.energy_sum.side_dynamic_j / n;
            row.codec_j = a.energy_sum.codec_j / n;
            row.data_leak_j = a.energy_sum.data_leak_j / n;
            row.side_leak_j = a.energy_sum.side_leak_j / n;
            row.corrected_mean = a.corrected.mean();
            row.detected_mean = a.detected.mean();
            out.push_back(std::move(row));
          }
        }
      }
    }
    return out;
  }

 private:
  const CampaignSpec& spec_;
  GroupBy group_;
  std::size_t nv_;
  std::size_t reps_;
  std::size_t gr_;
  std::size_t ga_;
  std::size_t ge_;
  std::size_t gv_;
  std::vector<GroupAccum> accums_;
};

}  // namespace ulpdream::campaign::detail
