#include "ulpdream/campaign/store_reader.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace ulpdream::campaign {

namespace {
/// First bytes of the text format's magic line
/// ("ulpdream-campaign-store v1").
constexpr char kTextMagicPrefix[] = "ulpdream";
}  // namespace

const char* to_string(StoreFormat format) noexcept {
  switch (format) {
    case StoreFormat::kText:
      return "text";
    case StoreFormat::kColumnar:
      return "columnar";
  }
  return "?";
}

StoreFormat parse_store_format(const std::string& name) {
  if (name == "text") return StoreFormat::kText;
  if (name == "columnar") return StoreFormat::kColumnar;
  throw std::invalid_argument("unknown store format '" + name +
                              "' (valid: text, columnar)");
}

StoreFormat detect_store_format(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw StoreError(path, "cannot open store file");
  }
  char magic[8] = {};
  is.read(magic, sizeof(magic));
  if (is.gcount() < static_cast<std::streamsize>(sizeof(magic))) {
    throw StoreError(path, "file too short to be a campaign store");
  }
  if (std::memcmp(magic, kColumnarMagic, sizeof(magic)) == 0) {
    return StoreFormat::kColumnar;
  }
  if (std::memcmp(magic, kTextMagicPrefix, sizeof(magic)) == 0) {
    return StoreFormat::kText;
  }
  throw StoreError(path,
                   "unrecognized store format (matches neither the text "
                   "magic line nor the columnar magic)");
}

void save_store(const ResultStore& store, const std::string& path,
                StoreFormat format) {
  switch (format) {
    case StoreFormat::kText:
      store.save_atomic(path);
      return;
    case StoreFormat::kColumnar:
      store.save_columnar(path);
      return;
  }
}

StoreReader StoreReader::open(const std::string& path,
                              const CampaignSpec& spec,
                              const OpenOptions& options) {
  StoreReader reader;
  reader.path_ = path;
  reader.format_ = detect_store_format(path);
  switch (reader.format_) {
    case StoreFormat::kText: {
      std::ifstream is(path, std::ios::binary);
      if (!is) throw StoreError(path, "cannot open store file");
      try {
        reader.text_ = ResultStore::load(is, spec);
      } catch (const StoreError&) {
        throw;
      } catch (const std::exception& e) {
        // The text parser's errors (std::runtime_error /
        // std::invalid_argument) do not name the file; wrap them so every
        // open failure is a StoreError carrying the path.
        throw StoreError(path, e.what());
      }
      break;
    }
    case StoreFormat::kColumnar: {
      ColumnarStore::OpenOptions copts;
      copts.allow_mmap = options.allow_mmap;
      copts.bounded_memory = options.bounded_memory;
      reader.columnar_ = ColumnarStore::open(path, spec, copts);
      break;
    }
  }
  return reader;
}

const CampaignSpec& StoreReader::spec() const {
  return text_ ? text_->spec() : columnar_->spec();
}

std::size_t StoreReader::items_done() const {
  return text_ ? text_->items_done() : columnar_->items_done();
}

bool StoreReader::complete() const {
  return text_ ? text_->complete() : columnar_->complete();
}

bool StoreReader::item_done(std::size_t item_index) const {
  return text_ ? text_->item_done(item_index)
               : columnar_->item_done(item_index);
}

std::vector<AggregateRow> StoreReader::aggregate(const GroupBy& group) const {
  return text_ ? text_->aggregate(group) : columnar_->aggregate(group);
}

ResultStore StoreReader::materialize() const {
  return text_ ? *text_ : columnar_->materialize();
}

}  // namespace ulpdream::campaign
