#include "ulpdream/campaign/columnar.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "aggregate_fold.hpp"
#include "ulpdream/util/telemetry.hpp"

namespace ulpdream::campaign {

namespace {

constexpr std::uint32_t kVersion = 1;
/// Written with native byte order; a reader on a host with the other
/// endianness sees the bytes reversed and rejects the file instead of
/// silently misreading every column. (In practice both sides are
/// little-endian; the tag guards the exotic cross-host move.)
constexpr std::uint32_t kEndianTag = 0x01020304u;
constexpr std::uint64_t kFixedHeaderBytes = 64;
/// item_index, slot_of, done, then the eight Sample field columns.
constexpr std::uint64_t kNumColumns = 11;

constexpr std::uint64_t align8(std::uint64_t n) { return (n + 7) & ~7ull; }

/// Field extractors in column order 3..10 — the one place that fixes the
/// Sample-field <-> column mapping for both writer and reader.
using FieldGet = double (*)(const Sample&);
constexpr FieldGet kFieldGet[8] = {
    [](const Sample& s) { return s.snr_db; },
    [](const Sample& s) { return s.energy.data_dynamic_j; },
    [](const Sample& s) { return s.energy.side_dynamic_j; },
    [](const Sample& s) { return s.energy.codec_j; },
    [](const Sample& s) { return s.energy.data_leak_j; },
    [](const Sample& s) { return s.energy.side_leak_j; },
    [](const Sample& s) { return s.corrected_words; },
    [](const Sample& s) { return s.detected_uncorrectable; }};

using FieldSet = void (*)(Sample&, double);
constexpr FieldSet kFieldSet[8] = {
    [](Sample& s, double v) { s.snr_db = v; },
    [](Sample& s, double v) { s.energy.data_dynamic_j = v; },
    [](Sample& s, double v) { s.energy.side_dynamic_j = v; },
    [](Sample& s, double v) { s.energy.codec_j = v; },
    [](Sample& s, double v) { s.energy.data_leak_j = v; },
    [](Sample& s, double v) { s.energy.side_leak_j = v; },
    [](Sample& s, double v) { s.corrected_words = v; },
    [](Sample& s, double v) { s.detected_uncorrectable = v; }};

/// Sequential file writer with an internal chunk buffer and a running
/// byte count, so the layout the header promises can be asserted while
/// writing. All failures surface in finish() (or the final stream check).
class BufferedFileWriter {
 public:
  explicit BufferedFileWriter(const std::string& path)
      : path_(path), os_(path, std::ios::binary | std::ios::trunc) {
    buffer_.reserve(kFlushBytes);
  }

  void put_bytes(const void* data, std::size_t len) {
    const auto* p = static_cast<const char*>(data);
    buffer_.insert(buffer_.end(), p, p + len);
    written_ += len;
    if (buffer_.size() >= kFlushBytes) flush_buffer();
  }
  void put_u32(std::uint32_t v) { put_bytes(&v, sizeof(v)); }
  void put_u64(std::uint64_t v) { put_bytes(&v, sizeof(v)); }
  void put_f64(double v) { put_bytes(&v, sizeof(v)); }
  void pad_to(std::uint64_t offset) {
    static constexpr char kZeros[8] = {};
    while (written_ < offset) {
      put_bytes(kZeros, std::min<std::uint64_t>(8, offset - written_));
    }
  }

  [[nodiscard]] std::uint64_t written() const noexcept { return written_; }

  /// Flushes and closes; throws StoreError on any accumulated I/O error.
  void finish() {
    flush_buffer();
    os_.flush();
    if (!os_) throw StoreError(path_, "failed to write columnar store");
    os_.close();
  }

 private:
  static constexpr std::size_t kFlushBytes = 1u << 20;
  void flush_buffer() {
    if (!buffer_.empty()) {
      os_.write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
      buffer_.clear();
    }
  }
  std::string path_;
  std::ofstream os_;
  std::vector<char> buffer_;
  std::uint64_t written_ = 0;
};

struct Layout {
  std::uint64_t file_bytes = 0;
  std::uint64_t fingerprint_pad = 0;
  std::uint64_t dir_offset = 0;  ///< of the n_columns word
  std::uint64_t column_offset[kNumColumns] = {};
  std::uint64_t column_bytes[kNumColumns] = {};
};

/// Computes the full file layout from the logical counts. Shared by the
/// writer and append_merge so a layout bug cannot split between them.
Layout compute_layout(std::uint64_t n_index, std::uint64_t n_physical,
                      std::uint64_t per_item, std::uint64_t fingerprint_len,
                      std::uint64_t max_snr_count) {
  Layout l;
  l.fingerprint_pad = align8(fingerprint_len);
  l.dir_offset = kFixedHeaderBytes + l.fingerprint_pad + 8 * max_snr_count;
  std::uint64_t off = l.dir_offset + 8 + 16 * kNumColumns;
  const auto place = [&](std::size_t col, std::uint64_t bytes) {
    l.column_offset[col] = off;
    l.column_bytes[col] = bytes;
    off += align8(bytes);
  };
  place(0, 8 * n_index);                   // item_index
  place(1, 8 * n_index);                   // slot_of
  place(2, n_physical);                    // done flags
  for (std::size_t f = 0; f < 8; ++f) {    // sample field columns
    place(3 + f, 8 * n_physical * per_item);
  }
  l.file_bytes = off;
  return l;
}

void write_header(BufferedFileWriter& w, const Layout& l,
                  const std::string& fingerprint,
                  std::span<const double> max_snr, std::uint64_t n_index,
                  std::uint64_t n_physical, std::uint64_t per_item) {
  w.put_bytes(kColumnarMagic, sizeof(kColumnarMagic));
  w.put_u32(kVersion);
  w.put_u32(kEndianTag);
  w.put_u64(l.file_bytes);
  w.put_u64(n_index);
  w.put_u64(n_physical);
  w.put_u64(per_item);
  w.put_u64(fingerprint.size());
  w.put_u64(max_snr.size());
  w.put_bytes(fingerprint.data(), fingerprint.size());
  w.pad_to(kFixedHeaderBytes + l.fingerprint_pad);
  for (double v : max_snr) w.put_f64(v);
  w.put_u64(kNumColumns);
  for (std::size_t c = 0; c < kNumColumns; ++c) {
    w.put_u64(l.column_offset[c]);
    w.put_u64(l.column_bytes[c]);
  }
}

/// Staging-file name unique to this process (same convention as
/// ResultStore::save_atomic).
std::string staging_name(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  return path + ".tmp." + std::to_string(::getpid());
#else
  return path + ".tmp";
#endif
}

}  // namespace

// ---------------------------------------------------------------------------
// Writer.

void ResultStore::save_columnar(const std::string& path) const {
  ULPDREAM_TRACE_SPAN("store.save_columnar");
  namespace tel = util::telemetry;
  static const tel::Counter saves("store.columnar.saves");
  static const tel::Counter save_bytes("store.columnar.save_bytes");
  static const tel::Histogram save_ns("store.columnar.save_ns");
  const std::uint64_t t0 = tel::now_ns();

  // Done items only, like the text save — a checkpoint never persists
  // preallocated-but-unexecuted slots.
  std::vector<std::size_t> done_slots;
  done_slots.reserve(item_index_.size());
  for (std::size_t slot = 0; slot < item_index_.size(); ++slot) {
    if (item_done_[slot]) done_slots.push_back(slot);
  }
  const std::uint64_t n = done_slots.size();
  const std::uint64_t pi = per_item();
  const std::string fingerprint = spec_.fingerprint();
  const Layout l =
      compute_layout(n, n, pi, fingerprint.size(), max_snr_.size());

  const std::string tmp = staging_name(path);
  try {
    BufferedFileWriter w(tmp);
    write_header(w, l, fingerprint, max_snr_, n, n, pi);
    // Index: sorted item indices with the identity permutation — a fresh
    // save is its own canonical order.
    for (const std::size_t slot : done_slots) {
      w.put_u64(item_index_[slot]);
    }
    for (std::uint64_t i = 0; i < n; ++i) w.put_u64(i);
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint8_t done = 1;
      w.put_bytes(&done, 1);
    }
    w.pad_to(l.column_offset[2] + align8(l.column_bytes[2]));
    // One pass per field column, slot-major / app-major / EMT-minor.
    for (std::size_t f = 0; f < 8; ++f) {
      for (const std::size_t slot : done_slots) {
        const Sample* s = samples_.data() + slot * pi;
        for (std::uint64_t k = 0; k < pi; ++k) {
          w.put_f64(kFieldGet[f](s[k]));
        }
      }
    }
    if (w.written() != l.file_bytes) {
      throw StoreError(tmp, "internal layout mismatch while writing");
    }
    w.finish();
    util::publish_file_atomic(tmp, path);
  } catch (...) {
    std::remove(tmp.c_str());
    throw;
  }
  save_ns.record(tel::now_ns() - t0);
  save_bytes.add(l.file_bytes);
  saves.add();
}

// ---------------------------------------------------------------------------
// Reader.

std::uint64_t ColumnarStore::u64_at(std::uint64_t offset) const {
  return reader_ ? reader_->pod_at<std::uint64_t>(offset)
                 : view_->pod_at<std::uint64_t>(offset);
}

double ColumnarStore::f64_at(std::uint64_t offset) const {
  return reader_ ? reader_->pod_at<double>(offset)
                 : view_->pod_at<double>(offset);
}

std::uint8_t ColumnarStore::u8_at(std::uint64_t offset) const {
  return reader_ ? reader_->pod_at<std::uint8_t>(offset)
                 : view_->pod_at<std::uint8_t>(offset);
}

bool ColumnarStore::mapped() const noexcept {
  return view_.has_value() && view_->mapped();
}

ColumnarStore ColumnarStore::open(const std::string& path,
                                  const CampaignSpec& spec,
                                  const OpenOptions& options) {
  ULPDREAM_TRACE_SPAN("store.open_columnar");
  namespace tel = util::telemetry;
  static const tel::Counter opens("store.columnar.opens");
  static const tel::Counter mapped_opens("store.columnar.mapped_opens");
  static const tel::Histogram open_ns("store.columnar.open_ns");
  const std::uint64_t t0 = tel::now_ns();

  ColumnarStore store;
  store.path_ = path;
  store.spec_ = spec.normalized();
  const auto fail = [&path](const std::string& what) -> void {
    throw StoreError(path, "columnar store: " + what);
  };

  std::uint64_t size = 0;
  try {
    if (options.bounded_memory) {
      store.reader_.emplace(path, options.cache_chunk_bytes,
                            options.cache_chunks);
      size = store.reader_->size();
    } else {
      store.view_ = util::FileView::open(path, options.allow_mmap);
      size = store.view_->size();
    }
  } catch (const std::runtime_error& e) {
    throw StoreError(path, e.what());
  }

  // Header. Every count is validated against the real file size before
  // anything derived from it is dereferenced — a truncated or lying file
  // fails typed, never with a read off the end of the mapping.
  if (size < kFixedHeaderBytes) fail("truncated header");
  char magic[8];
  if (store.reader_) {
    store.reader_->read(0, magic, sizeof(magic));
  } else {
    std::memcpy(magic, store.view_->bytes(0, 8).data(), 8);
  }
  if (std::memcmp(magic, kColumnarMagic, sizeof(magic)) != 0) {
    fail("bad magic (not a columnar store file)");
  }
  const auto u32_at = [&store](std::uint64_t offset) {
    return store.reader_ ? store.reader_->pod_at<std::uint32_t>(offset)
                         : store.view_->pod_at<std::uint32_t>(offset);
  };
  const std::uint32_t version = u32_at(8);
  if (version != kVersion) {
    fail("unsupported version " + std::to_string(version) + " (expected " +
         std::to_string(kVersion) + ")");
  }
  if (u32_at(12) != kEndianTag) {
    fail("endianness mismatch — file was written on a foreign-endian host");
  }
  const std::uint64_t file_bytes = store.u64_at(16);
  if (file_bytes != size) {
    fail("truncated or padded file (header records " +
         std::to_string(file_bytes) + " bytes, file has " +
         std::to_string(size) + ")");
  }
  store.n_index_ = store.u64_at(24);
  store.n_physical_ = store.u64_at(32);
  store.per_item_ = store.u64_at(40);
  const std::uint64_t fingerprint_len = store.u64_at(48);
  const std::uint64_t max_snr_count = store.u64_at(56);

  const std::uint64_t want_pi =
      store.spec_.apps.size() * store.spec_.emts.size();
  if (store.per_item_ != want_pi) {
    fail("per-item sample count " + std::to_string(store.per_item_) +
         " disagrees with the campaign spec (" + std::to_string(want_pi) +
         ")");
  }
  if (fingerprint_len > size - kFixedHeaderBytes) {
    fail("truncated fingerprint");
  }
  std::string fingerprint(fingerprint_len, '\0');
  if (fingerprint_len != 0) {
    if (store.reader_) {
      store.reader_->read(kFixedHeaderBytes, fingerprint.data(),
                          fingerprint_len);
    } else {
      std::memcpy(fingerprint.data(),
                  store.view_->bytes(kFixedHeaderBytes, fingerprint_len)
                      .data(),
                  fingerprint_len);
    }
  }
  if (fingerprint != store.spec_.fingerprint()) {
    fail(
        "spec fingerprint mismatch — the file was saved for a different "
        "campaign grid\n  expected: " +
        store.spec_.fingerprint() + "\n  file:     " + fingerprint);
  }
  if (max_snr_count !=
      store.spec_.records.size() * store.spec_.apps.size()) {
    fail("max_snr count disagrees with the campaign spec");
  }

  const Layout l = compute_layout(store.n_index_, store.n_physical_,
                                  store.per_item_, fingerprint_len,
                                  max_snr_count);
  if (l.file_bytes != size) {
    fail("index/column lengths disagree with the file size (layout needs " +
         std::to_string(l.file_bytes) + " bytes, file has " +
         std::to_string(size) + ")");
  }
  store.max_snr_.resize(max_snr_count);
  for (std::uint64_t i = 0; i < max_snr_count; ++i) {
    store.max_snr_[i] =
        store.f64_at(kFixedHeaderBytes + l.fingerprint_pad + 8 * i);
  }
  if (store.u64_at(l.dir_offset) != kNumColumns) {
    fail("unexpected column count " +
         std::to_string(store.u64_at(l.dir_offset)));
  }
  store.columns_.resize(kNumColumns);
  for (std::size_t c = 0; c < kNumColumns; ++c) {
    store.columns_[c].offset = store.u64_at(l.dir_offset + 8 + 16 * c);
    store.columns_[c].bytes = store.u64_at(l.dir_offset + 16 + 16 * c);
    if (store.columns_[c].offset != l.column_offset[c] ||
        store.columns_[c].bytes != l.column_bytes[c]) {
      fail("column " + std::to_string(c) +
           " directory entry disagrees with the index counts (offset " +
           std::to_string(store.columns_[c].offset) + ", " +
           std::to_string(store.columns_[c].bytes) + " bytes; expected " +
           std::to_string(l.column_offset[c]) + ", " +
           std::to_string(l.column_bytes[c]) + ")");
    }
  }

  // Index validation: strictly ascending canonical items inside the grid,
  // physical slots inside the data columns. One sequential pass — also
  // where items_done is counted, so open() touches the (small) index but
  // never a sample column.
  std::uint64_t prev = 0;
  for (std::uint64_t i = 0; i < store.n_index_; ++i) {
    const std::uint64_t item = store.u64_at(l.column_offset[0] + 8 * i);
    const std::uint64_t slot = store.u64_at(l.column_offset[1] + 8 * i);
    if (item >= store.spec_.item_count()) {
      fail("index entry " + std::to_string(i) + " names item " +
           std::to_string(item) + " outside the campaign grid");
    }
    if (i != 0 && item <= prev) {
      fail("item index is not strictly ascending at entry " +
           std::to_string(i));
    }
    if (slot >= store.n_physical_) {
      fail("index entry " + std::to_string(i) + " points at physical slot " +
           std::to_string(slot) + " of " +
           std::to_string(store.n_physical_));
    }
    prev = item;
    if (store.u8_at(l.column_offset[2] + slot) != 0) ++store.items_done_;
  }

  open_ns.record(tel::now_ns() - t0);
  opens.add();
  if (store.mapped()) mapped_opens.add();
  return store;
}

std::size_t ColumnarStore::item_at(std::size_t sorted_pos) const {
  if (sorted_pos >= n_index_) {
    throw StoreError(path_, "item_at: position out of range");
  }
  return static_cast<std::size_t>(
      u64_at(columns_[0].offset + 8 * sorted_pos));
}

void ColumnarStore::samples_at(std::size_t sorted_pos,
                               std::vector<Sample>& out) const {
  if (sorted_pos >= n_index_) {
    throw StoreError(path_, "samples_at: position out of range");
  }
  const std::uint64_t phys = u64_at(columns_[1].offset + 8 * sorted_pos);
  out.assign(per_item_, Sample{});
  for (std::size_t f = 0; f < 8; ++f) {
    const std::uint64_t base =
        columns_[3 + f].offset + 8 * phys * per_item_;
    for (std::uint64_t k = 0; k < per_item_; ++k) {
      kFieldSet[f](out[k], f64_at(base + 8 * k));
    }
  }
}

bool ColumnarStore::item_done(std::size_t item_index) const {
  // Binary search over the on-disk sorted item column.
  std::uint64_t lo = 0;
  std::uint64_t hi = n_index_;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    const std::uint64_t item = u64_at(columns_[0].offset + 8 * mid);
    if (item < item_index) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == n_index_ ||
      u64_at(columns_[0].offset + 8 * lo) != item_index) {
    return false;
  }
  const std::uint64_t slot = u64_at(columns_[1].offset + 8 * lo);
  return u8_at(columns_[2].offset + slot) != 0;
}

double ColumnarStore::max_snr_db(std::size_t record_index,
                                 std::size_t app_index) const {
  return max_snr_.at(record_index * spec_.apps.size() + app_index);
}

std::vector<AggregateRow> ColumnarStore::aggregate(
    const GroupBy& group) const {
  ULPDREAM_TRACE_SPAN("store.aggregate_columnar");
  namespace tel = util::telemetry;
  static const tel::Counter aggregates("store.columnar.aggregates");
  static const tel::Counter agg_samples("store.columnar.aggregate_samples");
  static const tel::Histogram agg_ns("store.columnar.aggregate_ns");
  const std::uint64_t t0 = tel::now_ns();
  if (!complete()) {
    throw std::logic_error(
        "ColumnarStore::aggregate: store incomplete — merge all shards "
        "first");
  }
  const std::size_t na = spec_.apps.size();
  const std::size_t ne = spec_.emts.size();

  // The streaming fold: walk the sorted index (canonical item order),
  // assemble each (app, EMT) sample from the eight field columns and push
  // it through the shared folder. Memory is one accumulator per output
  // row — never a function of the store size; the column bytes stream
  // through the mapping (or the bounded chunk cache) and are never
  // materialized as Samples.
  detail::AggregateFolder folder(spec_, group);
  Sample s;
  for (std::uint64_t pos = 0; pos < n_index_; ++pos) {
    const std::uint64_t item = u64_at(columns_[0].offset + 8 * pos);
    const std::uint64_t phys = u64_at(columns_[1].offset + 8 * pos);
    const std::uint64_t base = phys * per_item_;
    for (std::size_t ai = 0; ai < na; ++ai) {
      for (std::size_t ei = 0; ei < ne; ++ei) {
        const std::uint64_t k = base + ai * ne + ei;
        for (std::size_t f = 0; f < 8; ++f) {
          kFieldSet[f](s, f64_at(columns_[3 + f].offset + 8 * k));
        }
        folder.add(static_cast<std::size_t>(item), ai, ei, s);
      }
    }
  }
  agg_samples.add(n_index_ * per_item_);
  agg_ns.record(tel::now_ns() - t0);
  aggregates.add();
  return folder.rows();
}

ResultStore ColumnarStore::materialize() const {
  ResultStore store(spec_);
  std::vector<Sample> samples;
  for (std::uint64_t pos = 0; pos < n_index_; ++pos) {
    const std::uint64_t phys = u64_at(columns_[1].offset + 8 * pos);
    if (u8_at(columns_[2].offset + phys) == 0) continue;
    WorkItem item;
    item.index = item_at(pos);
    samples_at(pos, samples);
    store.record_item(item, samples);
  }
  const std::size_t na = spec_.apps.size();
  for (std::size_t ri = 0; ri < spec_.records.size(); ++ri) {
    for (std::size_t ai = 0; ai < na; ++ai) {
      store.set_max_snr(ri, ai, max_snr_[ri * na + ai]);
    }
  }
  return store;
}

// ---------------------------------------------------------------------------
// Merge-by-append.

void ColumnarStore::append_merge(const std::vector<std::string>& inputs,
                                 const std::string& out_path,
                                 const CampaignSpec& spec,
                                 const AppendOptions& options) {
  ULPDREAM_TRACE_SPAN("store.append_merge");
  namespace tel = util::telemetry;
  static const tel::Counter appends("store.columnar.appends");
  static const tel::Counter append_bytes("store.columnar.append_bytes");
  static const tel::Histogram append_ns("store.columnar.append_ns");
  const std::uint64_t t0 = tel::now_ns();
  if (inputs.empty()) {
    throw std::invalid_argument(
        "ColumnarStore::append_merge: no input stores");
  }

  // Open every input bounded (sequential copies hit a small chunk cache;
  // memory never scales with the sample data). Validation — fingerprints
  // against `spec`, structure against the file — happens in open().
  OpenOptions bounded;
  bounded.bounded_memory = true;
  bounded.cache_chunk_bytes = 1u << 20;
  bounded.cache_chunks = 4;
  std::vector<ColumnarStore> stores;
  stores.reserve(inputs.size());
  for (const std::string& path : inputs) {
    stores.push_back(open(path, spec, bounded));
  }
  const CampaignSpec& nspec = stores.front().spec_;
  const std::uint64_t pi = stores.front().per_item_;

  // Merged index: every input's (item, physical slot, done) with slots
  // rebased onto the concatenated columns; sorted by item, stable in
  // input order. The first done occurrence of a duplicated item wins —
  // the same rule ResultStore::merge applies pairwise — and duplicate
  // sample bytes stay in the file as unreferenced slots rather than
  // being compacted (append never rewrites sample bytes).
  struct Entry {
    std::uint64_t item;
    std::uint64_t phys;   ///< slot rebased onto the concatenated columns
    std::uint32_t store;  ///< input the slot lives in (canonical copies)
    std::uint64_t slot;   ///< slot inside that input
    std::uint8_t done;
  };
  std::vector<Entry> entries;
  std::uint64_t n_physical = 0;
  for (std::uint32_t si = 0; si < stores.size(); ++si) {
    const ColumnarStore& s = stores[si];
    for (std::uint64_t i = 0; i < s.n_index_; ++i) {
      const std::uint64_t item = s.u64_at(s.columns_[0].offset + 8 * i);
      const std::uint64_t slot = s.u64_at(s.columns_[1].offset + 8 * i);
      const std::uint8_t done = s.u8_at(s.columns_[2].offset + slot);
      entries.push_back(Entry{item, n_physical + slot, si, slot, done});
    }
    n_physical += s.n_physical_;
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) {
                     return a.item < b.item;
                   });
  std::vector<Entry> merged;
  merged.reserve(entries.size());
  for (std::size_t i = 0; i < entries.size();) {
    std::size_t j = i;
    std::size_t pick = i;
    for (; j < entries.size() && entries[j].item == entries[i].item; ++j) {
      if (entries[pick].done == 0 && entries[j].done != 0) pick = j;
    }
    merged.push_back(entries[pick]);
    i = j;
  }

  // Max-SNR ceilings: first non-NaN wins across inputs in order (the
  // pairwise merge rule, applied left to right).
  std::vector<double> max_snr = stores.front().max_snr_;
  for (const ColumnarStore& s : stores) {
    for (std::size_t i = 0; i < max_snr.size(); ++i) {
      if (std::isnan(max_snr[i])) max_snr[i] = s.max_snr_[i];
    }
  }

  if (options.canonical) {
    // Canonical mode persists done entries only — the same "a save never
    // writes unexecuted slots" rule as ResultStore::save_columnar, whose
    // byte layout this mode reproduces exactly.
    std::erase_if(merged, [](const Entry& e) { return e.done == 0; });
    n_physical = merged.size();
  }

  const std::string fingerprint = nspec.fingerprint();
  const Layout l = compute_layout(merged.size(), n_physical, pi,
                                  fingerprint.size(), max_snr.size());

  const std::string tmp = staging_name(out_path);
  try {
    BufferedFileWriter w(tmp);
    write_header(w, l, fingerprint, max_snr, merged.size(), n_physical, pi);
    for (const Entry& e : merged) w.put_u64(e.item);
    if (options.canonical) {
      for (std::uint64_t i = 0; i < merged.size(); ++i) w.put_u64(i);
    } else {
      for (const Entry& e : merged) w.put_u64(e.phys);
    }
    std::vector<char> copy_buf(1u << 20);
    if (options.canonical) {
      // Slots rewritten in sorted item order: the done column is all
      // ones and each entry's sample row is gathered from its source
      // store — one pi-wide row read per entry per field column, still
      // never decoding a sample.
      for (std::uint64_t i = 0; i < merged.size(); ++i) {
        const std::uint8_t done = 1;
        w.put_bytes(&done, 1);
      }
      w.pad_to(l.column_offset[2] + align8(l.column_bytes[2]));
      const std::size_t row_bytes = static_cast<std::size_t>(8 * pi);
      copy_buf.resize(row_bytes);
      for (std::size_t f = 0; f < 8; ++f) {
        for (const Entry& e : merged) {
          const ColumnarStore& s = stores[e.store];
          s.reader_->read(s.columns_[3 + f].offset + e.slot * row_bytes,
                          copy_buf.data(), row_bytes);
          w.put_bytes(copy_buf.data(), row_bytes);
        }
      }
    } else {
      // Done and sample columns: verbatim concatenation of the inputs'
      // columns, streamed through a fixed-size copy buffer.
      const auto copy_column = [&](std::size_t col) {
        for (const ColumnarStore& s : stores) {
          std::uint64_t off = s.columns_[col].offset;
          std::uint64_t left = s.columns_[col].bytes;
          while (left > 0) {
            const std::size_t take = static_cast<std::size_t>(
                std::min<std::uint64_t>(copy_buf.size(), left));
            s.reader_->read(off, copy_buf.data(), take);
            w.put_bytes(copy_buf.data(), take);
            off += take;
            left -= take;
          }
        }
      };
      copy_column(2);
      w.pad_to(l.column_offset[2] + align8(l.column_bytes[2]));
      for (std::size_t f = 0; f < 8; ++f) copy_column(3 + f);
    }
    if (w.written() != l.file_bytes) {
      throw StoreError(tmp, "internal layout mismatch while appending");
    }
    w.finish();
    util::publish_file_atomic(tmp, out_path);
  } catch (...) {
    std::remove(tmp.c_str());
    throw;
  }
  append_ns.record(tel::now_ns() - t0);
  append_bytes.add(l.file_bytes);
  appends.add();
}

}  // namespace ulpdream::campaign
