#include "ulpdream/campaign/result_store.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <istream>
#include <iterator>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "aggregate_fold.hpp"
#include "ulpdream/util/file_view.hpp"
#include "ulpdream/util/stats.hpp"
#include "ulpdream/util/telemetry.hpp"

namespace ulpdream::campaign {

namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

// The per-group fold state and the grouped fold itself live in
// aggregate_fold.hpp, shared with the streaming columnar path so the two
// formats aggregate bit-identically by construction.
using detail::GroupAccum;

}  // namespace

ResultStore::ResultStore(CampaignSpec spec) : spec_(std::move(spec)) {
  max_snr_.assign(spec_.records.size() * spec_.apps.size(), kNan);
}

ResultStore::ResultStore(CampaignSpec spec, std::span<const WorkItem> items)
    : ResultStore(std::move(spec)) {
  item_index_.reserve(items.size());
  for (const WorkItem& item : items) {
    if (item.index >= spec_.item_count()) {
      throw std::invalid_argument("ResultStore: item index out of range");
    }
    item_index_.push_back(item.index);
  }
  std::sort(item_index_.begin(), item_index_.end());
  item_index_.erase(std::unique(item_index_.begin(), item_index_.end()),
                    item_index_.end());
  item_done_.assign(item_index_.size(), 0);
  samples_.resize(item_index_.size() * per_item());
}

std::size_t ResultStore::find_slot(std::size_t item) const noexcept {
  const auto it =
      std::lower_bound(item_index_.begin(), item_index_.end(), item);
  if (it == item_index_.end() || *it != item) return kNoSlot;
  return static_cast<std::size_t>(it - item_index_.begin());
}

std::size_t ResultStore::insert_slot(std::size_t item) {
  const auto it =
      std::lower_bound(item_index_.begin(), item_index_.end(), item);
  const auto slot = static_cast<std::size_t>(it - item_index_.begin());
  if (it != item_index_.end() && *it == item) return slot;
  item_index_.insert(it, item);
  item_done_.insert(item_done_.begin() + static_cast<std::ptrdiff_t>(slot), 0);
  samples_.insert(
      samples_.begin() + static_cast<std::ptrdiff_t>(slot * per_item()),
      per_item(), Sample{});
  return slot;
}

void ResultStore::record_item(const WorkItem& item,
                              const std::vector<Sample>& samples) {
  if (item.index >= spec_.item_count() || samples.size() != per_item()) {
    throw std::invalid_argument("ResultStore::record_item: bad item/samples");
  }
  std::size_t slot = find_slot(item.index);
  if (slot == kNoSlot) slot = insert_slot(item.index);
  const std::size_t base = slot * per_item();
  for (std::size_t i = 0; i < samples.size(); ++i) {
    samples_[base + i] = samples[i];
  }
  item_done_[slot] = 1;
}

void ResultStore::set_max_snr(std::size_t record_index, std::size_t app_index,
                              double snr_db) {
  max_snr_.at(record_index * spec_.apps.size() + app_index) = snr_db;
}

double ResultStore::max_snr_db(std::size_t record_index,
                               std::size_t app_index) const {
  return max_snr_.at(record_index * spec_.apps.size() + app_index);
}

std::size_t ResultStore::items_done() const noexcept {
  std::size_t n = 0;
  for (char done : item_done_) n += done ? 1 : 0;
  return n;
}

bool ResultStore::complete() const noexcept {
  return items_done() == spec_.item_count();
}

bool ResultStore::item_done(std::size_t item_index) const noexcept {
  const std::size_t slot = find_slot(item_index);
  return slot != kNoSlot && item_done_[slot] != 0;
}

void ResultStore::merge(const ResultStore& other) {
  ULPDREAM_TRACE_SPAN("store.merge");
  static const util::telemetry::Counter merges("store.merges");
  static const util::telemetry::Histogram merge_ns("store.merge_ns");
  const std::uint64_t t0 = util::telemetry::now_ns();
  if (spec_.fingerprint() != other.spec_.fingerprint()) {
    throw std::invalid_argument(
        "ResultStore::merge: spec fingerprint mismatch — refusing to mix "
        "results from different campaign grids\n  this:  " +
        spec_.fingerprint() + "\n  other: " + other.spec_.fingerprint());
  }
  // Two-pointer merge of the sorted slot indices into fresh arrays: done
  // items already present here win, the other store fills the gaps.
  const std::size_t pi = per_item();
  std::vector<std::size_t> index;
  std::vector<char> done;
  std::vector<Sample> samples;
  index.reserve(item_index_.size() + other.item_index_.size());
  std::size_t a = 0;
  std::size_t b = 0;
  const auto append = [&](const ResultStore& from, std::size_t slot) {
    index.push_back(from.item_index_[slot]);
    done.push_back(from.item_done_[slot]);
    samples.insert(samples.end(), from.samples_.begin() + slot * pi,
                   from.samples_.begin() + (slot + 1) * pi);
  };
  while (a < item_index_.size() || b < other.item_index_.size()) {
    if (b >= other.item_index_.size() ||
        (a < item_index_.size() && item_index_[a] < other.item_index_[b])) {
      append(*this, a++);
    } else if (a >= item_index_.size() ||
               other.item_index_[b] < item_index_[a]) {
      append(other, b++);
    } else {
      if (item_done_[a] || !other.item_done_[b]) {
        append(*this, a);
      } else {
        append(other, b);
      }
      ++a;
      ++b;
    }
  }
  item_index_ = std::move(index);
  item_done_ = std::move(done);
  samples_ = std::move(samples);
  for (std::size_t i = 0; i < max_snr_.size(); ++i) {
    if (std::isnan(max_snr_[i])) max_snr_[i] = other.max_snr_[i];
  }
  merge_ns.record(util::telemetry::now_ns() - t0);
  merges.add();
}

std::vector<AggregateRow> ResultStore::aggregate(const GroupBy& group) const {
  if (!complete()) {
    throw std::logic_error(
        "ResultStore::aggregate: store incomplete — merge all shards first");
  }
  const std::size_t na = spec_.apps.size();
  const std::size_t ne = spec_.emts.size();

  // Canonical fold order: item index major, then app, then EMT — the slot
  // index is sorted by item, so this is a linear walk and every group
  // receives its samples in the same order however the campaign was
  // executed (and identically to the streaming columnar path, which feeds
  // the same folder in the same order).
  detail::AggregateFolder folder(spec_, group);
  for (std::size_t slot = 0; slot < item_index_.size(); ++slot) {
    const std::size_t item = item_index_[slot];
    const std::size_t base = slot * na * ne;
    for (std::size_t ai = 0; ai < na; ++ai) {
      for (std::size_t ei = 0; ei < ne; ++ei) {
        folder.add(item, ai, ei, samples_[base + ai * ne + ei]);
      }
    }
  }
  return folder.rows();
}

sim::SweepResult ResultStore::to_sweep_result(std::size_t record_index,
                                              std::size_t app_index) const {
  if (!complete()) {
    throw std::logic_error("ResultStore::to_sweep_result: store incomplete");
  }
  if (record_index >= spec_.records.size() ||
      app_index >= spec_.apps.size()) {
    throw std::invalid_argument("ResultStore::to_sweep_result: bad index");
  }
  const std::size_t na = spec_.apps.size();
  const std::size_t ne = spec_.emts.size();
  const std::size_t nv = spec_.voltages.size();
  const std::size_t reps = spec_.repetitions;
  const auto ber_model = mem::make_ber_model(spec_.ber_model);

  sim::SweepResult result;
  result.config.voltages = spec_.voltages;
  result.config.runs = reps;
  result.config.seed = spec_.seed;
  result.config.ber_model = spec_.ber_model;
  result.config.emts = spec_.emts;
  result.max_snr_db = max_snr_db(record_index, app_index);

  for (std::size_t vi = 0; vi < nv; ++vi) {
    for (std::size_t ei = 0; ei < ne; ++ei) {
      GroupAccum a;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        const std::size_t item = (record_index * nv + vi) * reps + rep;
        const std::size_t slot = find_slot(item);
        a.add(samples_[slot * na * ne + app_index * ne + ei]);
      }
      sim::SweepPoint p;
      p.app = spec_.apps[app_index];
      p.emt = spec_.emts[ei];
      p.voltage = spec_.voltages[vi];
      p.ber = ber_model->ber(p.voltage);
      p.snr_mean_db = a.snr.mean();
      p.snr_stddev_db = a.snr.stddev();
      p.snr_min_db = a.snr.min();
      p.snr_p10_db = a.snr_quantiles.quantile(0.10);
      p.energy_mean_j = a.energy.mean();
      const double n = static_cast<double>(a.snr.count());
      p.energy_mean.data_dynamic_j = a.energy_sum.data_dynamic_j / n;
      p.energy_mean.side_dynamic_j = a.energy_sum.side_dynamic_j / n;
      p.energy_mean.codec_j = a.energy_sum.codec_j / n;
      p.energy_mean.data_leak_j = a.energy_sum.data_leak_j / n;
      p.energy_mean.side_leak_j = a.energy_sum.side_leak_j / n;
      p.corrected_words_mean = a.corrected.mean();
      p.detected_uncorrectable_mean = a.detected.mean();
      result.points.push_back(p);
    }
  }
  return result;
}

void ResultStore::save(std::ostream& os) const {
  ULPDREAM_TRACE_SPAN("store.save");
  static const util::telemetry::Counter saves("store.saves");
  static const util::telemetry::Counter save_bytes("store.save_bytes");
  static const util::telemetry::Histogram save_ns("store.save_ns");
  const std::uint64_t t0 = util::telemetry::now_ns();
  const std::streampos pos0 = os.tellp();
  os << "ulpdream-campaign-store v1\n";
  os << "fingerprint " << spec_.fingerprint() << '\n';
  os << "max_snr";
  for (double v : max_snr_) os << ' ' << util::fmt_exact(v);
  os << '\n';
  const std::size_t pi = per_item();
  for (std::size_t slot = 0; slot < item_index_.size(); ++slot) {
    if (!item_done_[slot]) continue;
    os << "item " << item_index_[slot];
    for (std::size_t i = 0; i < pi; ++i) {
      const Sample& s = samples_[slot * pi + i];
      os << ' ' << util::fmt_exact(s.snr_db) << ' '
         << util::fmt_exact(s.energy.data_dynamic_j) << ' '
         << util::fmt_exact(s.energy.side_dynamic_j) << ' '
         << util::fmt_exact(s.energy.codec_j) << ' '
         << util::fmt_exact(s.energy.data_leak_j) << ' '
         << util::fmt_exact(s.energy.side_leak_j) << ' '
         << util::fmt_exact(s.corrected_words) << ' '
         << util::fmt_exact(s.detected_uncorrectable);
    }
    os << '\n';
  }
  os << "end\n";
  save_ns.record(util::telemetry::now_ns() - t0);
  saves.add();
  // Seekable sinks (files) report size; pipes return -1 and skip the byte
  // count rather than poison it.
  const std::streampos pos1 = os.tellp();
  if (pos0 >= 0 && pos1 >= 0) {
    save_bytes.add(static_cast<std::uint64_t>(pos1 - pos0));
  }
}

void ResultStore::save_atomic(const std::string& path) const {
  ULPDREAM_TRACE_SPAN("store.save_atomic");
  // Stage under a pid-unique name: a second process checkpointing to the
  // same path (shard misconfiguration, overlapping cron runs) overwrites
  // its *own* staging file, not the bytes another writer is about to
  // rename into place.
  const std::string tmp =
#if defined(__unix__) || defined(__APPLE__)
      path + ".tmp." + std::to_string(::getpid());
#else
      path + ".tmp";
#endif
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    save(f);
    f.flush();
    if (!f) {
      std::remove(tmp.c_str());
      throw std::runtime_error("ResultStore::save_atomic: failed to write " +
                               tmp);
    }
  }
  // Staged bytes are fsync'd before the rename publishes the name, and
  // the parent directory is fsync'd after it — rename-then-crash must
  // never expose a page-cache-only file nor lose the directory entry.
  // (Shared with the columnar writer; see util::publish_file_atomic.)
  util::publish_file_atomic(tmp, path);
}

ResultStore ResultStore::load(std::istream& is, const CampaignSpec& spec) {
  ULPDREAM_TRACE_SPAN("store.load");
  static const util::telemetry::Counter loads("store.loads");
  static const util::telemetry::Histogram load_ns("store.load_ns");
  const std::uint64_t t0 = util::telemetry::now_ns();
  auto fail = [](const std::string& what) -> void {
    throw std::invalid_argument("ResultStore::load: " + what);
  };
  ResultStore store(spec.normalized());

  std::string line;
  if (!std::getline(is, line) || line != "ulpdream-campaign-store v1") {
    fail("bad magic");
  }
  if (!std::getline(is, line) || line.rfind("fingerprint ", 0) != 0) {
    fail("missing fingerprint");
  }
  if (line.substr(12) != store.spec_.fingerprint()) {
    fail(
        "spec fingerprint mismatch — the stream was saved for a different "
        "campaign grid\n  expected: " +
        store.spec_.fingerprint() + "\n  stream:   " + line.substr(12));
  }
  if (!std::getline(is, line) || line.rfind("max_snr", 0) != 0) {
    fail("missing max_snr");
  }
  {
    std::istringstream ls(line.substr(7));
    std::string tok;
    for (double& v : store.max_snr_) {
      if (!(ls >> tok)) fail("short max_snr line");
      v = tok == "nan" ? kNan : util::parse_double_exact(tok);
    }
  }
  const std::size_t pi = store.per_item();
  while (std::getline(is, line)) {
    if (line == "end") {
      load_ns.record(util::telemetry::now_ns() - t0);
      loads.add();
      return store;
    }
    if (line.rfind("item ", 0) != 0) fail("bad line: " + line);
    std::istringstream ls(line.substr(5));
    std::size_t index = 0;
    if (!(ls >> index) || index >= store.spec_.item_count()) {
      fail("bad item index");
    }
    // Slots grow with the stream's item lines (shard saves are written in
    // ascending item order, so this append-or-insert stays cheap).
    const std::size_t slot = store.insert_slot(index);
    std::string tok;
    for (std::size_t i = 0; i < pi; ++i) {
      Sample& s = store.samples_[slot * pi + i];
      auto next = [&]() -> double {
        if (!(ls >> tok)) fail("short item line");
        return util::parse_double_exact(tok);
      };
      s.snr_db = next();
      s.energy.data_dynamic_j = next();
      s.energy.side_dynamic_j = next();
      s.energy.codec_j = next();
      s.energy.data_leak_j = next();
      s.energy.side_leak_j = next();
      s.corrected_words = next();
      s.detected_uncorrectable = next();
    }
    store.item_done_[slot] = 1;
  }
  fail("missing end marker");
  return store;  // unreachable
}

// ---------------------------------------------------------------------------
// Serialization.

namespace {

std::string fmt_voltage(double v) {
  return std::isnan(v) ? "*" : util::fmt_exact(v);
}

double parse_voltage(const std::string& cell) {
  return cell == "*" ? kNan : util::parse_double_exact(cell);
}

std::vector<std::string> row_cells(const AggregateRow& r) {
  return {r.record,
          r.app,
          r.emt,
          fmt_voltage(r.voltage),
          std::to_string(r.n),
          util::fmt_exact(r.snr_mean_db),
          util::fmt_exact(r.snr_stddev_db),
          util::fmt_exact(r.snr_min_db),
          util::fmt_exact(r.snr_max_db),
          util::fmt_exact(r.snr_p10_db),
          util::fmt_exact(r.energy_mean_j),
          util::fmt_exact(r.data_dynamic_j),
          util::fmt_exact(r.side_dynamic_j),
          util::fmt_exact(r.codec_j),
          util::fmt_exact(r.data_leak_j),
          util::fmt_exact(r.side_leak_j),
          util::fmt_exact(r.corrected_mean),
          util::fmt_exact(r.detected_mean)};
}

AggregateRow row_from_cells(const std::vector<std::string>& cells) {
  if (cells.size() != aggregate_csv_header().size()) {
    throw std::invalid_argument("read_rows_csv: wrong column count");
  }
  AggregateRow r;
  std::size_t c = 0;
  r.record = cells[c++];
  r.app = cells[c++];
  r.emt = cells[c++];
  r.voltage = parse_voltage(cells[c++]);
  r.n = static_cast<std::size_t>(std::stoull(cells[c++]));
  r.snr_mean_db = util::parse_double_exact(cells[c++]);
  r.snr_stddev_db = util::parse_double_exact(cells[c++]);
  r.snr_min_db = util::parse_double_exact(cells[c++]);
  r.snr_max_db = util::parse_double_exact(cells[c++]);
  r.snr_p10_db = util::parse_double_exact(cells[c++]);
  r.energy_mean_j = util::parse_double_exact(cells[c++]);
  r.data_dynamic_j = util::parse_double_exact(cells[c++]);
  r.side_dynamic_j = util::parse_double_exact(cells[c++]);
  r.codec_j = util::parse_double_exact(cells[c++]);
  r.data_leak_j = util::parse_double_exact(cells[c++]);
  r.side_leak_j = util::parse_double_exact(cells[c++]);
  r.corrected_mean = util::parse_double_exact(cells[c++]);
  r.detected_mean = util::parse_double_exact(cells[c++]);
  return r;
}

}  // namespace

const std::vector<std::string>& aggregate_csv_header() {
  static const std::vector<std::string> kHeader = {
      "record",        "app",
      "emt",           "voltage",
      "n",             "snr_mean_db",
      "snr_stddev_db", "snr_min_db",
      "snr_max_db",    "snr_p10_db",
      "energy_mean_j", "data_dynamic_j",
      "side_dynamic_j", "codec_j",
      "data_leak_j",   "side_leak_j",
      "corrected_mean", "detected_mean"};
  return kHeader;
}

void write_rows_csv(std::ostream& os, const std::vector<AggregateRow>& rows) {
  util::CsvWriter csv(os);
  csv.write_row(aggregate_csv_header());
  for (const AggregateRow& r : rows) csv.write_row(row_cells(r));
}

std::vector<AggregateRow> read_rows_csv(std::istream& is) {
  const auto parsed = util::parse_csv(is);
  if (parsed.empty() || parsed.front() != aggregate_csv_header()) {
    throw std::invalid_argument("read_rows_csv: missing/unknown header");
  }
  std::vector<AggregateRow> rows;
  rows.reserve(parsed.size() - 1);
  for (std::size_t i = 1; i < parsed.size(); ++i) {
    rows.push_back(row_from_cells(parsed[i]));
  }
  return rows;
}

// Minimal JSON layer, restricted to the flat document this module emits:
// {"rows": [{<string|number|null fields>}, ...]}.

namespace {

void json_escape(std::ostream& os, const std::string& s) {
  os << '"';
  for (char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default: os << ch; break;
    }
  }
  os << '"';
}

struct JsonParser {
  const std::string& text;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("read_rows_json: " + what + " at offset " +
                                std::to_string(pos));
  }
  void skip_ws() {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t' ||
                                 text[pos] == '\n' || text[pos] == '\r')) {
      ++pos;
    }
  }
  char peek() {
    skip_ws();
    if (pos >= text.size()) fail("unexpected end");
    return text[pos];
  }
  void expect(char ch) {
    if (peek() != ch) fail(std::string("expected '") + ch + "'");
    ++pos;
  }
  bool consume(char ch) {
    if (peek() != ch) return false;
    ++pos;
    return true;
  }
  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos < text.size() && text[pos] != '"') {
      char ch = text[pos++];
      if (ch == '\\') {
        if (pos >= text.size()) fail("bad escape");
        switch (text[pos++]) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          default: fail("unsupported escape");
        }
      } else {
        out.push_back(ch);
      }
    }
    if (pos >= text.size()) fail("unterminated string");
    ++pos;  // closing quote
    return out;
  }
  /// Number, null, or a quoted non-finite token. JSON has no literal for
  /// NaN or the infinities, so the writer encodes NaN as null and +/-Inf
  /// as the strings "inf"/"-inf"; decode reverses both losslessly.
  double parse_number_or_null() {
    skip_ws();
    if (text.compare(pos, 4, "null") == 0) {
      pos += 4;
      return kNan;
    }
    if (pos < text.size() && text[pos] == '"') {
      const std::string token = parse_string();
      if (token == "inf") return std::numeric_limits<double>::infinity();
      if (token == "-inf") return -std::numeric_limits<double>::infinity();
      fail("expected number, null, \"inf\" or \"-inf\", got \"" + token +
           "\"");
    }
    const std::size_t start = pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '-' || text[pos] == '+' || text[pos] == '.' ||
            text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
    }
    if (pos == start) fail("expected number");
    return util::parse_double_exact(text.substr(start, pos - start));
  }
};

}  // namespace

void write_rows_json(std::ostream& os, const std::vector<AggregateRow>& rows) {
  auto num = [&](const char* key, double v, bool last = false) {
    os << '"' << key << "\":";
    if (std::isnan(v)) {
      os << "null";
    } else if (std::isinf(v)) {
      // Bare inf is not JSON; encode as a string the reader maps back.
      os << (v > 0 ? "\"inf\"" : "\"-inf\"");
    } else {
      os << util::fmt_exact(v);
    }
    if (!last) os << ',';
  };
  os << "{\"rows\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const AggregateRow& r = rows[i];
    if (i) os << ',';
    os << "\n{";
    os << "\"record\":";
    json_escape(os, r.record);
    os << ",\"app\":";
    json_escape(os, r.app);
    os << ",\"emt\":";
    json_escape(os, r.emt);
    os << ',';
    num("voltage", r.voltage);
    os << "\"n\":" << r.n << ',';
    num("snr_mean_db", r.snr_mean_db);
    num("snr_stddev_db", r.snr_stddev_db);
    num("snr_min_db", r.snr_min_db);
    num("snr_max_db", r.snr_max_db);
    num("snr_p10_db", r.snr_p10_db);
    num("energy_mean_j", r.energy_mean_j);
    num("data_dynamic_j", r.data_dynamic_j);
    num("side_dynamic_j", r.side_dynamic_j);
    num("codec_j", r.codec_j);
    num("data_leak_j", r.data_leak_j);
    num("side_leak_j", r.side_leak_j);
    num("corrected_mean", r.corrected_mean);
    num("detected_mean", r.detected_mean, /*last=*/true);
    os << '}';
  }
  os << "\n]}\n";
}

std::vector<AggregateRow> read_rows_json(std::istream& is) {
  const std::string text(std::istreambuf_iterator<char>(is), {});
  JsonParser p{text};
  p.expect('{');
  if (p.parse_string() != "rows") p.fail("expected \"rows\" key");
  p.expect(':');
  p.expect('[');
  std::vector<AggregateRow> rows;
  if (!p.consume(']')) {
    do {
      p.expect('{');
      AggregateRow r;
      do {
        const std::string key = p.parse_string();
        p.expect(':');
        if (key == "record") {
          r.record = p.parse_string();
        } else if (key == "app") {
          r.app = p.parse_string();
        } else if (key == "emt") {
          r.emt = p.parse_string();
        } else if (key == "voltage") {
          r.voltage = p.parse_number_or_null();
        } else if (key == "n") {
          const double n = p.parse_number_or_null();
          if (std::isnan(n) || n < 0.0 || n != std::floor(n)) {
            p.fail("\"n\" must be a non-negative integer");
          }
          r.n = static_cast<std::size_t>(n);
        } else if (key == "snr_mean_db") {
          r.snr_mean_db = p.parse_number_or_null();
        } else if (key == "snr_stddev_db") {
          r.snr_stddev_db = p.parse_number_or_null();
        } else if (key == "snr_min_db") {
          r.snr_min_db = p.parse_number_or_null();
        } else if (key == "snr_max_db") {
          r.snr_max_db = p.parse_number_or_null();
        } else if (key == "snr_p10_db") {
          r.snr_p10_db = p.parse_number_or_null();
        } else if (key == "energy_mean_j") {
          r.energy_mean_j = p.parse_number_or_null();
        } else if (key == "data_dynamic_j") {
          r.data_dynamic_j = p.parse_number_or_null();
        } else if (key == "side_dynamic_j") {
          r.side_dynamic_j = p.parse_number_or_null();
        } else if (key == "codec_j") {
          r.codec_j = p.parse_number_or_null();
        } else if (key == "data_leak_j") {
          r.data_leak_j = p.parse_number_or_null();
        } else if (key == "side_leak_j") {
          r.side_leak_j = p.parse_number_or_null();
        } else if (key == "corrected_mean") {
          r.corrected_mean = p.parse_number_or_null();
        } else if (key == "detected_mean") {
          r.detected_mean = p.parse_number_or_null();
        } else {
          p.fail("unknown key: " + key);
        }
      } while (p.consume(','));
      p.expect('}');
      rows.push_back(std::move(r));
    } while (p.consume(','));
    p.expect(']');
  }
  p.expect('}');
  return rows;
}

util::Table rows_to_table(const std::vector<AggregateRow>& rows,
                          const std::string& title) {
  util::Table table(title);
  table.set_header({"record", "app", "emt", "V", "n", "snr_dB", "sd_dB",
                    "p10_dB", "energy_uJ", "corr", "det"});
  for (const AggregateRow& r : rows) {
    table.add_row({r.record, r.app, r.emt, fmt_voltage(r.voltage),
                   std::to_string(r.n), util::fmt(r.snr_mean_db, 1),
                   util::fmt(r.snr_stddev_db, 1), util::fmt(r.snr_p10_db, 1),
                   util::fmt(r.energy_mean_j * 1e6, 4),
                   util::fmt(r.corrected_mean, 1),
                   util::fmt(r.detected_mean, 2)});
  }
  return table;
}

}  // namespace ulpdream::campaign
