#include "ulpdream/campaign/scenario.hpp"

#include <stdexcept>
#include <utility>

#include "ulpdream/apps/app.hpp"
#include "ulpdream/core/factory.hpp"
#include "ulpdream/mem/ber_model.hpp"

namespace ulpdream::campaign {

Scenario& Scenario::app(const std::string& name) {
  spec_.apps.push_back(name);
  return *this;
}

Scenario& Scenario::emt(const std::string& name) {
  spec_.emts.push_back(name);
  return *this;
}

Scenario& Scenario::ber_model(const std::string& name) {
  spec_.ber_model = name;
  return *this;
}

Scenario& Scenario::voltage(double v) {
  spec_.voltages.push_back(v);
  return *this;
}

Scenario& Scenario::voltages(double vmin, double vmax, double step) {
  for (double v : CampaignSpec::voltage_range(vmin, vmax, step)) {
    spec_.voltages.push_back(v);
  }
  return *this;
}

Scenario& Scenario::record(ecg::Pathology pathology, double noise_scale,
                           std::uint64_t seed) {
  spec_.records.push_back(RecordAxis{pathology, noise_scale, seed});
  return *this;
}

Scenario& Scenario::sampling(double fs_hz, double duration_s) {
  spec_.fs_hz = fs_hz;
  spec_.duration_s = duration_s;
  return *this;
}

Scenario& Scenario::repetitions(std::size_t n) {
  spec_.repetitions = n;
  return *this;
}

Scenario& Scenario::seed(std::uint64_t s) {
  spec_.seed = s;
  return *this;
}

Scenario& Scenario::threads(unsigned n) {
  threads_ = n;
  return *this;
}

Scenario& Scenario::session(Session& session) {
  session_ = &session;
  return *this;
}

CampaignSpec Scenario::build_spec() const {
  const CampaignSpec spec = spec_.normalized();
  // Validate eagerly through descriptor() — its unknown-name error lists
  // the registered names, which is the message a facade user should see
  // at build time rather than mid-campaign.
  for (const std::string& name : spec.apps) {
    (void)apps::app_registry().descriptor(name);
  }
  for (const std::string& name : spec.emts) {
    (void)core::emt_registry().descriptor(name);
  }
  (void)mem::ber_model_registry().descriptor(spec.ber_model);
  return spec;
}

ResultStore Scenario::run() const {
  if (session_ != nullptr) return session_->submit(build_spec()).take();
  const CampaignEngine engine(energy::SystemEnergyModel(), threads_);
  return engine.run(build_spec());
}

CampaignHandle Scenario::submit(SubmitOptions options) const {
  if (session_ == nullptr) {
    throw std::logic_error(
        "Scenario::submit: no session attached — call .session(s) first "
        "(or use the blocking run())");
  }
  return session_->submit(build_spec(), std::move(options));
}

std::vector<AggregateRow> Scenario::run_rows(const GroupBy& group) const {
  return run().aggregate(group);
}

ResultStore Scenario::run_to(const std::string& path,
                             StoreFormat format) const {
  ResultStore store = run();
  save_store(store, path, format);
  return store;
}

}  // namespace ulpdream::campaign
