#include "ulpdream/campaign/spec.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "ulpdream/util/cli.hpp"
#include "ulpdream/util/rng.hpp"
#include "ulpdream/util/table.hpp"

namespace ulpdream::campaign {

namespace {

constexpr ecg::Pathology kAllPathologies[] = {
    ecg::Pathology::kNormalSinus, ecg::Pathology::kBradycardia,
    ecg::Pathology::kTachycardia, ecg::Pathology::kPvcBigeminy,
    ecg::Pathology::kAtrialFib,   ecg::Pathology::kStElevation};

/// Shared lookup for the name-list axis parsers: resolves each element of
/// the comma list against `universe` via `name_of`, throwing with the
/// valid names on unknown input.
template <typename Kind, typename Universe, typename NameFn>
std::vector<Kind> parse_kind_list(const std::string& list,
                                  const Universe& universe, NameFn name_of,
                                  const char* what) {
  std::vector<Kind> out;
  for (const std::string& name : util::split_list(list)) {
    bool found = false;
    for (Kind kind : universe) {
      if (name == name_of(kind)) {
        out.push_back(kind);
        found = true;
        break;
      }
    }
    if (!found) {
      std::string msg = std::string("unknown ") + what + ": " + name +
                        " (valid:";
      for (Kind kind : universe) msg += std::string(" ") + name_of(kind);
      msg += ", or paper/all)";
      throw std::invalid_argument(msg);
    }
  }
  if (out.empty()) {
    throw std::invalid_argument(std::string("empty ") + what + " list");
  }
  return out;
}

/// Registry-backed axis parser: validates every element of the comma list
/// against the registry (whose unknown-name error lists the valid names,
/// extended with the paper/all shorthands).
template <typename T>
std::vector<std::string> parse_name_list(const std::string& list,
                                         const util::Registry<T>& registry) {
  std::vector<std::string> out;
  for (const std::string& name : util::split_list(list)) {
    if (!registry.contains(name)) {
      throw std::invalid_argument("unknown " + registry.noun() + ": " + name +
                                  " (valid: " + registry.valid_names() +
                                  ", or paper/all)");
    }
    out.push_back(name);
  }
  if (out.empty()) {
    throw std::invalid_argument("empty " + registry.noun() + " list");
  }
  return out;
}

}  // namespace

std::string RecordAxis::label() const {
  return std::string(ecg::pathology_name(pathology)) + "_n" +
         util::fmt_exact(noise_scale) + "_s" + std::to_string(seed);
}

CampaignSpec CampaignSpec::normalized() const {
  CampaignSpec out = *this;
  if (out.apps.empty()) out.apps = apps::paper_app_names();
  if (out.emts.empty()) out.emts = core::paper_emt_names();
  if (out.voltages.empty()) {
    out.voltages = voltage_range(mem::VoltageWindow::kMin,
                                 mem::VoltageWindow::kNominal,
                                 mem::VoltageWindow::kStep);
  }
  if (out.records.empty()) out.records.push_back(RecordAxis{});
  if (out.repetitions == 0) out.repetitions = 1;
  return out;
}

std::vector<double> CampaignSpec::voltage_range(double vmin, double vmax,
                                                double step) {
  if (step <= 0.0 || vmax < vmin) {
    throw std::invalid_argument("voltage_range: need step > 0, vmax >= vmin");
  }
  const auto count =
      static_cast<std::size_t>((vmax - vmin) / step + 1e-9) + 1;
  std::vector<double> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    // Snap each grid point to 1e-6 V so the axis carries no accumulated
    // float drift (0.8, not 0.7999999999999999) — the exported exact
    // values are the grid the user asked for.
    out.push_back(std::round((vmin + static_cast<double>(i) * step) * 1e6) /
                  1e6);
  }
  return out;
}

std::size_t CampaignSpec::item_count() const {
  return records.size() * voltages.size() * repetitions;
}

std::size_t CampaignSpec::cell_count() const {
  return records.size() * apps.size() * emts.size() * voltages.size();
}

std::string CampaignSpec::fingerprint() const {
  std::ostringstream os;
  os << "apps:";
  for (const auto& a : apps) os << ' ' << a;
  os << "|emts:";
  for (const auto& e : emts) os << ' ' << e;
  os << "|voltages:";
  for (double v : voltages) os << ' ' << util::fmt_exact(v);
  os << "|records:";
  for (const auto& r : records) os << ' ' << r.label();
  os << "|reps:" << repetitions << "|seed:" << seed
     << "|ber:" << ber_model << "|fs:" << util::fmt_exact(fs_hz)
     << "|dur:" << util::fmt_exact(duration_s);
  return os.str();
}

std::string CampaignSpec::axes_fingerprint() const {
  std::ostringstream os;
  os << "apps:";
  for (const auto& a : apps) os << ' ' << a;
  os << "|emts:";
  for (const auto& e : emts) os << ' ' << e;
  os << "|voltages:";
  for (double v : voltages) os << ' ' << util::fmt_exact(v);
  os << "|reps:" << repetitions << "|seed:" << seed
     << "|ber:" << ber_model << "|fs:" << util::fmt_exact(fs_hz)
     << "|dur:" << util::fmt_exact(duration_s);
  return os.str();
}

std::string CampaignSpec::fingerprint_hash() const {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a 64 offset basis
  for (const unsigned char c : fingerprint()) {
    h ^= c;
    h *= 1099511628211ull;
  }
  char text[17];
  std::snprintf(text, sizeof(text), "%016llx",
                static_cast<unsigned long long>(h));
  return text;
}

std::vector<WorkItem> expand(const CampaignSpec& spec) {
  std::vector<WorkItem> items;
  items.reserve(spec.item_count());
  std::size_t index = 0;
  for (std::size_t ri = 0; ri < spec.records.size(); ++ri) {
    for (std::size_t vi = 0; vi < spec.voltages.size(); ++vi) {
      for (std::size_t rep = 0; rep < spec.repetitions; ++rep, ++index) {
        items.push_back(
            WorkItem{index, ri, vi, rep, util::mix64(spec.seed, index)});
      }
    }
  }
  return items;
}

std::vector<WorkItem> expand_shard(const CampaignSpec& spec,
                                   std::size_t shard_index,
                                   std::size_t shard_count) {
  if (shard_count == 0 || shard_index >= shard_count) {
    throw std::invalid_argument("expand_shard: need shard_index < shard_count");
  }
  std::vector<WorkItem> all = expand(spec);
  if (shard_count == 1) return all;
  std::vector<WorkItem> mine;
  mine.reserve(all.size() / shard_count + 1);
  for (const WorkItem& item : all) {
    if (item.index % shard_count == shard_index) mine.push_back(item);
  }
  return mine;
}

std::vector<WorkItem> expand_range(const CampaignSpec& spec,
                                   std::size_t begin, std::size_t end) {
  if (begin >= end || end > spec.item_count()) {
    throw std::invalid_argument(
        "expand_range: need begin < end <= item_count() (got [" +
        std::to_string(begin) + ", " + std::to_string(end) + ") of " +
        std::to_string(spec.item_count()) + " items)");
  }
  // Same per-item derivation as expand(), evaluated only on the slice —
  // a lease's items are bit-identical to the full expansion's.
  const std::size_t n_v = spec.voltages.size();
  const std::size_t reps = spec.repetitions;
  std::vector<WorkItem> items;
  items.reserve(end - begin);
  for (std::size_t index = begin; index < end; ++index) {
    const std::size_t cell = index / reps;
    items.push_back(WorkItem{index, cell / n_v, cell % n_v, index % reps,
                             util::mix64(spec.seed, index)});
  }
  return items;
}

std::vector<std::string> parse_app_list(const std::string& list) {
  if (list == "paper") return apps::paper_app_names();
  if (list == "all") return apps::app_names();
  return parse_name_list(list, apps::app_registry());
}

std::vector<std::string> parse_emt_list(const std::string& list) {
  if (list == "paper") return core::paper_emt_names();
  if (list == "all") return core::emt_names();
  return parse_name_list(list, core::emt_registry());
}

std::vector<ecg::Pathology> parse_pathology_list(const std::string& list) {
  if (list == "paper" || list == "all") {
    return std::vector<ecg::Pathology>(std::begin(kAllPathologies),
                                       std::end(kAllPathologies));
  }
  return parse_kind_list<ecg::Pathology>(list, kAllPathologies,
                                         ecg::pathology_name, "pathology");
}

}  // namespace ulpdream::campaign
