#include "ulpdream/campaign/engine.hpp"

#include <algorithm>
#include <thread>

#include "ulpdream/core/ecc_secded.hpp"
#include "ulpdream/mem/fault_map.hpp"
#include "ulpdream/mem/memory.hpp"
#include "ulpdream/sim/runner.hpp"
#include "ulpdream/util/parallel.hpp"
#include "ulpdream/util/rng.hpp"

namespace ulpdream::campaign {

namespace {

/// Executes one work item: one fault map drawn from the item's private
/// RNG stream at BER(V), reused across every (app, EMT) pair — the
/// paper's Sec. V fairness protocol, now per grid item.
void run_item(sim::ExperimentRunner& runner, const CampaignSpec& spec,
              const std::vector<std::unique_ptr<apps::BioApp>>& app_objs,
              const std::vector<std::unique_ptr<core::Emt>>& emt_objs,
              const std::vector<ecg::Record>& records,
              const mem::BerModel& ber_model, int map_bits,
              const WorkItem& item, std::vector<Sample>& samples) {
  const double v = spec.voltages[item.voltage_index];
  const ecg::Record& record = records[item.record_index];

  util::Xoshiro256 rng(item.seed);
  const mem::FaultMap map = mem::FaultMap::random(
      mem::MemoryGeometry::kWords16, map_bits, ber_model.ber(v), rng);

  samples.clear();
  for (const auto& app : app_objs) {
    for (const auto& emt : emt_objs) {
      const sim::RunResult r = runner.run_once(*app, record, *emt, &map, v);
      Sample s;
      s.snr_db = r.snr_db;
      s.energy = r.energy;
      s.corrected_words = static_cast<double>(r.counters.corrected_words);
      s.detected_uncorrectable =
          static_cast<double>(r.counters.detected_uncorrectable);
      samples.push_back(s);
    }
  }
}

}  // namespace

CampaignEngine::CampaignEngine(energy::SystemEnergyModel energy_model,
                               unsigned threads)
    : energy_model_(energy_model), threads_(threads) {
  if (threads_ == 0) {
    threads_ = std::max(1u, std::thread::hardware_concurrency());
  }
}

CampaignEngine CampaignEngine::from_cli(const util::Cli& cli,
                                        energy::SystemEnergyModel energy_model) {
  const std::int64_t threads =
      std::max<std::int64_t>(0, cli.get_int("threads", 0));
  return CampaignEngine(energy_model, static_cast<unsigned>(threads));
}

ResultStore CampaignEngine::run(const CampaignSpec& base_spec,
                                Shard shard) const {
  const CampaignSpec spec = base_spec.normalized();
  const std::vector<WorkItem> items =
      expand_shard(spec, shard.index, shard.count);
  const auto ber_model = mem::make_ber_model(spec.ber_model);

  // Deterministic shared inputs, materialized once: the record corpus and
  // the app objects (apps are stateless; records are read-only).
  std::vector<ecg::Record> records;
  records.reserve(spec.records.size());
  for (const RecordAxis& axis : spec.records) {
    ecg::GeneratorConfig gen;
    gen.fs_hz = spec.fs_hz;
    gen.duration_s = spec.duration_s;
    gen.pathology = axis.pathology;
    gen.seed = axis.seed;
    gen.noise.baseline_wander_mv *= axis.noise_scale;
    gen.noise.powerline_mv *= axis.noise_scale;
    gen.noise.emg_std_mv *= axis.noise_scale;
    records.push_back(ecg::generate_record(gen));
    // The generator's name is <pathology>_s<seed>, which collides for
    // axes differing only in noise level — and record names key the
    // runner's reference cache, so a collision would score one record
    // against another's golden reference. The axis label is unique.
    records.back().name = axis.label();
  }
  // Components resolve by registry name once per campaign — a user EMT or
  // app registered outside src/ runs here exactly like a built-in. EMTs
  // and apps are stateless, so the pool shares them read-only.
  std::vector<std::unique_ptr<apps::BioApp>> app_objs;
  app_objs.reserve(spec.apps.size());
  for (const std::string& name : spec.apps) {
    app_objs.push_back(apps::make_app(name));
  }
  std::vector<std::unique_ptr<core::Emt>> emt_objs;
  emt_objs.reserve(spec.emts.size());
  for (const std::string& name : spec.emts) {
    emt_objs.push_back(core::make_emt(name));
  }

  // Maps are generated at the campaign's widest payload so the same cell
  // fault locations apply to every EMT (narrower payloads simply never
  // touch the high columns) — at least ECC's 22 bits, so the built-in
  // grids keep their historical maps, and wider when a registered EMT
  // needs more columns.
  int map_bits = core::EccSecDed::kPayloadBits;
  for (const auto& emt : emt_objs) {
    map_bits = std::max(map_bits, emt->payload_bits());
  }

  // Sparse shard store: slots for exactly this shard's items, so memory
  // scales with the shard, and the concurrent record_item calls below hit
  // preallocated slices behind a read-only index.
  ResultStore store(spec, items);

  // Clean-run SNR ceilings (Fig. 4 dashed lines): serial, cheap, and the
  // same in every shard, so any shard's store can bridge to the policy
  // explorer on its own.
  {
    sim::ExperimentRunner runner(energy_model_);
    for (std::size_t ri = 0; ri < records.size(); ++ri) {
      for (std::size_t ai = 0; ai < app_objs.size(); ++ai) {
        store.set_max_snr(ri, ai, runner.max_snr_db(*app_objs[ai],
                                                    records[ri]));
      }
    }
  }

  // Work-stealing over the shard's item list: each item owns a private
  // RNG stream and a disjoint store slice.
  util::parallel_for_index(items.size(), threads_, [&] {
    return [&, runner = sim::ExperimentRunner(energy_model_),
            samples = std::vector<Sample>()](std::size_t i) mutable {
      run_item(runner, spec, app_objs, emt_objs, records, *ber_model,
               map_bits, items[i], samples);
      store.record_item(items[i], samples);
    };
  });

  return store;
}

}  // namespace ulpdream::campaign
