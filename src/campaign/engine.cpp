#include "ulpdream/campaign/engine.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "ulpdream/campaign/session.hpp"

namespace ulpdream::campaign {

CampaignEngine::CampaignEngine(energy::SystemEnergyModel energy_model,
                               unsigned threads)
    : energy_model_(energy_model), threads_(threads) {
  if (threads_ == 0) {
    threads_ = std::max(1u, std::thread::hardware_concurrency());
  }
}

CampaignEngine CampaignEngine::from_cli(const util::Cli& cli,
                                        energy::SystemEnergyModel energy_model) {
  const std::int64_t threads =
      std::max<std::int64_t>(0, cli.get_int("threads", 0));
  return CampaignEngine(energy_model, static_cast<unsigned>(threads));
}

ResultStore CampaignEngine::run(const CampaignSpec& spec, Shard shard) const {
  // Synchronous shim over the async runtime: a private single-job
  // session, submitted and waited on. The item execution and claim loop
  // live in campaign::Session / util::WorkPool now.
  Session session(energy_model_, threads_);
  SubmitOptions options;
  options.shard = shard;
  return session.submit(spec, std::move(options)).take();
}

}  // namespace ulpdream::campaign
