#pragma once
// Output-quality metrics. SNR follows the paper's Formula 1 exactly:
//   SNR = 20 * log10( sqrt(mean(x_theo^2)) / sqrt(MSE) )
// with MSE the mean squared difference between the error-free (theoretical)
// and corrupted (experimental) outputs.

#include <vector>

#include "ulpdream/fixed/sample.hpp"

namespace ulpdream::metrics {

/// SNR value used when the corrupted output is bit-identical to the
/// reference (MSE == 0). The paper plots a finite "maximum SNR" dashed
/// line; we clamp to this ceiling so averages stay finite.
inline constexpr double kSnrCeilingDb = 120.0;

/// Mean squared error between reference and experimental vectors.
/// Precondition: equal, non-zero sizes.
[[nodiscard]] double mse(const std::vector<double>& theo,
                         const std::vector<double>& exp);

/// Paper Formula 1. Returns kSnrCeilingDb when MSE is zero and
/// -kSnrCeilingDb when the reference signal is identically zero with a
/// non-zero error (degenerate but must not NaN).
[[nodiscard]] double snr_db(const std::vector<double>& theo,
                            const std::vector<double>& exp);

/// Convenience overloads on 16-bit sample buffers.
[[nodiscard]] double mse(const fixed::SampleVec& theo,
                         const fixed::SampleVec& exp);
[[nodiscard]] double snr_db(const fixed::SampleVec& theo,
                            const fixed::SampleVec& exp);

/// Root-mean-square of a vector.
[[nodiscard]] double rms(const std::vector<double>& v);

/// Percentage root-mean-square difference — the standard ECG compression
/// quality metric (used by the CS literature the paper builds on).
/// PRD = 100 * ||theo - exp|| / ||theo||.
[[nodiscard]] double prd_percent(const std::vector<double>& theo,
                                 const std::vector<double>& exp);

/// Peak SNR over the 16-bit code space (auxiliary diagnostic).
[[nodiscard]] double psnr_db(const std::vector<double>& theo,
                             const std::vector<double>& exp);

}  // namespace ulpdream::metrics
