#pragma once
// Scoring for wavelet delineation output: the application emits fiducial
// points (P, Q, R, S, T). Clinically the standard scores are sensitivity
// and positive predictive value within a tolerance window; we additionally
// flatten the annotations into a numeric vector so the paper's SNR metric
// can be applied uniformly across all five applications.

#include <cstdint>
#include <vector>

#include "ulpdream/fixed/sample.hpp"

namespace ulpdream::metrics {

enum class FiducialType : std::uint8_t { kP = 0, kQ, kR, kS, kT };

struct Fiducial {
  FiducialType type;
  std::int32_t position;   ///< sample index in the record
  fixed::Sample amplitude; ///< signal value at the fiducial point
};

using FiducialList = std::vector<Fiducial>;

struct MatchScore {
  std::size_t true_positive = 0;
  std::size_t false_negative = 0;
  std::size_t false_positive = 0;

  [[nodiscard]] double sensitivity() const noexcept {
    const auto den = true_positive + false_negative;
    return den ? static_cast<double>(true_positive) / den : 1.0;
  }
  [[nodiscard]] double ppv() const noexcept {
    const auto den = true_positive + false_positive;
    return den ? static_cast<double>(true_positive) / den : 1.0;
  }
  [[nodiscard]] double f1() const noexcept {
    const double s = sensitivity();
    const double p = ppv();
    return (s + p) > 0.0 ? 2.0 * s * p / (s + p) : 0.0;
  }
};

/// Greedy one-to-one matching of detected vs reference fiducials of the
/// same type within `tolerance` samples.
[[nodiscard]] MatchScore match_fiducials(const FiducialList& reference,
                                         const FiducialList& detected,
                                         std::int32_t tolerance);

/// Flattens annotations to a fixed-length numeric vector (position and
/// amplitude interleaved, padded/truncated to `slots` entries) so Formula 1
/// SNR applies. Order is normalized by (position, type).
[[nodiscard]] std::vector<double> flatten_fiducials(const FiducialList& list,
                                                    std::size_t slots);

}  // namespace ulpdream::metrics
