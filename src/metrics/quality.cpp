#include "ulpdream/metrics/quality.hpp"

#include <cmath>
#include <stdexcept>

namespace ulpdream::metrics {

namespace {
void check_sizes(std::size_t a, std::size_t b) {
  if (a != b || a == 0) {
    throw std::invalid_argument(
        "quality metric: vectors must be equal-sized and non-empty");
  }
}
}  // namespace

double mse(const std::vector<double>& theo, const std::vector<double>& exp) {
  check_sizes(theo.size(), exp.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < theo.size(); ++i) {
    const double d = theo[i] - exp[i];
    acc += d * d;
  }
  return acc / static_cast<double>(theo.size());
}

double snr_db(const std::vector<double>& theo,
              const std::vector<double>& exp) {
  const double err = mse(theo, exp);
  double sig = 0.0;
  for (double x : theo) sig += x * x;
  sig /= static_cast<double>(theo.size());
  if (err <= 0.0) return kSnrCeilingDb;
  if (sig <= 0.0) return -kSnrCeilingDb;
  const double snr = 20.0 * std::log10(std::sqrt(sig) / std::sqrt(err));
  if (snr > kSnrCeilingDb) return kSnrCeilingDb;
  if (snr < -kSnrCeilingDb) return -kSnrCeilingDb;
  return snr;
}

double mse(const fixed::SampleVec& theo, const fixed::SampleVec& exp) {
  return mse(fixed::to_doubles(theo), fixed::to_doubles(exp));
}

double snr_db(const fixed::SampleVec& theo, const fixed::SampleVec& exp) {
  return snr_db(fixed::to_doubles(theo), fixed::to_doubles(exp));
}

double rms(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return std::sqrt(acc / static_cast<double>(v.size()));
}

double prd_percent(const std::vector<double>& theo,
                   const std::vector<double>& exp) {
  check_sizes(theo.size(), exp.size());
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < theo.size(); ++i) {
    const double d = theo[i] - exp[i];
    num += d * d;
    den += theo[i] * theo[i];
  }
  if (den <= 0.0) return num > 0.0 ? 100.0 * 1e6 : 0.0;
  return 100.0 * std::sqrt(num / den);
}

double psnr_db(const std::vector<double>& theo,
               const std::vector<double>& exp) {
  const double err = mse(theo, exp);
  if (err <= 0.0) return kSnrCeilingDb;
  const double peak = 32767.0;
  return 20.0 * std::log10(peak / std::sqrt(err));
}

}  // namespace ulpdream::metrics
