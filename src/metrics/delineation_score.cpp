#include "ulpdream/metrics/delineation_score.hpp"

#include <algorithm>
#include <cstdlib>

namespace ulpdream::metrics {

MatchScore match_fiducials(const FiducialList& reference,
                           const FiducialList& detected,
                           std::int32_t tolerance) {
  MatchScore score;
  std::vector<bool> used(detected.size(), false);
  for (const auto& ref : reference) {
    std::size_t best = detected.size();
    std::int32_t best_dist = tolerance + 1;
    for (std::size_t i = 0; i < detected.size(); ++i) {
      if (used[i] || detected[i].type != ref.type) continue;
      const std::int32_t dist = std::abs(detected[i].position - ref.position);
      if (dist < best_dist) {
        best_dist = dist;
        best = i;
      }
    }
    if (best < detected.size()) {
      used[best] = true;
      ++score.true_positive;
    } else {
      ++score.false_negative;
    }
  }
  for (std::size_t i = 0; i < detected.size(); ++i) {
    if (!used[i]) ++score.false_positive;
  }
  return score;
}

std::vector<double> flatten_fiducials(const FiducialList& list,
                                      std::size_t slots) {
  FiducialList sorted = list;
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.position != b.position) return a.position < b.position;
    return static_cast<int>(a.type) < static_cast<int>(b.type);
  });
  std::vector<double> out(2 * slots, 0.0);
  const std::size_t n = std::min(slots, sorted.size());
  for (std::size_t i = 0; i < n; ++i) {
    out[2 * i] = static_cast<double>(sorted[i].position);
    out[2 * i + 1] = static_cast<double>(sorted[i].amplitude);
  }
  return out;
}

}  // namespace ulpdream::metrics
