#include "ulpdream/core/no_protection.hpp"

// NoProtection is fully inline; this translation unit anchors the vtable.

namespace ulpdream::core {}
