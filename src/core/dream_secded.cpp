#include "ulpdream/core/dream_secded.hpp"

#include <algorithm>

namespace ulpdream::core {

fixed::Sample DreamSecDed::decode(std::uint32_t payload, std::uint16_t safe,
                                  CodecCounters* counters) const {
  // Stage 1: Hamming correction on the full 22-bit codeword.
  CodecCounters ecc_counters;
  const fixed::Sample after_ecc = ecc_.decode(payload, 0, &ecc_counters);

  // Stage 2: DREAM mask forcing on the extracted data word. The mask pass
  // is idempotent on clean data, so applying it unconditionally is safe.
  const std::uint32_t data_payload = dream_.encode_payload(after_ecc);
  CodecCounters dream_counters;
  const fixed::Sample result =
      dream_.decode(data_payload, safe, &dream_counters);

  if (counters != nullptr) {
    ++counters->decodes;
    if (ecc_counters.corrected_words + dream_counters.corrected_words > 0) {
      ++counters->corrected_words;
    }
    // Uncorrectable only if ECC flagged a double AND the mask pass did not
    // change anything (the residual errors are below the protected run).
    if (ecc_counters.detected_uncorrectable > 0 &&
        dream_counters.corrected_words == 0) {
      ++counters->detected_uncorrectable;
    }
  }
  return result;
}

void DreamSecDed::encode_block(std::span<const fixed::Sample> in,
                               std::span<std::uint32_t> payload,
                               std::span<std::uint16_t> safe) const {
  check_block_spans(in.size(), payload.size(), safe.size());
  // Each stage runs as a block kernel over its own output array.
  if (!in.empty()) {
    ecc_.encode_block_raw(in.data(), payload.data(), in.size());
  }
  if (!safe.empty()) {
    dream_.encode_safe_block(in.data(), safe.data(), safe.size());
  }
}

void DreamSecDed::decode_block(std::span<const std::uint32_t> payload,
                               std::span<const std::uint16_t> safe,
                               std::span<fixed::Sample> out,
                               CodecCounters* counters) const {
  check_block_spans(out.size(), payload.size(), safe.size());
  // Chunked two-stage pipeline: the ECC kernel emits per-word outcomes and
  // the extracted data, the DREAM force kernel then runs over that data
  // in-place-adjacent, and the per-word flags are combined afterwards with
  // the same rules as the scalar decode() above.
  constexpr std::size_t kChunk = 1024;
  fixed::Sample after_ecc[kChunk];
  std::uint8_t ecc_outcome[kChunk];
  std::uint8_t dream_corrected[kChunk];
  constexpr auto kCorr =
      static_cast<std::uint8_t>(EccSecDed::Outcome::kCorrected);
  constexpr auto kDet =
      static_cast<std::uint8_t>(EccSecDed::Outcome::kDetectedUncorrectable);
  std::uint64_t corrected = 0;
  std::uint64_t detected = 0;
  const std::size_t n = out.size();
  for (std::size_t base = 0; base < n; base += kChunk) {
    const std::size_t len = std::min(kChunk, n - base);
    ecc_.decode_block_raw(payload.data() + base, after_ecc, ecc_outcome, len);
    dream_.force_block16(
        reinterpret_cast<const std::uint16_t*>(after_ecc),
        safe.empty() ? nullptr : safe.data() + base, out.data() + base,
        dream_corrected, len);
    if (counters != nullptr) {
      for (std::size_t j = 0; j < len; ++j) {
        corrected += (ecc_outcome[j] == kCorr || dream_corrected[j] != 0);
        detected += (ecc_outcome[j] == kDet && dream_corrected[j] == 0);
      }
    }
  }
  if (counters != nullptr) {
    counters->decodes += n;
    counters->corrected_words += corrected;
    counters->detected_uncorrectable += detected;
  }
}

}  // namespace ulpdream::core
