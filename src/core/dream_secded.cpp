#include "ulpdream/core/dream_secded.hpp"

namespace ulpdream::core {

fixed::Sample DreamSecDed::decode(std::uint32_t payload, std::uint16_t safe,
                                  CodecCounters* counters) const {
  // Stage 1: Hamming correction on the full 22-bit codeword.
  CodecCounters ecc_counters;
  const fixed::Sample after_ecc = ecc_.decode(payload, 0, &ecc_counters);

  // Stage 2: DREAM mask forcing on the extracted data word. The mask pass
  // is idempotent on clean data, so applying it unconditionally is safe.
  const std::uint32_t data_payload = dream_.encode_payload(after_ecc);
  CodecCounters dream_counters;
  const fixed::Sample result =
      dream_.decode(data_payload, safe, &dream_counters);

  if (counters != nullptr) {
    ++counters->decodes;
    if (ecc_counters.corrected_words + dream_counters.corrected_words > 0) {
      ++counters->corrected_words;
    }
    // Uncorrectable only if ECC flagged a double AND the mask pass did not
    // change anything (the residual errors are below the protected run).
    if (ecc_counters.detected_uncorrectable > 0 &&
        dream_counters.corrected_words == 0) {
      ++counters->detected_uncorrectable;
    }
  }
  return result;
}

void DreamSecDed::encode_block(std::span<const fixed::Sample> in,
                               std::span<std::uint32_t> payload,
                               std::span<std::uint16_t> safe) const {
  check_block_spans(in.size(), payload.size(), safe.size());
  // Member objects of concrete type: both codec calls dispatch statically.
  for (std::size_t i = 0; i < in.size(); ++i) {
    payload[i] = ecc_.encode_payload(in[i]);
  }
  for (std::size_t i = 0; i < safe.size(); ++i) {
    safe[i] = dream_.encode_safe(in[i]);
  }
}

void DreamSecDed::decode_block(std::span<const std::uint32_t> payload,
                               std::span<const std::uint16_t> safe,
                               std::span<fixed::Sample> out,
                               CodecCounters* counters) const {
  check_block_spans(out.size(), payload.size(), safe.size());
  // `final` devirtualizes the per-word decode; the two-stage pipeline and
  // its counter semantics live in one place.
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = decode(payload[i], safe.empty() ? 0 : safe[i], counters);
  }
}

}  // namespace ulpdream::core
