#pragma once
// Voltage-range EMT selection (paper Sec. VI-C): the system triggers
// no-protection / DREAM / ECC depending on the memory supply voltage so
// that output quality stays within the application's tolerance while
// minimizing protection overhead. Ranges name their EMT by registry name,
// so a policy can trigger user-registered techniques too.

#include <string>
#include <vector>

#include "ulpdream/core/emt.hpp"

namespace ulpdream::core {

/// One policy entry: use the EMT registered under `emt` for supply
/// voltages in [v_low, v_high).
struct PolicyRange {
  double v_low;
  double v_high;
  std::string emt;
};

class AdaptivePolicy {
 public:
  AdaptivePolicy() = default;
  explicit AdaptivePolicy(std::vector<PolicyRange> ranges);

  /// Adds a range; ranges may be appended in any order but must not
  /// overlap. Throws std::invalid_argument on overlap or v_low >= v_high.
  void add_range(double v_low, double v_high, const std::string& emt);

  /// EMT name for the given voltage. Voltages above every range fall back
  /// to "none" (nominal operation needs no protection); voltages below
  /// every range return the strongest configured EMT for safety.
  [[nodiscard]] std::string select(double v) const;

  [[nodiscard]] const std::vector<PolicyRange>& ranges() const noexcept {
    return ranges_;
  }

  /// The policy the paper derives for DWT with a -1 dB tolerance:
  /// [0.85, 0.90] none, [0.65, 0.85] DREAM, [0.55, 0.65] ECC SEC/DED.
  [[nodiscard]] static AdaptivePolicy paper_dwt_policy();

 private:
  std::vector<PolicyRange> ranges_;
};

}  // namespace ulpdream::core
