#pragma once
// MemorySystem + ProtectedBuffer: the glue between applications and the
// faulty memory. A MemorySystem owns the voltage-scaled data array (sized
// for the EMT's payload width) and, when the EMT needs one, the error-free
// side array. ProtectedBuffer exposes a SampleBuffer-conforming window of
// that memory: every set() runs the EMT encoder, every get() runs the
// fault-injection path plus the EMT decoder — exactly the data path the
// paper instruments in its extended VirtualSOC model.

#include <cstddef>
#include <memory>
#include <optional>
#include <span>

#include "ulpdream/core/emt.hpp"
#include "ulpdream/mem/memory.hpp"
#include "ulpdream/util/telemetry.hpp"

namespace ulpdream::core {

class MemorySystem {
 public:
  /// `words`: capacity of the data array in 16-bit samples (default: the
  /// paper's full 32 kB / 16-bit geometry).
  ///
  /// Lifetime: the MemorySystem keeps a non-owning reference to `emt`,
  /// which must outlive it. In particular do NOT pass a dereferenced
  /// temporary (`MemorySystem sys(*make_emt(k))` dangles) — keep the
  /// unique_ptr alive alongside the system.
  explicit MemorySystem(const Emt& emt,
                        std::size_t words = mem::MemoryGeometry::kWords16,
                        int banks = mem::MemoryGeometry::kBanks);

  [[nodiscard]] const Emt& emt() const noexcept { return *emt_; }
  [[nodiscard]] mem::FaultyMemory& data() noexcept { return data_; }
  [[nodiscard]] const mem::FaultyMemory& data() const noexcept {
    return data_;
  }
  [[nodiscard]] mem::SafeMemory* safe() noexcept {
    return safe_ ? &*safe_ : nullptr;
  }
  [[nodiscard]] const mem::SafeMemory* safe() const noexcept {
    return safe_ ? &*safe_ : nullptr;
  }

  void attach_faults(const mem::FaultMap* map) { data_.attach_faults(map); }
  void set_scrambler(std::uint64_t seed) { data_.set_scrambler(seed); }

  [[nodiscard]] CodecCounters& counters() noexcept { return counters_; }
  [[nodiscard]] const CodecCounters& counters() const noexcept {
    return counters_;
  }

  void reset_stats();

  /// Batched data path: encodes and writes `src.size()` samples starting
  /// at data-array address `addr` (and the matching side words when the
  /// EMT keeps any). Bit-identical — decoded values, CodecCounters and
  /// AccessStats — to the equivalent loop of word accesses, but pays one
  /// virtual codec dispatch and one bounds check per window chunk instead
  /// of per word.
  void store_block(std::size_t addr, std::span<const fixed::Sample> src);
  /// Reads and decodes `dst.size()` words starting at `addr`.
  void load_block(std::size_t addr, std::span<fixed::Sample> dst);

  /// Bump allocator over the data array (word granularity). Throws
  /// std::bad_alloc when the 32 kB footprint would be exceeded — apps must
  /// fit the device memory, as on the real node.
  [[nodiscard]] std::size_t allocate(std::size_t words);
  void reset_allocator() noexcept { next_free_ = 0; }
  [[nodiscard]] std::size_t words_allocated() const noexcept {
    return next_free_;
  }

 private:
  /// Per-EMT telemetry handles (names "codec.<emt>.*"), resolved once at
  /// construction so the block path pays only relaxed fetch_adds. The
  /// *_block_ns latency histograms additionally gate on
  /// telemetry::hot_timing_enabled() — clock reads are not free at
  /// ~1270 Macc/s.
  struct CodecTelemetry {
    util::telemetry::Counter encode_calls, encode_words;
    util::telemetry::Counter decode_calls, decode_words;
    util::telemetry::Histogram encode_block_ns, decode_block_ns;
  };
  static CodecTelemetry make_codec_telemetry(const std::string& emt_name);
  void store_block_impl(std::size_t addr, std::span<const fixed::Sample> src);
  void load_block_impl(std::size_t addr, std::span<fixed::Sample> dst);

  const Emt* emt_;
  mem::FaultyMemory data_;
  std::optional<mem::SafeMemory> safe_;
  CodecCounters counters_;
  CodecTelemetry telemetry_;
  std::size_t next_free_ = 0;
};

/// SampleBuffer view over a MemorySystem allocation.
class ProtectedBuffer {
 public:
  ProtectedBuffer(MemorySystem& system, std::size_t base, std::size_t length)
      : system_(&system), base_(base), length_(length) {}

  /// Allocates a fresh buffer of `length` words from the system.
  static ProtectedBuffer allocate(MemorySystem& system, std::size_t length) {
    return {system, system.allocate(length), length};
  }

  [[nodiscard]] fixed::Sample get(std::size_t i) const;
  void set(std::size_t i, fixed::Sample s);
  [[nodiscard]] std::size_t size() const noexcept { return length_; }

  /// Block window transfers (the batched data path). Naming follows the
  /// signal-buffer convention: load() moves samples *into* the device
  /// memory, store() reads a window back out. Both are loop-equivalent to
  /// set()/get() — same decoded bits, CodecCounters and AccessStats —
  /// and throw std::out_of_range when [i, i + span) exceeds the buffer.
  void load(std::size_t i, std::span<const fixed::Sample> src);
  void store(std::size_t i, std::span<fixed::Sample> dst) const;

  [[nodiscard]] std::size_t base() const noexcept { return base_; }

 private:
  MemorySystem* system_;
  std::size_t base_;
  std::size_t length_;
};

}  // namespace ulpdream::core
