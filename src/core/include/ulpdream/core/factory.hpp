#pragma once

#include <memory>
#include <vector>

#include "ulpdream/core/emt.hpp"

namespace ulpdream::core {

/// Instantiates the EMT for a kind (paper-exact parameters).
[[nodiscard]] std::unique_ptr<Emt> make_emt(EmtKind kind);

/// All kinds the paper evaluates, in presentation order (Fig. 4 a, b, c).
[[nodiscard]] const std::vector<EmtKind>& all_emt_kinds();

/// Paper kinds plus the extensions this library adds (hybrid multi-error
/// EMT for deep-voltage operation).
[[nodiscard]] const std::vector<EmtKind>& extended_emt_kinds();

}  // namespace ulpdream::core
