#pragma once
// Name-addressed EMT construction. The registry is the primary interface:
// built-ins register themselves on first access, user techniques register
// from anywhere (an example, a test, a downstream project) and are then
// selectable by name through campaign specs, sweep configs and the
// Scenario facade. The EmtKind overloads survive as thin shims over the
// registry via descriptor tags.

#include <memory>
#include <string>
#include <vector>

#include "ulpdream/core/emt.hpp"
#include "ulpdream/util/registry.hpp"

namespace ulpdream::core {

/// Capability labels (defined next to util::Descriptor so every registry
/// shares one vocabulary), re-exported here for convenience.
using util::kCapCorrectsErrors;
using util::kCapDetectsErrors;
using util::kCapExtendedTier;
using util::kCapPaper;
using util::kCapSideMemory;

/// The process-wide EMT registry. Built-ins ("none", "dream",
/// "ecc_secded", "dream_secded") are registered on first access, in
/// presentation order; register_factory() adds user techniques.
[[nodiscard]] util::Registry<Emt>& emt_registry();

/// Instantiates the EMT registered under `name`. Throws
/// std::invalid_argument listing the valid names on an unknown name.
[[nodiscard]] std::unique_ptr<Emt> make_emt(const std::string& name);

/// Registered names: the paper's evaluated set (Fig. 4 a, b, c order) and
/// every registered name (built-ins first, then user registrations).
[[nodiscard]] std::vector<std::string> paper_emt_names();
[[nodiscard]] std::vector<std::string> emt_names();

// --- legacy enum shims -----------------------------------------------------

/// Instantiates the built-in EMT tagged with `kind` (paper-exact
/// parameters). Shim over the registry.
[[nodiscard]] std::unique_ptr<Emt> make_emt(EmtKind kind);

/// All kinds the paper evaluates, in presentation order (Fig. 4 a, b, c).
[[nodiscard]] const std::vector<EmtKind>& all_emt_kinds();

/// Paper kinds plus the extensions this library adds (hybrid multi-error
/// EMT for deep-voltage operation).
[[nodiscard]] const std::vector<EmtKind>& extended_emt_kinds();

}  // namespace ulpdream::core
