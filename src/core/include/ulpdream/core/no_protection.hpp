#pragma once
// Baseline EMT: the raw 16-bit sample stored as-is in the scaled memory.

#include "ulpdream/core/emt.hpp"

namespace ulpdream::core {

class NoProtection final : public Emt {
 public:
  [[nodiscard]] EmtKind kind() const override { return EmtKind::kNone; }
  [[nodiscard]] std::string name() const override { return "none"; }
  [[nodiscard]] int payload_bits() const override {
    return fixed::kSampleBits;
  }
  [[nodiscard]] int safe_bits() const override { return 0; }

  [[nodiscard]] std::uint32_t encode_payload(fixed::Sample s) const override {
    return static_cast<std::uint16_t>(s);
  }
  [[nodiscard]] std::uint16_t encode_safe(fixed::Sample) const override {
    return 0;
  }
  [[nodiscard]] fixed::Sample decode(
      std::uint32_t payload, std::uint16_t,
      CodecCounters* counters = nullptr) const override {
    if (counters != nullptr) ++counters->decodes;
    return static_cast<fixed::Sample>(static_cast<std::uint16_t>(payload));
  }
};

}  // namespace ulpdream::core
