#pragma once
// Baseline EMT: the raw 16-bit sample stored as-is in the scaled memory.

#include "ulpdream/core/emt.hpp"

namespace ulpdream::core {

class NoProtection final : public Emt {
 public:
  [[nodiscard]] std::string name() const override { return "none"; }
  [[nodiscard]] int payload_bits() const override {
    return fixed::kSampleBits;
  }
  [[nodiscard]] int safe_bits() const override { return 0; }

  [[nodiscard]] std::uint32_t encode_payload(fixed::Sample s) const override {
    return static_cast<std::uint16_t>(s);
  }
  [[nodiscard]] std::uint16_t encode_safe(fixed::Sample) const override {
    return 0;
  }
  [[nodiscard]] fixed::Sample decode(
      std::uint32_t payload, std::uint16_t,
      CodecCounters* counters = nullptr) const override {
    if (counters != nullptr) ++counters->decodes;
    return static_cast<fixed::Sample>(static_cast<std::uint16_t>(payload));
  }

  [[nodiscard]] bool raw_data_path() const override { return true; }

  void encode_block(std::span<const fixed::Sample> in,
                    std::span<std::uint32_t> payload,
                    std::span<std::uint16_t> safe) const override {
    check_block_spans(in.size(), payload.size(), safe.size());
    for (std::size_t i = 0; i < in.size(); ++i) {
      payload[i] = static_cast<std::uint16_t>(in[i]);
    }
    for (std::size_t i = 0; i < safe.size(); ++i) safe[i] = 0;
  }
  void decode_block(std::span<const std::uint32_t> payload,
                    std::span<const std::uint16_t> safe,
                    std::span<fixed::Sample> out,
                    CodecCounters* counters = nullptr) const override {
    check_block_spans(out.size(), payload.size(), safe.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = static_cast<fixed::Sample>(static_cast<std::uint16_t>(payload[i]));
    }
    if (counters != nullptr) counters->decodes += out.size();
  }
};

}  // namespace ulpdream::core
