#pragma once
// DREAM + SEC/DED hybrid — the multi-error EMT the paper's conclusion
// calls for ("For voltages < 0.55 V, EMTs for multiple errors correction
// must be used to guarantee a reliable medical output").
//
// Layout per 16-bit word:
//  - payload: the extended-Hamming(22,16) codeword in the scaled memory
//    (like ECC SEC/DED);
//  - side: DREAM's sign + mask ID in the error-free memory (like DREAM).
//
// Decode order: Hamming first (corrects any single error, flags doubles),
// then the DREAM mask forces the sign-run MSBs of the extracted data —
// repairing exactly the multi-bit patterns that defeat SEC/DED alone, at
// the positions where they hurt most. Corrects: {any single-bit error}
// UNION {any error pattern confined to the top run+1 data bits}, and the
// union compounds: a double error with one bit inside the mask region is
// reduced to a single residual error... which the mask pass has already
// fixed if it is also in the region.
//
// Cost: 6 + 5 = 11 extra bits/word and both codecs — the price of deep
// sub-0.55 V operation.

#include "ulpdream/core/dream.hpp"
#include "ulpdream/core/ecc_secded.hpp"
#include "ulpdream/core/emt.hpp"

namespace ulpdream::core {

class DreamSecDed final : public Emt {
 public:
  DreamSecDed() = default;

  [[nodiscard]] std::string name() const override { return "dream_secded"; }
  [[nodiscard]] int payload_bits() const override {
    return EccSecDed::kPayloadBits;
  }
  [[nodiscard]] int safe_bits() const override { return dream_.safe_bits(); }

  [[nodiscard]] std::uint32_t encode_payload(fixed::Sample s) const override {
    return ecc_.encode_payload(s);
  }
  [[nodiscard]] std::uint16_t encode_safe(fixed::Sample s) const override {
    return dream_.encode_safe(s);
  }
  [[nodiscard]] fixed::Sample decode(
      std::uint32_t payload, std::uint16_t safe,
      CodecCounters* counters = nullptr) const override;

  // Hybrid runs both codecs back to back.
  [[nodiscard]] double encode_energy_pj() const override {
    return ecc_.encode_energy_pj() + dream_.encode_energy_pj();
  }
  [[nodiscard]] double decode_energy_pj() const override {
    return ecc_.decode_energy_pj() + dream_.decode_energy_pj();
  }

  void encode_block(std::span<const fixed::Sample> in,
                    std::span<std::uint32_t> payload,
                    std::span<std::uint16_t> safe) const override;
  void decode_block(std::span<const std::uint32_t> payload,
                    std::span<const std::uint16_t> safe,
                    std::span<fixed::Sample> out,
                    CodecCounters* counters = nullptr) const override;

 private:
  Dream dream_;
  EccSecDed ecc_;
};

}  // namespace ulpdream::core
