#pragma once
// Error Mitigation Technique (EMT) interface — the abstraction the paper
// compares instances of (no protection, DREAM, ECC SEC/DED).
//
// An EMT splits each 16-bit sample into:
//  - a *payload* of payload_bits() stored in the voltage-scaled (faulty)
//    data memory — the data word itself plus any check bits that are
//    scaled along with it (ECC stores its 6 check bits here);
//  - a *safe word* of safe_bits() stored in the small error-free side
//    memory kept at nominal voltage (DREAM stores sign + mask ID here).
//
// decode() reconstructs the sample from the possibly-corrupted payload and
// the intact safe word. The split mirrors the hardware cost asymmetry that
// drives the paper's energy result: payload bits pay scaled-memory energy
// per access, safe bits pay nominal-voltage energy per access.

#include <cstdint>
#include <span>
#include <string>

#include "ulpdream/fixed/sample.hpp"

namespace ulpdream::core {

/// Legacy identity of the four built-in EMTs. The library itself is
/// name-addressed (see core::emt_registry() in factory.hpp); this enum
/// survives only as an optional descriptor *tag* for stats code that
/// still groups by it (codec area tables, the codec_energy shim). EMTs
/// registered from outside src/ have no kind — they exist purely by name.
enum class EmtKind : std::uint8_t {
  kNone = 0,
  kDream,
  kEccSecDed,
  /// DREAM + SEC/DED hybrid — the multi-error extension for < 0.55 V
  /// operation the paper's conclusion calls for (not part of the paper's
  /// own evaluation; see bench_ablations / bench_deep_voltage).
  kDreamSecDed,
};

/// Registered name of a built-in kind (registry descriptor lookup).
[[nodiscard]] std::string emt_kind_name(EmtKind kind);

/// Decode-side observability: how often the technique corrected or gave up.
struct CodecCounters {
  std::uint64_t decodes = 0;
  std::uint64_t corrected_words = 0;        ///< decode changed >= 1 bit
  std::uint64_t detected_uncorrectable = 0; ///< flagged but not fixed (ECC DED)

  void reset() { *this = CodecCounters{}; }
};

class Emt {
 public:
  virtual ~Emt() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Bits stored per word in the voltage-scaled data memory (>= 16).
  [[nodiscard]] virtual int payload_bits() const = 0;
  /// Bits stored per word in the error-free side memory (>= 0).
  [[nodiscard]] virtual int safe_bits() const = 0;
  /// Paper Formula 2 / Sec. V: total extra bits per 16-bit data word.
  [[nodiscard]] int extra_bits() const {
    return (payload_bits() - fixed::kSampleBits) + safe_bits();
  }

  [[nodiscard]] virtual std::uint32_t encode_payload(
      fixed::Sample s) const = 0;
  [[nodiscard]] virtual std::uint16_t encode_safe(fixed::Sample s) const = 0;

  /// Reconstructs the sample; updates `counters` when provided.
  [[nodiscard]] virtual fixed::Sample decode(
      std::uint32_t payload, std::uint16_t safe,
      CodecCounters* counters = nullptr) const = 0;

  /// True when this technique's data path is the identity on the raw
  /// 16-bit sample: payload_bits() == 16 with encode_payload() a plain
  /// zero-extension, safe_bits() == 0, and decode() returning the payload
  /// unchanged with the decode count as its only counter effect. The
  /// block data path (core::MemorySystem) then moves samples directly
  /// between the caller's span and the data memory, skipping the 32-bit
  /// staging copies; stored bits, stats and counters stay bit-identical
  /// to the staged path. Only the baseline "none" technique qualifies.
  [[nodiscard]] virtual bool raw_data_path() const { return false; }

  /// Per-operation codec energy in pJ (logic domain, voltage-invariant:
  /// the codec must stay at a safe supply to function). Part of the EMT
  /// interface so user-registered techniques carry their own energy model
  /// instead of being keyed off an enum the registry does not know.
  [[nodiscard]] virtual double encode_energy_pj() const { return 0.0; }
  [[nodiscard]] virtual double decode_energy_pj() const { return 0.0; }

  /// Block codec entry points — one virtual dispatch per *window* instead
  /// of per word. The base implementations loop over the scalar virtuals;
  /// the concrete EMTs override them with devirtualized inner loops.
  /// Results, including every CodecCounters update, are bit-identical to
  /// the equivalent scalar loop.
  ///
  /// `safe` may be empty when the technique stores no side bits
  /// (safe_bits() == 0); otherwise it must match `in`/`out` in length.
  /// Throws std::invalid_argument on a span-length mismatch.
  virtual void encode_block(std::span<const fixed::Sample> in,
                            std::span<std::uint32_t> payload,
                            std::span<std::uint16_t> safe) const;
  virtual void decode_block(std::span<const std::uint32_t> payload,
                            std::span<const std::uint16_t> safe,
                            std::span<fixed::Sample> out,
                            CodecCounters* counters = nullptr) const;

 protected:
  /// Shared argument validation for encode_block/decode_block overrides.
  void check_block_spans(std::size_t in_size, std::size_t payload_size,
                         std::size_t safe_size) const;
};

}  // namespace ulpdream::core
