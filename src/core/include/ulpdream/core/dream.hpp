#pragma once
// DREAM — Dynamic eRror compEnsation And Masking (the paper's Sec. IV).
//
// Observation: ADC samples of biosignals rarely use the full 16-bit range;
// each word starts with a run of identical MSBs (the sign extension), and
// errors on exactly those MSB positions are the ones that destroy output
// quality (Fig. 2). DREAM therefore:
//
//  WRITE: stores the sample unmodified in the faulty memory, and in
//  parallel computes the length of the run of sign-valued MSBs; the run
//  length (mask ID, log2(16) = 4 bits) concatenated with the sign bit is
//  stored in a small always-on side memory (1 + 4 = 5 extra bits/word,
//  paper Formula 2).
//
//  READ: the mask ID is expanded to a bit mask via a lookup table; an AND
//  (sign 0) or OR (sign 1) against the corrupted payload forces the masked
//  MSBs back to the sign value, a 2:1 mux selected by the sign picks the
//  result, and one additional bit — the first bit after the run, which by
//  definition of a maximal run is always the inverted sign — is restored
//  by the "set one bit" block. DREAM hence corrects *any* number of errors
//  within the top run+1 bit positions, which is exactly where they hurt.
//
// The mask-ID width is configurable (default 4 bits = exact run lengths)
// to support the D1 ablation in DESIGN.md: narrower IDs quantize the run
// length downward, shrinking both the protected region and the side-memory
// cost. The inverted-bit trick is only sound when the recorded run length
// is exact, so it is applied only at full resolution.

#include "ulpdream/core/emt.hpp"

namespace ulpdream::core {

class Dream final : public Emt {
 public:
  /// `mask_id_bits` in [1, 4]; 4 reproduces the paper exactly.
  explicit Dream(int mask_id_bits = 4);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] int payload_bits() const override {
    return fixed::kSampleBits;
  }
  [[nodiscard]] int safe_bits() const override { return 1 + mask_id_bits_; }

  [[nodiscard]] std::uint32_t encode_payload(fixed::Sample s) const override;
  [[nodiscard]] std::uint16_t encode_safe(fixed::Sample s) const override;
  [[nodiscard]] fixed::Sample decode(
      std::uint32_t payload, std::uint16_t safe,
      CodecCounters* counters = nullptr) const override;

  void encode_block(std::span<const fixed::Sample> in,
                    std::span<std::uint32_t> payload,
                    std::span<std::uint16_t> safe) const override;
  void decode_block(std::span<const std::uint32_t> payload,
                    std::span<const std::uint16_t> safe,
                    std::span<fixed::Sample> out,
                    CodecCounters* counters = nullptr) const override;

  // Calibrated against the paper's relative numbers: with these values and
  // the applications' (read-heavy) access mixes, the average protection
  // overhead across the 0.5-0.9 V sweep lands at ~34% (DREAM) and ~55%
  // (ECC SEC/DED) — Sec. VI-B. See EccSecDed for the ECC side of the
  // calibration.
  [[nodiscard]] double encode_energy_pj() const override { return 0.35; }
  [[nodiscard]] double decode_energy_pj() const override { return 0.55; }

  /// The run length the decoder will assume for a given sample (after
  /// mask-ID quantization). Exposed for property tests.
  [[nodiscard]] int recorded_run(fixed::Sample s) const;

  [[nodiscard]] int mask_id_bits() const noexcept { return mask_id_bits_; }

  // Raw block kernels behind encode_block()/decode_block(), dispatched on
  // util::simd::active_tier() with the scalar word loop as tail and
  // fallback. Exposed so the DREAM+ECC hybrid can pipeline them and the
  // differential tests can drive every tier directly.

  /// safe[i] = encode_safe(in[i]) for i < n.
  void encode_safe_block(const fixed::Sample* in, std::uint16_t* safe,
                         std::size_t n) const;
  /// The Fig. 3 mask-force datapath over a block: out[i] is the decoded
  /// sample, corrected[i] is 1 where forcing changed the stored bits.
  /// `safe == nullptr` reads as all-zero side words (the empty-span
  /// decode_block case). `payload` words are truncated to 16 bits.
  void force_block(const std::uint32_t* payload, const std::uint16_t* safe,
                   fixed::Sample* out, std::uint8_t* corrected,
                   std::size_t n) const;
  /// force_block() for data already narrowed to 16 bits.
  void force_block16(const std::uint16_t* data, const std::uint16_t* safe,
                     fixed::Sample* out, std::uint8_t* corrected,
                     std::size_t n) const;

 private:
  /// Scalar mask-forcing core shared by decode() and decode_block().
  [[nodiscard]] std::uint16_t decode_word(std::uint16_t data,
                                          std::uint16_t safe,
                                          bool& corrected) const;

  int mask_id_bits_;
  int run_step_;  ///< run-length quantization step = 16 / 2^mask_id_bits
};

}  // namespace ulpdream::core
