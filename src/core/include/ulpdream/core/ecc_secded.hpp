#pragma once
// ECC SEC/DED baseline: extended Hamming(22,16) — Single Error Correction,
// Double Error Detection (the paper's reference EMT, its ref [14]).
// 5 Hamming parity bits + 1 overall parity = 6 extra bits per 16-bit word
// (paper Sec. V: 2 + log2(16) = 6). Unlike DREAM, *all* 22 bits live in
// the voltage-scaled memory: the check bits are exposed to the same stuck-
// at faults as the data — which is why SEC/DED collapses below 0.55 V when
// multi-bit faults per word become likely (it detects but cannot correct).

#include <array>

#include "ulpdream/core/emt.hpp"
#include "ulpdream/util/simd.hpp"

namespace ulpdream::core {

class EccSecDed final : public Emt {
 public:
  static constexpr int kPayloadBits = 22;
  static constexpr int kHammingBits = 21;  ///< positions 1..21 (1-based)

  EccSecDed();

  [[nodiscard]] std::string name() const override { return "ecc_secded"; }
  [[nodiscard]] int payload_bits() const override { return kPayloadBits; }
  [[nodiscard]] int safe_bits() const override { return 0; }

  [[nodiscard]] std::uint32_t encode_payload(fixed::Sample s) const override;
  [[nodiscard]] std::uint16_t encode_safe(fixed::Sample) const override {
    return 0;
  }
  [[nodiscard]] fixed::Sample decode(
      std::uint32_t payload, std::uint16_t safe,
      CodecCounters* counters = nullptr) const override;

  void encode_block(std::span<const fixed::Sample> in,
                    std::span<std::uint32_t> payload,
                    std::span<std::uint16_t> safe) const override;
  void decode_block(std::span<const std::uint32_t> payload,
                    std::span<const std::uint16_t> safe,
                    std::span<fixed::Sample> out,
                    CodecCounters* counters = nullptr) const override;

  // The ECC/DREAM decoder energy ratio (2.2x) mirrors the synthesized
  // area ratio; the encoder ratio (1.7x vs 1.28x area) reflects the wider
  // 22-bit codeword switching per write. See Dream for the calibration
  // rationale.
  [[nodiscard]] double encode_energy_pj() const override { return 0.55; }
  [[nodiscard]] double decode_energy_pj() const override { return 1.30; }

  /// Result classification of the last decodable scenario, for tests: the
  /// decode path itself only reports via CodecCounters.
  enum class Outcome { kClean, kCorrected, kDetectedUncorrectable };

  /// Decode with explicit outcome (test/diagnostic entry point).
  [[nodiscard]] fixed::Sample decode_ex(std::uint32_t payload,
                                        Outcome& outcome) const;

  // Raw block kernels behind encode_block()/decode_block(), dispatched on
  // util::simd::active_tier() with the scalar word loop as tail and
  // fallback (the SSE2 tier is the linearized scalar path — byte-table
  // gathers need AVX2). Exposed for the DREAM+ECC hybrid's pipeline and
  // the differential tests.
  void encode_block_raw(const fixed::Sample* in, std::uint32_t* payload,
                        std::size_t n) const;
  /// outcome[i] = static_cast<uint8_t>(Outcome) per word.
  void decode_block_raw(const std::uint32_t* payload, fixed::Sample* out,
                        std::uint8_t* outcome, std::size_t n) const;

 private:
  [[nodiscard]] std::uint32_t compute_checked(std::uint32_t with_data) const;
  [[nodiscard]] fixed::Sample extract_data(std::uint32_t codeword) const;

#if ULPDREAM_SIMD_X86
  std::size_t encode_avx2(const fixed::Sample* in, std::uint32_t* payload,
                          std::size_t n) const;
  std::size_t decode_avx2(const std::uint32_t* payload, fixed::Sample* out,
                          std::uint8_t* outcome, std::size_t n) const;
#endif

  /// Syndrome resolution, precomputed once per codec: what to do for each
  /// (5-bit syndrome, overall parity) pair.
  struct SyndromeEntry {
    std::uint32_t flip = 0;  ///< payload bit to XOR before extraction
    std::uint8_t outcome = 0;  ///< static_cast<Outcome>
  };

  /// Hamming position (1-based, in 1..21) of data bit i.
  std::array<int, 16> data_pos_{};
  /// Payload mask of parity-check plane k: bits whose (1-based) position
  /// has bit k set. syndrome bit k = parity of (payload & plane).
  std::array<std::uint32_t, 5> syndrome_plane_{};
  /// 64-entry syndrome -> action LUT, indexed syndrome | overall << 5.
  std::array<SyndromeEntry, 64> syndrome_lut_{};
  /// Data extraction split into two table lookups over payload bits
  /// [0, 11) and [11, 21).
  std::array<std::uint16_t, 1u << 11> extract_lo_{};
  std::array<std::uint16_t, 1u << 10> extract_hi_{};
  /// Data placement (inverse of extraction) per input byte.
  std::array<std::uint32_t, 256> place_lo_{};
  std::array<std::uint32_t, 256> place_hi_{};

  // Linearized per-byte tables. The code is XOR-linear — every parity bit,
  // the overall bit included, is an XOR of data bits — so a codeword is
  // the XOR of per-byte codewords and a syndrome the XOR of per-byte
  // syndromes. Encoding becomes two lookups + XOR and the syndrome three,
  // replacing the five popcount planes of the constructor's reference
  // path.
  std::array<std::uint32_t, 256> enc_lo_{};  ///< codeword of data byte 0
  std::array<std::uint32_t, 256> enc_hi_{};  ///< codeword of data byte 1
  /// (syndrome | overall << 5) contribution of payload bits [0,8), [8,16)
  /// and [16,22).
  std::array<std::uint8_t, 256> synd_b0_{};
  std::array<std::uint8_t, 256> synd_b1_{};
  std::array<std::uint8_t, 64> synd_b2_{};

#if ULPDREAM_SIMD_X86
  // u32-widened table copies for the gathered AVX2 kernels: vpgatherdd
  // reads 32 bits per lane, so u8/u16 tables cannot be gathered directly
  // without overreading near their end.
  std::array<std::uint32_t, 256> synd32_b0_{};
  std::array<std::uint32_t, 256> synd32_b1_{};
  std::array<std::uint32_t, 64> synd32_b2_{};
  std::array<std::uint32_t, 64> action32_{};  ///< flip | outcome << 24
  std::array<std::uint32_t, 1u << 11> extract32_lo_{};
  std::array<std::uint32_t, 1u << 10> extract32_hi_{};
#endif
};

}  // namespace ulpdream::core
