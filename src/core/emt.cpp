#include "ulpdream/core/emt.hpp"

#include <stdexcept>

namespace ulpdream::core {

void Emt::check_block_spans(std::size_t in_size, std::size_t payload_size,
                            std::size_t safe_size) const {
  if (payload_size != in_size) {
    throw std::invalid_argument("Emt block codec: payload span length");
  }
  if (safe_size != in_size && !(safe_size == 0 && safe_bits() == 0)) {
    throw std::invalid_argument("Emt block codec: safe span length");
  }
}

void Emt::encode_block(std::span<const fixed::Sample> in,
                       std::span<std::uint32_t> payload,
                       std::span<std::uint16_t> safe) const {
  check_block_spans(in.size(), payload.size(), safe.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    payload[i] = encode_payload(in[i]);
  }
  if (!safe.empty()) {
    for (std::size_t i = 0; i < in.size(); ++i) {
      safe[i] = encode_safe(in[i]);
    }
  }
}

void Emt::decode_block(std::span<const std::uint32_t> payload,
                       std::span<const std::uint16_t> safe,
                       std::span<fixed::Sample> out,
                       CodecCounters* counters) const {
  check_block_spans(out.size(), payload.size(), safe.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = decode(payload[i], safe.empty() ? 0 : safe[i], counters);
  }
}

}  // namespace ulpdream::core
