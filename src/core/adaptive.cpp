#include "ulpdream/core/adaptive.hpp"

#include <algorithm>
#include <stdexcept>

namespace ulpdream::core {

AdaptivePolicy::AdaptivePolicy(std::vector<PolicyRange> ranges) {
  for (auto& r : ranges) add_range(r.v_low, r.v_high, r.emt);
}

void AdaptivePolicy::add_range(double v_low, double v_high,
                               const std::string& emt) {
  if (!(v_low < v_high)) {
    throw std::invalid_argument("AdaptivePolicy: v_low must be < v_high");
  }
  for (const auto& r : ranges_) {
    if (v_low < r.v_high && r.v_low < v_high) {
      throw std::invalid_argument("AdaptivePolicy: overlapping ranges");
    }
  }
  ranges_.push_back({v_low, v_high, emt});
  std::sort(ranges_.begin(), ranges_.end(),
            [](const PolicyRange& a, const PolicyRange& b) {
              return a.v_low < b.v_low;
            });
}

std::string AdaptivePolicy::select(double v) const {
  if (ranges_.empty()) return "none";
  for (const auto& r : ranges_) {
    if (v >= r.v_low && v < r.v_high) return r.emt;
  }
  if (v >= ranges_.back().v_high) return "none";
  // Below all ranges: strongest protection (last resort). The paper notes
  // voltages < 0.55 V require multi-error EMTs; we return the lowest
  // range's technique as the best available.
  return ranges_.front().emt;
}

AdaptivePolicy AdaptivePolicy::paper_dwt_policy() {
  AdaptivePolicy policy;
  policy.add_range(0.85, 0.90 + 1e-9, "none");
  policy.add_range(0.65, 0.85, "dream");
  policy.add_range(0.55, 0.65, "ecc_secded");
  return policy;
}

}  // namespace ulpdream::core
