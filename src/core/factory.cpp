#include "ulpdream/core/factory.hpp"

#include <stdexcept>
#include <vector>

#include "ulpdream/core/dream.hpp"
#include "ulpdream/core/dream_secded.hpp"
#include "ulpdream/core/ecc_secded.hpp"
#include "ulpdream/core/no_protection.hpp"

namespace ulpdream::core {

util::Registry<Emt>& emt_registry() {
  static util::Registry<Emt> registry("EMT");
  static const bool built_ins = [] {
    registry.register_factory(
        "none", [] { return std::make_unique<NoProtection>(); },
        {"No protection",
         "raw 16-bit samples in the scaled memory (paper baseline)",
         {kCapPaper},
         static_cast<int>(EmtKind::kNone)});
    registry.register_factory(
        "dream", [] { return std::make_unique<Dream>(); },
        {"DREAM",
         "sign + run-length mask in error-free side memory, forces MSBs",
         {kCapPaper, kCapCorrectsErrors, kCapSideMemory},
         static_cast<int>(EmtKind::kDream)});
    registry.register_factory(
        "ecc_secded", [] { return std::make_unique<EccSecDed>(); },
        {"ECC SEC/DED",
         "extended Hamming(22,16): corrects 1, detects 2 errors per word",
         {kCapPaper, kCapCorrectsErrors, kCapDetectsErrors},
         static_cast<int>(EmtKind::kEccSecDed)});
    registry.register_factory(
        "dream_secded", [] { return std::make_unique<DreamSecDed>(); },
        {"DREAM + SEC/DED",
         "hybrid multi-error EMT for < 0.55 V operation (extension)",
         {kCapExtendedTier, kCapCorrectsErrors, kCapDetectsErrors,
          kCapSideMemory},
         static_cast<int>(EmtKind::kDreamSecDed)});
    return true;
  }();
  (void)built_ins;
  return registry;
}

std::unique_ptr<Emt> make_emt(const std::string& name) {
  return emt_registry().create(name);
}

std::vector<std::string> paper_emt_names() {
  return emt_registry().names_with(kCapPaper);
}

std::vector<std::string> emt_names() { return emt_registry().names(); }

std::string emt_kind_name(EmtKind kind) {
  return emt_registry().name_by_tag(static_cast<int>(kind));
}

std::unique_ptr<Emt> make_emt(EmtKind kind) {
  return make_emt(emt_kind_name(kind));
}

const std::vector<EmtKind>& all_emt_kinds() {
  static const std::vector<EmtKind> kinds =
      util::tags_as(emt_registry().tags_with(kCapPaper),
                    EmtKind::kDreamSecDed);
  return kinds;
}

const std::vector<EmtKind>& extended_emt_kinds() {
  // Every *tagged* entry, i.e. the built-ins; names registered later have
  // no enum identity by design.
  static const std::vector<EmtKind> kinds =
      util::tags_as(emt_registry().tags(), EmtKind::kDreamSecDed);
  return kinds;
}

}  // namespace ulpdream::core
