#include "ulpdream/core/factory.hpp"

#include <stdexcept>
#include <vector>

#include "ulpdream/core/dream.hpp"
#include "ulpdream/core/dream_secded.hpp"
#include "ulpdream/core/ecc_secded.hpp"
#include "ulpdream/core/no_protection.hpp"

namespace ulpdream::core {

const char* emt_kind_name(EmtKind kind) {
  switch (kind) {
    case EmtKind::kNone:
      return "none";
    case EmtKind::kDream:
      return "dream";
    case EmtKind::kEccSecDed:
      return "ecc_secded";
    case EmtKind::kDreamSecDed:
      return "dream_secded";
  }
  return "unknown";
}

std::unique_ptr<Emt> make_emt(EmtKind kind) {
  switch (kind) {
    case EmtKind::kNone:
      return std::make_unique<NoProtection>();
    case EmtKind::kDream:
      return std::make_unique<Dream>();
    case EmtKind::kEccSecDed:
      return std::make_unique<EccSecDed>();
    case EmtKind::kDreamSecDed:
      return std::make_unique<DreamSecDed>();
  }
  throw std::invalid_argument("make_emt: unknown kind");
}

const std::vector<EmtKind>& all_emt_kinds() {
  static const std::vector<EmtKind> kinds = {
      EmtKind::kNone, EmtKind::kDream, EmtKind::kEccSecDed};
  return kinds;
}

const std::vector<EmtKind>& extended_emt_kinds() {
  static const std::vector<EmtKind> kinds = {
      EmtKind::kNone, EmtKind::kDream, EmtKind::kEccSecDed,
      EmtKind::kDreamSecDed};
  return kinds;
}

}  // namespace ulpdream::core
