#include "ulpdream/core/protected_buffer.hpp"

#include <algorithm>
#include <new>
#include <stdexcept>

namespace ulpdream::core {

MemorySystem::CodecTelemetry MemorySystem::make_codec_telemetry(
    const std::string& emt_name) {
  namespace tel = util::telemetry;
  const std::string prefix = "codec." + emt_name + ".";
  return {tel::Counter(prefix + "encode_calls"),
          tel::Counter(prefix + "encode_words"),
          tel::Counter(prefix + "decode_calls"),
          tel::Counter(prefix + "decode_words"),
          tel::Histogram(prefix + "encode_block_ns"),
          tel::Histogram(prefix + "decode_block_ns")};
}

MemorySystem::MemorySystem(const Emt& emt, std::size_t words, int banks)
    : emt_(&emt),
      data_(words, emt.payload_bits(), banks),
      telemetry_(make_codec_telemetry(emt.name())) {
  if (emt.safe_bits() > 0) {
    safe_.emplace(words, emt.safe_bits());
  }
}

void MemorySystem::reset_stats() {
  data_.reset_stats();
  if (safe_) safe_->reset_stats();
  counters_.reset();
}

std::size_t MemorySystem::allocate(std::size_t words) {
  if (next_free_ + words > data_.words()) {
    throw std::bad_alloc();  // exceeds the device's 32 kB data memory
  }
  const std::size_t base = next_free_;
  next_free_ += words;
  return base;
}

namespace {
/// Window chunk for the block data path: big enough to amortize the
/// per-chunk virtual dispatch and the block accessors' O(banks) stat
/// bookkeeping, small enough to stay in L1 and on the stack.
constexpr std::size_t kBlockChunk = 1024;
}  // namespace

void MemorySystem::store_block(std::size_t addr,
                               std::span<const fixed::Sample> src) {
  telemetry_.encode_calls.add();
  telemetry_.encode_words.add(src.size());
  const bool timed = util::telemetry::hot_timing_enabled();
  const std::uint64_t t0 = timed ? util::telemetry::now_ns() : 0;
  store_block_impl(addr, src);
  if (timed) {
    telemetry_.encode_block_ns.record(util::telemetry::now_ns() - t0);
  }
}

void MemorySystem::store_block_impl(std::size_t addr,
                                    std::span<const fixed::Sample> src) {
  if (emt_->raw_data_path()) {
    // Samples are the payload verbatim: scatter straight from the source
    // span (int16_t reinterpreted as its unsigned twin — the same
    // zero-extension encode_payload performs).
    data_.write_block(
        addr, std::span<const std::uint16_t>(
                  reinterpret_cast<const std::uint16_t*>(src.data()),
                  src.size()));
    return;
  }
  std::uint32_t payload[kBlockChunk];
  std::uint16_t safe_words[kBlockChunk];
  mem::SafeMemory* const safe = safe_ ? &*safe_ : nullptr;
  while (!src.empty()) {
    const std::size_t n = std::min<std::size_t>(kBlockChunk, src.size());
    emt_->encode_block(
        src.first(n), std::span<std::uint32_t>(payload, n),
        safe != nullptr ? std::span<std::uint16_t>(safe_words, n)
                        : std::span<std::uint16_t>());
    data_.write_block(addr, std::span<const std::uint32_t>(payload, n));
    if (safe != nullptr) {
      safe->write_block(addr, std::span<const std::uint16_t>(safe_words, n));
    }
    addr += n;
    src = src.subspan(n);
  }
}

void MemorySystem::load_block(std::size_t addr,
                              std::span<fixed::Sample> dst) {
  telemetry_.decode_calls.add();
  telemetry_.decode_words.add(dst.size());
  const bool timed = util::telemetry::hot_timing_enabled();
  const std::uint64_t t0 = timed ? util::telemetry::now_ns() : 0;
  load_block_impl(addr, dst);
  if (timed) {
    telemetry_.decode_block_ns.record(util::telemetry::now_ns() - t0);
  }
}

void MemorySystem::load_block_impl(std::size_t addr,
                                   std::span<fixed::Sample> dst) {
  if (emt_->raw_data_path()) {
    data_.read_block(addr,
                     std::span<std::uint16_t>(
                         reinterpret_cast<std::uint16_t*>(dst.data()),
                         dst.size()));
    counters_.decodes += dst.size();
    return;
  }
  std::uint32_t payload[kBlockChunk];
  std::uint16_t safe_words[kBlockChunk];
  const mem::SafeMemory* const safe = safe_ ? &*safe_ : nullptr;
  while (!dst.empty()) {
    const std::size_t n = std::min<std::size_t>(kBlockChunk, dst.size());
    data_.read_block(addr, std::span<std::uint32_t>(payload, n));
    if (safe != nullptr) {
      safe->read_block(addr, std::span<std::uint16_t>(safe_words, n));
    }
    emt_->decode_block(
        std::span<const std::uint32_t>(payload, n),
        safe != nullptr ? std::span<const std::uint16_t>(safe_words, n)
                        : std::span<const std::uint16_t>(),
        dst.first(n), &counters_);
    addr += n;
    dst = dst.subspan(n);
  }
}

fixed::Sample ProtectedBuffer::get(std::size_t i) const {
  if (i >= length_) throw std::out_of_range("ProtectedBuffer::get");
  const std::size_t addr = base_ + i;
  const std::uint32_t payload = system_->data().read(addr);
  std::uint16_t safe_word = 0;
  if (auto* safe = system_->safe()) safe_word = safe->read(addr);
  return system_->emt().decode(payload, safe_word, &system_->counters());
}

void ProtectedBuffer::set(std::size_t i, fixed::Sample s) {
  if (i >= length_) throw std::out_of_range("ProtectedBuffer::set");
  const std::size_t addr = base_ + i;
  system_->data().write(addr, system_->emt().encode_payload(s));
  if (auto* safe = system_->safe()) {
    safe->write(addr, system_->emt().encode_safe(s));
  }
}

void ProtectedBuffer::load(std::size_t i, std::span<const fixed::Sample> src) {
  if (src.size() > length_ || i > length_ - src.size()) {
    throw std::out_of_range("ProtectedBuffer::load");
  }
  system_->store_block(base_ + i, src);
}

void ProtectedBuffer::store(std::size_t i, std::span<fixed::Sample> dst) const {
  if (dst.size() > length_ || i > length_ - dst.size()) {
    throw std::out_of_range("ProtectedBuffer::store");
  }
  system_->load_block(base_ + i, dst);
}

}  // namespace ulpdream::core
