#include "ulpdream/core/protected_buffer.hpp"

#include <new>
#include <stdexcept>

namespace ulpdream::core {

MemorySystem::MemorySystem(const Emt& emt, std::size_t words, int banks)
    : emt_(&emt), data_(words, emt.payload_bits(), banks) {
  if (emt.safe_bits() > 0) {
    safe_.emplace(words, emt.safe_bits());
  }
}

void MemorySystem::reset_stats() {
  data_.reset_stats();
  if (safe_) safe_->reset_stats();
  counters_.reset();
}

std::size_t MemorySystem::allocate(std::size_t words) {
  if (next_free_ + words > data_.words()) {
    throw std::bad_alloc();  // exceeds the device's 32 kB data memory
  }
  const std::size_t base = next_free_;
  next_free_ += words;
  return base;
}

fixed::Sample ProtectedBuffer::get(std::size_t i) const {
  if (i >= length_) throw std::out_of_range("ProtectedBuffer::get");
  const std::size_t addr = base_ + i;
  const std::uint32_t payload = system_->data().read(addr);
  std::uint16_t safe_word = 0;
  if (auto* safe = system_->safe()) safe_word = safe->read(addr);
  return system_->emt().decode(payload, safe_word, &system_->counters());
}

void ProtectedBuffer::set(std::size_t i, fixed::Sample s) {
  if (i >= length_) throw std::out_of_range("ProtectedBuffer::set");
  const std::size_t addr = base_ + i;
  system_->data().write(addr, system_->emt().encode_payload(s));
  if (auto* safe = system_->safe()) {
    safe->write(addr, system_->emt().encode_safe(s));
  }
}

}  // namespace ulpdream::core
