#include "ulpdream/core/ecc_secded.hpp"

#include <bit>

namespace ulpdream::core {

namespace {
// Payload layout: bit (p-1) of the 22-bit payload holds Hamming position p
// for p in 1..21; payload bit 21 holds the overall parity.
constexpr int kOverallBit = 21;

constexpr bool is_power_of_two(int v) { return v > 0 && (v & (v - 1)) == 0; }
}  // namespace

EccSecDed::EccSecDed() {
  int next = 0;
  for (int pos = 1; pos <= kHammingBits; ++pos) {
    if (is_power_of_two(pos)) continue;  // parity positions 1,2,4,8,16
    data_pos_[static_cast<std::size_t>(next++)] = pos;
  }
}

std::uint32_t EccSecDed::compute_checked(std::uint32_t with_data) const {
  std::uint32_t code = with_data;
  // Each parity bit at position 2^k covers all positions with bit k set.
  for (int k = 0; k < 5; ++k) {
    const int ppos = 1 << k;
    int parity = 0;
    for (int pos = 1; pos <= kHammingBits; ++pos) {
      if (pos == ppos) continue;
      if ((pos & ppos) == 0) continue;
      parity ^= static_cast<int>((code >> (pos - 1)) & 1u);
    }
    if (parity != 0) code |= 1u << (ppos - 1);
  }
  // Overall parity across the 21 Hamming bits (even total parity over 22).
  const int overall = std::popcount(code & ((1u << kHammingBits) - 1u)) & 1;
  if (overall != 0) code |= 1u << kOverallBit;
  return code;
}

std::uint32_t EccSecDed::encode_payload(fixed::Sample s) const {
  const auto u = static_cast<std::uint16_t>(s);
  std::uint32_t code = 0;
  for (int i = 0; i < 16; ++i) {
    if ((u >> i) & 1u) {
      code |= 1u << (data_pos_[static_cast<std::size_t>(i)] - 1);
    }
  }
  return compute_checked(code);
}

fixed::Sample EccSecDed::extract_data(std::uint32_t codeword) const {
  std::uint16_t data = 0;
  for (int i = 0; i < 16; ++i) {
    if ((codeword >> (data_pos_[static_cast<std::size_t>(i)] - 1)) & 1u) {
      data |= static_cast<std::uint16_t>(1u << i);
    }
  }
  return static_cast<fixed::Sample>(data);
}

fixed::Sample EccSecDed::decode_ex(std::uint32_t payload,
                                   Outcome& outcome) const {
  // Syndrome: XOR of the (1-based) positions whose stored bit is 1.
  int syndrome = 0;
  for (int pos = 1; pos <= kHammingBits; ++pos) {
    if ((payload >> (pos - 1)) & 1u) syndrome ^= pos;
  }
  const int overall =
      std::popcount(payload & ((1u << (kOverallBit + 1)) - 1u)) & 1;

  if (syndrome == 0 && overall == 0) {
    outcome = Outcome::kClean;
    return extract_data(payload);
  }
  if (overall != 0) {
    // Odd number of errors — assume one and correct it. syndrome == 0
    // means the flipped bit was the overall parity bit itself.
    std::uint32_t fixed_code = payload;
    if (syndrome >= 1 && syndrome <= kHammingBits) {
      fixed_code ^= 1u << (syndrome - 1);
    } else if (syndrome != 0) {
      // Syndrome points outside the codeword: >= 3 errors aliased; report
      // detection and return the best-effort data.
      outcome = Outcome::kDetectedUncorrectable;
      return extract_data(payload);
    }
    outcome = Outcome::kCorrected;
    return extract_data(fixed_code);
  }
  // syndrome != 0, overall parity even: double error — detectable only.
  outcome = Outcome::kDetectedUncorrectable;
  return extract_data(payload);
}

fixed::Sample EccSecDed::decode(std::uint32_t payload, std::uint16_t /*safe*/,
                                CodecCounters* counters) const {
  Outcome outcome{};
  const fixed::Sample s = decode_ex(payload, outcome);
  if (counters != nullptr) {
    ++counters->decodes;
    if (outcome == Outcome::kCorrected) ++counters->corrected_words;
    if (outcome == Outcome::kDetectedUncorrectable) {
      ++counters->detected_uncorrectable;
    }
  }
  return s;
}

void EccSecDed::encode_block(std::span<const fixed::Sample> in,
                             std::span<std::uint32_t> payload,
                             std::span<std::uint16_t> safe) const {
  check_block_spans(in.size(), payload.size(), safe.size());
  // `final` lets the compiler resolve encode_payload statically here.
  for (std::size_t i = 0; i < in.size(); ++i) {
    payload[i] = encode_payload(in[i]);
  }
  for (std::size_t i = 0; i < safe.size(); ++i) safe[i] = 0;
}

void EccSecDed::decode_block(std::span<const std::uint32_t> payload,
                             std::span<const std::uint16_t> safe,
                             std::span<fixed::Sample> out,
                             CodecCounters* counters) const {
  check_block_spans(out.size(), payload.size(), safe.size());
  std::uint64_t corrected = 0;
  std::uint64_t detected = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    Outcome outcome{};
    out[i] = decode_ex(payload[i], outcome);
    corrected += outcome == Outcome::kCorrected ? 1 : 0;
    detected += outcome == Outcome::kDetectedUncorrectable ? 1 : 0;
  }
  if (counters != nullptr) {
    counters->decodes += out.size();
    counters->corrected_words += corrected;
    counters->detected_uncorrectable += detected;
  }
}

}  // namespace ulpdream::core
