#include "ulpdream/core/ecc_secded.hpp"

#include <bit>

namespace ulpdream::core {

namespace {
// Payload layout: bit (p-1) of the 22-bit payload holds Hamming position p
// for p in 1..21; payload bit 21 holds the overall parity.
constexpr int kOverallBit = 21;

constexpr bool is_power_of_two(int v) { return v > 0 && (v & (v - 1)) == 0; }
}  // namespace

EccSecDed::EccSecDed() {
  int next = 0;
  for (int pos = 1; pos <= kHammingBits; ++pos) {
    if (is_power_of_two(pos)) continue;  // parity positions 1,2,4,8,16
    data_pos_[static_cast<std::size_t>(next++)] = pos;
  }

  // Parity-check planes: plane k covers every (1-based) position whose
  // bit k is set. The syndrome's bit k is the parity of payload & plane —
  // the XOR-of-positions form of the reference decoder, decomposed per
  // bit plane so decode costs 5 popcounts instead of a 21-iteration loop.
  for (int k = 0; k < 5; ++k) {
    std::uint32_t plane = 0;
    for (int pos = 1; pos <= kHammingBits; ++pos) {
      if ((pos >> k) & 1) plane |= 1u << (pos - 1);
    }
    syndrome_plane_[static_cast<std::size_t>(k)] = plane;
  }

  // Syndrome -> action LUT (64 entries: 5-bit syndrome x overall parity),
  // the case analysis of extended-Hamming decoding resolved once per
  // codec instead of per word.
  for (int overall = 0; overall < 2; ++overall) {
    for (int syndrome = 0; syndrome < 32; ++syndrome) {
      SyndromeEntry e;
      if (syndrome == 0 && overall == 0) {
        e.outcome = static_cast<std::uint8_t>(Outcome::kClean);
      } else if (overall != 0) {
        // Odd number of errors — assume one and correct it. syndrome == 0
        // means the flipped bit was the overall parity bit itself; a
        // syndrome pointing outside the codeword is >= 3 aliased errors.
        if (syndrome >= 1 && syndrome <= kHammingBits) {
          e.flip = 1u << (syndrome - 1);
          e.outcome = static_cast<std::uint8_t>(Outcome::kCorrected);
        } else if (syndrome == 0) {
          e.outcome = static_cast<std::uint8_t>(Outcome::kCorrected);
        } else {
          e.outcome =
              static_cast<std::uint8_t>(Outcome::kDetectedUncorrectable);
        }
      } else {
        // syndrome != 0, overall parity even: double error — detect only.
        e.outcome =
            static_cast<std::uint8_t>(Outcome::kDetectedUncorrectable);
      }
      syndrome_lut_[static_cast<std::size_t>(syndrome | (overall << 5))] = e;
    }
  }

  // Data extraction as two table lookups over payload bits [0, 11) and
  // [11, 21), and the inverse placement per data byte for encoding.
  for (std::uint32_t v = 0; v < extract_lo_.size(); ++v) {
    std::uint16_t data = 0;
    for (int i = 0; i < 16; ++i) {
      const int cb = data_pos_[static_cast<std::size_t>(i)] - 1;
      if (cb < 11 && ((v >> cb) & 1u)) {
        data |= static_cast<std::uint16_t>(1u << i);
      }
    }
    extract_lo_[v] = data;
  }
  for (std::uint32_t v = 0; v < extract_hi_.size(); ++v) {
    std::uint16_t data = 0;
    for (int i = 0; i < 16; ++i) {
      const int cb = data_pos_[static_cast<std::size_t>(i)] - 1;
      if (cb >= 11 && ((v >> (cb - 11)) & 1u)) {
        data |= static_cast<std::uint16_t>(1u << i);
      }
    }
    extract_hi_[v] = data;
  }
  for (std::uint32_t b = 0; b < 256; ++b) {
    std::uint32_t lo = 0;
    std::uint32_t hi = 0;
    for (int i = 0; i < 8; ++i) {
      if ((b >> i) & 1u) {
        lo |= 1u << (data_pos_[static_cast<std::size_t>(i)] - 1);
        hi |= 1u << (data_pos_[static_cast<std::size_t>(i + 8)] - 1);
      }
    }
    place_lo_[b] = lo;
    place_hi_[b] = hi;
  }
}

std::uint32_t EccSecDed::compute_checked(std::uint32_t with_data) const {
  std::uint32_t code = with_data;
  // Each parity bit at position 2^k covers its plane minus itself.
  // Previously-set parity positions are powers of two and never fall in a
  // later plane, so accumulating into `code` matches the reference order.
  for (int k = 0; k < 5; ++k) {
    const std::uint32_t ppos_bit = 1u << ((1 << k) - 1);
    if (std::popcount(code & (syndrome_plane_[static_cast<std::size_t>(k)] &
                              ~ppos_bit)) &
        1) {
      code |= ppos_bit;
    }
  }
  // Overall parity across the 21 Hamming bits (even total parity over 22).
  const int overall = std::popcount(code & ((1u << kHammingBits) - 1u)) & 1;
  if (overall != 0) code |= 1u << kOverallBit;
  return code;
}

std::uint32_t EccSecDed::encode_payload(fixed::Sample s) const {
  const auto u = static_cast<std::uint16_t>(s);
  return compute_checked(place_lo_[u & 0xFFu] | place_hi_[u >> 8]);
}

fixed::Sample EccSecDed::extract_data(std::uint32_t codeword) const {
  return static_cast<fixed::Sample>(static_cast<std::uint16_t>(
      extract_lo_[codeword & 0x7FFu] | extract_hi_[(codeword >> 11) & 0x3FFu]));
}

fixed::Sample EccSecDed::decode_ex(std::uint32_t payload,
                                   Outcome& outcome) const {
  int syndrome = 0;
  for (int k = 0; k < 5; ++k) {
    syndrome |=
        (std::popcount(payload & syndrome_plane_[static_cast<std::size_t>(k)]) &
         1)
        << k;
  }
  const int overall =
      std::popcount(payload & ((1u << (kOverallBit + 1)) - 1u)) & 1;
  const SyndromeEntry& e =
      syndrome_lut_[static_cast<std::size_t>(syndrome | (overall << 5))];
  outcome = static_cast<Outcome>(e.outcome);
  return extract_data(payload ^ e.flip);
}

fixed::Sample EccSecDed::decode(std::uint32_t payload, std::uint16_t /*safe*/,
                                CodecCounters* counters) const {
  Outcome outcome{};
  const fixed::Sample s = decode_ex(payload, outcome);
  if (counters != nullptr) {
    ++counters->decodes;
    if (outcome == Outcome::kCorrected) ++counters->corrected_words;
    if (outcome == Outcome::kDetectedUncorrectable) {
      ++counters->detected_uncorrectable;
    }
  }
  return s;
}

void EccSecDed::encode_block(std::span<const fixed::Sample> in,
                             std::span<std::uint32_t> payload,
                             std::span<std::uint16_t> safe) const {
  check_block_spans(in.size(), payload.size(), safe.size());
  // `final` lets the compiler resolve encode_payload statically here.
  for (std::size_t i = 0; i < in.size(); ++i) {
    payload[i] = encode_payload(in[i]);
  }
  for (std::size_t i = 0; i < safe.size(); ++i) safe[i] = 0;
}

void EccSecDed::decode_block(std::span<const std::uint32_t> payload,
                             std::span<const std::uint16_t> safe,
                             std::span<fixed::Sample> out,
                             CodecCounters* counters) const {
  check_block_spans(out.size(), payload.size(), safe.size());
  std::uint64_t corrected = 0;
  std::uint64_t detected = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    Outcome outcome{};
    out[i] = decode_ex(payload[i], outcome);
    corrected += outcome == Outcome::kCorrected ? 1 : 0;
    detected += outcome == Outcome::kDetectedUncorrectable ? 1 : 0;
  }
  if (counters != nullptr) {
    counters->decodes += out.size();
    counters->corrected_words += corrected;
    counters->detected_uncorrectable += detected;
  }
}

}  // namespace ulpdream::core
