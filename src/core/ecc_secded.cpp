#include "ulpdream/core/ecc_secded.hpp"

#include <algorithm>
#include <bit>

#if ULPDREAM_SIMD_X86
#include <immintrin.h>
#endif

namespace ulpdream::core {

namespace {
// Payload layout: bit (p-1) of the 22-bit payload holds Hamming position p
// for p in 1..21; payload bit 21 holds the overall parity.
constexpr int kOverallBit = 21;

constexpr bool is_power_of_two(int v) { return v > 0 && (v & (v - 1)) == 0; }
}  // namespace

EccSecDed::EccSecDed() {
  int next = 0;
  for (int pos = 1; pos <= kHammingBits; ++pos) {
    if (is_power_of_two(pos)) continue;  // parity positions 1,2,4,8,16
    data_pos_[static_cast<std::size_t>(next++)] = pos;
  }

  // Parity-check planes: plane k covers every (1-based) position whose
  // bit k is set. The syndrome's bit k is the parity of payload & plane —
  // the XOR-of-positions form of the reference decoder, decomposed per
  // bit plane so decode costs 5 popcounts instead of a 21-iteration loop.
  for (int k = 0; k < 5; ++k) {
    std::uint32_t plane = 0;
    for (int pos = 1; pos <= kHammingBits; ++pos) {
      if ((pos >> k) & 1) plane |= 1u << (pos - 1);
    }
    syndrome_plane_[static_cast<std::size_t>(k)] = plane;
  }

  // Syndrome -> action LUT (64 entries: 5-bit syndrome x overall parity),
  // the case analysis of extended-Hamming decoding resolved once per
  // codec instead of per word.
  for (int overall = 0; overall < 2; ++overall) {
    for (int syndrome = 0; syndrome < 32; ++syndrome) {
      SyndromeEntry e;
      if (syndrome == 0 && overall == 0) {
        e.outcome = static_cast<std::uint8_t>(Outcome::kClean);
      } else if (overall != 0) {
        // Odd number of errors — assume one and correct it. syndrome == 0
        // means the flipped bit was the overall parity bit itself; a
        // syndrome pointing outside the codeword is >= 3 aliased errors.
        if (syndrome >= 1 && syndrome <= kHammingBits) {
          e.flip = 1u << (syndrome - 1);
          e.outcome = static_cast<std::uint8_t>(Outcome::kCorrected);
        } else if (syndrome == 0) {
          e.outcome = static_cast<std::uint8_t>(Outcome::kCorrected);
        } else {
          e.outcome =
              static_cast<std::uint8_t>(Outcome::kDetectedUncorrectable);
        }
      } else {
        // syndrome != 0, overall parity even: double error — detect only.
        e.outcome =
            static_cast<std::uint8_t>(Outcome::kDetectedUncorrectable);
      }
      syndrome_lut_[static_cast<std::size_t>(syndrome | (overall << 5))] = e;
    }
  }

  // Data extraction as two table lookups over payload bits [0, 11) and
  // [11, 21), and the inverse placement per data byte for encoding.
  for (std::uint32_t v = 0; v < extract_lo_.size(); ++v) {
    std::uint16_t data = 0;
    for (int i = 0; i < 16; ++i) {
      const int cb = data_pos_[static_cast<std::size_t>(i)] - 1;
      if (cb < 11 && ((v >> cb) & 1u)) {
        data |= static_cast<std::uint16_t>(1u << i);
      }
    }
    extract_lo_[v] = data;
  }
  for (std::uint32_t v = 0; v < extract_hi_.size(); ++v) {
    std::uint16_t data = 0;
    for (int i = 0; i < 16; ++i) {
      const int cb = data_pos_[static_cast<std::size_t>(i)] - 1;
      if (cb >= 11 && ((v >> (cb - 11)) & 1u)) {
        data |= static_cast<std::uint16_t>(1u << i);
      }
    }
    extract_hi_[v] = data;
  }
  for (std::uint32_t b = 0; b < 256; ++b) {
    std::uint32_t lo = 0;
    std::uint32_t hi = 0;
    for (int i = 0; i < 8; ++i) {
      if ((b >> i) & 1u) {
        lo |= 1u << (data_pos_[static_cast<std::size_t>(i)] - 1);
        hi |= 1u << (data_pos_[static_cast<std::size_t>(i + 8)] - 1);
      }
    }
    place_lo_[b] = lo;
    place_hi_[b] = hi;
  }

  // Linearized per-byte tables (see the header): per-byte codewords via
  // the reference encoder, per-byte syndrome contributions via the
  // reference popcount planes. decode_ex()/encode_payload() then reduce to
  // XORs of these.
  for (std::uint32_t b = 0; b < 256; ++b) {
    enc_lo_[b] = compute_checked(place_lo_[b]);
    enc_hi_[b] = compute_checked(place_hi_[b]);
  }
  const auto syndrome6_of = [this](std::uint32_t p) {
    int syndrome = 0;
    for (int k = 0; k < 5; ++k) {
      syndrome |=
          (std::popcount(p & syndrome_plane_[static_cast<std::size_t>(k)]) & 1)
          << k;
    }
    const int overall =
        std::popcount(p & ((1u << (kOverallBit + 1)) - 1u)) & 1;
    return static_cast<std::uint8_t>(syndrome | (overall << 5));
  };
  for (std::uint32_t b = 0; b < 256; ++b) {
    synd_b0_[b] = syndrome6_of(b);
    synd_b1_[b] = syndrome6_of(b << 8);
  }
  for (std::uint32_t b = 0; b < 64; ++b) synd_b2_[b] = syndrome6_of(b << 16);

#if ULPDREAM_SIMD_X86
  for (std::size_t v = 0; v < 256; ++v) {
    synd32_b0_[v] = synd_b0_[v];
    synd32_b1_[v] = synd_b1_[v];
  }
  for (std::size_t v = 0; v < 64; ++v) {
    synd32_b2_[v] = synd_b2_[v];
    action32_[v] = syndrome_lut_[v].flip |
                   (static_cast<std::uint32_t>(syndrome_lut_[v].outcome) << 24);
  }
  for (std::size_t v = 0; v < extract32_lo_.size(); ++v) {
    extract32_lo_[v] = extract_lo_[v];
  }
  for (std::size_t v = 0; v < extract32_hi_.size(); ++v) {
    extract32_hi_[v] = extract_hi_[v];
  }
#endif
}

std::uint32_t EccSecDed::compute_checked(std::uint32_t with_data) const {
  std::uint32_t code = with_data;
  // Each parity bit at position 2^k covers its plane minus itself.
  // Previously-set parity positions are powers of two and never fall in a
  // later plane, so accumulating into `code` matches the reference order.
  for (int k = 0; k < 5; ++k) {
    const std::uint32_t ppos_bit = 1u << ((1 << k) - 1);
    if (std::popcount(code & (syndrome_plane_[static_cast<std::size_t>(k)] &
                              ~ppos_bit)) &
        1) {
      code |= ppos_bit;
    }
  }
  // Overall parity across the 21 Hamming bits (even total parity over 22).
  const int overall = std::popcount(code & ((1u << kHammingBits) - 1u)) & 1;
  if (overall != 0) code |= 1u << kOverallBit;
  return code;
}

std::uint32_t EccSecDed::encode_payload(fixed::Sample s) const {
  const auto u = static_cast<std::uint16_t>(s);
  return enc_lo_[u & 0xFFu] ^ enc_hi_[u >> 8];
}

fixed::Sample EccSecDed::extract_data(std::uint32_t codeword) const {
  return static_cast<fixed::Sample>(static_cast<std::uint16_t>(
      extract_lo_[codeword & 0x7FFu] | extract_hi_[(codeword >> 11) & 0x3FFu]));
}

fixed::Sample EccSecDed::decode_ex(std::uint32_t payload,
                                   Outcome& outcome) const {
  // Bits above the 22-bit codeword never influenced the planes or the
  // extraction; masking first lets the byte split cover the whole word.
  const std::uint32_t p = payload & ((1u << (kOverallBit + 1)) - 1u);
  const auto s6 = static_cast<std::size_t>(
      synd_b0_[p & 0xFFu] ^ synd_b1_[(p >> 8) & 0xFFu] ^ synd_b2_[p >> 16]);
  const SyndromeEntry& e = syndrome_lut_[s6];
  outcome = static_cast<Outcome>(e.outcome);
  return extract_data(p ^ e.flip);
}

fixed::Sample EccSecDed::decode(std::uint32_t payload, std::uint16_t /*safe*/,
                                CodecCounters* counters) const {
  Outcome outcome{};
  const fixed::Sample s = decode_ex(payload, outcome);
  if (counters != nullptr) {
    ++counters->decodes;
    if (outcome == Outcome::kCorrected) ++counters->corrected_words;
    if (outcome == Outcome::kDetectedUncorrectable) {
      ++counters->detected_uncorrectable;
    }
  }
  return s;
}

#if ULPDREAM_SIMD_X86

__attribute__((target("avx2"))) std::size_t EccSecDed::encode_avx2(
    const fixed::Sample* in, std::uint32_t* payload, std::size_t n) const {
  const auto* enc_lo = reinterpret_cast<const int*>(enc_lo_.data());
  const auto* enc_hi = reinterpret_cast<const int*>(enc_hi_.data());
  const __m256i m8 = _mm256_set1_epi32(0xFF);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i u = _mm256_cvtepu16_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i)));
    const __m256i code = _mm256_xor_si256(
        _mm256_i32gather_epi32(enc_lo, _mm256_and_si256(u, m8), 4),
        _mm256_i32gather_epi32(enc_hi, _mm256_srli_epi32(u, 8), 4));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(payload + i), code);
  }
  return i;
}

__attribute__((target("avx2"))) std::size_t EccSecDed::decode_avx2(
    const std::uint32_t* payload, fixed::Sample* out, std::uint8_t* outcome,
    std::size_t n) const {
  const auto* b0 = reinterpret_cast<const int*>(synd32_b0_.data());
  const auto* b1 = reinterpret_cast<const int*>(synd32_b1_.data());
  const auto* b2 = reinterpret_cast<const int*>(synd32_b2_.data());
  const auto* action = reinterpret_cast<const int*>(action32_.data());
  const auto* xlo = reinterpret_cast<const int*>(extract32_lo_.data());
  const auto* xhi = reinterpret_cast<const int*>(extract32_hi_.data());
  const __m256i m22 = _mm256_set1_epi32((1 << (kOverallBit + 1)) - 1);
  const __m256i m8 = _mm256_set1_epi32(0xFF);
  const __m256i zero = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i p = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(payload + i)),
        m22);
    __m256i s6 = _mm256_xor_si256(
        _mm256_i32gather_epi32(b0, _mm256_and_si256(p, m8), 4),
        _mm256_i32gather_epi32(
            b1, _mm256_and_si256(_mm256_srli_epi32(p, 8), m8), 4));
    s6 = _mm256_xor_si256(
        s6, _mm256_i32gather_epi32(b2, _mm256_srli_epi32(p, 16), 4));
    const __m256i act = _mm256_i32gather_epi32(action, s6, 4);
    const __m256i flip = _mm256_and_si256(act, _mm256_set1_epi32(0x00FFFFFF));
    const __m256i oc = _mm256_srli_epi32(act, 24);
    const __m256i c = _mm256_xor_si256(p, flip);
    const __m256i data = _mm256_xor_si256(
        _mm256_i32gather_epi32(
            xlo, _mm256_and_si256(c, _mm256_set1_epi32(0x7FF)), 4),
        _mm256_i32gather_epi32(
            xhi,
            _mm256_and_si256(_mm256_srli_epi32(c, 11),
                             _mm256_set1_epi32(0x3FF)),
            4));
    // u32 lanes (values <= 0xFFFF resp. <= 2) packed down to u16 / u8.
    const __m256i d16 = _mm256_permute4x64_epi64(
        _mm256_packus_epi32(data, zero), _MM_SHUFFLE(3, 1, 2, 0));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm256_castsi256_si128(d16));
    const __m256i o16 = _mm256_permute4x64_epi64(
        _mm256_packus_epi32(oc, zero), _MM_SHUFFLE(3, 1, 2, 0));
    _mm_storel_epi64(reinterpret_cast<__m128i*>(outcome + i),
                     _mm_packus_epi16(_mm256_castsi256_si128(o16),
                                      _mm_setzero_si128()));
  }
  return i;
}

#endif  // ULPDREAM_SIMD_X86

void EccSecDed::encode_block_raw(const fixed::Sample* in,
                                 std::uint32_t* payload, std::size_t n) const {
  std::size_t i = 0;
#if ULPDREAM_SIMD_X86
  if (util::simd::active_tier() >= util::simd::Tier::kAvx2) {
    i = encode_avx2(in, payload, n);
  }
#endif
  for (; i < n; ++i) payload[i] = encode_payload(in[i]);
}

void EccSecDed::decode_block_raw(const std::uint32_t* payload,
                                 fixed::Sample* out, std::uint8_t* outcome,
                                 std::size_t n) const {
  std::size_t i = 0;
#if ULPDREAM_SIMD_X86
  if (util::simd::active_tier() >= util::simd::Tier::kAvx2) {
    i = decode_avx2(payload, out, outcome, n);
  }
#endif
  for (; i < n; ++i) {
    Outcome oc{};
    out[i] = decode_ex(payload[i], oc);
    outcome[i] = static_cast<std::uint8_t>(oc);
  }
}

void EccSecDed::encode_block(std::span<const fixed::Sample> in,
                             std::span<std::uint32_t> payload,
                             std::span<std::uint16_t> safe) const {
  check_block_spans(in.size(), payload.size(), safe.size());
  if (!in.empty()) encode_block_raw(in.data(), payload.data(), in.size());
  for (std::size_t i = 0; i < safe.size(); ++i) safe[i] = 0;
}

void EccSecDed::decode_block(std::span<const std::uint32_t> payload,
                             std::span<const std::uint16_t> safe,
                             std::span<fixed::Sample> out,
                             CodecCounters* counters) const {
  check_block_spans(out.size(), payload.size(), safe.size());
  constexpr std::size_t kChunk = 1024;
  std::uint8_t outcome[kChunk];
  std::uint64_t corrected = 0;
  std::uint64_t detected = 0;
  const std::size_t n = out.size();
  for (std::size_t base = 0; base < n; base += kChunk) {
    const std::size_t len = std::min(kChunk, n - base);
    decode_block_raw(payload.data() + base, out.data() + base, outcome, len);
    constexpr auto kCorr = static_cast<std::uint8_t>(Outcome::kCorrected);
    constexpr auto kDet =
        static_cast<std::uint8_t>(Outcome::kDetectedUncorrectable);
    for (std::size_t j = 0; j < len; ++j) {
      corrected += outcome[j] == kCorr ? 1 : 0;
      detected += outcome[j] == kDet ? 1 : 0;
    }
  }
  if (counters != nullptr) {
    counters->decodes += n;
    counters->corrected_words += corrected;
    counters->detected_uncorrectable += detected;
  }
}

}  // namespace ulpdream::core
