#include "ulpdream/core/dream.hpp"

#include <stdexcept>

namespace ulpdream::core {

Dream::Dream(int mask_id_bits) : mask_id_bits_(mask_id_bits) {
  if (mask_id_bits < 1 || mask_id_bits > 4) {
    throw std::invalid_argument("Dream: mask_id_bits must be in [1, 4]");
  }
  run_step_ = 16 >> mask_id_bits;  // 4 bits -> step 1 (exact runs)
}

std::string Dream::name() const {
  if (mask_id_bits_ == 4) return "dream";
  return "dream" + std::to_string(mask_id_bits_);
}

std::uint32_t Dream::encode_payload(fixed::Sample s) const {
  return static_cast<std::uint16_t>(s);  // data stored unmodified
}

int Dream::recorded_run(fixed::Sample s) const {
  const int run = fixed::sign_run_length(s);  // in [1, 16]
  // Quantize downward so the decoder never forces a bit that was not part
  // of the actual constant-MSB run.
  const int id = (run - 1) / run_step_;          // fits mask_id_bits_
  return id * run_step_ + 1;
}

std::uint16_t Dream::encode_safe(fixed::Sample s) const {
  const auto u = static_cast<std::uint16_t>(s);
  const std::uint16_t sign = (u >> 15) & 1u;
  const int run = fixed::sign_run_length(s);
  const auto id = static_cast<std::uint16_t>((run - 1) / run_step_);
  return static_cast<std::uint16_t>((id << 1) | sign);
}

std::uint16_t Dream::decode_word(std::uint16_t data, std::uint16_t safe,
                                 bool& corrected) const {
  const bool sign = (safe & 1u) != 0;
  const int id = static_cast<int>(safe >> 1);
  const int run = id * run_step_ + 1;  // recorded run length, in [1, 16]

  // Expand mask ID to a full mask covering the top `run` bits (the
  // hardware lookup table of Fig. 3).
  const std::uint16_t mask =
      static_cast<std::uint16_t>(~((1u << (16 - run)) - 1u) & 0xFFFFu);

  // AND/OR + 2:1 mux selected by the sign bit.
  std::uint16_t fixed_word =
      sign ? static_cast<std::uint16_t>(data | mask)
           : static_cast<std::uint16_t>(data & static_cast<std::uint16_t>(~mask));

  // "Set one bit" block: with exact run lengths, the bit right below the
  // run is by construction the inverted sign — restore it unconditionally.
  if (run_step_ == 1 && run < 16) {
    const std::uint16_t below = static_cast<std::uint16_t>(1u << (15 - run));
    fixed_word = sign ? static_cast<std::uint16_t>(fixed_word & ~below)
                      : static_cast<std::uint16_t>(fixed_word | below);
  }

  corrected = fixed_word != data;
  return fixed_word;
}

fixed::Sample Dream::decode(std::uint32_t payload, std::uint16_t safe,
                            CodecCounters* counters) const {
  bool corrected = false;
  const std::uint16_t fixed_word =
      decode_word(static_cast<std::uint16_t>(payload), safe, corrected);
  if (counters != nullptr) {
    ++counters->decodes;
    if (corrected) ++counters->corrected_words;
  }
  return static_cast<fixed::Sample>(fixed_word);
}

void Dream::encode_block(std::span<const fixed::Sample> in,
                         std::span<std::uint32_t> payload,
                         std::span<std::uint16_t> safe) const {
  check_block_spans(in.size(), payload.size(), safe.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    payload[i] = static_cast<std::uint16_t>(in[i]);
  }
  // `final` lets the compiler resolve encode_safe statically here.
  for (std::size_t i = 0; i < safe.size(); ++i) safe[i] = encode_safe(in[i]);
}

void Dream::decode_block(std::span<const std::uint32_t> payload,
                         std::span<const std::uint16_t> safe,
                         std::span<fixed::Sample> out,
                         CodecCounters* counters) const {
  check_block_spans(out.size(), payload.size(), safe.size());
  std::uint64_t corrected_words = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    bool corrected = false;
    out[i] = static_cast<fixed::Sample>(
        decode_word(static_cast<std::uint16_t>(payload[i]),
                    safe.empty() ? 0 : safe[i], corrected));
    corrected_words += corrected ? 1 : 0;
  }
  if (counters != nullptr) {
    counters->decodes += out.size();
    counters->corrected_words += corrected_words;
  }
}

}  // namespace ulpdream::core
