#include "ulpdream/core/dream.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "ulpdream/util/simd.hpp"

#if ULPDREAM_SIMD_X86
#include <immintrin.h>
#endif

namespace ulpdream::core {

Dream::Dream(int mask_id_bits) : mask_id_bits_(mask_id_bits) {
  if (mask_id_bits < 1 || mask_id_bits > 4) {
    throw std::invalid_argument("Dream: mask_id_bits must be in [1, 4]");
  }
  run_step_ = 16 >> mask_id_bits;  // 4 bits -> step 1 (exact runs)
}

std::string Dream::name() const {
  if (mask_id_bits_ == 4) return "dream";
  return "dream" + std::to_string(mask_id_bits_);
}

std::uint32_t Dream::encode_payload(fixed::Sample s) const {
  return static_cast<std::uint16_t>(s);  // data stored unmodified
}

int Dream::recorded_run(fixed::Sample s) const {
  const int run = fixed::sign_run_length(s);  // in [1, 16]
  // Quantize downward so the decoder never forces a bit that was not part
  // of the actual constant-MSB run.
  const int id = (run - 1) / run_step_;          // fits mask_id_bits_
  return id * run_step_ + 1;
}

std::uint16_t Dream::encode_safe(fixed::Sample s) const {
  const auto u = static_cast<std::uint16_t>(s);
  const std::uint16_t sign = (u >> 15) & 1u;
  const int run = fixed::sign_run_length(s);
  const auto id = static_cast<std::uint16_t>((run - 1) / run_step_);
  return static_cast<std::uint16_t>((id << 1) | sign);
}

std::uint16_t Dream::decode_word(std::uint16_t data, std::uint16_t safe,
                                 bool& corrected) const {
  const bool sign = (safe & 1u) != 0;
  const int id = static_cast<int>(safe >> 1);
  const int run = id * run_step_ + 1;  // recorded run length, in [1, 16]

  // Expand mask ID to a full mask covering the top `run` bits (the
  // hardware lookup table of Fig. 3).
  const std::uint16_t mask =
      static_cast<std::uint16_t>(~((1u << (16 - run)) - 1u) & 0xFFFFu);

  // AND/OR + 2:1 mux selected by the sign bit.
  std::uint16_t fixed_word =
      sign ? static_cast<std::uint16_t>(data | mask)
           : static_cast<std::uint16_t>(data & static_cast<std::uint16_t>(~mask));

  // "Set one bit" block: with exact run lengths, the bit right below the
  // run is by construction the inverted sign — restore it unconditionally.
  if (run_step_ == 1 && run < 16) {
    const std::uint16_t below = static_cast<std::uint16_t>(1u << (15 - run));
    fixed_word = sign ? static_cast<std::uint16_t>(fixed_word & ~below)
                      : static_cast<std::uint16_t>(fixed_word | below);
  }

  corrected = fixed_word != data;
  return fixed_word;
}

fixed::Sample Dream::decode(std::uint32_t payload, std::uint16_t safe,
                            CodecCounters* counters) const {
  bool corrected = false;
  const std::uint16_t fixed_word =
      decode_word(static_cast<std::uint16_t>(payload), safe, corrected);
  if (counters != nullptr) {
    ++counters->decodes;
    if (corrected) ++counters->corrected_words;
  }
  return static_cast<fixed::Sample>(fixed_word);
}

#if ULPDREAM_SIMD_X86

namespace {

// --- SSE2 building blocks -----------------------------------------------

// 1 << s per 16-bit lane, s in [0, 15], without variable shifts (SSE2 has
// none): a chain of conditional multiplies by 2^1, 2^2, 2^4, 2^8 selected
// by the bits of s.
inline __m128i pow2_epu16_sse2(__m128i s) {
  __m128i pow = _mm_set1_epi16(1);
  __m128i bit = _mm_set1_epi16(1);
  const short muls[4] = {2, 4, 16, 256};
  for (int b = 0; b < 4; ++b) {
    const __m128i cond = _mm_cmpeq_epi16(_mm_and_si128(s, bit), bit);
    const __m128i scaled = _mm_mullo_epi16(pow, _mm_set1_epi16(muls[b]));
    pow = _mm_or_si128(_mm_and_si128(cond, scaled),
                       _mm_andnot_si128(cond, pow));
    bit = _mm_slli_epi16(bit, 1);
  }
  return pow;
}

// floor(log2(v)) per 32-bit lane for v in [1, 2^16]: isolate the top set
// bit (then the int->float conversion is exact) and read the exponent.
inline __m128i msb_epu32_sse2(__m128i v) {
  v = _mm_or_si128(v, _mm_srli_epi32(v, 1));
  v = _mm_or_si128(v, _mm_srli_epi32(v, 2));
  v = _mm_or_si128(v, _mm_srli_epi32(v, 4));
  v = _mm_or_si128(v, _mm_srli_epi32(v, 8));
  v = _mm_xor_si128(v, _mm_srli_epi32(v, 1));
  const __m128 f = _mm_cvtepi32_ps(v);
  return _mm_sub_epi32(_mm_srli_epi32(_mm_castps_si128(f), 23),
                       _mm_set1_epi32(127));
}

// Low 16 bits of eight consecutive u32 payload words, packed to u16 lanes.
inline __m128i load_payload8_sse2(const std::uint32_t* p) {
  const __m128i a =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  const __m128i b =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 4));
  return _mm_packs_epi32(_mm_srai_epi32(_mm_slli_epi32(a, 16), 16),
                         _mm_srai_epi32(_mm_slli_epi32(b, 16), 16));
}

// The mask-force datapath of Fig. 3 on eight words at once. `exact` is the
// run_step == 1 "set one bit" stage; `below` = pow >> 1 is zero exactly
// when run == 16, which makes the run < 16 guard branchless.
inline __m128i dream_force8_sse2(__m128i data, __m128i safe, __m128i vstep,
                                 bool exact) {
  const __m128i one = _mm_set1_epi16(1);
  const __m128i sign =
      _mm_sub_epi16(_mm_setzero_si128(), _mm_and_si128(safe, one));
  const __m128i id = _mm_srli_epi16(safe, 1);
  // run = id*step + 1; the mask covering the top `run` bits is
  // -(1 << (16 - run)) mod 2^16, and 16 - run = 15 - id*step.
  const __m128i s =
      _mm_sub_epi16(_mm_set1_epi16(15), _mm_mullo_epi16(id, vstep));
  const __m128i pow = pow2_epu16_sse2(s);
  const __m128i mask = _mm_sub_epi16(_mm_setzero_si128(), pow);
  const __m128i or_v = _mm_or_si128(data, mask);
  const __m128i and_v = _mm_andnot_si128(mask, data);
  __m128i fixed_v = _mm_or_si128(_mm_and_si128(sign, or_v),
                                 _mm_andnot_si128(sign, and_v));
  if (exact) {
    const __m128i below = _mm_srli_epi16(pow, 1);
    const __m128i set_v = _mm_or_si128(fixed_v, below);
    const __m128i clr_v = _mm_andnot_si128(below, fixed_v);
    fixed_v = _mm_or_si128(_mm_and_si128(sign, clr_v),
                           _mm_andnot_si128(sign, set_v));
  }
  return fixed_v;
}

// corrected[0..7] = (fixed != data) ? 1 : 0, one byte per word.
inline void store_corrected8_sse2(std::uint8_t* corrected, __m128i fixed_v,
                                  __m128i data) {
  const __m128i ne = _mm_xor_si128(_mm_cmpeq_epi16(fixed_v, data),
                                   _mm_set1_epi16(-1));
  _mm_storel_epi64(
      reinterpret_cast<__m128i*>(corrected),
      _mm_packs_epi16(_mm_and_si128(ne, _mm_set1_epi16(1)),
                      _mm_setzero_si128()));
}

template <bool kFromU32>
std::size_t dream_force_sse2(const void* src, const std::uint16_t* safe,
                             fixed::Sample* out, std::uint8_t* corrected,
                             std::size_t n, int run_step) {
  const __m128i vstep = _mm_set1_epi16(static_cast<short>(run_step));
  const bool exact = run_step == 1;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m128i data;
    if constexpr (kFromU32) {
      data = load_payload8_sse2(static_cast<const std::uint32_t*>(src) + i);
    } else {
      data = _mm_loadu_si128(reinterpret_cast<const __m128i*>(
          static_cast<const std::uint16_t*>(src) + i));
    }
    const __m128i vsafe =
        safe != nullptr
            ? _mm_loadu_si128(reinterpret_cast<const __m128i*>(safe + i))
            : _mm_setzero_si128();
    const __m128i fixed_v = dream_force8_sse2(data, vsafe, vstep, exact);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), fixed_v);
    store_corrected8_sse2(corrected + i, fixed_v, data);
  }
  return i;
}

std::size_t dream_encode_safe_sse2(const fixed::Sample* in,
                                   std::uint16_t* safe, std::size_t n,
                                   int id_shift) {
  const __m128i zero = _mm_setzero_si128();
  const __m128i one = _mm_set1_epi16(1);
  const __m128i v15 = _mm_set1_epi32(15);
  const __m128i shift = _mm_cvtsi32_si128(id_shift);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i u =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i));
    const __m128i sign = _mm_srli_epi16(u, 15);
    // t = u ^ (u << 1) flags every adjacent-bit transition; the MSB run
    // ends at the highest set bit, so run - 1 = 15 - msb(t | 1).
    const __m128i t =
        _mm_or_si128(_mm_xor_si128(u, _mm_slli_epi16(u, 1)), one);
    const __m128i id_lo = _mm_srl_epi32(
        _mm_sub_epi32(v15, msb_epu32_sse2(_mm_unpacklo_epi16(t, zero))),
        shift);
    const __m128i id_hi = _mm_srl_epi32(
        _mm_sub_epi32(v15, msb_epu32_sse2(_mm_unpackhi_epi16(t, zero))),
        shift);
    const __m128i id = _mm_packs_epi32(id_lo, id_hi);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(safe + i),
                     _mm_or_si128(_mm_slli_epi16(id, 1), sign));
  }
  return i;
}

// --- AVX2 versions (16 words per iteration) -----------------------------

__attribute__((target("avx2"))) inline __m256i pow2_epu16_avx2(__m256i s) {
  __m256i pow = _mm256_set1_epi16(1);
  __m256i bit = _mm256_set1_epi16(1);
  const short muls[4] = {2, 4, 16, 256};
  for (int b = 0; b < 4; ++b) {
    const __m256i cond = _mm256_cmpeq_epi16(_mm256_and_si256(s, bit), bit);
    const __m256i scaled = _mm256_mullo_epi16(pow, _mm256_set1_epi16(muls[b]));
    pow = _mm256_blendv_epi8(pow, scaled, cond);
    bit = _mm256_slli_epi16(bit, 1);
  }
  return pow;
}

__attribute__((target("avx2"))) inline __m256i msb_epu32_avx2(__m256i v) {
  v = _mm256_or_si256(v, _mm256_srli_epi32(v, 1));
  v = _mm256_or_si256(v, _mm256_srli_epi32(v, 2));
  v = _mm256_or_si256(v, _mm256_srli_epi32(v, 4));
  v = _mm256_or_si256(v, _mm256_srli_epi32(v, 8));
  v = _mm256_xor_si256(v, _mm256_srli_epi32(v, 1));
  const __m256 f = _mm256_cvtepi32_ps(v);
  return _mm256_sub_epi32(_mm256_srli_epi32(_mm256_castps_si256(f), 23),
                          _mm256_set1_epi32(127));
}

__attribute__((target("avx2"))) inline __m256i
load_payload16_avx2(const std::uint32_t* p) {
  const __m256i a =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  const __m256i b =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 8));
  const __m256i packed =
      _mm256_packs_epi32(_mm256_srai_epi32(_mm256_slli_epi32(a, 16), 16),
                         _mm256_srai_epi32(_mm256_slli_epi32(b, 16), 16));
  return _mm256_permute4x64_epi64(packed, _MM_SHUFFLE(3, 1, 2, 0));
}

__attribute__((target("avx2"))) inline __m256i
dream_force16_avx2(__m256i data, __m256i safe, __m256i vstep, bool exact) {
  const __m256i one = _mm256_set1_epi16(1);
  const __m256i sign =
      _mm256_sub_epi16(_mm256_setzero_si256(), _mm256_and_si256(safe, one));
  const __m256i id = _mm256_srli_epi16(safe, 1);
  const __m256i s =
      _mm256_sub_epi16(_mm256_set1_epi16(15), _mm256_mullo_epi16(id, vstep));
  const __m256i pow = pow2_epu16_avx2(s);
  const __m256i mask = _mm256_sub_epi16(_mm256_setzero_si256(), pow);
  const __m256i or_v = _mm256_or_si256(data, mask);
  const __m256i and_v = _mm256_andnot_si256(mask, data);
  __m256i fixed_v = _mm256_blendv_epi8(and_v, or_v, sign);
  if (exact) {
    const __m256i below = _mm256_srli_epi16(pow, 1);
    fixed_v = _mm256_blendv_epi8(_mm256_or_si256(fixed_v, below),
                                 _mm256_andnot_si256(below, fixed_v), sign);
  }
  return fixed_v;
}

__attribute__((target("avx2"))) inline void
store_corrected16_avx2(std::uint8_t* corrected, __m256i fixed_v,
                       __m256i data) {
  const __m256i ne = _mm256_xor_si256(_mm256_cmpeq_epi16(fixed_v, data),
                                      _mm256_set1_epi16(-1));
  const __m256i flags =
      _mm256_packs_epi16(_mm256_and_si256(ne, _mm256_set1_epi16(1)),
                         _mm256_setzero_si256());
  _mm_storeu_si128(
      reinterpret_cast<__m128i*>(corrected),
      _mm256_castsi256_si128(
          _mm256_permute4x64_epi64(flags, _MM_SHUFFLE(3, 1, 2, 0))));
}

template <bool kFromU32>
__attribute__((target("avx2"))) std::size_t
dream_force_avx2(const void* src, const std::uint16_t* safe,
                 fixed::Sample* out, std::uint8_t* corrected, std::size_t n,
                 int run_step) {
  const __m256i vstep = _mm256_set1_epi16(static_cast<short>(run_step));
  const bool exact = run_step == 1;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m256i data;
    if constexpr (kFromU32) {
      data = load_payload16_avx2(static_cast<const std::uint32_t*>(src) + i);
    } else {
      data = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
          static_cast<const std::uint16_t*>(src) + i));
    }
    const __m256i vsafe =
        safe != nullptr
            ? _mm256_loadu_si256(reinterpret_cast<const __m256i*>(safe + i))
            : _mm256_setzero_si256();
    const __m256i fixed_v = dream_force16_avx2(data, vsafe, vstep, exact);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), fixed_v);
    store_corrected16_avx2(corrected + i, fixed_v, data);
  }
  return i;
}

__attribute__((target("avx2"))) std::size_t
dream_encode_safe_avx2(const fixed::Sample* in, std::uint16_t* safe,
                       std::size_t n, int id_shift) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i one = _mm256_set1_epi16(1);
  const __m256i v15 = _mm256_set1_epi32(15);
  const __m128i shift = _mm_cvtsi32_si128(id_shift);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i u =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
    const __m256i sign = _mm256_srli_epi16(u, 15);
    const __m256i t =
        _mm256_or_si256(_mm256_xor_si256(u, _mm256_slli_epi16(u, 1)), one);
    // unpacklo/hi and packs all operate per 128-bit lane, so the pack
    // reassembles the original word order.
    const __m256i id_lo = _mm256_srl_epi32(
        _mm256_sub_epi32(v15, msb_epu32_avx2(_mm256_unpacklo_epi16(t, zero))),
        shift);
    const __m256i id_hi = _mm256_srl_epi32(
        _mm256_sub_epi32(v15, msb_epu32_avx2(_mm256_unpackhi_epi16(t, zero))),
        shift);
    const __m256i id = _mm256_packs_epi32(id_lo, id_hi);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(safe + i),
                        _mm256_or_si256(_mm256_slli_epi16(id, 1), sign));
  }
  return i;
}

}  // namespace

#endif  // ULPDREAM_SIMD_X86

void Dream::encode_safe_block(const fixed::Sample* in, std::uint16_t* safe,
                              std::size_t n) const {
  std::size_t i = 0;
#if ULPDREAM_SIMD_X86
  const auto tier = util::simd::active_tier();
  const int id_shift = std::countr_zero(static_cast<unsigned>(run_step_));
  if (tier >= util::simd::Tier::kAvx2) {
    i = dream_encode_safe_avx2(in, safe, n, id_shift);
  } else if (tier >= util::simd::Tier::kSse2) {
    i = dream_encode_safe_sse2(in, safe, n, id_shift);
  }
#endif
  for (; i < n; ++i) safe[i] = encode_safe(in[i]);
}

void Dream::force_block(const std::uint32_t* payload,
                        const std::uint16_t* safe, fixed::Sample* out,
                        std::uint8_t* corrected, std::size_t n) const {
  std::size_t i = 0;
#if ULPDREAM_SIMD_X86
  const auto tier = util::simd::active_tier();
  if (tier >= util::simd::Tier::kAvx2) {
    i = dream_force_avx2<true>(payload, safe, out, corrected, n, run_step_);
  } else if (tier >= util::simd::Tier::kSse2) {
    i = dream_force_sse2<true>(payload, safe, out, corrected, n, run_step_);
  }
#endif
  for (; i < n; ++i) {
    bool c = false;
    out[i] = static_cast<fixed::Sample>(
        decode_word(static_cast<std::uint16_t>(payload[i]),
                    safe != nullptr ? safe[i] : std::uint16_t{0}, c));
    corrected[i] = c ? 1 : 0;
  }
}

void Dream::force_block16(const std::uint16_t* data, const std::uint16_t* safe,
                          fixed::Sample* out, std::uint8_t* corrected,
                          std::size_t n) const {
  std::size_t i = 0;
#if ULPDREAM_SIMD_X86
  const auto tier = util::simd::active_tier();
  if (tier >= util::simd::Tier::kAvx2) {
    i = dream_force_avx2<false>(data, safe, out, corrected, n, run_step_);
  } else if (tier >= util::simd::Tier::kSse2) {
    i = dream_force_sse2<false>(data, safe, out, corrected, n, run_step_);
  }
#endif
  for (; i < n; ++i) {
    bool c = false;
    out[i] = static_cast<fixed::Sample>(
        decode_word(data[i], safe != nullptr ? safe[i] : std::uint16_t{0}, c));
    corrected[i] = c ? 1 : 0;
  }
}

void Dream::encode_block(std::span<const fixed::Sample> in,
                         std::span<std::uint32_t> payload,
                         std::span<std::uint16_t> safe) const {
  check_block_spans(in.size(), payload.size(), safe.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    payload[i] = static_cast<std::uint16_t>(in[i]);
  }
  if (!safe.empty()) encode_safe_block(in.data(), safe.data(), safe.size());
}

void Dream::decode_block(std::span<const std::uint32_t> payload,
                         std::span<const std::uint16_t> safe,
                         std::span<fixed::Sample> out,
                         CodecCounters* counters) const {
  check_block_spans(out.size(), payload.size(), safe.size());
  constexpr std::size_t kChunk = 1024;
  std::uint8_t corrected[kChunk];
  std::uint64_t corrected_words = 0;
  const std::size_t n = out.size();
  for (std::size_t base = 0; base < n; base += kChunk) {
    const std::size_t len = std::min(kChunk, n - base);
    force_block(payload.data() + base,
                safe.empty() ? nullptr : safe.data() + base,
                out.data() + base, corrected, len);
    if (counters != nullptr) {
      for (std::size_t j = 0; j < len; ++j) corrected_words += corrected[j];
    }
  }
  if (counters != nullptr) {
    counters->decodes += n;
    counters->corrected_words += corrected_words;
  }
}

}  // namespace ulpdream::core
