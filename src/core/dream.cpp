#include "ulpdream/core/dream.hpp"

#include <stdexcept>

namespace ulpdream::core {

Dream::Dream(int mask_id_bits) : mask_id_bits_(mask_id_bits) {
  if (mask_id_bits < 1 || mask_id_bits > 4) {
    throw std::invalid_argument("Dream: mask_id_bits must be in [1, 4]");
  }
  run_step_ = 16 >> mask_id_bits;  // 4 bits -> step 1 (exact runs)
}

std::string Dream::name() const {
  if (mask_id_bits_ == 4) return "dream";
  return "dream" + std::to_string(mask_id_bits_);
}

std::uint32_t Dream::encode_payload(fixed::Sample s) const {
  return static_cast<std::uint16_t>(s);  // data stored unmodified
}

int Dream::recorded_run(fixed::Sample s) const {
  const int run = fixed::sign_run_length(s);  // in [1, 16]
  // Quantize downward so the decoder never forces a bit that was not part
  // of the actual constant-MSB run.
  const int id = (run - 1) / run_step_;          // fits mask_id_bits_
  return id * run_step_ + 1;
}

std::uint16_t Dream::encode_safe(fixed::Sample s) const {
  const auto u = static_cast<std::uint16_t>(s);
  const std::uint16_t sign = (u >> 15) & 1u;
  const int run = fixed::sign_run_length(s);
  const auto id = static_cast<std::uint16_t>((run - 1) / run_step_);
  return static_cast<std::uint16_t>((id << 1) | sign);
}

fixed::Sample Dream::decode(std::uint32_t payload, std::uint16_t safe,
                            CodecCounters* counters) const {
  const auto data = static_cast<std::uint16_t>(payload);
  const bool sign = (safe & 1u) != 0;
  const int id = static_cast<int>(safe >> 1);
  const int run = id * run_step_ + 1;  // recorded run length, in [1, 16]

  // Expand mask ID to a full mask covering the top `run` bits (the
  // hardware lookup table of Fig. 3).
  const std::uint16_t mask =
      static_cast<std::uint16_t>(~((1u << (16 - run)) - 1u) & 0xFFFFu);

  // AND/OR + 2:1 mux selected by the sign bit.
  std::uint16_t fixed_word =
      sign ? static_cast<std::uint16_t>(data | mask)
           : static_cast<std::uint16_t>(data & static_cast<std::uint16_t>(~mask));

  // "Set one bit" block: with exact run lengths, the bit right below the
  // run is by construction the inverted sign — restore it unconditionally.
  if (run_step_ == 1 && run < 16) {
    const std::uint16_t below = static_cast<std::uint16_t>(1u << (15 - run));
    fixed_word = sign ? static_cast<std::uint16_t>(fixed_word & ~below)
                      : static_cast<std::uint16_t>(fixed_word | below);
  }

  if (counters != nullptr) {
    ++counters->decodes;
    if (fixed_word != data) ++counters->corrected_words;
  }
  return static_cast<fixed::Sample>(fixed_word);
}

}  // namespace ulpdream::core
