#include "ulpdream/signal/fir.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace ulpdream::signal {

namespace {

std::vector<double> windowed_sinc(double cutoff, std::size_t taps) {
  if (!(cutoff > 0.0 && cutoff < 0.5)) {
    throw std::invalid_argument("design: cutoff must be in (0, 0.5)");
  }
  if (taps % 2 == 0 || taps < 3) {
    throw std::invalid_argument("design: taps must be odd and >= 3");
  }
  const auto m = static_cast<double>(taps - 1);
  std::vector<double> h(taps);
  for (std::size_t i = 0; i < taps; ++i) {
    const double n = static_cast<double>(i) - m / 2.0;
    const double sinc =
        n == 0.0 ? 2.0 * cutoff
                 : std::sin(2.0 * std::numbers::pi * cutoff * n) /
                       (std::numbers::pi * n);
    const double hamming =
        0.54 - 0.46 * std::cos(2.0 * std::numbers::pi *
                               static_cast<double>(i) / m);
    h[i] = sinc * hamming;
  }
  // Normalize DC gain to exactly 1.
  double sum = 0.0;
  for (double v : h) sum += v;
  for (double& v : h) v /= sum;
  return h;
}

}  // namespace

TapVec quantize_taps(const std::vector<double>& taps) {
  // Scale so the largest magnitude fits Q1.15 and positive DC gain stays
  // below 1 to avoid accumulation overflow for full-scale DC input.
  double max_abs = 0.0;
  double pos_sum = 0.0;
  for (double t : taps) {
    max_abs = std::max(max_abs, std::fabs(t));
    pos_sum += std::fabs(t);
  }
  double scale = 1.0;
  if (max_abs >= 1.0) scale = 0.999 / max_abs;
  (void)pos_sum;  // gain >1 is acceptable: the kernel accumulates in 64-bit
                  // and saturates on narrowing.
  TapVec out;
  out.reserve(taps.size());
  for (double t : taps) out.push_back(fixed::Q15::from_double(t * scale));
  return out;
}

TapVec design_lowpass(double cutoff, std::size_t taps) {
  return quantize_taps(windowed_sinc(cutoff, taps));
}

TapVec design_highpass(double cutoff, std::size_t taps) {
  std::vector<double> h = windowed_sinc(cutoff, taps);
  // Spectral inversion: delta at center minus low-pass.
  for (double& v : h) v = -v;
  h[taps / 2] += 1.0;
  return quantize_taps(h);
}

}  // namespace ulpdream::signal
