#include "ulpdream/signal/wavelet.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace ulpdream::signal {

namespace {

WaveletBank make_bank(std::string name, std::vector<double> lo_d) {
  WaveletBank bank;
  bank.name = std::move(name);
  bank.lo_d = std::move(lo_d);
  const std::size_t n = bank.lo_d.size();
  // Orthogonal QMF relations:
  //   hi_d[k] = (-1)^k * lo_d[n-1-k]
  //   lo_r[k] = lo_d[n-1-k],  hi_r[k] = hi_d[n-1-k]
  bank.hi_d.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double sign = (k % 2 == 0) ? 1.0 : -1.0;
    bank.hi_d[k] = sign * bank.lo_d[n - 1 - k];
  }
  bank.lo_r.assign(bank.lo_d.rbegin(), bank.lo_d.rend());
  bank.hi_r.assign(bank.hi_d.rbegin(), bank.hi_d.rend());
  return bank;
}

const WaveletBank& haar() {
  static const WaveletBank bank =
      make_bank("haar", {std::numbers::sqrt2 / 2.0, std::numbers::sqrt2 / 2.0});
  return bank;
}

const WaveletBank& db2() {
  // Daubechies-2 (4 taps), standard coefficients.
  static const WaveletBank bank = make_bank(
      "db2", {0.48296291314469025, 0.8365163037378079, 0.22414386804185735,
              -0.12940952255092145});
  return bank;
}

const WaveletBank& db4() {
  // Daubechies-4 (8 taps).
  static const WaveletBank bank = make_bank(
      "db4",
      {0.23037781330885523, 0.7148465705525415, 0.6308807679295904,
       -0.02798376941698385, -0.18703481171888114, 0.030841381835986965,
       0.032883011666982945, -0.010597401784997278});
  return bank;
}

}  // namespace

const WaveletBank& wavelet_bank(WaveletFamily family) {
  switch (family) {
    case WaveletFamily::kHaar:
      return haar();
    case WaveletFamily::kDb2:
      return db2();
    case WaveletFamily::kDb4:
      return db4();
  }
  throw std::invalid_argument("unknown wavelet family");
}

FixedBank fixed_bank(WaveletFamily family) {
  const WaveletBank& bank = wavelet_bank(family);
  FixedBank out;
  out.lo = quantize_taps(bank.lo_d);
  out.hi = quantize_taps(bank.hi_d);
  return out;
}

namespace {

// One double-precision decimated analysis level with periodic extension.
void dwt_level_f64(const std::vector<double>& in, const WaveletBank& bank,
                   std::vector<double>& approx, std::vector<double>& detail) {
  const std::size_t n = in.size();
  const std::size_t half = n / 2;
  approx.assign(half, 0.0);
  detail.assign(half, 0.0);
  for (std::size_t i = 0; i < half; ++i) {
    double lo = 0.0;
    double hi = 0.0;
    for (std::size_t k = 0; k < bank.lo_d.size(); ++k) {
      const double s = in[(2 * i + k) % n];
      lo += s * bank.lo_d[k];
      hi += s * bank.hi_d[k];
    }
    approx[i] = lo;
    detail[i] = hi;
  }
}

// One synthesis level: upsample-and-filter with the synthesis pair.
std::vector<double> idwt_level_f64(const std::vector<double>& approx,
                                   const std::vector<double>& detail,
                                   const WaveletBank& bank) {
  const std::size_t half = approx.size();
  const std::size_t n = half * 2;
  const std::size_t taps = bank.lo_r.size();
  std::vector<double> out(n, 0.0);
  // Periodized overlap-add of each coefficient's synthesis response.
  for (std::size_t i = 0; i < half; ++i) {
    for (std::size_t k = 0; k < taps; ++k) {
      const std::size_t pos = (2 * i + k) % n;
      out[pos] += approx[i] * bank.lo_r[taps - 1 - k] +
                  detail[i] * bank.hi_r[taps - 1 - k];
    }
  }
  return out;
}

}  // namespace

std::vector<double> dwt_multi_f64(const std::vector<double>& in,
                                  WaveletFamily family, std::size_t levels) {
  const WaveletBank& bank = wavelet_bank(family);
  std::vector<double> out(in.size(), 0.0);
  std::vector<double> current = in;
  std::size_t write_end = in.size();
  for (std::size_t lv = 0; lv < levels && current.size() >= 2; ++lv) {
    std::vector<double> approx;
    std::vector<double> detail;
    dwt_level_f64(current, bank, approx, detail);
    const std::size_t half = detail.size();
    for (std::size_t i = 0; i < half; ++i) {
      out[write_end - half + i] = detail[i];
    }
    write_end -= half;
    current = std::move(approx);
  }
  for (std::size_t i = 0; i < current.size(); ++i) out[i] = current[i];
  return out;
}

std::vector<double> idwt_multi_f64(const std::vector<double>& coeffs,
                                   WaveletFamily family, std::size_t levels) {
  const WaveletBank& bank = wavelet_bank(family);
  // Determine the band sizes from the forward layout.
  std::size_t len = coeffs.size();
  std::vector<std::size_t> detail_sizes;
  for (std::size_t lv = 0; lv < levels && len >= 2; ++lv) {
    len /= 2;
    detail_sizes.push_back(len);
  }
  std::vector<double> current(coeffs.begin(),
                              coeffs.begin() + static_cast<long>(len));
  std::size_t offset = len;
  for (auto it = detail_sizes.rbegin(); it != detail_sizes.rend(); ++it) {
    const std::size_t half = *it;
    std::vector<double> detail(
        coeffs.begin() + static_cast<long>(offset),
        coeffs.begin() + static_cast<long>(offset + half));
    current = idwt_level_f64(current, detail, bank);
    offset += half;
  }
  return current;
}

}  // namespace ulpdream::signal
