#pragma once
// Buffer abstraction shared by every DSP kernel. The paper's experiments
// route *all* application data (input, intermediate and output buffers)
// through the under-powered data memory; kernels therefore never touch raw
// arrays — they are templated on a SampleBuffer, which is either a plain
// in-core vector (tests, reference runs) or a faulty-memory-backed buffer
// (experiments). Every get/set on the latter traverses the EMT codec and
// fault-injection path and is counted for energy.

#include <algorithm>
#include <concepts>
#include <cstddef>
#include <span>
#include <stdexcept>

#include "ulpdream/fixed/sample.hpp"

namespace ulpdream::signal {

template <typename B>
concept SampleBuffer = requires(B& b, const B& cb, std::size_t i,
                                fixed::Sample s) {
  { cb.get(i) } -> std::convertible_to<fixed::Sample>;
  { b.set(i, s) };
  { cb.size() } -> std::convertible_to<std::size_t>;
};

/// A SampleBuffer that also moves whole windows per call: load() writes a
/// span into the buffer at an offset, store() reads a window back out.
/// ProtectedBuffer models this with one codec dispatch per window (the
/// batched data path); kernels use it through read_window/write_window so
/// plain VecBuffers and faulty-memory buffers share one code path.
template <typename B>
concept BlockSampleBuffer =
    SampleBuffer<B> &&
    requires(B& b, const B& cb, std::size_t i,
             std::span<const fixed::Sample> src, std::span<fixed::Sample> dst) {
      { b.load(i, src) };
      { cb.store(i, dst) };
    };

/// Plain in-core buffer: adapter over a SampleVec. Used for unit tests and
/// for golden-reference computation outside the memory simulator.
class VecBuffer {
 public:
  VecBuffer() = default;
  explicit VecBuffer(std::size_t n) : data_(n, 0) {}
  explicit VecBuffer(fixed::SampleVec data) : data_(std::move(data)) {}

  [[nodiscard]] fixed::Sample get(std::size_t i) const { return data_.at(i); }
  void set(std::size_t i, fixed::Sample s) { data_.at(i) = s; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

  void load(std::size_t i, std::span<const fixed::Sample> src) {
    if (src.size() > data_.size() || i > data_.size() - src.size()) {
      throw std::out_of_range("VecBuffer::load");
    }
    std::copy(src.begin(), src.end(), data_.begin() + static_cast<long>(i));
  }
  void store(std::size_t i, std::span<fixed::Sample> dst) const {
    if (dst.size() > data_.size() || i > data_.size() - dst.size()) {
      throw std::out_of_range("VecBuffer::store");
    }
    std::copy_n(data_.begin() + static_cast<long>(i), dst.size(), dst.begin());
  }

  [[nodiscard]] const fixed::SampleVec& vec() const noexcept { return data_; }
  [[nodiscard]] fixed::SampleVec& vec() noexcept { return data_; }

 private:
  fixed::SampleVec data_;
};

static_assert(SampleBuffer<VecBuffer>);
static_assert(BlockSampleBuffer<VecBuffer>);

/// Reads buf[offset, offset + dst.size()) into `dst` — the block path when
/// the buffer supports it, a scalar loop otherwise. Access-trace
/// equivalent either way: the same addresses are read once each, in
/// ascending order.
template <SampleBuffer B>
void read_window(const B& buf, std::size_t offset,
                 std::span<fixed::Sample> dst) {
  if constexpr (BlockSampleBuffer<B>) {
    buf.store(offset, dst);
  } else {
    for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = buf.get(offset + i);
  }
}

/// Writes `src` into buf[offset, offset + src.size()), block path when
/// available.
template <SampleBuffer B>
void write_window(B& buf, std::size_t offset,
                  std::span<const fixed::Sample> src) {
  if constexpr (BlockSampleBuffer<B>) {
    buf.load(offset, src);
  } else {
    for (std::size_t i = 0; i < src.size(); ++i) buf.set(offset + i, src[i]);
  }
}

/// Chunk size used when staging window transfers through the stack.
inline constexpr std::size_t kWindowChunk = 256;

/// Stack-staged sequential writer: push() samples destined for
/// buf[offset], buf[offset + 1], ...; full kWindowChunk stages are
/// flushed through write_window, and flush() drains the tail. Shared by
/// the kernels that produce one output per loop iteration, so the
/// chunk/tail bookkeeping lives in one place.
template <SampleBuffer B>
class ChunkedWriter {
 public:
  ChunkedWriter(B& buf, std::size_t offset) : buf_(&buf), next_(offset) {}

  void push(fixed::Sample s) {
    staged_[fill_++] = s;
    if (fill_ == kWindowChunk) flush();
  }

  void flush() {
    if (fill_ == 0) return;
    write_window(*buf_, next_, std::span<const fixed::Sample>(staged_, fill_));
    next_ += fill_;
    fill_ = 0;
  }

 private:
  B* buf_;
  std::size_t next_;
  std::size_t fill_ = 0;
  fixed::Sample staged_[kWindowChunk];
};

/// Copies src[src_off, src_off + n) into dst[dst_off, ...) through the
/// block path, staging kWindowChunk samples at a time. Source and
/// destination must be distinct buffers (the chunked copy reorders the
/// interleaving of reads and writes, which is only equivalent when no
/// read observes this copy's own writes).
template <SampleBuffer Src, SampleBuffer Dst>
void copy_window(const Src& src, std::size_t src_off, Dst& dst,
                 std::size_t dst_off, std::size_t n) {
  fixed::Sample staged[kWindowChunk];
  while (n > 0) {
    const std::size_t m = n < kWindowChunk ? n : kWindowChunk;
    read_window(src, src_off, std::span<fixed::Sample>(staged, m));
    write_window(dst, dst_off, std::span<const fixed::Sample>(staged, m));
    src_off += m;
    dst_off += m;
    n -= m;
  }
}

/// Copies a SampleVec into any SampleBuffer.
template <SampleBuffer B>
void load(B& buf, const fixed::SampleVec& src) {
  const std::size_t n = src.size() < buf.size() ? src.size() : buf.size();
  write_window(buf, 0, std::span<const fixed::Sample>(src.data(), n));
}

/// Reads a SampleBuffer range [0, n) back into a SampleVec.
template <SampleBuffer B>
[[nodiscard]] fixed::SampleVec store(const B& buf, std::size_t n) {
  fixed::SampleVec out(n);
  read_window(buf, 0, std::span<fixed::Sample>(out.data(), n));
  return out;
}

}  // namespace ulpdream::signal
