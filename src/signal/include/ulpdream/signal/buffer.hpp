#pragma once
// Buffer abstraction shared by every DSP kernel. The paper's experiments
// route *all* application data (input, intermediate and output buffers)
// through the under-powered data memory; kernels therefore never touch raw
// arrays — they are templated on a SampleBuffer, which is either a plain
// in-core vector (tests, reference runs) or a faulty-memory-backed buffer
// (experiments). Every get/set on the latter traverses the EMT codec and
// fault-injection path and is counted for energy.

#include <concepts>
#include <cstddef>

#include "ulpdream/fixed/sample.hpp"

namespace ulpdream::signal {

template <typename B>
concept SampleBuffer = requires(B& b, const B& cb, std::size_t i,
                                fixed::Sample s) {
  { cb.get(i) } -> std::convertible_to<fixed::Sample>;
  { b.set(i, s) };
  { cb.size() } -> std::convertible_to<std::size_t>;
};

/// Plain in-core buffer: adapter over a SampleVec. Used for unit tests and
/// for golden-reference computation outside the memory simulator.
class VecBuffer {
 public:
  VecBuffer() = default;
  explicit VecBuffer(std::size_t n) : data_(n, 0) {}
  explicit VecBuffer(fixed::SampleVec data) : data_(std::move(data)) {}

  [[nodiscard]] fixed::Sample get(std::size_t i) const { return data_.at(i); }
  void set(std::size_t i, fixed::Sample s) { data_.at(i) = s; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

  [[nodiscard]] const fixed::SampleVec& vec() const noexcept { return data_; }
  [[nodiscard]] fixed::SampleVec& vec() noexcept { return data_; }

 private:
  fixed::SampleVec data_;
};

static_assert(SampleBuffer<VecBuffer>);

/// Copies a SampleVec into any SampleBuffer.
template <SampleBuffer B>
void load(B& buf, const fixed::SampleVec& src) {
  for (std::size_t i = 0; i < src.size() && i < buf.size(); ++i) {
    buf.set(i, src[i]);
  }
}

/// Reads a SampleBuffer range [0, n) back into a SampleVec.
template <SampleBuffer B>
[[nodiscard]] fixed::SampleVec store(const B& buf, std::size_t n) {
  fixed::SampleVec out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = buf.get(i);
  return out;
}

}  // namespace ulpdream::signal
