#pragma once
// 1-D grayscale morphology with flat structuring elements — the substrate
// of the paper's Morphological Filtering application (baseline-wander and
// impulse-noise removal on raw ECG, per Sec. II-4). All kernels are
// templated on SampleBuffer so the experiment versions run through the
// faulty memory. Border policy: clamp to edge (standard for morphology).

#include <algorithm>
#include <cstddef>

#include "ulpdream/fixed/sample.hpp"
#include "ulpdream/signal/buffer.hpp"

namespace ulpdream::signal {

namespace detail {
template <SampleBuffer B>
[[nodiscard]] fixed::Sample clamped_get(const B& b, long i, std::size_t n) {
  if (i < 0) i = 0;
  if (i >= static_cast<long>(n)) i = static_cast<long>(n) - 1;
  return b.get(static_cast<std::size_t>(i));
}
}  // namespace detail

/// Erosion: out[i] = min over the window of half-width `half`.
template <SampleBuffer In, SampleBuffer Out>
void erode(const In& in, Out& out, std::size_t half, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    fixed::Sample best = fixed::kSampleMax;
    for (long k = -static_cast<long>(half); k <= static_cast<long>(half);
         ++k) {
      best = std::min(best,
                      detail::clamped_get(in, static_cast<long>(i) + k, n));
    }
    out.set(i, best);
  }
}

/// Dilation: out[i] = max over the window.
template <SampleBuffer In, SampleBuffer Out>
void dilate(const In& in, Out& out, std::size_t half, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    fixed::Sample best = fixed::kSampleMin;
    for (long k = -static_cast<long>(half); k <= static_cast<long>(half);
         ++k) {
      best = std::max(best,
                      detail::clamped_get(in, static_cast<long>(i) + k, n));
    }
    out.set(i, best);
  }
}

/// Opening = erosion then dilation (removes positive impulses).
template <SampleBuffer In, SampleBuffer Tmp, SampleBuffer Out>
void open(const In& in, Tmp& tmp, Out& out, std::size_t half, std::size_t n) {
  erode(in, tmp, half, n);
  dilate(tmp, out, half, n);
}

/// Closing = dilation then erosion (removes negative impulses).
template <SampleBuffer In, SampleBuffer Tmp, SampleBuffer Out>
void close(const In& in, Tmp& tmp, Out& out, std::size_t half, std::size_t n) {
  dilate(in, tmp, half, n);
  erode(tmp, out, half, n);
}

}  // namespace ulpdream::signal
