#pragma once
// 1-D grayscale morphology with flat structuring elements — the substrate
// of the paper's Morphological Filtering application (baseline-wander and
// impulse-noise removal on raw ECG, per Sec. II-4). All kernels are
// templated on SampleBuffer so the experiment versions run through the
// faulty memory. Border policy: clamp to edge (standard for morphology).

#include <algorithm>
#include <cstddef>

#include "ulpdream/fixed/sample.hpp"
#include "ulpdream/signal/buffer.hpp"

namespace ulpdream::signal {

namespace detail {
template <SampleBuffer B>
[[nodiscard]] fixed::Sample clamped_get(const B& b, long i, std::size_t n) {
  if (i < 0) i = 0;
  if (i >= static_cast<long>(n)) i = static_cast<long>(n) - 1;
  return b.get(static_cast<std::size_t>(i));
}

/// Shared min/max filter core. Interior windows [i - half, i + half] are
/// contiguous and fetched with one block read; border windows (clamped
/// replication) fall back to the scalar path, which touches exactly the
/// same addresses the clamp dictates. Outputs are staged and flushed in
/// kWindowChunk blocks, so `in` and `out` must be distinct buffers.
template <bool kMax, SampleBuffer In, SampleBuffer Out>
void minmax_filter(const In& in, Out& out, std::size_t half, std::size_t n) {
  const std::size_t width = 2 * half + 1;
  fixed::Sample window[kWindowChunk];
  ChunkedWriter staged(out, 0);
  for (std::size_t i = 0; i < n; ++i) {
    fixed::Sample best = kMax ? fixed::kSampleMin : fixed::kSampleMax;
    if (width <= kWindowChunk && i >= half && i + half < n) {
      read_window(in, i - half, std::span<fixed::Sample>(window, width));
      for (std::size_t k = 0; k < width; ++k) {
        best = kMax ? std::max(best, window[k]) : std::min(best, window[k]);
      }
    } else {
      for (long k = -static_cast<long>(half); k <= static_cast<long>(half);
           ++k) {
        const fixed::Sample s = clamped_get(in, static_cast<long>(i) + k, n);
        best = kMax ? std::max(best, s) : std::min(best, s);
      }
    }
    staged.push(best);
  }
  staged.flush();
}
}  // namespace detail

/// Erosion: out[i] = min over the window of half-width `half`. `out` must
/// be a distinct buffer from `in`.
template <SampleBuffer In, SampleBuffer Out>
void erode(const In& in, Out& out, std::size_t half, std::size_t n) {
  detail::minmax_filter<false>(in, out, half, n);
}

/// Dilation: out[i] = max over the window. `out` must be distinct from
/// `in`.
template <SampleBuffer In, SampleBuffer Out>
void dilate(const In& in, Out& out, std::size_t half, std::size_t n) {
  detail::minmax_filter<true>(in, out, half, n);
}

/// Opening = erosion then dilation (removes positive impulses).
template <SampleBuffer In, SampleBuffer Tmp, SampleBuffer Out>
void open(const In& in, Tmp& tmp, Out& out, std::size_t half, std::size_t n) {
  erode(in, tmp, half, n);
  dilate(tmp, out, half, n);
}

/// Closing = dilation then erosion (removes negative impulses).
template <SampleBuffer In, SampleBuffer Tmp, SampleBuffer Out>
void close(const In& in, Tmp& tmp, Out& out, std::size_t half, std::size_t n) {
  dilate(in, tmp, half, n);
  erode(tmp, out, half, n);
}

}  // namespace ulpdream::signal
