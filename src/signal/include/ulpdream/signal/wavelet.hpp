#pragma once
// Discrete Wavelet Transform substrate. The paper's DWT application (and
// the delineator built on it) performs several scales of low-pass /
// high-pass filtering; commercial WBSN firmware typically uses short
// Daubechies filters in fixed point. We provide Haar, db2 and db4 banks,
// decimated multi-level analysis/synthesis, and the undecimated (a-trous)
// transform used by the delineator (translation invariance matters for
// fiducial-point localization).

#include <cstddef>
#include <string>
#include <vector>

#include "ulpdream/fixed/fixed_point.hpp"
#include "ulpdream/fixed/sample.hpp"
#include "ulpdream/signal/buffer.hpp"
#include "ulpdream/signal/fir.hpp"

namespace ulpdream::signal {

enum class WaveletFamily { kHaar, kDb2, kDb4 };

/// Analysis/synthesis filter quadruple in double precision (orthogonal
/// banks: synthesis filters are time-reversed analysis filters).
struct WaveletBank {
  std::string name;
  std::vector<double> lo_d;  ///< analysis low-pass
  std::vector<double> hi_d;  ///< analysis high-pass
  std::vector<double> lo_r;  ///< synthesis low-pass
  std::vector<double> hi_r;  ///< synthesis high-pass
};

[[nodiscard]] const WaveletBank& wavelet_bank(WaveletFamily family);

/// Q1.15-quantized analysis pair for the fixed-point kernels.
struct FixedBank {
  TapVec lo;
  TapVec hi;
};
[[nodiscard]] FixedBank fixed_bank(WaveletFamily family);

/// One decimated analysis level: from n input samples produce n/2 approx
/// and n/2 detail coefficients (n must be even). Periodic extension.
/// Kernel scales by 1/2 overall (Q15 banks already embed 1/sqrt2 per tap
/// pair) so the fixed-point dynamic range never grows across levels.
///
/// Batched data path: each lifting step's tap window is contiguous except
/// at the periodic wrap, so interior windows are fetched with one block
/// read, and output coefficients are staged and flushed in kWindowChunk
/// blocks. The input must be a different buffer than approx/detail (the
/// staging reorders reads relative to writes); the access trace — which
/// addresses, how often — is unchanged.
template <SampleBuffer In, SampleBuffer OutA, SampleBuffer OutD>
void dwt_level(const In& in, std::size_t n, const FixedBank& bank, OutA& approx,
               OutD& detail, std::size_t approx_off = 0,
               std::size_t detail_off = 0) {
  const std::size_t half = n / 2;
  const std::size_t taps = bank.lo.size();
  constexpr std::size_t kMaxTaps = 16;  // db4 uses 8
  fixed::Sample window[kMaxTaps];
  ChunkedWriter approx_out(approx, approx_off);
  ChunkedWriter detail_out(detail, detail_off);
  for (std::size_t i = 0; i < half; ++i) {
    std::int64_t acc_lo = 0;
    std::int64_t acc_hi = 0;
    if (taps <= kMaxTaps && 2 * i + taps <= n) {
      read_window(in, 2 * i, std::span<fixed::Sample>(window, taps));
      for (std::size_t k = 0; k < taps; ++k) {
        acc_lo += fixed::mul_q15(window[k], bank.lo[k]);
        acc_hi += fixed::mul_q15(window[k], bank.hi[k]);
      }
    } else {
      for (std::size_t k = 0; k < taps; ++k) {
        const std::size_t src = (2 * i + k) % n;  // periodic extension
        const fixed::Sample s = in.get(src);
        acc_lo += fixed::mul_q15(s, bank.lo[k]);
        acc_hi += fixed::mul_q15(s, bank.hi[k]);
      }
    }
    approx_out.push(fixed::narrow_q15(acc_lo));
    detail_out.push(fixed::narrow_q15(acc_hi));
  }
  approx_out.flush();
  detail_out.flush();
}

/// Multi-level decimated DWT laid out in-place style:
/// out = [approx_L | detail_L | detail_{L-1} | ... | detail_1], total n.
/// `scratch` must hold at least n samples. Returns the coefficient layout
/// (offset, length) per band, approx first.
struct BandLayout {
  std::size_t offset;
  std::size_t length;
};

template <SampleBuffer In, SampleBuffer Out, SampleBuffer Scratch>
std::vector<BandLayout> dwt_multi(const In& in, std::size_t n,
                                  const FixedBank& bank, std::size_t levels,
                                  Out& out, Scratch& scratch) {
  // Copy input into scratch as the level-0 approximation. The level kernel
  // reads `scratch` with periodic extension, so it must never write into
  // its own input: each level writes approx+detail into `out`, then the
  // approx half is copied back to scratch for the next level. Copies run
  // on the block path (distinct buffers throughout).
  copy_window(in, 0, scratch, 0, n);
  std::vector<BandLayout> bands;
  std::size_t len = n;
  for (std::size_t lv = 0; lv < levels && len >= 2; ++lv) {
    const std::size_t half = len / 2;
    dwt_level(scratch, len, bank, out, out, /*approx_off=*/0,
              /*detail_off=*/half);
    copy_window(out, 0, scratch, 0, half);
    bands.push_back({half, half});
    len = half;
  }
  // out[0, len) already holds the final approximation from the last level
  // (or, with zero levels run, copy the input through).
  if (bands.empty()) {
    copy_window(in, 0, out, 0, n);
  }
  std::vector<BandLayout> layout;
  layout.push_back({0, len});  // approx
  for (auto it = bands.rbegin(); it != bands.rend(); ++it) layout.push_back(*it);
  return layout;
}

namespace detail {

/// Shared a-trous filtering core for swt_detail/swt_approx. Interior
/// windows at hole == 1 are contiguous and fetched with one block read;
/// outputs are staged and flushed in kWindowChunk blocks, so `in` and
/// `out` must be distinct buffers. Access trace matches the scalar loop.
template <SampleBuffer In, SampleBuffer Out>
void swt_filter(const In& in, std::size_t n, const TapVec& taps_q15,
                std::size_t scale, Out& out) {
  const std::size_t hole = std::size_t{1} << (scale - 1);
  const std::size_t taps = taps_q15.size();
  const long center = static_cast<long>((taps / 2) * hole);
  constexpr std::size_t kMaxTaps = 16;
  fixed::Sample window[kMaxTaps];
  ChunkedWriter staged(out, 0);
  for (std::size_t i = 0; i < n; ++i) {
    std::int64_t acc = 0;
    const long start = static_cast<long>(i) - center;
    if (hole == 1 && taps <= kMaxTaps && start >= 0 &&
        static_cast<std::size_t>(start) + taps <= n) {
      read_window(in, static_cast<std::size_t>(start),
                  std::span<fixed::Sample>(window, taps));
      for (std::size_t k = 0; k < taps; ++k) {
        acc += fixed::mul_q15(window[k], taps_q15[k]);
      }
    } else {
      for (std::size_t k = 0; k < taps; ++k) {
        const long src = static_cast<long>(i) +
                         static_cast<long>(k * hole) - center;
        acc += fixed::mul_q15(in.get(reflect_index(src, n)), taps_q15[k]);
      }
    }
    staged.push(fixed::narrow_q15(acc));
  }
  staged.flush();
}

}  // namespace detail

/// Undecimated (a-trous) detail at a given dyadic scale: filters with holes
/// of 2^(scale-1). Used by the wavelet delineator; output has length n and
/// must be a distinct buffer from the input.
template <SampleBuffer In, SampleBuffer Out>
void swt_detail(const In& in, std::size_t n, const FixedBank& bank,
                std::size_t scale, Out& out) {
  detail::swt_filter(in, n, bank.hi, scale, out);
}

/// Undecimated approximation at a given scale (low-pass with holes).
template <SampleBuffer In, SampleBuffer Out>
void swt_approx(const In& in, std::size_t n, const FixedBank& bank,
                std::size_t scale, Out& out) {
  detail::swt_filter(in, n, bank.lo, scale, out);
}

/// Double-precision decimated DWT (analysis) for the CS sparsity basis and
/// for golden tests of the fixed-point kernels. Returns n coefficients with
/// the same [approx | details...] layout.
[[nodiscard]] std::vector<double> dwt_multi_f64(const std::vector<double>& in,
                                                WaveletFamily family,
                                                std::size_t levels);

/// Double-precision inverse of dwt_multi_f64.
[[nodiscard]] std::vector<double> idwt_multi_f64(
    const std::vector<double>& coeffs, WaveletFamily family,
    std::size_t levels);

}  // namespace ulpdream::signal
