#pragma once
// FIR filtering: coefficient design (windowed-sinc low/high-pass) plus the
// fixed-point convolution kernel templated on SampleBuffer. Border policy
// is symmetric extension, the usual choice in biosignal front-ends because
// it avoids step transients at window edges.

#include <cstddef>
#include <vector>

#include "ulpdream/fixed/fixed_point.hpp"
#include "ulpdream/fixed/sample.hpp"
#include "ulpdream/signal/buffer.hpp"

namespace ulpdream::signal {

/// Q1.15 coefficient taps.
using TapVec = std::vector<fixed::Q15>;

/// Designs a low-pass windowed-sinc (Hamming) FIR.
/// `cutoff` is the normalized cutoff in (0, 0.5) (fraction of sample rate),
/// `taps` must be odd for a symmetric (linear-phase) filter.
[[nodiscard]] TapVec design_lowpass(double cutoff, std::size_t taps);

/// High-pass by spectral inversion of the matching low-pass.
[[nodiscard]] TapVec design_highpass(double cutoff, std::size_t taps);

/// Quantizes double taps to Q1.15, normalizing DC gain to <= 1 so the sum
/// of taps cannot overflow the coefficient format.
[[nodiscard]] TapVec quantize_taps(const std::vector<double>& taps);

/// Symmetric-extension index mapping: reflects i into [0, n).
[[nodiscard]] constexpr std::size_t reflect_index(long i, std::size_t n) {
  const long len = static_cast<long>(n);
  if (len <= 1) return 0;
  long idx = i;
  // Mirror without repeating the edge sample (whole-point symmetry),
  // applied iteratively for far out-of-range indices.
  while (idx < 0 || idx >= len) {
    if (idx < 0) idx = -idx;
    if (idx >= len) idx = 2 * (len - 1) - idx;
  }
  return static_cast<std::size_t>(idx);
}

/// out[i] = sum_k taps[k] * in[i - k + center], fixed point with 64-bit
/// accumulation and saturating narrowing. `in` and `out` may not alias.
template <SampleBuffer In, SampleBuffer Out>
void fir_apply(const In& in, Out& out, const TapVec& taps, std::size_t n) {
  const long center = static_cast<long>(taps.size() / 2);
  for (std::size_t i = 0; i < n; ++i) {
    std::int64_t acc = 0;
    for (std::size_t k = 0; k < taps.size(); ++k) {
      const long src = static_cast<long>(i) - static_cast<long>(k) + center;
      const fixed::Sample s = in.get(reflect_index(src, n));
      acc += fixed::mul_q15(s, taps[k]);
    }
    out.set(i, fixed::narrow_q15(acc));
  }
}

/// Moving-average smoother (box filter) used by the delineator's baseline
/// estimate; width w, same border policy.
template <SampleBuffer In, SampleBuffer Out>
void moving_average(const In& in, Out& out, std::size_t w, std::size_t n) {
  if (w == 0) w = 1;
  const long half = static_cast<long>(w / 2);
  for (std::size_t i = 0; i < n; ++i) {
    std::int64_t acc = 0;
    for (long k = -half; k <= half; ++k) {
      acc += in.get(reflect_index(static_cast<long>(i) + k, n));
    }
    out.set(i, fixed::saturate_sample(acc / static_cast<long>(2 * half + 1)));
  }
}

}  // namespace ulpdream::signal
