#include "ulpdream/cs/omp.hpp"

#include <cmath>
#include <stdexcept>

#include "ulpdream/linalg/solve.hpp"

namespace ulpdream::cs {

OmpResult omp_solve(const linalg::Matrix& a, const std::vector<double>& y,
                    const OmpConfig& cfg) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  if (y.size() != m) throw std::invalid_argument("omp_solve: size mismatch");

  OmpResult result;
  result.solution.assign(n, 0.0);
  std::vector<double> residual = y;
  const double y_norm = linalg::norm2(y);
  if (y_norm == 0.0) return result;

  std::vector<bool> in_support(n, false);
  // Columns of the active sub-dictionary, gathered incrementally.
  linalg::Matrix active(m, 0);
  std::vector<double> coeffs;

  for (std::size_t it = 0; it < cfg.max_atoms && it < m; ++it) {
    // Correlation step: strongest remaining atom.
    const std::vector<double> corr = a.multiply_transposed(residual);
    std::size_t best = n;
    double best_mag = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
      if (in_support[c]) continue;
      const double mag = std::fabs(corr[c]);
      if (mag > best_mag) {
        best_mag = mag;
        best = c;
      }
    }
    if (best == n || best_mag < 1e-14) break;
    in_support[best] = true;
    result.support.push_back(best);

    // Grow the active dictionary by the chosen column.
    linalg::Matrix grown(m, result.support.size());
    for (std::size_t c = 0; c + 1 < result.support.size(); ++c) {
      for (std::size_t r = 0; r < m; ++r) grown.at(r, c) = active.at(r, c);
    }
    {
      const std::vector<double> col = a.column(best);
      for (std::size_t r = 0; r < m; ++r) {
        grown.at(r, result.support.size() - 1) = col[r];
      }
    }
    active = std::move(grown);

    // Least squares on the active set.
    coeffs = linalg::least_squares(active, y);

    // Residual update.
    residual = y;
    for (std::size_t c = 0; c < result.support.size(); ++c) {
      for (std::size_t r = 0; r < m; ++r) {
        residual[r] -= coeffs[c] * active.at(r, c);
      }
    }
    result.iterations = it + 1;
    result.residual_norm = linalg::norm2(residual);
    if (result.residual_norm / y_norm < cfg.residual_tol) break;
  }

  for (std::size_t c = 0; c < result.support.size(); ++c) {
    result.solution[result.support[c]] = coeffs.empty() ? 0.0 : coeffs[c];
  }
  return result;
}

}  // namespace ulpdream::cs
