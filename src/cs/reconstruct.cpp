#include "ulpdream/cs/reconstruct.hpp"

#include <stdexcept>

namespace ulpdream::cs {

CsReconstructor::CsReconstructor(const CsConfig& cfg)
    : cfg_(cfg),
      phi_(make_sparse_phi(cfg.block_m, cfg.block_n, cfg.ones_per_column,
                           cfg.phi_seed)),
      dictionary_(cfg.block_m, cfg.block_n) {
  if (cfg.block_m == 0 || cfg.block_m > cfg.block_n) {
    throw std::invalid_argument("CsReconstructor: need 0 < m <= n");
  }
  // Column j of A is Phi applied to the j-th wavelet synthesis atom.
  const linalg::Matrix dense_phi = phi_.to_dense();
  std::vector<double> unit(cfg.block_n, 0.0);
  for (std::size_t j = 0; j < cfg.block_n; ++j) {
    unit[j] = 1.0;
    const std::vector<double> atom =
        signal::idwt_multi_f64(unit, cfg.family, cfg.dwt_levels);
    const std::vector<double> projected = dense_phi.multiply(atom);
    for (std::size_t r = 0; r < cfg.block_m; ++r) {
      dictionary_.at(r, j) = projected[r];
    }
    unit[j] = 0.0;
  }
}

std::vector<double> CsReconstructor::reconstruct(
    const std::vector<double>& y) const {
  if (y.size() != cfg_.block_m) {
    throw std::invalid_argument("CsReconstructor::reconstruct: bad y size");
  }
  const OmpResult sparse = omp_solve(dictionary_, y, cfg_.omp);
  return signal::idwt_multi_f64(sparse.solution, cfg_.family,
                                cfg_.dwt_levels);
}

}  // namespace ulpdream::cs
