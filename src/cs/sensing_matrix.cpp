#include "ulpdream/cs/sensing_matrix.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace ulpdream::cs {

linalg::Matrix sparse_binary_matrix(std::size_t m, std::size_t n,
                                    int ones_per_column, std::uint64_t seed) {
  if (ones_per_column <= 0 ||
      static_cast<std::size_t>(ones_per_column) > m) {
    throw std::invalid_argument("sparse_binary_matrix: bad ones_per_column");
  }
  util::Xoshiro256 rng(seed);
  linalg::Matrix phi(m, n);
  const double value = 1.0 / std::sqrt(static_cast<double>(ones_per_column));
  std::vector<std::size_t> rows(m);
  for (std::size_t c = 0; c < n; ++c) {
    // Partial Fisher-Yates to pick `ones_per_column` distinct rows.
    for (std::size_t i = 0; i < m; ++i) rows[i] = i;
    for (int k = 0; k < ones_per_column; ++k) {
      const std::size_t j =
          static_cast<std::size_t>(k) +
          static_cast<std::size_t>(rng.bounded(m - static_cast<std::size_t>(k)));
      std::swap(rows[static_cast<std::size_t>(k)], rows[j]);
      phi.at(rows[static_cast<std::size_t>(k)], c) = value;
    }
  }
  return phi;
}

linalg::Matrix SparsePhi::to_dense() const {
  linalg::Matrix phi(m, n);
  const double value = 1.0 / static_cast<double>(d);
  for (std::size_t c = 0; c < n; ++c) {
    for (int k = 0; k < d; ++k) {
      phi.at(rows[c * static_cast<std::size_t>(d) +
                  static_cast<std::size_t>(k)],
             c) = value;
    }
  }
  return phi;
}

SparsePhi make_sparse_phi(std::size_t m, std::size_t n, int d,
                          std::uint64_t seed) {
  if (d <= 0 || (d & (d - 1)) != 0 || static_cast<std::size_t>(d) > m) {
    throw std::invalid_argument(
        "make_sparse_phi: d must be a power of two <= m");
  }
  util::Xoshiro256 rng(seed);
  SparsePhi phi;
  phi.m = m;
  phi.n = n;
  phi.d = d;
  phi.rows.resize(n * static_cast<std::size_t>(d));
  std::vector<std::size_t> pool(m);
  for (std::size_t c = 0; c < n; ++c) {
    for (std::size_t i = 0; i < m; ++i) pool[i] = i;
    for (int k = 0; k < d; ++k) {
      const std::size_t j =
          static_cast<std::size_t>(k) +
          static_cast<std::size_t>(rng.bounded(m - static_cast<std::size_t>(k)));
      std::swap(pool[static_cast<std::size_t>(k)], pool[j]);
      phi.rows[c * static_cast<std::size_t>(d) + static_cast<std::size_t>(k)] =
          static_cast<std::uint32_t>(pool[static_cast<std::size_t>(k)]);
    }
  }
  return phi;
}

linalg::Matrix bernoulli_matrix(std::size_t m, std::size_t n,
                                std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  linalg::Matrix phi(m, n);
  const double value = 1.0 / std::sqrt(static_cast<double>(m));
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      phi.at(r, c) = rng.bernoulli(0.5) ? value : -value;
    }
  }
  return phi;
}

}  // namespace ulpdream::cs
