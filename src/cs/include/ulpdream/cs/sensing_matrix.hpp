#pragma once
// Sensing matrices for compressed sensing of ECG (paper Sec. II-3, after
// Mamaghanian et al.). The node-side compressor must be cheap: the
// standard choice is a sparse binary matrix (d ones per column, scaled),
// so y = Phi * x reduces to d additions per input sample — feasible on a
// ULP microcontroller in fixed point. A dense Bernoulli +/-1 variant is
// provided for comparison/testing.

#include <cstdint>
#include <vector>

#include "ulpdream/linalg/matrix.hpp"
#include "ulpdream/util/rng.hpp"

namespace ulpdream::cs {

/// Sparse binary Phi of size m x n with exactly `ones_per_column` ones per
/// column (placed uniformly without replacement), entries scaled by
/// 1/sqrt(ones_per_column) so columns have unit norm.
[[nodiscard]] linalg::Matrix sparse_binary_matrix(std::size_t m,
                                                  std::size_t n,
                                                  int ones_per_column,
                                                  std::uint64_t seed);

/// Dense Bernoulli +/- 1/sqrt(m) matrix.
[[nodiscard]] linalg::Matrix bernoulli_matrix(std::size_t m, std::size_t n,
                                              std::uint64_t seed);

/// Node-side representation of a sparse binary Phi: for each input column
/// (signal sample index), the `d` measurement rows it adds into. The
/// embedded compressor computes y_r = (sum of selected x_c) / d using an
/// integer shift (d must be a power of two), so the matching dense matrix
/// has entries 1/d.
struct SparsePhi {
  std::size_t m = 0;  ///< measurements
  std::size_t n = 0;  ///< input length
  int d = 4;          ///< ones per column (power of two)
  /// Row indices, d consecutive entries per column: rows[c*d + k].
  std::vector<std::uint32_t> rows;

  /// Dense equivalent with entries 1/d (reconstruction-side view).
  [[nodiscard]] linalg::Matrix to_dense() const;
};

[[nodiscard]] SparsePhi make_sparse_phi(std::size_t m, std::size_t n, int d,
                                        std::uint64_t seed);

}  // namespace ulpdream::cs
