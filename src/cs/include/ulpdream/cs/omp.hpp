#pragma once
// Orthogonal Matching Pursuit — the sparse-recovery solver used by the
// base-station side of the CS pipeline. Solves
//     min ||alpha||_0  s.t.  y ~= A * alpha
// greedily: pick the column most correlated with the residual, re-solve
// the least-squares on the active set, repeat until the residual or the
// iteration budget is exhausted.

#include <cstddef>
#include <vector>

#include "ulpdream/linalg/matrix.hpp"

namespace ulpdream::cs {

struct OmpConfig {
  std::size_t max_atoms = 64;        ///< sparsity budget
  double residual_tol = 1e-6;        ///< stop when ||r||/||y|| drops below
};

struct OmpResult {
  std::vector<double> solution;      ///< full-length alpha (zeros off-support)
  std::vector<std::size_t> support;  ///< chosen atom indices in pick order
  double residual_norm = 0.0;
  std::size_t iterations = 0;
};

/// Runs OMP on the (m x n) dictionary `a` and measurement `y` (length m).
[[nodiscard]] OmpResult omp_solve(const linalg::Matrix& a,
                                  const std::vector<double>& y,
                                  const OmpConfig& cfg);

}  // namespace ulpdream::cs
