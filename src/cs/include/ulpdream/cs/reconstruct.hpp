#pragma once
// Base-station side of the CS pipeline: reconstructs an ECG block from its
// compressed measurements by OMP in a wavelet sparsity basis. The node
// compresses with a sparse binary Phi (see sensing_matrix.hpp); this class
// owns the matching dense dictionary A = Phi * Psi (Psi = inverse DWT
// basis) built once per configuration.
//
// Note on quality ceilings: CS at 50% compression is lossy by
// construction, so even an error-free execution reconstructs with finite
// SNR — the effect the paper points out for Fig. 4's dashed CS line.

#include <cstdint>
#include <vector>

#include "ulpdream/cs/omp.hpp"
#include "ulpdream/cs/sensing_matrix.hpp"
#include "ulpdream/signal/wavelet.hpp"

namespace ulpdream::cs {

struct CsConfig {
  std::size_t block_n = 256;   ///< input block length
  std::size_t block_m = 128;   ///< measurements (50% compression)
  int ones_per_column = 4;     ///< sparse Phi density (power of two)
  std::uint64_t phi_seed = 0xC5C5C5C5ULL;
  signal::WaveletFamily family = signal::WaveletFamily::kDb4;
  std::size_t dwt_levels = 5;
  OmpConfig omp{};
};

class CsReconstructor {
 public:
  explicit CsReconstructor(const CsConfig& cfg);

  [[nodiscard]] const CsConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const SparsePhi& phi() const noexcept { return phi_; }

  /// Reconstructs one block: y (length m, measurement domain) -> x-hat
  /// (length n, signal domain).
  [[nodiscard]] std::vector<double> reconstruct(
      const std::vector<double>& y) const;

 private:
  CsConfig cfg_;
  SparsePhi phi_;
  linalg::Matrix dictionary_;  ///< A = Phi * Psi, (m x n)
};

}  // namespace ulpdream::cs
