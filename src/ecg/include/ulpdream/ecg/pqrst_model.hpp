#pragma once
// Per-beat ECG morphology as a sum of Gaussian bumps, one per wave
// (P, Q, R, S, T) — the time-domain reduction of the McSharry dynamic
// model. This is the MIT-BIH substitute's morphological core: it produces
// physiologically plausible PQRST complexes whose wave positions are known
// exactly, which also gives the delineator ground truth for free.

#include <array>
#include <cstddef>
#include <vector>

namespace ulpdream::ecg {

/// One Gaussian wave component. Center is expressed as a fraction of the
/// RR interval (0 = this beat's onset), width as a fraction as well.
struct Wave {
  double amplitude_mv;
  double center_frac;
  double width_frac;
};

/// Morphology = the five named waves in order P, Q, R, S, T.
struct BeatMorphology {
  std::array<Wave, 5> waves;

  /// Millivolt value of the beat waveform at `t_frac` in [0, 1).
  [[nodiscard]] double value_at(double t_frac) const noexcept;
};

/// Textbook-normal adult morphology (lead II flavored).
[[nodiscard]] BeatMorphology normal_morphology();

/// Premature-ventricular-contraction morphology: absent P, wide and tall
/// QRS with inverted T.
[[nodiscard]] BeatMorphology pvc_morphology();

/// Morphology with ST-segment elevation (ischemia-like).
[[nodiscard]] BeatMorphology st_elevation_morphology();

/// Morphology with fibrillatory baseline instead of a P wave.
[[nodiscard]] BeatMorphology afib_morphology();

/// Sampled waveform of a single beat of `samples` points (one RR interval).
[[nodiscard]] std::vector<double> render_beat(const BeatMorphology& m,
                                              std::size_t samples);

}  // namespace ulpdream::ecg
