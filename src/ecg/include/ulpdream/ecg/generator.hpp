#pragma once
// Full synthetic ECG generator: rhythm + morphology + noise + ADC, with
// exact ground-truth fiducials. Substitutes the MIT-BIH Arrhythmia traces
// used by the paper (see DESIGN.md, substitution table).

#include <cstdint>
#include <string>
#include <vector>

#include "ulpdream/ecg/noise.hpp"
#include "ulpdream/ecg/pqrst_model.hpp"
#include "ulpdream/ecg/rhythm.hpp"
#include "ulpdream/fixed/sample.hpp"
#include "ulpdream/metrics/delineation_score.hpp"

namespace ulpdream::ecg {

enum class Pathology {
  kNormalSinus,
  kBradycardia,
  kTachycardia,
  kPvcBigeminy,     ///< frequent premature ventricular beats
  kAtrialFib,       ///< irregular rhythm, absent P waves
  kStElevation,
};

[[nodiscard]] const char* pathology_name(Pathology p);

struct GeneratorConfig {
  double fs_hz = 250.0;
  double duration_s = 8.2;          ///< a bit more than 2048 samples @250 Hz
  Pathology pathology = Pathology::kNormalSinus;
  NoiseParams noise{};
  /// DC offset applied at the front-end, in mV. The paper observes that
  /// most samples in its traces are negative (Sec. III); a negative
  /// electrode offset reproduces that property.
  double dc_offset_mv = -0.45;
  /// Front-end full scale. MIT-BIH records are 11-bit codes stored in
  /// 16-bit words (the paper's "samples of 16-bits"), i.e. a ~1.2 mV QRS
  /// occupies ~2000 codes and every word carries a long constant-MSB
  /// run — the property DREAM's mask exploits (Sec. IV). 20 mV full scale
  /// reproduces that code density.
  double adc_full_scale_mv = 20.0;
  std::uint64_t seed = 1;
};

/// A generated record: quantized samples, metadata and ground truth.
struct Record {
  std::string name;
  double fs_hz = 250.0;
  fixed::SampleVec samples;
  std::vector<double> waveform_mv;          ///< pre-quantization waveform
  metrics::FiducialList truth;              ///< exact wave locations
  std::vector<std::size_t> r_locations;     ///< R peaks (sample indices)
};

/// Generates a complete record per the configuration.
[[nodiscard]] Record generate_record(const GeneratorConfig& cfg);

}  // namespace ulpdream::ecg
