#pragma once
// MIT-BIH-style record database: a reproducible collection of synthetic
// records spanning the pathology presets. The paper averages each Fig. 2
// point over "different ECG signals with different pathologies"; this is
// the corpus those averages run over.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ulpdream/ecg/generator.hpp"

namespace ulpdream::ecg {

struct DatabaseConfig {
  std::uint64_t seed = 42;
  std::size_t records_per_pathology = 2;
  double fs_hz = 250.0;
  double duration_s = 8.2;
};

/// Generates the full corpus: records_per_pathology records for each of the
/// six pathology presets, each with an independent derived seed.
[[nodiscard]] std::vector<Record> make_database(const DatabaseConfig& cfg);

/// Convenience: a single default normal-sinus record (quickstart/demos).
[[nodiscard]] Record make_default_record(std::uint64_t seed = 7);

}  // namespace ulpdream::ecg
