#pragma once
// Additive noise models for realistic ECG acquisition: baseline wander
// (electrode/respiration drift), powerline interference and broadband EMG.
// These are the degradations the paper's Morphological Filtering case study
// exists to clean (Sec. II-4).

#include <cstddef>
#include <vector>

#include "ulpdream/util/rng.hpp"

namespace ulpdream::ecg {

struct NoiseParams {
  double baseline_wander_mv = 0.10;  ///< peak amplitude of drift
  double baseline_freq_hz = 0.30;    ///< dominant drift frequency
  double powerline_mv = 0.03;        ///< 50 Hz interference amplitude
  double powerline_freq_hz = 50.0;
  double emg_std_mv = 0.02;          ///< white muscle-noise sigma
};

/// Adds all configured noise components, in millivolts, to `signal_mv`
/// sampled at `fs` Hz. Phases are randomized from `rng`.
void add_noise(std::vector<double>& signal_mv, double fs,
               const NoiseParams& p, util::Xoshiro256& rng);

}  // namespace ulpdream::ecg
