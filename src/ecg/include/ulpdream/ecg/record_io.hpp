#pragma once
// Record import/export. The synthetic generator substitutes MIT-BIH, but
// users with PhysioNet access can export a record to CSV (rdsamp-style:
// one sample value per line, optional "index,value" form) and run every
// experiment in this library on real traces.

#include <string>

#include "ulpdream/ecg/generator.hpp"

namespace ulpdream::ecg {

/// Writes "index,value" CSV plus a one-line header. Returns false on I/O
/// failure.
bool save_record_csv(const Record& record, const std::string& path);

/// Loads a record from CSV. Accepts either "value" or "index,value" rows;
/// lines starting with '#' and a leading header row are skipped. Values
/// are clamped to the 16-bit sample range. Throws std::runtime_error when
/// the file cannot be opened or contains no samples.
[[nodiscard]] Record load_record_csv(const std::string& path,
                                     double fs_hz = 250.0,
                                     const std::string& name = "imported");

}  // namespace ulpdream::ecg
