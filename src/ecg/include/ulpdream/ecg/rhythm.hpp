#pragma once
// RR-interval (tachogram) generation: mean heart rate, respiratory sinus
// arrhythmia, white HRV jitter, and rhythm pathologies (AF irregularity,
// premature beats).

#include <cstddef>
#include <vector>

#include "ulpdream/util/rng.hpp"

namespace ulpdream::ecg {

struct RhythmParams {
  double mean_hr_bpm = 72.0;
  double hrv_std_frac = 0.03;       ///< white jitter, fraction of mean RR
  double rsa_depth_frac = 0.04;     ///< respiratory modulation depth
  double resp_rate_hz = 0.25;       ///< ~15 breaths/min
  double afib_irregularity = 0.0;   ///< 0 = regular; 0.25 = AF-like
  double pvc_probability = 0.0;     ///< chance a beat is premature+PVC
};

struct BeatEvent {
  double onset_s;      ///< beat onset time in seconds
  double rr_s;         ///< this beat's RR interval
  bool is_pvc;         ///< premature ventricular beat
};

/// Generates beats covering at least `duration_s` seconds.
[[nodiscard]] std::vector<BeatEvent> generate_rhythm(const RhythmParams& p,
                                                     double duration_s,
                                                     util::Xoshiro256& rng);

}  // namespace ulpdream::ecg
