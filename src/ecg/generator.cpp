#include "ulpdream/ecg/generator.hpp"

#include <cmath>
#include <numbers>

namespace ulpdream::ecg {

const char* pathology_name(Pathology p) {
  switch (p) {
    case Pathology::kNormalSinus:
      return "normal_sinus";
    case Pathology::kBradycardia:
      return "bradycardia";
    case Pathology::kTachycardia:
      return "tachycardia";
    case Pathology::kPvcBigeminy:
      return "pvc";
    case Pathology::kAtrialFib:
      return "afib";
    case Pathology::kStElevation:
      return "st_elevation";
  }
  return "unknown";
}

namespace {

RhythmParams rhythm_for(Pathology p) {
  RhythmParams r;
  switch (p) {
    case Pathology::kNormalSinus:
      break;
    case Pathology::kBradycardia:
      r.mean_hr_bpm = 45.0;
      break;
    case Pathology::kTachycardia:
      r.mean_hr_bpm = 135.0;
      r.hrv_std_frac = 0.015;
      break;
    case Pathology::kPvcBigeminy:
      r.pvc_probability = 0.25;
      break;
    case Pathology::kAtrialFib:
      r.afib_irregularity = 0.25;
      r.rsa_depth_frac = 0.0;
      break;
    case Pathology::kStElevation:
      r.mean_hr_bpm = 88.0;
      break;
  }
  return r;
}

BeatMorphology morphology_for(Pathology p, bool pvc_beat) {
  if (pvc_beat) return pvc_morphology();
  switch (p) {
    case Pathology::kAtrialFib:
      return afib_morphology();
    case Pathology::kStElevation:
      return st_elevation_morphology();
    default:
      return normal_morphology();
  }
}

}  // namespace

Record generate_record(const GeneratorConfig& cfg) {
  util::Xoshiro256 rng(cfg.seed);
  Record rec;
  rec.name = std::string(pathology_name(cfg.pathology)) + "_s" +
             std::to_string(cfg.seed);
  rec.fs_hz = cfg.fs_hz;

  const auto n =
      static_cast<std::size_t>(cfg.duration_s * cfg.fs_hz);
  rec.waveform_mv.assign(n, cfg.dc_offset_mv);

  const RhythmParams rhythm = rhythm_for(cfg.pathology);
  const std::vector<BeatEvent> beats =
      generate_rhythm(rhythm, cfg.duration_s, rng);

  for (const BeatEvent& beat : beats) {
    const BeatMorphology morph =
        morphology_for(cfg.pathology, beat.is_pvc);
    const auto start = static_cast<long>(beat.onset_s * cfg.fs_hz);
    const auto len = static_cast<long>(beat.rr_s * cfg.fs_hz);
    if (len <= 0) continue;
    for (long k = 0; k < len; ++k) {
      const long idx = start + k;
      if (idx < 0 || idx >= static_cast<long>(n)) continue;
      rec.waveform_mv[static_cast<std::size_t>(idx)] +=
          morph.value_at(static_cast<double>(k) / static_cast<double>(len));
    }
    // Ground-truth fiducials at each wave's Gaussian center.
    static constexpr metrics::FiducialType kTypes[5] = {
        metrics::FiducialType::kP, metrics::FiducialType::kQ,
        metrics::FiducialType::kR, metrics::FiducialType::kS,
        metrics::FiducialType::kT};
    for (std::size_t w = 0; w < 5; ++w) {
      if (morph.waves[w].amplitude_mv == 0.0) continue;
      const long pos =
          start + static_cast<long>(morph.waves[w].center_frac *
                                    static_cast<double>(len));
      if (pos < 0 || pos >= static_cast<long>(n)) continue;
      rec.truth.push_back(
          {kTypes[w], static_cast<std::int32_t>(pos), 0});
      if (kTypes[w] == metrics::FiducialType::kR) {
        rec.r_locations.push_back(static_cast<std::size_t>(pos));
      }
    }
  }

  // AF: add fibrillatory baseline oscillation (4-8 Hz f-waves).
  if (cfg.pathology == Pathology::kAtrialFib) {
    const double f_wave_hz = rng.uniform(4.5, 7.5);
    const double phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
    for (std::size_t i = 0; i < n; ++i) {
      const double t = static_cast<double>(i) / cfg.fs_hz;
      rec.waveform_mv[i] +=
          0.05 * std::sin(2.0 * std::numbers::pi * f_wave_hz * t + phase);
    }
  }

  add_noise(rec.waveform_mv, cfg.fs_hz, cfg.noise, rng);

  const fixed::AdcModel adc{cfg.adc_full_scale_mv, 0.0};
  rec.samples = fixed::quantize_waveform(rec.waveform_mv, adc);

  // Fill fiducial amplitudes from the quantized signal.
  for (auto& f : rec.truth) {
    f.amplitude = rec.samples[static_cast<std::size_t>(f.position)];
  }
  return rec;
}

}  // namespace ulpdream::ecg
