#include "ulpdream/ecg/rhythm.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace ulpdream::ecg {

std::vector<BeatEvent> generate_rhythm(const RhythmParams& p,
                                       double duration_s,
                                       util::Xoshiro256& rng) {
  std::vector<BeatEvent> beats;
  const double mean_rr = 60.0 / p.mean_hr_bpm;
  double t = 0.0;
  bool this_is_pvc = false;
  while (t < duration_s) {
    double rr = mean_rr;
    // Respiratory sinus arrhythmia: sinusoidal modulation at breath rate.
    rr *= 1.0 + p.rsa_depth_frac *
                    std::sin(2.0 * std::numbers::pi * p.resp_rate_hz * t);
    // White HRV jitter.
    rr *= 1.0 + rng.gaussian(0.0, p.hrv_std_frac);
    // AF-like gross irregularity: heavy multiplicative uniform spread.
    if (p.afib_irregularity > 0.0) {
      rr *= 1.0 + rng.uniform(-p.afib_irregularity, p.afib_irregularity);
    }
    // Premature ventricular beats: the *coupling interval into* the PVC is
    // short, and the PVC is followed by a compensatory pause — the RR
    // signature heartbeat classifiers key on.
    bool next_is_pvc = false;
    if (p.pvc_probability > 0.0 && rng.bernoulli(p.pvc_probability)) {
      next_is_pvc = true;
      rr *= 0.70;  // shortened coupling into the upcoming premature beat
    }
    if (this_is_pvc) {
      rr *= 1.30;  // compensatory pause after the PVC
    }
    rr = std::clamp(rr, 0.3, 2.5);  // physiologic bounds (24-200 bpm)
    beats.push_back({t, rr, this_is_pvc});
    t += rr;
    this_is_pvc = next_is_pvc;
  }
  return beats;
}

}  // namespace ulpdream::ecg
