#include "ulpdream/ecg/record_io.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <stdexcept>

namespace ulpdream::ecg {

bool save_record_csv(const Record& record, const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  f << "# record=" << record.name << " fs_hz=" << record.fs_hz << '\n';
  f << "index,value\n";
  for (std::size_t i = 0; i < record.samples.size(); ++i) {
    f << i << ',' << record.samples[i] << '\n';
  }
  return static_cast<bool>(f);
}

Record load_record_csv(const std::string& path, double fs_hz,
                       const std::string& name) {
  std::ifstream f(path);
  if (!f) {
    throw std::runtime_error("load_record_csv: cannot open " + path);
  }
  Record rec;
  rec.name = name;
  rec.fs_hz = fs_hz;
  std::string line;
  while (std::getline(f, line)) {
    if (line.empty() || line[0] == '#') continue;
    // Skip a textual header row.
    bool has_alpha = false;
    for (const char c : line) {
      if (std::isalpha(static_cast<unsigned char>(c))) {
        has_alpha = true;
        break;
      }
    }
    if (has_alpha) continue;
    // "value" or "index,value": take the last comma-separated field.
    const auto comma = line.rfind(',');
    const std::string field =
        comma == std::string::npos ? line : line.substr(comma + 1);
    const long v = std::strtol(field.c_str(), nullptr, 10);
    rec.samples.push_back(fixed::saturate_sample(v));
  }
  if (rec.samples.empty()) {
    throw std::runtime_error("load_record_csv: no samples in " + path);
  }
  rec.waveform_mv.reserve(rec.samples.size());
  const fixed::AdcModel adc{};
  for (const auto s : rec.samples) {
    rec.waveform_mv.push_back(adc.to_mv(s));
  }
  return rec;
}

}  // namespace ulpdream::ecg
