#include "ulpdream/ecg/pqrst_model.hpp"

#include <cmath>

namespace ulpdream::ecg {

double BeatMorphology::value_at(double t_frac) const noexcept {
  double v = 0.0;
  for (const Wave& w : waves) {
    const double d = (t_frac - w.center_frac) / w.width_frac;
    v += w.amplitude_mv * std::exp(-0.5 * d * d);
  }
  return v;
}

BeatMorphology normal_morphology() {
  // Amplitudes in mV; centers/widths as fractions of the RR interval.
  // Values chosen to match typical lead-II relative amplitudes:
  // P ~0.15 mV, Q ~-0.1, R ~1.2, S ~-0.25, T ~0.3.
  return BeatMorphology{{{
      {0.15, 0.18, 0.025},   // P
      {-0.10, 0.265, 0.008}, // Q
      {1.20, 0.285, 0.010},  // R
      {-0.25, 0.305, 0.009}, // S
      {0.30, 0.50, 0.045},   // T
  }}};
}

BeatMorphology pvc_morphology() {
  // PVC: no P wave, broad high-amplitude QRS, discordant (inverted) T.
  return BeatMorphology{{{
      {0.0, 0.18, 0.025},    // P absent
      {-0.20, 0.25, 0.020},  // Q deep and wide
      {1.60, 0.30, 0.030},   // R broad
      {-0.45, 0.36, 0.025},  // S deep
      {-0.35, 0.55, 0.055},  // T inverted
  }}};
}

BeatMorphology st_elevation_morphology() {
  BeatMorphology m = normal_morphology();
  // Raise the T wave and broaden it toward the QRS to mimic an elevated
  // ST segment merging into T.
  m.waves[4] = {0.55, 0.44, 0.080};
  return m;
}

BeatMorphology afib_morphology() {
  BeatMorphology m = normal_morphology();
  m.waves[0].amplitude_mv = 0.0;  // absent organized P activity
  return m;
}

std::vector<double> render_beat(const BeatMorphology& m, std::size_t samples) {
  std::vector<double> out(samples, 0.0);
  for (std::size_t i = 0; i < samples; ++i) {
    out[i] = m.value_at(static_cast<double>(i) /
                        static_cast<double>(samples));
  }
  return out;
}

}  // namespace ulpdream::ecg
