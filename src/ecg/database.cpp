#include "ulpdream/ecg/database.hpp"

#include "ulpdream/util/rng.hpp"

namespace ulpdream::ecg {

std::vector<Record> make_database(const DatabaseConfig& cfg) {
  static constexpr Pathology kAll[] = {
      Pathology::kNormalSinus, Pathology::kBradycardia,
      Pathology::kTachycardia, Pathology::kPvcBigeminy,
      Pathology::kAtrialFib,   Pathology::kStElevation};
  std::vector<Record> records;
  std::size_t idx = 0;
  for (Pathology p : kAll) {
    for (std::size_t r = 0; r < cfg.records_per_pathology; ++r) {
      GeneratorConfig gen;
      gen.fs_hz = cfg.fs_hz;
      gen.duration_s = cfg.duration_s;
      gen.pathology = p;
      gen.seed = util::mix64(cfg.seed, idx++);
      records.push_back(generate_record(gen));
    }
  }
  return records;
}

Record make_default_record(std::uint64_t seed) {
  GeneratorConfig cfg;
  cfg.seed = seed;
  return generate_record(cfg);
}

}  // namespace ulpdream::ecg
