#include "ulpdream/ecg/noise.hpp"

#include <cmath>
#include <numbers>

namespace ulpdream::ecg {

void add_noise(std::vector<double>& signal_mv, double fs,
               const NoiseParams& p, util::Xoshiro256& rng) {
  const double phase_bw = rng.uniform(0.0, 2.0 * std::numbers::pi);
  const double phase_bw2 = rng.uniform(0.0, 2.0 * std::numbers::pi);
  const double phase_pl = rng.uniform(0.0, 2.0 * std::numbers::pi);
  for (std::size_t i = 0; i < signal_mv.size(); ++i) {
    const double t = static_cast<double>(i) / fs;
    double v = 0.0;
    // Baseline wander: dominant sinusoid plus a half-frequency component
    // for a non-periodic looking drift.
    v += p.baseline_wander_mv *
         (0.7 * std::sin(2.0 * std::numbers::pi * p.baseline_freq_hz * t +
                         phase_bw) +
          0.3 * std::sin(std::numbers::pi * p.baseline_freq_hz * t +
                         phase_bw2));
    v += p.powerline_mv *
         std::sin(2.0 * std::numbers::pi * p.powerline_freq_hz * t + phase_pl);
    v += rng.gaussian(0.0, p.emg_std_mv);
    signal_mv[i] += v;
  }
}

}  // namespace ulpdream::ecg
