#include "ulpdream/apps/delineation_app.hpp"

#include <algorithm>
#include <cstdlib>
#include <span>
#include <stdexcept>

#include "ulpdream/signal/buffer.hpp"

namespace ulpdream::apps {

namespace {

/// Index of the extremum (max if `maximum`, else min) of buf in [lo, hi).
/// The scan range is contiguous, so it is fetched in block chunks; the
/// first-match tie-breaking of the scalar scan is preserved.
template <typename Buf>
std::size_t extremum_index(const Buf& buf, std::size_t lo, std::size_t hi,
                           bool maximum) {
  std::size_t best = lo;
  fixed::Sample best_v = 0;
  fixed::Sample chunk[signal::kWindowChunk];
  for (std::size_t off = lo; off < hi; off += signal::kWindowChunk) {
    const std::size_t m = std::min(signal::kWindowChunk, hi - off);
    signal::read_window(buf, off, std::span<fixed::Sample>(chunk, m));
    for (std::size_t j = 0; j < m; ++j) {
      const fixed::Sample v = chunk[j];
      if (off + j == lo || (maximum && v > best_v) ||
          (!maximum && v < best_v)) {
        best_v = v;
        best = off + j;
      }
    }
  }
  return best;
}

}  // namespace

metrics::FiducialList DelineationApp::delineate(
    core::MemorySystem& system, const ecg::Record& record) const {
  if (record.samples.size() < cfg_.n) {
    throw std::invalid_argument("DelineationApp: record shorter than window");
  }
  const std::size_t n = cfg_.n;
  system.reset_allocator();
  auto input = core::ProtectedBuffer::allocate(system, n);
  auto detail = core::ProtectedBuffer::allocate(system, n);
  auto detail_wide = core::ProtectedBuffer::allocate(system, n);

  load_input(input, record.samples, n);

  const signal::FixedBank bank = signal::fixed_bank(cfg_.family);
  signal::swt_detail(input, n, bank, cfg_.qrs_scale, detail);
  signal::swt_detail(input, n, bank, cfg_.wide_scale, detail_wide);

  // Detection envelope: per-sample max of the two scale magnitudes.
  const auto envelope = [&](std::size_t idx) {
    return std::max(std::abs(static_cast<std::int32_t>(detail.get(idx))),
                    std::abs(static_cast<std::int32_t>(
                        detail_wide.get(idx))));
  };

  // Global detection threshold from the envelope, scanned one window
  // chunk per scale buffer at a time.
  std::int32_t max_abs = 1;
  {
    fixed::Sample qrs_chunk[signal::kWindowChunk];
    fixed::Sample wide_chunk[signal::kWindowChunk];
    for (std::size_t off = 0; off < n; off += signal::kWindowChunk) {
      const std::size_t m = std::min(signal::kWindowChunk, n - off);
      detail.store(off, std::span<fixed::Sample>(qrs_chunk, m));
      detail_wide.store(off, std::span<fixed::Sample>(wide_chunk, m));
      for (std::size_t j = 0; j < m; ++j) {
        max_abs = std::max(
            max_abs,
            std::max(std::abs(static_cast<std::int32_t>(qrs_chunk[j])),
                     std::abs(static_cast<std::int32_t>(wide_chunk[j]))));
      }
    }
  }
  const auto threshold = static_cast<std::int32_t>(
      cfg_.threshold_frac * static_cast<double>(max_abs));
  const auto refractory =
      static_cast<std::size_t>(cfg_.refractory_s * cfg_.fs_hz);

  // R peaks: modulus maxima of the envelope above threshold, refractory-
  // gated; the R position is refined to the max of the raw signal nearby.
  std::vector<std::size_t> r_peaks;
  std::size_t i = 1;
  while (i + 1 < n) {
    const auto v = envelope(i);
    if (v >= threshold && v >= envelope(i - 1) && v >= envelope(i + 1)) {
      const std::size_t lo = i > 10 ? i - 10 : 0;
      const std::size_t hi = std::min(n, i + 11);
      const std::size_t r = extremum_index(input, lo, hi, /*maximum=*/true);
      if (r_peaks.empty() || r - r_peaks.back() > refractory) {
        r_peaks.push_back(r);
        i += refractory;  // blank out only after an accepted beat
      } else {
        ++i;
      }
    } else {
      ++i;
    }
  }

  // Q, S, P, T around each R at physiologic offsets (in samples @ fs).
  const auto w_qs = static_cast<std::size_t>(0.08 * cfg_.fs_hz);
  const auto p_lo_off = static_cast<std::size_t>(0.30 * cfg_.fs_hz);
  const auto p_hi_off = static_cast<std::size_t>(0.10 * cfg_.fs_hz);
  const auto t_lo_off = static_cast<std::size_t>(0.12 * cfg_.fs_hz);
  const auto t_hi_off = static_cast<std::size_t>(0.45 * cfg_.fs_hz);

  metrics::FiducialList out;
  for (const std::size_t r : r_peaks) {
    const auto push = [&](metrics::FiducialType type, std::size_t pos) {
      out.push_back({type, static_cast<std::int32_t>(pos), input.get(pos)});
    };
    push(metrics::FiducialType::kR, r);
    if (r >= w_qs) {
      push(metrics::FiducialType::kQ,
           extremum_index(input, r - w_qs, r, /*maximum=*/false));
    }
    if (r + 1 + w_qs <= n) {
      push(metrics::FiducialType::kS,
           extremum_index(input, r + 1, r + 1 + w_qs, /*maximum=*/false));
    }
    if (r >= p_lo_off) {
      push(metrics::FiducialType::kP,
           extremum_index(input, r - p_lo_off, r - p_hi_off,
                          /*maximum=*/true));
    }
    if (r + t_hi_off <= n) {
      push(metrics::FiducialType::kT,
           extremum_index(input, r + t_lo_off, r + t_hi_off,
                          /*maximum=*/true));
    }
  }
  return out;
}

std::vector<double> DelineationApp::run(core::MemorySystem& system,
                                        const ecg::Record& record) const {
  const metrics::FiducialList fiducials = delineate(system, record);
  return metrics::flatten_fiducials(fiducials, cfg_.output_slots);
}

}  // namespace ulpdream::apps
