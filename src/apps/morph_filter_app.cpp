#include "ulpdream/apps/morph_filter_app.hpp"

#include <algorithm>
#include <span>
#include <stdexcept>

#include "ulpdream/signal/morphology.hpp"

namespace ulpdream::apps {

std::vector<double> MorphFilterApp::run(core::MemorySystem& system,
                                        const ecg::Record& record) const {
  if (record.samples.size() < cfg_.n) {
    throw std::invalid_argument("MorphFilterApp: record shorter than window");
  }
  const std::size_t n = cfg_.n;
  system.reset_allocator();
  auto input = core::ProtectedBuffer::allocate(system, n);
  auto tmp = core::ProtectedBuffer::allocate(system, n);
  auto baseline = core::ProtectedBuffer::allocate(system, n);
  auto output = core::ProtectedBuffer::allocate(system, n);

  load_input(input, record.samples, n);

  // Opening removes upward excursions (QRS) from the baseline estimate...
  signal::open(input, tmp, baseline, cfg_.se1_half, n);
  // ...closing fills the downward ones; result: the wandering baseline.
  signal::close(baseline, tmp, output, cfg_.se2_half, n);

  // Corrected signal = input - baseline (saturating), one window chunk at
  // a time on the block path.
  fixed::Sample in_chunk[signal::kWindowChunk];
  fixed::Sample out_chunk[signal::kWindowChunk];
  for (std::size_t off = 0; off < n; off += signal::kWindowChunk) {
    const std::size_t m = std::min(signal::kWindowChunk, n - off);
    input.store(off, std::span<fixed::Sample>(in_chunk, m));
    output.store(off, std::span<fixed::Sample>(out_chunk, m));
    for (std::size_t j = 0; j < m; ++j) {
      out_chunk[j] = fixed::sub_sat(in_chunk[j], out_chunk[j]);
    }
    output.load(off, std::span<const fixed::Sample>(out_chunk, m));
  }

  return read_output_f64(output, n);
}

namespace {

std::vector<double> erode_f64(const std::vector<double>& in,
                              std::size_t half) {
  const long n = static_cast<long>(in.size());
  std::vector<double> out(in.size());
  for (long i = 0; i < n; ++i) {
    double best = in[static_cast<std::size_t>(i)];
    for (long k = -static_cast<long>(half); k <= static_cast<long>(half);
         ++k) {
      long j = i + k;
      if (j < 0) j = 0;
      if (j >= n) j = n - 1;
      best = std::min(best, in[static_cast<std::size_t>(j)]);
    }
    out[static_cast<std::size_t>(i)] = best;
  }
  return out;
}

std::vector<double> dilate_f64(const std::vector<double>& in,
                               std::size_t half) {
  const long n = static_cast<long>(in.size());
  std::vector<double> out(in.size());
  for (long i = 0; i < n; ++i) {
    double best = in[static_cast<std::size_t>(i)];
    for (long k = -static_cast<long>(half); k <= static_cast<long>(half);
         ++k) {
      long j = i + k;
      if (j < 0) j = 0;
      if (j >= n) j = n - 1;
      best = std::max(best, in[static_cast<std::size_t>(j)]);
    }
    out[static_cast<std::size_t>(i)] = best;
  }
  return out;
}

}  // namespace

std::optional<std::vector<double>> MorphFilterApp::ideal_output(
    const ecg::Record& record) const {
  std::vector<double> x(cfg_.n);
  for (std::size_t i = 0; i < cfg_.n; ++i) {
    x[i] = static_cast<double>(record.samples[i]);
  }
  const std::vector<double> opened =
      dilate_f64(erode_f64(x, cfg_.se1_half), cfg_.se1_half);
  const std::vector<double> baseline =
      erode_f64(dilate_f64(opened, cfg_.se2_half), cfg_.se2_half);
  std::vector<double> out(cfg_.n);
  for (std::size_t i = 0; i < cfg_.n; ++i) out[i] = x[i] - baseline[i];
  return out;
}

}  // namespace ulpdream::apps
