#include "ulpdream/apps/matrix_filter_app.hpp"

#include <cmath>
#include <span>
#include <stdexcept>

namespace ulpdream::apps {

MatrixFilterApp::MatrixFilterApp(MatrixFilterConfig cfg) : cfg_(cfg) {
  if (cfg_.k == 0 || cfg_.n % cfg_.k != 0) {
    throw std::invalid_argument("MatrixFilterApp: n must be a multiple of k");
  }
  // A = (1+alpha) I - alpha G with G a row-normalized Gaussian smoother
  // (banded Toeplitz), quantized to Q1.15. Row sums stay 1 (DC gain 1)
  // but row energy > 1: the enhancement boosts high-frequency content —
  // and amplifies any injected error on every iteration.
  a_q15_.assign(cfg_.k * cfg_.k, 0);
  for (std::size_t r = 0; r < cfg_.k; ++r) {
    std::vector<double> gauss(cfg_.k, 0.0);
    double sum = 0.0;
    for (std::size_t c = 0; c < cfg_.k; ++c) {
      const double d = (static_cast<double>(c) - static_cast<double>(r)) /
                       cfg_.smoothing_radius;
      gauss[c] = std::exp(-0.5 * d * d);
      sum += gauss[c];
    }
    for (std::size_t c = 0; c < cfg_.k; ++c) {
      double value = -cfg_.sharpen_alpha * gauss[c] / sum;
      if (c == r) value += 1.0 + cfg_.sharpen_alpha;
      // The diagonal exceeds 1.0, so A is stored as A/2 in Q1.15 (i.e.
      // effectively Q2.14); the kernel compensates with a 14-bit shift.
      a_q15_[r * cfg_.k + c] = static_cast<fixed::Sample>(
          fixed::Q15::from_double(value / 2.0).raw());
    }
  }
}

std::vector<double> MatrixFilterApp::run(core::MemorySystem& system,
                                         const ecg::Record& record) const {
  if (record.samples.size() < cfg_.n) {
    throw std::invalid_argument("MatrixFilterApp: record shorter than window");
  }
  const std::size_t k = cfg_.k;
  const std::size_t cols = cfg_.n / k;

  system.reset_allocator();
  auto a_buf = core::ProtectedBuffer::allocate(system, k * k);
  auto b_buf = core::ProtectedBuffer::allocate(system, cfg_.n);
  auto c_buf = core::ProtectedBuffer::allocate(system, cfg_.n);

  a_buf.load(0, std::span<const fixed::Sample>(a_q15_.data(), a_q15_.size()));
  // B column-major: B[r][c] = x[c*k + r].
  load_input(b_buf, record.samples, cfg_.n);

  // C = A x B, iterated; ping-pong between b_buf and c_buf. Each dot
  // product reads one operator row and one source column — both
  // contiguous, both fetched per (c, r) as in the scalar kernel (A rows
  // and B columns are deliberately re-read from the faulty memory every
  // time, as on the device), just through one block call each.
  std::vector<fixed::Sample> a_row(k);
  std::vector<fixed::Sample> src_col(k);
  core::ProtectedBuffer* src = &b_buf;
  core::ProtectedBuffer* dst = &c_buf;
  for (std::size_t it = 0; it < cfg_.iterations; ++it) {
    for (std::size_t c = 0; c < cols; ++c) {
      for (std::size_t r = 0; r < k; ++r) {
        a_buf.store(r * k, std::span<fixed::Sample>(a_row.data(), k));
        src->store(c * k, std::span<fixed::Sample>(src_col.data(), k));
        std::int64_t acc = 0;
        for (std::size_t m = 0; m < k; ++m) {
          acc += fixed::mul_q15(src_col[m], fixed::Q15::from_raw(a_row[m]));
        }
        // A is stored halved (Q2.14): shift by 14 restores full scale.
        dst->set(c * k + r,
                 fixed::saturate_sample(fixed::rounded_shift_right(acc, 14)));
      }
    }
    std::swap(src, dst);
  }

  // After the final swap, `src` holds the last result.
  return read_output_f64(*src, cfg_.n);
}

std::optional<std::vector<double>> MatrixFilterApp::ideal_output(
    const ecg::Record& record) const {
  const std::size_t k = cfg_.k;
  const std::size_t cols = cfg_.n / k;
  // Use the *quantized* operator values so the reference differs from the
  // fixed-point run only by arithmetic precision, not by filter identity.
  // Raw values hold A/2 (Q2.14), hence the 16384 divisor.
  std::vector<double> a(k * k);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<double>(a_q15_[i]) / 16384.0;
  }
  std::vector<double> cur(cfg_.n);
  for (std::size_t i = 0; i < cfg_.n; ++i) {
    cur[i] = static_cast<double>(record.samples[i]);
  }
  std::vector<double> next(cfg_.n, 0.0);
  for (std::size_t it = 0; it < cfg_.iterations; ++it) {
    for (std::size_t c = 0; c < cols; ++c) {
      for (std::size_t r = 0; r < k; ++r) {
        double acc = 0.0;
        for (std::size_t m = 0; m < k; ++m) {
          acc += a[r * k + m] * cur[c * k + m];
        }
        next[c * k + r] = acc;
      }
    }
    std::swap(cur, next);
  }
  return cur;
}

}  // namespace ulpdream::apps
