#include "ulpdream/apps/cs_app.hpp"

#include <bit>
#include <span>
#include <stdexcept>

namespace ulpdream::apps {

CsApp::CsApp(CsAppConfig cfg)
    : cfg_(cfg),
      reconstructor_(cfg.cs),
      shift_(std::countr_zero(
          static_cast<unsigned>(cfg.cs.ones_per_column))) {
  const cs::SparsePhi& phi = reconstructor_.phi();
  row_cols_.resize(phi.m);
  for (std::size_t c = 0; c < phi.n; ++c) {
    for (int k = 0; k < phi.d; ++k) {
      const std::uint32_t r =
          phi.rows[c * static_cast<std::size_t>(phi.d) +
                   static_cast<std::size_t>(k)];
      row_cols_[r].push_back(static_cast<std::uint32_t>(c));
    }
  }
}

std::vector<double> CsApp::run(core::MemorySystem& system,
                               const ecg::Record& record) const {
  const std::size_t n = cfg_.cs.block_n;
  const std::size_t m = cfg_.cs.block_m;
  if (record.samples.size() < input_length()) {
    throw std::invalid_argument("CsApp: record shorter than window");
  }

  system.reset_allocator();
  auto input = core::ProtectedBuffer::allocate(system, input_length());
  auto meas = core::ProtectedBuffer::allocate(system, cfg_.blocks * m);

  load_input(input, record.samples, input_length());

  std::vector<double> out;
  out.reserve(input_length());

  std::vector<fixed::Sample> y_raw(m);
  for (std::size_t b = 0; b < cfg_.blocks; ++b) {
    // y_r = (sum of the selected x_c) / d, accumulated in a register and
    // stored once into the faulty measurement buffer. Input reads still
    // traverse the faulty memory, as does the stored y itself. The sparse
    // projection gathers scattered columns, so it stays on the word path.
    for (std::size_t r = 0; r < m; ++r) {
      std::int64_t acc = 0;
      for (const std::uint32_t c : row_cols_[r]) {
        acc += input.get(b * n + c);
      }
      meas.set(b * m + r, fixed::saturate_sample(
                              fixed::rounded_shift_right(acc, shift_)));
    }
    // Base-station reconstruction from the (possibly corrupted) stored y,
    // read back as one contiguous measurement window.
    meas.store(b * m, std::span<fixed::Sample>(y_raw.data(), m));
    std::vector<double> y(m);
    for (std::size_t r = 0; r < m; ++r) {
      y[r] = static_cast<double>(y_raw[r]);
    }
    const std::vector<double> xhat = reconstructor_.reconstruct(y);
    out.insert(out.end(), xhat.begin(), xhat.end());
  }
  return out;
}

std::optional<std::vector<double>> CsApp::ideal_output(
    const ecg::Record& record) const {
  const std::size_t n = cfg_.cs.block_n;
  const linalg::Matrix phi = reconstructor_.phi().to_dense();
  std::vector<double> out;
  out.reserve(input_length());
  for (std::size_t b = 0; b < cfg_.blocks; ++b) {
    std::vector<double> x(n);
    for (std::size_t c = 0; c < n; ++c) {
      x[c] = static_cast<double>(record.samples[b * n + c]);
    }
    const std::vector<double> y = phi.multiply(x);
    const std::vector<double> xhat = reconstructor_.reconstruct(y);
    out.insert(out.end(), xhat.begin(), xhat.end());
  }
  return out;
}

}  // namespace ulpdream::apps
