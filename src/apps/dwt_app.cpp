#include "ulpdream/apps/dwt_app.hpp"

#include <stdexcept>

namespace ulpdream::apps {

std::vector<double> DwtApp::run(core::MemorySystem& system,
                                const ecg::Record& record) const {
  if (record.samples.size() < cfg_.n) {
    throw std::invalid_argument("DwtApp: record shorter than window");
  }
  system.reset_allocator();
  auto input = core::ProtectedBuffer::allocate(system, cfg_.n);
  auto coeffs = core::ProtectedBuffer::allocate(system, cfg_.n);
  auto scratch = core::ProtectedBuffer::allocate(system, cfg_.n);

  load_input(input, record.samples, cfg_.n);

  const signal::FixedBank bank = signal::fixed_bank(cfg_.family);
  signal::dwt_multi(input, cfg_.n, bank, cfg_.levels, coeffs, scratch);

  return read_output_f64(coeffs, cfg_.n);
}

std::optional<std::vector<double>> DwtApp::ideal_output(
    const ecg::Record& record) const {
  std::vector<double> x(cfg_.n);
  for (std::size_t i = 0; i < cfg_.n; ++i) {
    x[i] = static_cast<double>(record.samples[i]);
  }
  return signal::dwt_multi_f64(x, cfg_.family, cfg_.levels);
}

}  // namespace ulpdream::apps
