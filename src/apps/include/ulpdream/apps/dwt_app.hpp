#pragma once
// Discrete Wavelet Transform application (paper Sec. II-1): several scales
// of low-/high-pass filtering over an ECG vector, as used for multi-lead
// analysis in commercial WBSNs. Output: the full coefficient vector
// [approx_L | detail_L | ... | detail_1].

#include "ulpdream/apps/app.hpp"
#include "ulpdream/signal/wavelet.hpp"

namespace ulpdream::apps {

struct DwtAppConfig {
  std::size_t n = 2048;
  std::size_t levels = 4;
  signal::WaveletFamily family = signal::WaveletFamily::kDb4;
};

class DwtApp final : public BioApp {
 public:
  explicit DwtApp(DwtAppConfig cfg = {}) : cfg_(cfg) {}

  [[nodiscard]] std::string name() const override { return "dwt"; }
  [[nodiscard]] std::size_t input_length() const override { return cfg_.n; }
  [[nodiscard]] std::size_t footprint_words() const override {
    return 3 * cfg_.n;  // input + coefficients + scratch
  }

  [[nodiscard]] std::vector<double> run(
      core::MemorySystem& system, const ecg::Record& record) const override;

  [[nodiscard]] std::optional<std::vector<double>> ideal_output(
      const ecg::Record& record) const override;

 private:
  DwtAppConfig cfg_;
};

}  // namespace ulpdream::apps
