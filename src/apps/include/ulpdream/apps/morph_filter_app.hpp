#pragma once
// Morphological Filtering application (paper Sec. II-4): cleans raw ECG via
// erosion/dilation sequences. We implement the standard two-stage baseline
// estimator — opening (removes peaks) followed by closing (fills pits)
// with structuring elements sized to the QRS and T durations — and output
// the baseline-corrected signal x - close(open(x)).

#include "ulpdream/apps/app.hpp"

namespace ulpdream::apps {

struct MorphFilterConfig {
  std::size_t n = 2048;
  std::size_t se1_half = 13;  ///< opening SE half-width (~0.1 s at 250 Hz)
  std::size_t se2_half = 19;  ///< closing SE half-width (~0.15 s)
};

class MorphFilterApp final : public BioApp {
 public:
  explicit MorphFilterApp(MorphFilterConfig cfg = {}) : cfg_(cfg) {}

  [[nodiscard]] std::string name() const override { return "morph_filter"; }
  [[nodiscard]] std::size_t input_length() const override { return cfg_.n; }
  [[nodiscard]] std::size_t footprint_words() const override {
    return 4 * cfg_.n;  // input, tmp, baseline, output
  }

  [[nodiscard]] std::vector<double> run(
      core::MemorySystem& system, const ecg::Record& record) const override;

  [[nodiscard]] std::optional<std::vector<double>> ideal_output(
      const ecg::Record& record) const override;

 private:
  MorphFilterConfig cfg_;
};

}  // namespace ulpdream::apps
