#pragma once
// The application abstraction the experiments iterate over: the paper's
// five ECG case studies (Sec. II). Each app runs entirely against a
// MemorySystem — input, intermediate and output buffers are allocated in
// the (possibly faulty) data memory, so every sample the algorithm touches
// traverses the EMT codec and fault-injection path, exactly as in the
// paper's instrumented VirtualSOC platform.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ulpdream/core/protected_buffer.hpp"
#include "ulpdream/ecg/generator.hpp"
#include "ulpdream/util/registry.hpp"

namespace ulpdream::apps {

/// Legacy identity of the built-in applications; survives only as a
/// descriptor tag (see app_registry()). Apps registered from outside src/
/// have no kind — they exist purely by name.
enum class AppKind : std::uint8_t {
  kDwt = 0,
  kMatrixFilter,
  kCompressedSensing,
  kMorphFilter,
  kDelineation,
  /// Extension beyond the paper's five case studies: the Heartbeat
  /// Classifier its Sec. III discusses (delineation + rule-based early
  /// classification, statistical output).
  kHeartbeatClassifier,
};

/// Registered name of a built-in kind (registry descriptor lookup).
[[nodiscard]] std::string app_kind_name(AppKind kind);

class BioApp {
 public:
  virtual ~BioApp() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Number of input samples consumed from the record.
  [[nodiscard]] virtual std::size_t input_length() const = 0;

  /// Words of data memory the app allocates (input + intermediates +
  /// output); must fit the 32 kB device memory.
  [[nodiscard]] virtual std::size_t footprint_words() const = 0;

  /// Executes the application. The system's allocator is reset first so
  /// repeated runs reuse the same addresses (and hence the same fault
  /// cells — required for the paper's same-map EMT comparisons).
  /// Returns the numeric output vector the SNR metric is computed on.
  [[nodiscard]] virtual std::vector<double> run(
      core::MemorySystem& system, const ecg::Record& record) const = 0;

  /// Double-precision golden model of the application — the x_theo of
  /// Formula 1. Computing the reference at full precision is what gives
  /// each application a *finite* maximum SNR under 16-bit fixed point
  /// (Fig. 4's dashed lines), and for CS it exposes the lossy-compression
  /// ceiling the paper highlights. Returns nullopt when no float model
  /// exists (delineation); the experiment runner then uses the error-free
  /// fixed-point run as the reference.
  [[nodiscard]] virtual std::optional<std::vector<double>> ideal_output(
      const ecg::Record& record) const {
    (void)record;
    return std::nullopt;
  }
};

/// Record load / output readback on the batched data path, shared by the
/// apps' run() implementations: whole sample windows move through one
/// ProtectedBuffer block call instead of a word-at-a-time loop.
void load_input(core::ProtectedBuffer& buf, const fixed::SampleVec& samples,
                std::size_t n);
[[nodiscard]] std::vector<double> read_output_f64(
    const core::ProtectedBuffer& buf, std::size_t n);

/// The process-wide application registry. Built-ins (the paper's five
/// case studies plus the heartbeat-classifier extension) register on
/// first access, in presentation order; register_factory() adds user
/// applications, selectable by name everywhere a built-in is.
[[nodiscard]] util::Registry<BioApp>& app_registry();

/// Instantiates the app registered under `name`. Throws
/// std::invalid_argument listing the valid names on an unknown name.
[[nodiscard]] std::unique_ptr<BioApp> make_app(const std::string& name);

/// Registered names: the paper's five case studies, and every registered
/// name (built-ins first, then user registrations).
[[nodiscard]] std::vector<std::string> paper_app_names();
[[nodiscard]] std::vector<std::string> app_names();

// --- legacy enum shims -----------------------------------------------------

[[nodiscard]] std::unique_ptr<BioApp> make_app(AppKind kind);
/// The paper's five case studies (Fig. 2 / Fig. 4 iterate over these).
[[nodiscard]] const std::vector<AppKind>& all_app_kinds();
/// The paper's five plus this library's extensions.
[[nodiscard]] const std::vector<AppKind>& extended_app_kinds();

}  // namespace ulpdream::apps
