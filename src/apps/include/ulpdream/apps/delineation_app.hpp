#pragma once
// Wavelet Delineation application (paper Sec. II-5): detects the P, Q, R,
// S, T fiducial points of each heartbeat from the undecimated wavelet
// detail of the ECG (translation-invariant, as in the Rincon et al.
// delineators the paper cites). Pipeline, all buffers in faulty memory:
//   1. a-trous detail at scale 2^2 emphasizes the QRS band;
//   2. R peaks = large modulus maxima with a refractory period;
//   3. Q/S = adjacent extrema, P/T = windowed extrema at physiologic
//      offsets.
// Output for SNR: the fiducial list flattened to (position, amplitude)
// pairs — statistical/qualitative output in the paper's terms.

#include "ulpdream/apps/app.hpp"
#include "ulpdream/metrics/delineation_score.hpp"
#include "ulpdream/signal/wavelet.hpp"

namespace ulpdream::apps {

struct DelineationConfig {
  std::size_t n = 2048;
  double fs_hz = 250.0;
  signal::WaveletFamily family = signal::WaveletFamily::kDb2;
  std::size_t qrs_scale = 2;       ///< a-trous scale for narrow QRS
  /// Second, coarser scale combined into the detection envelope: wide
  /// (ventricular) complexes have little energy at the narrow-QRS scale
  /// but dominate here — multi-scale detection as in the wavelet
  /// delineation literature the paper builds on.
  std::size_t wide_scale = 3;
  double threshold_frac = 0.35;    ///< R threshold vs max envelope
  double refractory_s = 0.25;
  std::size_t output_slots = 48;   ///< fiducials kept in the metric vector
};

class DelineationApp final : public BioApp {
 public:
  explicit DelineationApp(DelineationConfig cfg = {}) : cfg_(cfg) {}

  [[nodiscard]] std::string name() const override { return "delineation"; }
  [[nodiscard]] std::size_t input_length() const override { return cfg_.n; }
  [[nodiscard]] std::size_t footprint_words() const override {
    return 3 * cfg_.n;  // input + two wavelet detail scales
  }

  [[nodiscard]] std::vector<double> run(
      core::MemorySystem& system, const ecg::Record& record) const override;

  /// Structured detection entry point (used by tests and the WBSN example
  /// to score sensitivity/PPV against the generator's ground truth).
  [[nodiscard]] metrics::FiducialList delineate(
      core::MemorySystem& system, const ecg::Record& record) const;

 private:
  DelineationConfig cfg_;
};

}  // namespace ulpdream::apps
