#pragma once
// Compressed Sensing application (paper Sec. II-3): 50% lossy compression
// of ECG blocks with a sparse binary sensing matrix, executed in fixed
// point on the node with both the input window and the measurement vector
// held in the faulty data memory. Reconstruction (OMP in a wavelet basis)
// happens on the error-free base station in floating point.
//
// Quality semantics follow the paper: the SNR reference is the *original*
// signal, so even a fault-free execution has a finite ceiling (the lossy-
// compression SNR — Fig. 4's dashed CS line), and the 35 dB multi-lead
// reconstruction-quality requirement from the paper's Sec. III can be
// checked against the same scale.

#include "ulpdream/apps/app.hpp"
#include "ulpdream/cs/reconstruct.hpp"

namespace ulpdream::apps {

struct CsAppConfig {
  std::size_t blocks = 2;  ///< consecutive blocks of block_n input samples
  cs::CsConfig cs{};
};

class CsApp final : public BioApp {
 public:
  explicit CsApp(CsAppConfig cfg = {});

  [[nodiscard]] std::string name() const override { return "cs"; }
  [[nodiscard]] std::size_t input_length() const override {
    return cfg_.blocks * cfg_.cs.block_n;
  }
  [[nodiscard]] std::size_t footprint_words() const override {
    return input_length() + cfg_.blocks * cfg_.cs.block_m;
  }

  [[nodiscard]] std::vector<double> run(
      core::MemorySystem& system, const ecg::Record& record) const override;

  /// Ideal output: the double-precision pipeline — y = Phi x computed in
  /// floating point, then OMP reconstruction. Differences from run() are
  /// then exactly (a) fixed-point compression arithmetic and (b) memory
  /// faults. The lossy ceiling vs the *original* signal is reported
  /// separately by the Fig. 4 bench (dashed line).
  [[nodiscard]] std::optional<std::vector<double>> ideal_output(
      const ecg::Record& record) const override;

 private:
  CsAppConfig cfg_;
  cs::CsReconstructor reconstructor_;
  int shift_;  ///< log2(ones_per_column): integer divide in the compressor
  /// Row-major view of Phi: for each measurement row, the input columns it
  /// sums. Lets the compressor accumulate each y_r in a CPU register and
  /// store it exactly once — the realistic embedded implementation (an
  /// in-memory read-modify-write accumulator would re-corrupt itself on
  /// every partial sum).
  std::vector<std::vector<std::uint32_t>> row_cols_;
};

}  // namespace ulpdream::apps
