#pragma once
// Matrix Filtering application (paper Sec. II-2): applies a linear
// transformation to blocks of biosignal samples as repeated matrix
// multiplications [A] x [B] = [C], iterated until the desired quality is
// reached. A is a fixed-point smoothing (low-pass Toeplitz) operator; B
// packs the ECG window column-wise. Because every output element depends
// on a full row and column of inputs, a single memory error fans out —
// the reason the Matrix Filtering curve sits below the others in Fig. 2.

#include "ulpdream/apps/app.hpp"

namespace ulpdream::apps {

struct MatrixFilterConfig {
  std::size_t k = 32;       ///< operator dimension (A is k x k)
  std::size_t n = 2048;     ///< samples processed (k x n/k block matrix B)
  std::size_t iterations = 3;
  /// A is an unsharp-mask enhancement operator A = (1+alpha)I - alpha*G
  /// (G = Gaussian smoother): a standard feature-enhancement transform.
  /// Its row energy exceeds 1, so injected memory errors are *amplified*
  /// every iteration — the mechanism behind the paper's observation that
  /// Matrix Filtering degrades far more than the other applications
  /// (each output depends on a full row and column of inputs).
  double smoothing_radius = 2.0;
  double sharpen_alpha = 0.7;
};

class MatrixFilterApp final : public BioApp {
 public:
  explicit MatrixFilterApp(MatrixFilterConfig cfg = {});

  [[nodiscard]] std::string name() const override { return "matrix_filter"; }
  [[nodiscard]] std::size_t input_length() const override { return cfg_.n; }
  [[nodiscard]] std::size_t footprint_words() const override {
    return cfg_.k * cfg_.k + 2 * cfg_.n;  // A + B + C
  }

  [[nodiscard]] std::vector<double> run(
      core::MemorySystem& system, const ecg::Record& record) const override;

  [[nodiscard]] std::optional<std::vector<double>> ideal_output(
      const ecg::Record& record) const override;

 private:
  MatrixFilterConfig cfg_;
  std::vector<fixed::Sample> a_q15_;  ///< row-major A in raw Q1.15
};

}  // namespace ulpdream::apps
