#pragma once
// Heartbeat Classifier (extension): the paper's Sec. III discusses this
// application (built on Wavelet Delineation + CS, after Braojos et al.) as
// the canonical producer of *statistical/qualitative* output whose relaxed
// precision requirements significance-based computing exploits: beats are
// sorted into morphology classes with coarse-grained boundaries, so the
// class decision tolerates far more numeric error than a waveform SNR.
//
// Pipeline (all buffers in the faulty data memory):
//   1. wavelet delineation (R/Q/S/P/T fiducials);
//   2. per-beat fixed-point features: QRS width, R amplitude, RR ratio,
//      P-wave presence, T polarity;
//   3. rule-based classification into Normal / PVC / Unknown (the early
//      classification scheme of the paper's ref [9], reduced to its
//      decision structure).
//
// Output for the SNR metric: the per-beat class labels plus class counts —
// a statistical vector in the paper's sense.

#include "ulpdream/apps/app.hpp"
#include "ulpdream/apps/delineation_app.hpp"

namespace ulpdream::apps {

enum class BeatClass : std::uint8_t { kNormal = 0, kPvc = 1, kUnknown = 2 };

struct ClassifiedBeat {
  std::int32_t r_position = 0;
  BeatClass label = BeatClass::kUnknown;
};

struct ClassifierConfig {
  DelineationConfig delineation{};
  /// QRS wider than this (seconds) marks a ventricular beat.
  double wide_qrs_s = 0.13;
  /// Premature if this beat's RR is below this fraction of the running
  /// average RR.
  double premature_rr_frac = 0.85;
  /// R amplitude must exceed this fraction of the record's max R to count
  /// as a confident detection.
  double min_r_frac = 0.3;
  std::size_t output_slots = 24;
};

class ClassifierApp final : public BioApp {
 public:
  explicit ClassifierApp(ClassifierConfig cfg = {});

  [[nodiscard]] std::string name() const override {
    return "heartbeat_classifier";
  }
  [[nodiscard]] std::size_t input_length() const override {
    return cfg_.delineation.n;
  }
  [[nodiscard]] std::size_t footprint_words() const override {
    return 2 * cfg_.delineation.n + 4 * cfg_.output_slots;
  }

  [[nodiscard]] std::vector<double> run(
      core::MemorySystem& system, const ecg::Record& record) const override;

  /// Structured entry point: classified beats for inspection/scoring.
  [[nodiscard]] std::vector<ClassifiedBeat> classify(
      core::MemorySystem& system, const ecg::Record& record) const;

 private:
  ClassifierConfig cfg_;
  DelineationApp delineator_;
};

}  // namespace ulpdream::apps
