#include "ulpdream/apps/app.hpp"

#include <span>
#include <stdexcept>

#include "ulpdream/apps/classifier_app.hpp"
#include "ulpdream/apps/cs_app.hpp"
#include "ulpdream/apps/delineation_app.hpp"
#include "ulpdream/apps/dwt_app.hpp"
#include "ulpdream/apps/matrix_filter_app.hpp"
#include "ulpdream/apps/morph_filter_app.hpp"

namespace ulpdream::apps {

const char* app_kind_name(AppKind kind) {
  switch (kind) {
    case AppKind::kDwt:
      return "dwt";
    case AppKind::kMatrixFilter:
      return "matrix_filter";
    case AppKind::kCompressedSensing:
      return "cs";
    case AppKind::kMorphFilter:
      return "morph_filter";
    case AppKind::kDelineation:
      return "delineation";
    case AppKind::kHeartbeatClassifier:
      return "heartbeat_classifier";
  }
  return "unknown";
}

void load_input(core::ProtectedBuffer& buf, const fixed::SampleVec& samples,
                std::size_t n) {
  buf.load(0, std::span<const fixed::Sample>(samples.data(), n));
}

std::vector<double> read_output_f64(const core::ProtectedBuffer& buf,
                                    std::size_t n) {
  fixed::SampleVec raw(n);
  buf.store(0, std::span<fixed::Sample>(raw.data(), n));
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<double>(raw[i]);
  return out;
}

std::unique_ptr<BioApp> make_app(AppKind kind) {
  switch (kind) {
    case AppKind::kDwt:
      return std::make_unique<DwtApp>();
    case AppKind::kMatrixFilter:
      return std::make_unique<MatrixFilterApp>();
    case AppKind::kCompressedSensing:
      return std::make_unique<CsApp>();
    case AppKind::kMorphFilter:
      return std::make_unique<MorphFilterApp>();
    case AppKind::kDelineation:
      return std::make_unique<DelineationApp>();
    case AppKind::kHeartbeatClassifier:
      return std::make_unique<ClassifierApp>();
  }
  throw std::invalid_argument("make_app: unknown kind");
}

const std::vector<AppKind>& all_app_kinds() {
  static const std::vector<AppKind> kinds = {
      AppKind::kDwt, AppKind::kMatrixFilter, AppKind::kCompressedSensing,
      AppKind::kMorphFilter, AppKind::kDelineation};
  return kinds;
}

const std::vector<AppKind>& extended_app_kinds() {
  static const std::vector<AppKind> kinds = {
      AppKind::kDwt,         AppKind::kMatrixFilter,
      AppKind::kCompressedSensing, AppKind::kMorphFilter,
      AppKind::kDelineation, AppKind::kHeartbeatClassifier};
  return kinds;
}

}  // namespace ulpdream::apps
