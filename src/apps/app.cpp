#include "ulpdream/apps/app.hpp"

#include <span>
#include <stdexcept>

#include "ulpdream/apps/classifier_app.hpp"
#include "ulpdream/apps/cs_app.hpp"
#include "ulpdream/apps/delineation_app.hpp"
#include "ulpdream/apps/dwt_app.hpp"
#include "ulpdream/apps/matrix_filter_app.hpp"
#include "ulpdream/apps/morph_filter_app.hpp"
#include "ulpdream/core/factory.hpp"

namespace ulpdream::apps {

util::Registry<BioApp>& app_registry() {
  static util::Registry<BioApp> registry("app");
  static const bool built_ins = [] {
    using core::kCapExtendedTier;
    using core::kCapPaper;
    registry.register_factory(
        "dwt", [] { return std::make_unique<DwtApp>(); },
        {"DWT compression",
         "multi-level db4 wavelet transform of the ECG window",
         {kCapPaper},
         static_cast<int>(AppKind::kDwt)});
    registry.register_factory(
        "matrix_filter", [] { return std::make_unique<MatrixFilterApp>(); },
        {"Matrix FIR filter",
         "band-pass FIR as dense matrix-vector products",
         {kCapPaper},
         static_cast<int>(AppKind::kMatrixFilter)});
    registry.register_factory(
        "cs", [] { return std::make_unique<CsApp>(); },
        {"Compressed sensing",
         "Bernoulli sensing + OMP reconstruction (lossy transmit path)",
         {kCapPaper},
         static_cast<int>(AppKind::kCompressedSensing)});
    registry.register_factory(
        "morph_filter", [] { return std::make_unique<MorphFilterApp>(); },
        {"Morphological filter",
         "open/close baseline removal on the raw trace",
         {kCapPaper},
         static_cast<int>(AppKind::kMorphFilter)});
    registry.register_factory(
        "delineation", [] { return std::make_unique<DelineationApp>(); },
        {"Wavelet delineation",
         "P/Q/R/S/T fiducial detection on the SWT envelope",
         {kCapPaper},
         static_cast<int>(AppKind::kDelineation)});
    registry.register_factory(
        "heartbeat_classifier", [] { return std::make_unique<ClassifierApp>(); },
        {"Heartbeat classifier",
         "delineation + rule-based early classification (extension)",
         {kCapExtendedTier},
         static_cast<int>(AppKind::kHeartbeatClassifier)});
    return true;
  }();
  (void)built_ins;
  return registry;
}

std::unique_ptr<BioApp> make_app(const std::string& name) {
  return app_registry().create(name);
}

std::vector<std::string> paper_app_names() {
  return app_registry().names_with(core::kCapPaper);
}

std::vector<std::string> app_names() { return app_registry().names(); }

std::string app_kind_name(AppKind kind) {
  return app_registry().name_by_tag(static_cast<int>(kind));
}

std::unique_ptr<BioApp> make_app(AppKind kind) {
  return make_app(app_kind_name(kind));
}

const std::vector<AppKind>& all_app_kinds() {
  static const std::vector<AppKind> kinds =
      util::tags_as(app_registry().tags_with(core::kCapPaper),
                    AppKind::kHeartbeatClassifier);
  return kinds;
}

const std::vector<AppKind>& extended_app_kinds() {
  static const std::vector<AppKind> kinds =
      util::tags_as(app_registry().tags(), AppKind::kHeartbeatClassifier);
  return kinds;
}

void load_input(core::ProtectedBuffer& buf, const fixed::SampleVec& samples,
                std::size_t n) {
  buf.load(0, std::span<const fixed::Sample>(samples.data(), n));
}

std::vector<double> read_output_f64(const core::ProtectedBuffer& buf,
                                    std::size_t n) {
  fixed::SampleVec raw(n);
  buf.store(0, std::span<fixed::Sample>(raw.data(), n));
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<double>(raw[i]);
  return out;
}

}  // namespace ulpdream::apps
