#include "ulpdream/apps/app.hpp"

#include <stdexcept>

#include "ulpdream/apps/classifier_app.hpp"
#include "ulpdream/apps/cs_app.hpp"
#include "ulpdream/apps/delineation_app.hpp"
#include "ulpdream/apps/dwt_app.hpp"
#include "ulpdream/apps/matrix_filter_app.hpp"
#include "ulpdream/apps/morph_filter_app.hpp"

namespace ulpdream::apps {

const char* app_kind_name(AppKind kind) {
  switch (kind) {
    case AppKind::kDwt:
      return "dwt";
    case AppKind::kMatrixFilter:
      return "matrix_filter";
    case AppKind::kCompressedSensing:
      return "cs";
    case AppKind::kMorphFilter:
      return "morph_filter";
    case AppKind::kDelineation:
      return "delineation";
    case AppKind::kHeartbeatClassifier:
      return "heartbeat_classifier";
  }
  return "unknown";
}

std::unique_ptr<BioApp> make_app(AppKind kind) {
  switch (kind) {
    case AppKind::kDwt:
      return std::make_unique<DwtApp>();
    case AppKind::kMatrixFilter:
      return std::make_unique<MatrixFilterApp>();
    case AppKind::kCompressedSensing:
      return std::make_unique<CsApp>();
    case AppKind::kMorphFilter:
      return std::make_unique<MorphFilterApp>();
    case AppKind::kDelineation:
      return std::make_unique<DelineationApp>();
    case AppKind::kHeartbeatClassifier:
      return std::make_unique<ClassifierApp>();
  }
  throw std::invalid_argument("make_app: unknown kind");
}

const std::vector<AppKind>& all_app_kinds() {
  static const std::vector<AppKind> kinds = {
      AppKind::kDwt, AppKind::kMatrixFilter, AppKind::kCompressedSensing,
      AppKind::kMorphFilter, AppKind::kDelineation};
  return kinds;
}

const std::vector<AppKind>& extended_app_kinds() {
  static const std::vector<AppKind> kinds = {
      AppKind::kDwt,         AppKind::kMatrixFilter,
      AppKind::kCompressedSensing, AppKind::kMorphFilter,
      AppKind::kDelineation, AppKind::kHeartbeatClassifier};
  return kinds;
}

}  // namespace ulpdream::apps
