#include "ulpdream/apps/classifier_app.hpp"

#include <algorithm>
#include <cmath>

namespace ulpdream::apps {

ClassifierApp::ClassifierApp(ClassifierConfig cfg)
    : cfg_(cfg), delineator_(cfg.delineation) {}

std::vector<ClassifiedBeat> ClassifierApp::classify(
    core::MemorySystem& system, const ecg::Record& record) const {
  // Stage 1: delineation (allocates its own buffers in `system`).
  const metrics::FiducialList fiducials =
      delineator_.delineate(system, record);

  // Collect per-beat fiducials keyed by R position.
  struct Beat {
    std::int32_t r = 0;
    fixed::Sample r_amp = 0;
    std::int32_t q = -1;
    std::int32_t s = -1;
    bool has_p = false;
    fixed::Sample t_amp = 0;
  };
  std::vector<Beat> beats;
  for (const auto& f : fiducials) {
    if (f.type == metrics::FiducialType::kR) {
      Beat b;
      b.r = f.position;
      b.r_amp = f.amplitude;
      beats.push_back(b);
    }
  }
  const auto nearest_beat = [&](std::int32_t pos) -> Beat* {
    Beat* best = nullptr;
    std::int32_t best_d = 1 << 30;
    for (auto& b : beats) {
      const std::int32_t d = std::abs(b.r - pos);
      if (d < best_d) {
        best_d = d;
        best = &b;
      }
    }
    return best;
  };
  for (const auto& f : fiducials) {
    Beat* beat = nearest_beat(f.position);
    if (beat == nullptr) continue;
    switch (f.type) {
      case metrics::FiducialType::kQ:
        beat->q = f.position;
        break;
      case metrics::FiducialType::kS:
        beat->s = f.position;
        break;
      case metrics::FiducialType::kP:
        beat->has_p = true;
        break;
      case metrics::FiducialType::kT:
        beat->t_amp = f.amplitude;
        break;
      case metrics::FiducialType::kR:
        break;
    }
  }

  // Stage 2+3: features and rule-based decision (the decision structure
  // of early WBSN classifiers: RR prematurity as the trigger, QRS
  // morphology — width / amplitude / S depth — as the confirmation).
  fixed::Sample max_r = 1;
  for (const auto& b : beats) max_r = std::max(max_r, b.r_amp);
  // Median R amplitude and median S depth as per-record baselines.
  const auto median_of = [](std::vector<double> v) {
    if (v.empty()) return 0.0;
    std::nth_element(v.begin(), v.begin() + static_cast<long>(v.size() / 2),
                     v.end());
    return v[v.size() / 2];
  };
  std::vector<double> r_amps;
  std::vector<double> qrs_swings;
  for (const auto& b : beats) {
    r_amps.push_back(static_cast<double>(b.r_amp));
    if (b.s >= 0) {
      qrs_swings.push_back(static_cast<double>(b.r_amp) -
                           static_cast<double>(b.t_amp));
    }
  }
  const double median_r = median_of(r_amps);
  const double fs = cfg_.delineation.fs_hz;

  std::vector<ClassifiedBeat> out;
  double rr_avg = 0.0;
  std::size_t rr_count = 0;
  for (std::size_t i = 0; i < beats.size(); ++i) {
    const Beat& b = beats[i];
    ClassifiedBeat cb;
    cb.r_position = b.r;

    const bool confident =
        static_cast<double>(b.r_amp) >=
        cfg_.min_r_frac * static_cast<double>(max_r);
    const double qrs_w =
        (b.q >= 0 && b.s >= 0) ? static_cast<double>(b.s - b.q) / fs : 0.0;
    const bool wide = qrs_w > cfg_.wide_qrs_s;
    const bool tall =
        median_r > 0.0 && static_cast<double>(b.r_amp) > 1.15 * median_r;
    bool premature = false;
    if (i > 0) {
      const double rr =
          static_cast<double>(b.r - beats[i - 1].r) / fs;
      if (rr_count > 0 && rr < cfg_.premature_rr_frac * rr_avg) {
        premature = true;
      }
      rr_avg = (rr_avg * static_cast<double>(rr_count) + rr) /
               static_cast<double>(rr_count + 1);
      ++rr_count;
    }

    if (!confident) {
      cb.label = BeatClass::kUnknown;
    } else if (premature && (wide || tall)) {
      cb.label = BeatClass::kPvc;
    } else {
      cb.label = BeatClass::kNormal;
    }
    out.push_back(cb);
  }
  return out;
}

std::vector<double> ClassifierApp::run(core::MemorySystem& system,
                                       const ecg::Record& record) const {
  const std::vector<ClassifiedBeat> beats = classify(system, record);
  // Statistical output: class counts followed by per-beat labels.
  std::vector<double> out(3 + cfg_.output_slots, 0.0);
  for (const auto& b : beats) {
    out[static_cast<std::size_t>(b.label)] += 1.0;
  }
  for (std::size_t i = 0; i < beats.size() && i < cfg_.output_slots; ++i) {
    out[3 + i] = static_cast<double>(beats[i].label);
  }
  return out;
}

}  // namespace ulpdream::apps
