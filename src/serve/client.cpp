#include "ulpdream/serve/client.hpp"

#include <utility>

namespace ulpdream::serve {

Client::Client(util::Socket socket, std::string endpoint)
    : socket_(std::move(socket)), endpoint_(std::move(endpoint)) {}

Client Client::connect(const std::string& endpoint) {
  return Client(util::Socket::connect(endpoint), endpoint);
}

Result Client::query(const campaign::CampaignSpec& spec,
                     const QueryOptions& options) {
  Query q;
  q.spec = spec;
  q.want_store = options.want_store;
  q.want_rows = options.want_rows;
  q.group = options.group;
  send(socket_, q);

  util::Frame frame;
  for (;;) {
    if (!receive(socket_, frame)) {
      throw util::FrameError(util::FrameError::Kind::kTruncated, endpoint_,
                             "daemon closed the connection before "
                             "answering the query");
    }
    switch (static_cast<MsgType>(frame.type)) {
      case MsgType::kProgress: {
        const Progress progress = decode_progress(frame, endpoint_);
        if (options.on_progress) options.on_progress(progress);
        break;
      }
      case MsgType::kError:
        throw QueryError(decode_error(frame, endpoint_).message);
      case MsgType::kResult:
        return decode_result(frame, endpoint_);
      default:
        throw ProtocolError(
            endpoint_, std::string("unexpected ") +
                           to_string(static_cast<MsgType>(frame.type)) +
                           " frame (type " + std::to_string(frame.type) +
                           ") while awaiting a Result");
    }
  }
}

}  // namespace ulpdream::serve
