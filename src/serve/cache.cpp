#include "ulpdream/serve/cache.hpp"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "ulpdream/serve/protocol.hpp"
#include "ulpdream/util/log.hpp"
#include "ulpdream/util/telemetry.hpp"
#include "ulpdream/util/wire.hpp"

namespace ulpdream::serve {

namespace fs = std::filesystem;
using campaign::StoreError;

namespace {

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  if (!is) throw StoreError(path, "cannot open for reading");
  const std::streamsize size = is.tellg();
  is.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  if (size > 0 &&
      !is.read(reinterpret_cast<char*>(bytes.data()), size)) {
    throw StoreError(path, "short read");
  }
  return bytes;
}

std::string sidecar_of(const std::string& store_path) {
  return fs::path(store_path).replace_extension(".spec").string();
}

std::uint64_t file_bytes(const std::string& path) {
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  return ec ? 0 : static_cast<std::uint64_t>(size);
}

void remove_quiet(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
}

}  // namespace

bool is_resumable_prefix(const campaign::CampaignSpec& cached,
                         const campaign::CampaignSpec& query) {
  if (cached.records.size() >= query.records.size()) return false;
  if (cached.axes_fingerprint() != query.axes_fingerprint()) return false;
  for (std::size_t i = 0; i < cached.records.size(); ++i) {
    if (cached.records[i].label() != query.records[i].label()) return false;
  }
  return true;
}

campaign::ResultStore adopt_prefix(const campaign::ColumnarStore& cached,
                                   const campaign::CampaignSpec& query) {
  campaign::ResultStore out(query);
  const campaign::ResultStore donor = cached.materialize();
  std::vector<campaign::Sample> samples;
  for (std::size_t slot = 0; slot < donor.slot_items().size(); ++slot) {
    if (!donor.slot_done(slot)) continue;
    const std::size_t index = donor.slot_items()[slot];
    const campaign::WorkItem item =
        campaign::expand_range(query, index, index + 1).front();
    const auto span = donor.slot_samples(slot);
    samples.assign(span.begin(), span.end());
    out.record_item(item, samples);
  }
  return out;
}

ResultCache::ResultCache(Options options) : options_(std::move(options)) {
  if (options_.dir.empty()) {
    throw std::runtime_error("ResultCache needs a cache directory");
  }
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  if (ec) {
    throw std::runtime_error(options_.dir + ": cannot create cache dir: " +
                             ec.message());
  }
  rehydrate();
  publish_gauges();
}

void ResultCache::rehydrate() {
  static const util::telemetry::Counter rehydrated("serve.cache.rehydrated");
  static const util::telemetry::Counter quarantines("serve.cache.quarantined");

  // Oldest mtime first, so the rebuilt LRU order approximates the
  // pre-restart recency order (insert() rewrites a refreshed entry's
  // files, updating its mtime).
  std::vector<std::pair<fs::file_time_type, std::string>> stores;
  for (const auto& dir_entry : fs::directory_iterator(options_.dir)) {
    if (!dir_entry.is_regular_file()) continue;
    if (dir_entry.path().extension() != ".ulpdcol") continue;
    stores.emplace_back(dir_entry.last_write_time(),
                        dir_entry.path().string());
  }
  std::sort(stores.begin(), stores.end());

  for (const auto& [mtime, store_path] : stores) {
    const std::string sidecar = sidecar_of(store_path);
    try {
      if (!fs::exists(sidecar)) {
        throw StoreError(store_path, "missing spec sidecar " + sidecar);
      }
      const std::vector<std::uint8_t> sidecar_bytes = slurp(sidecar);
      util::PayloadReader reader(sidecar_bytes, sidecar, "SpecSidecar");
      const campaign::CampaignSpec spec = decode_spec(reader).normalized();
      reader.finish();

      const std::string hash = spec.fingerprint_hash();
      if (fs::path(store_path).stem().string() != hash) {
        throw StoreError(store_path,
                         "file name does not match its sidecar's "
                         "fingerprint hash " +
                             hash + " — foreign or renamed cache file");
      }
      const campaign::ColumnarStore store =
          campaign::ColumnarStore::open(store_path, spec);
      if (!store.complete()) {
        throw StoreError(store_path,
                         "incomplete store in cache (" +
                             std::to_string(store.items_done()) + " of " +
                             std::to_string(spec.item_count()) + " items)");
      }

      Entry entry;
      entry.fingerprint = spec.fingerprint();
      entry.spec = spec;
      entry.store_path = store_path;
      entry.bytes = file_bytes(store_path) + file_bytes(sidecar);
      if (by_fingerprint_.count(entry.fingerprint) != 0) {
        throw StoreError(store_path, "duplicate cache entry for " +
                                         entry.fingerprint);
      }
      bytes_ += entry.bytes;
      lru_.push_back(std::move(entry));
      by_fingerprint_[lru_.back().fingerprint] = std::prev(lru_.end());
      rehydrated.add();
    } catch (const std::exception& e) {
      // Quarantine, never crash: move both files aside so the next
      // restart does not trip over them again, and keep serving.
      std::error_code ec;
      fs::rename(store_path, store_path + ".quarantined", ec);
      fs::rename(sidecar, sidecar + ".quarantined", ec);
      quarantined_.push_back(QuarantineEvent{store_path, e.what()});
      quarantines.add();
      util::log_warn("serve: quarantined cache file: ", e.what());
    }
  }
  evict_to_budget();
}

std::optional<ResultCache::Entry> ResultCache::find(
    const std::string& fingerprint) {
  static const util::telemetry::Counter hits("serve.cache.hits");
  static const util::telemetry::Counter misses("serve.cache.misses");
  const auto it = by_fingerprint_.find(fingerprint);
  if (it == by_fingerprint_.end()) {
    misses.add();
    return std::nullopt;
  }
  hits.add();
  touch(it->second);
  return *it->second;
}

std::optional<ResultCache::Entry> ResultCache::best_overlap(
    const campaign::CampaignSpec& spec) {
  auto best = lru_.end();
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    if (!is_resumable_prefix(it->spec, spec)) continue;
    if (best == lru_.end() ||
        it->spec.records.size() > best->spec.records.size()) {
      best = it;
    }
  }
  if (best == lru_.end()) return std::nullopt;
  touch(best);
  return *best;
}

ResultCache::Entry ResultCache::insert(const campaign::CampaignSpec& spec,
                                       const campaign::ResultStore& store) {
  const std::string fingerprint = spec.fingerprint();
  const std::string hash = spec.fingerprint_hash();
  const std::string store_path =
      (fs::path(options_.dir) / (hash + ".ulpdcol")).string();
  const std::string sidecar = sidecar_of(store_path);

  store.save_columnar(store_path);
  {
    util::PayloadWriter writer;
    encode_spec(writer, spec);
    // Same staged-rename publish discipline as the store itself (minus
    // the fsyncs — losing a sidecar to power loss just quarantines the
    // store on the next rehydrate).
    const std::string staging =
        sidecar + ".tmp." + std::to_string(::getpid());
    std::ofstream os(staging, std::ios::binary | std::ios::trunc);
    os.write(reinterpret_cast<const char*>(writer.bytes().data()),
             static_cast<std::streamsize>(writer.bytes().size()));
    os.close();
    if (!os) {
      remove_quiet(staging);
      throw StoreError(sidecar, "cannot write spec sidecar");
    }
    std::error_code ec;
    fs::rename(staging, sidecar, ec);
    if (ec) {
      remove_quiet(staging);
      throw StoreError(sidecar, "cannot publish spec sidecar: " +
                                    ec.message());
    }
  }

  Entry entry;
  entry.fingerprint = fingerprint;
  entry.spec = spec;
  entry.store_path = store_path;
  entry.bytes = file_bytes(store_path) + file_bytes(sidecar);

  const auto it = by_fingerprint_.find(fingerprint);
  if (it != by_fingerprint_.end()) {
    bytes_ -= it->second->bytes;
    *it->second = entry;
    bytes_ += entry.bytes;
    touch(it->second);
  } else {
    bytes_ += entry.bytes;
    lru_.push_back(entry);
    by_fingerprint_[fingerprint] = std::prev(lru_.end());
  }
  evict_to_budget();
  publish_gauges();
  return entry;
}

void ResultCache::evict_to_budget() {
  static const util::telemetry::Counter evictions("serve.cache.evictions");
  while (bytes_ > options_.budget_bytes && lru_.size() > 1) {
    const Entry& victim = lru_.front();
    remove_quiet(victim.store_path);
    remove_quiet(sidecar_of(victim.store_path));
    bytes_ -= victim.bytes;
    by_fingerprint_.erase(victim.fingerprint);
    lru_.pop_front();
    evictions.add();
  }
  publish_gauges();
}

void ResultCache::touch(std::list<Entry>::iterator it) {
  lru_.splice(lru_.end(), lru_, it);
}

void ResultCache::publish_gauges() const {
  static const util::telemetry::Gauge bytes_gauge("serve.cache.bytes");
  static const util::telemetry::Gauge entries_gauge("serve.cache.entries");
  bytes_gauge.set(static_cast<double>(bytes_));
  entries_gauge.set(static_cast<double>(lru_.size()));
}

}  // namespace ulpdream::serve
