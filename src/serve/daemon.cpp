#include "ulpdream/serve/daemon.hpp"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "ulpdream/util/log.hpp"

namespace ulpdream::serve {

namespace {

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  if (!is) throw campaign::StoreError(path, "cannot open for reading");
  const std::streamsize size = is.tellg();
  is.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  if (size > 0 && !is.read(reinterpret_cast<char*>(bytes.data()), size)) {
    throw campaign::StoreError(path, "short read");
  }
  return bytes;
}

std::string rows_csv_text(const std::vector<campaign::AggregateRow>& rows) {
  std::ostringstream os;
  campaign::write_rows_csv(os, rows);
  return os.str();
}

}  // namespace

Daemon::Daemon(Options options)
    : options_(std::move(options)),
      session_(energy::SystemEnergyModel(), options_.threads),
      cache_(ResultCache::Options{options_.cache_dir,
                                  options_.cache_budget_bytes}),
      listener_(util::Listener::open(options_.listen)) {
  int fds[2];
  if (::pipe(fds) != 0) {
    throw util::SocketError(options_.listen,
                            std::string("pipe: ") + std::strerror(errno));
  }
  stop_rd_ = fds[0];
  stop_wr_ = fds[1];
}

Daemon::~Daemon() {
  if (stop_rd_ >= 0) (void)::close(stop_rd_);
  if (stop_wr_ >= 0) (void)::close(stop_wr_);
}

void Daemon::request_stop() noexcept {
  if (stop_wr_ >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(stop_wr_, &byte, 1);
  }
}

Daemon::Report Daemon::run() {
  util::log_info("serve: daemon listening on ", listener_.endpoint(),
                 " (cache ", cache_.dir(), ": ", cache_.entries(),
                 " entries, ", cache_.bytes(), " bytes rehydrated)");
  for (;;) {
    pollfd fds[2];
    fds[0] = pollfd{listener_.fd(), POLLIN, 0};
    fds[1] = pollfd{stop_rd_, POLLIN, 0};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw util::SocketError(listener_.endpoint(),
                              std::string("poll: ") + std::strerror(errno));
    }
    if ((fds[1].revents & POLLIN) != 0) break;
    if ((fds[0].revents & (POLLIN | POLLERR | POLLHUP)) == 0) continue;
    auto conn = std::make_shared<ClientConn>();
    conn->socket = listener_.accept();
    std::lock_guard lock(mutex_);
    report_.clients += 1;
    conns_.push_back(conn);
    handlers_.emplace_back([this, conn] { handle_client(conn); });
  }

  // Graceful drain: no new connections, idle clients wake to EOF, busy
  // handlers finish and answer their in-flight query, then everyone
  // joins.
  stopping_.store(true);
  listener_.close();
  {
    std::lock_guard lock(mutex_);
    for (const auto& conn : conns_) {
      if (!conn->busy.load()) conn->socket.shutdown();
    }
  }
  for (std::thread& handler : handlers_) handler.join();
  util::log_info("serve: daemon drained (", report_.queries, " queries, ",
                 report_.cache_hits, " hits, ", report_.gap_fills,
                 " gap-fills, ", report_.cold_runs, " cold)");
  std::lock_guard lock(mutex_);
  return report_;
}

void Daemon::handle_client(const std::shared_ptr<ClientConn>& conn) {
  static const util::telemetry::Counter errors("serve.errors");
  static const util::telemetry::Gauge connected("serve.clients_connected");
  connected.set(static_cast<double>(++connected_count_));
  try {
    util::Frame frame;
    while (receive(conn->socket, frame, options_.max_frame_bytes)) {
      Query query;
      try {
        query = decode_query(frame, conn->socket.peer());
      } catch (const ProtocolError& e) {
        // Payload garbage: tell the peer why, then hang up — a client
        // that cannot frame a Query will not frame the next one either.
        errors.add();
        {
          std::lock_guard lock(mutex_);
          report_.errors += 1;
        }
        send(conn->socket, Error{e.what()});
        break;
      }
      if (query.version != kProtocolVersion) {
        errors.add();
        {
          std::lock_guard lock(mutex_);
          report_.errors += 1;
        }
        send(conn->socket,
             Error{"protocol version mismatch: daemon speaks " +
                   std::to_string(kProtocolVersion) + ", client sent " +
                   std::to_string(query.version)});
        continue;
      }
      conn->busy.store(true);
      Result result;
      try {
        result = answer(query, *conn);
      } catch (const util::SocketError&) {
        conn->busy.store(false);
        throw;  // client died mid-query; already cancelled
      } catch (const std::exception& e) {
        // Query-level failure (unknown axis name, bad spec, store I/O):
        // answer with the reason and keep the connection — the client
        // may fix the spec and retry.
        conn->busy.store(false);
        errors.add();
        {
          std::lock_guard lock(mutex_);
          report_.errors += 1;
        }
        send(conn->socket, Error{e.what()});
        if (stopping_.load()) break;
        continue;
      }
      conn->busy.store(false);
      send(conn->socket, result);
      if (stopping_.load()) break;
    }
  } catch (const std::exception& e) {
    util::log_warn("serve: client ", conn->socket.peer(), ": ", e.what());
  }
  conn->socket.close();
  connected.set(static_cast<double>(--connected_count_));
}

Result Daemon::answer(const Query& query, ClientConn& conn) {
  static const util::telemetry::Counter queries("serve.queries");
  static const util::telemetry::Histogram hit_ns("serve.query.hit_ns");
  static const util::telemetry::Histogram cold_ns("serve.query.cold_ns");
  static const util::telemetry::Histogram gap_ns("serve.query.gapfill_ns");
  static const util::telemetry::Counter gap_executed(
      "serve.gapfill.items_executed");
  static const util::telemetry::Counter gap_reused(
      "serve.gapfill.items_reused");
  queries.add();
  {
    std::lock_guard lock(mutex_);
    report_.queries += 1;
  }
  const std::uint64_t t0 = util::telemetry::now_ns();

  const campaign::CampaignSpec spec = query.spec.normalized();
  const std::string fingerprint = spec.fingerprint();
  Result result;
  result.items_total = spec.item_count();

  // 1. Exact hit: answer from the published cache file; the pool is
  // never touched. The file read happens under the cache lock so a
  // concurrent insert's eviction sweep cannot unlink it mid-read.
  {
    std::unique_lock lock(mutex_);
    if (const auto hit = cache_.find(fingerprint)) {
      result.status = CacheStatus::kHit;
      if (query.want_store) result.store_bytes = slurp(hit->store_path);
      if (query.want_rows) {
        const auto store =
            campaign::ColumnarStore::open(hit->store_path, hit->spec);
        result.rows_csv = rows_csv_text(store.aggregate(query.group));
      }
      report_.cache_hits += 1;
      report_.items_reused += spec.item_count();
      lock.unlock();
      hit_ns.record(util::telemetry::now_ns() - t0);
      return result;
    }
  }

  // 2. Overlap gap-fill: adopt the nearest same-family cached store as
  // resume_from. submit() consumes the resume store synchronously (the
  // merge runs on this thread), so `adopted` may die with this frame.
  campaign::ResultStore adopted;
  bool have_donor = false;
  {
    std::lock_guard lock(mutex_);
    if (const auto donor = cache_.best_overlap(spec)) {
      const auto donor_store =
          campaign::ColumnarStore::open(donor->store_path, donor->spec);
      adopted = adopt_prefix(donor_store, spec);
      have_donor = true;
    }
  }

  campaign::SubmitOptions submit_options;
  if (have_donor) submit_options.resume_from = &adopted;
  const campaign::CampaignHandle handle =
      session_.submit(spec, submit_options);

  try {
    for (;;) {
      const campaign::Progress progress = handle.progress();
      send(conn.socket, Progress{progress.items_done, progress.items_total});
      if (progress.finished) break;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.progress_every_ms));
    }
  } catch (...) {
    // The client died mid-execution: stop burning the pool on an answer
    // nobody will read (unclaimed items never start; the partial result
    // is discarded, not cached).
    handle.cancel();
    throw;
  }

  const campaign::Progress final_progress = handle.progress();
  campaign::ResultStore store = handle.take();
  result.items_executed =
      final_progress.items_done - final_progress.items_resumed;
  result.status = have_donor ? CacheStatus::kGapFill : CacheStatus::kCold;

  // 3. Publish to the cache, then answer with the published file's
  // bytes — what the client gets is bit-identical to what the next hit
  // will serve (and to a single-process `campaign` save of this grid).
  {
    std::lock_guard lock(mutex_);
    const ResultCache::Entry entry = cache_.insert(spec, store);
    if (query.want_store) result.store_bytes = slurp(entry.store_path);
    report_.items_executed += result.items_executed;
    if (have_donor) {
      report_.gap_fills += 1;
      report_.items_reused += final_progress.items_resumed;
      gap_executed.add(result.items_executed);
      gap_reused.add(final_progress.items_resumed);
    } else {
      report_.cold_runs += 1;
    }
  }
  if (query.want_rows) {
    result.rows_csv = rows_csv_text(store.aggregate(query.group));
  }
  (have_donor ? gap_ns : cold_ns).record(util::telemetry::now_ns() - t0);
  return result;
}

}  // namespace ulpdream::serve
