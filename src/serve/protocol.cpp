#include "ulpdream/serve/protocol.hpp"

#include "ulpdream/ecg/generator.hpp"
#include "ulpdream/util/telemetry.hpp"

namespace ulpdream::serve {

namespace {

using util::PayloadReader;
using util::PayloadWriter;

void send_frame(util::Socket& socket, MsgType type,
                const PayloadWriter& payload) {
  static const util::telemetry::Counter frames("serve.frames_sent");
  static const util::telemetry::Counter bytes("serve.frames_sent_bytes");
  util::write_frame(socket, static_cast<std::uint32_t>(type),
                    payload.bytes());
  frames.add();
  bytes.add(util::kFrameHeaderBytes + payload.bytes().size());
}

/// Opens a reader after asserting the frame really is `type` — a dist
/// worker (or anything else) that dialed the daemon's port must fail by
/// name, not by field.
PayloadReader open(const util::Frame& frame, const std::string& peer,
                   MsgType type) {
  if (frame.type != static_cast<std::uint32_t>(type)) {
    throw ProtocolError(
        peer, std::string("expected ") + to_string(type) + " frame, got " +
                  to_string(static_cast<MsgType>(frame.type)) + " (type " +
                  std::to_string(frame.type) + ")");
  }
  return PayloadReader(frame.payload, peer, to_string(type));
}

}  // namespace

const char* to_string(MsgType type) noexcept {
  switch (type) {
    case MsgType::kQuery: return "Query";
    case MsgType::kResult: return "Result";
    case MsgType::kProgress: return "Progress";
    case MsgType::kError: return "Error";
  }
  return "unknown";
}

const char* to_string(CacheStatus status) noexcept {
  switch (status) {
    case CacheStatus::kCold: return "cold";
    case CacheStatus::kHit: return "hit";
    case CacheStatus::kGapFill: return "gap-fill";
  }
  return "unknown";
}

void encode_spec(util::PayloadWriter& w, const campaign::CampaignSpec& spec) {
  w.put_u32(static_cast<std::uint32_t>(spec.apps.size()));
  for (const auto& a : spec.apps) w.put_string(a);
  w.put_u32(static_cast<std::uint32_t>(spec.emts.size()));
  for (const auto& e : spec.emts) w.put_string(e);
  w.put_u32(static_cast<std::uint32_t>(spec.voltages.size()));
  for (const double v : spec.voltages) w.put_f64(v);
  w.put_u32(static_cast<std::uint32_t>(spec.records.size()));
  for (const auto& r : spec.records) {
    w.put_string(std::string(ecg::pathology_name(r.pathology)));
    w.put_f64(r.noise_scale);
    w.put_u64(r.seed);
  }
  w.put_u64(spec.repetitions);
  w.put_u64(spec.seed);
  w.put_string(spec.ber_model);
  w.put_f64(spec.fs_hz);
  w.put_f64(spec.duration_s);
}

campaign::CampaignSpec decode_spec(util::PayloadReader& r) {
  campaign::CampaignSpec spec;
  const std::uint32_t n_apps = r.get_u32("n_apps");
  for (std::uint32_t i = 0; i < n_apps; ++i) {
    spec.apps.push_back(r.get_string("app"));
  }
  const std::uint32_t n_emts = r.get_u32("n_emts");
  for (std::uint32_t i = 0; i < n_emts; ++i) {
    spec.emts.push_back(r.get_string("emt"));
  }
  const std::uint32_t n_voltages = r.get_u32("n_voltages");
  for (std::uint32_t i = 0; i < n_voltages; ++i) {
    spec.voltages.push_back(r.get_f64("voltage"));
  }
  const std::uint32_t n_records = r.get_u32("n_records");
  for (std::uint32_t i = 0; i < n_records; ++i) {
    campaign::RecordAxis axis;
    const std::string pathology = r.get_string("pathology");
    axis.pathology = campaign::parse_pathology_list(pathology).front();
    axis.noise_scale = r.get_f64("noise_scale");
    axis.seed = r.get_u64("record_seed");
    spec.records.push_back(axis);
  }
  spec.repetitions = static_cast<std::size_t>(r.get_u64("repetitions"));
  spec.seed = r.get_u64("seed");
  spec.ber_model = r.get_string("ber_model");
  spec.fs_hz = r.get_f64("fs_hz");
  spec.duration_s = r.get_f64("duration_s");
  return spec;
}

std::uint8_t group_mask(const campaign::GroupBy& group) noexcept {
  return static_cast<std::uint8_t>(
      (group.record ? 1u : 0u) | (group.app ? 2u : 0u) |
      (group.emt ? 4u : 0u) | (group.voltage ? 8u : 0u));
}

campaign::GroupBy group_from_mask(std::uint8_t mask) noexcept {
  campaign::GroupBy group;
  group.record = (mask & 1u) != 0;
  group.app = (mask & 2u) != 0;
  group.emt = (mask & 4u) != 0;
  group.voltage = (mask & 8u) != 0;
  return group;
}

void send(util::Socket& socket, const Query& m) {
  PayloadWriter w;
  w.put_u32(m.version);
  encode_spec(w, m.spec);
  w.put_u8(m.want_store ? 1 : 0);
  w.put_u8(m.want_rows ? 1 : 0);
  w.put_u8(group_mask(m.group));
  send_frame(socket, MsgType::kQuery, w);
}

void send(util::Socket& socket, const Result& m) {
  PayloadWriter w;
  w.put_u8(static_cast<std::uint8_t>(m.status));
  w.put_u64(m.items_total);
  w.put_u64(m.items_executed);
  w.put_blob(m.store_bytes);
  w.put_string(m.rows_csv);
  send_frame(socket, MsgType::kResult, w);
}

void send(util::Socket& socket, const Progress& m) {
  PayloadWriter w;
  w.put_u64(m.items_done);
  w.put_u64(m.items_total);
  send_frame(socket, MsgType::kProgress, w);
}

void send(util::Socket& socket, const Error& m) {
  PayloadWriter w;
  w.put_string(m.message);
  send_frame(socket, MsgType::kError, w);
}

Query decode_query(const util::Frame& frame, const std::string& peer) {
  PayloadReader r = open(frame, peer, MsgType::kQuery);
  Query m;
  m.version = r.get_u32("version");
  m.spec = decode_spec(r);
  m.want_store = r.get_u8("want_store") != 0;
  m.want_rows = r.get_u8("want_rows") != 0;
  m.group = group_from_mask(r.get_u8("group_mask"));
  r.finish();
  return m;
}

Result decode_result(const util::Frame& frame, const std::string& peer) {
  PayloadReader r = open(frame, peer, MsgType::kResult);
  Result m;
  m.status = static_cast<CacheStatus>(r.get_u8("status"));
  m.items_total = r.get_u64("items_total");
  m.items_executed = r.get_u64("items_executed");
  m.store_bytes = r.get_blob("store_bytes");
  m.rows_csv = r.get_string("rows_csv");
  r.finish();
  return m;
}

Progress decode_progress(const util::Frame& frame, const std::string& peer) {
  PayloadReader r = open(frame, peer, MsgType::kProgress);
  Progress m;
  m.items_done = r.get_u64("items_done");
  m.items_total = r.get_u64("items_total");
  r.finish();
  return m;
}

Error decode_error(const util::Frame& frame, const std::string& peer) {
  PayloadReader r = open(frame, peer, MsgType::kError);
  Error m;
  m.message = r.get_string("message");
  r.finish();
  return m;
}

bool receive(util::Socket& socket, util::Frame& out,
             std::size_t max_payload) {
  static const util::telemetry::Counter frames("serve.frames_received");
  static const util::telemetry::Counter bytes("serve.frames_received_bytes");
  if (!util::read_frame(socket, out, max_payload)) return false;
  frames.add();
  bytes.add(util::kFrameHeaderBytes + out.payload.size());
  return true;
}

}  // namespace ulpdream::serve
