#pragma once
// Wire protocol of the campaign query daemon — the serve-side sibling of
// dist/protocol.hpp, riding the same ULPDFRM1 framing (util/socket.hpp)
// and the same payload codec (util/wire.hpp). One connection = one
// client; the conversation is client-initiated query/answer and may
// carry any number of queries back-to-back:
//
//   client                          daemon
//   ------                          ------
//   Query{version, spec, wants} ->
//                                <- Progress{items_done, items_total}
//                                   (streamed while the grid executes;
//                                    none for an exact cache hit)
//                                <- Result{status, counts, store, rows}
//                                   or Error{message}, connection kept
//   ... more Queries ...
//   close                           (no goodbye frame)
//
// Message type numbers live in a distinct range from dist's (which are
// 1..12) so a frame from a client that dialed the wrong port fails by
// name ("expected Query frame, got ...") instead of mis-decoding.
//
// The spec codec (encode_spec/decode_spec) is shared between the Query
// payload and the cache directory's sidecar files, so a rehydrating
// daemon decodes the very bytes a client once sent.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "ulpdream/campaign/result_store.hpp"
#include "ulpdream/campaign/spec.hpp"
#include "ulpdream/util/socket.hpp"
#include "ulpdream/util/wire.hpp"

namespace ulpdream::serve {

/// Bump on any wire-visible change; Query carries it and the daemon
/// rejects mismatches with an Error frame quoting both numbers.
inline constexpr std::uint32_t kProtocolVersion = 1;

/// Default cap on a frame payload — results carry whole columnar stores.
inline constexpr std::size_t kMaxFrameBytes = std::size_t(256) << 20;

/// Same typed decode failure as dist (the codec is shared).
using ProtocolError = util::WireError;

enum class MsgType : std::uint32_t {
  kQuery = 32,
  kResult = 33,
  kProgress = 34,
  kError = 35,
};

[[nodiscard]] const char* to_string(MsgType type) noexcept;

/// How the daemon answered: straight from the mapped cache (kHit), by
/// running only the items a cached overlapping store was missing
/// (kGapFill), or by executing the whole grid (kCold).
enum class CacheStatus : std::uint8_t {
  kCold = 0,
  kHit = 1,
  kGapFill = 2,
};

[[nodiscard]] const char* to_string(CacheStatus status) noexcept;

struct Query {
  std::uint32_t version = kProtocolVersion;
  campaign::CampaignSpec spec;
  bool want_store = true;  ///< return the columnar store bytes
  bool want_rows = false;  ///< return aggregate rows as CSV text
  campaign::GroupBy group{};  ///< grouping for want_rows
};

struct Result {
  CacheStatus status = CacheStatus::kCold;
  std::uint64_t items_total = 0;     ///< grid size of the queried spec
  std::uint64_t items_executed = 0;  ///< items actually run (0 on a hit)
  /// Complete columnar store (ULPDCOL1 bytes) of the queried grid, when
  /// want_store — byte-identical to a single-process `campaign` save of
  /// the same spec.
  std::vector<std::uint8_t> store_bytes;
  /// Aggregate rows as CSV (write_rows_csv bytes), when want_rows.
  std::string rows_csv;
};

struct Progress {
  std::uint64_t items_done = 0;
  std::uint64_t items_total = 0;
};

struct Error {
  std::string message;
};

// ---------------------------------------------------------------------------
// Spec codec — shared by the Query payload and cache sidecar files.

void encode_spec(util::PayloadWriter& w, const campaign::CampaignSpec& spec);
/// Decodes the field block encode_spec wrote. Unknown pathology names
/// throw std::invalid_argument listing the valid set (same behaviour as
/// the CLI's axis parsers).
[[nodiscard]] campaign::CampaignSpec decode_spec(util::PayloadReader& r);

/// GroupBy <-> wire bit mask (bit 0 record, 1 app, 2 emt, 3 voltage).
[[nodiscard]] std::uint8_t group_mask(const campaign::GroupBy& group) noexcept;
[[nodiscard]] campaign::GroupBy group_from_mask(std::uint8_t mask) noexcept;

// ---------------------------------------------------------------------------
// Send / receive, mirroring dist: send() encodes and writes one frame;
// decode_*() bounds-checks every field and rejects trailing bytes.

void send(util::Socket& socket, const Query& m);
void send(util::Socket& socket, const Result& m);
void send(util::Socket& socket, const Progress& m);
void send(util::Socket& socket, const Error& m);

[[nodiscard]] Query decode_query(const util::Frame& frame,
                                 const std::string& peer);
[[nodiscard]] Result decode_result(const util::Frame& frame,
                                   const std::string& peer);
[[nodiscard]] Progress decode_progress(const util::Frame& frame,
                                       const std::string& peer);
[[nodiscard]] Error decode_error(const util::Frame& frame,
                                 const std::string& peer);

/// Reads the next frame (false on clean EOF between frames). Wire-level
/// failures surface as util::FrameError.
[[nodiscard]] bool receive(util::Socket& socket, util::Frame& out,
                           std::size_t max_payload = kMaxFrameBytes);

}  // namespace ulpdream::serve
