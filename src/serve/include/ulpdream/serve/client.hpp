#pragma once
// Client side of the query daemon — the library class behind the
// `campaign query` CLI verb and the seam the future pybind11 bindings
// call into. One Client is one connection; query() blocks until the
// daemon answers, invoking on_progress for each streamed Progress frame,
// and the connection stays open for further queries (which is how the
// warm-latency benchmark measures hits without reconnect overhead).

#include <functional>
#include <stdexcept>
#include <string>

#include "ulpdream/campaign/spec.hpp"
#include "ulpdream/serve/protocol.hpp"
#include "ulpdream/util/socket.hpp"

namespace ulpdream::serve {

/// The daemon answered a query with an Error frame (unknown axis name,
/// version mismatch, server-side store failure). The connection is still
/// usable — fix the spec and retry.
class QueryError : public std::runtime_error {
 public:
  explicit QueryError(const std::string& what) : std::runtime_error(what) {}
};

class Client {
 public:
  struct QueryOptions {
    bool want_store = true;
    bool want_rows = false;
    campaign::GroupBy group{};
    /// Invoked on this thread for each Progress frame (an exact cache
    /// hit streams none).
    std::function<void(const Progress&)> on_progress;
  };

  /// Connects to the daemon at "host:port" or "unix:/path". Throws
  /// util::SocketError on connection failure.
  [[nodiscard]] static Client connect(const std::string& endpoint);

  /// Sends one query and blocks until the Result. Throws QueryError on a
  /// daemon-reported Error frame (connection stays usable), and
  /// util::SocketError / util::FrameError / ProtocolError when the
  /// daemon died or sent garbage.
  [[nodiscard]] Result query(const campaign::CampaignSpec& spec,
                             const QueryOptions& options);
  [[nodiscard]] Result query(const campaign::CampaignSpec& spec) {
    return query(spec, QueryOptions{});
  }

  [[nodiscard]] const std::string& endpoint() const noexcept {
    return endpoint_;
  }

 private:
  Client(util::Socket socket, std::string endpoint);

  util::Socket socket_;
  std::string endpoint_;
};

}  // namespace ulpdream::serve
