#pragma once
// The campaign query daemon: a long-lived service that keeps a warm
// campaign::Session (one shared WorkPool) plus a persistent ResultCache
// and answers spec queries over TCP or Unix sockets (serve/protocol.hpp).
//
// Query resolution, in order:
//   1. exact fingerprint hit  — answer straight from the cached columnar
//      file (slurp + optional streaming aggregate); the pool is never
//      touched and no Progress frames are sent.
//   2. overlap gap-fill       — the nearest cached store in the same
//      axes family (records a strict prefix of the query's) is adopted
//      as resume_from and only the gap items execute.
//   3. cold                   — the whole grid executes.
//   Either way the completed store is inserted into the cache, and the
//   Result's store bytes are read back from the published cache file —
//   so what the client receives is byte-identical to what a later hit
//   will serve, and to a single-process `campaign` save of the grid.
//
// Concurrency: one accept loop (poll over the listener and a self-pipe),
// one handler thread per connection, queries from different clients
// interleaving at work-item granularity on the shared Session. The cache
// and counters sit behind one mutex; campaign execution does not.
//
// Shutdown: request_stop() is async-signal-safe (one write to the
// self-pipe) — wire it directly to SIGTERM/SIGINT. The daemon then stops
// accepting, wakes idle connections (they see EOF), lets in-flight
// queries finish and answer, joins every handler, and returns from
// run() with a Report.

#include <atomic>
#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ulpdream/campaign/session.hpp"
#include "ulpdream/serve/cache.hpp"
#include "ulpdream/serve/protocol.hpp"
#include "ulpdream/util/socket.hpp"
#include "ulpdream/util/telemetry.hpp"

namespace ulpdream::serve {

class Daemon {
 public:
  struct Options {
    std::string listen;     ///< "host:port" (port 0 = ephemeral) or "unix:/path"
    std::string cache_dir;  ///< ResultCache directory (required)
    std::uint64_t cache_budget_bytes = std::uint64_t(256) << 20;
    unsigned threads = 0;  ///< session pool size; 0 = hardware_concurrency
    std::size_t max_frame_bytes = kMaxFrameBytes;
    /// Cadence of Progress frames while a query executes.
    std::size_t progress_every_ms = 250;
  };

  /// What run() did, for the CLI's exit summary. Telemetry counters
  /// (serve.*) carry the same facts for metrics scrapes.
  struct Report {
    std::size_t clients = 0;
    std::size_t queries = 0;
    std::size_t cache_hits = 0;
    std::size_t gap_fills = 0;
    std::size_t cold_runs = 0;
    std::size_t errors = 0;
    std::size_t items_executed = 0;
    std::size_t items_reused = 0;  ///< items answered from cached stores
  };

  /// Binds the endpoint, builds the session pool and rehydrates the
  /// cache. Throws on bind/cache failure — fail at startup, not at the
  /// first query.
  explicit Daemon(Options options);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// The resolved listen endpoint (reports the real port for port 0).
  [[nodiscard]] const std::string& endpoint() const noexcept {
    return listener_.endpoint();
  }
  [[nodiscard]] const ResultCache& cache() const noexcept { return cache_; }

  /// Serves until request_stop(), then drains gracefully. Call once.
  Report run();

  /// Async-signal-safe stop request (one write to a self-pipe) — the
  /// SIGTERM/SIGINT handler calls this. Idempotent.
  void request_stop() noexcept;

  /// Metrics accrued since construction (serve.*, session.*, workpool.*,
  /// codec.*, ... — the session's baseline diff).
  [[nodiscard]] util::telemetry::MetricsSnapshot telemetry() const {
    return session_.telemetry();
  }

 private:
  /// Per-connection state shared between the handler thread and the
  /// drain sweep: drain shuts down idle sockets (busy == false) to wake
  /// their blocked reads; busy handlers finish their query, answer, see
  /// stopping_ and exit.
  struct ClientConn {
    util::Socket socket;
    std::atomic<bool> busy{false};
  };

  void handle_client(const std::shared_ptr<ClientConn>& conn);
  /// Answers one decoded query, streaming Progress frames for executed
  /// grids. Throws SocketError/FrameError when the client dies mid-query
  /// (the in-flight campaign is cancelled first).
  Result answer(const Query& query, ClientConn& conn);

  Options options_;
  campaign::Session session_;
  ResultCache cache_;
  util::Listener listener_;
  int stop_rd_ = -1;
  int stop_wr_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<int> connected_count_{0};

  std::mutex mutex_;  ///< guards cache_, report_, conns_
  Report report_;
  std::vector<std::shared_ptr<ClientConn>> conns_;
  std::vector<std::thread> handlers_;
};

}  // namespace ulpdream::serve
