#pragma once
// The query daemon's warm-result store: a byte-budgeted LRU of completed
// columnar campaign stores keyed on CampaignSpec::fingerprint(), persisted
// in one cache directory so a restarted daemon rehydrates its working set
// from disk instead of recomputing it.
//
// On-disk layout: each entry is a pair of files named by the spec's
// 64-bit fingerprint hash —
//   <hash>.ulpdcol   the complete columnar store (ResultStore::
//                    save_columnar bytes, byte-identical to a
//                    single-process `campaign` save of the same grid)
//   <hash>.spec      a sidecar holding the wire-encoded spec
//                    (serve::encode_spec bytes), so rehydration recovers
//                    the full spec — the fingerprint alone cannot be
//                    parsed back into axes.
//
// Rehydration walks the directory oldest-mtime-first (so the rebuilt LRU
// order approximates the pre-restart recency order), decodes each
// sidecar, and validates each store by opening it against its spec. A
// corrupt, truncated or foreign file — anything that throws a typed
// error — is *quarantined*: both files are renamed to "<name>.quarantined"
// and the daemon keeps serving; a bad cache entry must never take the
// service down.
//
// Not thread-safe: the daemon serializes all cache access under one
// mutex (cache operations are directory bookkeeping, not compute).

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ulpdream/campaign/columnar.hpp"
#include "ulpdream/campaign/result_store.hpp"
#include "ulpdream/campaign/spec.hpp"

namespace ulpdream::serve {

/// True when `cached` answers a prefix of `query`'s canonical item space:
/// identical axes fingerprint (apps, emts, voltages, repetitions, seed,
/// ber model, record front-end) and cached.records a strict prefix of
/// query.records. Records are the outermost expansion axis, so exactly
/// then do the common items keep identical canonical indices — and
/// therefore identical mix64 RNG seeds — which is what makes the cached
/// results adoptable verbatim as resume_from for the superset grid.
/// Both specs must be normalized.
[[nodiscard]] bool is_resumable_prefix(const campaign::CampaignSpec& cached,
                                       const campaign::CampaignSpec& query);

/// Re-keys a cached store onto `query`'s grid: a heap ResultStore over
/// the (normalized) query spec holding every done item of `cached`
/// verbatim — the resume_from input for the gap run. Requires
/// is_resumable_prefix(cached.spec(), query).
[[nodiscard]] campaign::ResultStore adopt_prefix(
    const campaign::ColumnarStore& cached,
    const campaign::CampaignSpec& query);

class ResultCache {
 public:
  struct Options {
    std::string dir;  ///< cache directory (created if absent)
    /// Evict least-recently-used entries once the summed file bytes
    /// exceed this. The newest entry is always kept, even alone over
    /// budget — evicting the result we just computed would be absurd.
    std::uint64_t budget_bytes = std::uint64_t(256) << 20;
  };

  struct Entry {
    std::string fingerprint;
    campaign::CampaignSpec spec;  ///< normalized
    std::string store_path;       ///< <hash>.ulpdcol under dir
    std::uint64_t bytes = 0;      ///< store + sidecar file bytes
  };

  /// One rehydration casualty: the file that was quarantined and the
  /// typed error (naming the path) that condemned it.
  struct QuarantineEvent {
    std::string path;
    std::string reason;
  };

  /// Creates the directory if needed and rehydrates every valid entry.
  /// Throws std::runtime_error when the directory cannot be created.
  explicit ResultCache(Options options);

  /// Exact hit: the entry for this fingerprint, freshened to
  /// most-recently-used. Counts serve.cache.hits / serve.cache.misses.
  [[nodiscard]] std::optional<Entry> find(const std::string& fingerprint);

  /// Best gap-fill donor for `spec` (normalized): the resumable-prefix
  /// entry covering the most records. nullopt when nothing overlaps.
  /// A returned donor is freshened to most-recently-used.
  [[nodiscard]] std::optional<Entry> best_overlap(
      const campaign::CampaignSpec& spec);

  /// Persists the completed store of `spec` (normalized) — canonical
  /// save_columnar plus the spec sidecar — then evicts LRU entries until
  /// the byte budget holds. Re-inserting an existing fingerprint
  /// refreshes the entry in place. Returns the entry.
  Entry insert(const campaign::CampaignSpec& spec,
               const campaign::ResultStore& store);

  [[nodiscard]] std::size_t entries() const noexcept { return lru_.size(); }
  [[nodiscard]] std::uint64_t bytes() const noexcept { return bytes_; }
  [[nodiscard]] const std::string& dir() const noexcept {
    return options_.dir;
  }
  /// Files quarantined during rehydration (diagnostics / tests).
  [[nodiscard]] const std::vector<QuarantineEvent>& quarantined()
      const noexcept {
    return quarantined_;
  }

 private:
  void rehydrate();
  void evict_to_budget();
  void touch(std::list<Entry>::iterator it);
  void publish_gauges() const;

  Options options_;
  /// LRU order: front = least recent, back = most recent.
  std::list<Entry> lru_;
  std::map<std::string, std::list<Entry>::iterator> by_fingerprint_;
  std::uint64_t bytes_ = 0;
  std::vector<QuarantineEvent> quarantined_;
};

}  // namespace ulpdream::serve
