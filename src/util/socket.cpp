#include "ulpdream/util/socket.hpp"

#include <cerrno>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#define ULPDREAM_HAVE_SOCKETS 1
#endif

namespace ulpdream::util {

#if ULPDREAM_HAVE_SOCKETS

namespace {

std::string errno_text() { return std::strerror(errno); }

/// MSG_NOSIGNAL everywhere a write could hit a dead peer: peer death
/// must surface as EPIPE -> SocketError, never as a process-killing
/// SIGPIPE from inside a worker thread.
#if defined(MSG_NOSIGNAL)
constexpr int kSendFlags = MSG_NOSIGNAL;
#else
constexpr int kSendFlags = 0;
#endif

/// Platforms without MSG_NOSIGNAL (macOS) get the same guarantee
/// per-socket via SO_NOSIGPIPE; elsewhere this is a no-op.
void suppress_sigpipe(int fd) {
#if defined(SO_NOSIGPIPE)
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof(one));
#else
  (void)fd;
#endif
}

/// Completes a connect() that a signal interrupted. POSIX leaves the
/// attempt in progress after EINTR — calling connect() again yields
/// EALREADY (or a spurious EADDRINUSE), NOT a clean retry — so the
/// correct resumption is to wait for writability and read the final
/// status out of SO_ERROR.
int finish_connect(int fd) {
  for (;;) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    const int rc = ::poll(&pfd, 1, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) return -1;
    if (err != 0) {
      errno = err;
      return -1;
    }
    return 0;
  }
}

struct ParsedEndpoint {
  bool is_unix = false;
  std::string unix_path;   ///< when is_unix
  std::string host;        ///< otherwise
  std::uint16_t port = 0;
};

ParsedEndpoint parse_endpoint(const std::string& endpoint) {
  ParsedEndpoint out;
  if (endpoint.rfind("unix:", 0) == 0) {
    out.is_unix = true;
    out.unix_path = endpoint.substr(5);
    if (out.unix_path.empty()) {
      throw SocketError(endpoint, "unix endpoint needs a path (unix:/path)");
    }
    if (out.unix_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      throw SocketError(endpoint, "unix socket path too long");
    }
    return out;
  }
  const auto colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == endpoint.size()) {
    throw SocketError(endpoint,
                      "endpoint must be host:port or unix:/path");
  }
  out.host = endpoint.substr(0, colon);
  const std::string port_text = endpoint.substr(colon + 1);
  char* end = nullptr;
  const unsigned long port = std::strtoul(port_text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || port > 65535) {
    throw SocketError(endpoint, "invalid port '" + port_text + "'");
  }
  out.port = static_cast<std::uint16_t>(port);
  return out;
}

sockaddr_in tcp_address(const ParsedEndpoint& ep,
                        const std::string& endpoint) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  // Numeric IPv4 only (the distributed mode targets localhost/LAN rigs;
  // DNS would drag a resolver into error paths that must stay typed).
  if (inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1) {
    throw SocketError(endpoint,
                      "host must be a numeric IPv4 address (got '" +
                          ep.host + "')");
  }
  return addr;
}

sockaddr_un unix_address(const ParsedEndpoint& ep) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, ep.unix_path.c_str(), ep.unix_path.size() + 1);
  return addr;
}

std::string describe_sockaddr(const sockaddr_in& addr) {
  char text[INET_ADDRSTRLEN] = {};
  inet_ntop(AF_INET, &addr.sin_addr, text, sizeof(text));
  return std::string(text) + ":" + std::to_string(ntohs(addr.sin_port));
}

}  // namespace

Socket Socket::connect(const std::string& endpoint) {
  const ParsedEndpoint ep = parse_endpoint(endpoint);
  const int fd = ::socket(ep.is_unix ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw SocketError(endpoint, "socket: " + errno_text());
  Socket out(fd, endpoint);
  suppress_sigpipe(fd);
  int rc;
  if (ep.is_unix) {
    const sockaddr_un addr = unix_address(ep);
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
    if (rc < 0 && errno == EINTR) rc = finish_connect(fd);
  } else {
    const sockaddr_in addr = tcp_address(ep, endpoint);
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
    if (rc < 0 && errno == EINTR) rc = finish_connect(fd);
    if (rc == 0) {
      const int one = 1;
      // Frames are small request/response turns; never batch them.
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
  }
  if (rc < 0) throw SocketError(endpoint, "connect: " + errno_text());
  return out;
}

std::pair<Socket, Socket> Socket::socketpair(const std::string& label) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    throw SocketError(label, "socketpair: " + errno_text());
  }
  suppress_sigpipe(fds[0]);
  suppress_sigpipe(fds[1]);
  return {Socket(fds[0], label + "[a]"), Socket(fds[1], label + "[b]")};
}

void Socket::write_all(const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (len > 0) {
    const ssize_t n = ::send(fd_, p, len, kSendFlags);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw SocketError(peer_, "send: " + errno_text());
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
}

bool Socket::read_all_or_eof(void* data, std::size_t len) {
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd_, p + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw FrameError(FrameError::Kind::kIo, peer_,
                         "receive timed out mid-read");
      }
      throw FrameError(FrameError::Kind::kIo, peer_,
                       "recv: " + errno_text());
    }
    if (n == 0) {
      if (got == 0) return false;
      throw FrameError(FrameError::Kind::kTruncated, peer_,
                       "peer closed the connection mid-frame (" +
                           std::to_string(got) + " of " +
                           std::to_string(len) + " bytes)");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void Socket::set_recv_timeout(std::size_t milliseconds) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(milliseconds / 1000);
  tv.tv_usec = static_cast<suseconds_t>((milliseconds % 1000) * 1000);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    throw SocketError(peer_, "setsockopt(SO_RCVTIMEO): " + errno_text());
  }
}

void Socket::shutdown() noexcept {
  if (fd_ >= 0) (void)::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    (void)::close(fd_);
    fd_ = -1;
  }
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    endpoint_ = std::move(other.endpoint_);
    unlink_path_ = std::move(other.unlink_path_);
    other.fd_ = -1;
    other.unlink_path_.clear();
  }
  return *this;
}

Listener Listener::open(const std::string& endpoint) {
  const ParsedEndpoint ep = parse_endpoint(endpoint);
  Listener out;
  out.fd_ = ::socket(ep.is_unix ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
  if (out.fd_ < 0) throw SocketError(endpoint, "socket: " + errno_text());
  if (ep.is_unix) {
    // A stale socket file from a crashed coordinator would fail bind
    // with EADDRINUSE forever; unlink it first (connect() to a live one
    // would have succeeded, so this only removes corpses or collides
    // with a concurrent coordinator the deployment misconfigured).
    (void)::unlink(ep.unix_path.c_str());
    const sockaddr_un addr = unix_address(ep);
    if (::bind(out.fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      throw SocketError(endpoint, "bind: " + errno_text());
    }
    out.unlink_path_ = ep.unix_path;
    out.endpoint_ = endpoint;
  } else {
    const int one = 1;
    (void)::setsockopt(out.fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr = tcp_address(ep, endpoint);
    if (::bind(out.fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      throw SocketError(endpoint, "bind: " + errno_text());
    }
    socklen_t addr_len = sizeof(addr);
    if (::getsockname(out.fd_, reinterpret_cast<sockaddr*>(&addr),
                      &addr_len) != 0) {
      throw SocketError(endpoint, "getsockname: " + errno_text());
    }
    out.endpoint_ = describe_sockaddr(addr);  // resolves port 0
  }
  if (::listen(out.fd_, 64) != 0) {
    throw SocketError(endpoint, "listen: " + errno_text());
  }
  return out;
}

Socket Listener::accept() {
  for (;;) {
    sockaddr_storage addr{};
    socklen_t addr_len = sizeof(addr);
    const int fd =
        ::accept(fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
    if (fd < 0) {
      if (errno == EINTR) continue;
      throw SocketError(endpoint_, "accept: " + errno_text());
    }
    suppress_sigpipe(fd);
    std::string peer;
    if (addr.ss_family == AF_INET) {
      peer = describe_sockaddr(*reinterpret_cast<const sockaddr_in*>(&addr));
      const int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    } else {
      peer = endpoint_ + "#client";
    }
    return Socket(fd, peer);
  }
}

void Listener::close() noexcept {
  if (fd_ >= 0) {
    // shutdown() first: close() alone does not wake a thread blocked in
    // accept() on this fd, but shutting the listening socket down makes
    // that accept return (EINVAL) before the fd is freed.
    (void)::shutdown(fd_, SHUT_RDWR);
    (void)::close(fd_);
    fd_ = -1;
  }
  if (!unlink_path_.empty()) {
    (void)::unlink(unlink_path_.c_str());
    unlink_path_.clear();
  }
}

#else  // !ULPDREAM_HAVE_SOCKETS

namespace {
[[noreturn]] void unsupported() {
  throw SocketError("sockets", "not supported on this platform");
}
}  // namespace

Socket Socket::connect(const std::string&) { unsupported(); }
std::pair<Socket, Socket> Socket::socketpair(const std::string&) {
  unsupported();
}
void Socket::write_all(const void*, std::size_t) { unsupported(); }
bool Socket::read_all_or_eof(void*, std::size_t) { unsupported(); }
void Socket::set_recv_timeout(std::size_t) { unsupported(); }
void Socket::shutdown() noexcept {}
void Socket::close() noexcept { fd_ = -1; }
Listener& Listener::operator=(Listener&& other) noexcept {
  fd_ = other.fd_;
  other.fd_ = -1;
  return *this;
}
Listener Listener::open(const std::string&) { unsupported(); }
Socket Listener::accept() { unsupported(); }
void Listener::close() noexcept { fd_ = -1; }

#endif  // ULPDREAM_HAVE_SOCKETS

// ---------------------------------------------------------------------------
// Framing (platform-independent over the Socket primitives).

void write_frame(Socket& socket, std::uint32_t type,
                 const std::uint8_t* payload, std::size_t len) {
  std::uint8_t header[kFrameHeaderBytes];
  std::memcpy(header, kFrameMagic, 8);
  std::memcpy(header + 8, &type, 4);
  const std::uint32_t reserved = 0;
  std::memcpy(header + 12, &reserved, 4);
  const std::uint64_t len64 = len;
  std::memcpy(header + 16, &len64, 8);
  socket.write_all(header, sizeof(header));
  if (len != 0) socket.write_all(payload, len);
}

bool read_frame(Socket& socket, Frame& out, std::size_t max_payload) {
  std::uint8_t header[kFrameHeaderBytes];
  if (!socket.read_all_or_eof(header, sizeof(header))) return false;
  if (std::memcmp(header, kFrameMagic, 8) != 0) {
    throw FrameError(FrameError::Kind::kBadMagic, socket.peer(),
                     "bad frame magic — peer is not speaking the ulpdream "
                     "frame protocol");
  }
  std::memcpy(&out.type, header + 8, 4);
  std::uint64_t len = 0;
  std::memcpy(&len, header + 16, 8);
  if (len > max_payload) {
    throw FrameError(FrameError::Kind::kOversized, socket.peer(),
                     "frame payload of " + std::to_string(len) +
                         " bytes exceeds the " +
                         std::to_string(max_payload) + "-byte cap");
  }
  out.payload.resize(static_cast<std::size_t>(len));
  if (len != 0 &&
      !socket.read_all_or_eof(out.payload.data(), out.payload.size())) {
    throw FrameError(FrameError::Kind::kTruncated, socket.peer(),
                     "peer closed the connection between a frame header "
                     "and its payload");
  }
  return true;
}

}  // namespace ulpdream::util
