#include "ulpdream/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ulpdream::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::sem() const noexcept {
  if (n_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double QuantileSketch::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument("Histogram: need hi > lo and bins > 0");
  }
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::size_t>((x - lo_) / width);
  if (idx >= counts_.size()) idx = counts_.size() - 1;
  ++counts_[idx];
}

std::size_t Histogram::bin_count(std::size_t i) const { return counts_.at(i); }

double Histogram::bin_lo(std::size_t i) const noexcept {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const noexcept {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i + 1);
}

}  // namespace ulpdream::util
