#include "ulpdream/util/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace ulpdream::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

std::mutex& sink_mutex() {
  static std::mutex* m = new std::mutex();  // leaked: loggable past exit
  return *m;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, const std::string& msg) {
  // One formatted write under the lock: interleaving happens between
  // lines, not inside them. (Built with append(): GCC 12's -Wrestrict
  // misfires on the equivalent operator+ chain.)
  std::string line;
  line.reserve(msg.size() + 10);
  line.append("[").append(level_name(level)).append("] ");
  line.append(msg).append("\n");
  const std::lock_guard lock(sink_mutex());
  std::cerr << line;
}

}  // namespace ulpdream::util
