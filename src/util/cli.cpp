#include "ulpdream/util/cli.hpp"

#include <cstdlib>
#include <sstream>

namespace ulpdream::util {

std::vector<std::string> split_list(const std::string& list, char sep) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream is(list);
  while (std::getline(is, item, sep)) {
    if (!item.empty()) out.push_back(std::move(item));
  }
  return out;
}

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool Cli::has(const std::string& key) const { return values_.count(key) > 0; }

std::string Cli::get(const std::string& key, const std::string& def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

double Cli::get_double(const std::string& key, double def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

std::int64_t Cli::get_int(const std::string& key, std::int64_t def) const {
  const auto it = values_.find(key);
  return it == values_.end()
             ? def
             : std::strtoll(it->second.c_str(), nullptr, 10);
}

bool Cli::get_bool(const std::string& key, bool def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace ulpdream::util
