#include "ulpdream/util/work_pool.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>

#include "ulpdream/util/telemetry.hpp"

namespace ulpdream::util {

namespace {

/// Per-worker counter name; workers past 31 share one bucket so a huge
/// pool cannot exhaust the registry's counter id space.
std::string worker_metric(unsigned worker_id, const char* what) {
  return "workpool.w" +
         (worker_id < 32 ? std::to_string(worker_id) : std::string("rest")) +
         "." + what;
}

}  // namespace

// Shared between the pool and every job it ever issued, so job handles
// stay safe to poll (and to wait on) after the pool is destroyed.
struct WorkPool::State {
  std::mutex mutex;
  std::condition_variable work_cv;  ///< workers: claimable work or stop
  std::condition_variable done_cv;  ///< waiters: some job finished
  std::deque<std::shared_ptr<Job>> jobs;  ///< unfinished jobs, FIFO
  unsigned threads = 1;
  unsigned parked = 0;  ///< workers blocked in work_cv.wait (no busy poll)
  bool stop = false;

  /// True when `job` can hand out another index.
  [[nodiscard]] static bool claimable(const Job& job) noexcept {
    return job.started_ && !job.cancelled_ && !job.error_ &&
           job.next_ < job.count_;
  }

  /// Marks `job` finished once nothing can be claimed and nothing is in
  /// flight; drops it from the queue and releases its closures (they may
  /// own the caller's context — keeping them would leak it through
  /// handle/factory reference cycles). A deferred job that was never
  /// started only finishes through cancellation. Caller holds `mutex`.
  void finish_if_drained(const std::shared_ptr<Job>& job) {
    if (job->finished_ || claimable(*job) || job->in_flight_ != 0 ||
        (!job->started_ && !job->cancelled_)) {
      return;
    }
    job->finished_ = true;
    job->factory_ = nullptr;
    for (Job::Slot& slot : job->slots_) slot.fn = nullptr;
    jobs.erase(std::remove(jobs.begin(), jobs.end(), job), jobs.end());
    queue_depth().set(static_cast<double>(jobs.size()));
    done_cv.notify_all();
  }

  /// Unfinished jobs currently queued on the pool.
  static const telemetry::Gauge& queue_depth() {
    static const telemetry::Gauge gauge("workpool.jobs_queued");
    return gauge;
  }

  /// Workers currently parked on the condition variable — the proof the
  /// idle path blocks in the kernel instead of spinning (a full pool at
  /// rest reads threads here and burns no measurable CPU; see
  /// WorkPool.IdleWorkersParkWithoutBurningCpu).
  static const telemetry::Gauge& parked_workers() {
    static const telemetry::Gauge gauge("workpool.parked_workers");
    return gauge;
  }
};

WorkPool::Job::Job(std::shared_ptr<State> state, std::size_t count,
                   WorkerFactory factory)
    : state_(std::move(state)),
      count_(count),
      factory_(std::move(factory)),
      slots_(state_->threads) {}

void WorkPool::Job::wait() {
  std::unique_lock lock(state_->mutex);
  state_->done_cv.wait(lock, [&] { return finished_; });
  if (error_) std::rethrow_exception(error_);
}

void WorkPool::Job::cancel() {
  const std::lock_guard lock(state_->mutex);
  if (finished_) return;
  cancelled_ = true;
  // Self may be mid-flight; finish now if nothing is running.
  for (const std::shared_ptr<Job>& job : state_->jobs) {
    if (job.get() == this) {
      state_->finish_if_drained(job);
      break;
    }
  }
}

void WorkPool::Job::start() {
  const std::lock_guard lock(state_->mutex);
  if (started_) return;
  started_ = true;
  for (const std::shared_ptr<Job>& job : state_->jobs) {
    if (job.get() == this) {
      state_->finish_if_drained(job);  // count == 0 finishes immediately
      break;
    }
  }
  state_->work_cv.notify_all();
}

bool WorkPool::Job::finished() const {
  const std::lock_guard lock(state_->mutex);
  return finished_;
}

bool WorkPool::Job::cancelled() const {
  const std::lock_guard lock(state_->mutex);
  return cancelled_;
}

std::size_t WorkPool::Job::done() const {
  const std::lock_guard lock(state_->mutex);
  return done_;
}

std::vector<std::size_t> WorkPool::Job::done_per_worker() const {
  const std::lock_guard lock(state_->mutex);
  std::vector<std::size_t> out;
  out.reserve(slots_.size());
  for (const Slot& slot : slots_) out.push_back(slot.done);
  return out;
}

WorkPool::WorkPool(unsigned threads) : state_(std::make_shared<State>()) {
  state_->threads =
      threads != 0 ? threads
                   : std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(state_->threads);
  for (unsigned w = 0; w < state_->threads; ++w) {
    workers_.emplace_back([this, w] { worker_main(w); });
  }
}

WorkPool::~WorkPool() {
  {
    const std::lock_guard lock(state_->mutex);
    state_->stop = true;
    // Cancel whatever is still queued; in-flight indices drain before
    // the workers exit, so every job handle ends up finished.
    const auto jobs = state_->jobs;  // finish_if_drained erases from jobs
    for (const std::shared_ptr<Job>& job : jobs) {
      job->cancelled_ = true;
      state_->finish_if_drained(job);
    }
    state_->work_cv.notify_all();
  }
  for (std::thread& t : workers_) t.join();
}

std::shared_ptr<WorkPool::Job> WorkPool::submit(std::size_t count,
                                                WorkerFactory factory) {
  std::shared_ptr<Job> job = submit_deferred(count, std::move(factory));
  job->start();
  return job;
}

std::shared_ptr<WorkPool::Job> WorkPool::submit_deferred(
    std::size_t count, WorkerFactory factory) {
  // make_shared needs a public ctor; the private one keeps Job creation
  // inside the pool, so allocate via new.
  std::shared_ptr<Job> job(new Job(state_, count, std::move(factory)));
  const std::lock_guard lock(state_->mutex);
  state_->jobs.push_back(job);
  State::queue_depth().set(static_cast<double>(state_->jobs.size()));
  return job;
}

void WorkPool::run(std::size_t count, WorkerFactory factory) {
  const std::shared_ptr<Job> job = submit(count, std::move(factory));
  job->wait();
  if (job->cancelled()) {
    throw std::runtime_error(
        "WorkPool::run: job cancelled before completion (pool destroyed "
        "mid-run?) — refusing to return truncated work as success");
  }
}

unsigned WorkPool::threads() const noexcept { return state_->threads; }

void WorkPool::worker_main(unsigned worker_id) {
  // Counter/histogram handles resolve their names once per process; the
  // per-item cost below is a few relaxed fetch_adds and two clock reads —
  // noise against ms-scale simulation items.
  static const telemetry::Counter claims("workpool.claims");
  static const telemetry::Counter steals("workpool.steals");
  static const telemetry::Counter busy_total("workpool.busy_ns");
  static const telemetry::Counter idle_total("workpool.idle_ns");
  static const telemetry::Histogram claim_wait("workpool.claim_wait_ns");
  const telemetry::Counter busy(worker_metric(worker_id, "busy_ns"));
  const telemetry::Counter idle(worker_metric(worker_id, "idle_ns"));

  std::unique_lock lock(state_->mutex);
  std::uint64_t seek_start = telemetry::now_ns();
  for (;;) {
    // Claim from the oldest claimable job — FIFO across jobs, one index
    // at a time, so concurrent jobs interleave and cancel is prompt.
    std::shared_ptr<Job> job;
    for (const std::shared_ptr<Job>& candidate : state_->jobs) {
      if (State::claimable(*candidate)) {
        job = candidate;
        break;
      }
    }
    if (!job) {
      if (state_->stop) return;
      ++state_->parked;
      State::parked_workers().set(static_cast<double>(state_->parked));
      state_->work_cv.wait(lock);
      --state_->parked;
      State::parked_workers().set(static_cast<double>(state_->parked));
      continue;
    }
    const std::size_t index = job->next_++;
    ++job->in_flight_;
    claims.add();
    if (job->last_worker_ != ~0u && job->last_worker_ != worker_id) {
      steals.add();
    }
    job->last_worker_ = worker_id;
    lock.unlock();

    const std::uint64_t item_start = telemetry::now_ns();
    const std::uint64_t waited = item_start - seek_start;
    claim_wait.record(waited);
    idle.add(waited);
    idle_total.add(waited);

    Job::Slot& slot = job->slots_[worker_id];
    std::exception_ptr error;
    {
      ULPDREAM_TRACE_SPAN("pool.item");
      try {
        if (!slot.fn) slot.fn = job->factory_();
        slot.fn(index);
      } catch (...) {
        error = std::current_exception();
      }
    }
    const std::uint64_t ran = telemetry::now_ns() - item_start;
    busy.add(ran);
    busy_total.add(ran);
    seek_start = item_start + ran;

    lock.lock();
    --job->in_flight_;
    if (error) {
      // First error wins and parks the job's claims (claimable() is
      // false once error_ is set); wait() rethrows it.
      if (!job->error_) job->error_ = error;
    } else {
      ++job->done_;
      ++slot.done;
    }
    state_->finish_if_drained(job);
  }
}

}  // namespace ulpdream::util
