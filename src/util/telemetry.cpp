#include "ulpdream/util/telemetry.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <istream>
#include <iterator>
#include <memory>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <vector>

#include "ulpdream/util/simd.hpp"
#include "ulpdream/util/table.hpp"

namespace ulpdream::util::telemetry {

namespace {

// ---------------------------------------------------------------------------
// Metrics: fixed-capacity id spaces so thread shards are flat atomic
// arrays that never reallocate — an update is one relaxed fetch_add with
// no locking, and a scrape can walk a shard while its owner keeps
// counting. The caps are far above what the instrumented stack registers
// (a few dozen names); registration past a cap throws loudly rather than
// silently dropping a metric.

constexpr std::uint32_t kMaxCounters = 256;
constexpr std::uint32_t kMaxGauges = 64;
constexpr std::uint32_t kMaxHistograms = 96;
constexpr int kBuckets = 64;  ///< log2 buckets; values clamp to bucket 63

struct HistogramCells {
  std::atomic<std::uint64_t> sum{0};
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
};

/// One thread's private metric cells. ~50 kB; allocated on a thread's
/// first metric update, folded into `retired` when the thread exits.
struct Shard {
  std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
  std::array<std::unique_ptr<HistogramCells>, kMaxHistograms> histograms;

  HistogramCells& histogram(std::uint32_t id) {
    // Owner-thread lazy allocation; scrapers load the pointer with
    // acquire so a freshly published HistogramCells is fully visible.
    HistogramCells* cells = histograms[id].get();
    if (cells == nullptr) {
      histograms[id] = std::make_unique<HistogramCells>();
      cells = histograms[id].get();
    }
    return *cells;
  }
};

struct Registry {
  std::mutex mutex;
  // Name tables (append-only; index == metric id).
  std::map<std::string, std::uint32_t> counter_ids, gauge_ids, histogram_ids;
  std::vector<std::string> counter_names, gauge_names, histogram_names;
  // Live thread shards plus the fold of every exited thread's shard.
  std::vector<std::shared_ptr<Shard>> shards;
  Shard retired;
  // Gauges are global (last write wins), stored as bit-cast doubles.
  std::array<std::atomic<std::uint64_t>, kMaxGauges> gauges{};
};

/// Leaked on purpose: pool workers may still count during static
/// destruction of the main thread's objects.
Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

std::uint32_t register_name(std::map<std::string, std::uint32_t>& ids,
                            std::vector<std::string>& names,
                            const std::string& name, std::uint32_t cap,
                            const char* kind) {
  Registry& r = registry();
  const std::lock_guard lock(r.mutex);
  if (const auto it = ids.find(name); it != ids.end()) return it->second;
  if (names.size() >= cap) {
    throw std::runtime_error(std::string("telemetry: ") + kind +
                             " id space exhausted registering \"" + name +
                             "\" (cap " + std::to_string(cap) + ")");
  }
  const auto id = static_cast<std::uint32_t>(names.size());
  names.push_back(name);
  ids.emplace(name, id);
  return id;
}

/// Folds `from`'s cells into `into` (relaxed loads: the owner thread is
/// gone or the scrape tolerates slightly-stale values by contract).
void fold_shard(Shard& into, const Shard& from) {
  for (std::uint32_t i = 0; i < kMaxCounters; ++i) {
    const std::uint64_t v = from.counters[i].load(std::memory_order_relaxed);
    if (v != 0) into.counters[i].fetch_add(v, std::memory_order_relaxed);
  }
  for (std::uint32_t i = 0; i < kMaxHistograms; ++i) {
    const HistogramCells* cells = from.histograms[i].get();
    if (cells == nullptr) continue;
    HistogramCells& dst = into.histogram(i);
    dst.sum.fetch_add(cells->sum.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    for (int b = 0; b < kBuckets; ++b) {
      const std::uint64_t c = cells->buckets[static_cast<std::size_t>(b)].load(
          std::memory_order_relaxed);
      if (c != 0) {
        dst.buckets[static_cast<std::size_t>(b)].fetch_add(
            c, std::memory_order_relaxed);
      }
    }
  }
}

/// Thread-exit hook: retire this thread's shard so its counts survive.
struct ShardOwner {
  std::shared_ptr<Shard> shard;
  ~ShardOwner() {
    if (shard == nullptr) return;
    Registry& r = registry();
    const std::lock_guard lock(r.mutex);
    fold_shard(r.retired, *shard);
    std::erase(r.shards, shard);
  }
};

thread_local ShardOwner t_shard_owner;
thread_local Shard* t_shard = nullptr;

Shard& shard() {
  if (t_shard != nullptr) return *t_shard;
  auto fresh = std::make_shared<Shard>();
  Registry& r = registry();
  {
    const std::lock_guard lock(r.mutex);
    r.shards.push_back(fresh);
  }
  t_shard_owner.shard = fresh;
  t_shard = fresh.get();
  return *t_shard;
}

int bucket_of(std::uint64_t value) noexcept {
  return std::min(static_cast<int>(std::bit_width(value)), kBuckets - 1);
}

}  // namespace

Counter::Counter(const std::string& name)
    : id_(register_name(registry().counter_ids, registry().counter_names,
                        name, kMaxCounters, "counter")) {}

void Counter::add(std::uint64_t n) const noexcept {
  shard().counters[id_].fetch_add(n, std::memory_order_relaxed);
}

Gauge::Gauge(const std::string& name)
    : id_(register_name(registry().gauge_ids, registry().gauge_names, name,
                        kMaxGauges, "gauge")) {}

void Gauge::set(double value) const noexcept {
  registry().gauges[id_].store(std::bit_cast<std::uint64_t>(value),
                               std::memory_order_relaxed);
}

Histogram::Histogram(const std::string& name)
    : id_(register_name(registry().histogram_ids, registry().histogram_names,
                        name, kMaxHistograms, "histogram")) {}

void Histogram::record(std::uint64_t value) const noexcept {
  HistogramCells& cells = shard().histogram(id_);
  cells.sum.fetch_add(value, std::memory_order_relaxed);
  cells.buckets[static_cast<std::size_t>(bucket_of(value))].fetch_add(
      1, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// HistogramSnapshot.

std::uint64_t HistogramSnapshot::count() const noexcept {
  std::uint64_t n = 0;
  for (const auto& [bucket, c] : buckets) n += c;
  return n;
}

double HistogramSnapshot::mean() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0
                : static_cast<double>(sum) / static_cast<double>(n);
}

double HistogramSnapshot::quantile(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(n)));
  std::uint64_t cum = 0;
  for (const auto& [bucket, c] : buckets) {
    cum += c;
    if (cum >= std::max<std::uint64_t>(target, 1)) {
      // Bucket 0 holds exactly 0; bucket k holds [2^(k-1), 2^k) — report
      // the geometric midpoint 2^(k - 0.5).
      return bucket == 0 ? 0.0 : std::exp2(static_cast<double>(bucket) - 0.5);
    }
  }
  return 0.0;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  sum += other.sum;
  for (const auto& [bucket, c] : other.buckets) buckets[bucket] += c;
}

// ---------------------------------------------------------------------------
// MetricsSnapshot.

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, v] : other.gauges) gauges[name] = v;
  for (const auto& [name, h] : other.histograms) histograms[name].merge(h);
}

MetricsSnapshot MetricsSnapshot::since(const MetricsSnapshot& baseline) const {
  MetricsSnapshot out;
  out.gauges = gauges;
  for (const auto& [name, v] : counters) {
    const auto it = baseline.counters.find(name);
    const std::uint64_t base = it == baseline.counters.end() ? 0 : it->second;
    out.counters[name] = v >= base ? v - base : 0;
  }
  for (const auto& [name, h] : histograms) {
    HistogramSnapshot d;
    const auto it = baseline.histograms.find(name);
    const HistogramSnapshot* base =
        it == baseline.histograms.end() ? nullptr : &it->second;
    d.sum = base != nullptr && base->sum <= h.sum ? h.sum - base->sum : h.sum;
    for (const auto& [bucket, c] : h.buckets) {
      std::uint64_t bc = 0;
      if (base != nullptr) {
        if (const auto bit = base->buckets.find(bucket);
            bit != base->buckets.end()) {
          bc = bit->second;
        }
      }
      if (c > bc) d.buckets[bucket] = c - bc;
    }
    out.histograms[name] = d;
  }
  return out;
}

MetricsSnapshot snapshot() {
  Registry& r = registry();
  MetricsSnapshot out;
  const std::lock_guard lock(r.mutex);
  // Dense fold over the id space first, then name the non-slots.
  Shard total;
  fold_shard(total, r.retired);
  for (const std::shared_ptr<Shard>& s : r.shards) fold_shard(total, *s);
  for (std::uint32_t i = 0; i < r.counter_names.size(); ++i) {
    out.counters[r.counter_names[i]] =
        total.counters[i].load(std::memory_order_relaxed);
  }
  for (std::uint32_t i = 0; i < r.gauge_names.size(); ++i) {
    out.gauges[r.gauge_names[i]] = std::bit_cast<double>(
        r.gauges[i].load(std::memory_order_relaxed));
  }
  for (std::uint32_t i = 0; i < r.histogram_names.size(); ++i) {
    HistogramSnapshot h;
    if (const HistogramCells* cells = total.histograms[i].get()) {
      h.sum = cells->sum.load(std::memory_order_relaxed);
      for (int b = 0; b < kBuckets; ++b) {
        const std::uint64_t c =
            cells->buckets[static_cast<std::size_t>(b)].load(
                std::memory_order_relaxed);
        if (c != 0) h.buckets[b] = c;
      }
    }
    out.histograms[r.histogram_names[i]] = h;
  }
  // State gauges injected at scrape time so the hot paths never pay for
  // keeping them fresh.
  out.gauges["simd.active_tier"] =
      static_cast<double>(static_cast<int>(simd::active_tier()));
  return out;
}

void reset_metrics() {
  Registry& r = registry();
  const std::lock_guard lock(r.mutex);
  auto zero = [](Shard& s) {
    for (auto& c : s.counters) c.store(0, std::memory_order_relaxed);
    for (auto& h : s.histograms) {
      if (h == nullptr) continue;
      h->sum.store(0, std::memory_order_relaxed);
      for (auto& b : h->buckets) b.store(0, std::memory_order_relaxed);
    }
  };
  zero(r.retired);
  for (const std::shared_ptr<Shard>& s : r.shards) zero(*s);
}

namespace detail {
std::atomic<bool> g_hot_timing{false};
}  // namespace detail

void set_hot_timing(bool on) noexcept {
  detail::g_hot_timing.store(on, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Metrics JSON: a flat three-section document, keys sorted, u64 values in
// decimal and gauges through fmt_exact — write -> read -> write is
// byte-identical (telemetry_test pins this).

namespace {

void json_escape(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default: os << ch; break;
    }
  }
  os << '"';
}

struct JsonParser {
  const std::string& text;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("MetricsSnapshot::read_json: " + what +
                                " at offset " + std::to_string(pos));
  }
  void skip_ws() {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t' ||
                                 text[pos] == '\n' || text[pos] == '\r')) {
      ++pos;
    }
  }
  char peek() {
    skip_ws();
    if (pos >= text.size()) fail("unexpected end");
    return text[pos];
  }
  void expect(char ch) {
    if (peek() != ch) fail(std::string("expected '") + ch + "'");
    ++pos;
  }
  bool consume(char ch) {
    if (peek() != ch) return false;
    ++pos;
    return true;
  }
  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos < text.size() && text[pos] != '"') {
      char ch = text[pos++];
      if (ch == '\\') {
        if (pos >= text.size()) fail("bad escape");
        switch (text[pos++]) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          default: fail("unsupported escape");
        }
      } else {
        out.push_back(ch);
      }
    }
    if (pos >= text.size()) fail("unterminated string");
    ++pos;
    return out;
  }
  std::uint64_t parse_u64() {
    skip_ws();
    const std::size_t start = pos;
    while (pos < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
    if (pos == start) fail("expected unsigned integer");
    return std::stoull(text.substr(start, pos - start));
  }
  double parse_double() {
    skip_ws();
    const std::size_t start = pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '-' || text[pos] == '+' || text[pos] == '.' ||
            text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
    }
    if (pos == start) fail("expected number");
    return parse_double_exact(text.substr(start, pos - start));
  }
};

}  // namespace

void MetricsSnapshot::write_json(std::ostream& os) const {
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    json_escape(os, name);
    os << ": " << v;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    json_escape(os, name);
    os << ": " << fmt_exact(v);
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    json_escape(os, name);
    os << ": {\"sum\": " << h.sum << ", \"buckets\": {";
    bool bfirst = true;
    for (const auto& [bucket, c] : h.buckets) {
      os << (bfirst ? "" : ", ") << '"' << bucket << "\": " << c;
      bfirst = false;
    }
    os << "}}";
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
}

MetricsSnapshot MetricsSnapshot::read_json(std::istream& is) {
  const std::string text(std::istreambuf_iterator<char>(is), {});
  JsonParser p{text};
  MetricsSnapshot out;
  p.expect('{');
  for (int section = 0; section < 3; ++section) {
    const std::string key = p.parse_string();
    p.expect(':');
    p.expect('{');
    if (key == "counters") {
      if (!p.consume('}')) {
        do {
          const std::string name = p.parse_string();
          p.expect(':');
          out.counters[name] = p.parse_u64();
        } while (p.consume(','));
        p.expect('}');
      }
    } else if (key == "gauges") {
      if (!p.consume('}')) {
        do {
          const std::string name = p.parse_string();
          p.expect(':');
          out.gauges[name] = p.parse_double();
        } while (p.consume(','));
        p.expect('}');
      }
    } else if (key == "histograms") {
      if (!p.consume('}')) {
        do {
          const std::string name = p.parse_string();
          p.expect(':');
          p.expect('{');
          HistogramSnapshot h;
          do {
            const std::string field = p.parse_string();
            p.expect(':');
            if (field == "sum") {
              h.sum = p.parse_u64();
            } else if (field == "buckets") {
              p.expect('{');
              if (!p.consume('}')) {
                do {
                  const std::string bucket = p.parse_string();
                  p.expect(':');
                  h.buckets[std::stoi(bucket)] = p.parse_u64();
                } while (p.consume(','));
                p.expect('}');
              }
            } else {
              p.fail("unknown histogram field \"" + field + "\"");
            }
          } while (p.consume(','));
          p.expect('}');
          out.histograms[name] = h;
        } while (p.consume(','));
        p.expect('}');
      }
    } else {
      p.fail("unknown section \"" + key + "\"");
    }
    if (section < 2) p.expect(',');
  }
  p.expect('}');
  return out;
}

// ---------------------------------------------------------------------------
// Trace recorder.

namespace {

constexpr std::size_t kRingCapacity = 1 << 15;  ///< events per thread
constexpr std::uint64_t kInstantDur = ~std::uint64_t{0};

struct TraceEvent {
  const char* name;
  std::uint64_t ts_ns;
  std::uint64_t dur_ns;  ///< kInstantDur marks an instant event
};

/// Single-producer ring: the owning thread writes the entry, then
/// publishes it with a release store of the new count; readers
/// acquire-load the count and see fully-written entries. A full ring
/// drops the event (and counts the drop) — the producer never blocks and
/// never overwrites an entry a reader might be walking.
struct TraceRing {
  explicit TraceRing(std::uint32_t tid_) : tid(tid_) {
    events.resize(kRingCapacity);
  }
  std::vector<TraceEvent> events;
  std::atomic<std::size_t> count{0};
  std::atomic<std::uint64_t> dropped{0};
  std::uint32_t tid;

  void push(const TraceEvent& e) noexcept {
    const std::size_t n = count.load(std::memory_order_relaxed);
    if (n >= kRingCapacity) {
      dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    events[n] = e;
    count.store(n + 1, std::memory_order_release);
  }
};

struct TraceState {
  std::mutex mutex;
  std::vector<std::shared_ptr<TraceRing>> rings;
  std::deque<std::string> arena;  ///< intern() storage, stable addresses
  std::map<std::string, const char*> interned;
  std::uint32_t next_tid = 1;
};

TraceState& trace_state() {
  static TraceState* s = new TraceState();
  return *s;
}

std::chrono::steady_clock::time_point trace_epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

thread_local TraceRing* t_ring = nullptr;

TraceRing& ring() {
  if (t_ring != nullptr) return *t_ring;
  TraceState& s = trace_state();
  const std::lock_guard lock(s.mutex);
  auto fresh = std::make_shared<TraceRing>(s.next_tid++);
  s.rings.push_back(fresh);
  t_ring = fresh.get();
  return *t_ring;
}

}  // namespace

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - trace_epoch())
          .count());
}

const char* intern(const std::string& name) {
  TraceState& s = trace_state();
  const std::lock_guard lock(s.mutex);
  if (const auto it = s.interned.find(name); it != s.interned.end()) {
    return it->second;
  }
  s.arena.push_back(name);
  const char* p = s.arena.back().c_str();
  s.interned.emplace(name, p);
  return p;
}

namespace trace {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

void start() noexcept {
  (void)trace_epoch();  // pin the epoch before the first event
  detail::g_enabled.store(true, std::memory_order_relaxed);
}

void stop() noexcept {
  detail::g_enabled.store(false, std::memory_order_relaxed);
}

void reset() {
  TraceState& s = trace_state();
  const std::lock_guard lock(s.mutex);
  for (const std::shared_ptr<TraceRing>& r : s.rings) {
    r->count.store(0, std::memory_order_relaxed);
    r->dropped.store(0, std::memory_order_relaxed);
  }
}

std::size_t event_count() {
  TraceState& s = trace_state();
  const std::lock_guard lock(s.mutex);
  std::size_t n = 0;
  for (const std::shared_ptr<TraceRing>& r : s.rings) {
    n += r->count.load(std::memory_order_acquire);
  }
  return n;
}

void write_chrome_json(std::ostream& os) {
  struct Row {
    TraceEvent event;
    std::uint32_t tid;
  };
  std::vector<Row> rows;
  std::uint64_t dropped = 0;
  std::uint32_t max_tid = 0;
  {
    TraceState& s = trace_state();
    const std::lock_guard lock(s.mutex);
    for (const std::shared_ptr<TraceRing>& r : s.rings) {
      const std::size_t n = r->count.load(std::memory_order_acquire);
      for (std::size_t i = 0; i < n; ++i) {
        rows.push_back({r->events[i], r->tid});
      }
      dropped += r->dropped.load(std::memory_order_relaxed);
      max_tid = std::max(max_tid, r->tid);
    }
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const Row& a, const Row& b) {
                     return a.event.ts_ns < b.event.ts_ns;
                   });
  os << "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [\n";
  os << R"({"name": "process_name", "ph": "M", "pid": 1, "args": )"
     << R"({"name": "ulpdream"}})";
  for (std::uint32_t tid = 1; tid <= max_tid; ++tid) {
    os << ",\n"
       << R"({"name": "thread_name", "ph": "M", "pid": 1, "tid": )" << tid
       << R"(, "args": {"name": "thread )" << tid << "\"}}";
  }
  for (const Row& row : rows) {
    os << ",\n{\"name\": ";
    json_escape(os, row.event.name);
    // Chrome trace timestamps are microseconds; fractional keeps the ns.
    os << ", \"ph\": " << (row.event.dur_ns == kInstantDur ? "\"i\"" : "\"X\"")
       << ", \"ts\": " << fmt_exact(static_cast<double>(row.event.ts_ns) / 1e3);
    if (row.event.dur_ns == kInstantDur) {
      os << ", \"s\": \"t\"";
    } else {
      os << ", \"dur\": "
         << fmt_exact(static_cast<double>(row.event.dur_ns) / 1e3);
    }
    os << ", \"pid\": 1, \"tid\": " << row.tid << "}";
  }
  if (dropped != 0) {
    os << ",\n"
       << R"({"name": "telemetry.dropped_events", "ph": "i", "ts": 0, )"
       << R"("s": "g", "pid": 1, "tid": 0, "args": {"count": )" << dropped
       << "}}";
  }
  os << "\n]}\n";
}

}  // namespace trace

namespace detail {

void emit_span(const char* name, std::uint64_t start_ns) noexcept {
  ring().push({name, start_ns, now_ns() - start_ns});
}

void emit_instant(const char* name) noexcept {
  ring().push({name, now_ns(), kInstantDur});
}

}  // namespace detail

// ---------------------------------------------------------------------------
// ULPDREAM_TRACE=out.json: arm tracing at load time, write at exit.

namespace {

std::string& env_trace_path() {
  static std::string* path = new std::string();
  return *path;
}

void flush_env_trace() {
  trace::stop();
  std::ofstream os(env_trace_path());
  if (os) trace::write_chrome_json(os);
}

struct EnvTraceInit {
  EnvTraceInit() {
    if (const char* p = std::getenv("ULPDREAM_TRACE");
        p != nullptr && *p != '\0') {
      env_trace_path() = p;
      trace::start();
      std::atexit(flush_env_trace);
    }
  }
};

const EnvTraceInit g_env_trace_init;

}  // namespace

}  // namespace ulpdream::util::telemetry
