#include "ulpdream/util/rng.hpp"

#include <cmath>

namespace ulpdream::util {

std::uint64_t Xoshiro256::bounded(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless method.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t t = (0ULL - bound) % bound;
    while (l < t) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256::gaussian() noexcept {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  have_spare_ = true;
  return u * factor;
}

std::uint64_t Xoshiro256::binomial(std::uint64_t n, double p) noexcept {
  if (p <= 0.0 || n == 0) return 0;
  if (p >= 1.0) return n;
  const double np = static_cast<double>(n) * p;
  if (np < 30.0) {
    // Inversion by sequential search on the CDF; O(np) expected.
    const double q = 1.0 - p;
    double pk = std::pow(q, static_cast<double>(n));  // P(X = 0)
    double cdf = pk;
    const double u = uniform();
    std::uint64_t k = 0;
    while (u > cdf && k < n) {
      pk *= (static_cast<double>(n - k) / static_cast<double>(k + 1)) *
            (p / q);
      cdf += pk;
      ++k;
    }
    return k;
  }
  // Normal approximation with continuity correction, clamped to [0, n].
  const double sigma = std::sqrt(np * (1.0 - p));
  const double draw = std::round(gaussian(np, sigma));
  if (draw < 0.0) return 0;
  if (draw > static_cast<double>(n)) return n;
  return static_cast<std::uint64_t>(draw);
}

}  // namespace ulpdream::util
