#include "ulpdream/util/wire.hpp"

namespace ulpdream::util {

void PayloadReader::need(std::uint64_t len, const char* field) const {
  if (len > bytes_.size() - pos_) {
    throw WireError(peer_, std::string("malformed ") + msg_ +
                               ": truncated field '" + field + "' (" +
                               std::to_string(len) + " bytes claimed, " +
                               std::to_string(bytes_.size() - pos_) +
                               " available)");
  }
}

void PayloadReader::finish() const {
  if (pos_ != bytes_.size()) {
    throw WireError(peer_, std::string("malformed ") + msg_ + ": " +
                               std::to_string(bytes_.size() - pos_) +
                               " trailing bytes after the last field");
  }
}

}  // namespace ulpdream::util
