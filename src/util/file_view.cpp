#include "ulpdream/util/file_view.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define ULPDREAM_POSIX_IO 1
#include <cerrno>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace ulpdream::util {

namespace {

[[noreturn]] void io_fail(const std::string& path, const std::string& what) {
  throw std::runtime_error(path + ": " + what);
}

}  // namespace

bool mmap_disabled_by_env() {
  const char* v = std::getenv("ULPDREAM_DISABLE_MMAP");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

// ---------------------------------------------------------------------------
// FileView.

FileView FileView::open(const std::string& path, bool allow_mmap) {
  FileView view;
  view.path_ = path;
#if ULPDREAM_POSIX_IO
  if (allow_mmap && !mmap_disabled_by_env()) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) io_fail(path, "cannot open");
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      io_fail(path, "cannot stat");
    }
    const auto len = static_cast<std::size_t>(st.st_size);
    if (len == 0) {
      // mmap of length 0 is invalid; an empty file is an empty view.
      ::close(fd);
      view.backing_ = Backing::kMapped;
      return view;
    }
    void* base = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);  // the mapping keeps the file alive
    if (base != MAP_FAILED) {
      view.map_base_ = base;
      view.map_len_ = len;
      view.data_ = static_cast<const std::byte*>(base);
      view.size_ = len;
      view.backing_ = Backing::kMapped;
      return view;
    }
    // Fall through to the portable read on mmap failure (e.g. a
    // filesystem that refuses mappings) — degraded, not fatal.
  }
#endif
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) io_fail(path, "cannot open");
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    io_fail(path, "cannot seek");
  }
  const long end = std::ftell(f);
  if (end < 0) {
    std::fclose(f);
    io_fail(path, "cannot tell size");
  }
  std::rewind(f);
  view.buffer_.resize(static_cast<std::size_t>(end));
  if (!view.buffer_.empty() &&
      std::fread(view.buffer_.data(), 1, view.buffer_.size(), f) !=
          view.buffer_.size()) {
    std::fclose(f);
    io_fail(path, "short read");
  }
  std::fclose(f);
  view.data_ = view.buffer_.data();
  view.size_ = view.buffer_.size();
  view.backing_ = Backing::kBuffered;
  return view;
}

FileView::FileView(FileView&& other) noexcept { *this = std::move(other); }

FileView& FileView::operator=(FileView&& other) noexcept {
  if (this == &other) return *this;
#if ULPDREAM_POSIX_IO
  if (map_base_ != nullptr) ::munmap(map_base_, map_len_);
#endif
  path_ = std::move(other.path_);
  buffer_ = std::move(other.buffer_);
  map_base_ = std::exchange(other.map_base_, nullptr);
  map_len_ = std::exchange(other.map_len_, 0);
  backing_ = other.backing_;
  size_ = std::exchange(other.size_, 0);
  data_ = std::exchange(other.data_, nullptr);
  if (backing_ == Backing::kBuffered) data_ = buffer_.data();
  return *this;
}

FileView::~FileView() {
#if ULPDREAM_POSIX_IO
  if (map_base_ != nullptr) ::munmap(map_base_, map_len_);
#endif
}

std::span<const std::byte> FileView::bytes(std::uint64_t offset,
                                           std::uint64_t len) const {
  if (offset > size_ || len > size_ - offset) {
    io_fail(path_, "out-of-bounds read at offset " + std::to_string(offset) +
                       " (+" + std::to_string(len) + " bytes, file is " +
                       std::to_string(size_) + ")");
  }
  return {data_ + offset, static_cast<std::size_t>(len)};
}

// ---------------------------------------------------------------------------
// ChunkedFileReader.

void ChunkedFileReader::FdCloser::operator()(void* f) const {
  if (f != nullptr) std::fclose(static_cast<std::FILE*>(f));
}

ChunkedFileReader::ChunkedFileReader(std::string path,
                                     std::size_t chunk_bytes,
                                     std::size_t max_chunks)
    : path_(std::move(path)),
      chunk_bytes_(chunk_bytes == 0 ? 1 : chunk_bytes),
      max_chunks_(max_chunks == 0 ? 1 : max_chunks) {
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) io_fail(path_, "cannot open");
  file_.reset(f);
  if (std::fseek(f, 0, SEEK_END) != 0) io_fail(path_, "cannot seek");
  const long end = std::ftell(f);
  if (end < 0) io_fail(path_, "cannot tell size");
  size_ = static_cast<std::uint64_t>(end);
}

void ChunkedFileReader::fill(std::uint64_t offset, void* dst,
                             std::size_t len) const {
  auto* f = static_cast<std::FILE*>(file_.get());
#if ULPDREAM_POSIX_IO
  // pread keeps the FILE* position untouched and needs no seek syscall.
  const ::ssize_t got = ::pread(::fileno(f), dst, len,
                                static_cast<::off_t>(offset));
  if (got < 0 || static_cast<std::size_t>(got) != len) {
    io_fail(path_, "short read at offset " + std::to_string(offset));
  }
#else
  if (std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0 ||
      std::fread(dst, 1, len, f) != len) {
    io_fail(path_, "short read at offset " + std::to_string(offset));
  }
#endif
}

const ChunkedFileReader::Chunk& ChunkedFileReader::chunk(
    std::uint64_t chunk_index) const {
  if (const auto it = map_.find(chunk_index); it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);  // promote to front
    return *it->second;
  }
  if (lru_.size() >= max_chunks_) {
    map_.erase(lru_.back().index);
    lru_.pop_back();
  }
  Chunk c;
  c.index = chunk_index;
  const std::uint64_t start = chunk_index * chunk_bytes_;
  const std::size_t len = static_cast<std::size_t>(
      std::min<std::uint64_t>(chunk_bytes_, size_ - start));
  c.bytes.resize(len);
  fill(start, c.bytes.data(), len);
  lru_.push_front(std::move(c));
  map_[chunk_index] = lru_.begin();
  return lru_.front();
}

void ChunkedFileReader::read(std::uint64_t offset, void* dst,
                             std::size_t len) const {
  if (offset > size_ || len > size_ - offset) {
    io_fail(path_, "out-of-bounds read at offset " + std::to_string(offset) +
                       " (+" + std::to_string(len) + " bytes, file is " +
                       std::to_string(size_) + ")");
  }
  auto* out = static_cast<std::byte*>(dst);
  while (len > 0) {
    const std::uint64_t ci = offset / chunk_bytes_;
    const std::size_t in_chunk =
        static_cast<std::size_t>(offset - ci * chunk_bytes_);
    const Chunk& c = chunk(ci);
    const std::size_t take = std::min(len, c.bytes.size() - in_chunk);
    std::memcpy(out, c.bytes.data() + in_chunk, take);
    out += take;
    offset += take;
    len -= take;
  }
}

// ---------------------------------------------------------------------------
// Durability helpers.

void fsync_file(const std::string& path) {
#if ULPDREAM_POSIX_IO
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) io_fail(path, "cannot open for fsync");
  if (::fsync(fd) != 0) {
    ::close(fd);
    io_fail(path, "fsync failed");
  }
  ::close(fd);
#else
  (void)path;
#endif
}

void fsync_parent_dir(const std::string& path) {
#if ULPDREAM_POSIX_IO
  std::string dir;
  if (const auto slash = path.find_last_of('/');
      slash == std::string::npos) {
    dir = ".";
  } else if (slash == 0) {
    dir = "/";
  } else {
    dir = path.substr(0, slash);
  }
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) io_fail(dir, "cannot open directory for fsync");
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    // Some filesystems refuse directory fsync outright; that is a
    // property of the mount, not a torn write — tolerate it.
    if (err == EINVAL || err == ENOTSUP || err == ENOSYS) return;
    io_fail(dir, "directory fsync failed");
  }
  ::close(fd);
#else
  (void)path;
#endif
}

void publish_file_atomic(const std::string& tmp, const std::string& path) {
  try {
    fsync_file(tmp);
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      io_fail(tmp, "cannot rename over " + path);
    }
    // The rename is only durable once the directory entry is; without
    // this, a power cut after "success" can resurrect the old file (or
    // no file) even though the data blocks of the new one are on disk.
    fsync_parent_dir(path);
  } catch (...) {
    std::remove(tmp.c_str());
    throw;
  }
}

}  // namespace ulpdream::util
