#pragma once
// Text-table and CSV emitters shared by benches: every reproduced figure
// prints both a human-readable aligned table and (optionally) a CSV file so
// results can be re-plotted.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace ulpdream::util {

/// Column-aligned text table with a title and optional CSV dump.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Sets the column headers; must be called before adding rows.
  void set_header(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  void add_row_numeric(const std::vector<double>& row, int precision = 3);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const noexcept { return header_.size(); }

  /// Renders the aligned table to the stream.
  void print(std::ostream& os) const;

  /// Writes the table as CSV (header + rows) to the given path.
  /// Returns false (and leaves no partial file guarantees) on I/O failure.
  bool write_csv(const std::string& path) const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper used across benches).
[[nodiscard]] std::string fmt(double value, int precision = 3);

/// Formats a value in engineering style with a unit (e.g. "12.3 pJ").
[[nodiscard]] std::string fmt_eng(double value, const std::string& unit);

}  // namespace ulpdream::util
