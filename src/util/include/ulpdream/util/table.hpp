#pragma once
// Text-table and CSV emitters shared by benches: every reproduced figure
// prints both a human-readable aligned table and (optionally) a CSV file so
// results can be re-plotted. CsvWriter/parse_csv are the machine-readable
// path (RFC-4180 quoting, stable column order, loss-free round trip) used
// by the campaign result store.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace ulpdream::util {

/// Streaming RFC-4180-style CSV emitter: cells are quoted only when they
/// contain a separator, quote or newline; embedded quotes are doubled.
/// Rows are written in call order, so the column order is exactly the
/// order the caller emits — stable by construction.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  void write_row(const std::vector<std::string>& cells);

  /// Quotes/escapes one cell per RFC 4180 (identity for plain cells).
  [[nodiscard]] static std::string escape(const std::string& cell);

 private:
  std::ostream& os_;
};

/// Parses CSV as produced by CsvWriter: quoted cells, doubled quotes,
/// embedded separators/newlines inside quotes. Returns one vector of
/// cells per row; a trailing newline does not produce an empty row.
[[nodiscard]] std::vector<std::vector<std::string>> parse_csv(
    std::istream& is);

/// Shortest decimal form that round-trips the exact double value
/// (std::to_chars); the formatter machine-readable exports use.
[[nodiscard]] std::string fmt_exact(double value);

/// Inverse of fmt_exact; throws std::invalid_argument on malformed input.
[[nodiscard]] double parse_double_exact(const std::string& text);

/// Column-aligned text table with a title and optional CSV dump.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Sets the column headers; must be called before adding rows.
  void set_header(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  void add_row_numeric(const std::vector<double>& row, int precision = 3);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const noexcept { return header_.size(); }

  /// Renders the aligned table to the stream.
  void print(std::ostream& os) const;

  /// Writes the table as CSV (header + rows) to the given path.
  /// Returns false (and leaves no partial file guarantees) on I/O failure.
  bool write_csv(const std::string& path) const;

  /// Streams the table as CSV (header + rows) via CsvWriter.
  void write_csv(std::ostream& os) const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper used across benches).
[[nodiscard]] std::string fmt(double value, int precision = 3);

/// Formats a value in engineering style with a unit (e.g. "12.3 pJ").
[[nodiscard]] std::string fmt_eng(double value, const std::string& unit);

}  // namespace ulpdream::util
