#pragma once
// Blocking index-parallel convenience loop. Historically this owned the
// work-stealing claim loop shared by the sweep and campaign engines; the
// loop now lives in util::WorkPool (work_pool.hpp) — the long-lived,
// multi-job pool behind campaign::Session — and parallel_for_index is a
// thin wrapper that stands up a transient pool for one job. Correct
// whenever every index writes disjoint state, the pattern both engines
// are built on.

#include <algorithm>
#include <cstddef>
#include <utility>

#include "ulpdream/util/work_pool.hpp"

namespace ulpdream::util {

/// Runs a per-index function over [0, count) on up to `threads` workers.
/// Each participating worker invokes `make_worker()` once to build its
/// private per-worker state (e.g. an ExperimentRunner) and calls the
/// returned callable with every index it claims; `make_worker` must
/// therefore be safe to invoke concurrently. The first exception a
/// worker throws stops further claims and is rethrown here. `threads`
/// <= 1 (or count <= 1) runs entirely on the calling thread.
template <typename MakeWorker>
void parallel_for_index(std::size_t count, unsigned threads,
                        MakeWorker&& make_worker) {
  const unsigned workers = static_cast<unsigned>(std::min<std::size_t>(
      std::max(1u, threads), std::max<std::size_t>(1, count)));
  if (workers <= 1) {
    auto fn = make_worker();
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  WorkPool pool(workers);
  pool.run(count, WorkPool::WorkerFactory(std::forward<MakeWorker>(
               make_worker)));
}

}  // namespace ulpdream::util
