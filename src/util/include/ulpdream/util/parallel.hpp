#pragma once
// Shared work-stealing index loop for the sweep and campaign engines.
// Fans indices [0, count) across a std::thread pool: each worker claims
// indices from one atomic counter, which is the only synchronisation —
// correct whenever every index writes disjoint state, the pattern both
// engines are built on.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace ulpdream::util {

/// Runs a per-index function over [0, count) on up to `threads` workers.
/// Each worker thread invokes `make_worker()` once to build its private
/// per-worker state (e.g. an ExperimentRunner) and calls the returned
/// callable with every index it claims; `make_worker` must therefore be
/// safe to invoke concurrently. If a worker throws, the claim counter is
/// parked past the end so the other workers stop at their next claim
/// instead of draining the remaining indices, and the first exception is
/// rethrown after the join. `threads` <= 1 (or count <= 1) runs entirely
/// on the calling thread.
template <typename MakeWorker>
void parallel_for_index(std::size_t count, unsigned threads,
                        MakeWorker&& make_worker) {
  const unsigned workers = static_cast<unsigned>(std::min<std::size_t>(
      std::max(1u, threads), std::max<std::size_t>(1, count)));

  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  auto worker = [&]() {
    auto fn = make_worker();
    try {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) break;
        fn(i);
      }
    } catch (...) {
      next.store(count, std::memory_order_relaxed);
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
  };

  if (workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace ulpdream::util
