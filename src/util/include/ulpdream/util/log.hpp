#pragma once
// Minimal leveled logger. Experiments are long-running; progress lines go to
// stderr so stdout stays clean for table output.

#include <sstream>
#include <string>

namespace ulpdream::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level (default Info). Atomic — safe to flip while pool
/// workers are logging.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Thread-safe: the sink write is mutex-guarded, so concurrent messages
/// from WorkPool workers interleave whole-line, never mid-line.
void log_message(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::kDebug)
    log_message(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::kInfo)
    log_message(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::kWarn)
    log_message(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::kError)
    log_message(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace ulpdream::util
