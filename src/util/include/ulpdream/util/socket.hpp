#pragma once
// Stream sockets and length-prefixed framing — the byte-moving substrate
// of the distributed campaign runtime (src/dist). Deliberately tiny: a
// RAII fd wrapper (Socket), a bind/accept wrapper (Listener) speaking
// both TCP ("host:port", port 0 picks an ephemeral port) and Unix-domain
// endpoints ("unix:/path"), and a framing layer that moves opaque typed
// payloads with an 8-byte magic+type prologue and a u64 length prefix.
//
// Error taxonomy is the point, not a nicety: every failure surfaces as a
// typed exception naming the peer it happened on, and the decode side
// distinguishes the ways a frame can be malformed —
//   FrameError::Kind::kBadMagic    the bytes are not a frame stream
//   FrameError::Kind::kOversized   length prefix exceeds the caller's cap
//   FrameError::Kind::kTruncated   EOF mid-header or mid-payload
//   FrameError::Kind::kIo          the OS said no (errno text included)
// — so a coordinator can log "peer X sent garbage" distinctly from
// "peer X died mid-frame" (re-lease the work) and a test can assert the
// exact failure class (tests/dist_test.cpp's malformed-frame matrix).
//
// Blocking I/O only, one reader and one writer per socket: the dist
// protocol is strictly request/response per connection, and timeouts are
// the receiver's business (set_recv_timeout). No poll loop, no buffering
// beyond the frame being assembled.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace ulpdream::util {

/// Socket-layer failure, always naming the peer (or endpoint) involved.
class SocketError : public std::runtime_error {
 public:
  SocketError(std::string peer, const std::string& what)
      : std::runtime_error(peer + ": " + what), peer_(std::move(peer)) {}
  [[nodiscard]] const std::string& peer() const noexcept { return peer_; }

 private:
  std::string peer_;
};

/// Framing-layer failure: a typed decode error naming the peer. kIo and
/// kTruncated are transport problems (peer death, wire cut); kBadMagic
/// and kOversized mean the peer is not speaking the protocol.
class FrameError : public SocketError {
 public:
  enum class Kind { kBadMagic, kOversized, kTruncated, kIo };

  FrameError(Kind kind, std::string peer, const std::string& what)
      : SocketError(std::move(peer), what), kind_(kind) {}
  [[nodiscard]] Kind kind() const noexcept { return kind_; }

 private:
  Kind kind_;
};

/// Move-only RAII wrapper over a connected stream socket. `peer()` is a
/// human-readable label ("127.0.0.1:45123", "unix:/run/x.sock", or the
/// label a socketpair was built with) used in every error message.
class Socket {
 public:
  Socket() = default;
  Socket(int fd, std::string peer) : fd_(fd), peer_(std::move(peer)) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept
      : fd_(other.fd_), peer_(std::move(other.peer_)) {
    other.fd_ = -1;
  }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      peer_ = std::move(other.peer_);
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }
  [[nodiscard]] const std::string& peer() const noexcept { return peer_; }

  /// Connects to "host:port" or "unix:/path". Throws SocketError naming
  /// the endpoint on resolution/connect failure.
  [[nodiscard]] static Socket connect(const std::string& endpoint);

  /// A connected AF_UNIX stream pair — the in-process transport the
  /// FakeWorker and the protocol tests ride (same bytes, no listener).
  [[nodiscard]] static std::pair<Socket, Socket> socketpair(
      const std::string& label = "socketpair");

  /// Blocking write of the whole buffer (EINTR-restarting). Throws
  /// SocketError on any short/failed write (EPIPE included — callers see
  /// peer death as an exception, never a signal).
  void write_all(const void* data, std::size_t len);

  /// Blocking read of exactly `len` bytes. Returns false when the peer
  /// closed cleanly *before the first byte*; throws FrameError
  /// (kTruncated) on EOF mid-buffer and (kIo) on OS errors.
  [[nodiscard]] bool read_all_or_eof(void* data, std::size_t len);

  /// Receive timeout for all subsequent reads (0 = block forever). A
  /// timed-out read surfaces as FrameError kIo mentioning the timeout.
  void set_recv_timeout(std::size_t milliseconds);

  /// Half-close both directions — wakes a thread blocked in read on this
  /// socket (it sees EOF). Safe on an invalid socket.
  void shutdown() noexcept;
  void close() noexcept;

 private:
  int fd_ = -1;
  std::string peer_;
};

/// Bound, listening endpoint. `Listener::open("127.0.0.1:0")` binds an
/// ephemeral port; `endpoint()` reports the resolved address to hand to
/// workers. "unix:/path" endpoints unlink a stale socket file on open
/// and remove it on close.
class Listener {
 public:
  Listener() = default;
  ~Listener() { close(); }
  Listener(Listener&& other) noexcept
      : fd_(other.fd_),
        endpoint_(std::move(other.endpoint_)),
        unlink_path_(std::move(other.unlink_path_)) {
    other.fd_ = -1;
    other.unlink_path_.clear();
  }
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  [[nodiscard]] static Listener open(const std::string& endpoint);

  /// Blocks for the next connection; the returned socket's peer() names
  /// the remote address. Throws SocketError when the listener was closed
  /// from another thread (the coordinator's shutdown path) or on OS
  /// error.
  [[nodiscard]] Socket accept();

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }
  /// The resolved local endpoint ("127.0.0.1:45123" or "unix:/path").
  [[nodiscard]] const std::string& endpoint() const noexcept {
    return endpoint_;
  }

  /// Closes the listening fd — a thread blocked in accept() unblocks
  /// with a SocketError. Idempotent.
  void close() noexcept;

 private:
  int fd_ = -1;
  std::string endpoint_;
  std::string unlink_path_;  ///< unix socket file to remove on close
};

// ---------------------------------------------------------------------------
// Framing.

/// Every frame on the wire: 8-byte magic "ULPDFRM1", u32 type, u32
/// reserved (zero), u64 payload length, then the payload bytes. All
/// integers little-endian (the columnar store's convention).
inline constexpr char kFrameMagic[8] = {'U', 'L', 'P', 'D',
                                        'F', 'R', 'M', '1'};
inline constexpr std::size_t kFrameHeaderBytes = 24;

/// One decoded frame: the type tag and the opaque payload. Interpreting
/// the payload is the protocol layer's job (dist/protocol.hpp).
struct Frame {
  std::uint32_t type = 0;
  std::vector<std::uint8_t> payload;
};

/// Writes one frame. Throws SocketError on transport failure.
void write_frame(Socket& socket, std::uint32_t type,
                 const std::uint8_t* payload, std::size_t len);
inline void write_frame(Socket& socket, std::uint32_t type,
                        const std::vector<std::uint8_t>& payload) {
  write_frame(socket, type, payload.data(), payload.size());
}

/// Reads the next frame. Returns false on clean EOF at a frame boundary
/// (the peer hung up between frames — the orderly end of a connection).
/// Throws FrameError: kBadMagic when the stream is not frames at all,
/// kOversized when the length prefix exceeds `max_payload` (a lying or
/// hostile peer must not drive a huge allocation), kTruncated when the
/// peer died mid-frame, kIo on OS errors.
[[nodiscard]] bool read_frame(Socket& socket, Frame& out,
                              std::size_t max_payload);

}  // namespace ulpdream::util
